module stochsyn

go 1.24
