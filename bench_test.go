package stochsyn

// This file regenerates the paper's evaluation artifacts as Go
// benchmarks, one per table and figure (see DESIGN.md's experiment
// index). Headline quantities are attached to each benchmark via
// b.ReportMetric, so `go test -bench=. -benchmem` both exercises the
// harness and prints the reproduced numbers. Scales are reduced from
// the paper's (100M-iteration budgets, 50 trials, 1600 problems) to
// keep the suite laptop-sized; cmd/bench runs the same experiments at
// arbitrary scale.

import (
	"io"
	"math"
	"math/rand/v2"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/experiment"
	"stochsyn/internal/markov"
	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
	"stochsyn/internal/restart"
	"stochsyn/internal/search"
	"stochsyn/internal/stats"
	"stochsyn/internal/superopt"
	"stochsyn/internal/testcase"
)

// benchSuite builds a 100-case suite for a reference expression.
func benchSuite(b *testing.B, expr string, numInputs int) *testcase.Suite {
	b.Helper()
	ref := prog.MustParse(expr, numInputs)
	rng := rand.New(rand.NewPCG(1234, 5678))
	return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
		numInputs, 100, rng)
}

// BenchmarkSearchIterationRate tracks the Section 3.2 reference point:
// the paper reports a mean of 339K search-loop iterations per second
// per core; the its/sec metric here is directly comparable.
func BenchmarkSearchIterationRate(b *testing.B) {
	// A hard spec so runs do not finish early: every iteration does
	// full propose/evaluate work. Consumed iterations are counted
	// exactly (a finished run is replaced by a fresh one).
	suite := benchSuite(b, "mulq(mulq(x, x), addq(x, 0x1234567))", 1)
	r := search.New(suite, search.Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 1})
	b.ResetTimer()
	var consumed int64
	seed := uint64(2)
	for consumed < int64(b.N) {
		used, done := r.Step(int64(b.N) - consumed)
		consumed += used
		if done {
			r = search.New(suite, search.Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: seed})
			seed++
		}
	}
	b.ReportMetric(float64(consumed)/b.Elapsed().Seconds(), "iters/sec")
}

// BenchmarkEvalProgram measures single-case program evaluation, the
// innermost kernel of the search.
func BenchmarkEvalProgram(b *testing.B) {
	p := prog.MustParse("orq(andq(x, y), andq(notq(x), z))", 3)
	in := []uint64{0xF0F0, 0x1234, 0x5678}
	var vals [prog.MaxNodes]uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Eval(in, vals[:])
	}
}

// BenchmarkCostHamming measures a full 100-case cost evaluation.
func BenchmarkCostHamming(b *testing.B) {
	suite := benchSuite(b, "addq(x, y)", 2)
	p := prog.MustParse("orq(x, y)", 2)
	var vals [prog.MaxNodes]uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost.Hamming.Of(p, suite, vals[:])
	}
}

// BenchmarkMutateApply measures one proposal (copy + move).
func BenchmarkMutateApply(b *testing.B) {
	m := mutate.New(prog.FullSet, nil, false)
	rng := rand.New(rand.NewPCG(1, 2))
	cur := prog.MustParse("orq(andq(x, y), andq(notq(x), z))", 3)
	scratch := cur.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.CopyFrom(cur)
		m.Apply(scratch, rng)
	}
}

// BenchmarkFig1PlateauChart regenerates the Figure 1 plateau chart:
// many naive runs of one benchmark problem binned into a cost ×
// log-iteration density. Reported metrics: share of runs finishing and
// the modal plateau count.
func BenchmarkFig1PlateauChart(b *testing.B) {
	bench := experiment.SyGuSBenchmark(1, 6)
	for i := 0; i < b.N; i++ {
		res := experiment.PlateauChart(experiment.PlateauConfig{
			Problem: bench.Problems[4], // hd05: propagate rightmost 1
			Set:     bench.Set,
			Cost:    cost.Hamming,
			Beta:    1,
			Runs:    24,
			Budget:  400_000,
			Seed:    1,
		})
		b.ReportMetric(float64(res.Finished)/float64(len(res.Runs)), "finish-rate")
	}
}

// BenchmarkFig4MarkovPrediction regenerates Figure 4: measured
// synthesis times of or(shl(x), x) against times sampled from the
// estimated popular-state Markov chain. The KS metric is the
// two-sample distance (small = the distributions agree, as the figure
// shows).
func BenchmarkFig4MarkovPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.MarkovExperiment(experiment.MarkovConfig{
			Trials: 60, Budget: 300_000, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.KS, "ks-distance")
		b.ReportMetric(res.Empirical.Coverage, "state-coverage")
	}
}

// BenchmarkFig6DistributionFits regenerates the Figure 6 census: the
// best-fit family of the synthesis-time distribution across benchmark
// problems, with log-normal expected to dominate.
func BenchmarkFig6DistributionFits(b *testing.B) {
	bench := experiment.SyGuSBenchmark(1, 10)
	for i := 0; i < b.N; i++ {
		res := experiment.Fits(experiment.FitConfig{
			Bench: bench, Problems: 6, Cost: cost.Hamming, Beta: 2,
			Trials: 20, Budget: 400_000, Seed: 2, MinSuccesses: 10,
		})
		census := res.Census()
		total := 0
		for _, n := range census {
			total += n
		}
		if total > 0 {
			b.ReportMetric(float64(census["lognormal"])/float64(total), "lognormal-frac")
			b.ReportMetric(float64(census["geometric"])/float64(total), "geometric-frac")
		}
	}
}

// BenchmarkFig7HeavyTailPlateau regenerates the Figure 7 chart shape
// on a harder problem and reports the tail ratio (mean/median of
// finishing times), the paper's heavy-tail diagnostic.
func BenchmarkFig7HeavyTailPlateau(b *testing.B) {
	suite := benchSuite(b, "subq(orq(x, 7), -1)", 1)
	for i := 0; i < b.N; i++ {
		res := experiment.PlateauChart(experiment.PlateauConfig{
			Problem: experiment.Problem{Name: "(x|7)+1", Suite: suite},
			Set:     prog.FullSet,
			Cost:    cost.Hamming,
			Beta:    2,
			Runs:    24,
			Budget:  2_000_000,
			Seed:    3,
		})
		var times []float64
		for _, r := range res.Runs {
			if r.Finished {
				times = append(times, float64(r.FinishIter))
			}
		}
		if len(times) > 2 {
			b.ReportMetric(stats.TailRatio(times), "tail-ratio")
		}
	}
}

// BenchmarkFig10ModelChains regenerates the Section 5.2.1 comparison:
// adaptive versus classic Luby on the two model Markov chains. The
// paper reports adaptive 31% faster on chain (a) and 46% slower on
// chain (b); the metrics give the measured adaptive/luby mean ratios
// (< 1 good on A, > 1 expected on B).
func BenchmarkFig10ModelChains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := experiment.ModelChains(experiment.ModelChainConfig{
			Algorithms: []string{"luby:100", "adaptive:100"},
			Trials:     40,
			Budget:     2_000_000,
			Seed:       1,
		})
		means := map[string]float64{}
		for _, r := range results {
			means[r.Chain[:1]+r.Algorithm] = r.MeanIters
		}
		b.ReportMetric(means["aadaptive:100"]/means["aluby:100"], "ratio-chain-a")
		b.ReportMetric(means["badaptive:100"]/means["bluby:100"], "ratio-chain-b")
	}
}

// BenchmarkFig11PlateauIncorrectTests regenerates Figure 11: the
// plateau chart under the incorrect-test-cases cost function at
// beta = 1, where the high effective temperature keeps the search on
// the initial plateau (cost ~ number of test cases).
func BenchmarkFig11PlateauIncorrectTests(b *testing.B) {
	bench := experiment.SyGuSBenchmark(1, 6)
	for i := 0; i < b.N; i++ {
		res := experiment.PlateauChart(experiment.PlateauConfig{
			Problem: bench.Problems[0],
			Set:     bench.Set,
			Cost:    cost.IncorrectTests,
			Beta:    1,
			Runs:    16,
			Budget:  300_000,
			Seed:    4,
		})
		b.ReportMetric(float64(res.Finished)/float64(len(res.Runs)), "finish-rate")
	}
}

// BenchmarkFig13BetaSweep regenerates one panel of Figure 13 (failure
// rate against beta per algorithm) and Table 1's optimal betas on a
// benchmark subset. Metrics give each algorithm's best failure rate.
func BenchmarkFig13BetaSweep(b *testing.B) {
	bench := experiment.SyGuSBenchmark(1, 6)
	algos := []string{"naive", "luby", "adaptive"}
	for i := 0; i < b.N; i++ {
		res := experiment.BetaSweep(experiment.BetaSweepConfig{
			Bench:      bench,
			Algorithms: algos,
			Costs:      []cost.Kind{cost.Hamming},
			Betas:      experiment.DefaultBetaGrid(cost.Hamming, 5),
			Trials:     3,
			Budget:     400_000,
			Seed:       1,
		})
		for _, algo := range algos {
			c := res.Curve(algo, cost.Hamming)
			best := 1.0
			for _, fr := range c.FailRate {
				if !math.IsNaN(fr) && fr < best {
					best = fr
				}
			}
			b.ReportMetric(best, algo+"-best-failrate")
			b.ReportMetric(c.OptimalBeta(), algo+"-opt-beta")
		}
	}
}

// runCompare executes the main comparison (the data behind Figures
// 14-16 and Tables 2 and 3) for one cost function at benchmark scale
// small enough for a benchmark run.
func runCompare(b *testing.B, kind cost.Kind, beta func(algo string) float64) *experiment.CompareResult {
	b.Helper()
	bench := experiment.SyGuSBenchmark(1, 8)
	return experiment.Compare(experiment.CompareConfig{
		Bench:      bench,
		Algorithms: []string{"naive", "luby", "adaptive"},
		Costs:      []cost.Kind{kind},
		Beta:       func(algo string, _ cost.Kind) float64 { return beta(algo) },
		Trials:     6,
		Budget:     1_500_000,
		Seed:       9,
	})
}

// betaForCompare mirrors the paper's Table 1 structure: the naive
// algorithm prefers a higher beta than the restart strategies.
func betaForCompare(kind cost.Kind) func(string) float64 {
	return func(algo string) float64 {
		hi, lo := 4.0, 2.0
		if kind == cost.IncorrectTests {
			hi, lo = 0.1, 0.03
		}
		if algo == "naive" {
			return hi
		}
		return lo
	}
}

// reportCompare attaches Table 2/3-style metrics: the median-rank
// speedup of adaptive over each baseline and each algorithm's
// unsolved fraction.
func reportCompare(b *testing.B, res *experiment.CompareResult, kind cost.Kind) {
	b.Helper()
	n := 8
	for _, algo := range []string{"naive", "luby"} {
		if sp := res.SpeedupAt(algo, "adaptive", kind, n/2, 3); !math.IsNaN(sp) {
			b.ReportMetric(sp, algo+"/adaptive-speedup")
		}
	}
	for _, algo := range []string{"naive", "luby", "adaptive"} {
		b.ReportMetric(res.UnsolvedFraction(algo, kind), algo+"-unsolved")
	}
	b.ReportMetric(res.SolvedAtLeastOnce(), "solved-once-frac")
}

// BenchmarkFig14CactusHamming regenerates the Figure 14 data (cactus
// plot, Hamming cost) plus its Table 2/3 summaries.
func BenchmarkFig14CactusHamming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCompare(b, cost.Hamming, betaForCompare(cost.Hamming))
		reportCompare(b, res, cost.Hamming)
	}
}

// BenchmarkFig15CactusIncorrectTests regenerates the Figure 15 data
// (incorrect-test-cases cost).
func BenchmarkFig15CactusIncorrectTests(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCompare(b, cost.IncorrectTests, betaForCompare(cost.IncorrectTests))
		reportCompare(b, res, cost.IncorrectTests)
	}
}

// BenchmarkFig16CactusLogDiff regenerates the Figure 16 data
// (log-difference cost).
func BenchmarkFig16CactusLogDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runCompare(b, cost.LogDiff, betaForCompare(cost.LogDiff))
		reportCompare(b, res, cost.LogDiff)
	}
}

// BenchmarkSuperoptPipeline measures the Section 6.1 scraping pipeline
// end to end (corpus generation through benchmark sampling) and
// reports the attrition counters.
func BenchmarkSuperoptPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := superopt.DefaultOptions(uint64(i + 1))
		opts.CorpusFunctions = 150
		opts.SampleSize = 25
		probs, stats, err := superopt.Build(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats.Fragments), "fragments")
		b.ReportMetric(float64(stats.Signatures), "signatures")
		b.ReportMetric(float64(len(probs)), "problems")
	}
}

// BenchmarkFig5TransitionDiagram measures estimation of the
// popular-state chain and DOT export (the Figure 5 artifact).
func BenchmarkFig5TransitionDiagram(b *testing.B) {
	suite := func() *testcase.Suite {
		ref := prog.MustParse("or(shl(x), x)", 1)
		rng := rand.New(rand.NewPCG(7, 8))
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 1, 16, rng)
	}()
	for i := 0; i < b.N; i++ {
		emp, err := markov.Build(suite, markov.BuildOptions{
			Search: search.Options{
				Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1,
				Redundancy: true, Seed: 11,
			},
			Trials: 30, MaxIters: 200_000, TopK: 35,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := markov.WriteDOT(io.Discard, emp.Chain, emp.States); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(emp.States)), "states")
	}
}

// BenchmarkAdaptiveVsNaiveHeavyTail is the headline end-to-end
// comparison on a heavy-tailed synthesis problem through the public
// API: expected iterations (penalized means over seeds) for the naive
// and adaptive algorithms. The adaptive/naive ratio < 1 reproduces the
// paper's core speedup claim.
func BenchmarkAdaptiveVsNaiveHeavyTail(b *testing.B) {
	problem, err := ProblemFromFunc(func(in []uint64) uint64 { return (in[0] | 7) + 1 }, 1, 100, 99)
	if err != nil {
		b.Fatal(err)
	}
	const budget = 3_000_000
	const seeds = 8
	for i := 0; i < b.N; i++ {
		meanOf := func(strategy string) float64 {
			var times []float64
			for seed := uint64(1); seed <= seeds; seed++ {
				res, err := Synthesize(problem, Options{
					Strategy: strategy, Beta: 2, Budget: budget, Seed: seed,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Solved {
					times = append(times, float64(res.Iterations))
				}
			}
			return stats.PenalizedMean(times, seeds, budget)
		}
		naive := meanOf("naive")
		adaptive := meanOf("adaptive")
		b.ReportMetric(adaptive/naive, "adaptive/naive-ratio")
	}
}

// BenchmarkLubyStrategyOverhead isolates strategy bookkeeping: the
// pure scheduling cost of the adaptive tree on instant fake searches
// is negligible next to search iterations.
func BenchmarkLubyStrategyOverhead(b *testing.B) {
	factory := func(id uint64) search.Search {
		return neverSearch{}
	}
	strat := restart.NewAdaptive(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strat.Run(factory, 4096)
	}
}

// neverSearch consumes budget without finishing.
type neverSearch struct{}

func (neverSearch) Step(budget int64) (int64, bool) { return budget, false }
func (neverSearch) Cost() float64                   { return 1 }

// BenchmarkRedundancyMoveAblation quantifies the Section 4 redundancy
// (canonicalization) move on the model problem: mean iterations to
// solve or(shl(x), x) with and without the move. The ratio metric is
// with/without (< 1 means the move helps).
func BenchmarkRedundancyMoveAblation(b *testing.B) {
	ref := prog.MustParse("or(shl(x), x)", 1)
	rng := rand.New(rand.NewPCG(55, 66))
	suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 1, 16, rng)
	meanIters := func(redundancy bool) float64 {
		var times []float64
		const trials = 40
		for t := 0; t < trials; t++ {
			r := search.New(suite, search.Options{
				Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1,
				Redundancy: redundancy, Seed: uint64(t + 1),
			})
			if used, done := r.Step(500_000); done {
				times = append(times, float64(used))
			}
		}
		return stats.PenalizedMean(times, 40, 500_000)
	}
	for i := 0; i < b.N; i++ {
		with := meanIters(true)
		without := meanIters(false)
		b.ReportMetric(with/without, "with/without-ratio")
	}
}

// BenchmarkOptimizeMode measures STOKE-style size minimization: nodes
// saved per million iterations starting from translated fragments.
func BenchmarkOptimizeMode(b *testing.B) {
	opts := superopt.DefaultOptions(77)
	opts.CorpusFunctions = 100
	opts.SampleSize = 6
	opts.TestCases = 50
	probs, _, err := superopt.Build(opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		before, after := 0, 0
		for _, p := range probs {
			if p.Reference == nil {
				continue
			}
			r := search.New(p.Suite, search.Options{
				Set: prog.FullSet, Cost: cost.Hamming, Beta: 1,
				Seed: 3, Init: p.Reference, MinimizeSize: true,
			})
			r.Step(500_000)
			before += p.Reference.BodyLen()
			after += r.Best().BodyLen()
		}
		if before > 0 {
			b.ReportMetric(float64(before-after)/float64(before), "size-saved-frac")
		}
	}
}

// BenchmarkMoveWeightAblation compares the paper's uniform move
// selection against an instruction-heavy distribution on a benchmark
// problem, reporting the mean-iterations ratio (uniform = 1 baseline).
func BenchmarkMoveWeightAblation(b *testing.B) {
	suite := benchSuite(b, "orq(andq(x, y), andq(notq(x), z))", 3)
	meanIters := func(weights map[mutate.Move]float64) float64 {
		var times []float64
		const trials = 10
		for t := 0; t < trials; t++ {
			r := search.New(suite, search.Options{
				Set: prog.FullSet, Cost: cost.Hamming, Beta: 2,
				Seed: uint64(t + 1), MoveWeights: weights,
			})
			if used, done := r.Step(2_000_000); done {
				times = append(times, float64(used))
			}
		}
		return stats.PenalizedMean(times, 10, 2_000_000)
	}
	for i := 0; i < b.N; i++ {
		uniform := meanIters(nil)
		instrHeavy := meanIters(map[mutate.Move]float64{
			mutate.MoveInstruction: 4,
			mutate.MoveOpcode:      1,
			mutate.MoveOperand:     1,
		})
		b.ReportMetric(instrHeavy/uniform, "instr-heavy/uniform")
	}
}
