package stochsyn_test

import (
	"fmt"

	"stochsyn"
)

// Synthesize a program equivalent to clearing the lowest set bit,
// specified purely by examples.
func ExampleSynthesize() {
	problem, _ := stochsyn.ProblemFromFunc(func(in []uint64) uint64 {
		return in[0] & (in[0] - 1)
	}, 1, 100, 42)
	res, _ := stochsyn.Synthesize(problem, stochsyn.Options{
		Beta:   2,
		Budget: 10_000_000,
		Seed:   1,
	})
	p, _ := stochsyn.ParseProgram(res.Program, 1)
	out, _ := p.Run(0b1100)
	fmt.Println(res.Solved, out)
	// Output: true 8
}

// Parse and run a program written in the textual notation.
func ExampleParseProgram() {
	p, _ := stochsyn.ParseProgram("orq(andq(x, y), andq(notq(x), z))", 3)
	out, _ := p.Run(0xFF00, 0x1234, 0x5678)
	fmt.Printf("%#x (size %d)\n", out, p.Size())
	// Output: 0x1278 (size 4)
}

// Shrink a known-correct but bloated program.
func ExampleOptimize() {
	problem, _ := stochsyn.ProblemFromFunc(func(in []uint64) uint64 {
		return in[0] * 3
	}, 1, 60, 10)
	res, _ := stochsyn.Optimize(problem, "addq(addq(x, x), mulq(x, 1))", stochsyn.Options{
		Beta:   1,
		Budget: 2_000_000,
		Seed:   3,
	})
	fmt.Println(res.StartSize > res.Size)
	// Output: true
}
