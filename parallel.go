package stochsyn

import (
	"context"
	"runtime"
	"time"

	"stochsyn/internal/cost"
	"stochsyn/internal/restart"
	"stochsyn/internal/search"
)

// SynthesizeParallel runs the configured restart strategy on multiple
// cores with a shared iteration budget: the total iterations across
// all workers never exceed Options.Budget, so results remain
// comparable with Synthesize in the paper's iteration-count terms
// while using the hardware for wall-clock speed. workers <= 0 uses
// GOMAXPROCS; Options.Workers is overridden by the explicit argument.
//
// How the strategy is parallelized depends on what it is:
//
//   - The doubling-tree strategies ("adaptive", the default, and
//     "pluby") run on the concurrent tree executor, which dispatches
//     sibling subtree visits onto a bounded worker pool while
//     reproducing the sequential schedule bit for bit — the Result
//     (Solved, Iterations, Searches, Program) is identical to
//     Synthesize's for the same Options.
//   - "naive" fans out independent searches that draw iteration
//     grants from a shared budget pool; which search wins may depend
//     on goroutine scheduling, and Searches reports how many actually
//     consumed budget.
//   - The sequential cutoff strategies ("luby", "fixed", "exp",
//     "innerouter") have no parallel form — each restart depends on
//     the previous one finishing — and run on one goroutine exactly
//     as under Synthesize.
func SynthesizeParallel(p *Problem, opts Options, workers int) (Result, error) {
	return SynthesizeParallelContext(context.Background(), p, opts, workers)
}

// SynthesizeParallelContext is SynthesizeParallel under a context:
// cancelling ctx stops every worker promptly and returns the partial
// Result with Cancelled set and exact iteration accounting. See
// SynthesizeContext for the cancellation semantics.
func SynthesizeParallelContext(ctx context.Context, p *Problem, opts Options, workers int) (Result, error) {
	o, err := opts.normalize()
	if err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	kind, err := cost.ParseKind(string(o.Cost))
	if err != nil {
		return Result{}, err
	}
	set, redundancy, err := dialectSet(o.Dialect)
	if err != nil {
		return Result{}, err
	}
	if o.EqSat {
		// EqSat runs are sequential by contract (the shared memo's
		// sampling order must not depend on worker interleaving), so
		// the parallel entry point degrades to the sequential one.
		return SynthesizeContext(ctx, p, opts)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 64 {
		workers = 64
	}
	o.Workers = workers
	strat, err := o.strategy(nil)
	if err != nil {
		return Result{}, err
	}
	if tree, ok := strat.(*restart.Tree); ok {
		tree.Workers = workers // the explicit argument wins over the spec
	}
	if _, ok := strat.(restart.Naive); ok {
		strat = &restart.ParallelNaive{Workers: workers}
	}

	sctx := ctx
	if sctx != nil && sctx.Done() == nil {
		sctx = nil // never-cancelled: skip the inner-loop polls entirely
	}
	factory := search.NewFactory(p.suite, search.Options{
		Set:        set,
		Cost:       kind,
		Beta:       o.Beta,
		Redundancy: redundancy,
		Seed:       o.Seed,
		Ctx:        sctx,
		Prune:      o.Prune,
	})
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := strat.RunContext(ctx, factory, o.Budget)
	out := Result{
		Solved:     res.Solved,
		Iterations: res.Iterations,
		Searches:   res.Searches,
		Cancelled:  res.Cancelled,
		Seed:       o.Seed,
		Duration:   time.Since(start),
	}
	if res.Solved {
		if run, ok := res.Winner.(*search.Run); ok {
			sol := run.Solution()
			out.Program = sol.String()
			out.Lint, out.Facts, out.Canonical, out.CanonicalHash = auditSolution(sol, p.suite)
		}
	}
	return out, nil
}
