package stochsyn

import (
	"runtime"
	"sync"
	"sync/atomic"

	"stochsyn/internal/cost"
	"stochsyn/internal/search"
)

// SynthesizeParallel runs `workers` independent searches concurrently
// (each with its own seed derived from Options.Seed) and returns as
// soon as any of them solves the problem. The budget is shared: the
// total iterations across all workers never exceed Options.Budget, so
// results remain comparable with Synthesize in the paper's
// iteration-count terms while using multiple cores for wall-clock
// speed.
//
// Unlike Synthesize, the winning program may depend on goroutine
// scheduling (whichever worker finds a solution first wins); iteration
// accounting and correctness do not. workers <= 0 uses GOMAXPROCS.
func SynthesizeParallel(p *Problem, opts Options, workers int) (Result, error) {
	o, err := opts.normalize()
	if err != nil {
		return Result{}, err
	}
	kind, err := cost.ParseKind(string(o.Cost))
	if err != nil {
		return Result{}, err
	}
	set, redundancy, err := dialectSet(o.Dialect)
	if err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 64 {
		workers = 64
	}

	// Shared iteration pool and stop flag. Workers draw budget in
	// chunks; the first solver flips the flag and everyone drains.
	var pool atomic.Int64
	pool.Store(o.Budget)
	var solved atomic.Bool
	var spent atomic.Int64

	type winner struct {
		program  string
		searches int
	}
	var mu sync.Mutex
	var best *winner

	const chunk = 8192
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := search.New(p.suite, search.Options{
				Set:        set,
				Cost:       kind,
				Beta:       o.Beta,
				Redundancy: redundancy,
				Seed:       o.Seed ^ (uint64(w)+1)*0x2545f4914f6cdd1d,
			})
			for !solved.Load() {
				// Acquire a chunk from the shared pool.
				n := pool.Add(-chunk)
				grant := int64(chunk)
				if n < 0 {
					grant += n // partial final chunk
					if grant <= 0 {
						return
					}
				}
				used, done := run.Step(grant)
				spent.Add(used)
				if returned := grant - used; returned > 0 {
					pool.Add(returned)
				}
				if done {
					mu.Lock()
					if best == nil {
						best = &winner{program: run.Solution().String()}
					}
					mu.Unlock()
					solved.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()

	res := Result{Iterations: spent.Load(), Searches: workers}
	if best != nil {
		res.Solved = true
		res.Program = best.program
	}
	return res, nil
}
