package stochsyn

import (
	"testing"

	"stochsyn/internal/obs"
)

// TestSynthesizeWithObs verifies the end-to-end observability wiring:
// attaching an Obs sink leaves the Result bit-identical, populates the
// stochsyn_* series, and brackets the run with search_start/stop
// trace events.
func TestSynthesizeWithObs(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, 1, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Strategy: "adaptive:2000", Budget: 4_000_000, Seed: 3}
	bare, err := Synthesize(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	iopts := opts
	iopts.Obs = o
	got, err := Synthesize(p, iopts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Solved != bare.Solved || got.Iterations != bare.Iterations ||
		got.Searches != bare.Searches || got.Program != bare.Program {
		t.Fatalf("observed run diverged:\ngot  %+v\nwant %+v", got, bare)
	}

	if v := o.Reg.Counter("stochsyn_search_iterations_total").Value(); int64(v) < got.Iterations {
		t.Errorf("iterations counter = %g, want >= %d", v, got.Iterations)
	}
	if v := o.Reg.Counter("stochsyn_restarts_total", "strategy", "adaptive").Value(); int(v) < got.Searches {
		t.Errorf("restarts counter = %g, want >= %d", v, got.Searches)
	}

	var sawStart, sawStop bool
	for _, ev := range o.Tracer.Events() {
		switch ev.Name {
		case "search_start":
			sawStart = true
		case "search_stop":
			sawStop = true
			if solved, _ := ev.Attrs["solved"].(bool); solved != got.Solved {
				t.Errorf("search_stop solved attr = %v, want %v", ev.Attrs["solved"], got.Solved)
			}
		}
	}
	if !sawStart || !sawStop {
		t.Errorf("missing lifecycle events: start=%v stop=%v", sawStart, sawStop)
	}
}
