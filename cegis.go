package stochsyn

import (
	"errors"
	"fmt"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
	"stochsyn/internal/verify"
)

// Spec is a reference implementation used as a synthesis oracle.
type Spec func(inputs []uint64) uint64

// CEGISResult reports a counterexample-guided synthesis outcome.
type CEGISResult struct {
	// Solved reports whether the final program survived validation.
	Solved bool
	// Program is the final program's textual form.
	Program string
	// Rounds is the number of synthesize-validate iterations run.
	Rounds int
	// Counterexamples lists the inputs added along the way.
	Counterexamples [][]uint64
	// Iterations is the total search iterations across all rounds.
	Iterations int64
	// Cases is the final number of examples (initial + added).
	Cases int
}

// SynthesizeCEGIS runs counterexample-guided synthesis against a
// reference function: synthesize a program from the current examples,
// search for an input where it disagrees with the spec, add any
// counterexample to the examples, and repeat. Synthesis from
// input/output examples alone can overfit (the paper treats any
// program matching the examples as a solution); this loop upgrades it
// to probabilistic equivalence with the spec.
//
// numCases seeds the initial example set (as in ProblemFromFunc);
// maxRounds bounds the refinement iterations; validation uses 4096
// random probes plus the corner grid per round. Options.Budget applies
// per round.
func SynthesizeCEGIS(spec Spec, numInputs, numCases, maxRounds int, opts Options) (CEGISResult, error) {
	if maxRounds <= 0 {
		return CEGISResult{}, errors.New("stochsyn: maxRounds must be positive")
	}
	problem, err := ProblemFromFunc(spec, numInputs, numCases, opts.Seed+1)
	if err != nil {
		return CEGISResult{}, err
	}
	var res CEGISResult
	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		roundOpts := opts
		roundOpts.Seed = opts.Seed + uint64(round)*0x9e3779b97f4a7c15 + 1
		sres, err := Synthesize(problem, roundOpts)
		res.Iterations += sres.Iterations
		if err != nil {
			return res, err
		}
		if !sres.Solved {
			res.Cases = problem.NumCases()
			return res, nil // timed out on the current examples
		}
		p, err := prog.Parse(sres.Program, numInputs)
		if err != nil {
			return res, fmt.Errorf("stochsyn: internal: solution unparsable: %w", err)
		}
		cx := verify.Against(p, verify.Oracle(spec), 4096, roundOpts.Seed^0xc2b2ae3d27d4eb4f)
		if cx == nil {
			res.Solved = true
			res.Program = sres.Program
			res.Cases = problem.NumCases()
			return res, nil
		}
		// Add the counterexample and refine.
		res.Counterexamples = append(res.Counterexamples, cx.Inputs)
		problem.suite.Cases = append(problem.suite.Cases, testcase.Case{
			Inputs: cx.Inputs,
			Output: spec(cx.Inputs),
		})
	}
	res.Cases = problem.NumCases()
	return res, nil
}
