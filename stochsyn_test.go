package stochsyn

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"stochsyn/internal/cost"
	"stochsyn/internal/obs"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
)

func selectSpec(in []uint64) uint64 {
	return (in[0] & in[1]) | (^in[0] & in[2])
}

func TestProblemFromFunc(t *testing.T) {
	p, err := ProblemFromFunc(selectSpec, 3, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInputs() != 3 || p.NumCases() != 50 {
		t.Errorf("problem shape: %d inputs, %d cases", p.NumInputs(), p.NumCases())
	}
	for _, c := range p.Cases() {
		if c.Output != selectSpec(c.Inputs) {
			t.Fatal("case output mismatch")
		}
	}
}

func TestProblemFromFuncErrors(t *testing.T) {
	if _, err := ProblemFromFunc(selectSpec, MaxInputs+1, 10, 1); err == nil {
		t.Error("accepted too many inputs")
	}
	if _, err := ProblemFromFunc(selectSpec, 3, 0, 1); err == nil {
		t.Error("accepted zero cases")
	}
}

func TestNewProblem(t *testing.T) {
	p, err := NewProblem(2, []Case{
		{Inputs: []uint64{1, 2}, Output: 3},
		{Inputs: []uint64{5, 5}, Output: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCases() != 2 {
		t.Error("case count wrong")
	}
	// Arity mismatch.
	if _, err := NewProblem(2, []Case{{Inputs: []uint64{1}, Output: 0}}); err == nil {
		t.Error("accepted wrong-arity case")
	}
	if _, err := NewProblem(2, nil); err == nil {
		t.Error("accepted empty problem")
	}
}

func TestCasesCopied(t *testing.T) {
	cases := []Case{{Inputs: []uint64{1, 2}, Output: 3}}
	p, err := NewProblem(2, cases)
	if err != nil {
		t.Fatal(err)
	}
	cases[0].Inputs[0] = 99
	if p.Cases()[0].Inputs[0] == 99 {
		t.Error("NewProblem aliases caller storage")
	}
	got := p.Cases()
	got[0].Inputs[0] = 77
	if p.Cases()[0].Inputs[0] == 77 {
		t.Error("Cases returns aliased storage")
	}
}

func TestSynthesizeDefaults(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("xor not synthesized in %d iterations", res.Iterations)
	}
	prog, err := ParseProgram(res.Program, 2)
	if err != nil {
		t.Fatalf("solution %q does not parse: %v", res.Program, err)
	}
	if !prog.Matches(p) {
		t.Error("solution does not match the problem")
	}
}

func TestSynthesizeStrategies(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, 1, 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []string{"naive", "luby", "adaptive", "pluby", "fixed:50000", "exp:1000:2", "innerouter:1000:2"} {
		res, err := Synthesize(p, Options{Strategy: strat, Beta: 2, Budget: 4_000_000, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if !res.Solved {
			t.Errorf("%s failed to synthesize hd01", strat)
			continue
		}
		prog, err := ParseProgram(res.Program, 1)
		if err != nil {
			t.Fatalf("%s solution unparsable: %v", strat, err)
		}
		if !prog.Matches(p) {
			t.Errorf("%s solution does not match", strat)
		}
	}
}

func TestSynthesizeModelDialect(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return (in[0] << 1) | in[0] }, 1, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(p, Options{Dialect: Model, Budget: 1_000_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("model dialect failed on or(shl(x), x)")
	}
	if strings.ContainsAny(res.Program, "q") {
		// Model mnemonics (and/or/xor/not/shl/shr) contain no 'q'.
		t.Errorf("model solution uses full-dialect ops: %s", res.Program)
	}
}

func TestSynthesizeCostFunctions(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] | in[1] }, 2, 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, cf := range []CostFunction{Hamming, IncorrectTests, LogDiff} {
		beta := 1.0
		if cf == IncorrectTests {
			beta = 0.05 // the incorrect-tests scale is much smaller
		}
		res, err := Synthesize(p, Options{Cost: cf, Beta: beta, Budget: 4_000_000, Seed: 8})
		if err != nil {
			t.Fatalf("%s: %v", cf, err)
		}
		if !res.Solved {
			t.Errorf("cost %s failed on x|y", cf)
		}
	}
}

func TestSynthesizeOptionErrors(t *testing.T) {
	p, _ := ProblemFromFunc(func(in []uint64) uint64 { return in[0] }, 1, 10, 1)
	if _, err := Synthesize(p, Options{Cost: "bogus"}); err == nil {
		t.Error("accepted bogus cost")
	}
	if _, err := Synthesize(p, Options{Strategy: "bogus"}); err == nil {
		t.Error("accepted bogus strategy")
	}
	if _, err := Synthesize(p, Options{Dialect: "bogus"}); err == nil {
		t.Error("accepted bogus dialect")
	}
	if _, err := Synthesize(p, Options{Budget: -1}); err == nil {
		t.Error("accepted negative budget")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p, _ := ProblemFromFunc(func(in []uint64) uint64 { return in[0] + in[1] }, 2, 40, 9)
	r1, err := Synthesize(p, Options{Seed: 5, Budget: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Synthesize(p, Options{Seed: 5, Budget: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != r2.Iterations || r1.Program != r2.Program {
		t.Error("same-seed synthesis diverged")
	}
}

func TestParseProgramAndRun(t *testing.T) {
	prog, err := ParseProgram("orq(andq(x, y), andq(notq(x), z))", 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run(0xF0, 0xAA, 0x55)
	if err != nil {
		t.Fatal(err)
	}
	want := selectSpec([]uint64{0xF0, 0xAA, 0x55})
	if got != want {
		t.Errorf("Run = %#x, want %#x", got, want)
	}
	if prog.Size() != 4 {
		t.Errorf("Size = %d, want 4", prog.Size())
	}
	if _, err := prog.Run(1, 2); err == nil {
		t.Error("accepted wrong arity")
	}
	if _, err := ParseProgram("frob(x)", 1); err == nil {
		t.Error("accepted bogus program text")
	}
}

func TestMatchesArityGuard(t *testing.T) {
	p1, _ := ProblemFromFunc(func(in []uint64) uint64 { return in[0] }, 1, 10, 1)
	prog, _ := ParseProgram("addq(x, y)", 2)
	if prog.Matches(p1) {
		t.Error("arity-mismatched program matched")
	}
}

func TestPropertySolutionsAlwaysMatch(t *testing.T) {
	// Whatever Synthesize returns as solved must verify against the
	// problem.
	f := func(seed uint64) bool {
		p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] &^ in[1] }, 2, 30, seed)
		if err != nil {
			return false
		}
		res, err := Synthesize(p, Options{Seed: seed%100 + 1, Budget: 1_000_000})
		if err != nil {
			return false
		}
		if !res.Solved {
			return true // timeouts are legitimate
		}
		prog, err := ParseProgram(res.Program, 2)
		if err != nil {
			return false
		}
		return prog.Matches(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeShrinksProgram(t *testing.T) {
	// Specify x*3 via a deliberately bloated but correct start
	// program; optimization should find something smaller, and the
	// result must stay correct.
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] * 3 }, 1, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	start := "addq(addq(x, x), mulq(x, 1))" // 4 body nodes
	res, err := Optimize(p, start, Options{Beta: 1, Budget: 2_000_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.StartSize != 4 {
		t.Errorf("StartSize = %d, want 4", res.StartSize)
	}
	if res.Size > res.StartSize {
		t.Errorf("optimization grew the program: %d -> %d", res.StartSize, res.Size)
	}
	best, err := ParseProgram(res.Program, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Matches(p) {
		t.Error("optimized program no longer matches")
	}
	if res.Improved && res.Size >= 4 {
		t.Error("Improved flag inconsistent with sizes")
	}
}

func TestOptimizeContextCancel(t *testing.T) {
	// A pre-cancelled context must stop the optimization almost
	// immediately (at the first CancelCheckEvery poll), report
	// Cancelled, and still return a correct program.
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] * 3 }, 1, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeContext(ctx, p, "addq(addq(x, x), mulq(x, 1))",
		Options{Beta: 1, Budget: 50_000_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Error("Cancelled not set for a cancelled context")
	}
	if res.Iterations >= 50_000_000 {
		t.Errorf("cancelled run consumed the whole budget (%d iterations)", res.Iterations)
	}
	if res.Seed != 3 {
		t.Errorf("Seed = %d, want 3", res.Seed)
	}
	if res.Duration <= 0 {
		t.Error("Duration not recorded")
	}
	best, err := ParseProgram(res.Program, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Matches(p) {
		t.Error("cancelled optimization returned a non-matching program")
	}
}

func TestOptimizeContextNeverCancelledMatchesOptimize(t *testing.T) {
	// With a context that never expires, OptimizeContext must be
	// bit-identical to Optimize.
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] * 3 }, 1, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Beta: 1, Budget: 300_000, Seed: 3}
	a, err := Optimize(p, "addq(addq(x, x), mulq(x, 1))", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OptimizeContext(context.Background(), p, "addq(addq(x, x), mulq(x, 1))", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Program != b.Program || a.Size != b.Size || a.Iterations != b.Iterations {
		t.Errorf("OptimizeContext diverged from Optimize: %+v vs %+v", a, b)
	}
}

func TestOptimizeRejectsWrongStart(t *testing.T) {
	p, _ := ProblemFromFunc(func(in []uint64) uint64 { return in[0] * 3 }, 1, 30, 10)
	if _, err := Optimize(p, "addq(x, 1)", Options{}); err == nil {
		t.Error("accepted a non-matching start program")
	}
	if _, err := Optimize(p, "frob(x)", Options{}); err == nil {
		t.Error("accepted an unparsable start program")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o, err := Options{}.normalize()
	if err != nil || o.Beta != 1 {
		t.Errorf("zero options: beta %g, err %v (want default 1)", o.Beta, err)
	}
	o, err = (Options{Greedy: true}).normalize()
	if err != nil || o.Beta != 0 || !o.Greedy {
		t.Errorf("greedy options: beta %g, err %v (want beta 0)", o.Beta, err)
	}
	if _, err := (Options{Greedy: true, Beta: 2}).normalize(); err == nil {
		t.Error("accepted Greedy together with a non-zero Beta")
	}
	if _, err := (Options{Beta: -1}).normalize(); err == nil {
		t.Error("accepted a negative beta")
	}
	if _, err := (Options{Workers: -1}).normalize(); err == nil {
		t.Error("accepted negative workers")
	}
}

func TestGreedyReachableFromPublicAPI(t *testing.T) {
	// Regression: Options once documented Beta == 0 as greedy descent
	// but normalize() silently remapped it to 1, so greedy was
	// unreachable through the public API. Options.Greedy must plumb a
	// zero temperature all the way into the search: a naive greedy
	// synthesis must replay the beta-0 search exactly.
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] & in[1] }, 2, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	const budget, seed = 50_000, 9
	res, err := Synthesize(p, Options{Greedy: true, Strategy: "naive", Budget: budget, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	factory := search.NewFactory(p.suite, search.Options{
		Set: prog.FullSet, Cost: cost.Hamming, Beta: 0, Seed: seed,
	})
	oracle := factory(0).(*search.Run)
	used, done := oracle.Step(budget)
	if res.Iterations != used || res.Solved != done {
		t.Errorf("greedy synthesis (iters %d, solved %v) does not replay the beta-0 search (iters %d, solved %v)",
			res.Iterations, res.Solved, used, done)
	}
}

func TestGreedyNeverAcceptsCostIncrease(t *testing.T) {
	// The defining property of greedy descent, checked on the same
	// search configuration the public greedy path constructs.
	p, err := ProblemFromFunc(selectSpec, 3, 50, 21)
	if err != nil {
		t.Fatal(err)
	}
	o, err := (Options{Greedy: true}).normalize()
	if err != nil {
		t.Fatal(err)
	}
	run := search.New(p.suite, search.Options{
		Set: prog.FullSet, Cost: cost.Hamming, Beta: o.Beta, Seed: 13, TraceCosts: true,
	})
	run.Step(150_000)
	trace := run.Trace()
	for i := 1; i < len(trace); i++ {
		if trace[i].Cost > trace[i-1].Cost {
			t.Fatalf("greedy run accepted a cost increase: %g -> %g", trace[i-1].Cost, trace[i].Cost)
		}
	}
}

func TestSynthesizeWorkersDeterministic(t *testing.T) {
	// The concurrent tree executor must reproduce the sequential
	// result bit for bit through the public API.
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return (in[0] << 1) | in[0] }, 1, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Dialect: Model, Budget: 1_000_000, Seed: 2}
	seq, err := Synthesize(p, base)
	if err != nil {
		t.Fatal(err)
	}
	withWorkers := base
	withWorkers.Workers = 4
	conc, err := Synthesize(p, withWorkers)
	if err != nil {
		t.Fatal(err)
	}
	seq.Duration, conc.Duration = 0, 0 // wall-clock time is not deterministic
	if !reflect.DeepEqual(seq, conc) {
		t.Errorf("Workers changed the result:\n  sequential %+v\n  concurrent %+v", seq, conc)
	}
}

func TestSynthesizeParallel(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SynthesizeParallel(p, Options{Beta: 2, Budget: 8_000_000, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("parallel synthesis failed in %d iterations", res.Iterations)
	}
	if res.Iterations > 8_000_000 {
		t.Errorf("budget exceeded: %d", res.Iterations)
	}
	prog, err := ParseProgram(res.Program, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Matches(p) {
		t.Error("parallel solution does not match")
	}
}

func TestSynthesizeParallelRespectsBudgetWhenUnsolvable(t *testing.T) {
	// A spec needing more than the tiny budget: all workers must stop
	// once the shared pool is drained, with total <= budget.
	p, err := ProblemFromFunc(func(in []uint64) uint64 {
		return in[0]*in[0]*in[0] + 17*in[0] + in[1]*in[1]
	}, 2, 80, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SynthesizeParallel(p, Options{Beta: 1, Budget: 50_000, Seed: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Skip("surprisingly solved")
	}
	if res.Iterations > 50_000 {
		t.Errorf("iterations %d exceed the 50k budget", res.Iterations)
	}
	if res.Iterations < 40_000 {
		t.Errorf("iterations %d suspiciously below the budget", res.Iterations)
	}
}

func TestSynthesizeParallelMatchesSequential(t *testing.T) {
	// For the tree strategies, SynthesizeParallel is a pure wall-clock
	// optimization: the Result must equal Synthesize's exactly.
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return (in[0] << 1) | in[0] }, 1, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Dialect: Model, Budget: 1_000_000, Seed: 2}
	seq, err := Synthesize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SynthesizeParallel(p, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq.Duration, par.Duration = 0, 0 // wall-clock time is not deterministic
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel adaptive diverged from sequential:\n  %+v\n  %+v", seq, par)
	}
}

func TestSynthesizeParallelNaive(t *testing.T) {
	p, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SynthesizeParallel(p, Options{Strategy: "naive", Beta: 2, Budget: 8_000_000, Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("parallel naive failed in %d iterations", res.Iterations)
	}
	if res.Iterations > 8_000_000 {
		t.Errorf("budget exceeded: %d", res.Iterations)
	}
	if res.Searches < 1 || res.Searches > 4 {
		t.Errorf("Searches = %d, want between 1 and the 4 workers", res.Searches)
	}
	prog, err := ParseProgram(res.Program, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Matches(p) {
		t.Error("parallel naive solution does not match")
	}
}

// EqSat wiring: a rewrite-aware run still solves, is deterministic in
// the seed, and publishes the stochsyn_eqsat_* series; the off state
// is pinned bit-identical to the pre-knob search by the oracle tables
// (oracle_test.go), so this test only exercises the on state.
func TestSynthesizeEqSat(t *testing.T) {
	problem, err := ProblemFromFunc(func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, 1, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.New()
	opts := Options{EqSat: true, Seed: 7, Budget: 4_000_000, Obs: sink}
	res, err := Synthesize(problem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("EqSat run did not solve: %+v", res)
	}
	var buf strings.Builder
	if err := sink.Reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"stochsyn_eqsat_saturations_total",
		"stochsyn_eqsat_plateau_checks_total",
		"stochsyn_eqsat_seeds_total",
	} {
		if !strings.Contains(buf.String(), series) {
			t.Errorf("metrics output missing %s", series)
		}
	}

	opts.Obs = nil
	again, err := Synthesize(problem, opts)
	if err != nil {
		t.Fatal(err)
	}
	res.Duration, again.Duration = 0, 0
	if !reflect.DeepEqual(res, again) {
		t.Fatalf("EqSat run not deterministic:\n  %+v\n  %+v", res, again)
	}
}
