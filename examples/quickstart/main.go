// Quickstart: synthesize the bitwise-select program of Figure 2 of the
// paper — orq(andq(x, y), andq(notq(x), z)) — from input/output
// examples alone, using the public API with the adaptive restart
// strategy, then parse the result back and run it on fresh inputs.
package main

import (
	"fmt"
	"log"

	"stochsyn"
)

func main() {
	// The specification: for inputs x, y, z, select y's bits where x
	// is 1 and z's bits where x is 0. One hundred generated test
	// cases (corner values, random words, skewed Hamming weights).
	spec := func(in []uint64) uint64 {
		x, y, z := in[0], in[1], in[2]
		return (x & y) | (^x & z)
	}
	problem, err := stochsyn.ProblemFromFunc(spec, 3, 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesizing from %d examples over %d inputs...\n",
		problem.NumCases(), problem.NumInputs())

	res, err := stochsyn.Synthesize(problem, stochsyn.Options{
		Strategy: "adaptive", // the paper's headline algorithm
		Cost:     stochsyn.Hamming,
		Beta:     2,
		Budget:   20_000_000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("no solution within %d iterations", res.Iterations)
	}
	fmt.Printf("solved in %d iterations across %d searches:\n  %s\n",
		res.Iterations, res.Searches, res.Program)

	// Parse the textual solution back into a runnable program and try
	// it on inputs that were not in the test set.
	prog, err := stochsyn.ParseProgram(res.Program, 3)
	if err != nil {
		log.Fatal(err)
	}
	x, y, z := uint64(0xF0F0), uint64(0x1234), uint64(0x5678)
	got, err := prog.Run(x, y, z)
	if err != nil {
		log.Fatal(err)
	}
	want := spec([]uint64{x, y, z})
	fmt.Printf("select(%#x, %#x, %#x) = %#x (want %#x, program size %d)\n",
		x, y, z, got, want, prog.Size())
	if got != want {
		fmt.Println("note: the program matches all test cases but not this input;")
		fmt.Println("add more test cases to tighten the specification")
	}
}
