// SyGuS interchange: write a programming-by-example problem in
// SyGuS-IF syntax (the format of the competition's PBE bitvector
// track, the paper's first benchmark), parse it back, synthesize a
// solution, and validate the result beyond the examples with the
// randomized equivalence checker.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"stochsyn"
	"stochsyn/internal/prog"
	"stochsyn/internal/sygusif"
	"stochsyn/internal/testcase"
	"stochsyn/internal/verify"
)

func main() {
	// The target: round x down to a multiple of 16 (x & ~15).
	spec := func(in []uint64) uint64 { return in[0] &^ 15 }
	rng := rand.New(rand.NewPCG(7, 8))
	suite := testcase.Generate(spec, 1, 12, rng)

	// Emit the problem as a .sl file (shown truncated).
	var sl strings.Builder
	if err := sygusif.Write(&sl, "align16", suite); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(sl.String(), "\n")
	for _, l := range lines[:min(6, len(lines))] {
		fmt.Println(l)
	}
	fmt.Printf("... (%d lines total)\n\n", len(lines))

	// Parse it back and synthesize from the parsed examples alone.
	parsed, err := sygusif.Parse(sl.String())
	if err != nil {
		log.Fatal(err)
	}
	var cases []stochsyn.Case
	for _, c := range parsed.Suite.Cases {
		cases = append(cases, stochsyn.Case{Inputs: c.Inputs, Output: c.Output})
	}
	problem, err := stochsyn.NewProblem(len(parsed.Args), cases)
	if err != nil {
		log.Fatal(err)
	}
	res, err := stochsyn.Synthesize(problem, stochsyn.Options{
		Strategy: "adaptive", Beta: 1, Budget: 5_000_000, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatalf("not solved in %d iterations", res.Iterations)
	}
	fmt.Printf("synthesized %s in %d iterations: %s\n", parsed.Name, res.Iterations, res.Program)

	// The examples only constrain 12 inputs; check the program against
	// the true spec on thousands more.
	p, err := prog.Parse(res.Program, len(parsed.Args))
	if err != nil {
		log.Fatal(err)
	}
	if cx := verify.Against(p, spec, 4096, 9); cx != nil {
		fmt.Printf("counterexample beyond the examples: %s\n\n", cx)
		// Counterexample-guided refinement: re-synthesize with each
		// counterexample folded back into the examples until the
		// result survives validation.
		cres, err := stochsyn.SynthesizeCEGIS(stochsyn.Spec(spec), 1, 12, 10, stochsyn.Options{
			Beta: 1, Budget: 5_000_000, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CEGIS: %d rounds, %d counterexamples added, solved=%v\n",
			cres.Rounds, len(cres.Counterexamples), cres.Solved)
		if cres.Solved {
			fmt.Printf("validated program: %s\n", cres.Program)
		}
	} else {
		fmt.Println("no counterexample in 4096 random + corner probes")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
