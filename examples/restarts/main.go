// Restart strategies head to head: run the naive (never restart),
// classic Luby, and adaptive algorithms on the same problem across
// several seeds and compare total iterations. On problems with
// heavy-tailed synthesis-time distributions the naive algorithm
// occasionally "gets lost" for orders of magnitude longer than its
// median run, which is exactly what restarts exploit (Section 5 of the
// paper).
package main

import (
	"fmt"
	"log"
	"sort"

	"stochsyn"
)

func main() {
	// A moderately hard bit-manipulation problem: round x up to the
	// next multiple of 8 of x|7 plus-one form. Hard enough to show
	// variance across seeds, easy enough to finish quickly.
	spec := func(in []uint64) uint64 { return (in[0] | 7) + 1 }
	problem, err := stochsyn.ProblemFromFunc(spec, 1, 100, 99)
	if err != nil {
		log.Fatal(err)
	}

	const (
		seeds  = 12
		budget = 4_000_000
	)
	strategies := []string{"naive", "luby", "adaptive"}

	fmt.Printf("problem: (x|7)+1, %d cases; %d seeds, budget %d iterations\n\n",
		problem.NumCases(), seeds, budget)

	for _, strat := range strategies {
		var times []float64
		fails := 0
		for seed := uint64(1); seed <= seeds; seed++ {
			res, err := stochsyn.Synthesize(problem, stochsyn.Options{
				Strategy: strat,
				Beta:     2,
				Budget:   budget,
				Seed:     seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.Solved {
				times = append(times, float64(res.Iterations))
			} else {
				fails++
			}
		}
		sort.Float64s(times)
		fmt.Printf("%-9s solved %2d/%d", strat, len(times), seeds)
		if len(times) > 0 {
			fmt.Printf("  median %8.0f  mean %9.0f  worst %9.0f",
				quantile(times, 0.5), mean(times), times[len(times)-1])
		}
		fmt.Println()
	}

	fmt.Println("\nThe interesting number is the WORST case: the naive algorithm's")
	fmt.Println("tail is what the Luby and adaptive strategies cut off, and the")
	fmt.Println("adaptive strategy additionally focuses iterations on the lowest-")
	fmt.Println("cost searches instead of restarting blindly.")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
