// Plateau analysis of the Section 4 model problem or(shl(x), x):
// reproduce the plateau chart of Figure 1, detect each run's plateaus,
// fit the distribution of synthesis times (geometric vs gamma vs
// log-normal, Figure 6), and estimate the popular-state Markov chain
// whose sampled absorption times predict the measured distribution
// (Figure 4).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"stochsyn/internal/cost"
	"stochsyn/internal/experiment"
	"stochsyn/internal/prog"
	"stochsyn/internal/stats"
	"stochsyn/internal/testcase"
)

func main() {
	// The model problem over the reduced dialect.
	ref := prog.MustParse("or(shl(x), x)", 1)
	rng := rand.New(rand.NewPCG(5, 0xd1310ba698dfb5ac))
	suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 1, 16, rng)
	problem := experiment.Problem{Name: "or(shl(x),x)", Suite: suite}

	// 1. Plateau chart (Figure 1): many runs' costs against
	// log-iterations.
	fmt.Println("== plateau chart ==")
	pres := experiment.PlateauChart(experiment.PlateauConfig{
		Problem: problem,
		Set:     prog.ModelSet,
		Cost:    cost.Hamming,
		Beta:    1,
		Runs:    60,
		Budget:  200_000,
		Seed:    5,
	})
	pres.Report(os.Stdout)

	// 2. Distribution of synthesis times and its best-fit family
	// (Figure 6's analysis applied to this problem).
	fmt.Println("\n== synthesis-time distribution ==")
	var times []float64
	for _, run := range pres.Runs {
		if run.Finished {
			times = append(times, float64(run.FinishIter))
		}
	}
	if len(times) < 10 {
		log.Fatal("too few finished runs to fit")
	}
	fmt.Printf("finished %d/%d runs; mean/median (tail ratio) = %.2f\n",
		len(times), len(pres.Runs), stats.TailRatio(times))
	for _, fit := range stats.FitAll(times) {
		fmt.Printf("  %-36s KS distance %.3f\n", fit.Dist, fit.KS)
	}

	// 3. Popular-state Markov chain (Figures 4 and 5): the estimated
	// chain's absorption times track the measured synthesis times.
	fmt.Println("\n== popular-state Markov chain ==")
	mres, err := experiment.MarkovExperiment(experiment.MarkovConfig{
		Trials: 80, Budget: 200_000, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	mres.Report(os.Stdout)
}
