// Superoptimization end to end: generate a synthetic binary corpus,
// scrape dataflow-related straight-line fragments from its basic
// blocks (Section 6 of the paper), turn one fragment into a
// programming-by-example problem, and synthesize an equivalent — often
// shorter — dataflow program with the adaptive restart strategy.
package main

import (
	"fmt"
	"log"

	"stochsyn"
	"stochsyn/internal/superopt"
)

func main() {
	// Run the scraping pipeline at a small scale: ~200 synthetic
	// functions, sampled down to 10 problems after signature dedup.
	opts := superopt.DefaultOptions(7)
	opts.CorpusFunctions = 200
	opts.SampleSize = 10
	problems, stats, err := superopt.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline:", stats)
	if len(problems) == 0 {
		log.Fatal("pipeline produced no problems")
	}

	solved := 0
	for _, sp := range problems[:min(4, len(problems))] {
		fmt.Printf("\n=== %s (signature %s) ===\n%s", sp.Name, sp.Signature, sp.Frag)

		// Re-express the scraped suite through the public API: the
		// search sees only input/output pairs.
		var cases []stochsyn.Case
		for _, c := range sp.Suite.Cases {
			cases = append(cases, stochsyn.Case{Inputs: c.Inputs, Output: c.Output})
		}
		problem, err := stochsyn.NewProblem(sp.Suite.NumInputs, cases)
		if err != nil {
			log.Fatal(err)
		}

		res, err := stochsyn.Synthesize(problem, stochsyn.Options{
			Strategy: "adaptive",
			Beta:     2,
			Budget:   8_000_000,
			Seed:     11,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Solved {
			fmt.Printf("no solution within %d iterations\n", res.Iterations)
			continue
		}
		solved++
		p, err := stochsyn.ParseProgram(res.Program, problem.NumInputs())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("synthesized in %d iterations (%d searches):\n  %s\n",
			res.Iterations, res.Searches, res.Program)
		fmt.Printf("original: %d instructions -> synthesized: %d nodes\n",
			len(sp.Frag.Insts), p.Size())
	}
	fmt.Printf("\nsolved %d problems\n", solved)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
