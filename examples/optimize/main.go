// Superoptimization proper: scrape fragments from a binary corpus,
// translate each into the dataflow dialect (an exact, known-correct
// starting program), then run the search in size-minimization mode to
// find smaller equivalents — the STOKE-style two-phase workflow that
// motivates the paper's superoptimization benchmark.
package main

import (
	"fmt"
	"log"

	"stochsyn"
	"stochsyn/internal/superopt"
)

func main() {
	opts := superopt.DefaultOptions(21)
	opts.CorpusFunctions = 150
	opts.SampleSize = 8
	opts.TestCases = 60
	problems, stats, err := superopt.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipeline:", stats)

	totalBefore, totalAfter := 0, 0
	for _, sp := range problems {
		if sp.Reference == nil {
			continue
		}
		var cases []stochsyn.Case
		for _, c := range sp.Suite.Cases {
			cases = append(cases, stochsyn.Case{Inputs: c.Inputs, Output: c.Output})
		}
		problem, err := stochsyn.NewProblem(sp.Suite.NumInputs, cases)
		if err != nil {
			log.Fatal(err)
		}

		res, err := stochsyn.Optimize(problem, sp.Reference.String(), stochsyn.Options{
			Beta:   1,
			Budget: 1_500_000,
			Seed:   5,
		})
		if err != nil {
			log.Fatal(err)
		}
		totalBefore += res.StartSize
		totalAfter += res.Size
		marker := " "
		if res.Improved {
			marker = "*"
		}
		fmt.Printf("%s %-8s %2d -> %2d nodes  %s\n",
			marker, sp.Name, res.StartSize, res.Size, res.Program)
	}
	if totalBefore > 0 {
		fmt.Printf("\ntotal: %d -> %d nodes (%.0f%% saved)\n",
			totalBefore, totalAfter, 100*(1-float64(totalAfter)/float64(totalBefore)))
	}
}
