# Developer entry points. `make ci` is the gate every change must
# pass: it builds everything, vets, checks formatting, runs the repo
# linter (cmd/repolint), and runs the full test suite under the race
# detector (the concurrent tree executor and the parallel naive pool
# are exercised heavily there). Each gate prints a one-line verdict;
# the first failing gate stops the run and names itself.

GO ?= go

.PHONY: ci build vet fmt lint test race short bench-exec bench-obs bench-eval bench-eqsat bench-prune server-smoke fleet-smoke

# gate runs one CI stage, echoing "ci: <name> ok" on success and
# "ci: FAIL at gate <name>" (then exiting nonzero) on failure, so a
# red run always ends by naming the gate that broke.
define gate
	@echo "ci: $(1)..."; if $(2); then echo "ci: $(1) ok"; else echo "ci: FAIL at gate $(1)"; exit 1; fi
endef

ci:
	$(call gate,build,$(GO) build ./...)
	$(call gate,vet,$(GO) vet ./...)
	$(call gate,fmt,$(MAKE) -s fmt)
	$(call gate,lint,$(GO) run ./cmd/repolint)
	$(call gate,fuzz,$(GO) test -run FuzzIncrementalEval ./internal/search/ && $(GO) test -run FuzzEqSat ./internal/eqsat/ && $(GO) test -run FuzzAbstractDomains ./internal/prog/analysis/absint/)
	$(call gate,eqsat-smoke,$(GO) test -run TestEqSatSmoke -count=1 ./internal/eqsat/)
	$(call gate,bench-prune,$(MAKE) -s bench-prune)
	$(call gate,bench-eval,$(MAKE) -s bench-eval)
	$(call gate,race,$(GO) test -race ./...)
	$(call gate,fleet-smoke,sh scripts/fleet_smoke.sh)
	@echo "ci: all gates passed (build vet fmt lint fuzz eqsat-smoke bench-prune bench-eval race fleet-smoke)"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; \
	fi

# lint runs the repository's own static checks: sync/atomic
# containment and nil-guarded obs hook access (see cmd/repolint).
lint:
	$(GO) run ./cmd/repolint

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# Print the concurrent executor's counters on a couple of benchmark
# problems (sequential-vs-concurrent wall clock, speculation, swaps,
# pool utilization).
bench-exec:
	$(GO) run ./cmd/bench -exp exec -problems 4 -budget 2000000

# Compare the bare search loop against the fully instrumented one
# (metrics registry + tracer attached). The acceptance bar for the
# observability layer is <= 2% overhead on ns/iter.
bench-obs:
	$(GO) test ./internal/search/ -run '^$$' -bench BenchmarkSearchLoop -benchtime 2s -count 3

# Compare the compiled plan engine and the interpreted incremental
# engine against the legacy copy-based path on the standing benchmark
# problems (same seed, same trajectory) and write BENCH_eval.json.
# Every row is measured twice per arm; the bench refuses to write the
# report on any fingerprint divergence (between repeats, or between
# the engine and plan arms) — which is why it doubles as a ci gate.
# The acceptance bar is >= 3x geomean iterations/sec for the plan
# engine over the legacy path.
bench-eval:
	$(GO) run ./cmd/bench -exp eval -budget 2000000

# Compare stochastic size minimization, equality-saturation extraction,
# and their hybrid on both suites (superopt references + expression
# fixtures) and write BENCH_eqsat.json. Every row is computed twice;
# the bench refuses to write the report on any divergence.
bench-eqsat:
	$(GO) run ./cmd/bench -exp eqsat -budget 2000000 -problems 8

# Compare the plain search against the same seeded search with
# abstract-interpretation pruning (Options.Prune) on the expression
# fixtures and write BENCH_prune.json. The on arm runs with PruneVerify;
# the bench refuses to write the report on trajectory divergence, any
# unsound prune decision, or reduction on fewer than half the rows —
# which is why it doubles as a ci gate.
bench-prune:
	$(GO) run ./cmd/bench -exp prune -budget 2000000

# Boot synthd on an ephemeral port, submit a small SyGuS job through
# `synth -remote`, and assert the server returns a solution.
server-smoke:
	sh scripts/server_smoke.sh

# Boot a 1-coordinator / 2-worker fleet, solve through the
# coordinator, kill a worker mid-run, and assert the job fails over to
# the survivor (see internal/server/fleet).
fleet-smoke:
	sh scripts/fleet_smoke.sh
