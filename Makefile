# Developer entry points. `make ci` is the gate every change must
# pass: it builds everything, vets, and runs the full test suite under
# the race detector (the concurrent tree executor and the parallel
# naive pool are exercised heavily there).

GO ?= go

.PHONY: ci build vet fmt test race short bench-exec bench-obs server-smoke

ci: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# Print the concurrent executor's counters on a couple of benchmark
# problems (sequential-vs-concurrent wall clock, speculation, swaps,
# pool utilization).
bench-exec:
	$(GO) run ./cmd/bench -exp exec -problems 4 -budget 2000000

# Compare the bare search loop against the fully instrumented one
# (metrics registry + tracer attached). The acceptance bar for the
# observability layer is <= 2% overhead on ns/iter.
bench-obs:
	$(GO) test ./internal/search/ -run '^$$' -bench BenchmarkSearchLoop -benchtime 2s -count 3

# Boot synthd on an ephemeral port, submit a small SyGuS job through
# `synth -remote`, and assert the server returns a solution.
server-smoke:
	sh scripts/server_smoke.sh
