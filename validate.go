package stochsyn

import (
	"errors"
	"fmt"
)

// Sentinel validation errors. Every error produced by
// Options.Validate and Problem.Validate (and by Synthesize's own
// input checks) wraps one of these, so callers can classify a failure
// with errors.Is and map it to the right reaction — the synthd HTTP
// API returns 400 Bad Request instead of 500, and the CLIs print a
// clean one-line message instead of a stack of internals.
var (
	// ErrInvalidOptions tags malformed Options: negative budgets or
	// temperatures, unknown cost functions, dialects, or restart
	// strategy specs, contradictory Greedy/Beta settings.
	ErrInvalidOptions = errors.New("invalid options")
	// ErrInvalidProblem tags malformed problems: nil problems, arity
	// limits exceeded, empty or inconsistent example sets.
	ErrInvalidProblem = errors.New("invalid problem")
)

// Validate checks the options without running anything. It returns
// nil when a Synthesize call with these options would accept them,
// and an error wrapping ErrInvalidOptions otherwise.
func (o Options) Validate() error {
	_, err := o.normalize()
	return err
}

// Validate checks that the problem is well-formed: non-nil, within
// the arity limit, with at least one example and consistent input
// counts. Problems built by NewProblem and ProblemFromFunc always
// validate; the method exists so services deserializing problem specs
// can check them up front. Errors wrap ErrInvalidProblem.
func (p *Problem) Validate() error {
	if p == nil || p.suite == nil {
		return fmt.Errorf("stochsyn: %w: nil problem", ErrInvalidProblem)
	}
	if p.suite.NumInputs > MaxInputs {
		return fmt.Errorf("stochsyn: %w: %d inputs exceeds the limit of %d", ErrInvalidProblem, p.suite.NumInputs, MaxInputs)
	}
	if err := p.suite.Validate(); err != nil {
		return fmt.Errorf("stochsyn: %w: %v", ErrInvalidProblem, err)
	}
	return nil
}
