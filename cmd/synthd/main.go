// Command synthd serves synthesis as a service: a JSON-over-HTTP API
// to submit stochastic-synthesis jobs, poll and cancel them, backed
// by a bounded job queue, a worker-pool scheduler, and an LRU result
// cache (see internal/server).
//
//	synthd -addr :8731 -workers 8
//
// With -fleet, synthd runs as a coordinator instead: it owns no
// scheduler of its own but shards submissions over the listed worker
// synthd instances by canonical cache key (rendezvous hashing), with
// health-checked failover, re-dispatch off dead workers, and
// backpressure propagation (see internal/server/fleet):
//
//	synthd -addr :8730 -fleet http://10.0.0.1:8731,http://10.0.0.2:8731
//
// The coordinator serves the same /v1 API, so synth -remote and the
// Go client work against either topology unchanged.
//
// Endpoints:
//
//	POST   /v1/jobs      submit a job (problem + options + budget)
//	GET    /v1/jobs      list jobs (?status= filters)
//	GET    /v1/jobs/{id} poll a job
//	DELETE /v1/jobs/{id} cancel a job
//	GET    /healthz      liveness probe
//	GET    /statsz       queue/cache/worker snapshot
//	GET    /metrics      Prometheus text exposition
//	GET    /tracez       recent trace events as JSONL
//	GET    /debug/pprof/ runtime profiles
//
// -trace FILE additionally tees every trace event to FILE as JSONL as
// it happens (the /tracez ring only keeps the most recent events).
//
// On SIGINT/SIGTERM the daemon stops accepting jobs and drains
// running ones, cancelling whatever is still unfinished at the drain
// deadline. Use -addr 127.0.0.1:0 to bind an ephemeral port; the
// chosen address is printed on stdout as "synthd: listening on ...".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
	"stochsyn/internal/server/fleet"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8731", "listen address (host:port; port 0 picks one)")
		workers = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		budget  = flag.Int("worker-budget", 0, "global budget of per-job search goroutines (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 256, "bounded job queue depth")
		cacheSz = flag.Int("cache", 1024, "result cache entries (negative disables)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown drain deadline")
		traceTo = flag.String("trace", "", "tee trace events to this file as JSONL")
		fleetWk = flag.String("fleet", "", "comma-separated worker synthd URLs; run as a fleet coordinator instead of a worker")
		verbose = flag.Bool("v", false, "log requests")
	)
	flag.Parse()

	// The server owns its obs sink by default; building it here lets
	// the -trace flag attach a file sink before any event fires.
	o := obs.New()
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		defer f.Close()
		o.Tracer.SetSink(f)
	}

	// Coordinator mode: no local scheduler, just sharded forwarding.
	var srv *server.Server
	var co *fleet.Coordinator
	var apiHandler http.Handler
	if *fleetWk != "" {
		var urls []string
		for _, u := range strings.Split(*fleetWk, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		var err error
		co, err = fleet.New(fleet.Config{Workers: urls, Obs: o})
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		apiHandler = co.Handler()
	} else {
		srv = server.New(server.Config{
			Workers:      *workers,
			WorkerBudget: *budget,
			QueueDepth:   *queue,
			CacheSize:    *cacheSz,
			DrainTimeout: *drain,
			Obs:          o,
		})
		apiHandler = srv.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthd:", err)
		os.Exit(1)
	}
	if co != nil {
		fmt.Printf("synthd: coordinating %d workers\n", len(co.Snapshot().Workers))
	}
	fmt.Printf("synthd: listening on %s\n", ln.Addr())

	handler := apiHandler
	if *verbose {
		handler = logRequests(handler)
	}
	hs := &http.Server{Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigc:
		fmt.Printf("synthd: %v: draining (deadline %v)\n", sig, *drain)
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "synthd:", err)
			os.Exit(1)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop taking requests, then drain the job scheduler (worker
	// mode) or stop the health prober (coordinator mode; its jobs
	// live on the workers and need no drain here).
	_ = hs.Shutdown(ctx)
	if co != nil {
		_ = co.Close()
		fmt.Println("synthd: coordinator stopped")
		return
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("synthd: drain deadline hit, cancelled remaining jobs (%v)\n", err)
		return
	}
	fmt.Println("synthd: drained cleanly")
}

// logRequests is a minimal request logger.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		fmt.Printf("synthd: %s %s (%v)\n", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
