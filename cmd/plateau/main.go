// Command plateau produces the plateau chart (Figures 1, 7, and 11 of
// the paper) for one synthesis problem: it runs many independent
// traced searches and bins the cost of every run against the logarithm
// of the iteration count, rendering an ASCII heat map and optional
// CSV.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	"stochsyn/internal/cost"
	"stochsyn/internal/experiment"
	"stochsyn/internal/prog"
	"stochsyn/internal/sygus"
	"stochsyn/internal/testcase"
)

func main() {
	var (
		expr     = flag.String("expr", "", "reference expression defining the problem")
		inputs   = flag.Int("inputs", 1, "inputs for -expr")
		cases    = flag.Int("cases", 100, "test cases for -expr")
		problem  = flag.String("problem", "", "built-in problem name (e.g. hd05)")
		costName = flag.String("cost", "hamming", "cost function")
		beta     = flag.Float64("beta", 1, "acceptance temperature")
		dialect  = flag.String("dialect", "full", "instruction dialect: full, base, model")
		runs     = flag.Int("runs", 50, "number of independent runs")
		budget   = flag.Int64("budget", 2_000_000, "iterations per run")
		seed     = flag.Uint64("seed", 1, "seed")
		csvPath  = flag.String("csv", "", "write the density grid as CSV")
	)
	flag.Parse()

	var suite *testcase.Suite
	name := *problem
	switch {
	case *expr != "":
		ref, err := prog.Parse(*expr, *inputs)
		if err != nil {
			fatal(err)
		}
		rng := rand.New(rand.NewPCG(*seed, 0xc97c50dd3f84d5b5))
		suite = testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, *inputs, *cases, rng)
		name = *expr
	case *problem != "":
		for _, p := range sygus.Standard(sygus.Options{Seed: *seed}) {
			if p.Name == *problem {
				suite = p.Suite
				break
			}
		}
		if suite == nil {
			fatal(fmt.Errorf("unknown built-in problem %q", *problem))
		}
	default:
		fatal(fmt.Errorf("one of -expr or -problem is required"))
	}

	kind, err := cost.ParseKind(*costName)
	if err != nil {
		fatal(err)
	}
	set := prog.FullSet
	switch *dialect {
	case "full":
	case "base":
		set = prog.BaseSet
	case "model":
		set = prog.ModelSet
	default:
		fatal(fmt.Errorf("unknown dialect %q", *dialect))
	}

	fmt.Printf("plateau chart for %s (cost=%s beta=%g, %d runs x %d iters)\n",
		name, kind, *beta, *runs, *budget)
	res := experiment.PlateauChart(experiment.PlateauConfig{
		Problem: experiment.Problem{Name: name, Suite: suite},
		Set:     set, Cost: kind, Beta: *beta,
		Runs: *runs, Budget: *budget, Seed: *seed,
	})
	res.Report(os.Stdout)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.CSV(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plateau:", err)
	os.Exit(1)
}
