// Command repolint enforces repository-wide invariants that go vet
// cannot express. It is stdlib-only (go/parser + go/types +
// go/importer) and runs as the "lint" gate of make ci.
//
// Checks:
//
//  1. atomics: "sync/atomic" may be imported only inside internal/obs
//     (the designated home for lock-free telemetry primitives) or in
//     files explicitly whitelisted below with a justification. Ad-hoc
//     atomics scattered through the tree are how torn counters and
//     unpublishable metrics happen; new concurrency primitives should
//     either live in internal/obs or argue their way onto the list.
//
//  2. hooks: the obs hook bundles (*obs.SearchHooks,
//     *obs.RestartHooks) are nil when instrumentation is disabled,
//     which is the common case. Their metric-handle fields may
//     therefore only be selected through a local variable that the
//     enclosing function provably guards: either compared against nil
//     (`h == nil` / `h != nil`) somewhere in the function, or
//     assigned from an address-of-composite-literal / new(...). Any
//     other field selection — in particular chained ones like
//     `r.cfg.Obs.Passes.Inc()` — is reported, enforcing the
//     rebind-then-check idiom the hot paths use. Package internal/obs
//     itself is exempt: that is where the nil-safe wrappers live.
//
//  3. eval: direct calls to the legacy per-case evaluator
//     (*prog.Program).Eval are confined to internal/prog (its home),
//     internal/cost (the copy-based reference path and Solves), and
//     internal/prog/analysis (constant folding over concrete values).
//     Everything else must evaluate through the incremental engine
//     (prog.EvalState) or the cost layer, so the engine stays the
//     single hot-path door and its reuse telemetry stays honest. The
//     sanctioned fallback prog.EvalInto may additionally be called
//     from internal/mutate (the merge move's legacy probe when no
//     engine is bound). Test files are exempt: differential tests
//     deliberately compare the engine against Program.Eval.
//
//  4. rules: every internal/prog/analysis Rule composite literal must
//     carry a literal, unique Name string. The name is the join key
//     between the simplifier, the lints, eqsat's rewrite engine, and
//     the severity table; a duplicate would silently shadow a rule in
//     any consumer that indexes by name. Loop-built or computed names
//     defeat the static check and are reported outright.
//
//  5. absint: every prog.Op constant must appear as an explicit key in
//     BOTH abstract-domain transfer tables of
//     internal/prog/analysis/absint (the known-bits table, element
//     type BitsTransfer, and the interval table, element type
//     SpanTransfer). The tables are [prog.NumOps]-indexed arrays, so a
//     missing entry is a nil function that panics only when the new
//     opcode is first analyzed; ops with no useful transfer must
//     register ⊤ (topB/topS) deliberately. The check classifies table
//     literals by element signature, so renaming the variables cannot
//     silently retire it.
//
//  6. plan: every prog.Op constant must appear as an explicit key in
//     the plan compiler's fusion table (internal/prog/plan, the
//     [prog.NumOps]Kernels array). As with check 5, a missing row is a
//     nil kernel that panics only when the opcode is first compiled;
//     pseudo-ops and ops lowered through the generic fill/copy kernels
//     must take the zero Kernels row deliberately. Tables are again
//     classified by element signature, not variable name.
//
// Usage:
//
//	repolint [-dir module-root]
//
// Exit status is 1 if any finding is reported, 2 on operational
// errors (unparseable files, type-check failures).
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// atomicWhitelist lists files (module-relative, slash-separated)
// allowed to import sync/atomic outside internal/obs, each with the
// reason it needs raw atomics.
var atomicWhitelist = map[string]string{
	"internal/restart/treeexec.go":    "concurrent tree executor: lock-free busy/spent accounting on the worker hot path",
	"internal/search/search.go":       "lock-free published-snapshot pointer so readers never block the search loop",
	"internal/server/server.go":       "busy-worker gauge and monotonic job-id allocation",
	"internal/restart/cancel_test.go": "test-only: cross-goroutine progress probe for cancellation timing",
}

func main() {
	dir := flag.String("dir", ".", "module root to lint (directory containing go.mod)")
	flag.Parse()
	n, err := run(*dir, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stdout, "repolint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run lints the module rooted at dir, writing findings to out, and
// returns the number of findings.
func run(dir string, out io.Writer) (int, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return 0, err
	}
	pkgs, err := collectPackages(dir)
	if err != nil {
		return 0, err
	}

	var findings []string
	fset := token.NewFileSet()

	// Check 1: sync/atomic containment. Syntactic, covers every file
	// including tests.
	for _, p := range pkgs {
		for _, file := range p.allFiles {
			f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
			if err != nil {
				return 0, err
			}
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) != "sync/atomic" {
					continue
				}
				rel := relPath(dir, file)
				if strings.HasPrefix(rel, "internal/obs/") {
					continue
				}
				if _, ok := atomicWhitelist[rel]; ok {
					continue
				}
				findings = append(findings, fmt.Sprintf(
					"%s: imports sync/atomic outside internal/obs; use the obs primitives or whitelist the file in cmd/repolint with a justification",
					fset.Position(imp.Pos())))
			}
		}
	}

	// Check 2: nil-guarded obs hook access. Type-based, non-test files
	// only (the hot paths under scrutiny are not in tests).
	ld := &loader{
		fset:    fset,
		dir:     dir,
		modPath: modPath,
		dirs:    map[string]*pkgDir{},
		typed:   map[string]*typedPkg{},
		std:     importer.Default(),
	}
	for _, p := range pkgs {
		ld.dirs[p.importPath] = p
	}
	ruleNames := map[string][]string{}
	for _, p := range pkgs {
		if len(p.goFiles) == 0 {
			continue
		}
		tp, err := ld.load(p.importPath)
		if err != nil {
			return 0, fmt.Errorf("type-checking %s: %w", p.importPath, err)
		}
		findings = append(findings, checkEvalContainment(fset, tp, modPath, p.importPath)...)
		findings = append(findings, collectRuleNames(fset, tp, modPath, ruleNames)...)
		if p.importPath == modPath+"/internal/prog/analysis/absint" {
			fs, err := checkAbsintTables(ld, tp, modPath)
			if err != nil {
				return 0, err
			}
			findings = append(findings, fs...)
		}
		if p.importPath == modPath+"/internal/prog/plan" {
			fs, err := checkPlanTable(ld, tp, modPath)
			if err != nil {
				return 0, err
			}
			findings = append(findings, fs...)
		}
		if p.importPath == modPath+"/internal/obs" {
			continue // home of the nil-safe wrappers
		}
		findings = append(findings, checkHookAccess(fset, tp, modPath)...)
	}

	// Check 4 (second half): duplicate rule names, across every package
	// that builds a Rule literal.
	for name, positions := range ruleNames {
		if len(positions) > 1 {
			sort.Strings(positions)
			findings = append(findings, fmt.Sprintf(
				"%s: analysis.Rule name %q also declared at %s; rule names must be unique (they key the simplifier, lints, and eqsat)",
				positions[0], name, strings.Join(positions[1:], ", ")))
		}
	}

	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	return len(findings), nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// pkgDir is one directory of Go files within the module.
type pkgDir struct {
	importPath string
	goFiles    []string // non-test files, sorted
	allFiles   []string // including _test.go, sorted
}

// collectPackages walks the module and lists its package directories.
func collectPackages(root string) ([]*pkgDir, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	byDir := map[string]*pkgDir{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		p := byDir[dir]
		if p == nil {
			rel := relPath(root, dir)
			ip := modPath
			if rel != "." {
				ip = modPath + "/" + rel
			}
			p = &pkgDir{importPath: ip}
			byDir[dir] = p
		}
		p.allFiles = append(p.allFiles, path)
		if !strings.HasSuffix(path, "_test.go") {
			p.goFiles = append(p.goFiles, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*pkgDir
	for _, p := range byDir {
		sort.Strings(p.goFiles)
		sort.Strings(p.allFiles)
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].importPath < pkgs[j].importPath })
	return pkgs, nil
}

func relPath(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return path
	}
	return filepath.ToSlash(rel)
}

// typedPkg is a type-checked package with the syntax and type info
// the hooks check walks.
type typedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks module packages from source, resolving
// module-internal imports recursively and everything else through the
// default (compiler export data) importer.
type loader struct {
	fset    *token.FileSet
	dir     string
	modPath string
	dirs    map[string]*pkgDir
	typed   map[string]*typedPkg
	std     types.Importer
}

func (l *loader) load(importPath string) (*typedPkg, error) {
	if tp, ok := l.typed[importPath]; ok {
		if tp == nil {
			return nil, fmt.Errorf("import cycle through %s", importPath)
		}
		return tp, nil
	}
	p, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("unknown module package %s", importPath)
	}
	l.typed[importPath] = nil // cycle marker
	var files []*ast.File
	for _, file := range p.goFiles {
		f, err := parser.ParseFile(l.fset, file, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
			tp, err := l.load(path)
			if err != nil {
				return nil, err
			}
			return tp.pkg, nil
		}
		return l.std.Import(path)
	})}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	tp := &typedPkg{pkg: pkg, files: files, info: info}
	l.typed[importPath] = tp
	return tp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// collectRuleNames records the position of every analysis.Rule
// composite literal's Name into names (keyed by the name string) and
// reports literals whose Name is missing or not a plain string literal
// — those defeat the static duplicate check. Test files are not loaded
// by the type-checker, so test-local Rule literals are exempt.
func collectRuleNames(fset *token.FileSet, tp *typedPkg, modPath string, names map[string][]string) []string {
	var findings []string
	rulePath := modPath + "/internal/prog/analysis"
	for _, f := range tp.files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := tp.info.Types[cl]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Name() != "Rule" || obj.Pkg() == nil || obj.Pkg().Path() != rulePath {
				return true
			}
			pos := fset.Position(cl.Pos()).String()
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Name" {
					continue
				}
				lit, ok := kv.Value.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					findings = append(findings, fmt.Sprintf(
						"%s: analysis.Rule Name must be a literal string (computed names defeat the duplicate check)", pos))
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true // unreachable on type-checked source
				}
				names[name] = append(names[name], pos)
				return true
			}
			findings = append(findings, fmt.Sprintf(
				"%s: analysis.Rule literal without a Name field", pos))
			return true
		})
	}
	return findings
}

// checkHookAccess reports unguarded field selections through the
// possibly-nil obs hook bundle pointers.
func checkHookAccess(fset *token.FileSet, tp *typedPkg, modPath string) []string {
	var findings []string
	isHookPtr := func(t types.Type) bool {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != modPath+"/internal/obs" {
			return false
		}
		return obj.Name() == "SearchHooks" || obj.Name() == "RestartHooks"
	}
	info := tp.info
	for _, file := range tp.files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Pass 1: identifiers of hook pointer type the function
			// proves non-nil — compared against nil anywhere, or bound
			// to a freshly allocated bundle.
			guarded := map[types.Object]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
						if !isNilIdent(info, pair[1]) {
							continue
						}
						if id, ok := pair[0].(*ast.Ident); ok && isHookPtr(info.TypeOf(id)) {
							if obj := info.ObjectOf(id); obj != nil {
								guarded[obj] = true
							}
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break
						}
						id, ok := lhs.(*ast.Ident)
						if !ok || !isHookPtr(info.TypeOf(id)) || !isFreshAlloc(n.Rhs[i]) {
							continue
						}
						if obj := info.ObjectOf(id); obj != nil {
							guarded[obj] = true
						}
					}
				}
				return true
			})
			// Pass 2: flag unguarded field selections.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				se, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sel := info.Selections[se]
				if sel == nil || sel.Kind() != types.FieldVal || !isHookPtr(info.TypeOf(se.X)) {
					return true
				}
				if id, ok := se.X.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && guarded[obj] {
						return true
					}
				}
				findings = append(findings, fmt.Sprintf(
					"%s: field %s selected through possibly-nil *obs.%s; rebind to a local and nil-check it first",
					fset.Position(se.Sel.Pos()), se.Sel.Name, hookName(info.TypeOf(se.X))))
				return true
			})
		}
	}
	return findings
}

// evalAllowed lists packages (module-relative import suffixes) that
// may call (*prog.Program).Eval directly; everything else goes
// through the incremental engine or the cost layer.
var evalAllowed = map[string]bool{
	"internal/prog":          true, // home of the evaluator
	"internal/cost":          true, // copy-based reference path, Solves
	"internal/prog/analysis": true, // constant folding over concrete values
}

// evalIntoAllowed lists packages that may call the sanctioned
// fallback prog.EvalInto.
var evalIntoAllowed = map[string]bool{
	"internal/prog":   true, // definition site
	"internal/mutate": true, // merge probe when no engine is bound
}

// checkEvalContainment reports calls to (*prog.Program).Eval and
// prog.EvalInto from packages outside their containment lists. Only
// non-test files are loaded into tp, so differential tests comparing
// the engine against Program.Eval are exempt by construction.
func checkEvalContainment(fset *token.FileSet, tp *typedPkg, modPath, importPath string) []string {
	rel := strings.TrimPrefix(importPath, modPath+"/")
	progPath := modPath + "/internal/prog"
	var findings []string
	info := tp.info
	isProgProgram := func(t types.Type) bool {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Program" && obj.Pkg() != nil && obj.Pkg().Path() == progPath
	}
	for _, file := range tp.files {
		ast.Inspect(file, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sel := info.Selections[se]
			if sel != nil && sel.Kind() == types.MethodVal &&
				se.Sel.Name == "Eval" && isProgProgram(info.TypeOf(se.X)) {
				if !evalAllowed[rel] {
					findings = append(findings, fmt.Sprintf(
						"%s: direct (*prog.Program).Eval call outside its containment list; evaluate through prog.EvalState or the cost layer (see cmd/repolint check 3)",
						fset.Position(se.Sel.Pos())))
				}
				return true
			}
			// prog.EvalInto shows up as a package-qualified selector
			// whose Sel resolves to the function object.
			if se.Sel.Name == "EvalInto" {
				if obj, ok := info.Uses[se.Sel].(*types.Func); ok &&
					obj.Pkg() != nil && obj.Pkg().Path() == progPath && !evalIntoAllowed[rel] {
					findings = append(findings, fmt.Sprintf(
						"%s: prog.EvalInto call outside internal/mutate; evaluate through prog.EvalState or the cost layer (see cmd/repolint check 3)",
						fset.Position(se.Sel.Pos())))
				}
			}
			return true
		})
	}
	return findings
}

// opKeyedTables is the shared machinery of the table-totality checks
// (5 and 6): it returns the sorted exported prog.Op constant names and,
// for each requested element type name, the set of opcode names that
// appear as explicit keys in some [...]Elem array composite literal of
// tp. Tables are identified by element signature, not by variable
// name, and keys are resolved through the type-checker, so neither
// renaming a table nor spelling a key through an alias evades a check
// built on this.
func opKeyedTables(ld *loader, tp *typedPkg, modPath string, elems ...string) ([]string, map[string]map[string]bool, error) {
	progPkg, err := ld.load(modPath + "/internal/prog")
	if err != nil {
		return nil, nil, err
	}
	isOp := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Op" && obj.Pkg() != nil && obj.Pkg().Path() == modPath+"/internal/prog"
	}
	var ops []string
	scope := progPkg.pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Exported() && isOp(c.Type()) {
			ops = append(ops, name)
		}
	}
	sort.Strings(ops)

	wanted := map[string]bool{}
	for _, e := range elems {
		wanted[e] = true
	}
	// Element type name → set of opcode names keyed in that table.
	tables := map[string]map[string]bool{}
	for _, f := range tp.files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := tp.info.Types[cl]
			if !ok {
				return true
			}
			arr, ok := tv.Type.Underlying().(*types.Array)
			if !ok {
				return true
			}
			elem, ok := arr.Elem().(*types.Named)
			if !ok {
				return true
			}
			en := elem.Obj().Name()
			if !wanted[en] {
				return true
			}
			keys := tables[en]
			if keys == nil {
				keys = map[string]bool{}
				tables[en] = keys
			}
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				var id *ast.Ident
				switch k := kv.Key.(type) {
				case *ast.SelectorExpr:
					id = k.Sel
				case *ast.Ident:
					id = k
				default:
					continue
				}
				if c, ok := tp.info.Uses[id].(*types.Const); ok && isOp(c.Type()) {
					keys[c.Name()] = true
				}
			}
			return true
		})
	}
	return ops, tables, nil
}

// checkAbsintTables enforces check 5: every prog.Op constant appears
// as an explicit key in both abstract-domain transfer tables (element
// types BitsTransfer and SpanTransfer).
func checkAbsintTables(ld *loader, tp *typedPkg, modPath string) ([]string, error) {
	ops, tables, err := opKeyedTables(ld, tp, modPath, "BitsTransfer", "SpanTransfer")
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, tbl := range []string{"BitsTransfer", "SpanTransfer"} {
		keys, ok := tables[tbl]
		if !ok {
			findings = append(findings, fmt.Sprintf(
				"internal/prog/analysis/absint: no transfer table with element type %s found (see cmd/repolint check 5)", tbl))
			continue
		}
		for _, op := range ops {
			if !keys[op] {
				findings = append(findings, fmt.Sprintf(
					"internal/prog/analysis/absint: prog.%s missing from the %s table; every opcode needs an explicit entry in both domains (register topB/topS deliberately — see cmd/repolint check 5)",
					op, tbl))
			}
		}
	}
	return findings, nil
}

// checkPlanTable enforces check 6: every prog.Op constant appears as
// an explicit key in the plan compiler's fusion table (the
// [prog.NumOps]Kernels array of internal/prog/plan). A missing row is
// a nil kernel that panics only when the new opcode is first compiled
// into a plan; ops with no kernels of their own (pseudo-ops, ops the
// compiler lowers through the fill/copy kernels) must take the zero
// Kernels row deliberately.
func checkPlanTable(ld *loader, tp *typedPkg, modPath string) ([]string, error) {
	ops, tables, err := opKeyedTables(ld, tp, modPath, "Kernels")
	if err != nil {
		return nil, err
	}
	var findings []string
	keys, ok := tables["Kernels"]
	if !ok {
		findings = append(findings, fmt.Sprintf(
			"internal/prog/plan: no fusion table with element type Kernels found (see cmd/repolint check 6)"))
		return findings, nil
	}
	for _, op := range ops {
		if !keys[op] {
			findings = append(findings, fmt.Sprintf(
				"internal/prog/plan: prog.%s missing from the Kernels fusion table; every opcode needs an explicit row (pseudo-ops take the zero row deliberately — see cmd/repolint check 6)",
				op))
		}
	}
	return findings, nil
}

func hookName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return "Hooks"
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// isFreshAlloc reports whether e evaluates to a pointer that cannot
// be nil: &T{...} or new(T).
func isFreshAlloc(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, isLit := e.X.(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}
