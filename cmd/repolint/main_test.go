package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for the linter to chew
// on. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// obsSrc is a minimal stand-in for internal/obs: one hook bundle with
// a nil-safe handle type.
const obsSrc = `package obs

type Counter struct{ n int64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

type SearchHooks struct {
	Iterations *Counter
	ID         uint64
}

type RestartHooks struct {
	Restarts *Counter
}
`

func lint(t *testing.T, dir string) (int, string) {
	t.Helper()
	var sb strings.Builder
	n, err := run(dir, &sb)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	return n, sb.String()
}

func TestAtomicContainment(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module fakemod\n\ngo 1.22\n",
		"internal/obs/obs.go": obsSrc,
		// Allowed: atomics inside internal/obs.
		"internal/obs/extra.go": "package obs\n\nimport \"sync/atomic\"\n\nvar x atomic.Int64\n",
		// Finding: atomics in an unblessed package.
		"internal/rogue/rogue.go": "package rogue\n\nimport \"sync/atomic\"\n\nvar x atomic.Int64\n",
		// Finding: test files are covered too.
		"internal/rogue2/a.go":      "package rogue2\n",
		"internal/rogue2/a_test.go": "package rogue2\n\nimport \"sync/atomic\"\n\nvar x atomic.Int64\n",
	})
	n, out := lint(t, dir)
	if n != 2 {
		t.Fatalf("findings = %d, want 2\n%s", n, out)
	}
	for _, want := range []string{"internal/rogue/rogue.go", "internal/rogue2/a_test.go"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "internal/obs/extra.go") {
		t.Errorf("internal/obs wrongly flagged:\n%s", out)
	}
}

func TestHookAccessGuards(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module fakemod\n\ngo 1.22\n",
		"internal/obs/obs.go": obsSrc,
		"internal/use/use.go": `package use

import "fakemod/internal/obs"

// ok: rebind + nil check.
func good(h *obs.SearchHooks) {
	if h == nil {
		return
	}
	h.Iterations.Inc()
}

// ok: if-scoped rebind.
type cfg struct{ Obs *obs.RestartHooks }

func goodScoped(c cfg) {
	if h := c.Obs; h != nil {
		h.Restarts.Inc()
	}
}

// ok: freshly allocated bundle.
func goodAlloc() *obs.SearchHooks {
	h := &obs.SearchHooks{}
	h.ID = 7
	return h
}

// finding: no nil check on the parameter.
func badParam(h *obs.SearchHooks) {
	h.Iterations.Inc()
}

// finding: chained selection, no rebind.
func badChain(c cfg) {
	c.Obs.Restarts.Inc()
}
`,
	})
	n, out := lint(t, dir)
	if n != 2 {
		t.Fatalf("findings = %d, want 2\n%s", n, out)
	}
	if !strings.Contains(out, "Iterations") || !strings.Contains(out, "Restarts") {
		t.Errorf("unexpected findings:\n%s", out)
	}
	if strings.Contains(out, "use.go:6") || strings.Contains(out, "ID") {
		t.Errorf("guarded access wrongly flagged:\n%s", out)
	}
}

// analysisSrc is a minimal stand-in for internal/prog/analysis: just
// the Rule type the duplicate-name check keys on.
const analysisSrc = `package analysis

type Rule struct {
	Name   string
	Reason string
}
`

func TestRuleNameUniqueness(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                             "module fakemod\n\ngo 1.22\n",
		"internal/obs/obs.go":                obsSrc,
		"internal/prog/analysis/analysis.go": analysisSrc,
		"internal/prog/analysis/rules.go": `package analysis

var rules = []Rule{
	{Name: "fold-const", Reason: "ok"},
	{Name: "xor-self", Reason: "ok"},
	{Name: "fold-const", Reason: "duplicate"},
}
`,
		// A duplicate in another package is caught too, as is a computed
		// name and a literal with no name at all.
		"internal/use/use.go": `package use

import "fakemod/internal/prog/analysis"

var name = "xor" + "-self"

var extra = []analysis.Rule{
	{Name: "xor-self"},
	{Name: name},
	{Reason: "anonymous"},
}
`,
	})
	n, out := lint(t, dir)
	if n != 4 {
		t.Fatalf("findings = %d, want 4\n%s", n, out)
	}
	for _, want := range []string{
		`"fold-const"`, `"xor-self"`,
		"must be a literal string",
		"without a Name field",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestAbsintTableTotality exercises check 5 on a shrunken stand-in:
// the fake prog package declares three opcodes, but the absint tables
// cover only two of them in one domain and all three in the other —
// the missing entry must be reported for exactly the one table, and
// the resolution must see through keys spelled without the selector
// (dot-imported or package-local aliases are not used here, but plain
// identifiers are accepted when they resolve to prog.Op constants).
func TestAbsintTableTotality(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module fakemod\n\ngo 1.22\n",
		"internal/obs/obs.go": obsSrc,
		"internal/prog/prog.go": `package prog

type Op uint8

const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	numOps
)

const NumOps = int(numOps)
`,
		"internal/prog/analysis/absint/absint.go": `package absint

import "fakemod/internal/prog"

type Bits struct{ Zero, One uint64 }
type Span struct{ Lo, Hi uint64 }

type BitsTransfer func(a, b Bits) Bits
type SpanTransfer func(a, b Span) Span

func topB(a, b Bits) Bits { return Bits{} }
func topS(a, b Span) Span { return Span{} }

var bitsTable = [prog.NumOps]BitsTransfer{
	prog.OpInvalid: topB,
	prog.OpAdd:     topB,
	// prog.OpSub deliberately missing.
}

var spanTable = [prog.NumOps]SpanTransfer{
	prog.OpInvalid: topS,
	prog.OpAdd:     topS,
	prog.OpSub:     topS,
}

var _ = bitsTable
var _ = spanTable
`,
	})
	n, out := lint(t, dir)
	if n != 1 {
		t.Fatalf("findings = %d, want 1\n%s", n, out)
	}
	if !strings.Contains(out, "prog.OpSub missing from the BitsTransfer table") {
		t.Errorf("output missing the OpSub finding:\n%s", out)
	}
	if strings.Contains(out, "SpanTransfer table") {
		t.Errorf("complete span table wrongly flagged:\n%s", out)
	}
}

// TestPlanTableTotality exercises check 6 on a shrunken stand-in: the
// fake prog package declares three opcodes, but the plan package's
// fusion table covers only two — the missing row must be reported, and
// an explicit zero row (OpInvalid's) must count as covered.
func TestPlanTableTotality(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":              "module fakemod\n\ngo 1.22\n",
		"internal/obs/obs.go": obsSrc,
		"internal/prog/prog.go": `package prog

type Op uint8

const (
	OpInvalid Op = iota
	OpAdd
	OpSub
	numOps
)

const NumOps = int(numOps)
`,
		"internal/prog/plan/plan.go": `package plan

import "fakemod/internal/prog"

type kernel func(dst, a, b []uint64, imm uint64, c0, c1 int)

type Kernels struct {
	VV kernel
	VI kernel
	IV kernel
}

func vvAdd(dst, a, b []uint64, _ uint64, c0, c1 int) {}

var fusion = [prog.NumOps]Kernels{
	prog.OpInvalid: {},
	prog.OpAdd:     {VV: vvAdd},
	// prog.OpSub deliberately missing.
}

var _ = fusion
`,
	})
	n, out := lint(t, dir)
	if n != 1 {
		t.Fatalf("findings = %d, want 1\n%s", n, out)
	}
	if !strings.Contains(out, "prog.OpSub missing from the Kernels fusion table") {
		t.Errorf("output missing the OpSub finding:\n%s", out)
	}
	if strings.Contains(out, "OpInvalid") || strings.Contains(out, "OpAdd") {
		t.Errorf("covered rows wrongly flagged:\n%s", out)
	}
}

// TestRepoIsClean pins the acceptance criterion: the linter reports
// zero findings on this repository itself. make ci runs the same
// check; this test keeps it enforced under plain go test.
func TestRepoIsClean(t *testing.T) {
	n, out := lint(t, "../..")
	if n != 0 {
		t.Errorf("repolint on the repo: %d finding(s)\n%s", n, out)
	}
}
