package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"stochsyn/internal/experiment"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// eqsatReport is the BENCH_eqsat.json payload. Every field below Date
// is deterministic in (seed, problems, budget): the experiment
// recomputes each row and refuses to report if the repeat disagrees.
type eqsatReport struct {
	Date          string                `json:"date"`
	Budget        int64                 `json:"budget_per_arm"`
	Seed          uint64                `json:"seed"`
	Deterministic bool                  `json:"deterministic"`
	Rows          []experiment.EqSatRow `json:"rows"`
	StochMeanRed  float64               `json:"stoch_mean_reduction"`
	EqSatMeanRed  float64               `json:"eqsat_mean_reduction"`
	HybridMeanRed float64               `json:"hybrid_mean_reduction"`
	HybridWins    int                   `json:"hybrid_wins"`
}

// fixtureRows are the sygus-style side of the comparison: named
// reference expressions (Hacker's Delight flavored) whose suites are
// sampled from the expression itself, mirroring how expr-based server
// jobs are built.
var fixtureRows = []struct {
	name, expr string
	inputs     int
}{
	{"hd01-pad", "andq(andq(x, subq(x, 1)), orq(x, x))", 1},
	{"offset-chain", "addq(addq(addq(x, 1), 2), 3)", 1},
	{"xor-cancel", "xorq(xorq(x, y), y)", 2},
	{"mul-ladder", "mulq(mulq(x, 2), 4)", 1},
	{"select-redun", "orq(andq(x, y), andq(x, y))", 2},
	{"shift-mask", "shlq(x, andq(y, 63))", 2},
	{"double-not", "notq(notq(addq(x, y)))", 2},
	{"sub-self", "subq(addq(x, y), subq(addq(x, y), x))", 2},
}

// runEqSat compares stochastic size minimization, equality-saturation
// extraction, and their hybrid on both suites (the superopt pipeline's
// reference-carrying problems plus the expression fixtures) and writes
// BENCH_eqsat.json.
func runEqSat(cfg benchConfig) {
	var probs []experiment.EqSatProblem

	// Fixture suite: deterministic expression-derived problems.
	for _, f := range fixtureRows {
		ref := prog.MustParse(f.expr, f.inputs)
		rng := rand.New(rand.NewPCG(cfg.seed, 0xe95a7e95a7))
		suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
			f.inputs, 50, rng)
		probs = append(probs, experiment.EqSatProblem{
			Name: f.name, SuiteName: "fixture", Suite: suite, Ref: ref,
		})
	}

	// Superopt suite: scraped fragments with translated references.
	n := cfg.problems
	if n > 8 {
		n = 8 // two stochastic arms per row; keep the default run short
	}
	sprobs, stats, err := experiment.SuperoptBenchmarkWithRefs(cfg.seed, n)
	if err != nil {
		fatal(err)
	}
	fmt.Println("superopt pipeline:", stats)
	probs = append(probs, sprobs...)

	fmt.Printf("stochastic vs eqsat-extraction vs hybrid: %d problems, budget=%d per arm, seed=%d\n",
		len(probs), cfg.budget, cfg.seed)
	res := experiment.EqSat(experiment.EqSatConfig{
		Problems:    probs,
		Budget:      cfg.budget,
		Seed:        cfg.seed,
		Parallelism: cfg.par,
	})
	res.Report(os.Stdout)
	if !res.Deterministic {
		fatal(fmt.Errorf("eqsat bench: recomputed rows diverged; refusing to write BENCH_eqsat.json"))
	}

	stoch, eq, hy, wins := res.Summary()
	report := eqsatReport{
		Date:          time.Now().UTC().Format(time.RFC3339),
		Budget:        cfg.budget,
		Seed:          cfg.seed,
		Deterministic: res.Deterministic,
		Rows:          res.Rows,
		StochMeanRed:  stoch,
		EqSatMeanRed:  eq,
		HybridMeanRed: hy,
		HybridWins:    wins,
	}
	f, err := os.Create("BENCH_eqsat.json")
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Println("wrote BENCH_eqsat.json")
}
