// Command bench regenerates the paper's evaluation artifacts
// (Figures 1, 4, 6, 7, 10, 11, 13, 14-16; Tables 1-3) at a
// configurable scale. Each experiment prints a textual report and can
// also emit CSV for external plotting.
//
// Experiments:
//
//	bench -exp betasweep  -bench sygus            Figure 13 + Table 1
//	bench -exp compare    -bench superopt         Figures 14-16 + Tables 2-3
//	bench -exp plateau    -problem hd05 -beta 1   Figures 1/7/11
//	bench -exp fits       -bench sygus            Figure 6
//	bench -exp model                              Figure 10 / Section 5.2.1
//	bench -exp markov                             Figure 4
//	bench -exp exec      -workers 8               concurrent tree executor counters
//	bench -exp eval                               incremental-eval engine vs legacy path
//	bench -exp eqsat                              stochastic vs eqsat-extraction vs hybrid
//	bench -exp prune                              plain vs abstractly-pruned search
//	bench -exp all                                everything at smoke scale
//
// The defaults are sized to finish in minutes on a laptop; raise
// -trials, -budget, and -problems toward the paper's scale (50 trials,
// 100M iterations, full benchmarks) as time allows.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"stochsyn/internal/cost"
	"stochsyn/internal/experiment"
	"stochsyn/internal/prog"
	"stochsyn/internal/restart"
	"stochsyn/internal/search"
	"stochsyn/internal/superopt"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: betasweep, compare, plateau, fits, model, markov, exec, eval, eqsat, all")
		benchSel = flag.String("bench", "sygus", "benchmark: sygus or superopt")
		problems = flag.Int("problems", 12, "number of benchmark problems")
		names    = flag.String("names", "", "comma-separated problem names to keep (after loading)")
		trials   = flag.Int("trials", 10, "trials per configuration (paper: 50)")
		budget   = flag.Int64("budget", 2_000_000, "iteration budget per trial (paper: 100M)")
		betaPts  = flag.Int("betapoints", 7, "beta grid points for the sweep")
		algos    = flag.String("algos", "naive,luby,adaptive", "comma-separated strategy specs")
		costsSel = flag.String("costs", "hamming,inctests,logdiff", "comma-separated cost functions")
		problem  = flag.String("problem", "hd05", "problem name for -exp plateau")
		beta     = flag.Float64("beta", 1, "beta for plateau/fits experiments")
		costSel  = flag.String("cost", "hamming", "cost function for plateau experiment")
		runs     = flag.Int("runs", 40, "runs for plateau chart")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		par      = flag.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "worker pool size for -exp exec (0 = GOMAXPROCS)")
		csvPath  = flag.String("csv", "", "also write CSV to this file")
	)
	flag.Parse()

	var algoList []string
	for _, a := range strings.Split(*algos, ",") {
		if a = strings.TrimSpace(a); a != "" {
			algoList = append(algoList, a)
		}
	}
	var costList []cost.Kind
	for _, c := range strings.Split(*costsSel, ",") {
		k, err := cost.ParseKind(strings.TrimSpace(c))
		if err != nil {
			fatal(err)
		}
		costList = append(costList, k)
	}

	var csvw io.Writer
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csvw = f
	}

	cfg := benchConfig{
		benchSel: *benchSel, problems: *problems, trials: *trials,
		budget: *budget, betaPts: *betaPts, algos: algoList, costs: costList,
		problem: *problem, beta: *beta, costSel: *costSel, runs: *runs,
		seed: *seed, par: *par, csv: csvw, names: *names, workers: *workers,
	}

	switch *exp {
	case "betasweep":
		runBetaSweep(cfg)
	case "compare":
		runCompare(cfg)
	case "plateau":
		runPlateau(cfg)
	case "fits":
		runFits(cfg)
	case "model":
		runModel(cfg)
	case "markov":
		runMarkov(cfg)
	case "cutoff":
		runCutoff(cfg)
	case "failures":
		runFailures(cfg)
	case "exec":
		runExec(cfg)
	case "eval":
		runEval(cfg)
	case "eqsat":
		runEqSat(cfg)
	case "prune":
		runPrune(cfg)
	case "all":
		fmt.Println("== model chains (Figure 10) ==")
		runModel(cfg)
		fmt.Println("\n== markov prediction (Figure 4) ==")
		runMarkov(cfg)
		fmt.Println("\n== plateau chart (Figures 1/7/11) ==")
		runPlateau(cfg)
		fmt.Println("\n== distribution fits (Figure 6) ==")
		runFits(cfg)
		fmt.Println("\n== beta sweep (Figure 13 / Table 1) ==")
		runBetaSweep(cfg)
		fmt.Println("\n== comparison (Figures 14-16 / Tables 2-3) ==")
		runCompare(cfg)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

type benchConfig struct {
	benchSel string
	problems int
	trials   int
	budget   int64
	betaPts  int
	algos    []string
	costs    []cost.Kind
	problem  string
	beta     float64
	costSel  string
	runs     int
	seed     uint64
	par      int
	workers  int
	csv      io.Writer
	names    string
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// filterNames keeps only the named problems when -names is given.
func filterNames(b *experiment.Benchmark, names string) *experiment.Benchmark {
	if names == "" {
		return b
	}
	keep := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		keep[strings.TrimSpace(n)] = true
	}
	out := &experiment.Benchmark{Name: b.Name, Set: b.Set}
	for _, p := range b.Problems {
		if keep[p.Name] {
			out.Problems = append(out.Problems, p)
		}
	}
	if len(out.Problems) == 0 {
		fatal(fmt.Errorf("no benchmark problems match -names %q", names))
	}
	return out
}

func loadBench(cfg benchConfig) *experiment.Benchmark {
	return filterNames(loadBenchRaw(cfg), cfg.names)
}

func loadBenchRaw(cfg benchConfig) *experiment.Benchmark {
	switch {
	case cfg.benchSel == "sygus":
		n := cfg.problems
		if cfg.names != "" {
			n = 50 // load the full pool before filtering by name
		}
		return experiment.SyGuSBenchmark(cfg.seed, n)
	case cfg.benchSel == "superopt":
		b, stats, err := experiment.SuperoptBenchmark(cfg.seed, cfg.problems)
		if err != nil {
			fatal(err)
		}
		fmt.Println("superopt pipeline:", stats)
		return b
	case strings.HasPrefix(cfg.benchSel, "probdir:"):
		// A directory of .prob files written by cmd/genbench.
		dir := strings.TrimPrefix(cfg.benchSel, "probdir:")
		names, suites, err := superopt.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		b := &experiment.Benchmark{Name: "probdir", Set: prog.FullSet}
		for i := range names {
			b.Problems = append(b.Problems, experiment.Problem{Name: names[i], Suite: suites[i]})
		}
		if cfg.problems > 0 && len(b.Problems) > cfg.problems {
			b.Problems = b.Problems[:cfg.problems]
		}
		if len(b.Problems) == 0 {
			fatal(fmt.Errorf("no .prob files in %s", dir))
		}
		return b
	}
	fatal(fmt.Errorf("unknown benchmark %q (want sygus, superopt, or probdir:<path>)", cfg.benchSel))
	return nil
}

func runBetaSweep(cfg benchConfig) {
	bench := loadBench(cfg)
	fmt.Printf("beta sweep on %s: algos=%v trials=%d budget=%d\n",
		bench, cfg.algos, cfg.trials, cfg.budget)
	// The grid depends on the cost function's scale; sweep each cost
	// separately and merge.
	res := &experiment.BetaSweepResult{Bench: bench.Name}
	for _, kind := range cfg.costs {
		sub := experiment.BetaSweep(experiment.BetaSweepConfig{
			Bench:       bench,
			Algorithms:  cfg.algos,
			Costs:       []cost.Kind{kind},
			Betas:       experiment.DefaultBetaGrid(kind, cfg.betaPts),
			Trials:      cfg.trials,
			Budget:      cfg.budget,
			Seed:        cfg.seed,
			Parallelism: cfg.par,
		})
		res.Curves = append(res.Curves, sub.Curves...)
	}
	for _, kind := range cfg.costs {
		fmt.Println()
		res.Plot(os.Stdout, kind, 64, 14)
	}
	fmt.Println("\nTable 1: optimal beta")
	res.OptimalBetaTable(os.Stdout)
	if cfg.csv != nil {
		if err := res.CSV(cfg.csv); err != nil {
			fatal(err)
		}
	}
}

func runCompare(cfg benchConfig) {
	bench := loadBench(cfg)
	fmt.Printf("comparison on %s: algos=%v trials=%d budget=%d\n",
		bench, cfg.algos, cfg.trials, cfg.budget)

	// First find the optimal beta per (algorithm, cost) on a subset,
	// as the paper does, then compare at those betas.
	sweepBench := bench.Subset(0.34, cfg.seed)
	optimal := map[string]float64{}
	for _, kind := range cfg.costs {
		sub := experiment.BetaSweep(experiment.BetaSweepConfig{
			Bench:       sweepBench,
			Algorithms:  cfg.algos,
			Costs:       []cost.Kind{kind},
			Betas:       experiment.DefaultBetaGrid(kind, cfg.betaPts),
			Trials:      maxInt(2, cfg.trials/3),
			Budget:      cfg.budget,
			Seed:        cfg.seed ^ 0x517cc1b727220a95,
			Parallelism: cfg.par,
		})
		for _, algo := range cfg.algos {
			optimal[algo+"|"+kind.String()] = sub.Curve(algo, kind).OptimalBeta()
		}
	}
	fmt.Println("tuned betas:")
	for k, v := range optimal {
		fmt.Printf("  %-24s %g\n", k, v)
	}

	res := experiment.Compare(experiment.CompareConfig{
		Bench:      bench,
		Algorithms: cfg.algos,
		Costs:      cfg.costs,
		Beta: func(algo string, kind cost.Kind) float64 {
			return optimal[algo+"|"+kind.String()]
		},
		Trials:      cfg.trials,
		Budget:      cfg.budget,
		Seed:        cfg.seed,
		Parallelism: cfg.par,
	})
	for _, kind := range cfg.costs {
		fmt.Println()
		res.PlotCactus(os.Stdout, kind, cfg.algos, 64, 14)
	}
	n := len(bench.Problems)
	ranks := []int{(n + 1) / 2, (3*n + 2) / 4}
	fmt.Println("\nTable 2: speedups at ordinal ranks (vs adaptive baseline)")
	res.SpeedupTable(os.Stdout, cfg.algos, cfg.costs, ranks, 3)
	fmt.Println("\nTable 3: fraction unsolved within budget")
	res.UnsolvedTable(os.Stdout, cfg.algos, cfg.costs)
	fmt.Printf("\nsolved at least once (any algorithm/cost): %.1f%%\n", 100*res.SolvedAtLeastOnce())
	if cfg.csv != nil {
		if err := res.CSV(cfg.csv); err != nil {
			fatal(err)
		}
	}
}

func runPlateau(cfg benchConfig) {
	bench := loadBench(cfg)
	var prob *experiment.Problem
	for i := range bench.Problems {
		if bench.Problems[i].Name == cfg.problem {
			prob = &bench.Problems[i]
			break
		}
	}
	if prob == nil {
		prob = &bench.Problems[0]
		fmt.Printf("problem %q not in benchmark; using %s\n", cfg.problem, prob.Name)
	}
	kind, err := cost.ParseKind(cfg.costSel)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plateau chart for %s (cost=%s beta=%g, %d runs x %d iters)\n",
		prob.Name, kind, cfg.beta, cfg.runs, cfg.budget)
	res := experiment.PlateauChart(experiment.PlateauConfig{
		Problem: *prob, Set: bench.Set, Cost: kind, Beta: cfg.beta,
		Runs: cfg.runs, Budget: cfg.budget, Seed: cfg.seed, Parallelism: cfg.par,
	})
	res.Report(os.Stdout)
	if cfg.csv != nil {
		if err := res.CSV(cfg.csv); err != nil {
			fatal(err)
		}
	}
}

func runFits(cfg benchConfig) {
	bench := loadBench(cfg)
	kind, err := cost.ParseKind(cfg.costSel)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("distribution fits on %s (cost=%s beta=%g, %d trials per problem)\n",
		bench, kind, cfg.beta, cfg.trials)
	res := experiment.Fits(experiment.FitConfig{
		Bench: bench, Problems: minInt(10, cfg.problems), Cost: kind, Beta: cfg.beta,
		Trials: cfg.trials, Budget: cfg.budget, Seed: cfg.seed, Parallelism: cfg.par,
	})
	res.Report(os.Stdout)
	if cfg.csv != nil {
		if err := res.CSV(cfg.csv); err != nil {
			fatal(err)
		}
	}
}

func runModel(cfg benchConfig) {
	algos := []string{"naive", "luby:100", "adaptive:100"}
	fmt.Printf("model chains: algos=%v trials=%d budget=%d\n", algos, cfg.trials*4, cfg.budget)
	res := experiment.ModelChains(experiment.ModelChainConfig{
		Algorithms: algos, Trials: cfg.trials * 4, Budget: cfg.budget,
		Seed: cfg.seed, Parallelism: cfg.par,
	})
	experiment.ReportModelChains(os.Stdout, res)
}

func runCutoff(cfg benchConfig) {
	bench := loadBench(cfg)
	kind, err := cost.ParseKind(cfg.costSel)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optimal-cutoff ablation on %s (cost=%s beta=%g)\n", bench, kind, cfg.beta)
	results := experiment.CutoffAblation(experiment.CutoffConfig{
		Bench: bench, Cost: kind, Beta: cfg.beta,
		PilotRuns: cfg.trials * 2, Trials: cfg.trials,
		Budget: cfg.budget, Seed: cfg.seed, Parallelism: cfg.par,
	})
	experiment.ReportCutoff(os.Stdout, results)
}

func runFailures(cfg benchConfig) {
	opts := superopt.DefaultOptions(cfg.seed)
	if cfg.problems > 0 {
		opts.SampleSize = cfg.problems
		opts.CorpusFunctions = 60 + 8*cfg.problems
	}
	probs, stats, err := superopt.Build(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Println("superopt pipeline:", stats)
	fmt.Printf("failure analysis (Section 7.4): %d problems, %d trials x %d iterations each\n",
		len(probs), cfg.trials, cfg.budget)
	res := experiment.FailureAnalysis(experiment.FailureConfig{
		Problems: probs, Trials: cfg.trials, Budget: cfg.budget,
		Beta: cfg.beta, Seed: cfg.seed, Parallelism: cfg.par,
	})
	res.Report(os.Stdout)
}

// runExec compares the sequential doubling-tree oracle with the
// concurrent executor on real benchmark problems and prints the
// executor's counters (ExecStats). The Result columns must agree
// exactly between the two — the executor reproduces the sequential
// schedule bit for bit — so the interesting output is the wall-clock
// ratio and the speculation/utilization accounting.
func runExec(cfg benchConfig) {
	bench := loadBench(cfg)
	kind, err := cost.ParseKind(cfg.costSel)
	if err != nil {
		fatal(err)
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("concurrent tree executor on %s: workers=%d budget=%d cost=%s beta=%g t0=%d\n",
		bench, workers, cfg.budget, kind, cfg.beta, restart.DefaultT0)
	fmt.Printf("%-12s %-8s  %6s %9s %5s  %8s %8s  %6s %6s %6s  %9s %9s %9s %6s %5s\n",
		"problem", "algo", "solved", "iters", "srch",
		"seq", "conc", "passes", "steps", "skip",
		"spent", "spec", "strand", "swaps", "util")
	for i := range bench.Problems {
		p := bench.Problems[i]
		factory := search.NewFactory(p.Suite, search.Options{
			Set:  bench.Set,
			Cost: kind,
			Beta: cfg.beta,
			Seed: cfg.seed,
		})
		for _, adaptive := range []bool{true, false} {
			algo := "pluby"
			if adaptive {
				algo = "adaptive"
			}
			t0 := time.Now()
			seq := (&restart.Tree{T0: restart.DefaultT0, Adaptive: adaptive}).
				Run(factory, cfg.budget)
			seqDur := time.Since(t0)
			t0 = time.Now()
			conc := (&restart.Tree{T0: restart.DefaultT0, Adaptive: adaptive, Workers: workers}).
				Run(factory, cfg.budget)
			concDur := time.Since(t0)
			if seq.Solved != conc.Solved || seq.Iterations != conc.Iterations || seq.Searches != conc.Searches {
				fatal(fmt.Errorf("%s/%s: concurrent result diverged from sequential oracle:\n  seq  %+v\n  conc %+v",
					p.Name, algo, seq, conc))
			}
			st := conc.Exec
			if st == nil {
				fatal(fmt.Errorf("%s/%s: concurrent run reported no executor stats", p.Name, algo))
			}
			fmt.Printf("%-12s %-8s  %6v %9d %5d  %8s %8s  %6d %6d %6d  %9d %9d %9d %6d %4.0f%%\n",
				p.Name, algo, conc.Solved, conc.Iterations, conc.Searches,
				seqDur.Round(time.Millisecond), concDur.Round(time.Millisecond),
				st.Passes, st.Steps, st.Skipped,
				st.BudgetSpent, st.Speculated, st.BudgetStranded,
				st.Swaps, 100*st.Utilization)
		}
	}
}

func runMarkov(cfg benchConfig) {
	fmt.Printf("markov prediction for or(shl(x), x): trials=%d\n", cfg.trials*6)
	res, err := experiment.MarkovExperiment(experiment.MarkovConfig{
		Trials: cfg.trials * 6, Budget: minI64(cfg.budget, 500_000), Seed: cfg.seed,
	})
	if err != nil {
		fatal(err)
	}
	res.Report(os.Stdout)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
