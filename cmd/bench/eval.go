package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"time"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// evalCase is one row of the incremental-evaluation benchmark: a
// reference expression, its arity, and the suite size.
type evalCase struct {
	Name   string `json:"name"`
	Expr   string `json:"-"`
	Inputs int    `json:"inputs"`
	Cases  int    `json:"cases"`

	LegacyItersPerSec float64 `json:"legacy_iters_per_sec"`
	EngineItersPerSec float64 `json:"engine_iters_per_sec"`
	PlanItersPerSec   float64 `json:"plan_iters_per_sec"`
	EngineSpeedup     float64 `json:"engine_speedup"`
	PlanSpeedup       float64 `json:"plan_speedup"`
	PlanVsEngine      float64 `json:"plan_vs_engine"`
	NodeReuseRate     float64 `json:"node_reuse_rate"`
	CaseSkipRate      float64 `json:"case_skip_rate"`
}

// evalReport is the BENCH_eval.json payload.
type evalReport struct {
	Date                 string      `json:"date"`
	Budget               int64       `json:"budget_per_path"`
	Seed                 uint64      `json:"seed"`
	Rows                 []*evalCase `json:"rows"`
	GeomeanEngineSpeedup float64     `json:"geomean_engine_speedup"`
	GeomeanPlanSpeedup   float64     `json:"geomean_plan_speedup"`
	GeomeanPlanVsEngine  float64     `json:"geomean_plan_vs_engine"`
}

// evalArm selects which evaluation path measureEval drives.
type evalArm uint8

const (
	armLegacy evalArm = iota // copy-based per-case tree walk
	armEngine                // interpreted incremental engine
	armPlan                  // compiled plan engine (the default path)
)

func (a evalArm) String() string {
	switch a {
	case armLegacy:
		return "legacy"
	case armEngine:
		return "engine"
	}
	return "plan"
}

// evalPrint is the trajectory fingerprint of one measured path: the
// restart count plus the cumulative evaluation-work counters. Two runs
// of the same arm must reproduce it exactly, and the engine and plan
// arms must agree with each other — the three paths are required to
// walk bit-identical trajectories, so any divergence voids the
// comparison and the benchmark refuses to write a report.
type evalPrint struct {
	restarts uint64
	stats    prog.EvalStats
}

// runEval compares the compiled plan engine and the interpreted
// incremental engine against the legacy copy-based path on the
// standing benchmark problems: same seed, same options, so all paths
// walk the identical (bit-equal) trajectory and the measurement
// isolates evaluation cost. Every row is measured twice per arm; the
// benchmark aborts if the repeats or the engine/plan fingerprints
// diverge. The report is printed and written to BENCH_eval.json.
func runEval(cfg benchConfig) {
	rows := []*evalCase{
		{Name: "searchloop", Expr: "mulq(mulq(x, x), addq(x, y))", Inputs: 2, Cases: 50},
		{Name: "hd01", Expr: "andq(x, subq(x, 1))", Inputs: 1, Cases: 100},
		{Name: "select", Expr: "orq(andq(x, y), andq(notq(x), z))", Inputs: 3, Cases: 50},
		{Name: "smallsuite", Expr: "xorq(x, shrq(x, 1))", Inputs: 1, Cases: 16},
	}
	budget := cfg.budget
	fmt.Printf("plan + incremental engines vs legacy copy-based path (budget=%d per row, seed=%d)\n",
		budget, cfg.seed)
	fmt.Printf("%-12s %6s %6s  %11s %11s %11s %7s %7s %7s  %7s %7s\n",
		"problem", "inputs", "cases", "legacy it/s", "engine it/s", "plan it/s",
		"eng/leg", "pln/leg", "pln/eng", "reuse", "skip")
	report := evalReport{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Budget: budget,
		Seed:   cfg.seed,
		Rows:   rows,
	}
	logEng, logPlan, logPvE, n := 0.0, 0.0, 0.0, 0
	for _, row := range rows {
		ref := prog.MustParse(row.Expr, row.Inputs)
		rng := rand.New(rand.NewPCG(cfg.seed, 0xda7a5e7))
		suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
			row.Inputs, row.Cases, rng)
		opts := search.Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: cfg.seed}

		var prints [3]evalPrint
		row.LegacyItersPerSec = measureTwice(row.Name, suite, opts, budget, armLegacy, &prints[armLegacy])
		row.EngineItersPerSec = measureTwice(row.Name, suite, opts, budget, armEngine, &prints[armEngine])
		row.PlanItersPerSec = measureTwice(row.Name, suite, opts, budget, armPlan, &prints[armPlan])
		// The legacy arm reports no eval-work counters, but its restart
		// count must still match: all three arms replay one trajectory.
		if prints[armLegacy].restarts != prints[armPlan].restarts {
			fatal(fmt.Errorf("bench eval: %s: legacy walked %d restarts, plan %d — trajectories diverged",
				row.Name, prints[armLegacy].restarts, prints[armPlan].restarts))
		}
		if prints[armEngine] != prints[armPlan] {
			fatal(fmt.Errorf("bench eval: %s: engine and plan fingerprints diverged\nengine: %+v\nplan:   %+v",
				row.Name, prints[armEngine], prints[armPlan]))
		}
		row.EngineSpeedup = row.EngineItersPerSec / row.LegacyItersPerSec
		row.PlanSpeedup = row.PlanItersPerSec / row.LegacyItersPerSec
		row.PlanVsEngine = row.PlanItersPerSec / row.EngineItersPerSec
		stats := prints[armPlan].stats
		if stats.NodesTotal > 0 {
			row.NodeReuseRate = 1 - float64(stats.NodesReevaluated)/float64(stats.NodesTotal)
		}
		if stats.CasesTotal > 0 {
			row.CaseSkipRate = 1 - float64(stats.CasesEvaluated)/float64(stats.CasesTotal)
		}
		logEng += math.Log(row.EngineSpeedup)
		logPlan += math.Log(row.PlanSpeedup)
		logPvE += math.Log(row.PlanVsEngine)
		n++
		fmt.Printf("%-12s %6d %6d  %11.0f %11.0f %11.0f %6.2fx %6.2fx %6.2fx  %6.1f%% %6.1f%%\n",
			row.Name, row.Inputs, row.Cases,
			row.LegacyItersPerSec, row.EngineItersPerSec, row.PlanItersPerSec,
			row.EngineSpeedup, row.PlanSpeedup, row.PlanVsEngine,
			100*row.NodeReuseRate, 100*row.CaseSkipRate)
	}
	report.GeomeanEngineSpeedup = math.Exp(logEng / float64(n))
	report.GeomeanPlanSpeedup = math.Exp(logPlan / float64(n))
	report.GeomeanPlanVsEngine = math.Exp(logPvE / float64(n))
	fmt.Printf("geomean speedup: engine %.2fx, plan %.2fx (plan vs engine %.2fx)\n",
		report.GeomeanEngineSpeedup, report.GeomeanPlanSpeedup, report.GeomeanPlanVsEngine)

	f, err := os.Create("BENCH_eval.json")
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Println("wrote BENCH_eval.json")
}

// measureTwice runs measureEval twice and checks the two passes
// produce the same trajectory fingerprint; a mismatch means the path
// is nondeterministic and the measurement is meaningless, so the
// benchmark aborts. The reported rate is the faster of the two passes
// (both passes do identical logical work, so taking the better clock
// only sheds scheduler noise).
func measureTwice(name string, suite *testcase.Suite, opts search.Options, budget int64, arm evalArm, out *evalPrint) float64 {
	r1 := measureEval(suite, opts, budget, arm, out)
	var second evalPrint
	r2 := measureEval(suite, opts, budget, arm, &second)
	if *out != second {
		fatal(fmt.Errorf("bench eval: %s: %s arm diverged between repeat runs\nfirst:  %+v\nsecond: %+v",
			name, arm, *out, second))
	}
	return math.Max(r1, r2)
}

// measureEval times one search trajectory and returns iterations/sec,
// recording the trajectory fingerprint into print. Solved runs restart
// with a fresh (reseeded) run until the budget is consumed, so all
// paths do identical logical work for a fair clock.
func measureEval(suite *testcase.Suite, opts search.Options, budget int64, arm evalArm, print *evalPrint) float64 {
	opts.LegacyEval = arm == armLegacy
	opts.InterpEval = arm == armEngine
	var done int64
	*print = evalPrint{}
	// flush folds the current run's cumulative engine stats into the
	// fingerprint. EvalStats is cumulative per Run, so it is sampled
	// exactly once per run: just before reseeding, and after the budget
	// is exhausted.
	flush := func(r *search.Run) {
		s := r.EvalStats()
		print.stats.NodesReevaluated += s.NodesReevaluated
		print.stats.NodesTotal += s.NodesTotal
		print.stats.CasesEvaluated += s.CasesEvaluated
		print.stats.CasesTotal += s.CasesTotal
	}
	start := time.Now()
	r := search.New(suite, opts)
	for done < budget {
		used, solved := r.Step(budget - done)
		done += used
		if solved && done < budget {
			flush(r)
			print.restarts++
			o := opts
			o.Seed = opts.Seed + print.restarts*0x9e3779b97f4a7c15
			r = search.New(suite, o)
		}
	}
	flush(r)
	return float64(done) / time.Since(start).Seconds()
}
