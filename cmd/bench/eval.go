package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"time"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// evalCase is one row of the incremental-evaluation benchmark: a
// reference expression, its arity, and the suite size.
type evalCase struct {
	Name   string `json:"name"`
	Expr   string `json:"-"`
	Inputs int    `json:"inputs"`
	Cases  int    `json:"cases"`

	LegacyItersPerSec float64 `json:"legacy_iters_per_sec"`
	EngineItersPerSec float64 `json:"engine_iters_per_sec"`
	Speedup           float64 `json:"speedup"`
	NodeReuseRate     float64 `json:"node_reuse_rate"`
	CaseSkipRate      float64 `json:"case_skip_rate"`
}

// evalReport is the BENCH_eval.json payload.
type evalReport struct {
	Date          string      `json:"date"`
	Budget        int64       `json:"budget_per_path"`
	Seed          uint64      `json:"seed"`
	Rows          []*evalCase `json:"rows"`
	GeomeanSpeedF float64     `json:"geomean_speedup"`
}

// runEval compares the incremental evaluation engine against the
// legacy copy-based path on the standing benchmark problems: same
// seed, same options, so both paths walk the identical (bit-equal)
// trajectory and the measurement isolates evaluation cost. The report
// is printed and written to BENCH_eval.json.
func runEval(cfg benchConfig) {
	rows := []*evalCase{
		{Name: "searchloop", Expr: "mulq(mulq(x, x), addq(x, y))", Inputs: 2, Cases: 50},
		{Name: "hd01", Expr: "andq(x, subq(x, 1))", Inputs: 1, Cases: 100},
		{Name: "select", Expr: "orq(andq(x, y), andq(notq(x), z))", Inputs: 3, Cases: 50},
		{Name: "smallsuite", Expr: "xorq(x, shrq(x, 1))", Inputs: 1, Cases: 16},
	}
	budget := cfg.budget
	fmt.Printf("incremental-eval engine vs legacy copy-based path (budget=%d per row, seed=%d)\n",
		budget, cfg.seed)
	fmt.Printf("%-12s %6s %6s  %12s %12s %8s  %8s %8s\n",
		"problem", "inputs", "cases", "legacy it/s", "engine it/s", "speedup", "reuse", "skip")
	report := evalReport{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Budget: budget,
		Seed:   cfg.seed,
		Rows:   rows,
	}
	logSum, n := 0.0, 0
	for _, row := range rows {
		ref := prog.MustParse(row.Expr, row.Inputs)
		rng := rand.New(rand.NewPCG(cfg.seed, 0xda7a5e7))
		suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
			row.Inputs, row.Cases, rng)
		opts := search.Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: cfg.seed}

		row.LegacyItersPerSec = measureEval(suite, opts, budget, true, nil)
		var stats prog.EvalStats
		row.EngineItersPerSec = measureEval(suite, opts, budget, false, &stats)
		row.Speedup = row.EngineItersPerSec / row.LegacyItersPerSec
		if stats.NodesTotal > 0 {
			row.NodeReuseRate = 1 - float64(stats.NodesReevaluated)/float64(stats.NodesTotal)
		}
		if stats.CasesTotal > 0 {
			row.CaseSkipRate = 1 - float64(stats.CasesEvaluated)/float64(stats.CasesTotal)
		}
		logSum += math.Log(row.Speedup)
		n++
		fmt.Printf("%-12s %6d %6d  %12.0f %12.0f %7.2fx  %7.1f%% %7.1f%%\n",
			row.Name, row.Inputs, row.Cases,
			row.LegacyItersPerSec, row.EngineItersPerSec, row.Speedup,
			100*row.NodeReuseRate, 100*row.CaseSkipRate)
	}
	report.GeomeanSpeedF = math.Exp(logSum / float64(n))
	fmt.Printf("geomean speedup: %.2fx\n", report.GeomeanSpeedF)

	f, err := os.Create("BENCH_eval.json")
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Println("wrote BENCH_eval.json")
}

// measureEval times one search trajectory and returns iterations/sec.
// Solved runs restart with a fresh (reseeded) run until the budget is
// consumed, so both paths do identical logical work for a fair clock.
func measureEval(suite *testcase.Suite, opts search.Options, budget int64, legacy bool, stats *prog.EvalStats) float64 {
	opts.LegacyEval = legacy
	var done int64
	reseed := uint64(0)
	// flush folds the current run's cumulative engine stats into the
	// caller's accumulator. EvalStats is cumulative per Run, so it is
	// sampled exactly once per run: just before reseeding, and after
	// the budget is exhausted.
	flush := func(r *search.Run) {
		if stats == nil {
			return
		}
		s := r.EvalStats()
		stats.NodesReevaluated += s.NodesReevaluated
		stats.NodesTotal += s.NodesTotal
		stats.CasesEvaluated += s.CasesEvaluated
		stats.CasesTotal += s.CasesTotal
	}
	start := time.Now()
	r := search.New(suite, opts)
	for done < budget {
		used, solved := r.Step(budget - done)
		done += used
		if solved && done < budget {
			flush(r)
			reseed++
			o := opts
			o.Seed = opts.Seed + reseed*0x9e3779b97f4a7c15
			r = search.New(suite, o)
		}
	}
	flush(r)
	return float64(done) / time.Since(start).Seconds()
}
