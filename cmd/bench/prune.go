package main

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"stochsyn/internal/experiment"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// pruneReport is the BENCH_prune.json payload. Every field below Date
// is deterministic in (seed, budget): the experiment recomputes each
// row and the writer below refuses to emit the file if the repeat
// disagrees, if any prune decision was unsound, or if fewer than half
// the rows show a measurable proposal-space reduction.
type pruneReport struct {
	Date          string                `json:"date"`
	Budget        int64                 `json:"budget_per_arm"`
	Seed          uint64                `json:"seed"`
	Deterministic bool                  `json:"deterministic"`
	Rows          []experiment.PruneRow `json:"rows"`
	ReducedRows   int                   `json:"reduced_rows"`
	Unsound       int64                 `json:"unsound"`
}

// runPrune compares the plain search against the same seeded search
// with abstract-interpretation pruning on the expression fixtures and
// writes BENCH_prune.json. The on arm runs with PruneVerify so every
// pruned proposal is concretely re-checked: a nonzero unsound count
// means the abstract domains proved something false and the report
// must not ship.
func runPrune(cfg benchConfig) {
	var probs []experiment.PruneProblem
	for _, f := range fixtureRows {
		ref := prog.MustParse(f.expr, f.inputs)
		rng := rand.New(rand.NewPCG(cfg.seed, 0xe95a7e95a7))
		suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
			f.inputs, 50, rng)
		probs = append(probs, experiment.PruneProblem{
			Name: f.name, Suite: suite, RefSize: ref.BodyLen(),
		})
	}

	fmt.Printf("plain vs pruned search: %d problems, budget=%d per arm, seed=%d\n",
		len(probs), cfg.budget, cfg.seed)
	res := experiment.Prune(experiment.PruneConfig{
		Problems:    probs,
		Budget:      cfg.budget,
		Seed:        cfg.seed,
		Parallelism: cfg.par,
	})
	res.Report(os.Stdout)

	if !res.Deterministic {
		fatal(fmt.Errorf("prune bench: recomputed rows diverged; refusing to write BENCH_prune.json"))
	}
	reduced, unsound := res.Summary()
	if unsound != 0 {
		fatal(fmt.Errorf("prune bench: %d unsound prune decision(s); refusing to write BENCH_prune.json", unsound))
	}
	if reduced*2 < len(res.Rows) {
		fatal(fmt.Errorf("prune bench: only %d/%d rows reduced; refusing to write BENCH_prune.json",
			reduced, len(res.Rows)))
	}

	report := pruneReport{
		Date:          time.Now().UTC().Format(time.RFC3339),
		Budget:        cfg.budget,
		Seed:          cfg.seed,
		Deterministic: res.Deterministic,
		Rows:          res.Rows,
		ReducedRows:   reduced,
		Unsound:       unsound,
	}
	f, err := os.Create("BENCH_prune.json")
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	fmt.Println("wrote BENCH_prune.json")
}
