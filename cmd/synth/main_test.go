package main

import (
	"strings"
	"testing"

	"stochsyn/internal/prog"
)

func TestParseSpec(t *testing.T) {
	src := `
# doubling table
0x0 0x0
1 2
0x10 0x20
-1 -2
`
	suite, err := parseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if suite.NumInputs != 1 || suite.Len() != 4 {
		t.Fatalf("suite shape: %d inputs, %d cases", suite.NumInputs, suite.Len())
	}
	if suite.Cases[1].Inputs[0] != 1 || suite.Cases[1].Output != 2 {
		t.Error("decimal case parsed wrong")
	}
	if suite.Cases[3].Inputs[0] != ^uint64(0) {
		t.Error("negative input parsed wrong")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"5\n", "at least one input"},
		{"1 2\n1 2 3\n", "earlier lines had"},
		{"zz 1\n", "invalid syntax"},
		{"", "negative input count"},
	}
	for _, tc := range cases {
		_, err := parseSpec(tc.src)
		if err == nil {
			t.Errorf("parseSpec accepted %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseSpec(%q) error %q, want %q", tc.src, err, tc.want)
		}
	}
}

func TestParseWord(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0", 0},
		{"42", 42},
		{"0xff", 255},
		{"-1", ^uint64(0)},
		{"-0x10", ^uint64(15)},
	}
	for _, tc := range cases {
		got, err := parseWord(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseWord(%q) = %#x, %v; want %#x", tc.in, got, err, tc.want)
		}
	}
	if _, err := parseWord("bogus"); err == nil {
		t.Error("parseWord accepted bogus input")
	}
}

func TestPickDialect(t *testing.T) {
	set, red, err := pickDialect("full")
	if err != nil || set != prog.FullSet || red {
		t.Error("full dialect wrong")
	}
	set, red, err = pickDialect("model")
	if err != nil || set != prog.ModelSet || !red {
		t.Error("model dialect wrong")
	}
	if _, _, err := pickDialect("nope"); err == nil {
		t.Error("bogus dialect accepted")
	}
}

func TestLoadProblemSourceExclusivity(t *testing.T) {
	if _, _, err := loadProblem("", 1, 10, "", "", "", 1); err == nil {
		t.Error("no source accepted")
	}
	if _, _, err := loadProblem("x", 1, 10, "spec.txt", "", "", 1); err == nil {
		t.Error("two sources accepted")
	}
}

func TestLoadProblemBuiltin(t *testing.T) {
	suite, desc, err := loadProblem("", 1, 10, "", "", "hd03", 1)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Len() == 0 || !strings.Contains(desc, "hd03") {
		t.Errorf("builtin load: %d cases, desc %q", suite.Len(), desc)
	}
	if _, _, err := loadProblem("", 1, 10, "", "", "hd99", 1); err == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestLoadProblemExpr(t *testing.T) {
	suite, _, err := loadProblem("addq(x, y)", 2, 30, "", "", "", 7)
	if err != nil {
		t.Fatal(err)
	}
	if suite.NumInputs != 2 || suite.Len() != 30 {
		t.Errorf("expr load shape: %d/%d", suite.NumInputs, suite.Len())
	}
	for _, c := range suite.Cases {
		if c.Output != c.Inputs[0]+c.Inputs[1] {
			t.Fatal("expr semantics wrong")
		}
	}
}
