// Command synth synthesizes a single program from input/output
// examples using the stochastic search and restart strategies of the
// library.
//
// The problem comes from one of three sources:
//
//	-expr "andq(x, subq(x, 1))" -inputs 1   a reference expression
//	-spec file.txt                           an examples file
//	-problem hd03                            a built-in benchmark entry
//
// An examples file holds one case per line: the input values followed
// by the expected output, whitespace-separated, each decimal or 0x
// hex. Lines starting with # are comments.
//
// Example:
//
//	synth -expr "orq(andq(x, y), andq(notq(x), z))" -inputs 3 -strategy adaptive
//
// With -remote the problem is submitted to a running synthd daemon
// instead of being solved in-process:
//
//	synth -remote http://127.0.0.1:8731 -sl problem.sl
//
// Ctrl-C cancels cleanly in both modes (remotely, the job is
// cancelled on the server before exiting).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"stochsyn/internal/cost"
	"stochsyn/internal/mutate"
	"stochsyn/internal/obs"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/prog/analysis/absint"
	"stochsyn/internal/restart"
	"stochsyn/internal/search"
	"stochsyn/internal/server"
	"stochsyn/internal/server/client"
	"stochsyn/internal/sygus"
	"stochsyn/internal/sygusif"
	"stochsyn/internal/testcase"
	"stochsyn/internal/textplot"
)

func main() {
	var (
		expr     = flag.String("expr", "", "reference expression to synthesize an equivalent of")
		inputs   = flag.Int("inputs", 1, "number of inputs (with -expr)")
		cases    = flag.Int("cases", 100, "number of generated test cases (with -expr)")
		specFile = flag.String("spec", "", "examples file (inputs... output per line)")
		slFile   = flag.String("sl", "", "SyGuS-IF .sl file (PBE bitvector subset)")
		problem  = flag.String("problem", "", "built-in benchmark problem name (e.g. hd03)")
		minimize = flag.Bool("minimize", false, "after solving, keep searching for a smaller program with the remaining budget")
		lint     = flag.Bool("lint", false, "after solving, report static-analysis findings and the canonical form of the solution (to stderr)")
		costName = flag.String("cost", "hamming", "cost function: hamming, inctests, logdiff")
		beta     = flag.Float64("beta", 1, "acceptance temperature (normalized to 100 tests)")
		strategy = flag.String("strategy", "adaptive", "restart strategy spec (naive, luby, adaptive, pluby, fixed:N, exp:T0:Z, innerouter:T0:Z)")
		budget   = flag.Int64("budget", 10_000_000, "total iteration budget")
		dialect  = flag.String("dialect", "full", "instruction dialect: full, base, model")
		seed     = flag.Uint64("seed", 1, "random seed")
		remote   = flag.String("remote", "", "synthd base URL; submit the job to a server instead of solving locally")
		follow   = flag.Bool("follow", false, "with -remote: stream the job's live telemetry and render a cost sparkline to stderr while it runs")
		stats    = flag.Bool("stats", false, "print end-of-run telemetry (move acceptance rates, restarts, plateaus, cost sparkline) to stderr")
		traceTo  = flag.String("trace", "", "write trace events to this file as JSONL")
		verbose  = flag.Bool("v", false, "print progress and the solution's details")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *remote != "" {
		if *minimize {
			fmt.Fprintln(os.Stderr, "synth: -minimize is not supported with -remote")
			os.Exit(1)
		}
		if *stats || *traceTo != "" {
			fmt.Fprintln(os.Stderr, "synth: -stats and -trace are not supported with -remote (use the server's /metrics and /tracez)")
			os.Exit(1)
		}
		runRemote(ctx, *remote, *expr, *inputs, *cases, *specFile, *slFile, *problem,
			*costName, *beta, *strategy, *budget, *dialect, *seed, *verbose, *lint, *follow)
		return
	}
	if *follow {
		fmt.Fprintln(os.Stderr, "synth: -follow requires -remote (local runs report with -stats)")
		os.Exit(1)
	}

	suite, desc, err := loadProblem(*expr, *inputs, *cases, *specFile, *slFile, *problem, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
	kind, err := cost.ParseKind(*costName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
	set, redundancy, err := pickDialect(*dialect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
	strat, err := restart.New(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}

	if *verbose {
		fmt.Printf("problem: %s (%d inputs, %d cases)\n", desc, suite.NumInputs, suite.Len())
		fmt.Printf("strategy=%s cost=%s beta=%g dialect=%s budget=%d seed=%d\n",
			strat.Name(), kind, *beta, *dialect, *budget, *seed)
	}

	// Observability never changes the search: hooks batch off the hot
	// path and the instrumented run is bit-identical to a bare one, so
	// -stats/-trace are safe to attach to any reproduction run.
	var o *obs.Obs
	sopts := search.Options{
		Set: set, Cost: kind, Beta: *beta, Redundancy: redundancy, Seed: *seed, Ctx: ctx,
	}
	if *stats || *traceTo != "" {
		o = obs.New()
		if *traceTo != "" {
			f, err := os.Create(*traceTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, "synth:", err)
				os.Exit(1)
			}
			defer f.Close()
			o.Tracer.SetSink(f)
		}
		sopts.Obs = search.NewObsHooks(o.Reg, o.Tracer)
		strat = restart.Instrument(strat, restart.NewObsHooks(o.Reg, o.Tracer, strat.Name()))
	}

	factory := search.NewFactory(suite, sopts)
	start := time.Now()
	res := strat.RunContext(ctx, factory, *budget)
	elapsed := time.Since(start)

	if *stats {
		printRunStats(os.Stderr, o, res, elapsed)
	}
	if res.Cancelled {
		fmt.Printf("cancelled after %d iterations (%d searches, %v)\n",
			res.Iterations, res.Searches, elapsed.Round(time.Millisecond))
		os.Exit(130)
	}
	if !res.Solved {
		fmt.Printf("FAILED after %d iterations (%d searches, %v)\n",
			res.Iterations, res.Searches, elapsed.Round(time.Millisecond))
		os.Exit(2)
	}
	sol := res.Winner.(*search.Run).Solution()
	if *verbose {
		rate := float64(res.Iterations) / elapsed.Seconds()
		fmt.Printf("solved in %d iterations (%d searches, %v, %.0f iters/sec)\n",
			res.Iterations, res.Searches, elapsed.Round(time.Millisecond), rate)
		fmt.Printf("program size: %d nodes\n", sol.BodyLen())
	}
	if *minimize {
		if remaining := *budget - res.Iterations; remaining > 0 {
			opt := search.New(suite, search.Options{
				Set: set, Cost: kind, Beta: *beta, Redundancy: redundancy,
				Seed: *seed ^ 0xabcdef, Init: sol, MinimizeSize: true,
			})
			opt.Step(remaining)
			if best := opt.Best(); best != nil && best.BodyLen() < sol.BodyLen() {
				if *verbose {
					fmt.Printf("minimized: %d -> %d nodes\n", sol.BodyLen(), best.BodyLen())
				}
				sol = best
			}
		}
	}
	fmt.Println(sol)
	if *lint {
		report := analysis.Run(sol)
		printLint(os.Stderr, report.Strings())
		printFacts(os.Stderr, absint.Describe(sol, absint.Analyze(sol, absint.InputFacts(suite), nil)))
		canon := analysis.Canonicalize(sol)
		fmt.Fprintf(os.Stderr, "canonical (%016x): %s\n", analysis.Hash(canon), canon)
	}
}

// printLint renders static-analysis findings, one per line, or a
// single "clean" line when there are none.
func printLint(w io.Writer, findings []string) {
	if len(findings) == 0 {
		fmt.Fprintln(w, "lint: clean")
		return
	}
	for _, f := range findings {
		fmt.Fprintln(w, "lint:", f)
	}
}

// printFacts renders the abstract-interpretation facts derived for the
// solution from the example inputs, one node per line; nothing is
// printed when no node has a nontrivial fact.
func printFacts(w io.Writer, facts []string) {
	for _, f := range facts {
		fmt.Fprintln(w, "fact:", f)
	}
}

// printRunStats renders the -stats report from the run's obs sink:
// totals and throughput, per-move acceptance rates (registry
// counters), plateau count, and the sampled cost trajectory as a
// sparkline (flush-granularity samples across all searches, in
// emission order).
func printRunStats(w io.Writer, o *obs.Obs, res restart.Result, elapsed time.Duration) {
	fmt.Fprintln(w, "-- run telemetry --")
	rate := float64(res.Iterations) / elapsed.Seconds()
	fmt.Fprintf(w, "iterations: %d in %v (%.0f iters/sec)\n",
		res.Iterations, elapsed.Round(time.Millisecond), rate)
	restarts := res.Searches
	note := ""
	if res.Exec != nil {
		restarts = res.Exec.SearchesLive
		note = fmt.Sprintf(" (%d speculative iterations on %d workers)",
			res.Exec.Speculated, res.Exec.Workers)
	}
	fmt.Fprintf(w, "restarts:   %d searches%s\n", restarts, note)
	fmt.Fprintf(w, "plateaus:   %.0f\n", o.Reg.Counter("stochsyn_search_plateaus_total").Value())

	// Incremental-evaluation reuse: how much column and case work the
	// engine skipped relative to full re-evaluation of every proposal.
	if nt := o.Reg.Counter("stochsyn_eval_nodes_total").Value(); nt > 0 {
		nr := o.Reg.Counter("stochsyn_eval_nodes_reevaluated_total").Value()
		ct := o.Reg.Counter("stochsyn_eval_cases_total").Value()
		ce := o.Reg.Counter("stochsyn_eval_cases_evaluated_total").Value()
		fmt.Fprintf(w, "eval reuse: %.1f%% of node columns reused, %.1f%% of cases skipped by early abort\n",
			100*(1-nr/nt), 100*(1-ce/ct))
	}

	// Plan compiler: how the compiled evaluation path got its plans.
	// Skipped entirely when the run never compiled one (reference
	// evaluation arms, or a search that solved before its first reset).
	if pc := o.Reg.Counter("stochsyn_plan_compiles_total").Value(); pc > 0 {
		ch := o.Reg.Counter("stochsyn_plan_cache_hits_total").Value()
		pp := o.Reg.Counter("stochsyn_plan_patches_total").Value()
		pf := o.Reg.Counter("stochsyn_plan_fused_nodes_total").Value()
		fmt.Fprintf(w, "plan:       %.0f compiles (%.1f%% recipe-cache hits), %.0f patched tape entries, %.0f constant-fused nodes\n",
			pc, 100*ch/(pc+ch), pp, pf)
	}

	rows := [][]string{{"move", "proposed", "accepted", "rate"}}
	for m := 0; m < mutate.NumMoves; m++ {
		name := mutate.Move(m).String()
		p := o.Reg.Counter("stochsyn_moves_proposed_total", "move", name).Value()
		a := o.Reg.Counter("stochsyn_moves_accepted_total", "move", name).Value()
		acc := "-"
		if p > 0 {
			acc = fmt.Sprintf("%.1f%%", 100*a/p)
		}
		rows = append(rows, []string{name,
			fmt.Sprintf("%.0f", p), fmt.Sprintf("%.0f", a), acc})
	}
	textplot.Table(w, rows)

	var costs []float64
	for _, ev := range o.Tracer.Events() {
		if ev.Name == "search_cost" {
			if c, ok := ev.Attrs["cost"].(float64); ok {
				costs = append(costs, c)
			}
		}
	}
	if len(costs) > 0 {
		fmt.Fprintf(w, "cost trajectory (%d samples): %s\n",
			len(costs), textplot.Spark(costs, 60))
	}
}

// loadProblem resolves the problem source flags into a suite.
func loadProblem(expr string, inputs, cases int, specFile, slFile, problem string, seed uint64) (*testcase.Suite, string, error) {
	sources := 0
	for _, s := range []string{expr, specFile, slFile, problem} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", fmt.Errorf("exactly one of -expr, -spec, -sl, -problem is required")
	}
	switch {
	case slFile != "":
		data, err := os.ReadFile(slFile)
		if err != nil {
			return nil, "", err
		}
		p, err := sygusif.Parse(string(data))
		if err != nil {
			return nil, "", err
		}
		return p.Suite, fmt.Sprintf("%s: synth-fun %s/%d", slFile, p.Name, len(p.Args)), nil
	case expr != "":
		ref, err := prog.Parse(expr, inputs)
		if err != nil {
			return nil, "", err
		}
		rng := rand.New(rand.NewPCG(seed, 0xbe5466cf34e90c6c))
		suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, inputs, cases, rng)
		return suite, expr, nil
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, "", err
		}
		suite, err := parseSpec(string(data))
		if err != nil {
			return nil, "", err
		}
		return suite, specFile, nil
	default:
		for _, p := range sygus.Standard(sygus.Options{Seed: seed}) {
			if p.Name == problem {
				return p.Suite, p.Name + ": " + p.Desc, nil
			}
		}
		return nil, "", fmt.Errorf("unknown built-in problem %q (try hd01..hd20, bv01..bv15)", problem)
	}
}

// parseSpec parses the examples file format.
func parseSpec(src string) (*testcase.Suite, error) {
	suite := &testcase.Suite{NumInputs: -1}
	for lineno, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: need at least one input and an output", lineno+1)
		}
		vals := make([]uint64, len(fields))
		for i, f := range fields {
			v, err := parseWord(f)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineno+1, err)
			}
			vals[i] = v
		}
		n := len(vals) - 1
		if suite.NumInputs == -1 {
			suite.NumInputs = n
		} else if suite.NumInputs != n {
			return nil, fmt.Errorf("line %d: %d inputs, earlier lines had %d", lineno+1, n, suite.NumInputs)
		}
		suite.Cases = append(suite.Cases, testcase.Case{Inputs: vals[:n], Output: vals[n]})
	}
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	return suite, nil
}

func parseWord(s string) (uint64, error) {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if neg {
		v = -v
	}
	return v, err
}

// runRemote submits the problem to a synthd server and waits for the
// verdict. Expression problems are sent as expr specs (the server
// samples the cases, deterministically in -seed); .sl files are sent
// as raw SyGuS text; spec files and built-in problems are resolved
// locally and sent as explicit examples. On Ctrl-C the job is
// cancelled on the server before exiting.
func runRemote(ctx context.Context, baseURL, expr string, inputs, cases int, specFile, slFile, problem, costName string, beta float64, strategy string, budget int64, dialect string, seed uint64, verbose, lint, follow bool) {
	pspec, desc, err := remoteProblemSpec(expr, inputs, cases, specFile, slFile, problem, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
	spec := server.JobSpec{
		Problem: pspec,
		Options: server.OptionsSpec{
			Cost:     costName,
			Beta:     beta,
			Strategy: strategy,
			Budget:   budget,
			Dialect:  dialect,
			Seed:     seed,
		},
	}

	c := client.New(baseURL)
	v, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "synth:", err)
		os.Exit(1)
	}
	if verbose {
		fmt.Printf("problem: %s\nsubmitted as job %s to %s (status %s)\n", desc, v.ID, baseURL, v.Status)
	}
	if !v.Status.Terminal() {
		if follow {
			// Best-effort: the live stream drives the progress display,
			// but the verdict below always comes from the final poll, so
			// a torn stream degrades the rendering, never the result.
			if ferr := followJob(ctx, c, v.ID); ferr != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "synth: follow stream:", ferr)
			}
			fmt.Fprintln(os.Stderr)
		}
		v, err = c.Wait(ctx, v.ID, 0)
		if ctx.Err() != nil {
			// Interrupted: cancel the job server-side with a fresh
			// context (ours is already dead), then report.
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, cerr := c.Cancel(cctx, v.ID); cerr != nil {
				fmt.Fprintln(os.Stderr, "synth: interrupted; cancel failed:", cerr)
			} else {
				fmt.Fprintf(os.Stderr, "synth: interrupted; job %s cancelled on server\n", v.ID)
			}
			os.Exit(130)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "synth:", err)
			os.Exit(1)
		}
	}

	switch v.Status {
	case server.StatusCompleted:
		r := v.Result
		if !r.Solved {
			fmt.Printf("FAILED after %d iterations (%d searches, %.0fms)\n",
				r.Iterations, r.Searches, r.DurationMS)
			os.Exit(2)
		}
		if verbose {
			note := ""
			if v.Cached {
				note = ", cached"
			}
			fmt.Printf("solved in %d iterations (%d searches, %.0fms, seed %d%s)\n",
				r.Iterations, r.Searches, r.DurationMS, r.Seed, note)
		}
		fmt.Println(r.Program)
		if lint {
			// The server audited the solution at completion time; its
			// findings, abstract facts, and canonical form ride along on
			// the result.
			printLint(os.Stderr, r.Lint)
			printFacts(os.Stderr, r.Facts)
			if r.Canonical != "" {
				fmt.Fprintf(os.Stderr, "canonical (%s): %s\n", r.CanonicalHash, r.Canonical)
			}
		}
	case server.StatusCancelled:
		fmt.Println("cancelled on server")
		os.Exit(130)
	case server.StatusFailed:
		fmt.Fprintln(os.Stderr, "synth: job failed:", v.Error)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "synth: unexpected job status:", v.Status)
		os.Exit(1)
	}
}

// followJob consumes the job's live telemetry stream (the server's
// /v1/jobs/{id}/events feed; through a fleet coordinator the same
// stream survives worker failover) and renders a one-line progress
// display on stderr: a sparkline of the cost samples so far, the
// current and best cost, and the iteration count. Redraws are
// throttled so a fast search does not flood the terminal. Returns when
// the terminal event arrives, the stream tears, or ctx ends.
func followJob(ctx context.Context, c *client.Client, id string) error {
	var costs []float64
	lastDraw := time.Now()
	draw := func(best, cur, iter float64, force bool) {
		if !force && time.Since(lastDraw) < 100*time.Millisecond {
			return
		}
		lastDraw = time.Now()
		fmt.Fprintf(os.Stderr, "\r%-60s cost %5.0f best %5.0f %12.0f iters",
			textplot.Spark(costs, 60), cur, best, iter)
	}
	var best, cur, iter float64
	return c.Events(ctx, id, 0, func(ev obs.Event) error {
		switch ev.Name {
		case "search_cost":
			cur, _ = ev.Attrs["cost"].(float64)
			if b, ok := ev.Attrs["best"].(float64); ok {
				best = b
			}
			if it, ok := ev.Attrs["iteration"].(float64); ok {
				iter = it
			}
			costs = append(costs, cur)
			draw(best, cur, iter, false)
		case "job_finished":
			draw(best, cur, iter, true)
			return client.StopStreaming
		}
		return nil
	})
}

// remoteProblemSpec maps the problem-source flags to a wire
// ProblemSpec plus a human description.
func remoteProblemSpec(expr string, inputs, cases int, specFile, slFile, problem string, seed uint64) (server.ProblemSpec, string, error) {
	sources := 0
	for _, s := range []string{expr, specFile, slFile, problem} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return server.ProblemSpec{}, "", fmt.Errorf("exactly one of -expr, -spec, -sl, -problem is required")
	}
	switch {
	case expr != "":
		// Let the server sample the cases; same generator, same seed,
		// same suite as a local run.
		return server.ProblemSpec{Expr: expr, Inputs: inputs, NumCases: cases, CaseSeed: seed}, expr, nil
	case slFile != "":
		data, err := os.ReadFile(slFile)
		if err != nil {
			return server.ProblemSpec{}, "", err
		}
		return server.ProblemSpec{Sygus: string(data)}, slFile, nil
	default:
		// Spec files and built-in problems resolve locally to explicit
		// examples.
		suite, desc, err := loadProblem("", 0, 0, specFile, "", problem, seed)
		if err != nil {
			return server.ProblemSpec{}, "", err
		}
		ps := server.ProblemSpec{Inputs: suite.NumInputs}
		for _, c := range suite.Cases {
			ps.Examples = append(ps.Examples, server.Example{Inputs: c.Inputs, Output: c.Output})
		}
		return ps, desc, nil
	}
}

func pickDialect(name string) (*prog.OpSet, bool, error) {
	switch name {
	case "full":
		return prog.FullSet, false, nil
	case "base":
		return prog.BaseSet, false, nil
	case "model":
		return prog.ModelSet, true, nil
	}
	return nil, false, fmt.Errorf("unknown dialect %q", name)
}
