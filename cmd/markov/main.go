// Command markov runs the popular-state Markov chain analysis of
// Section 4 of the paper (Figures 4 and 5): it observes many synthesis
// runs of a model-dialect problem, estimates the transition matrix
// over the most-visited states, compares the chain's predicted
// distribution of synthesis times against the measured one, and can
// emit the state transition diagram as Graphviz DOT.
package main

import (
	"flag"
	"fmt"
	"os"

	"stochsyn/internal/experiment"
	"stochsyn/internal/markov"
)

func main() {
	var (
		expr     = flag.String("expr", "or(shl(x), x)", "reference expression (model dialect)")
		inputs   = flag.Int("inputs", 1, "number of inputs")
		cases    = flag.Int("cases", 16, "test cases")
		beta     = flag.Float64("beta", 1, "acceptance temperature")
		trials   = flag.Int("trials", 100, "synthesis runs to observe")
		budget   = flag.Int64("budget", 500_000, "iterations per run")
		topK     = flag.Int("topk", 35, "popular states to retain (paper: 35)")
		seed     = flag.Uint64("seed", 1, "seed")
		dotPath  = flag.String("dot", "", "write the Figure 5 transition diagram as DOT to this file")
		jsonPath = flag.String("save", "", "write the estimated chain (with state info) as JSON to this file")
	)
	flag.Parse()

	res, err := experiment.MarkovExperiment(experiment.MarkovConfig{
		Expr: *expr, NumInputs: *inputs, TestCases: *cases, Beta: *beta,
		Trials: *trials, Budget: *budget, TopK: *topK, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "markov:", err)
		os.Exit(1)
	}
	fmt.Printf("markov analysis of %s (beta=%g, %d trials)\n", *expr, *beta, *trials)
	res.Report(os.Stdout)

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "markov:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := markov.WriteDOT(f, res.Empirical.Chain, res.Empirical.States); err != nil {
			fmt.Fprintln(os.Stderr, "markov:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote transition diagram to %s\n", *dotPath)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "markov:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := markov.WriteJSON(f, res.Empirical.Chain, res.Empirical.States); err != nil {
			fmt.Fprintln(os.Stderr, "markov:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote chain to %s\n", *jsonPath)
	}
}
