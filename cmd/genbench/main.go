// Command genbench runs the superoptimization benchmark pipeline of
// Section 6 of the paper end to end: it generates (or reads) an
// assembly corpus, extracts dataflow-related fragments, deduplicates
// them by instruction signature, generates test cases, optionally
// applies the prefix-synthesizability filter, and writes the sampled
// benchmark.
//
// Output is a directory with one .prob file per problem (the fragment
// listing followed by its test cases) plus an index.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"stochsyn/internal/asm"
	"stochsyn/internal/corpus"
	"stochsyn/internal/superopt"
	"stochsyn/internal/sygusif"
)

func main() {
	var (
		out       = flag.String("out", "superopt-bench", "output directory")
		functions = flag.Int("functions", 500, "synthetic corpus size in functions")
		asmFile   = flag.String("asm", "", "scrape this assembly listing instead of generating a corpus")
		sample    = flag.Int("sample", 100, "benchmark sample size (paper: 1000)")
		tests     = flag.Int("tests", 100, "test cases per problem")
		filter    = flag.Bool("filter", false, "apply the prefix-synthesizability filter (slow)")
		filterIts = flag.Int64("filterbudget", 20000, "per-prefix filter iteration budget")
		seed      = flag.Uint64("seed", 1, "pipeline seed")
		dumpASM   = flag.Bool("dumpasm", false, "also write the generated corpus assembly")
		emitSL    = flag.Bool("sl", false, "also write each problem in SyGuS-IF .sl format")
	)
	flag.Parse()

	opts := superopt.Options{
		CorpusFunctions: *functions,
		Seed:            *seed,
		TestCases:       *tests,
		SampleSize:      *sample,
		MinNonTrivial:   2,
		MaxInsts:        15,
		MaxInputs:       4,
		PrefixFilter:    *filter,
		PrefixBudget:    *filterIts,
	}

	var problems []*superopt.Problem
	var stats superopt.Stats
	var err error
	if *asmFile != "" {
		problems, stats, err = buildFromFile(*asmFile, opts)
	} else {
		problems, stats, err = superopt.Build(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
	fmt.Println("pipeline:", stats)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
	if *dumpASM && *asmFile == "" {
		src := corpus.Generate(corpus.Options{Functions: *functions, Seed: *seed})
		if err := os.WriteFile(filepath.Join(*out, "corpus.s"), []byte(src), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "genbench:", err)
			os.Exit(1)
		}
	}

	var index strings.Builder
	for _, p := range problems {
		fmt.Fprintf(&index, "%s\t%d inputs\t%d insts\t%s\n",
			p.Name, len(p.Frag.Inputs), len(p.Frag.Insts), p.Signature)
		if err := writeProblem(filepath.Join(*out, p.Name+".prob"), p); err != nil {
			fmt.Fprintln(os.Stderr, "genbench:", err)
			os.Exit(1)
		}
		if *emitSL {
			if err := writeSL(filepath.Join(*out, p.Name+".sl"), p); err != nil {
				fmt.Fprintln(os.Stderr, "genbench:", err)
				os.Exit(1)
			}
		}
	}
	if err := os.WriteFile(filepath.Join(*out, "index.txt"), []byte(index.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d problems to %s\n", len(problems), *out)
}

// buildFromFile scrapes a user-provided assembly listing. It reuses
// the pipeline stages by substituting the corpus source.
func buildFromFile(path string, opts superopt.Options) ([]*superopt.Problem, superopt.Stats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, superopt.Stats{}, err
	}
	funcs, err := asm.ParseText(string(data))
	if err != nil {
		return nil, superopt.Stats{}, err
	}
	return superopt.BuildFromFuncs(funcs, opts)
}

// writeProblem writes one problem in the .prob format (see
// superopt.WriteProb / superopt.ParseProb).
func writeProblem(path string, p *superopt.Problem) error {
	return os.WriteFile(path, []byte(superopt.WriteProb(p)), 0o644)
}

// writeSL writes the problem's examples in SyGuS-IF syntax.
func writeSL(path string, p *superopt.Problem) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sygusif.Write(f, p.Name, p.Suite)
}
