package stochsyn

import "testing"

func TestSynthesizeCEGIS(t *testing.T) {
	// Few initial examples force overfitting; the loop must converge
	// to a validated program.
	spec := func(in []uint64) uint64 { return in[0] &^ 15 }
	res, err := SynthesizeCEGIS(spec, 1, 8, 12, Options{Beta: 1, Budget: 5_000_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("CEGIS did not converge in %d rounds (%d cases, %d iterations)",
			res.Rounds, res.Cases, res.Iterations)
	}
	if res.Cases != 8+len(res.Counterexamples) {
		t.Errorf("case accounting: %d cases, %d counterexamples", res.Cases, len(res.Counterexamples))
	}
	// The final program must agree with the spec broadly.
	p, err := ParseProgram(res.Program, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, 15, 16, 17, 255, 1 << 63, ^uint64(0)} {
		got, _ := p.Run(x)
		if got != spec([]uint64{x}) {
			t.Errorf("final program wrong on %#x", x)
		}
	}
	t.Logf("converged in %d rounds with %d counterexamples: %s",
		res.Rounds, len(res.Counterexamples), res.Program)
}

func TestSynthesizeCEGISErrors(t *testing.T) {
	spec := func(in []uint64) uint64 { return in[0] }
	if _, err := SynthesizeCEGIS(spec, 1, 8, 0, Options{}); err == nil {
		t.Error("accepted zero rounds")
	}
	if _, err := SynthesizeCEGIS(spec, MaxInputs+1, 8, 1, Options{}); err == nil {
		t.Error("accepted too many inputs")
	}
}
