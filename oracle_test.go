package stochsyn

import (
	"context"
	"reflect"
	"testing"
	"time"

	"stochsyn/internal/mutate"
)

// The oracle table below was captured from the library before context
// cancellation was plumbed through the strategies and the search inner
// loop. Synthesize and SynthesizeContext (under a background or live
// but never-cancelled context) must keep reproducing these counters
// and programs bit for bit: context support is required to be
// observationally free on the uncancelled path.

type oracleProblem struct {
	f        func([]uint64) uint64
	inputs   int
	probSeed uint64
}

type oracleEntry struct {
	name string
	prob oracleProblem
	opts Options

	wantSolved     bool
	wantIterations int64
	wantSearches   int
	wantProgram    string
}

func oracleTable() []oracleEntry {
	p1 := oracleProblem{func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, 1, 42}
	return []oracleEntry{
		{
			name: "p1-adaptive", prob: p1,
			opts:       Options{Budget: 2_000_000, Seed: 7},
			wantSolved: true, wantIterations: 27576, wantSearches: 15,
			wantProgram: "subq(x, andq(idivq(x, sarq(bswapq(0xfffffffffffff7ff), 0xfffffffffffff7ff)), x))",
		},
		{
			name: "p1-luby", prob: p1,
			opts:       Options{Budget: 2_000_000, Seed: 7, Strategy: "luby"},
			wantSolved: true, wantIterations: 58484, wantSearches: 30,
			wantProgram: "a = negq(x); b = andq(a, x); shrq(subq(x, b), mull(shrq(b, 0xe4c3495111dc002e), ultq(a, 1)))",
		},
		{
			name:       "p1-naive",
			prob:       oracleProblem{func(in []uint64) uint64 { return in[0] | (in[0] + 1) }, 1, 42},
			opts:       Options{Budget: 2_000_000, Seed: 3, Strategy: "naive"},
			wantSolved: true, wantIterations: 4560, wantSearches: 1,
			wantProgram: "orq(addq(sextbq(negl(0x1fffffffffffffff)), x), x)",
		},
		{
			name:       "p2-adaptive-w4",
			prob:       oracleProblem{func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 11},
			opts:       Options{Budget: 2_000_000, Seed: 5, Workers: 4},
			wantSolved: true, wantIterations: 328, wantSearches: 1,
			wantProgram: "xorq(x, y)",
		},
		{
			name:       "p1-fixed",
			prob:       oracleProblem{func(in []uint64) uint64 { return in[0] &^ (in[0] >> 1) }, 1, 9},
			opts:       Options{Budget: 2_000_000, Seed: 13, Strategy: "fixed:50000"},
			wantSolved: true, wantIterations: 61512, wantSearches: 2,
			wantProgram: "a = sextbq(0xffffffff); b = subq(0xffefffffffffffff, mull(a, a)); andq(rolq(subq(tzcntq(orl(x, subl(x, b))), x), bswapq(b)), x)",
		},
		{
			name:       "p1-innerouter",
			prob:       oracleProblem{func(in []uint64) uint64 { return ^in[0] >> 3 }, 1, 17},
			opts:       Options{Budget: 500_000, Seed: 21, Strategy: "innerouter:100:2"},
			wantSolved: true, wantIterations: 10920, wantSearches: 20,
			wantProgram: "a = iremq(0xffffffff00000000, -11); b = addl(rolq(0xffffffff00000000, zextlq(0xffffffbfffffffff)), a); c = orq(x, shrl(b, b)); rolq(xorq(c, orq(c, a)), subl(a, 0x3ffffffffff))",
		},
	}
}

func checkOracle(t *testing.T, label string, res Result, e oracleEntry) {
	t.Helper()
	if res.Cancelled {
		t.Errorf("%s: Cancelled = true on an uncancelled run", label)
	}
	if res.Solved != e.wantSolved || res.Iterations != e.wantIterations ||
		res.Searches != e.wantSearches || res.Program != e.wantProgram {
		t.Errorf("%s: got (solved=%v, iters=%d, searches=%d, prog=%q),\nwant (solved=%v, iters=%d, searches=%d, prog=%q)",
			label, res.Solved, res.Iterations, res.Searches, res.Program,
			e.wantSolved, e.wantIterations, e.wantSearches, e.wantProgram)
	}
}

func TestOracleBitIdentity(t *testing.T) {
	for _, e := range oracleTable() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			p, err := ProblemFromFunc(e.prob.f, e.prob.inputs, 50, e.prob.probSeed)
			if err != nil {
				t.Fatal(err)
			}

			res, err := Synthesize(p, e.opts)
			if err != nil {
				t.Fatal(err)
			}
			checkOracle(t, "Synthesize", res, e)
			if res.Seed != e.opts.Seed {
				t.Errorf("Result.Seed = %d, want %d", res.Seed, e.opts.Seed)
			}
			if res.Duration <= 0 {
				t.Errorf("Result.Duration = %v, want > 0", res.Duration)
			}

			// A live (cancellable) context switches the strategies to
			// chunked context-polling stepping; the result must not
			// change.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			res2, err := SynthesizeContext(ctx, p, e.opts)
			if err != nil {
				t.Fatal(err)
			}
			checkOracle(t, "SynthesizeContext", res2, e)
		})
	}
}

// TestAnalysisDoesNotPerturbSearch pins the static-analysis layer's
// core contract: it never changes what the search does.
//
// Two properties combine to prove it. First, the oracle table above
// predates the analysis layer, and TestOracleBitIdentity still
// reproduces it bit for bit — so the post-search result audit
// (lint + canonicalization) cannot have touched a trajectory. Second,
// this test runs the same oracle entry with the mutate debug gate
// (analysis.Check after every accepted move) switched on and off: the
// two results must be identical in every field, because the gate only
// reads accepted programs and either passes or panics.
func TestAnalysisDoesNotPerturbSearch(t *testing.T) {
	e := oracleTable()[0] // p1-adaptive: sequential, no Exec stats
	p, err := ProblemFromFunc(e.prob.f, e.prob.inputs, 50, e.prob.probSeed)
	if err != nil {
		t.Fatal(err)
	}

	if mutate.DebugChecks() {
		t.Fatal("debug gate unexpectedly enabled at test start")
	}
	base, err := Synthesize(p, e.opts)
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, "bare", base, e)

	mutate.SetDebugChecks(true)
	defer mutate.SetDebugChecks(false)
	gated, err := Synthesize(p, e.opts)
	if err != nil {
		t.Fatal(err)
	}
	checkOracle(t, "gated", gated, e)

	// Wall clock aside, the two runs must be indistinguishable —
	// including the audit outputs (Lint, Canonical, CanonicalHash).
	base.Duration, gated.Duration = 0, 0
	if !reflect.DeepEqual(base, gated) {
		t.Errorf("debug gate changed the result:\nbare:  %+v\ngated: %+v", base, gated)
	}
	if gated.CanonicalHash == 0 || gated.Canonical == "" {
		t.Errorf("solved result missing canonical audit: %+v", gated)
	}
}

// TestSynthesizeContextCancellation cancels a large-budget synthesis
// mid-run and checks it stops promptly with consistent partial
// counters and no error.
func TestSynthesizeContextCancellation(t *testing.T) {
	// A spec hard enough not to be solved within a few milliseconds.
	hard := func(in []uint64) uint64 {
		x := in[0]*0x9e3779b97f4a7c15 ^ in[1]>>9
		return x ^ x>>31 ^ in[1]*0xbf58476d1ce4e5b9
	}
	p, err := ProblemFromFunc(hard, 2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		run  func(ctx context.Context) (Result, error)
	}{
		{"sequential", func(ctx context.Context) (Result, error) {
			return SynthesizeContext(ctx, p, Options{Budget: 1 << 40})
		}},
		{"luby", func(ctx context.Context) (Result, error) {
			return SynthesizeContext(ctx, p, Options{Budget: 1 << 40, Strategy: "luby"})
		}},
		{"tree-workers", func(ctx context.Context) (Result, error) {
			return SynthesizeContext(ctx, p, Options{Budget: 1 << 40, Workers: 4})
		}},
		{"parallel-naive", func(ctx context.Context) (Result, error) {
			return SynthesizeParallelContext(ctx, p, Options{Budget: 1 << 40, Strategy: "naive"}, 4)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type out struct {
				res Result
				err error
			}
			done := make(chan out, 1)
			start := time.Now()
			go func() {
				res, err := tc.run(ctx)
				done <- out{res, err}
			}()
			time.Sleep(30 * time.Millisecond)
			cancel()
			var o out
			select {
			case o = <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("synthesis did not return within 10s of cancellation")
			}
			if o.err != nil {
				t.Fatalf("cancelled synthesis returned error: %v", o.err)
			}
			res := o.res
			if res.Solved {
				t.Skip("solved before cancellation; nothing to assert")
			}
			if !res.Cancelled {
				t.Errorf("Cancelled = false after mid-run cancel: %+v", res)
			}
			if res.Iterations <= 0 || res.Iterations >= 1<<40 {
				t.Errorf("Iterations = %d, want partial progress below the budget", res.Iterations)
			}
			if res.Duration <= 0 || res.Duration > time.Since(start) {
				t.Errorf("Duration = %v, inconsistent with wall clock", res.Duration)
			}
		})
	}
}
