// Package stochsyn is a library for program synthesis from
// input/output examples via stochastic search, implementing the
// algorithms of "Adaptive Restarts for Stochastic Synthesis" (Koenig,
// Padon, Aiken; PLDI 2021).
//
// The search explores rooted dataflow graphs over 64-bit operations
// with a Metropolis-style acceptance rule controlled by a temperature
// Beta, guided by one of three cost functions (Hamming distance,
// incorrect test cases, or log difference). On top of the basic search
// the library provides the full family of restart strategies analyzed
// in the paper — including the adaptive restart algorithm, which runs
// searches in a Luby doubling tree and promotes low-cost searches
// toward the root — which speeds up synthesis by up to an order of
// magnitude on heavy-tailed problems.
//
// Basic use:
//
//	problem, _ := stochsyn.ProblemFromFunc(
//		func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, // spec
//		1, 100, 42)
//	res, _ := stochsyn.Synthesize(problem, stochsyn.Options{})
//	if res.Solved {
//		fmt.Println(res.Program) // e.g. "andq(x, subq(x, 1))"
//	}
package stochsyn

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"stochsyn/internal/cost"
	"stochsyn/internal/eqsat"
	"stochsyn/internal/obs"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/prog/analysis/absint"
	"stochsyn/internal/restart"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// Case is one input/output example.
type Case struct {
	Inputs []uint64
	Output uint64
}

// Problem is a synthesis problem: a set of input/output examples over
// a fixed number of inputs. Any program matching every example is a
// solution.
type Problem struct {
	suite *testcase.Suite
}

// NewProblem builds a problem from explicit examples. All cases must
// have exactly numInputs inputs, and numInputs must be at most
// MaxInputs.
func NewProblem(numInputs int, cases []Case) (*Problem, error) {
	if numInputs > MaxInputs {
		return nil, fmt.Errorf("stochsyn: %w: %d inputs exceeds the limit of %d", ErrInvalidProblem, numInputs, MaxInputs)
	}
	s := &testcase.Suite{NumInputs: numInputs}
	for _, c := range cases {
		s.Cases = append(s.Cases, testcase.Case{
			Inputs: append([]uint64(nil), c.Inputs...),
			Output: c.Output,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("stochsyn: %w: %v", ErrInvalidProblem, err)
	}
	return &Problem{suite: s}, nil
}

// ProblemFromFunc builds a problem by sampling numCases test inputs
// (corner cases, random words, and skewed Hamming weights) and
// computing outputs with the reference function. Generation is
// deterministic in seed.
func ProblemFromFunc(f func(inputs []uint64) uint64, numInputs, numCases int, seed uint64) (*Problem, error) {
	if numInputs > MaxInputs {
		return nil, fmt.Errorf("stochsyn: %w: %d inputs exceeds the limit of %d", ErrInvalidProblem, numInputs, MaxInputs)
	}
	if numCases <= 0 {
		return nil, fmt.Errorf("stochsyn: %w: numCases must be positive", ErrInvalidProblem)
	}
	rng := rand.New(rand.NewPCG(seed, 0x452821e638d01377))
	s := testcase.Generate(testcase.Func(f), numInputs, numCases, rng)
	return &Problem{suite: s}, nil
}

// NumInputs returns the problem's input arity.
func (p *Problem) NumInputs() int { return p.suite.NumInputs }

// NumCases returns the number of examples.
func (p *Problem) NumCases() int { return p.suite.Len() }

// Cases returns a copy of the problem's examples.
func (p *Problem) Cases() []Case {
	out := make([]Case, 0, p.suite.Len())
	for _, c := range p.suite.Cases {
		out = append(out, Case{Inputs: append([]uint64(nil), c.Inputs...), Output: c.Output})
	}
	return out
}

// Limits of the program representation (Section 3 of the paper).
const (
	// MaxInputs is the maximum number of problem inputs.
	MaxInputs = prog.MaxInputs
	// MaxProgramSize is the maximum number of instructions and
	// constants in a synthesized program.
	MaxProgramSize = prog.MaxBody
)

// CostFunction selects the search's cost function.
type CostFunction string

// The three cost functions of the paper.
const (
	// Hamming counts incorrect bits across all test cases (default).
	Hamming CostFunction = "hamming"
	// IncorrectTests counts test cases with at least one wrong bit.
	IncorrectTests CostFunction = "inctests"
	// LogDiff charges 1 + log2 of the numeric difference per case.
	LogDiff CostFunction = "logdiff"
)

// Dialect selects the instruction set available to the search.
type Dialect string

// Available dialects.
const (
	// Full is the x86-flavoured 64-bit set with 32-bit variants
	// (default).
	Full Dialect = "full"
	// Base is the classic superoptimizer set (no 32-bit variants or
	// bit-scan operations).
	Base Dialect = "base"
	// Model is the reduced analysis set of Section 4 of the paper
	// (and, or, xor, not, 1-bit shifts, zero/ones constants); it also
	// enables the canonicalizing redundancy move.
	Model Dialect = "model"
)

// Options configures Synthesize. The zero value is a reasonable
// default: the adaptive restart strategy, Hamming cost, Beta 1, full
// dialect, and a 10M-iteration budget.
type Options struct {
	// Cost is the cost function (default Hamming).
	Cost CostFunction
	// Beta is the acceptance temperature, expressed relative to a
	// 100-test-case problem as in the paper (default 1). Larger
	// values accept more cost-increasing moves. Zero selects the
	// default; for pure greedy descent set Greedy instead (a zero
	// temperature cannot be expressed here because the zero Options
	// value must mean "defaults").
	Beta float64
	// Greedy selects greedy descent (temperature zero): only
	// cost-preserving or cost-decreasing moves are ever accepted.
	// Combining Greedy with a non-zero Beta is an error.
	Greedy bool
	// Strategy is a restart strategy spec: "adaptive" (default),
	// "luby", "naive", "pluby", "fixed:<n>", "exp:<t0>:<z>", or
	// "innerouter:<t0>:<z>"; "adaptive:<t0>" and "luby:<t0>" override
	// the base cutoff.
	Strategy string
	// Budget is the total iteration budget across all restarts
	// (default 10,000,000).
	Budget int64
	// Dialect selects the instruction set (default Full).
	Dialect Dialect
	// Seed makes the synthesis deterministic (default 1).
	Seed uint64
	// Workers sets the number of worker goroutines used to execute
	// the doubling-tree strategies ("adaptive" and "pluby"): 0 or 1
	// runs sequentially, larger values fan sibling subtree visits
	// out across that many cores. The concurrent executor reproduces
	// the sequential schedule bit for bit, so Results stay
	// deterministic in Seed regardless of Workers. Strategies that
	// are inherently sequential (naive, luby, fixed, exp,
	// innerouter) ignore this knob under Synthesize; see
	// SynthesizeParallel for the multi-core naive path.
	Workers int
	// EqSat enables rewrite-aware restarts (internal/eqsat): all
	// searches of the run share an equality-saturation memo that (a)
	// rejects a sampled fraction of cost-neutral plateau moves whose
	// program is rewrite-equivalent to one the walk already visited at
	// the same or lower cost, and (b) counts restart seeds that are
	// rewrite-equivalent to earlier ones. With EqSat false (the
	// default) results are bit-identical to builds that predate the
	// knob — the oracle tables pin this; with it true the search
	// trajectory deliberately changes, so the flag participates in
	// result-cache keys. EqSat runs execute the doubling tree
	// sequentially (the shared memo's sampling order must not depend
	// on worker interleaving), so Workers is ignored when it is set.
	EqSat bool
	// Prune enables abstract-interpretation proposal pruning
	// (internal/prog/analysis/absint): each valid proposal is first run
	// through a forward known-bits + interval dataflow pass under facts
	// derived from the problem's example inputs, and proposals whose
	// abstract output provably cannot equal some example output are
	// rejected without a concrete evaluation. Rejection is sound (a
	// proof of a miss), but skipping evaluations deliberately changes
	// the search trajectory, exactly like EqSat — so the flag
	// participates in result-cache keys, and with Prune false (the
	// default) results are bit-identical to builds that predate the
	// knob (the oracle tables pin this).
	Prune bool
	// Obs, when non-nil, attaches the observability sink (metrics
	// registry and event tracer, see internal/obs) to the run: the
	// search loop and the restart strategy publish stochsyn_* series
	// and structured trace events into it. Attaching Obs never changes
	// results — instrumentation is flushed in amortized batches off
	// the random stream — and it does not participate in option
	// normalization, validation, or result-cache keys (unlike EqSat,
	// which does).
	Obs *obs.Obs
}

// Result reports a synthesis outcome.
type Result struct {
	// Solved reports whether a program matching every example was
	// found within the budget.
	Solved bool
	// Program is the textual form of the solution (empty when not
	// solved); parse it back with ParseProgram.
	Program string
	// Iterations is the total number of search iterations consumed.
	Iterations int64
	// Searches is the number of independent searches the strategy ran.
	Searches int
	// Cancelled reports that the run was stopped early because the
	// context passed to SynthesizeContext was cancelled or its
	// deadline expired, before the problem was solved or the budget
	// exhausted. Iterations and Searches still account exactly for
	// the work performed up to that point.
	Cancelled bool
	// Seed is the resolved random seed the run actually used
	// (Options.Seed, with 0 mapped to the default of 1). Together
	// with the other Options fields it makes the run reproducible
	// from the Result alone.
	Seed uint64
	// Duration is the wall-clock time the synthesis call took.
	Duration time.Duration

	// Lint holds the static-analysis findings for the solution (see
	// internal/prog/analysis): foldable constant subexpressions,
	// algebraic identities and annihilators the search left in the
	// accepted program, and dead inputs. Empty when the program is
	// clean or the problem was not solved. The audit runs strictly
	// after the search finishes, so enabling it never changes which
	// program is found or how many iterations it takes.
	Lint []string
	// Canonical is the canonicalized equivalent of Program: constants
	// folded, identities simplified, duplicate subcomputations merged,
	// commutative arguments ordered, nodes renumbered. It matches
	// every example exactly like Program does (this is re-verified
	// against the problem before it is reported). Empty when not
	// solved.
	Canonical string
	// CanonicalHash is the 64-bit hash of the canonical form: a
	// semantic cache key under which structurally different but
	// equivalent programs collide. Zero when not solved.
	CanonicalHash uint64
	// Facts holds the non-trivial abstract-interpretation facts of the
	// solution's nodes (known bits and value ranges, computed under the
	// problem's example inputs), one rendered line per node. Like Lint
	// it is produced strictly after the search finishes. Empty when
	// nothing non-trivial is known or the problem was not solved.
	Facts []string
}

// normalize validates o and fills in defaults. Every validation
// failure wraps ErrInvalidOptions so callers can classify it with
// errors.Is (see Options.Validate).
func (o Options) normalize() (Options, error) {
	if o.Cost == "" {
		o.Cost = Hamming
	}
	if _, err := cost.ParseKind(string(o.Cost)); err != nil {
		return o, fmt.Errorf("stochsyn: %w: %v", ErrInvalidOptions, err)
	}
	if o.Beta < 0 {
		return o, fmt.Errorf("stochsyn: %w: negative beta %g", ErrInvalidOptions, o.Beta)
	}
	switch {
	case o.Greedy && o.Beta != 0:
		return o, fmt.Errorf("stochsyn: %w: Greedy and a non-zero Beta are mutually exclusive", ErrInvalidOptions)
	case o.Greedy:
		// Beta stays 0: the search layer treats a zero temperature as
		// greedy descent.
	case o.Beta == 0:
		o.Beta = 1
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("stochsyn: %w: negative workers %d", ErrInvalidOptions, o.Workers)
	}
	if o.Strategy == "" {
		o.Strategy = "adaptive"
	}
	if _, err := restart.New(o.Strategy); err != nil {
		return o, fmt.Errorf("stochsyn: %w: %v", ErrInvalidOptions, err)
	}
	if o.Budget == 0 {
		o.Budget = 10_000_000
	}
	if o.Budget < 0 {
		return o, fmt.Errorf("stochsyn: %w: negative budget %d", ErrInvalidOptions, o.Budget)
	}
	if o.Dialect == "" {
		o.Dialect = Full
	}
	if _, _, err := dialectSet(o.Dialect); err != nil {
		return o, fmt.Errorf("stochsyn: %w: %v", ErrInvalidOptions, err)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o, nil
}

// Normalized returns o with every default filled in (the exact
// options a Synthesize call would run with), or an error wrapping
// ErrInvalidOptions. Services use the normalized form to build
// canonical cache keys: two specs that normalize identically run
// identically.
func (o Options) Normalized() (Options, error) { return o.normalize() }

// dialectSet resolves a Dialect to its OpSet and redundancy-move flag.
func dialectSet(d Dialect) (*prog.OpSet, bool, error) {
	switch d {
	case Full:
		return prog.FullSet, false, nil
	case Base:
		return prog.BaseSet, false, nil
	case Model:
		return prog.ModelSet, true, nil
	}
	return nil, false, fmt.Errorf("stochsyn: unknown dialect %q", d)
}

// Synthesize searches for a program matching every example of the
// problem, using the configured restart strategy under a global
// iteration budget. It is deterministic given Options.Seed.
func Synthesize(p *Problem, opts Options) (Result, error) {
	return SynthesizeContext(context.Background(), p, opts)
}

// SynthesizeContext is Synthesize under a context: cancelling ctx (or
// exceeding its deadline) stops the search promptly — including
// mid-restart, inside the doubling-tree executor, and across worker
// goroutines — and returns the partial Result with Cancelled set and
// exact iteration accounting. The error remains nil on cancellation;
// errors report invalid inputs only. With a context that never
// expires the Result is bit-identical to Synthesize's for the same
// Options.
func SynthesizeContext(ctx context.Context, p *Problem, opts Options) (Result, error) {
	o, err := opts.normalize()
	if err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	kind, err := cost.ParseKind(string(o.Cost))
	if err != nil {
		return Result{}, err
	}
	set, redundancy, err := dialectSet(o.Dialect)
	if err != nil {
		return Result{}, err
	}
	var dedup *eqsat.Dedup
	if o.EqSat {
		dedup = eqsat.NewDedup(eqsat.Budget{})
	}
	strat, err := o.strategy(dedup)
	if err != nil {
		return Result{}, err
	}
	sctx := ctx
	if sctx != nil && sctx.Done() == nil {
		sctx = nil // never-cancelled: skip the inner-loop polls entirely
	}
	sopts := search.Options{
		Set:        set,
		Cost:       kind,
		Beta:       o.Beta,
		Redundancy: redundancy,
		Seed:       o.Seed,
		Ctx:        sctx,
		EqSat:      dedup,
		Prune:      o.Prune,
	}
	if o.Obs != nil {
		sopts.Obs = search.NewObsHooks(o.Obs.Reg, o.Obs.Tracer)
		strat = restart.Instrument(strat,
			restart.NewObsHooks(o.Obs.Reg, o.Obs.Tracer, strat.Name()))
		o.Obs.Trace().Emit("search_start", map[string]any{
			"strategy": strat.Name(), "budget": o.Budget, "seed": o.Seed,
			"cost": string(o.Cost), "dialect": string(o.Dialect),
		})
	}
	factory := search.NewFactory(p.suite, sopts)
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := strat.RunContext(ctx, factory, o.Budget)
	if dedup != nil {
		flushEqSatStats(o.Obs, dedup.Stats())
	}
	if o.Obs != nil {
		o.Obs.Trace().Emit("search_stop", map[string]any{
			"strategy": strat.Name(), "solved": res.Solved,
			"iterations": res.Iterations, "searches": res.Searches,
			"cancelled": res.Cancelled, "seconds": time.Since(start).Seconds(),
		})
	}
	out := Result{
		Solved:     res.Solved,
		Iterations: res.Iterations,
		Searches:   res.Searches,
		Cancelled:  res.Cancelled,
		Seed:       o.Seed,
		Duration:   time.Since(start),
	}
	if res.Solved {
		if run, ok := res.Winner.(*search.Run); ok {
			sol := run.Solution()
			out.Program = sol.String()
			out.Lint, out.Facts, out.Canonical, out.CanonicalHash = auditSolution(sol, p.suite)
		}
	}
	return out, nil
}

// auditSolution runs the static-analysis passes over a solution and
// computes its canonical form and hash. It is called strictly after
// the search has finished, so it can never perturb a trajectory. The
// canonical form is defensively re-verified against the problem: if it
// ever failed to match (a rewrite-rule bug), the raw solution is
// reported as its own canonical form along with a finding, rather
// than surfacing a wrong program.
func auditSolution(sol *prog.Program, suite *testcase.Suite) (lint, facts []string, canonical string, hash uint64) {
	report := analysis.Run(sol)
	canon := analysis.Canonicalize(sol)
	var vals [prog.MaxNodes]uint64
	if !cost.Solves(canon, suite, vals[:]) {
		report.Add("canon", -1, "canonical form fails the test suite; reporting the raw program (rewrite-rule bug?)")
		canon = sol
	}
	if !report.Empty() {
		lint = report.Strings()
	}
	facts = absint.Describe(sol, absint.Analyze(sol, absint.InputFacts(suite), nil))
	return lint, facts, canon.String(), analysis.Hash(canon)
}

// strategy resolves the normalized options to a restart strategy,
// applying the Workers knob to the doubling-tree strategies (the only
// ones with a deterministic concurrent executor) and attaching the
// shared rewrite-equivalence memo when EqSat is on. EqSat runs stay
// sequential — the memo's sampling order must be a function of the
// schedule, not of worker interleaving — so Workers is not applied.
func (o Options) strategy(dedup *eqsat.Dedup) (restart.Strategy, error) {
	strat, err := restart.New(o.Strategy)
	if err != nil {
		return nil, err
	}
	if tree, ok := strat.(*restart.Tree); ok {
		if dedup != nil {
			tree.EqSat = dedup
		} else if o.Workers > 1 && tree.Workers == 0 {
			tree.Workers = o.Workers
		}
	}
	return strat, nil
}

// flushEqSatStats publishes one run's rewrite-equivalence memo
// counters into the stochsyn_eqsat_* metric series and emits a
// summarizing trace event. It runs strictly after the strategy has
// returned.
func flushEqSatStats(o *obs.Obs, st eqsat.DedupStats) {
	if o == nil {
		return
	}
	reg := o.Reg
	reg.Counter("stochsyn_eqsat_saturations_total").Add(float64(st.EqSat.Saturations))
	reg.Counter("stochsyn_eqsat_eclass_merges_total").Add(float64(st.EqSat.Merges))
	reg.Counter("stochsyn_eqsat_extractions_total").Add(float64(st.EqSat.Extractions))
	reg.Counter("stochsyn_eqsat_fallbacks_total").Add(float64(st.EqSat.Fallbacks))
	reg.Counter("stochsyn_eqsat_plateau_checks_total").Add(float64(st.Checks))
	reg.Counter("stochsyn_eqsat_plateau_hits_total").Add(float64(st.Hits))
	reg.Counter("stochsyn_eqsat_seeds_total").Add(float64(st.Seeds))
	reg.Counter("stochsyn_eqsat_seed_dups_total").Add(float64(st.SeedDups))
	reg.Counter("stochsyn_eqsat_fact_consts_total").Add(float64(st.EqSat.FactConsts))
	reg.Counter("stochsyn_eqsat_fact_conflicts_total").Add(float64(st.EqSat.FactConflicts))
	reg.Counter("stochsyn_eqsat_empty_classes_total").Add(float64(st.EqSat.EmptyClasses))
	o.Trace().Emit("eqsat_stats", map[string]any{
		"checks": st.Checks, "hits": st.Hits,
		"seeds": st.Seeds, "seed_dups": st.SeedDups,
		"saturations": st.EqSat.Saturations, "merges": st.EqSat.Merges,
		"fact_consts": st.EqSat.FactConsts, "fact_conflicts": st.EqSat.FactConflicts,
	})
}

// OptimizeResult reports a superoptimization outcome.
type OptimizeResult struct {
	// Program is the smallest correct program found (the starting
	// program when no improvement was found).
	Program string
	// Size and StartSize count instructions and constants of the best
	// and starting programs.
	Size, StartSize int
	// Improved reports whether a smaller equivalent was found.
	Improved bool
	// Iterations is the number of search iterations consumed.
	Iterations int64
	// Cancelled reports that the context was cancelled before the
	// budget was exhausted; Iterations then counts only the work
	// actually done, and Program is the best program found so far.
	Cancelled bool
	// Seed echoes the seed the run used (after normalization),
	// mirroring Result.Seed so optimization outcomes are reproducible
	// from their report alone.
	Seed uint64
	// Duration is the wall-clock time spent searching.
	Duration time.Duration
}

// Optimize performs STOKE-style superoptimization: starting from a
// known-correct program (e.g. a Synthesize result or a translated
// machine-code fragment), it searches for a smaller program that still
// matches every example, using the same Metropolis search with a size
// term added to the cost. The start program must match the problem.
func Optimize(p *Problem, start string, opts Options) (OptimizeResult, error) {
	return OptimizeContext(context.Background(), p, start, opts)
}

// OptimizeContext is Optimize under a context: cancelling ctx (or
// exceeding its deadline) stops the search promptly mid-Step — the run
// polls the context every search.CancelCheckEvery iterations — and
// returns the best program found so far with Cancelled set and exact
// iteration accounting. The error remains nil on cancellation; errors
// report invalid inputs only. With a context that never expires the
// result is bit-identical to Optimize's for the same Options.
func OptimizeContext(ctx context.Context, p *Problem, start string, opts Options) (OptimizeResult, error) {
	o, err := opts.normalize()
	if err != nil {
		return OptimizeResult{}, err
	}
	kind, err := cost.ParseKind(string(o.Cost))
	if err != nil {
		return OptimizeResult{}, err
	}
	set, redundancy, err := dialectSet(o.Dialect)
	if err != nil {
		return OptimizeResult{}, err
	}
	init, err := prog.Parse(start, p.suite.NumInputs)
	if err != nil {
		return OptimizeResult{}, fmt.Errorf("stochsyn: bad start program: %w", err)
	}
	var vals [prog.MaxNodes]uint64
	if !cost.Solves(init, p.suite, vals[:]) {
		return OptimizeResult{}, errors.New("stochsyn: start program does not match the problem")
	}
	sctx := ctx
	if sctx != nil && sctx.Done() == nil {
		sctx = nil // never-cancelled: skip the inner-loop polls entirely
	}
	run := search.New(p.suite, search.Options{
		Set:          set,
		Cost:         kind,
		Beta:         o.Beta,
		Redundancy:   redundancy,
		Seed:         o.Seed,
		Init:         init,
		MinimizeSize: true,
		Ctx:          sctx,
	})
	began := time.Now()
	used, _ := run.Step(o.Budget)
	best := run.Best()
	res := OptimizeResult{
		Program:    best.String(),
		Size:       best.BodyLen(),
		StartSize:  init.BodyLen(),
		Iterations: used,
		Cancelled:  sctx != nil && sctx.Err() != nil,
		Seed:       o.Seed,
		Duration:   time.Since(began),
	}
	res.Improved = res.Size < res.StartSize
	return res, nil
}

// Program is a parsed synthesized program, runnable on new inputs.
type Program struct {
	p *prog.Program
}

// ParseProgram parses the textual program notation (as produced in
// Result.Program), e.g. "orq(andq(x, y), andq(notq(x), z))" or the
// sharing form "a = notq(x); addq(a, a)".
func ParseProgram(src string, numInputs int) (*Program, error) {
	p, err := prog.Parse(src, numInputs)
	if err != nil {
		return nil, err
	}
	return &Program{p: p}, nil
}

// Run evaluates the program on one input vector.
func (pr *Program) Run(inputs ...uint64) (uint64, error) {
	if len(inputs) != pr.p.NumInputs {
		return 0, fmt.Errorf("stochsyn: program takes %d inputs, got %d", pr.p.NumInputs, len(inputs))
	}
	return pr.p.Output(inputs), nil
}

// String returns the program's textual form.
func (pr *Program) String() string { return pr.p.String() }

// Size returns the number of instructions and constants.
func (pr *Program) Size() int { return pr.p.BodyLen() }

// Matches reports whether the program satisfies every example of the
// problem.
func (pr *Program) Matches(p *Problem) bool {
	if pr.p.NumInputs != p.suite.NumInputs {
		return false
	}
	var vals [prog.MaxNodes]uint64
	return cost.Solves(pr.p, p.suite, vals[:])
}
