package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// OperandKind classifies an operand.
type OperandKind uint8

const (
	OpNone OperandKind = iota
	OpReg              // register
	OpImm              // immediate
	OpMem              // memory reference
)

// MemRef is an x86 addressing expression disp(base, index, scale).
type MemRef struct {
	Disp  int64
	Base  Reg // NoReg when absent
	Index Reg // NoReg when absent
	Scale int // 1, 2, 4, or 8
}

// Operand is one instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Width int // register width in bits
	Imm   int64
	Mem   MemRef
}

// String renders the operand in AT&T syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpReg:
		return "%" + o.Reg.Name(o.Width)
	case OpImm:
		return fmt.Sprintf("$%#x", o.Imm)
	case OpMem:
		var sb strings.Builder
		if o.Mem.Disp != 0 {
			fmt.Fprintf(&sb, "%#x", o.Mem.Disp)
		}
		sb.WriteByte('(')
		if o.Mem.Base != NoReg {
			sb.WriteString("%" + o.Mem.Base.String())
		}
		if o.Mem.Index != NoReg {
			fmt.Fprintf(&sb, ",%%%s,%d", o.Mem.Index.String(), o.Mem.Scale)
		}
		sb.WriteByte(')')
		return sb.String()
	}
	return "?"
}

// Inst is one parsed instruction. Operands are in AT&T order (source
// first, destination last).
type Inst struct {
	Mnemonic string
	Operands []Operand
	// Target is the label operand of a jump or call.
	Target string
	// Supported reports whether the instruction's semantics are
	// modeled; unsupported instructions still parse (so basic blocks
	// stay intact) but poison any slice that includes them.
	Supported bool
	// Line is the 1-based source line, for diagnostics.
	Line int
}

// String renders the instruction in AT&T syntax.
func (in *Inst) String() string {
	if len(in.Operands) == 0 && in.Target == "" {
		return in.Mnemonic
	}
	if in.Target != "" {
		return in.Mnemonic + " " + in.Target
	}
	parts := make([]string, len(in.Operands))
	for i, o := range in.Operands {
		parts[i] = o.String()
	}
	return in.Mnemonic + " " + strings.Join(parts, ", ")
}

// kindSig returns a short operand-kind signature like "ri" (register,
// immediate) used by the semantics tables.
func (in *Inst) kindSig() string {
	var sb strings.Builder
	for _, o := range in.Operands {
		switch o.Kind {
		case OpReg:
			sb.WriteByte('r')
		case OpImm:
			sb.WriteByte('i')
		case OpMem:
			sb.WriteByte('m')
		}
	}
	return sb.String()
}

// instClass groups mnemonics by their def/use shape.
type instClass uint8

const (
	classUnknown instClass = iota
	classMov               // dst := src
	classALU2              // dst := dst OP src
	classALU1              // dst := OP dst
	classLea               // dst := address of mem operand
	classExt               // dst := extend(src) (movzx/movsx family)
	classUn1               // dst := OP src (one-source one-dest, e.g. popcnt)
	classFlags             // writes flags only (cmp, test)
	classJump              // control transfer
	classRet
	classCall
	classNop
)

// mnemonicInfo describes a supported mnemonic: its class and operand
// width (0 = derived from operands).
type mnemonicInfo struct {
	class instClass
	width int
}

// mnemonics is the supported instruction subset: enough to model the
// dataflow fragments the benchmark pipeline extracts. Suffix-less
// forms take their width from the register operands.
var mnemonics = map[string]mnemonicInfo{
	"movq":   {classMov, 64},
	"movl":   {classMov, 32},
	"movw":   {classMov, 16},
	"movb":   {classMov, 8},
	"mov":    {classMov, 0},
	"movabs": {classMov, 64},

	"addq": {classALU2, 64}, "addl": {classALU2, 32}, "add": {classALU2, 0},
	"subq": {classALU2, 64}, "subl": {classALU2, 32}, "sub": {classALU2, 0},
	"andq": {classALU2, 64}, "andl": {classALU2, 32}, "and": {classALU2, 0},
	"orq": {classALU2, 64}, "orl": {classALU2, 32}, "or": {classALU2, 0},
	"xorq": {classALU2, 64}, "xorl": {classALU2, 32}, "xor": {classALU2, 0},
	"imulq": {classALU2, 64}, "imull": {classALU2, 32}, "imul": {classALU2, 0},
	"shlq": {classALU2, 64}, "shll": {classALU2, 32}, "shl": {classALU2, 0},
	"salq": {classALU2, 64}, "sall": {classALU2, 32},
	"shrq": {classALU2, 64}, "shrl": {classALU2, 32}, "shr": {classALU2, 0},
	"sarq": {classALU2, 64}, "sarl": {classALU2, 32}, "sar": {classALU2, 0},
	"rolq": {classALU2, 64}, "roll": {classALU2, 32},
	"rorq": {classALU2, 64}, "rorl": {classALU2, 32},

	"notq": {classALU1, 64}, "notl": {classALU1, 32}, "not": {classALU1, 0},
	"negq": {classALU1, 64}, "negl": {classALU1, 32}, "neg": {classALU1, 0},
	"incq": {classALU1, 64}, "incl": {classALU1, 32}, "inc": {classALU1, 0},
	"decq": {classALU1, 64}, "decl": {classALU1, 32}, "dec": {classALU1, 0},
	"bswapq": {classALU1, 64}, "bswapl": {classALU1, 32}, "bswap": {classALU1, 0},

	"leaq": {classLea, 64}, "leal": {classLea, 32}, "lea": {classLea, 0},

	"movzbl": {classExt, 32}, "movzbq": {classExt, 64},
	"movzwl": {classExt, 32}, "movzwq": {classExt, 64},
	"movsbl": {classExt, 32}, "movsbq": {classExt, 64},
	"movswl": {classExt, 32}, "movswq": {classExt, 64},
	"movslq": {classExt, 64},

	"popcntq": {classUn1, 64}, "popcntl": {classUn1, 32}, "popcnt": {classUn1, 0},
	"lzcntq": {classUn1, 64}, "lzcntl": {classUn1, 32},
	"tzcntq": {classUn1, 64}, "tzcntl": {classUn1, 32},

	"btsq": {classALU2, 64}, "btrq": {classALU2, 64}, "btcq": {classALU2, 64},

	"cmpq": {classFlags, 64}, "cmpl": {classFlags, 32}, "cmp": {classFlags, 0},
	"testq": {classFlags, 64}, "testl": {classFlags, 32}, "test": {classFlags, 0},

	"jmp": {classJump, 0},
	"je":  {classJump, 0}, "jne": {classJump, 0}, "jz": {classJump, 0}, "jnz": {classJump, 0},
	"jl": {classJump, 0}, "jle": {classJump, 0}, "jg": {classJump, 0}, "jge": {classJump, 0},
	"jb": {classJump, 0}, "jbe": {classJump, 0}, "ja": {classJump, 0}, "jae": {classJump, 0},
	"js": {classJump, 0}, "jns": {classJump, 0},

	"ret":   {classRet, 0},
	"retq":  {classRet, 0},
	"call":  {classCall, 0},
	"callq": {classCall, 0},
	"nop":   {classNop, 0},
}

// info returns the mnemonic's class info, defaulting to classUnknown.
func (in *Inst) info() mnemonicInfo {
	if mi, ok := mnemonics[in.Mnemonic]; ok {
		return mi
	}
	return mnemonicInfo{classUnknown, 0}
}

// IsControl reports whether the instruction ends a basic block.
func (in *Inst) IsControl() bool {
	switch in.info().class {
	case classJump, classRet, classCall:
		return true
	}
	return false
}

// IsUnconditionalTransfer reports whether fallthrough is impossible.
func (in *Inst) IsUnconditionalTransfer() bool {
	c := in.info().class
	return c == classRet || in.Mnemonic == "jmp"
}

// srcDst returns the source and destination operands of a two-operand
// instruction (AT&T order).
func (in *Inst) srcDst() (src, dst *Operand) {
	if len(in.Operands) != 2 {
		return nil, nil
	}
	return &in.Operands[0], &in.Operands[1]
}

// Uses returns the registers whose values the instruction reads,
// excluding registers appearing only in address expressions of memory
// *reads* (those reads are replaced by fresh inputs during slicing).
// addrUses receives the address-expression registers separately.
func (in *Inst) Uses() (value RegSet, addr RegSet) {
	add := func(set RegSet, o *Operand) RegSet {
		if o != nil && o.Kind == OpReg {
			set = set.Add(o.Reg)
		}
		return set
	}
	addAddr := func(set RegSet, o *Operand) RegSet {
		if o != nil && o.Kind == OpMem {
			set = set.Add(o.Mem.Base).Add(o.Mem.Index)
		}
		return set
	}
	switch in.info().class {
	case classMov, classExt, classUn1:
		src, dst := in.srcDst()
		value = add(value, src)
		addr = addAddr(addr, src)
		addr = addAddr(addr, dst) // memory write address
	case classALU2:
		src, dst := in.srcDst()
		value = add(value, src)
		value = add(value, dst) // read-modify-write
		addr = addAddr(addr, src)
		addr = addAddr(addr, dst)
	case classALU1:
		if len(in.Operands) == 1 {
			value = add(value, &in.Operands[0])
			addr = addAddr(addr, &in.Operands[0])
		}
	case classLea:
		// lea computes the address: the address registers are value
		// uses, not memory accesses.
		src, _ := in.srcDst()
		if src != nil && src.Kind == OpMem {
			value = value.Add(src.Mem.Base).Add(src.Mem.Index)
		}
	case classFlags:
		src, dst := in.srcDst()
		value = add(value, src)
		value = add(value, dst)
		addr = addAddr(addr, src)
		addr = addAddr(addr, dst)
	}
	return value, addr
}

// Def returns the register the instruction writes, or NoReg. Memory
// writes and flag writes do not count as register definitions.
func (in *Inst) Def() Reg {
	switch in.info().class {
	case classMov, classALU2, classLea, classExt, classUn1:
		if _, dst := in.srcDst(); dst != nil && dst.Kind == OpReg {
			return dst.Reg
		}
	case classALU1:
		if len(in.Operands) == 1 && in.Operands[0].Kind == OpReg {
			return in.Operands[0].Reg
		}
	}
	return NoReg
}

// MemSrc returns the instruction's memory-read operand index, or -1.
// lea does not read memory.
func (in *Inst) MemSrc() int {
	switch in.info().class {
	case classMov, classALU2, classExt, classUn1, classFlags:
		for i := range in.Operands {
			// In AT&T syntax at most one operand is memory; for
			// two-operand forms a memory *destination* is a write,
			// not a read, except ALU2 read-modify-write.
			o := &in.Operands[i]
			if o.Kind != OpMem {
				continue
			}
			isDst := i == len(in.Operands)-1 && len(in.Operands) == 2
			cls := in.info().class
			if isDst && (cls == classMov || cls == classExt || cls == classUn1) {
				continue // pure store
			}
			return i
		}
	}
	return -1
}

// WritesMemory reports whether the instruction stores to memory.
func (in *Inst) WritesMemory() bool {
	if len(in.Operands) == 0 {
		return false
	}
	last := &in.Operands[len(in.Operands)-1]
	if last.Kind != OpMem {
		return false
	}
	switch in.info().class {
	case classMov, classALU2, classALU1, classExt, classUn1:
		return true
	}
	return false
}

// ParseInst parses one instruction line (without label or directive).
func ParseInst(line string, lineno int) (*Inst, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil, fmt.Errorf("asm: empty instruction at line %d", lineno)
	}
	var mnem, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mnem = line
	}
	mnem = strings.ToLower(mnem)
	in := &Inst{Mnemonic: mnem, Line: lineno}
	mi, known := mnemonics[mnem]
	in.Supported = known

	if known && (mi.class == classJump || mi.class == classCall) {
		in.Target = rest
		return in, nil
	}
	if rest != "" {
		ops, supported, err := parseOperands(rest)
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %v", lineno, err)
		}
		in.Operands = ops
		if !supported {
			in.Supported = false
		}
	}
	if in.Supported && !validShape(in, mi.class) {
		// Structurally malformed for its class (e.g. "lea $0, %eax"):
		// treat like an unsupported instruction so downstream slicing
		// rejects rather than mis-executes it.
		in.Supported = false
	}
	return in, nil
}

// validShape checks that the instruction's operands match its class's
// expected form.
func validShape(in *Inst, cls instClass) bool {
	ops := in.Operands
	memCount := 0
	for i := range ops {
		if ops[i].Kind == OpMem {
			memCount++
		}
	}
	dstOK := func() bool {
		d := &ops[len(ops)-1]
		return d.Kind == OpReg || d.Kind == OpMem
	}
	switch cls {
	case classMov, classALU2, classFlags:
		return len(ops) == 2 && memCount <= 1 && dstOK()
	case classExt, classUn1:
		// Source must not be an immediate; destination is a register.
		return len(ops) == 2 && memCount <= 1 &&
			ops[0].Kind != OpImm && ops[1].Kind == OpReg
	case classALU1:
		return len(ops) == 1 && dstOK()
	case classLea:
		return len(ops) == 2 && ops[0].Kind == OpMem && ops[1].Kind == OpReg
	case classRet, classNop:
		return len(ops) == 0
	}
	return true
}

// parseOperands splits and parses a comma-separated operand list. The
// supported result is false when an operand mentions an unsupported
// register class (e.g. xmm).
func parseOperands(s string) (ops []Operand, supported bool, err error) {
	supported = true
	depth := 0
	start := 0
	var fields []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				fields = append(fields, s[start:i])
				start = i + 1
			}
		}
	}
	fields = append(fields, s[start:])
	for _, f := range fields {
		op, ok, err := parseOperand(strings.TrimSpace(f))
		if err != nil {
			return nil, false, err
		}
		if !ok {
			supported = false
		}
		ops = append(ops, op)
	}
	return ops, supported, nil
}

// parseOperand parses a single operand. ok is false for operands
// referencing unsupported register classes.
func parseOperand(s string) (Operand, bool, error) {
	if s == "" {
		return Operand{}, false, fmt.Errorf("empty operand")
	}
	switch {
	case s[0] == '$':
		v, err := parseImm(s[1:])
		if err != nil {
			return Operand{}, false, err
		}
		return Operand{Kind: OpImm, Imm: v}, true, nil
	case s[0] == '%':
		name := s[1:]
		if !IsSupportedRegName(name) {
			return Operand{Kind: OpReg, Reg: NoReg}, false, nil
		}
		r, w, err := ParseReg(name)
		if err != nil {
			return Operand{}, false, err
		}
		return Operand{Kind: OpReg, Reg: r, Width: w}, true, nil
	case strings.Contains(s, "("):
		return parseMem(s)
	default:
		// Bare displacement (absolute address).
		v, err := parseImm(s)
		if err != nil {
			return Operand{}, false, fmt.Errorf("cannot parse operand %q", s)
		}
		return Operand{Kind: OpMem, Mem: MemRef{Disp: v, Base: NoReg, Index: NoReg, Scale: 1}}, true, nil
	}
}

// parseMem parses disp(base,index,scale) forms.
func parseMem(s string) (Operand, bool, error) {
	open := strings.IndexByte(s, '(')
	closeP := strings.LastIndexByte(s, ')')
	if closeP < open {
		return Operand{}, false, fmt.Errorf("malformed memory operand %q", s)
	}
	m := MemRef{Base: NoReg, Index: NoReg, Scale: 1}
	if d := strings.TrimSpace(s[:open]); d != "" {
		v, err := parseImm(d)
		if err != nil {
			return Operand{}, false, fmt.Errorf("bad displacement in %q", s)
		}
		m.Disp = v
	}
	supported := true
	parts := strings.Split(s[open+1:closeP], ",")
	reg := func(p string) (Reg, bool) {
		p = strings.TrimSpace(p)
		if p == "" {
			return NoReg, true
		}
		if !strings.HasPrefix(p, "%") || !IsSupportedRegName(p[1:]) {
			return NoReg, false
		}
		r, _, _ := ParseReg(p[1:])
		return r, true
	}
	if len(parts) >= 1 {
		r, ok := reg(parts[0])
		m.Base = r
		supported = supported && ok
	}
	if len(parts) >= 2 {
		r, ok := reg(parts[1])
		m.Index = r
		supported = supported && ok
	}
	if len(parts) >= 3 {
		sc, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || (sc != 1 && sc != 2 && sc != 4 && sc != 8) {
			return Operand{}, false, fmt.Errorf("bad scale in %q", s)
		}
		m.Scale = sc
	}
	return Operand{Kind: OpMem, Mem: m}, supported, nil
}

// parseImm parses decimal or 0x hex immediates with optional sign.
func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}
