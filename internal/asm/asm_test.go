package asm

import (
	"strings"
	"testing"
)

func TestParseReg(t *testing.T) {
	cases := []struct {
		name  string
		reg   Reg
		width int
	}{
		{"rax", RAX, 64},
		{"eax", RAX, 32},
		{"ax", RAX, 16},
		{"al", RAX, 8},
		{"r14", R14, 64},
		{"r14d", R14, 32},
		{"r14w", R14, 16},
		{"r14b", R14, 8},
		{"ebp", RBP, 32},
		{"sil", RSI, 8},
		{"rip", RIP, 64},
	}
	for _, tc := range cases {
		r, w, err := ParseReg(tc.name)
		if err != nil || r != tc.reg || w != tc.width {
			t.Errorf("ParseReg(%q) = (%v, %d, %v), want (%v, %d)", tc.name, r, w, err, tc.reg, tc.width)
		}
	}
	if _, _, err := ParseReg("xmm1"); err == nil {
		t.Error("ParseReg accepted xmm1")
	}
	if IsSupportedRegName("ymm0") {
		t.Error("ymm0 claimed supported")
	}
}

func TestRegNames(t *testing.T) {
	if RAX.Name(64) != "rax" || RAX.Name(32) != "eax" || RAX.Name(8) != "al" {
		t.Error("rax naming broken")
	}
	if R8.Name(32) != "r8d" || R8.Name(16) != "r8w" || R8.Name(8) != "r8b" {
		t.Error("r8 naming broken")
	}
}

func TestRegSet(t *testing.T) {
	s := RegSet(0).Add(RAX).Add(R14)
	if !s.Has(RAX) || !s.Has(R14) || s.Has(RBX) {
		t.Error("RegSet membership broken")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	s = s.Remove(RAX)
	if s.Has(RAX) {
		t.Error("Remove failed")
	}
	// Pseudo-registers are ignored.
	if s.Add(NoReg) != s || s.Add(RIP) != s {
		t.Error("pseudo-register added to set")
	}
	if got := s.String(); !strings.Contains(got, "r14") {
		t.Errorf("String() = %q", got)
	}
}

func TestParseInstForms(t *testing.T) {
	cases := []struct {
		line      string
		mnemonic  string
		operands  int
		supported bool
	}{
		{"addl %r14d, %ebp", "addl", 2, true},
		{"movq $-1, %rax", "movq", 2, true},
		{"shll $0x3, %eax", "shll", 2, true},
		{"leal (%rax,%rax,4), %edx", "leal", 2, true},
		{"movsd 0x2f251(%rip), %xmm2", "movsd", 2, false},
		{"pxor %xmm1, %xmm1", "pxor", 2, false},
		{"movq 16(%rsp), %rbx", "movq", 2, true},
		{"notq %rdi", "notq", 1, true},
		{"ret", "ret", 0, true},
		{"movzbl %al, %ecx", "movzbl", 2, true},
		{"imulq %rbx, %rcx", "imulq", 2, true},
		{"cmpq %rax, %rbx", "cmpq", 2, true},
	}
	for _, tc := range cases {
		in, err := ParseInst(tc.line, 1)
		if err != nil {
			t.Errorf("ParseInst(%q): %v", tc.line, err)
			continue
		}
		if in.Mnemonic != tc.mnemonic || len(in.Operands) != tc.operands || in.Supported != tc.supported {
			t.Errorf("ParseInst(%q) = {%s %d ops supported=%v}, want {%s %d %v}",
				tc.line, in.Mnemonic, len(in.Operands), in.Supported,
				tc.mnemonic, tc.operands, tc.supported)
		}
	}
}

func TestParseInstJump(t *testing.T) {
	in, err := ParseInst("je .L1_2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Target != ".L1_2" || !in.IsControl() {
		t.Errorf("jump parse: %+v", in)
	}
	if in.IsUnconditionalTransfer() {
		t.Error("je is not unconditional")
	}
	jmp, _ := ParseInst("jmp .L0_1", 1)
	if !jmp.IsUnconditionalTransfer() {
		t.Error("jmp is unconditional")
	}
}

func TestParseMemOperand(t *testing.T) {
	in, err := ParseInst("movq -8(%rbp,%rcx,4), %rax", 1)
	if err != nil {
		t.Fatal(err)
	}
	m := in.Operands[0]
	if m.Kind != OpMem || m.Mem.Base != RBP || m.Mem.Index != RCX || m.Mem.Scale != 4 || m.Mem.Disp != -8 {
		t.Errorf("mem operand: %+v", m.Mem)
	}
}

func TestInstDefUses(t *testing.T) {
	// addl %r14d, %ebp: reads r14 and rbp, writes rbp.
	in, _ := ParseInst("addl %r14d, %ebp", 1)
	val, addr := in.Uses()
	if !val.Has(R14) || !val.Has(RBP) || addr != 0 {
		t.Errorf("addl uses: val=%v addr=%v", val, addr)
	}
	if in.Def() != RBP {
		t.Errorf("addl def = %v", in.Def())
	}

	// movq (%rbx), %rax: address use rbx, def rax, memory read.
	ld, _ := ParseInst("movq (%rbx), %rax", 1)
	val, addr = ld.Uses()
	if val.Has(RBX) || !addr.Has(RBX) {
		t.Errorf("load uses: val=%v addr=%v", val, addr)
	}
	if ld.Def() != RAX || ld.MemSrc() != 0 {
		t.Errorf("load def=%v memsrc=%d", ld.Def(), ld.MemSrc())
	}

	// movq %rax, (%rbx): store, no def, writes memory.
	st, _ := ParseInst("movq %rax, (%rbx)", 1)
	if st.Def() != NoReg || !st.WritesMemory() || st.MemSrc() != -1 {
		t.Errorf("store: def=%v writes=%v memsrc=%d", st.Def(), st.WritesMemory(), st.MemSrc())
	}

	// leaq 4(%rbp,%r9,8), %rbp: address registers are VALUE uses.
	lea, _ := ParseInst("leaq 4(%rbp,%r9,8), %rbp", 1)
	val, addr = lea.Uses()
	if !val.Has(RBP) || !val.Has(R9) || addr != 0 {
		t.Errorf("lea uses: val=%v addr=%v", val, addr)
	}
	if lea.MemSrc() != -1 {
		t.Error("lea flagged as memory read")
	}

	// cmpq writes only flags.
	cmp, _ := ParseInst("cmpq %rax, %rbx", 1)
	if cmp.Def() != NoReg {
		t.Error("cmp defines a register")
	}
}

const sampleFunc = `
	.text
f:
	movq %rdi, %rax
	addq %rsi, %rax
	cmpq %rdx, %rax
	je .Lskip
	imulq %rdx, %rax
.Lskip:
	ret
`

func TestParseTextBlocks(t *testing.T) {
	funcs, err := ParseText(sampleFunc)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 1 || funcs[0].Name != "f" {
		t.Fatalf("parsed %d funcs", len(funcs))
	}
	f := funcs[0]
	if len(f.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(f.Blocks))
	}
	// Block 0 ends with je: successors are .Lskip and fallthrough.
	if len(f.Blocks[0].Succs) != 2 {
		t.Errorf("block 0 succs: %v", f.Blocks[0].Succs)
	}
	// Block 2 is the ret block with no successors.
	if len(f.Blocks[2].Succs) != 0 {
		t.Errorf("ret block succs: %v", f.Blocks[2].Succs)
	}
}

func TestLiveness(t *testing.T) {
	funcs, err := ParseText(sampleFunc)
	if err != nil {
		t.Fatal(err)
	}
	f := funcs[0]
	// rax is live out of block 0 (read in both successors' paths to
	// the return) and rdx is live out of block 0 (used by imulq).
	lo := f.Blocks[0].LiveOut
	if !lo.Has(RAX) {
		t.Errorf("block 0 live-out %v missing rax", lo)
	}
	if !lo.Has(RDX) {
		t.Errorf("block 0 live-out %v missing rdx", lo)
	}
	// rdi is not live out of block 0 (fully consumed).
	if lo.Has(RDI) {
		t.Errorf("block 0 live-out %v should not include rdi", lo)
	}
}

func TestCommentsAndDirectivesIgnored(t *testing.T) {
	src := "f:\n# full comment line\n\taddq %rsi, %rdi # trailing comment\n\t.p2align 4\n\tret\n"
	funcs, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(funcs[0].Blocks[0].Insts); n != 2 { // addq, ret
		t.Errorf("got %d instructions, want 2", n)
	}
}
