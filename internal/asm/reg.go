// Package asm is the binary-scraping front end of the
// superoptimization benchmark (Section 6 of the paper): a parser for a
// subset of x86-64 assembly in AT&T syntax, basic-block construction,
// intra-procedural liveness, backward dataflow slices for live-out
// registers ("dataflow-related subsequences"), replacement of memory
// reads by moves from fresh registers, and a concrete evaluator for
// the resulting straight-line fragments.
//
// As with the paper's disassembler, only a subset of the instruction
// set is supported; fragments touching unsupported instructions
// (vector registers, memory writes, cmov, ...) are discarded by the
// pipeline.
package asm

import (
	"fmt"
	"strings"
)

// Reg identifies one of the sixteen x86-64 general-purpose registers.
// Sub-register names (eax, ax, al, ...) alias their full register.
type Reg uint8

// General-purpose registers in encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	NumRegs

	// NoReg marks an absent base/index register in memory operands.
	NoReg Reg = 0xFF
	// RIP marks the instruction-pointer pseudo-register allowed only
	// as a memory base (rip-relative addressing).
	RIP Reg = 0xFE
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the 64-bit name of the register.
func (r Reg) String() string {
	switch {
	case r < NumRegs:
		return regNames[r]
	case r == RIP:
		return "rip"
	}
	return fmt.Sprintf("reg(%d)", uint8(r))
}

// Name returns the conventional register name at the given width in
// bits (64, 32, 16, or 8, the latter meaning the low byte).
func (r Reg) Name(width int) string {
	if r >= NumRegs {
		return r.String()
	}
	base := regNames[r]
	if r >= R8 {
		switch width {
		case 64:
			return base
		case 32:
			return base + "d"
		case 16:
			return base + "w"
		case 8:
			return base + "b"
		}
		return base
	}
	// Legacy registers.
	switch width {
	case 64:
		return base
	case 32:
		return "e" + base[1:]
	case 16:
		return base[1:]
	case 8:
		switch r {
		case RAX:
			return "al"
		case RBX:
			return "bl"
		case RCX:
			return "cl"
		case RDX:
			return "dl"
		case RSP:
			return "spl"
		case RBP:
			return "bpl"
		case RSI:
			return "sil"
		case RDI:
			return "dil"
		}
	}
	return base
}

// regByName maps every supported register spelling to (register,
// width).
var regByName = func() map[string]struct {
	reg   Reg
	width int
} {
	m := make(map[string]struct {
		reg   Reg
		width int
	})
	add := func(name string, r Reg, w int) {
		m[name] = struct {
			reg   Reg
			width int
		}{r, w}
	}
	for r := RAX; r < NumRegs; r++ {
		for _, w := range []int{64, 32, 16, 8} {
			add(r.Name(w), r, w)
		}
	}
	// Alternate high-byte names of the legacy registers; we model them
	// at width 8 like the low byte, which is adequate for slicing (the
	// corpus generator never emits them).
	add("ah", RAX, 8)
	add("bh", RBX, 8)
	add("ch", RCX, 8)
	add("dh", RDX, 8)
	add("rip", RIP, 64)
	return m
}()

// ParseReg parses a register name without the leading %.
func ParseReg(name string) (Reg, int, error) {
	if e, ok := regByName[strings.ToLower(name)]; ok {
		return e.reg, e.width, nil
	}
	return 0, 0, fmt.Errorf("asm: unknown register %%%s", name)
}

// IsSupportedRegName reports whether the name is a GPR (or rip); xmm,
// ymm, segment registers, etc. are unsupported.
func IsSupportedRegName(name string) bool {
	_, ok := regByName[strings.ToLower(name)]
	return ok
}

// RegSet is a bitset of general-purpose registers.
type RegSet uint16

// Add returns the set with r added (no-op for pseudo-registers).
func (s RegSet) Add(r Reg) RegSet {
	if r >= NumRegs {
		return s
	}
	return s | 1<<r
}

// Remove returns the set with r removed.
func (s RegSet) Remove(r Reg) RegSet {
	if r >= NumRegs {
		return s
	}
	return s &^ (1 << r)
}

// Has reports membership.
func (s RegSet) Has(r Reg) bool {
	return r < NumRegs && s&(1<<r) != 0
}

// Union returns the union of two sets.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Len returns the number of registers in the set.
func (s RegSet) Len() int {
	n := 0
	for r := RAX; r < NumRegs; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Regs lists the registers in encoding order.
func (s RegSet) Regs() []Reg {
	var out []Reg
	for r := RAX; r < NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the set for diagnostics.
func (s RegSet) String() string {
	names := make([]string, 0, s.Len())
	for _, r := range s.Regs() {
		names = append(names, r.String())
	}
	return "{" + strings.Join(names, ",") + "}"
}
