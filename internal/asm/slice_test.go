package asm

import (
	"strings"
	"testing"
)

// figure12 is the paper's Figure 12 basic block. The slice for %edx
// consists of the starred instructions:
//
//	*addl %r14d, %ebp
//	*addl %ebp, %eax
//	*leal (%rax,%rax,4), %edx
//	*shll $0x3, %edx
//
// while the xmm instructions and the unrelated %eax recomputation are
// excluded.
const figure12 = `
g:
	addl %r14d, %ebp
	pxor %xmm1, %xmm1
	addl %ebp, %eax
	movsd 0x2f251(%rip), %xmm2
	leal (%rax,%rax,4), %edx
	leal (%r14,%r14,4), %eax
	movsd 0x2f24a(%rip), %xmm0
	shll $0x3, %eax
	shll $0x3, %edx
	ret
`

func TestFigure12Slice(t *testing.T) {
	funcs, err := ParseText(figure12)
	if err != nil {
		t.Fatal(err)
	}
	b := funcs[0].Blocks[0]
	frag, err := SliceBlock(funcs[0], b, RDX)
	if err != nil {
		t.Fatal(err)
	}
	if len(frag.Insts) != 4 {
		t.Fatalf("slice has %d instructions, want 4:\n%s", len(frag.Insts), frag)
	}
	wantMnemonics := []string{"addl", "addl", "leal", "shll"}
	for i, in := range frag.Insts {
		if in.Mnemonic != wantMnemonics[i] {
			t.Errorf("slice[%d] = %s, want %s", i, in.Mnemonic, wantMnemonics[i])
		}
	}
	// Inputs: r14, rbp, rax (initial values feeding the dataflow).
	var want RegSet
	want = want.Add(R14).Add(RBP).Add(RAX)
	var got RegSet
	for _, r := range frag.Inputs {
		got = got.Add(r)
	}
	if got != want {
		t.Errorf("inputs %v, want %v", got, want)
	}
	if frag.Output != RDX || frag.OutputWidth != 32 {
		t.Errorf("output %v/%d, want edx/32", frag.Output, frag.OutputWidth)
	}
	if frag.FreshInputs != 0 {
		t.Errorf("unexpected fresh inputs: %d", frag.FreshInputs)
	}
}

func TestFigure12Execute(t *testing.T) {
	funcs, _ := ParseText(figure12)
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RDX)
	if err != nil {
		t.Fatal(err)
	}
	// Reference semantics for the %edx slice:
	// ebp' = ebp + r14; eax' = eax + ebp'; edx = (eax' * 5) << 3,
	// everything computed in 32 bits and zero-extended.
	ref := func(r14, rbp, rax uint64) uint64 {
		ebp := uint32(rbp) + uint32(r14)
		eax := uint32(rax) + ebp
		edx := (eax + eax*4) << 3
		return uint64(edx)
	}
	// Map fragment input order to values.
	vals := map[Reg]uint64{RAX: 1000, RBP: 7, R14: 123456789}
	in := make([]uint64, len(frag.Inputs))
	for i, r := range frag.Inputs {
		in[i] = vals[r]
	}
	got, err := frag.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := ref(vals[R14], vals[RBP], vals[RAX]); got != want {
		t.Errorf("Execute = %#x, want %#x", got, want)
	}
}

func TestSliceMemoryReadReplaced(t *testing.T) {
	src := `
h:
	movq 16(%rsp), %rbx
	addq %rdi, %rbx
	movq %rbx, %rax
	ret
`
	funcs, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX)
	if err != nil {
		t.Fatal(err)
	}
	if frag.FreshInputs != 1 {
		t.Fatalf("fresh inputs = %d, want 1:\n%s", frag.FreshInputs, frag)
	}
	// The rewritten load must read a register, not memory.
	for _, in := range frag.Insts {
		for _, o := range in.Operands {
			if o.Kind == OpMem {
				t.Errorf("memory operand survived rewriting: %s", in)
			}
		}
	}
	// Semantics: output = mem + rdi, with mem supplied via the fresh
	// input (last input by convention).
	in := make([]uint64, len(frag.Inputs))
	for i := range in {
		in[i] = uint64(i+1) * 111
	}
	got, err := frag.Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	var rdiVal, fresh uint64
	for i, r := range frag.Inputs {
		if r == RDI {
			rdiVal = in[i]
		} else {
			fresh = in[i]
		}
	}
	if got != rdiVal+fresh {
		t.Errorf("Execute = %d, want %d", got, rdiVal+fresh)
	}
}

func TestSliceRejectsCallDependence(t *testing.T) {
	src := `
k:
	call helper_1
	addq %rdi, %rax
	ret
`
	funcs, _ := ParseText(src)
	if _, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX); err == nil {
		t.Error("slice through a call result was accepted")
	}
}

func TestSliceRejectsUnsupportedDef(t *testing.T) {
	// cvtsd2si would write a GPR but is unsupported: the slice must be
	// rejected rather than silently wrong.
	src := `
m:
	cvttsd2si %xmm0, %rax
	addq %rdi, %rax
	ret
`
	funcs, _ := ParseText(src)
	if _, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX); err == nil {
		t.Error("slice with unsupported defining instruction was accepted")
	}
}

func TestSliceSkipsIrrelevantUnsupported(t *testing.T) {
	// Vector instructions that cannot define the sliced GPR are
	// skipped, as in Figure 12.
	src := `
n:
	pxor %xmm1, %xmm1
	addq %rdi, %rsi
	movq %rsi, %rax
	ret
`
	funcs, _ := ParseText(src)
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range frag.Insts {
		if in.Mnemonic == "pxor" {
			t.Error("unsupported instruction included in slice")
		}
	}
}

func TestNonTrivialCountAndSignature(t *testing.T) {
	src := `
p:
	movq %rdi, %rax
	addq %rsi, %rax
	shlq $2, %rax
	ret
`
	funcs, _ := ParseText(src)
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX)
	if err != nil {
		t.Fatal(err)
	}
	if got := frag.NonTrivialCount(); got != 2 {
		t.Errorf("NonTrivialCount = %d, want 2 (mov excluded)", got)
	}
	if sig := frag.Signature(); sig != "addq;shlq" {
		t.Errorf("Signature = %q, want addq;shlq", sig)
	}
}

func TestFragments(t *testing.T) {
	funcs, _ := ParseText(figure12)
	frags := Fragments(funcs[0], 2)
	if len(frags) == 0 {
		t.Fatal("no fragments extracted")
	}
	foundEdx := false
	for _, fr := range frags {
		if fr.Output == RDX {
			foundEdx = true
		}
		if fr.NonTrivialCount() < 2 {
			t.Errorf("fragment below non-trivial threshold: %s", fr)
		}
	}
	// rdx is not live-out of a ret block seeded with {rax}, so the
	// edx fragment is only extracted when liveness says so; the rax
	// slice must be present.
	_ = foundEdx
	foundRax := false
	for _, fr := range frags {
		if fr.Output == RAX {
			foundRax = true
		}
	}
	if !foundRax {
		t.Error("no fragment for the live-out rax")
	}
}

func TestExecuteWidthSemantics(t *testing.T) {
	// 32-bit writes zero-extend; 8/16-bit writes merge.
	var rf RegFile
	rf[RAX] = 0xFFFFFFFFFFFFFFFF
	rf.Set(RAX, 32, 0x1234)
	if rf[RAX] != 0x1234 {
		t.Errorf("32-bit write = %#x, want zero-extended 0x1234", rf[RAX])
	}
	rf[RAX] = 0xFFFFFFFFFFFFFFFF
	rf.Set(RAX, 16, 0x1234)
	if rf[RAX] != 0xFFFFFFFFFFFF1234 {
		t.Errorf("16-bit write = %#x", rf[RAX])
	}
	rf[RAX] = 0xFFFFFFFFFFFFFFFF
	rf.Set(RAX, 8, 0x34)
	if rf[RAX] != 0xFFFFFFFFFFFFFF34 {
		t.Errorf("8-bit write = %#x", rf[RAX])
	}
}

func TestExecuteInstructionMix(t *testing.T) {
	src := `
q:
	movl $100, %eax
	negl %eax
	movslq %eax, %rbx
	notq %rbx
	leaq 3(%rbx,%rbx,2), %rcx
	sarq $1, %rcx
	movq %rcx, %rax
	ret
`
	funcs, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX)
	if err != nil {
		t.Fatal(err)
	}
	got, err := frag.Execute(make([]uint64, len(frag.Inputs)))
	if err != nil {
		t.Fatal(err)
	}
	// eax = -100 (as uint32); rbx = sign-extended -100 -> ^(-100) = 99;
	// rcx = 3*99 + 3 = 300; sar 1 -> 150.
	if got != 150 {
		t.Errorf("Execute = %d, want 150", got)
	}
}

func TestFragmentString(t *testing.T) {
	funcs, _ := ParseText(figure12)
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RDX)
	if err != nil {
		t.Fatal(err)
	}
	s := frag.String()
	if !strings.Contains(s, "addl") || !strings.Contains(s, "inputs:") {
		t.Errorf("String() = %q", s)
	}
}

func TestBitTestInstructions(t *testing.T) {
	src := `
bt:
	movq %rdi, %rax
	btsq $5, %rax
	btrq $0, %rax
	btcq $63, %rax
	ret
`
	funcs, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, ^uint64(0), 0x1234} {
		got, err := frag.Execute([]uint64{x})
		if err != nil {
			t.Fatal(err)
		}
		want := ((x | 1<<5) &^ 1) ^ 1<<63
		if got != want {
			t.Errorf("bt chain on %#x = %#x, want %#x", x, got, want)
		}
	}
}
