package asm

import (
	"fmt"
	mathbits "math/bits"
)

// RegFile is a concrete x86-64 general-purpose register file.
type RegFile [NumRegs]uint64

// Get reads register r at the given width, zero-extended to 64 bits
// except that 8/16-bit reads return the low bits only.
func (rf *RegFile) Get(r Reg, width int) uint64 {
	v := rf[r]
	switch width {
	case 32:
		return uint64(uint32(v))
	case 16:
		return uint64(uint16(v))
	case 8:
		return uint64(uint8(v))
	}
	return v
}

// Set writes register r at the given width with x86 semantics: 64-bit
// writes replace the register, 32-bit writes zero-extend, and 8/16-bit
// writes merge into the low bits.
func (rf *RegFile) Set(r Reg, width int, v uint64) {
	switch width {
	case 64:
		rf[r] = v
	case 32:
		rf[r] = uint64(uint32(v))
	case 16:
		rf[r] = rf[r]&^0xFFFF | v&0xFFFF
	case 8:
		rf[r] = rf[r]&^0xFF | v&0xFF
	}
}

// Execute runs the fragment on the given input values (one per entry
// of fr.Inputs, in order) and returns the value of the output register
// at the end, zero-extended from the output width. It returns an error
// if the fragment contains an instruction the evaluator cannot model;
// pipeline-produced fragments never do.
func (fr *Fragment) Execute(inputs []uint64) (uint64, error) {
	if len(inputs) != len(fr.Inputs) {
		return 0, fmt.Errorf("asm: fragment takes %d inputs, got %d", len(fr.Inputs), len(inputs))
	}
	var rf RegFile
	for i, r := range fr.Inputs {
		rf[r] = inputs[i]
	}
	for _, in := range fr.Insts {
		if err := step(&rf, in); err != nil {
			return 0, err
		}
	}
	out := rf.Get(fr.Output, fr.OutputWidth)
	return out, nil
}

// operandValue reads the value of a non-memory source operand.
func operandValue(rf *RegFile, o *Operand) (uint64, error) {
	switch o.Kind {
	case OpReg:
		w := o.Width
		if w == 0 {
			w = 64
		}
		return rf.Get(o.Reg, w), nil
	case OpImm:
		return uint64(o.Imm), nil
	}
	return 0, fmt.Errorf("asm: cannot evaluate %s operand", o)
}

// step executes one instruction against the register file.
func step(rf *RegFile, in *Inst) error {
	mi := in.info()
	if !in.Supported || mi.class == classUnknown {
		return fmt.Errorf("asm: cannot execute unsupported instruction %q", in.String())
	}
	width := func(dst *Operand) int {
		if mi.width != 0 {
			return mi.width
		}
		if dst != nil && dst.Kind == OpReg && dst.Width != 0 {
			return dst.Width
		}
		return 64
	}
	switch mi.class {
	case classNop, classFlags, classJump, classRet, classCall:
		return nil

	case classMov:
		src, dst := in.srcDst()
		if src == nil || dst == nil || dst.Kind != OpReg {
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		v, err := operandValue(rf, src)
		if err != nil {
			return err
		}
		rf.Set(dst.Reg, width(dst), v)
		return nil

	case classLea:
		src, dst := in.srcDst()
		if src == nil || dst == nil || src.Kind != OpMem || dst.Kind != OpReg {
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		addr := uint64(src.Mem.Disp)
		if src.Mem.Base != NoReg && src.Mem.Base != RIP {
			addr += rf[src.Mem.Base]
		}
		if src.Mem.Index != NoReg {
			addr += rf[src.Mem.Index] * uint64(src.Mem.Scale)
		}
		rf.Set(dst.Reg, width(dst), addr)
		return nil

	case classExt:
		src, dst := in.srcDst()
		if src == nil || dst == nil || dst.Kind != OpReg {
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		v, err := operandValue(rf, src)
		if err != nil {
			return err
		}
		rf.Set(dst.Reg, width(dst), extend(in.Mnemonic, v))
		return nil

	case classUn1:
		src, dst := in.srcDst()
		if src == nil || dst == nil || dst.Kind != OpReg {
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		v, err := operandValue(rf, src)
		if err != nil {
			return err
		}
		w := width(dst)
		var out uint64
		switch trimSuffix(in.Mnemonic) {
		case "popcnt":
			out = uint64(mathbits.OnesCount64(maskTo(v, w)))
		case "lzcnt":
			if w == 32 {
				out = uint64(mathbits.LeadingZeros32(uint32(v)))
			} else {
				out = uint64(mathbits.LeadingZeros64(v))
			}
		case "tzcnt":
			if w == 32 {
				out = uint64(mathbits.TrailingZeros32(uint32(v)))
			} else {
				out = uint64(mathbits.TrailingZeros64(v))
			}
		default:
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		rf.Set(dst.Reg, w, out)
		return nil

	case classALU1:
		if len(in.Operands) != 1 || in.Operands[0].Kind != OpReg {
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		dst := &in.Operands[0]
		w := width(dst)
		v := rf.Get(dst.Reg, w)
		var out uint64
		switch trimSuffix(in.Mnemonic) {
		case "not":
			out = ^v
		case "neg":
			out = -v
		case "inc":
			out = v + 1
		case "dec":
			out = v - 1
		case "bswap":
			if w == 32 {
				out = uint64(mathbits.ReverseBytes32(uint32(v)))
			} else {
				out = mathbits.ReverseBytes64(v)
			}
		default:
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		rf.Set(dst.Reg, w, out)
		return nil

	case classALU2:
		src, dst := in.srcDst()
		if src == nil || dst == nil || dst.Kind != OpReg {
			return fmt.Errorf("asm: cannot execute %q", in.String())
		}
		w := width(dst)
		a := rf.Get(dst.Reg, w)
		b, err := operandValue(rf, src)
		if err != nil {
			return err
		}
		out, err := alu2(trimSuffix(in.Mnemonic), w, a, b)
		if err != nil {
			return fmt.Errorf("asm: cannot execute %q: %v", in.String(), err)
		}
		rf.Set(dst.Reg, w, out)
		return nil
	}
	return fmt.Errorf("asm: cannot execute %q", in.String())
}

// alu2 evaluates a two-operand ALU operation at the given width; a is
// the destination's old value, b the source.
func alu2(op string, w int, a, b uint64) (uint64, error) {
	shiftMask := uint64(63)
	if w == 32 {
		shiftMask = 31
	}
	switch op {
	case "add":
		return a + b, nil
	case "sub":
		return a - b, nil
	case "imul":
		return a * b, nil
	case "and":
		return a & b, nil
	case "or":
		return a | b, nil
	case "xor":
		return a ^ b, nil
	case "shl", "sal":
		return a << (b & shiftMask), nil
	case "shr":
		return maskTo(a, w) >> (b & shiftMask), nil
	case "sar":
		if w == 32 {
			return uint64(uint32(int32(a) >> (b & shiftMask))), nil
		}
		return uint64(int64(a) >> (b & shiftMask)), nil
	case "rol":
		if w == 32 {
			return uint64(mathbits.RotateLeft32(uint32(a), int(b&31))), nil
		}
		return mathbits.RotateLeft64(a, int(b&63)), nil
	case "ror":
		if w == 32 {
			return uint64(mathbits.RotateLeft32(uint32(a), -int(b&31))), nil
		}
		return mathbits.RotateLeft64(a, -int(b&63)), nil
	case "bts":
		return a | 1<<(b&shiftMask), nil
	case "btr":
		return a &^ (1 << (b & shiftMask)), nil
	case "btc":
		return a ^ 1<<(b&shiftMask), nil
	}
	return 0, fmt.Errorf("unknown ALU op %q", op)
}

// extend implements the movzx/movsx family.
func extend(mnem string, v uint64) uint64 {
	switch mnem {
	case "movzbl", "movzbq":
		return uint64(uint8(v))
	case "movzwl", "movzwq":
		return uint64(uint16(v))
	case "movsbl", "movsbq":
		return uint64(int64(int8(v)))
	case "movswl", "movswq":
		return uint64(int64(int16(v)))
	case "movslq":
		return uint64(int64(int32(v)))
	}
	return v
}

// maskTo truncates v to the low w bits (w = 32 or 64).
func maskTo(v uint64, w int) uint64 {
	if w == 32 {
		return uint64(uint32(v))
	}
	return v
}

// trimSuffix drops a trailing width suffix (q/l) from a mnemonic.
func trimSuffix(m string) string {
	if n := len(m); n > 1 && (m[n-1] == 'q' || m[n-1] == 'l') {
		// Keep mnemonics that are not suffixed forms intact.
		switch m {
		case "imul", "rol", "ror", "sal", "shl", "shr", "sar":
			return m
		}
		base := m[:n-1]
		switch base {
		case "add", "sub", "imul", "and", "or", "xor", "shl", "sal",
			"shr", "sar", "rol", "ror", "not", "neg", "inc", "dec",
			"bswap", "popcnt", "lzcnt", "tzcnt", "bts", "btr", "btc":
			return base
		}
	}
	return m
}
