package asm

import "testing"

// FuzzParseText exercises the assembly front end with arbitrary
// listings: parsing must never panic, and parsed functions must
// survive fragment extraction.
func FuzzParseText(f *testing.F) {
	f.Add(sampleFunc)
	f.Add(figure12)
	f.Add("f:\n\taddq %rax, %rbx\n\tret\n")
	f.Add("f:\n\tbogus %xyz\n")
	f.Add(".L1:\n\tjmp .L1\n")
	f.Add("f:\n\tmovq 8(%rsp,%rax,4), %rbx\n")
	f.Fuzz(func(t *testing.T, src string) {
		funcs, err := ParseText(src)
		if err != nil {
			return
		}
		for _, fn := range funcs {
			for _, fr := range Fragments(fn, 1) {
				in := make([]uint64, len(fr.Inputs))
				if _, err := fr.Execute(in); err != nil {
					t.Fatalf("extracted fragment fails to execute: %v\n%s", err, fr)
				}
			}
		}
	})
}
