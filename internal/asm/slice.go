package asm

import (
	"fmt"
	"strings"
)

// Fragment is one synthesis problem candidate: the backward dataflow
// slice of a basic block for one live-out register, with memory reads
// rewritten to moves from fresh registers (Section 6, Figure 12).
type Fragment struct {
	// Insts is the slice in original program order. Memory-read
	// operands have been replaced with fresh register operands.
	Insts []*Inst
	// Output is the register whose live-out value the fragment
	// computes, with its width.
	Output      Reg
	OutputWidth int
	// Inputs lists the registers whose initial values the fragment
	// reads: live-in registers first (in encoding order), then the
	// fresh registers introduced for memory reads (in order of
	// introduction).
	Inputs []Reg
	// FreshInputs is the number of trailing Inputs that replaced
	// memory reads.
	FreshInputs int
	// Source identifies the function and block the fragment came from.
	Source string
}

// String renders the fragment as an assembly listing.
func (fr *Fragment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s -> %%%s; inputs:", fr.Source, fr.Output.Name(fr.OutputWidth))
	for _, r := range fr.Inputs {
		fmt.Fprintf(&sb, " %%%s", r)
	}
	sb.WriteByte('\n')
	for _, in := range fr.Insts {
		sb.WriteString("\t" + in.String() + "\n")
	}
	return sb.String()
}

// NonTrivialCount returns the number of instructions that are not
// simple data movement (plain mov between registers or of an
// immediate). The pipeline keeps fragments with at least two
// non-trivial instructions.
func (fr *Fragment) NonTrivialCount() int {
	n := 0
	for _, in := range fr.Insts {
		if !isDataMovement(in) {
			n++
		}
	}
	return n
}

// isDataMovement reports whether the instruction is a plain move
// (mov family, not the extending movzx/movsx forms).
func isDataMovement(in *Inst) bool {
	return in.info().class == classMov
}

// Signature returns the fragment's instruction signature: the sequence
// of mnemonics with registers and arguments ignored, and simple
// data-movement instructions dropped (Section 6.1). Fragments with
// equal signatures are treated as variants of the same behavior when
// sampling the benchmark.
func (fr *Fragment) Signature() string {
	var parts []string
	for _, in := range fr.Insts {
		if isDataMovement(in) {
			continue
		}
		parts = append(parts, in.Mnemonic)
	}
	return strings.Join(parts, ";")
}

// SliceError explains why a slice could not be extracted.
type SliceError struct{ Reason string }

func (e *SliceError) Error() string { return "asm: " + e.Reason }

// SliceBlock computes the backward dataflow slice of block b (within
// function f, for diagnostics) for live-out register r. It returns an
// error when the slice would include an unsupported instruction or is
// otherwise unusable.
func SliceBlock(f *Func, b *Block, r Reg) (*Fragment, error) {
	needed := RegSet(0).Add(r)
	selected := make([]bool, len(b.Insts))
	outputWidth := 64
	widthSet := false

	for i := len(b.Insts) - 1; i >= 0; i-- {
		in := b.Insts[i]
		cls := in.info().class
		if cls == classJump || cls == classRet || cls == classNop || cls == classFlags {
			continue
		}
		if cls == classCall {
			// A call defines the caller-saved registers; if any needed
			// register is among them, the value comes from outside the
			// block's straight-line code and the slice is unusable.
			if needed&callerSaved != 0 {
				return nil, &SliceError{Reason: "needed value produced by a call"}
			}
			continue
		}
		if !in.Supported {
			// Unsupported instructions (vector ops, ...) are safe to
			// skip only if they cannot define a needed GPR. If the
			// destination operand is a GPR or unparsable, give up.
			if mightDefineGPR(in, needed) {
				return nil, &SliceError{Reason: "unsupported instruction may define needed register: " + in.String()}
			}
			continue
		}
		d := in.Def()
		if d == NoReg || !needed.Has(d) {
			continue
		}
		selected[i] = true
		// Determine whether the write kills the full register: 32-bit
		// and 64-bit destinations do (x86 zero-extends 32-bit writes);
		// 8/16-bit destinations merge, so the old value remains
		// needed.
		kills := true
		if _, dst := in.srcDst(); dst != nil && dst.Kind == OpReg && dst.Width < 32 {
			kills = false
		}
		if len(in.Operands) == 1 && in.Operands[0].Kind == OpReg && in.Operands[0].Width < 32 {
			kills = false
		}
		if kills {
			needed = needed.Remove(d)
		}
		value, _ := in.Uses()
		needed = needed.Union(value)
		// Record the output width from the defining instruction
		// closest to the block end (the first one seen walking
		// backward).
		if d == r && !widthSet {
			widthSet = true
			if _, dst := in.srcDst(); dst != nil && dst.Kind == OpReg {
				outputWidth = dst.Width
			}
		}
	}

	// Collect the slice in order and rewrite memory reads.
	used := needed // live-in registers the fragment reads
	var insts []*Inst
	for i, sel := range selected {
		if sel {
			insts = append(insts, b.Insts[i])
		}
	}
	if len(insts) == 0 {
		return nil, &SliceError{Reason: "empty slice"}
	}

	// Registers mentioned anywhere in the slice (so fresh registers do
	// not collide).
	mentioned := used
	for _, in := range insts {
		v, a := in.Uses()
		mentioned = mentioned.Union(v).Union(a)
		if d := in.Def(); d != NoReg {
			mentioned = mentioned.Add(d)
		}
	}

	frag := &Fragment{
		Output:      r,
		OutputWidth: outputWidth,
		Source:      fmt.Sprintf("%s/%s", f.Name, b.Label),
	}
	for _, reg := range used.Regs() {
		frag.Inputs = append(frag.Inputs, reg)
	}

	// Rewrite each memory read to a fresh, otherwise-unused register.
	fresh := func() (Reg, bool) {
		for reg := RAX; reg < NumRegs; reg++ {
			if reg == RSP || mentioned.Has(reg) {
				continue
			}
			mentioned = mentioned.Add(reg)
			return reg, true
		}
		return NoReg, false
	}
	for _, in := range insts {
		cp := &Inst{
			Mnemonic:  in.Mnemonic,
			Operands:  append([]Operand(nil), in.Operands...),
			Supported: true,
			Line:      in.Line,
		}
		if mi := cp.MemSrc(); mi >= 0 {
			reg, ok := fresh()
			if !ok {
				return nil, &SliceError{Reason: "no free register for memory-read replacement"}
			}
			w := 64
			if _, dst := cp.srcDst(); dst != nil && dst.Kind == OpReg {
				w = dst.Width
			}
			cp.Operands[mi] = Operand{Kind: OpReg, Reg: reg, Width: w}
			frag.Inputs = append(frag.Inputs, reg)
			frag.FreshInputs++
		}
		frag.Insts = append(frag.Insts, cp)
	}
	return frag, nil
}

// mightDefineGPR conservatively decides whether an unsupported
// instruction could write one of the needed general-purpose registers:
// true when its last operand is a needed GPR or when its operands
// could not be classified at all.
func mightDefineGPR(in *Inst, needed RegSet) bool {
	if len(in.Operands) == 0 {
		return true // unknown shape; be conservative
	}
	last := in.Operands[len(in.Operands)-1]
	switch last.Kind {
	case OpReg:
		return last.Reg < NumRegs && needed.Has(last.Reg)
	case OpMem:
		return false // memory destination cannot define a register
	case OpImm:
		return true // malformed; be conservative
	}
	return true
}

// Fragments extracts every candidate fragment of the function: for
// each basic block and each live-out register defined in the block, a
// backward slice with at least minNonTrivial non-trivial instructions.
// Slices that fail to extract are skipped, mirroring the paper's lossy
// scraping process.
func Fragments(f *Func, minNonTrivial int) []*Fragment {
	var out []*Fragment
	for _, b := range f.Blocks {
		var defs RegSet
		for _, in := range b.Insts {
			d, _ := instDefUse(in)
			defs = defs.Union(d)
		}
		for _, r := range b.LiveOut.Regs() {
			if !defs.Has(r) {
				continue // live-through value, nothing to synthesize
			}
			frag, err := SliceBlock(f, b, r)
			if err != nil {
				continue
			}
			if frag.NonTrivialCount() < minNonTrivial {
				continue
			}
			out = append(out, frag)
		}
	}
	return out
}
