package asm

import (
	"fmt"
	"strings"
)

// Block is a basic block: a maximal straight-line instruction sequence
// with a single entry and exits only at the end.
type Block struct {
	// Label is the block's leading label, if any.
	Label string
	Insts []*Inst
	// Succs indexes the block's successors within the function.
	Succs []int
	// LiveOut is the set of registers live at the block's end, filled
	// in by Func.ComputeLiveness.
	LiveOut RegSet
}

// Func is one function: a named sequence of basic blocks forming a
// control-flow graph.
type Func struct {
	Name   string
	Blocks []*Block
}

// callerSaved is the x86-64 SysV caller-saved register set, treated as
// defined (clobbered) by calls.
var callerSaved = RegSet(0).
	Add(RAX).Add(RCX).Add(RDX).Add(RSI).Add(RDI).
	Add(R8).Add(R9).Add(R10).Add(R11)

// argRegs is the SysV integer argument register set, treated as used
// by calls.
var argRegs = RegSet(0).
	Add(RDI).Add(RSI).Add(RDX).Add(RCX).Add(R8).Add(R9)

// returnRegs is the set live at function exit (the integer return
// register).
var returnRegs = RegSet(0).Add(RAX)

// ParseText parses an assembly listing into functions. Conventions
// follow GNU as output: lines may carry comments introduced by '#';
// directives (leading '.') are ignored; labels ending in ':' introduce
// functions (global labels) or blocks (.L-prefixed local labels).
func ParseText(src string) ([]*Func, error) {
	var funcs []*Func
	var cur *Func
	var curBlock *Block

	flushBlock := func() {
		if cur != nil && curBlock != nil && (len(curBlock.Insts) > 0 || curBlock.Label != "") {
			cur.Blocks = append(cur.Blocks, curBlock)
		}
		curBlock = nil
	}
	ensure := func(label string) {
		if cur == nil {
			cur = &Func{Name: fmt.Sprintf("anon%d", len(funcs))}
		}
		if curBlock == nil {
			curBlock = &Block{Label: label}
		}
	}

	for lineno, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if strings.HasPrefix(label, ".") {
				// Local label: starts a new block in the current
				// function.
				flushBlock()
				ensure(label)
			} else {
				// Global label: starts a new function.
				flushBlock()
				if cur != nil {
					funcs = append(funcs, cur)
				}
				cur = &Func{Name: label}
				curBlock = &Block{}
			}
			continue
		}
		if strings.HasPrefix(line, ".") {
			continue // directive
		}
		in, err := ParseInst(line, lineno+1)
		if err != nil {
			return nil, err
		}
		ensure("")
		curBlock.Insts = append(curBlock.Insts, in)
		if in.IsControl() && in.info().class != classCall {
			flushBlock()
		}
	}
	flushBlock()
	if cur != nil {
		funcs = append(funcs, cur)
	}
	for _, f := range funcs {
		f.buildCFG()
		f.ComputeLiveness()
	}
	return funcs, nil
}

// buildCFG links blocks by label targets and fallthrough.
func (f *Func) buildCFG() {
	byLabel := map[string]int{}
	for i, b := range f.Blocks {
		if b.Label != "" {
			byLabel[b.Label] = i
		}
	}
	for i, b := range f.Blocks {
		b.Succs = b.Succs[:0]
		var last *Inst
		if len(b.Insts) > 0 {
			last = b.Insts[len(b.Insts)-1]
		}
		if last != nil && last.info().class == classJump {
			if t, ok := byLabel[last.Target]; ok {
				b.Succs = append(b.Succs, t)
			}
		}
		if (last == nil || !last.IsUnconditionalTransfer()) && i+1 < len(f.Blocks) {
			b.Succs = append(b.Succs, i+1)
		}
	}
}

// instDefUse returns the def set and use set of one instruction for
// liveness purposes (address registers count as uses; calls clobber
// the caller-saved set and read the argument registers; unsupported
// instructions conservatively neither define nor use GPRs — fragments
// touching them are rejected by the slicer anyway).
func instDefUse(in *Inst) (def, use RegSet) {
	switch in.info().class {
	case classCall:
		return callerSaved, argRegs
	case classRet:
		return 0, returnRegs
	case classJump, classNop, classUnknown:
		return 0, 0
	}
	if !in.Supported {
		return 0, 0
	}
	value, addr := in.Uses()
	if d := in.Def(); d != NoReg {
		def = def.Add(d)
	}
	return def, value.Union(addr)
}

// ComputeLiveness runs the standard backward dataflow fixpoint over
// the function's CFG and fills each block's LiveOut. Exit blocks (and
// blocks with no known successors) are seeded with the ABI return
// register.
func (f *Func) ComputeLiveness() {
	n := len(f.Blocks)
	use := make([]RegSet, n) // upward-exposed uses
	def := make([]RegSet, n) // defined before any use
	liveIn := make([]RegSet, n)
	liveOut := make([]RegSet, n)

	for i, b := range f.Blocks {
		var bUse, bDef RegSet
		for _, in := range b.Insts {
			d, u := instDefUse(in)
			bUse = bUse.Union(u &^ bDef)
			bDef = bDef.Union(d)
		}
		use[i], def[i] = bUse, bDef
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			var out RegSet
			if len(b.Succs) == 0 {
				out = returnRegs
			}
			for _, s := range b.Succs {
				out = out.Union(liveIn[s])
			}
			in := use[i].Union(out &^ def[i])
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}
	for i, b := range f.Blocks {
		b.LiveOut = liveOut[i]
	}
}
