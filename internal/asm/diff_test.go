package asm

import (
	"testing"
	"testing/quick"

	"stochsyn/internal/prog"
)

// Differential tests: the assembly evaluator (alu2 and friends) and
// the dataflow evaluator (prog.EvalOp) implement the same operations
// independently; on shared semantics they must agree bit for bit.

func TestDiffALU64(t *testing.T) {
	pairs := []struct {
		mnem string
		op   prog.Op
	}{
		{"add", prog.OpAdd},
		{"sub", prog.OpSub},
		{"imul", prog.OpMul},
		{"and", prog.OpAnd},
		{"or", prog.OpOr},
		{"xor", prog.OpXor},
		{"shl", prog.OpShl},
		{"shr", prog.OpShr},
		{"sar", prog.OpSar},
		{"rol", prog.OpRol},
		{"ror", prog.OpRor},
	}
	for _, pair := range pairs {
		pair := pair
		f := func(a, b uint64) bool {
			got, err := alu2(pair.mnem, 64, a, b)
			if err != nil {
				return false
			}
			return got == prog.EvalOp(pair.op, a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s vs %s: %v", pair.mnem, pair.op, err)
		}
	}
}

func TestDiffALU32(t *testing.T) {
	pairs := []struct {
		mnem string
		op   prog.Op
	}{
		{"add", prog.OpAdd32},
		{"sub", prog.OpSub32},
		{"imul", prog.OpMul32},
		{"and", prog.OpAnd32},
		{"or", prog.OpOr32},
		{"xor", prog.OpXor32},
		{"shl", prog.OpShl32},
		{"shr", prog.OpShr32},
		{"sar", prog.OpSar32},
	}
	for _, pair := range pairs {
		pair := pair
		f := func(a, b uint64) bool {
			// The asm evaluator reads 32-bit operands already
			// truncated (RegFile.Get); the prog opcode truncates
			// internally. Feed the asm side pre-truncated values.
			got, err := alu2(pair.mnem, 32, uint64(uint32(a)), uint64(uint32(b)))
			if err != nil {
				return false
			}
			return uint64(uint32(got)) == prog.EvalOp(pair.op, a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s vs %s: %v", pair.mnem, pair.op, err)
		}
	}
}

func TestDiffExtensions(t *testing.T) {
	pairs := []struct {
		mnem string
		op   prog.Op
	}{
		{"movzbq", prog.OpZext8},
		{"movzwq", prog.OpZext16},
		{"movsbq", prog.OpSext8},
		{"movswq", prog.OpSext16},
		{"movslq", prog.OpSext32},
	}
	for _, pair := range pairs {
		pair := pair
		f := func(a uint64) bool {
			return extend(pair.mnem, a) == prog.EvalOp(pair.op, a, 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s vs %s: %v", pair.mnem, pair.op, err)
		}
	}
}

func TestDiffEndToEnd(t *testing.T) {
	// A whole-fragment differential: execute an instruction sequence
	// with the asm evaluator and the equivalent hand-written dataflow
	// expression with the prog evaluator.
	src := `
f:
	movq %rdi, %rax
	addq %rsi, %rax
	shlq $3, %rax
	xorq %rdi, %rax
	notq %rax
	ret
`
	funcs, err := ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := SliceBlock(funcs[0], funcs[0].Blocks[0], RAX)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs in encoding order: rsi, rdi -> expression arguments.
	ref := prog.MustParse("notq(xorq(shlq(addq(y, x), 3), y))", 2)
	if frag.Inputs[0] != RSI || frag.Inputs[1] != RDI {
		t.Fatalf("unexpected input order %v", frag.Inputs)
	}
	f := func(rsi, rdi uint64) bool {
		got, err := frag.Execute([]uint64{rsi, rdi})
		if err != nil {
			return false
		}
		return got == ref.Output([]uint64{rsi, rdi})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
