package search

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/mutate"
	"stochsyn/internal/obs"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// TestObsBitIdentical is the core instrumentation invariant: attaching
// observability hooks must not perturb the random walk. Two runs with
// the same seed — one bare, one fully instrumented with a registry and
// tracer — must visit the same programs and finish at the same
// iteration.
func TestObsBitIdentical(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	base := Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 7}

	bare := New(suite, base)
	usedBare, doneBare := bare.Step(500_000)

	o := obs.New()
	inst := base
	inst.Obs = NewObsHooks(o.Reg, o.Tracer)
	run := New(suite, inst)
	used, done := run.Step(500_000)

	if used != usedBare || done != doneBare {
		t.Fatalf("instrumented run diverged: used=%d done=%v, bare used=%d done=%v",
			used, done, usedBare, doneBare)
	}
	if run.Cost() != bare.Cost() {
		t.Fatalf("cost diverged: %g vs %g", run.Cost(), bare.Cost())
	}
	if got, want := run.Program().String(), bare.Program().String(); got != want {
		t.Fatalf("program diverged:\n%s\nvs\n%s", got, want)
	}
	if run.MoveStats() != bare.MoveStats() {
		t.Fatalf("move stats diverged: %+v vs %+v", run.MoveStats(), bare.MoveStats())
	}

	// Streamed variant: tracer attached (cost sampling on) plus a live
	// SSE-style subscriber draining the event feed. Still bit-identical
	// — the push side never touches the random stream.
	so := obs.New()
	sub := so.Tracer.Subscribe(64)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range sub.Events() {
		}
	}()
	str := base
	str.Obs = NewObsHooks(so.Reg, so.Tracer)
	streamed := New(suite, str)
	usedStr, doneStr := streamed.Step(500_000)
	so.Tracer.Unsubscribe(sub)
	<-drained
	if usedStr != usedBare || doneStr != doneBare {
		t.Fatalf("streamed run diverged: used=%d done=%v, bare used=%d done=%v",
			usedStr, doneStr, usedBare, doneBare)
	}
	if streamed.Cost() != bare.Cost() || streamed.Program().String() != bare.Program().String() {
		t.Fatalf("streamed trajectory diverged: cost %g vs %g", streamed.Cost(), bare.Cost())
	}
	if streamed.MoveStats() != bare.MoveStats() {
		t.Fatalf("streamed move stats diverged")
	}
	// The sampled trajectory carries the monotone best-so-far envelope.
	prevBest := math.Inf(1)
	samples := 0
	for _, ev := range so.Tracer.Events() {
		if ev.Name != "search_cost" {
			continue
		}
		samples++
		best, ok := ev.Attrs["best"].(float64)
		if !ok {
			t.Fatalf("search_cost missing best attr: %+v", ev.Attrs)
		}
		if best > prevBest {
			t.Fatalf("best-so-far went up: %g then %g", prevBest, best)
		}
		if c := ev.Attrs["cost"].(float64); best > c {
			t.Fatalf("best %g above sampled cost %g", best, c)
		}
		prevBest = best
	}
	if samples == 0 {
		t.Fatal("no search_cost samples streamed")
	}

	// The registry saw the run: iteration counter matches exactly
	// (publish runs at every Step boundary).
	if got := o.Reg.Counter("stochsyn_search_iterations_total").Value(); int64(got) != used {
		t.Errorf("iterations counter = %g, want %d", got, used)
	}
	stats := run.MoveStats()
	for m := 0; m < mutate.NumMoves; m++ {
		name := mutate.Move(m).String()
		if got := o.Reg.Counter("stochsyn_moves_proposed_total", "move", name).Value(); int64(got) != stats.Proposed[m] {
			t.Errorf("proposed{%s} = %g, want %d", name, got, stats.Proposed[m])
		}
		if got := o.Reg.Counter("stochsyn_moves_accepted_total", "move", name).Value(); int64(got) != stats.Accepted[m] {
			t.Errorf("accepted{%s} = %g, want %d", name, got, stats.Accepted[m])
		}
	}
	if done {
		if got := o.Reg.Gauge("stochsyn_search_best_cost").Value(); got != 0 {
			t.Errorf("best cost gauge = %g, want 0 after solve", got)
		}
		// The solve emitted a trace event.
		found := false
		for _, ev := range o.Tracer.Events() {
			if ev.Name == "search_solved" {
				found = true
			}
		}
		if !found {
			t.Error("no search_solved event in the trace ring")
		}
	}
}

// TestSnapshotRaceFree drives a run from one goroutine while others
// hammer the exported snapshot accessors. Under -race this verifies
// the bugfix for the previously unsynchronized Iterations/MoveStats
// reads from concurrent tree-executor observers.
func TestSnapshotRaceFree(t *testing.T) {
	suite := suiteFor(t, "mulq(mulq(x, x), addq(x, y))", 2, 50)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 9})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastIters int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := r.Iterations()
				if it < lastIters {
					t.Errorf("Iterations went backwards: %d then %d", lastIters, it)
					return
				}
				lastIters = it
				s := r.MoveStats()
				// The snapshot is published atomically as one struct,
				// so cross-field invariants must hold for observers.
				if s.TotalAccepted() > s.TotalProposed() {
					t.Errorf("snapshot inconsistent: accepted %d > proposed %d",
						s.TotalAccepted(), s.TotalProposed())
					return
				}
				runtime.Gosched()
			}
		}()
	}
	var total int64
	for i := 0; i < 12; i++ {
		used, done := r.Step(CancelCheckEvery * 2)
		total += used
		if done {
			break
		}
	}
	close(stop)
	wg.Wait()
	if got := r.Iterations(); got != total {
		t.Fatalf("Iterations = %d after Steps totaling %d", got, total)
	}
}

// BenchmarkSearchLoop measures the hot loop with and without
// observability attached; the instrumented variant must stay within
// the ~2% overhead budget (ISSUE: flushes are amortized over
// CancelCheckEvery-iteration batches).
//
//	go test ./internal/search/ -bench SearchLoop -benchtime 2s
func BenchmarkSearchLoop(b *testing.B) {
	ref := prog.MustParse("mulq(mulq(x, x), addq(x, y))", 2)
	rng := rand.New(rand.NewPCG(100, 200))
	suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
		2, 50, rng)
	run := func(b *testing.B, o *obs.Obs, stream, interp bool) {
		opts := Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 1, InterpEval: interp}
		switch {
		case stream:
			// The full push path: tracer with cost sampling on and a
			// live subscriber draining the feed, like an attached SSE
			// client (see obs.ServeEventStream).
			opts.Obs = NewObsHooks(o.Reg, o.Tracer)
			sub := o.Tracer.Subscribe(obs.DefaultSubscriberBuf)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range sub.Events() {
				}
			}()
			defer func() {
				o.Tracer.Unsubscribe(sub)
				<-done
			}()
		case o != nil:
			opts.Obs = NewObsHooks(o.Reg, nil) // metrics only: the server path
		}
		r := New(suite, opts)
		b.ResetTimer()
		var left = int64(b.N)
		for left > 0 {
			used, done := r.Step(left)
			left -= used
			if done {
				// Hard problem; a solve is effectively unreachable, but
				// restart deterministically if it ever happens.
				r = New(suite, opts)
			}
		}
		b.StopTimer()
	}
	// baseline runs the default compiled plan engine; interp runs the
	// interpreted incremental engine on the identical trajectory — their
	// ratio is the plan layer's speedup (the acceptance bar is >= 1.5x).
	b.Run("baseline", func(b *testing.B) { run(b, nil, false, false) })
	b.Run("interp", func(b *testing.B) { run(b, nil, false, true) })
	b.Run("instrumented", func(b *testing.B) { run(b, obs.New(), false, false) })
	b.Run("streamed", func(b *testing.B) { run(b, obs.New(), true, false) })
}
