package search

import (
	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
)

// This file holds the optimization-mode pieces of the search: in
// superoptimization, once a correct program is known (from scraping or
// a synthesis phase), the search continues with a size term added to
// the cost so it drifts toward smaller correct programs — the
// application STOKE popularized and the motivation for the paper's
// superoptimization benchmark. Optimization mode never "finishes";
// callers run it for a budget and take the best correct program seen.

// Best returns the smallest zero-correctness-cost program observed so
// far in MinimizeSize mode (nil if none, or if the mode is off).
func (r *Run) Best() *prog.Program { return r.best }

// noteBest records a correct program if it improves on the best size.
func (r *Run) noteBest(p *prog.Program) {
	if r.best == nil || p.BodyLen() < r.best.BodyLen() {
		r.best = p.Clone()
	}
}

// effective returns the optimization-mode cost of a program with
// correctness cost c: c plus the weighted body size.
func (r *Run) effective(c float64, p *prog.Program) float64 {
	return c + r.sizeWeight*float64(p.BodyLen())
}

// Stats counts proposals per move type over a run's lifetime:
// Proposed counts every draw, Accepted the proposals that passed the
// acceptance rule. Proposed minus Accepted includes both rejected and
// invalid proposals.
//
// Evaluated counts valid proposals that reached the concrete cost
// evaluator; without pruning it equals the valid-proposal count, with
// Options.Prune it is smaller by exactly PruneRejected. PruneChecked
// and PruneRejected count abstract-interpretation prune probes and
// the proposals they proved hopeless; PruneUnsound counts pruned
// proposals the concrete evaluator nevertheless found to solve the
// suite (Options.PruneVerify) — always zero unless the abstract
// domains are unsound.
type Stats struct {
	Proposed [mutate.NumMoves]int64
	Accepted [mutate.NumMoves]int64

	Evaluated     int64
	PruneChecked  int64
	PruneRejected int64
	PruneUnsound  int64
}

// TotalProposed sums proposals across move types.
func (s *Stats) TotalProposed() int64 {
	var t int64
	for _, n := range s.Proposed {
		t += n
	}
	return t
}

// TotalAccepted sums acceptances across move types.
func (s *Stats) TotalAccepted() int64 {
	var t int64
	for _, n := range s.Accepted {
		t += n
	}
	return t
}

// AcceptanceRate returns accepted/proposed (0 when nothing proposed).
func (s *Stats) AcceptanceRate() float64 {
	p := s.TotalProposed()
	if p == 0 {
		return 0
	}
	return float64(s.TotalAccepted()) / float64(p)
}

// MoveStats returns the run's per-move proposal statistics. Like
// Iterations, it reads the published snapshot, so it is safe to call
// from observer goroutines while the owner steps the run: values are
// exact at Step boundaries and lag by at most CancelCheckEvery
// iterations mid-Step.
func (r *Run) MoveStats() Stats {
	if s := r.pub.Load(); s != nil {
		return s.stats
	}
	return Stats{}
}
