package search

import (
	"encoding/json"
	"fmt"
	"io"

	"stochsyn/internal/prog"
)

// Checkpointing: a Run can be serialized mid-search and resumed later
// (or on another machine) with bit-identical behavior, because the
// search state is exactly the current program, the iteration counter,
// and the random stream position. Strategy-level state (the adaptive
// tree) is not captured; checkpoints suspend individual searches,
// which covers the common long-running naive/optimization workflows.

// checkpointJSON is the serialized search state. Programs use the
// exact JSON graph encoding (node order included) so the resumed
// random walk is bit-identical to an uninterrupted one.
type checkpointJSON struct {
	Version    int           `json:"version"`
	Program    *prog.Program `json:"program"`
	Cost       float64       `json:"cost"`
	Iterations int64         `json:"iterations"`
	Done       bool          `json:"done"`
	Solution   *prog.Program `json:"solution,omitempty"`
	Best       *prog.Program `json:"best,omitempty"`
	RNG        []byte        `json:"rng"`
}

const checkpointVersion = 1

// Checkpoint writes the run's resumable state. The caller is
// responsible for re-supplying the same suite and options on restore
// (they are part of the problem definition, not the search state).
func (r *Run) Checkpoint(w io.Writer) error {
	state, err := r.rngSrc.MarshalBinary()
	if err != nil {
		return fmt.Errorf("search: marshal rng: %w", err)
	}
	cj := checkpointJSON{
		Version:    checkpointVersion,
		Program:    r.cur,
		Cost:       r.cost,
		Iterations: r.iters,
		Done:       r.done,
		Solution:   r.sol,
		Best:       r.best,
		RNG:        state,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cj)
}

// Restore loads a checkpoint into the run, which must have been
// created with the same suite and options as the checkpointed one.
// After Restore, Step continues the search exactly where Checkpoint
// left it.
func (r *Run) Restore(rd io.Reader) error {
	var cj checkpointJSON
	if err := json.NewDecoder(rd).Decode(&cj); err != nil {
		return fmt.Errorf("search: decode checkpoint: %w", err)
	}
	if cj.Version != checkpointVersion {
		return fmt.Errorf("search: checkpoint version %d, want %d", cj.Version, checkpointVersion)
	}
	if cj.Program == nil {
		return fmt.Errorf("search: checkpoint missing program")
	}
	if cj.Program.NumInputs != r.suite.NumInputs {
		return fmt.Errorf("search: checkpoint has %d inputs, suite has %d",
			cj.Program.NumInputs, r.suite.NumInputs)
	}
	if err := r.rngSrc.UnmarshalBinary(cj.RNG); err != nil {
		return fmt.Errorf("search: restore rng: %w", err)
	}
	r.cur = cj.Program
	r.scratch = cj.Program.Clone()
	if r.eng != nil {
		// The engine's committed columns must describe the restored
		// program; a full recompute rebinds them (and the mutator's
		// probe source follows the engine automatically).
		r.eng.Reset(r.cur)
	}
	r.cost = cj.Cost
	r.iters = cj.Iterations
	r.done = cj.Done
	r.sol = cj.Solution
	r.best = cj.Best
	r.trace = nil
	r.gap = 1
	r.publish() // refresh the race-free snapshot after the state swap
	return nil
}
