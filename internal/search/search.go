// Package search implements the stochastic synthesis main loop of
// Figure 3 of the paper: a Metropolis-style search over dataflow
// programs that proposes a random change each iteration and accepts it
// when c' <= c - beta*ln(random(0,1)).
//
// The package also defines the Search interface, the minimal view of a
// step-bounded randomized search that the restart strategies in
// package restart schedule. Both real synthesis runs (Run) and the
// model Markov chains of Section 5.2.1 implement it, so strategy code
// is shared between the evaluation and the analytical experiments.
package search

import (
	"context"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"stochsyn/internal/cost"
	"stochsyn/internal/eqsat"
	"stochsyn/internal/mutate"
	"stochsyn/internal/obs"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
	"stochsyn/internal/prog/plan"
	"stochsyn/internal/testcase"
)

// engine is the incremental evaluation engine the search loop drives:
// committed value columns kept exact for the current program, a
// journaled proposal path (Begin / EvalRange / Commit / Abort), and a
// full rebind for restarts and checkpoint restores (Reset). Two
// implementations exist — the compiled plan engine (plan.State, the
// default) and the interpreted engine (prog.EvalState,
// Options.InterpEval) — and the loop treats them identically: both
// produce bit-identical columns, which FuzzIncrementalEval pins. The
// method set is a superset of cost.Source and mutate.Eval, so an
// engine value flows to those layers directly.
type engine interface {
	Reset(p *prog.Program)
	Begin(j *prog.Journal)
	EvalRange(c0, c1 int) []uint64
	Commit()
	Abort()
	RootColumn() []uint64
	CaseValues(c int, dst []uint64)
	Program() *prog.Program
	Suite() *testcase.Suite
	Stats() prog.EvalStats
}

var (
	_ engine = (*prog.EvalState)(nil)
	_ engine = (*plan.State)(nil)
)

// Search is one restartable randomized search. Restart strategies
// treat searches as step-bounded processes that expose their current
// cost; the cost is the only non-black-box information the adaptive
// algorithm uses.
//
// Concurrency contract: a Search is single-threaded state — it must
// not be stepped from two goroutines at once, and Cost must only be
// read with a happens-before edge after the last Step. Distinct
// searches, however, must be independently steppable from different
// goroutines; the concurrent executors in package restart rely on
// this. Implementations must also make Step consume its entire
// budget unless the search finishes (both Run here and markov.Walk
// do), which the tree executor's budget arithmetic depends on — with
// one sanctioned exception: a search created with a cancellable
// Options.Ctx may return early from Step, unfinished and with budget
// left, once that context is cancelled. The restart strategies treat
// an early return under a cancelled context as "the run was
// cancelled", never as ordinary completion.
type Search interface {
	// Step runs at most budget iterations, returning the number
	// actually consumed and whether the search has finished. Once
	// finished, further Step calls consume nothing.
	Step(budget int64) (used int64, done bool)
	// Cost returns the current cost; zero means finished.
	Cost() float64
}

// Factory creates independent searches. Each restart draws a fresh
// search; id is a distinct per-search value the factory should fold
// into its random seed. For a given id the returned search must be
// deterministic — strategy schedules and the parallel executors'
// bit-identical replay both hinge on that. The searches it returns
// must not share mutable state with one another (read-only data such
// as the test suite or an OpSet may be shared).
type Factory func(id uint64) Search

// CancelCheckEvery is the iteration interval at which Run.Step polls
// its context for cancellation. At the search loop's typical
// throughput (hundreds of thousands of iterations per second per
// core) this bounds the cancellation latency of an in-flight Step to
// a few tens of milliseconds while keeping the poll cost invisible.
const CancelCheckEvery = 8192

// Options configures a synthesis run.
type Options struct {
	// Set is the instruction dialect; defaults to prog.FullSet.
	Set *prog.OpSet
	// Cost selects the cost function (default Hamming).
	Cost cost.Kind
	// Beta is the user-facing acceptance temperature, expressed
	// relative to a 100-test-case problem; it is normalized to the
	// suite's test count per Section 3.2. Zero means greedy
	// (only cost-preserving or -decreasing moves are accepted).
	Beta float64
	// Redundancy enables the canonicalizing redundancy move of
	// Section 4 (used with the model dialect).
	Redundancy bool
	// Seed seeds the search's private random stream.
	Seed uint64
	// Ctx, when non-nil, allows cancelling a run mid-Step: the inner
	// loop polls the context every CancelCheckEvery iterations and
	// returns early (unfinished, with budget left) once it is
	// cancelled. Polling never touches the random stream, so a run
	// driven under a context that never expires is bit-identical to
	// one with a nil Ctx.
	Ctx context.Context
	// TraceCosts, when true, records a thinned (iteration, cost)
	// trace of accepted-cost changes for plateau analysis.
	TraceCosts bool
	// StateHook, when non-nil, is invoked with the current program
	// after every iteration. It is used by the Markov-chain analysis;
	// it slows the loop considerably.
	StateHook func(p *prog.Program)
	// Init, when non-nil, is the initial program instead of the
	// constant zero. The benchmark pipeline's prefix-synthesizability
	// filter uses this to start from the previous prefix's solution.
	Init *prog.Program
	// MinimizeSize enables superoptimization mode: the acceptance cost
	// becomes correctness + SizeWeight*size, the search never
	// finishes, and Best tracks the smallest correct program seen.
	// Usually combined with Init set to a known-correct program.
	MinimizeSize bool
	// SizeWeight is the per-node cost in MinimizeSize mode
	// (default 1, in the cost function's units).
	SizeWeight float64
	// MoveWeights optionally skews move-type selection (nil = the
	// paper's uniform choice). Keys are mutate.Move values; moves with
	// missing or non-positive weight are never proposed.
	MoveWeights map[mutate.Move]float64
	// LegacyEval disables the incremental evaluation engine and runs
	// the original copy-based proposal path (scratch copy + full
	// re-evaluation per proposal). The two paths are bit-identical by
	// construction — same RNG draw sequence, same case-order float
	// summation, same accept/reject decisions — which the differential
	// fuzz test (FuzzIncrementalEval) checks continuously. This is a
	// debugging and verification knob, not a performance option.
	LegacyEval bool
	// InterpEval selects the interpreted incremental engine
	// (prog.EvalState) instead of the default compiled plan engine
	// (plan.State). Like LegacyEval it is a reference arm: the two
	// engines produce bit-identical trajectories (the three-way
	// differential fuzz pins legacy, interpreted, and plan against each
	// other), so this is a verification and benchmarking knob, not a
	// performance option. Ignored when LegacyEval is set.
	InterpEval bool
	// EqSat, when non-nil, is a shared rewrite-equivalence memo: a
	// sampled fraction of cost-neutral accepted proposals is hashed by
	// e-class (eqsat.EClassHash) and rejected when the walk has already
	// visited a rewrite-equivalent program at the same or lower cost,
	// pushing plateau wandering toward genuinely new states. The memo
	// never touches the run's random stream, so a nil EqSat run is
	// bit-identical to the pre-knob search (the oracle tables pin
	// this). Deliberately a trajectory-changing knob when set.
	EqSat *eqsat.Dedup
	// Prune enables abstract-interpretation proposal pruning: before a
	// proposal is evaluated, a forward known-bits + interval pass under
	// the suite's per-input facts computes the abstract root value, and
	// proposals whose abstract output provably cannot equal some target
	// output are rejected without touching the concrete evaluator. The
	// pruner runs strictly after the acceptance threshold is drawn and
	// never draws from the random stream itself, so the RNG sequence is
	// identical with the knob on or off and a Prune=false run is
	// bit-identical to the pre-knob search (the oracle tables pin
	// this). Like EqSat, Prune deliberately changes the trajectory when
	// set: pruned proposals never enter the chain.
	Prune bool
	// PruneVerify additionally re-runs every pruned proposal through
	// the concrete evaluator and counts any that actually solve the
	// suite (Stats.PruneUnsound) — an unsoundness canary for bench -exp
	// prune. Expensive; only meaningful with Prune set.
	PruneVerify bool
	// Obs, when non-nil, attaches observability hooks to the run:
	// iteration and per-move counters, cost gauges, plateau
	// detection, and sampled cost-trajectory trace events. Updates
	// are accumulated privately and flushed every CancelCheckEvery
	// iterations and at every Step boundary, so instrumentation never
	// touches the random stream (results stay bit-identical) and
	// costs well under the ~2% overhead budget (see BenchmarkSearchLoop).
	Obs *obs.SearchHooks
}

// TracePoint is one entry of a cost trace.
type TracePoint struct {
	Iteration int64
	Cost      float64
}

// Run is a synthesis search over one test suite; it implements Search.
//
// A Run owns all of its mutable state (RNG, mutator, programs,
// scratch buffers) and holds only read-only references to shared data
// (the suite and the dialect's OpSet, both immutable during a
// search), so distinct Runs over the same suite can be stepped
// concurrently from different goroutines. A single Run is not safe
// for concurrent use.
type Run struct {
	suite  *testcase.Suite
	opts   Options
	ctx    context.Context // nil when the run is not cancellable
	kind   cost.Kind
	beta   float64 // normalized
	rng    *rand.Rand
	rngSrc *rand.PCG
	mut    *mutate.Mutator

	dedup  *eqsat.Dedup   // nil unless Options.EqSat
	pruner *absint.Pruner // nil unless Options.Prune

	cur     *prog.Program
	scratch *prog.Program // legacy path only: the proposal copy
	cost    float64       // correctness cost, plus the size term in MinimizeSize mode
	iters   int64
	done    bool
	sol     *prog.Program

	// eng is the incremental evaluation engine — the compiled plan
	// engine by default, the interpreted one under Options.InterpEval,
	// nil under Options.LegacyEval; jr is the per-iteration edit
	// journal it consumes, reused across iterations. planEng is eng's
	// concrete type when the plan engine is active (nil otherwise),
	// resolved once so the hot loop takes cost.Kind.OfPlan — the fused
	// tape-execution cost path — without a per-iteration assertion.
	eng     engine
	planEng *plan.State
	jr      prog.Journal

	minimize   bool
	sizeWeight float64
	best       *prog.Program

	stats Stats

	// Observability state. pub is the race-free snapshot path: the
	// loop's private counters are copied into a fresh immutable
	// snapshot at every flush point, so concurrent observers
	// (tree-executor monitors, the server's samplers) read values
	// that are mutually consistent (a single pointer load), exact at
	// Step boundaries, and lagging by at most CancelCheckEvery
	// iterations mid-Step.
	pub      atomic.Pointer[snapshot]
	obsHooks *obs.SearchHooks
	obsIters int64 // counters already flushed to the registry
	obsStats Stats
	obsEval  prog.EvalStats // engine work counters already flushed
	obsPlan  plan.Stats     // plan compiler counters already flushed
	obsBest  float64        // best sampled cost so far (NaN until the first flush)
	plateau  obs.PlateauDetector

	vals  [prog.MaxNodes]uint64
	trace []TracePoint
	gap   int64 // minimum iteration gap between trace points
}

var _ Search = (*Run)(nil)

// New creates a synthesis run for the suite. The suite must be valid
// (see testcase.Suite.Validate); New panics otherwise since this
// indicates a programming error in the caller.
func New(suite *testcase.Suite, opts Options) *Run {
	if err := suite.Validate(); err != nil {
		panic(err)
	}
	if opts.Set == nil {
		opts.Set = prog.FullSet
	}
	src := rand.NewPCG(opts.Seed, 0x5f3759df)
	r := &Run{
		suite:  suite,
		opts:   opts,
		ctx:    opts.Ctx,
		kind:   opts.Cost,
		beta:   cost.NormalizeBeta(opts.Beta, suite.Len()),
		rng:    rand.New(src),
		rngSrc: src,
		mut:    mutate.New(opts.Set, suite, opts.Redundancy),
		dedup:  opts.EqSat,
		gap:    1,
	}
	if opts.Prune {
		r.pruner = absint.NewPruner(suite)
	}
	r.obsHooks = opts.Obs
	r.obsIters = -1 // force the first publish even at iteration 0
	r.obsBest = math.NaN()
	if h := opts.Obs; h != nil {
		r.plateau.Window = h.PlateauWindow
	}
	if opts.MoveWeights != nil {
		r.mut.SetWeights(opts.MoveWeights)
	}
	if opts.Init != nil {
		r.cur = opts.Init.Clone()
	} else {
		r.cur = prog.NewZero(suite.NumInputs)
	}
	r.scratch = r.cur.Clone()
	r.minimize = opts.MinimizeSize
	r.sizeWeight = opts.SizeWeight
	if r.minimize && r.sizeWeight <= 0 {
		r.sizeWeight = 1
	}
	var c float64
	if opts.LegacyEval {
		c = r.kind.Of(r.cur, r.suite, r.vals[:])
	} else {
		// The engine's committed columns are kept exact for r.cur for
		// the whole run; the initial cost is the root column summed in
		// case order, bit-equal to Of.
		if opts.InterpEval {
			r.eng = prog.NewEvalState(suite)
		} else {
			r.planEng = plan.New(suite)
			r.eng = r.planEng
		}
		r.eng.Reset(r.cur)
		r.mut.BindEval(r.eng)
		c = r.kind.OfColumn(r.eng.RootColumn(), suite)
	}
	if r.minimize {
		if c == 0 {
			r.noteBest(r.cur)
		}
		r.cost = r.effective(c, r.cur)
		r.recordTrace()
		r.publish()
		return r
	}
	r.cost = c
	r.recordTrace()
	if r.cost == 0 {
		r.finish()
	}
	r.publish()
	return r
}

// Step implements Search. Each loop iteration counts against the
// budget whether or not the proposed change was valid, matching the
// iteration counter in Figure 3.
//
// When the run was created with a cancellable Options.Ctx, Step polls
// it every CancelCheckEvery iterations (at fixed global iteration
// numbers, so chunked and monolithic stepping observe the same poll
// points) and returns early — unfinished, reporting only the
// iterations actually executed — once the context is cancelled.
func (r *Run) Step(budget int64) (int64, bool) {
	if r.done || budget <= 0 {
		return 0, r.done
	}
	if r.ctx != nil && r.ctx.Err() != nil {
		return 0, false
	}
	// Publish at every Step boundary so external readers
	// (Iterations, MoveStats, the metrics registry) are exact
	// whenever they hold a happens-before edge on the Step call.
	defer r.publish()
	var used int64
	for used < budget {
		if r.iters&(CancelCheckEvery-1) == 0 && used > 0 {
			// Amortized flush point: mirror the loop's private
			// counters into the race-free published copies and the
			// attached hooks. This touches no search state and no
			// random stream, so instrumented runs stay bit-identical;
			// the context poll below keeps its original position.
			r.publish()
			if r.ctx != nil && r.ctx.Err() != nil {
				return used, false
			}
		}
		used++
		r.iters++
		var solved bool
		if r.eng != nil {
			solved = r.iterateEngine()
		} else {
			solved = r.iterateLegacy()
		}
		if solved {
			return used, true
		}
	}
	return used, false
}

// iterateLegacy runs one iteration of the copy-based reference path
// (Options.LegacyEval): copy the current program into scratch, mutate
// the copy, re-evaluate it from scratch with OfBounded, and swap the
// buffers on accept. It is retained verbatim as the differential
// baseline for the engine path. It returns true when the iteration
// solved the problem.
func (r *Run) iterateLegacy() bool {
	r.scratch.CopyFrom(r.cur)
	mv, ok := r.mut.Apply(r.scratch, r.rng)
	r.stats.Proposed[mv]++
	if ok {
		// Draw the acceptance threshold before evaluating so the
		// cost computation can abort early (exactly) once the
		// partial sum exceeds it. In minimize mode the size term
		// is known up front, so it tightens the correctness bound.
		bound := r.threshold()
		if r.minimize {
			bound -= r.sizeWeight * float64(r.scratch.BodyLen())
		}
		if r.pruned(r.scratch) {
			// Provably cannot match the example set: skip evaluation.
			// The threshold above was still drawn, so the RNG sequence
			// matches an unpruned run; only the trajectory differs.
			if r.opts.PruneVerify && r.kind.Of(r.scratch, r.suite, r.vals[:]) == 0 {
				r.stats.PruneUnsound++
			}
			if r.opts.StateHook != nil {
				r.opts.StateHook(r.cur)
			}
			return false
		}
		r.stats.Evaluated++
		c := r.kind.OfBounded(r.scratch, r.suite, r.vals[:], bound)
		if c <= bound {
			if r.rejectRevisit(c, r.scratch) {
				// Rewrite-equivalent plateau revisit: fall through
				// without swapping, as if the proposal were rejected.
			} else {
				r.stats.Accepted[mv]++
				r.cur, r.scratch = r.scratch, r.cur
				if r.accept(c) {
					return true
				}
			}
		}
	}
	if r.opts.StateHook != nil {
		r.opts.StateHook(r.cur)
	}
	return false
}

// iterateEngine runs one iteration through the incremental evaluation
// engine: the move edits the current program in place under the edit
// journal, the engine recomputes only the dirty value columns (pulled
// chunk by chunk so bad proposals still abort early), and a rejected
// proposal is undone exactly via the journal. The RNG draw sequence,
// the per-case float summation order, and the accept/reject rule are
// identical to iterateLegacy, so the two trajectories are bit-equal.
// It returns true when the iteration solved the problem.
func (r *Run) iterateEngine() bool {
	r.cur.BeginEdit(&r.jr)
	mv, ok := r.mut.Apply(r.cur, r.rng)
	r.stats.Proposed[mv]++
	if ok {
		bound := r.threshold()
		if r.minimize {
			bound -= r.sizeWeight * float64(r.cur.BodyLen())
		}
		if r.pruned(r.cur) {
			// Provably cannot match the example set: skip evaluation and
			// undo the edit, exactly as if the threshold had failed. The
			// threshold draw above keeps the RNG sequence identical to an
			// unpruned run.
			if r.opts.PruneVerify {
				r.eng.Begin(&r.jr)
				if r.kind.OfState(r.eng, math.Inf(1)) == 0 {
					r.stats.PruneUnsound++
				}
				r.eng.Abort()
			}
			r.cur.Rollback()
			if r.opts.StateHook != nil {
				r.opts.StateHook(r.cur)
			}
			return false
		}
		r.stats.Evaluated++
		r.eng.Begin(&r.jr)
		var c float64
		if r.planEng != nil {
			c = r.kind.OfPlan(r.planEng, bound)
		} else {
			c = r.kind.OfState(r.eng, bound)
		}
		if c <= bound {
			if r.rejectRevisit(c, r.cur) {
				// Rewrite-equivalent plateau revisit: reject the move
				// exactly as if the threshold had failed.
				r.eng.Abort()
				r.cur.Rollback()
			} else {
				// A non-Inf cost means every case block was pulled,
				// which is exactly Commit's precondition.
				r.stats.Accepted[mv]++
				r.eng.Commit()
				r.cur.EndEdit()
				if r.accept(c) {
					return true
				}
			}
		} else {
			r.eng.Abort()
			r.cur.Rollback()
		}
	} else {
		// Invalid proposals leave the program untouched (every move
		// checks validity before its first write), so this rollback is
		// a cheap journal detach that keeps the topo-order cache warm.
		r.cur.Rollback()
	}
	if r.opts.StateHook != nil {
		r.opts.StateHook(r.cur)
	}
	return false
}

// rejectRevisit reports whether an about-to-be-accepted proposal p
// with correctness cost c should instead be rejected as a
// rewrite-equivalent plateau revisit (Options.EqSat). Only exactly
// cost-neutral, non-solving proposals are ever checked: strict
// improvements and solutions must never be vetoed, and
// cost-increasing acceptances are precisely the escape moves the memo
// exists to encourage. With no memo attached this is a nil check, and
// the memo itself never draws from the random stream, so the nil path
// stays bit-identical to the pre-knob search.
func (r *Run) rejectRevisit(c float64, p *prog.Program) bool {
	if r.dedup == nil || c == 0 {
		return false
	}
	eff := c
	if r.minimize {
		eff = r.effective(c, p)
	}
	if eff != r.cost {
		return false
	}
	return r.dedup.Visited(p, eff)
}

// pruned reports whether proposal p is provably unable to match the
// example set (Options.Prune), bumping the prune counters. With
// pruning off this is a nil check and the counters stay zero, so the
// off path is bit-identical to the pre-knob search; the pruner itself
// never draws from the random stream. The increments are shared by
// both iteration paths, keeping the differential fuzz test's stats
// comparison exact.
func (r *Run) pruned(p *prog.Program) bool {
	if r.pruner == nil {
		return false
	}
	r.stats.PruneChecked++
	if !r.pruner.Rejects(p) {
		return false
	}
	r.stats.PruneRejected++
	return true
}

// accept performs the post-acceptance bookkeeping shared by both
// iteration paths, with c the proposal's correctness cost; the current
// program is already the accepted proposal. It returns true when the
// search finished.
func (r *Run) accept(c float64) bool {
	eff := c
	if r.minimize {
		eff = r.effective(c, r.cur)
		if c == 0 {
			r.noteBest(r.cur)
		}
	}
	if eff != r.cost {
		r.cost = eff
		r.recordTrace()
	}
	if c == 0 && !r.minimize {
		r.finish()
		if r.opts.StateHook != nil {
			r.opts.StateHook(r.cur)
		}
		return true
	}
	return false
}

// threshold draws the acceptance threshold c - beta*ln(U) with U
// uniform on (0, 1] (Figure 3, line 8). A proposal with cost c' is
// accepted iff c' <= threshold; since -ln(U) >= 0, cost-preserving and
// cost-decreasing proposals are always accepted, and with beta == 0
// nothing else is.
func (r *Run) threshold() float64 {
	if r.beta == 0 {
		return r.cost
	}
	u := 1 - r.rng.Float64() // (0, 1]
	return r.cost - r.beta*math.Log(u)
}

func (r *Run) finish() {
	r.done = true
	r.sol = r.cur.Clone()
	if h := r.obsHooks; h != nil && h.Tracer != nil {
		h.Tracer.Emit("search_solved", map[string]any{
			"search": h.ID, "iteration": r.iters,
		})
	}
}

// snapshot is the immutable published view of a run's counters; see
// the pub field. A fresh one is allocated per flush — once every
// CancelCheckEvery iterations, far off the allocation hot path.
type snapshot struct {
	iters int64
	stats Stats
}

// publish copies the loop's private counters into a fresh published
// snapshot and flushes the deltas since the last publish into the
// attached hooks, feeding the plateau detector and the sampled cost
// trajectory along the way. It runs at Step boundaries and every
// CancelCheckEvery iterations; with no hooks attached it is one
// struct copy and one atomic pointer store.
func (r *Run) publish() {
	r.pub.Store(&snapshot{iters: r.iters, stats: r.stats})
	h := r.obsHooks
	if h == nil || r.iters == r.obsIters {
		return // uninstrumented, or nothing new since the last flush
	}
	if r.obsIters >= 0 {
		if d := r.iters - r.obsIters; d > 0 {
			h.Iterations.Add(float64(d))
		}
	}
	r.obsIters = r.iters
	for i := range r.stats.Proposed {
		if d := r.stats.Proposed[i] - r.obsStats.Proposed[i]; d > 0 {
			h.ProposedFor(i).Add(float64(d))
		}
		if d := r.stats.Accepted[i] - r.obsStats.Accepted[i]; d > 0 {
			h.AcceptedFor(i).Add(float64(d))
		}
	}
	if d := r.stats.PruneChecked - r.obsStats.PruneChecked; d > 0 {
		h.PruneChecked.Add(float64(d))
	}
	if d := r.stats.PruneRejected - r.obsStats.PruneRejected; d > 0 {
		h.PruneRejected.Add(float64(d))
	}
	if d := r.stats.PruneUnsound - r.obsStats.PruneUnsound; d > 0 {
		h.PruneUnsound.Add(float64(d))
	}
	r.obsStats = r.stats
	if r.eng != nil {
		es := r.eng.Stats()
		if d := es.Sub(r.obsEval); d != (prog.EvalStats{}) {
			h.EvalNodesReevaluated.Add(float64(d.NodesReevaluated))
			h.EvalNodesTotal.Add(float64(d.NodesTotal))
			h.EvalCasesEvaluated.Add(float64(d.CasesEvaluated))
			h.EvalCasesTotal.Add(float64(d.CasesTotal))
			r.obsEval = es
		}
	}
	if ps, ok := r.eng.(*plan.State); ok {
		st := ps.PlanStats()
		if d := st.Sub(r.obsPlan); d != (plan.Stats{}) {
			h.PlanCompiles.Add(float64(d.Compiles))
			h.PlanCacheHits.Add(float64(d.CacheHits))
			h.PlanPatches.Add(float64(d.Patches))
			h.PlanFusedNodes.Add(float64(d.FusedNodes))
			r.obsPlan = st
		}
	}
	h.CurCost.Set(r.cost)
	h.BestCost.SetMin(r.cost)
	if math.IsNaN(r.obsBest) || r.cost < r.obsBest {
		r.obsBest = r.cost
	}
	entered, exited, dwell := r.plateau.Observe(r.iters, r.cost)
	if h.Tracer != nil {
		if entered {
			h.Plateaus.Inc()
			h.Tracer.Emit("plateau_enter", map[string]any{
				"search": h.ID, "iteration": r.iters, "cost": r.cost,
			})
		}
		if exited {
			h.Tracer.Emit("plateau_exit", map[string]any{
				"search": h.ID, "iteration": r.iters, "cost": r.cost, "dwell": dwell,
			})
		}
		if h.SampleCosts {
			// "best" is the best-so-far of the sampled trajectory, so a
			// live follower can draw the monotone envelope without
			// replaying from the start; the eval counters are cumulative
			// engine totals, from which consumers derive the reuse rate.
			attrs := map[string]any{
				"search": h.ID, "iteration": r.iters, "cost": r.cost, "best": r.obsBest,
			}
			if r.eng != nil {
				es := r.obsEval
				attrs["eval_nodes_reevaluated"] = es.NodesReevaluated
				attrs["eval_nodes_total"] = es.NodesTotal
			}
			h.Tracer.Emit("search_cost", attrs)
		}
	} else if entered {
		h.Plateaus.Inc()
	}
}

// recordTrace appends a trace point, thinning the trace by doubling
// the minimum recording gap whenever it grows past a bound so that
// arbitrarily long runs keep bounded memory.
func (r *Run) recordTrace() {
	if !r.opts.TraceCosts {
		return
	}
	const maxTrace = 4096
	if n := len(r.trace); n > 0 && r.iters-r.trace[n-1].Iteration < r.gap {
		// Overwrite the most recent point so the trace always ends
		// with the latest cost.
		r.trace[n-1] = TracePoint{Iteration: r.iters, Cost: r.cost}
		return
	}
	r.trace = append(r.trace, TracePoint{Iteration: r.iters, Cost: r.cost})
	if len(r.trace) >= maxTrace {
		w := 0
		for i := 0; i < len(r.trace); i += 2 {
			r.trace[w] = r.trace[i]
			w++
		}
		r.trace = r.trace[:w]
		r.gap *= 2
	}
}

// Cost implements Search.
func (r *Run) Cost() float64 { return r.cost }

// Done reports whether the search found a solution.
func (r *Run) Done() bool { return r.done }

// Iterations returns the number of iterations executed so far. The
// value is read from the run's published snapshot, so it is safe to
// call from a goroutine other than the one stepping the run (e.g. a
// tree-executor observer): it is exact whenever the reader holds a
// happens-before edge after a Step call, and lags a concurrent Step
// by at most CancelCheckEvery iterations otherwise.
func (r *Run) Iterations() int64 {
	if s := r.pub.Load(); s != nil {
		return s.iters
	}
	return 0
}

// EvalStats returns the incremental evaluation engine's cumulative
// work counters (all zero under Options.LegacyEval). Unlike
// Iterations, it reads the engine directly, so callers must hold a
// happens-before edge after the last Step (the synth CLI and the
// benchmark harness read it strictly after the search returns).
func (r *Run) EvalStats() prog.EvalStats {
	if r.eng == nil {
		return prog.EvalStats{}
	}
	return r.eng.Stats()
}

// PlanStats returns the plan compiler's cumulative counters (all zero
// unless the run uses the compiled engine). Same happens-before
// caveat as EvalStats.
func (r *Run) PlanStats() plan.Stats {
	if ps, ok := r.eng.(*plan.State); ok {
		return ps.PlanStats()
	}
	return plan.Stats{}
}

// Program returns the current program. The caller must not mutate it.
func (r *Run) Program() *prog.Program { return r.cur }

// Solution returns the zero-cost program found, or nil if the search
// has not finished.
func (r *Run) Solution() *prog.Program { return r.sol }

// Trace returns the recorded cost trace (nil unless TraceCosts).
func (r *Run) Trace() []TracePoint { return r.trace }

// Suite returns the suite the run synthesizes against.
func (r *Run) Suite() *testcase.Suite { return r.suite }

// NewFactory returns a Factory producing independent runs of the same
// problem and options, folding the per-search id into the seed. The
// runs share only the (immutable) suite and OpSet, so they satisfy
// the Factory independence contract and may be stepped concurrently.
func NewFactory(suite *testcase.Suite, opts Options) Factory {
	base := opts.Seed
	return func(id uint64) Search {
		o := opts
		o.Seed = base ^ (id+1)*0x9e3779b97f4a7c15
		o.Obs = opts.Obs.WithID(id) // nil-safe: stamps the search id into trace events
		return New(suite, o)
	}
}

// RunToCompletion drives a single search until it finishes or the
// budget is exhausted, returning the iterations consumed and whether
// it finished. This is the "naive" algorithm when given the full
// budget.
func RunToCompletion(s Search, budget int64) (int64, bool) {
	used, done := s.Step(budget)
	return used, done
}
