package search

import (
	"math/rand/v2"
	"sync"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// fuzzSuite builds a deterministic suite for the differential fuzz
// runs. Half the selector space produces an unsatisfiable random
// mapping (so searches run their whole budget and exercise long
// trajectories); the other half uses synthesizable references (so the
// solved path — early Step return, Solution capture — is exercised
// too).
func fuzzSuite(sel uint8, suiteSeed uint64) *testcase.Suite {
	rng := rand.New(rand.NewPCG(suiteSeed, 0xfeedface))
	switch sel % 4 {
	case 0: // random outputs: almost surely unsynthesizable
		out := rand.New(rand.NewPCG(suiteSeed, 0xabcdef))
		return testcase.Generate(func(in []uint64) uint64 { return out.Uint64() }, 2, 37, rng)
	case 1:
		ref := prog.MustParse("andq(x, subq(x, 1))", 1)
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 1, 50, rng)
	case 2:
		ref := prog.MustParse("orq(x, y)", 2)
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 2, 21, rng)
	default:
		ref := prog.MustParse("mulq(mulq(x, x), addq(x, y))", 2)
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 2, 50, rng)
	}
}

// FuzzIncrementalEval is the differential test pinning all three
// evaluation arms to one another in three-way lockstep: the compiled
// plan engine (the default), the interpreted incremental engine
// (InterpEval), and the legacy copy-based path (LegacyEval) run with
// identical options and must agree bit-for-bit at every Step
// boundary: identical iteration counts, identical costs (float
// bit-equality, including logdiff sums), identical accept/reject
// tallies, identical current programs, and identical solutions.
//
// make ci replays the seeded corpus below; `go test -fuzz
// FuzzIncrementalEval ./internal/search` explores beyond it.
func FuzzIncrementalEval(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint8(0), uint8(0), false)
	f.Add(uint64(2), uint64(11), uint8(1), uint8(1), true)
	f.Add(uint64(3), uint64(13), uint8(2), uint8(2), false)
	f.Add(uint64(4), uint64(17), uint8(3), uint8(0), true)
	f.Add(uint64(5), uint64(19), uint8(0), uint8(2), false)
	f.Add(uint64(6), uint64(23), uint8(2), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed, suiteSeed uint64, sel, kindSel uint8, greedy bool) {
		suite := fuzzSuite(sel, suiteSeed)
		kind := cost.Kinds[int(kindSel)%len(cost.Kinds)]
		beta := 1.0
		if greedy {
			beta = 0
		}
		// The model dialect (with the redundancy move) rides on sel so
		// every suite shape sees both dialects across the corpus.
		set, redundancy := prog.FullSet, false
		if sel%2 == 1 {
			set, redundancy = prog.ModelSet, true
		}
		opts := Options{Set: set, Cost: kind, Beta: beta, Redundancy: redundancy, Seed: seed}
		iopts := opts
		iopts.InterpEval = true
		lopts := opts
		lopts.LegacyEval = true

		arms := []struct {
			name string
			run  *Run
		}{
			{"plan", New(suite, opts)},
			{"engine", New(suite, iopts)},
			{"legacy", New(suite, lopts)},
		}
		plan, rest := arms[0], arms[1:]
		for _, o := range rest {
			if plan.run.Cost() != o.run.Cost() {
				t.Fatalf("initial cost: %s %v, %s %v",
					plan.name, plan.run.Cost(), o.name, o.run.Cost())
			}
		}
		// Uneven chunk sizes exercise Step boundaries at varying phases.
		for _, chunk := range []int64{1, 137, 1000, 7, 2048, 911} {
			usedP, doneP := plan.run.Step(chunk)
			for _, o := range rest {
				usedO, doneO := o.run.Step(chunk)
				if usedP != usedO || doneP != doneO {
					t.Fatalf("step(%d): %s (%d, %v), %s (%d, %v)",
						chunk, plan.name, usedP, doneP, o.name, usedO, doneO)
				}
				if plan.run.Cost() != o.run.Cost() {
					t.Fatalf("cost diverged after step(%d): %s %v, %s %v",
						chunk, plan.name, plan.run.Cost(), o.name, o.run.Cost())
				}
				if !plan.run.Program().Equal(o.run.Program()) {
					t.Fatalf("programs diverged after step(%d):\n%s: %s\n%s: %s",
						chunk, plan.name, plan.run.Program(), o.name, o.run.Program())
				}
				if plan.run.MoveStats() != o.run.MoveStats() {
					t.Fatalf("move stats diverged after step(%d): %s %+v, %s %+v",
						chunk, plan.name, plan.run.MoveStats(), o.name, o.run.MoveStats())
				}
			}
			if doneP {
				for _, o := range rest {
					if plan.run.Solution() == nil || o.run.Solution() == nil ||
						!plan.run.Solution().Equal(o.run.Solution()) {
						t.Fatalf("solutions diverged: %s %v, %s %v",
							plan.name, plan.run.Solution(), o.name, o.run.Solution())
					}
				}
				break
			}
		}
		// Both engines must have done identical incremental work — the
		// plan layer changes how columns are computed, never which ones.
		if ps, es := plan.run.EvalStats(), arms[1].run.EvalStats(); ps != es {
			t.Fatalf("eval stats diverged: plan %+v, engine %+v", ps, es)
		}
		if st := plan.run.EvalStats(); st.NodesTotal > 0 && st.NodesReevaluated > st.NodesTotal {
			t.Fatalf("impossible reuse stats: %+v", st)
		}
		// The engines' committed columns must describe the final
		// program exactly: compare against a fresh legacy evaluation of
		// the same program.
		var vals [prog.MaxNodes]uint64
		finalLegacy := kind.Of(plan.run.Program(), suite, vals[:])
		if finalLegacy != plan.run.Cost() && !plan.run.minimize {
			t.Fatalf("plan cost %v disagrees with fresh evaluation %v", plan.run.Cost(), finalLegacy)
		}
	})
}

// TestConcurrentRunsSharedSuite steps independent engine-backed runs
// over one shared suite from many goroutines. Each Run owns its
// EvalState, journal, and mutator; the suite and OpSet are the only
// shared (read-only) data. Run under -race in make ci, this pins the
// engine's "one run, one engine" ownership story.
func TestConcurrentRunsSharedSuite(t *testing.T) {
	suite := suiteFor(t, "mulq(mulq(x, x), addq(x, y))", 2, 50)
	const workers = 8
	costs := make([]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: uint64(w)})
			r.Step(20_000)
			costs[w] = r.Cost()
		}(i)
	}
	wg.Wait()
	// Determinism across the concurrent execution: re-run one of the
	// seeds sequentially and compare.
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 3})
	r.Step(20_000)
	if r.Cost() != costs[3] {
		t.Errorf("concurrent run diverged from sequential replay: %v vs %v", costs[3], r.Cost())
	}
}
