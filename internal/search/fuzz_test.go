package search

import (
	"math/rand/v2"
	"sync"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// fuzzSuite builds a deterministic suite for the differential fuzz
// runs. Half the selector space produces an unsatisfiable random
// mapping (so searches run their whole budget and exercise long
// trajectories); the other half uses synthesizable references (so the
// solved path — early Step return, Solution capture — is exercised
// too).
func fuzzSuite(sel uint8, suiteSeed uint64) *testcase.Suite {
	rng := rand.New(rand.NewPCG(suiteSeed, 0xfeedface))
	switch sel % 4 {
	case 0: // random outputs: almost surely unsynthesizable
		out := rand.New(rand.NewPCG(suiteSeed, 0xabcdef))
		return testcase.Generate(func(in []uint64) uint64 { return out.Uint64() }, 2, 37, rng)
	case 1:
		ref := prog.MustParse("andq(x, subq(x, 1))", 1)
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 1, 50, rng)
	case 2:
		ref := prog.MustParse("orq(x, y)", 2)
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 2, 21, rng)
	default:
		ref := prog.MustParse("mulq(mulq(x, x), addq(x, y))", 2)
		return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 2, 50, rng)
	}
}

// FuzzIncrementalEval is the differential test pinning the incremental
// evaluation engine to the legacy copy-based reference path: two runs
// with identical options — one engine-backed, one LegacyEval — are
// stepped in lockstep and must agree bit-for-bit at every Step
// boundary: identical iteration counts, identical costs (float
// bit-equality, including logdiff sums), identical accept/reject
// tallies, identical current programs, and identical solutions.
//
// make ci replays the seeded corpus below; `go test -fuzz
// FuzzIncrementalEval ./internal/search` explores beyond it.
func FuzzIncrementalEval(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint8(0), uint8(0), false)
	f.Add(uint64(2), uint64(11), uint8(1), uint8(1), true)
	f.Add(uint64(3), uint64(13), uint8(2), uint8(2), false)
	f.Add(uint64(4), uint64(17), uint8(3), uint8(0), true)
	f.Add(uint64(5), uint64(19), uint8(0), uint8(2), false)
	f.Add(uint64(6), uint64(23), uint8(2), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed, suiteSeed uint64, sel, kindSel uint8, greedy bool) {
		suite := fuzzSuite(sel, suiteSeed)
		kind := cost.Kinds[int(kindSel)%len(cost.Kinds)]
		beta := 1.0
		if greedy {
			beta = 0
		}
		// The model dialect (with the redundancy move) rides on sel so
		// every suite shape sees both dialects across the corpus.
		set, redundancy := prog.FullSet, false
		if sel%2 == 1 {
			set, redundancy = prog.ModelSet, true
		}
		opts := Options{Set: set, Cost: kind, Beta: beta, Redundancy: redundancy, Seed: seed}
		lopts := opts
		lopts.LegacyEval = true

		eng := New(suite, opts)
		leg := New(suite, lopts)
		if eng.Cost() != leg.Cost() {
			t.Fatalf("initial cost: engine %v, legacy %v", eng.Cost(), leg.Cost())
		}
		// Uneven chunk sizes exercise Step boundaries at varying phases.
		for _, chunk := range []int64{1, 137, 1000, 7, 2048, 911} {
			usedE, doneE := eng.Step(chunk)
			usedL, doneL := leg.Step(chunk)
			if usedE != usedL || doneE != doneL {
				t.Fatalf("step(%d): engine (%d, %v), legacy (%d, %v)",
					chunk, usedE, doneE, usedL, doneL)
			}
			if eng.Cost() != leg.Cost() {
				t.Fatalf("cost diverged after step(%d): engine %v, legacy %v",
					chunk, eng.Cost(), leg.Cost())
			}
			if !eng.Program().Equal(leg.Program()) {
				t.Fatalf("programs diverged after step(%d):\nengine: %s\nlegacy: %s",
					chunk, eng.Program(), leg.Program())
			}
			if eng.MoveStats() != leg.MoveStats() {
				t.Fatalf("move stats diverged after step(%d): engine %+v, legacy %+v",
					chunk, eng.MoveStats(), leg.MoveStats())
			}
			if doneE {
				if eng.Solution() == nil || leg.Solution() == nil ||
					!eng.Solution().Equal(leg.Solution()) {
					t.Fatalf("solutions diverged: engine %v, legacy %v",
						eng.Solution(), leg.Solution())
				}
				break
			}
		}
		// The engine's committed columns must describe the final
		// program exactly: compare the root column against a fresh
		// legacy evaluation of the same program.
		if st := eng.EvalStats(); st.NodesTotal > 0 && st.NodesReevaluated > st.NodesTotal {
			t.Fatalf("impossible reuse stats: %+v", st)
		}
		var vals [prog.MaxNodes]uint64
		finalLegacy := kind.Of(eng.Program(), suite, vals[:])
		if finalLegacy != eng.Cost() && !eng.minimize {
			t.Fatalf("engine cost %v disagrees with fresh evaluation %v", eng.Cost(), finalLegacy)
		}
	})
}

// TestConcurrentRunsSharedSuite steps independent engine-backed runs
// over one shared suite from many goroutines. Each Run owns its
// EvalState, journal, and mutator; the suite and OpSet are the only
// shared (read-only) data. Run under -race in make ci, this pins the
// engine's "one run, one engine" ownership story.
func TestConcurrentRunsSharedSuite(t *testing.T) {
	suite := suiteFor(t, "mulq(mulq(x, x), addq(x, y))", 2, 50)
	const workers = 8
	costs := make([]float64, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: uint64(w)})
			r.Step(20_000)
			costs[w] = r.Cost()
		}(i)
	}
	wg.Wait()
	// Determinism across the concurrent execution: re-run one of the
	// seeds sequentially and compare.
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 3})
	r.Step(20_000)
	if r.Cost() != costs[3] {
		t.Errorf("concurrent run diverged from sequential replay: %v vs %v", costs[3], r.Cost())
	}
}
