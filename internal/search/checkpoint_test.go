package search

import (
	"strings"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
)

func TestCheckpointResumeBitIdentical(t *testing.T) {
	suite := suiteFor(t, "mulq(addq(x, 3), x)", 1, 60)
	opts := Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 42}

	// Reference: run 30k iterations straight through.
	ref := New(suite, opts)
	refUsed, refDone := ref.Step(30_000)

	// Checkpointed: run 12k, snapshot, restore into a fresh run, run
	// the remaining 18k.
	a := New(suite, opts)
	a.Step(12_000)
	var buf strings.Builder
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(suite, opts)
	if err := b.Restore(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if b.Iterations() != 12_000 {
		t.Fatalf("restored iterations = %d", b.Iterations())
	}
	bUsed, bDone := b.Step(18_000)

	if refDone != bDone {
		t.Fatalf("done mismatch: ref %v, resumed %v", refDone, bDone)
	}
	if refDone {
		if ref.Iterations() != b.Iterations() || refUsed != 12_000+bUsed {
			t.Fatalf("finish iteration mismatch: ref %d (+%d), resumed %d (+%d)",
				ref.Iterations(), refUsed, b.Iterations(), bUsed)
		}
		if ref.Solution().String() != b.Solution().String() {
			t.Fatalf("solutions differ:\nref:     %s\nresumed: %s", ref.Solution(), b.Solution())
		}
	} else {
		if ref.Cost() != b.Cost() {
			t.Fatalf("costs differ: ref %g, resumed %g", ref.Cost(), b.Cost())
		}
		if !ref.Program().Equal(b.Program()) {
			t.Fatalf("programs differ:\nref:     %s\nresumed: %s", ref.Program(), b.Program())
		}
	}
}

func TestCheckpointDoneRun(t *testing.T) {
	suite := suiteFor(t, "x", 1, 10)
	r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Seed: 2})
	if _, done := r.Step(200_000); !done {
		t.Skip("identity not found")
	}
	var buf strings.Builder
	if err := r.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Seed: 2})
	if err := b.Restore(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if !b.Done() || b.Solution() == nil {
		t.Error("done state lost in checkpoint")
	}
	if u, d := b.Step(100); u != 0 || !d {
		t.Error("restored done run did work")
	}
}

func TestRestoreErrors(t *testing.T) {
	suite := suiteFor(t, "x", 1, 10)
	r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Seed: 1})
	if err := r.Restore(strings.NewReader("{bad")); err == nil {
		t.Error("accepted malformed checkpoint")
	}
	if err := r.Restore(strings.NewReader(`{"version":99,"rng":""}`)); err == nil {
		t.Error("accepted wrong version")
	}
	// Arity mismatch.
	other := suiteFor(t, "addq(x, y)", 2, 10)
	r2 := New(other, Options{Set: prog.FullSet, Cost: cost.Hamming, Seed: 1})
	var buf strings.Builder
	if err := r2.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(strings.NewReader(buf.String())); err == nil {
		t.Error("accepted checkpoint with wrong arity")
	}
}

func TestCheckpointMinimizeMode(t *testing.T) {
	suite := suiteFor(t, "mulq(x, 3)", 1, 40)
	init := prog.MustParse("addq(addq(x, x), mulq(x, 1))", 1)
	r := New(suite, Options{
		Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 6,
		Init: init, MinimizeSize: true,
	})
	r.Step(50_000)
	var buf strings.Builder
	if err := r.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(suite, Options{
		Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 6,
		Init: init, MinimizeSize: true,
	})
	if err := b.Restore(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if b.Best() == nil {
		t.Fatal("best program lost in checkpoint")
	}
	if b.Best().BodyLen() != r.Best().BodyLen() {
		t.Error("best program size changed")
	}
}
