package search

import (
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
)

// TestPruneSolvesAndIsSound runs a pruned search (with the concrete
// re-check enabled) on a standard problem: it must still solve it, it
// must have actually pruned something along the way, the evaluated
// count must shrink by exactly the rejections, and not a single
// rejection may be disproved by the concrete evaluator.
func TestPruneSolvesAndIsSound(t *testing.T) {
	suite := suiteFor(t, "andq(x, subq(x, 1))", 1, 100)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 3,
		Prune: true, PruneVerify: true})
	if _, done := r.Step(3_000_000); !done {
		t.Fatal("hd01 not solved within 3M iterations with pruning on")
	}
	if !cost.Solves(r.Solution(), suite, solveVals[:]) {
		t.Error("solution does not match the suite")
	}
	st := r.MoveStats()
	if st.PruneChecked == 0 || st.PruneRejected == 0 {
		t.Errorf("pruner idle: checked=%d rejected=%d", st.PruneChecked, st.PruneRejected)
	}
	if st.Evaluated+st.PruneRejected != st.PruneChecked {
		t.Errorf("counter mismatch: evaluated=%d + rejected=%d != checked=%d",
			st.Evaluated, st.PruneRejected, st.PruneChecked)
	}
	if st.PruneUnsound != 0 {
		t.Fatalf("UNSOUND: %d pruned proposals solved the suite concretely", st.PruneUnsound)
	}
}

// TestPruneEngineLegacyBitIdentical pins that the engine and legacy
// paths place the prune gate at the same point: with pruning on, both
// must walk the identical trajectory and land on identical stats.
func TestPruneEngineLegacyBitIdentical(t *testing.T) {
	suite := suiteFor(t, "xorq(x, shrq(x, 1))", 1, 32)
	mk := func(legacy bool) *Run {
		return New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 11,
			Prune: true, PruneVerify: true, LegacyEval: legacy})
	}
	eng, leg := mk(false), mk(true)
	const budget = 200_000
	ue, de := eng.Step(budget)
	ul, dl := leg.Step(budget)
	if ue != ul || de != dl {
		t.Fatalf("paths diverged: engine (%d, %v) vs legacy (%d, %v)", ue, de, ul, dl)
	}
	if eng.Cost() != leg.Cost() {
		t.Fatalf("costs diverged: %g vs %g", eng.Cost(), leg.Cost())
	}
	if se, sl := eng.MoveStats(), leg.MoveStats(); se != sl {
		t.Fatalf("stats diverged:\n  engine: %+v\n  legacy: %+v", se, sl)
	}
	if !eng.Program().Equal(leg.Program()) {
		t.Fatalf("programs diverged:\n  engine: %s\n  legacy: %s", eng.Program(), leg.Program())
	}
}

// TestPruneOffIsNilCheck pins the knob contract: Prune=false leaves
// the prune counters at zero and evaluates every valid proposal.
func TestPruneOffIsNilCheck(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 7})
	r.Step(50_000)
	st := r.MoveStats()
	if st.PruneChecked != 0 || st.PruneRejected != 0 || st.PruneUnsound != 0 {
		t.Errorf("prune counters moved with the knob off: %+v", st)
	}
	if st.Evaluated == 0 {
		t.Error("Evaluated counter did not move")
	}
}
