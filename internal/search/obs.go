package search

import (
	"stochsyn/internal/mutate"
	"stochsyn/internal/obs"
)

// NewObsHooks builds the standard set of search metrics on reg and
// wires the tracer in, returning hooks ready to attach to
// Options.Obs. The series it creates follow the repo naming scheme
// (DESIGN.md §8):
//
//	stochsyn_search_iterations_total
//	stochsyn_moves_proposed_total{move=...}
//	stochsyn_moves_accepted_total{move=...}
//	stochsyn_search_cost          (last flushed cost, any search)
//	stochsyn_search_best_cost     (process-lifetime minimum)
//	stochsyn_search_plateaus_total
//	stochsyn_eval_nodes_reevaluated_total
//	stochsyn_eval_nodes_total
//	stochsyn_eval_cases_evaluated_total
//	stochsyn_eval_cases_total
//	stochsyn_plan_compiles_total
//	stochsyn_plan_cache_hits_total
//	stochsyn_plan_patches_total
//	stochsyn_plan_fused_nodes_total
//	stochsyn_prune_checked_total
//	stochsyn_prune_rejected_total
//	stochsyn_prune_unsound_check_total
//
// All searches share these series regardless of restart id — per-search
// cardinality lives in the trace stream, not the registry. Both
// arguments are nil-safe: a nil registry yields hooks whose counter
// updates are no-ops, which lets callers wire observability
// unconditionally.
func NewObsHooks(reg *obs.Registry, tracer *obs.Tracer) *obs.SearchHooks {
	h := &obs.SearchHooks{
		Iterations:           reg.Counter("stochsyn_search_iterations_total"),
		CurCost:              reg.Gauge("stochsyn_search_cost"),
		BestCost:             reg.Gauge("stochsyn_search_best_cost"),
		Plateaus:             reg.Counter("stochsyn_search_plateaus_total"),
		EvalNodesReevaluated: reg.Counter("stochsyn_eval_nodes_reevaluated_total"),
		EvalNodesTotal:       reg.Counter("stochsyn_eval_nodes_total"),
		EvalCasesEvaluated:   reg.Counter("stochsyn_eval_cases_evaluated_total"),
		EvalCasesTotal:       reg.Counter("stochsyn_eval_cases_total"),
		PlanCompiles:         reg.Counter("stochsyn_plan_compiles_total"),
		PlanCacheHits:        reg.Counter("stochsyn_plan_cache_hits_total"),
		PlanPatches:          reg.Counter("stochsyn_plan_patches_total"),
		PlanFusedNodes:       reg.Counter("stochsyn_plan_fused_nodes_total"),
		PruneChecked:         reg.Counter("stochsyn_prune_checked_total"),
		PruneRejected:        reg.Counter("stochsyn_prune_rejected_total"),
		PruneUnsound:         reg.Counter("stochsyn_prune_unsound_check_total"),
		Tracer:               tracer,
		// Cost samples arrive at flush granularity (every
		// CancelCheckEvery iterations), which is cheap enough to leave
		// on whenever a tracer is attached.
		SampleCosts: true,
	}
	h.Proposed = make([]*obs.Counter, mutate.NumMoves)
	h.Accepted = make([]*obs.Counter, mutate.NumMoves)
	for m := 0; m < mutate.NumMoves; m++ {
		name := mutate.Move(m).String()
		h.Proposed[m] = reg.Counter("stochsyn_moves_proposed_total", "move", name)
		h.Accepted[m] = reg.Counter("stochsyn_moves_accepted_total", "move", name)
	}
	reg.SetHelp("stochsyn_search_iterations_total",
		"Search loop iterations executed, flushed every CancelCheckEvery iterations.")
	reg.SetHelp("stochsyn_moves_proposed_total", "Mutation proposals drawn, by move kind.")
	reg.SetHelp("stochsyn_moves_accepted_total", "Mutation proposals accepted, by move kind.")
	reg.SetHelp("stochsyn_search_cost", "Cost at the most recent flush of any search.")
	reg.SetHelp("stochsyn_search_best_cost", "Minimum cost observed by any search in this process.")
	reg.SetHelp("stochsyn_search_plateaus_total", "Plateau entries detected by the windowed cost-delta detector.")
	reg.SetHelp("stochsyn_eval_nodes_reevaluated_total",
		"Node value columns recomputed by the incremental evaluation engine.")
	reg.SetHelp("stochsyn_eval_nodes_total",
		"Node value columns a full re-evaluation would have computed; the ratio to reevaluated is the reuse rate.")
	reg.SetHelp("stochsyn_eval_cases_evaluated_total",
		"Suite cases actually evaluated before the bounded cost sum aborted.")
	reg.SetHelp("stochsyn_eval_cases_total",
		"Suite cases a full evaluation of every proposal would have covered.")
	reg.SetHelp("stochsyn_plan_compiles_total",
		"Full evaluation-plan compiles performed by the plan engine (recipe cache misses).")
	reg.SetHelp("stochsyn_plan_cache_hits_total",
		"Full compiles avoided by re-binding a cached recipe at Reset (restarts/restores).")
	reg.SetHelp("stochsyn_plan_patches_total",
		"Dirty tape entries re-lowered by the incremental recompile path, one per dirty node per proposal.")
	reg.SetHelp("stochsyn_plan_fused_nodes_total",
		"Nodes lowered to a fused form: constant-folded whole or compiled to an immediate-operand kernel.")
	reg.SetHelp("stochsyn_prune_checked_total",
		"Proposals probed by the abstract-interpretation pruner (Options.Prune).")
	reg.SetHelp("stochsyn_prune_rejected_total",
		"Proposals the pruner proved unable to match the example set, skipped before evaluation.")
	reg.SetHelp("stochsyn_prune_unsound_check_total",
		"Pruned proposals the concrete re-check (PruneVerify) found to solve the suite; nonzero means an unsound abstract domain.")
	return h
}
