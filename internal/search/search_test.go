package search

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// solveVals is shared scratch for cost.Solves checks in tests.
var solveVals [prog.MaxNodes]uint64

// suiteFor builds a deterministic suite for the reference expression.
func suiteFor(t *testing.T, expr string, numInputs, cases int) *testcase.Suite {
	t.Helper()
	ref := prog.MustParse(expr, numInputs)
	rng := rand.New(rand.NewPCG(100, 200))
	return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
		numInputs, cases, rng)
}

func TestSolvesModelProblem(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 7})
	used, done := r.Step(500_000)
	if !done {
		t.Fatalf("model problem not solved in %d iterations", used)
	}
	if r.Cost() != 0 {
		t.Errorf("done with cost %g", r.Cost())
	}
	sol := r.Solution()
	if sol == nil {
		t.Fatal("no solution recorded")
	}
	if err := sol.Validate(); err != nil {
		t.Fatal(err)
	}
	// The solution must actually solve the suite.
	if !cost.Solves(sol, suite, solveVals[:]) {
		t.Error("recorded solution does not match the suite")
	}
}

func TestSolvesFullDialect(t *testing.T) {
	suite := suiteFor(t, "andq(x, subq(x, 1))", 1, 100)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 3})
	if _, done := r.Step(3_000_000); !done {
		t.Fatal("hd01 not solved within 3M iterations")
	}
	if !cost.Solves(r.Solution(), suite, solveVals[:]) {
		t.Error("solution does not match the suite")
	}
}

func TestStepBudgetExact(t *testing.T) {
	// An unsolvable-within-budget run must consume exactly the budget.
	suite := suiteFor(t, "mulq(mulq(x, x), addq(x, y))", 2, 100)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 1})
	used, done := r.Step(1000)
	if done {
		t.Skip("surprisingly solved; budget accounting untestable here")
	}
	if used != 1000 {
		t.Errorf("Step used %d of budget 1000", used)
	}
	if r.Iterations() != 1000 {
		t.Errorf("Iterations = %d, want 1000", r.Iterations())
	}
}

func TestStepAfterDoneIsNoop(t *testing.T) {
	suite := suiteFor(t, "x", 1, 10)
	// The constant-zero initial program has nonzero cost; identity is
	// found almost immediately with an operand move.
	r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Seed: 2})
	if _, done := r.Step(100_000); !done {
		t.Fatal("identity not synthesized")
	}
	iters := r.Iterations()
	used, done := r.Step(1000)
	if used != 0 || !done {
		t.Errorf("Step after done = (%d, %v), want (0, true)", used, done)
	}
	if r.Iterations() != iters {
		t.Error("iterations advanced after done")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	run := func() (int64, bool, string) {
		r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 55})
		used, done := r.Step(500_000)
		s := ""
		if done {
			s = r.Solution().String()
		}
		return used, done, s
	}
	u1, d1, s1 := run()
	u2, d2, s2 := run()
	if u1 != u2 || d1 != d2 || s1 != s2 {
		t.Errorf("same seed diverged: (%d,%v,%q) vs (%d,%v,%q)", u1, d1, s1, u2, d2, s2)
	}
}

func TestSeedsDiffer(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	iters := map[int64]bool{}
	for seed := uint64(1); seed <= 6; seed++ {
		r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: seed})
		used, _ := r.Step(500_000)
		iters[used] = true
	}
	if len(iters) < 3 {
		t.Errorf("6 seeds produced only %d distinct iteration counts", len(iters))
	}
}

func TestBetaZeroGreedy(t *testing.T) {
	// With beta = 0 the accepted cost must never increase.
	suite := suiteFor(t, "orq(andq(x, y), 5)", 2, 50)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 0, Seed: 5, TraceCosts: true})
	r.Step(100_000)
	trace := r.Trace()
	for i := 1; i < len(trace); i++ {
		if trace[i].Cost > trace[i-1].Cost {
			t.Fatalf("beta=0 accepted a cost increase: %g -> %g", trace[i-1].Cost, trace[i].Cost)
		}
	}
}

func TestTraceRecordsDescent(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 7, TraceCosts: true})
	_, done := r.Step(500_000)
	if !done {
		t.Skip("did not finish")
	}
	trace := r.Trace()
	if len(trace) < 2 {
		t.Fatalf("trace has %d points", len(trace))
	}
	if trace[len(trace)-1].Cost != 0 {
		t.Errorf("final trace cost = %g, want 0", trace[len(trace)-1].Cost)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Iteration < trace[i-1].Iteration {
			t.Error("trace iterations not monotone")
		}
	}
}

func TestTraceBoundedMemory(t *testing.T) {
	// A long run with frequent cost changes must keep the trace under
	// the thinning bound.
	suite := suiteFor(t, "mulq(x, mulq(x, x))", 1, 100)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.LogDiff, Beta: 20, Seed: 9, TraceCosts: true})
	r.Step(300_000)
	if n := len(r.Trace()); n > 4096 {
		t.Errorf("trace grew to %d points", n)
	}
}

func TestInitProgram(t *testing.T) {
	suite := suiteFor(t, "addq(x, 1)", 1, 50)
	init := prog.MustParse("addq(x, 2)", 1)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 4, Init: init})
	// Starting one constant off, this should be found very fast.
	if _, done := r.Step(200_000); !done {
		t.Error("near-solution init did not converge quickly")
	}
}

func TestInitAlreadySolved(t *testing.T) {
	suite := suiteFor(t, "addq(x, 1)", 1, 50)
	init := prog.MustParse("addq(x, 1)", 1)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Seed: 4, Init: init})
	if !r.Done() {
		t.Error("run with solving init not immediately done")
	}
	used, done := r.Step(100)
	if used != 0 || !done {
		t.Error("Step on pre-solved run did work")
	}
}

func TestStateHookSeesFinalState(t *testing.T) {
	suite := suiteFor(t, "x", 1, 10)
	sawZeroCost := false
	var vals [prog.MaxNodes]uint64
	r := New(suite, Options{
		Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Seed: 2,
		StateHook: func(p *prog.Program) {
			if cost.Hamming.Of(p, suite, vals[:]) == 0 {
				sawZeroCost = true
			}
		},
	})
	if _, done := r.Step(200_000); !done {
		t.Skip("identity not found")
	}
	if !sawZeroCost {
		t.Error("state hook never observed the final state")
	}
}

func TestFactoryIndependence(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	f := NewFactory(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 42})
	s1 := f(0)
	s2 := f(1)
	u1, _ := s1.Step(5000)
	u2, _ := s2.Step(5000)
	_ = u1
	_ = u2
	// Same id must reproduce the same search.
	s3 := f(0)
	s1b := f(0)
	a, da := s3.Step(2000)
	b, db := s1b.Step(2000)
	if a != b || da != db {
		t.Error("factory is not deterministic per id")
	}
}

func TestPropertyCostNeverNegative(t *testing.T) {
	suite := suiteFor(t, "xor(x, shr(x))", 1, 16)
	f := func(seed uint64) bool {
		r := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 2, Redundancy: true, Seed: seed})
		r.Step(3000)
		return r.Cost() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunToCompletion(t *testing.T) {
	suite := suiteFor(t, "or(shl(x), x)", 1, 16)
	s := New(suite, Options{Set: prog.ModelSet, Cost: cost.Hamming, Beta: 1, Redundancy: true, Seed: 7})
	used, done := RunToCompletion(s, 500_000)
	if !done || used <= 0 {
		t.Errorf("RunToCompletion = (%d, %v)", used, done)
	}
}

func TestMinimizeSizeMode(t *testing.T) {
	suite := suiteFor(t, "mulq(x, 3)", 1, 60)
	init := prog.MustParse("addq(addq(x, x), mulq(x, 1))", 1)
	r := New(suite, Options{
		Set: prog.FullSet, Cost: cost.Hamming, Beta: 1, Seed: 6,
		Init: init, MinimizeSize: true,
	})
	if r.Best() == nil {
		t.Fatal("correct init not recorded as best")
	}
	used, done := r.Step(500_000)
	if done {
		t.Error("minimize mode must never report done")
	}
	if used != 500_000 {
		t.Errorf("consumed %d iterations", used)
	}
	best := r.Best()
	if best == nil {
		t.Fatal("no best program")
	}
	if !cost.Solves(best, suite, solveVals[:]) {
		t.Error("best program is incorrect")
	}
	if best.BodyLen() > init.BodyLen() {
		t.Errorf("best grew: %d -> %d", init.BodyLen(), best.BodyLen())
	}
}

func TestMinimizeFromScratch(t *testing.T) {
	// Without an init, minimize mode should still find and record a
	// correct program for an easy spec.
	suite := suiteFor(t, "orq(x, y)", 2, 60)
	r := New(suite, Options{
		Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 8, MinimizeSize: true,
	})
	r.Step(2_000_000)
	if r.Best() == nil {
		t.Fatal("never found a correct program")
	}
	if !cost.Solves(r.Best(), suite, solveVals[:]) {
		t.Error("best program incorrect")
	}
}

func TestMoveStats(t *testing.T) {
	suite := suiteFor(t, "mulq(x, mulq(x, x))", 1, 50)
	r := New(suite, Options{Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 12})
	r.Step(20_000)
	st := r.MoveStats()
	if got := st.TotalProposed(); got != 20_000 {
		t.Errorf("proposed %d, want 20000", got)
	}
	if st.TotalAccepted() == 0 || st.TotalAccepted() > st.TotalProposed() {
		t.Errorf("accepted %d of %d", st.TotalAccepted(), st.TotalProposed())
	}
	rate := st.AcceptanceRate()
	if rate <= 0 || rate >= 1 {
		t.Errorf("acceptance rate %g", rate)
	}
	// All three baseline moves must have been proposed.
	for mv := 0; mv < 3; mv++ {
		if st.Proposed[mv] == 0 {
			t.Errorf("move %d never proposed", mv)
		}
	}
}
