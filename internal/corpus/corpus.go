// Package corpus generates a synthetic x86-64 assembly corpus that
// stands in for the Ubuntu 16.04 binaries the paper scrapes
// (Section 6). The generator emits functions of basic blocks with a
// realistic compiler-output instruction mix — mov-heavy data movement,
// address arithmetic (lea), ALU chains with dataflow locality,
// comparisons and branches, calls, memory accesses, and a sprinkling
// of vector instructions the disassembler does not support — so the
// scraping pipeline in internal/asm and internal/superopt is exercised
// on the same kinds of inputs (and losses) the paper describes.
//
// Generation is deterministic given the seed.
package corpus

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"stochsyn/internal/asm"
)

// Options configures corpus generation.
type Options struct {
	// Functions is the number of functions to emit.
	Functions int
	// Seed makes generation reproducible.
	Seed uint64
	// MaxBlocks bounds the number of basic blocks per function
	// (default 4).
	MaxBlocks int
	// MaxInsts bounds the instructions per block (default 18).
	MaxInsts int
}

func (o *Options) defaults() Options {
	out := *o
	if out.MaxBlocks <= 0 {
		out.MaxBlocks = 4
	}
	if out.MaxInsts <= 0 {
		out.MaxInsts = 18
	}
	return out
}

// Generate emits the corpus as one assembly listing.
func Generate(opts Options) string {
	o := opts.defaults()
	rng := rand.New(rand.NewPCG(o.Seed, 0x243f6a8885a308d3))
	var sb strings.Builder
	sb.WriteString("\t.text\n")
	for i := 0; i < o.Functions; i++ {
		genFunc(&sb, rng, i, o)
	}
	return sb.String()
}

// workRegs are the registers the generator allocates from; rsp is
// excluded as the stack pointer.
var workRegs = []asm.Reg{
	asm.RAX, asm.RBX, asm.RCX, asm.RDX, asm.RSI, asm.RDI, asm.RBP,
	asm.R8, asm.R9, asm.R10, asm.R11, asm.R12, asm.R13, asm.R14, asm.R15,
}

// condJumps is the pool of conditional jump mnemonics.
var condJumps = []string{"je", "jne", "jl", "jle", "jg", "jge", "jb", "ja", "js", "jns"}

// genFunc writes one function.
func genFunc(sb *strings.Builder, rng *rand.Rand, idx int, o Options) {
	name := fmt.Sprintf("func_%04d", idx)
	fmt.Fprintf(sb, "%s:\n", name)
	nblocks := 1 + rng.IntN(o.MaxBlocks)
	g := &blockGen{rng: rng}
	// Seed a few registers as "holding values" (the incoming
	// arguments) so early instructions have sources to read.
	g.written = append(g.written, asm.RDI, asm.RSI, asm.RDX, asm.RCX)

	for b := 0; b < nblocks; b++ {
		if b > 0 {
			fmt.Fprintf(sb, ".L%d_%d:\n", idx, b)
		}
		ninsts := 3 + rng.IntN(o.MaxInsts-2)
		for k := 0; k < ninsts; k++ {
			sb.WriteString("\t" + g.inst() + "\n")
		}
		last := b == nblocks-1
		switch {
		case last:
			// Make sure the return value depends on computed state.
			fmt.Fprintf(sb, "\tmovq %%%s, %%rax\n", g.srcReg())
			sb.WriteString("\tret\n")
		case rng.IntN(3) == 0:
			// Conditional branch to a random later block.
			target := b + 1 + rng.IntN(nblocks-b-1)
			fmt.Fprintf(sb, "\tcmpq %%%s, %%%s\n", g.srcReg(), g.srcReg())
			fmt.Fprintf(sb, "\t%s .L%d_%d\n", condJumps[rng.IntN(len(condJumps))], idx, target)
		}
	}
}

// blockGen tracks dataflow locality: instructions prefer to read
// recently written registers, producing the connected dataflow slices
// real code exhibits.
type blockGen struct {
	rng     *rand.Rand
	written []asm.Reg
}

// srcReg picks a source register, biased toward recent writes.
func (g *blockGen) srcReg() string {
	if len(g.written) > 0 && g.rng.IntN(4) != 0 {
		// Recency bias: sample from the last few writes.
		k := len(g.written)
		lo := 0
		if k > 6 {
			lo = k - 6
		}
		return g.written[lo+g.rng.IntN(k-lo)].String()
	}
	return workRegs[g.rng.IntN(len(workRegs))].String()
}

// dstReg picks a destination register and records the write.
func (g *blockGen) dstReg() string {
	r := workRegs[g.rng.IntN(len(workRegs))]
	g.written = append(g.written, r)
	if len(g.written) > 64 {
		g.written = g.written[32:]
	}
	return r.String()
}

// reg32 converts a 64-bit register name to its 32-bit form.
func reg32(name string) string {
	r, _, _ := asm.ParseReg(name)
	return r.Name(32)
}

// imm draws a small-ish immediate with occasional large values.
func (g *blockGen) imm() string {
	switch g.rng.IntN(5) {
	case 0:
		return fmt.Sprintf("$%d", g.rng.IntN(16))
	case 1:
		return fmt.Sprintf("$%#x", 1<<uint(g.rng.IntN(16)))
	case 2:
		return fmt.Sprintf("$%d", -(1 + g.rng.IntN(64)))
	case 3:
		return fmt.Sprintf("$%#x", g.rng.Uint64()>>uint(32+g.rng.IntN(24)))
	default:
		return fmt.Sprintf("$%d", g.rng.IntN(256))
	}
}

// mem draws a memory operand: stack slot, rip-relative, or indexed.
func (g *blockGen) mem() string {
	switch g.rng.IntN(3) {
	case 0:
		return fmt.Sprintf("%d(%%rsp)", 8*g.rng.IntN(16))
	case 1:
		return fmt.Sprintf("%#x(%%rip)", 0x1000+g.rng.IntN(0x40000))
	default:
		return fmt.Sprintf("(%%%s,%%%s,%d)", g.srcReg(), g.srcReg(), []int{1, 2, 4, 8}[g.rng.IntN(4)])
	}
}

// inst generates one instruction with a compiler-like mnemonic mix.
func (g *blockGen) inst() string {
	r := g.rng.IntN(100)
	switch {
	case r < 14: // mov reg->reg
		src := g.srcReg()
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("movl %%%s, %%%s", reg32(src), reg32(g.dstReg()))
		}
		return fmt.Sprintf("movq %%%s, %%%s", src, g.dstReg())
	case r < 22: // mov imm->reg
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("movl %s, %%%s", g.imm(), reg32(g.dstReg()))
		}
		return fmt.Sprintf("movq %s, %%%s", g.imm(), g.dstReg())
	case r < 30: // load from memory
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("movl %s, %%%s", g.mem(), reg32(g.dstReg()))
		}
		return fmt.Sprintf("movq %s, %%%s", g.mem(), g.dstReg())
	case r < 34: // store to memory
		return fmt.Sprintf("movq %%%s, %s", g.srcReg(), g.mem())
	case r < 52: // two-operand ALU
		ops := []string{"add", "sub", "and", "or", "xor"}
		op := ops[g.rng.IntN(len(ops))]
		if g.rng.IntN(2) == 0 {
			if g.rng.IntN(3) == 0 {
				return fmt.Sprintf("%sl %s, %%%s", op, g.imm(), reg32(g.dstReg()))
			}
			return fmt.Sprintf("%sl %%%s, %%%s", op, reg32(g.srcReg()), reg32(g.dstReg()))
		}
		if g.rng.IntN(3) == 0 {
			return fmt.Sprintf("%sq %s, %%%s", op, g.imm(), g.dstReg())
		}
		return fmt.Sprintf("%sq %%%s, %%%s", op, g.srcReg(), g.dstReg())
	case r < 58: // shifts by immediate
		ops := []string{"shl", "shr", "sar"}
		op := ops[g.rng.IntN(len(ops))]
		sh := 1 + g.rng.IntN(31)
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("%sl $%d, %%%s", op, sh%32, reg32(g.dstReg()))
		}
		return fmt.Sprintf("%sq $%d, %%%s", op, sh, g.dstReg())
	case r < 64: // lea address arithmetic
		scale := []int{1, 2, 4, 8}[g.rng.IntN(4)]
		disp := g.rng.IntN(64)
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("leal %d(%%%s,%%%s,%d), %%%s",
				disp, g.srcReg(), g.srcReg(), scale, reg32(g.dstReg()))
		}
		return fmt.Sprintf("leaq %d(%%%s,%%%s,%d), %%%s",
			disp, g.srcReg(), g.srcReg(), scale, g.dstReg())
	case r < 68: // imul
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("imull %%%s, %%%s", reg32(g.srcReg()), reg32(g.dstReg()))
		}
		return fmt.Sprintf("imulq %%%s, %%%s", g.srcReg(), g.dstReg())
	case r < 73: // one-operand ALU
		ops := []string{"notq", "negq", "incq", "decq", "notl", "negl"}
		op := ops[g.rng.IntN(len(ops))]
		dst := g.dstReg()
		if strings.HasSuffix(op, "l") {
			return fmt.Sprintf("%s %%%s", op, reg32(dst))
		}
		return fmt.Sprintf("%s %%%s", op, dst)
	case r < 78: // extensions
		ops := []string{"movzbl", "movzwl", "movsbl", "movslq"}
		op := ops[g.rng.IntN(len(ops))]
		src := g.srcReg()
		dst := g.dstReg()
		sr, _, _ := asm.ParseReg(src)
		switch op {
		case "movzbl", "movsbl":
			return fmt.Sprintf("%s %%%s, %%%s", op, sr.Name(8), reg32(dst))
		case "movzwl":
			return fmt.Sprintf("%s %%%s, %%%s", op, sr.Name(16), reg32(dst))
		default: // movslq
			return fmt.Sprintf("movslq %%%s, %%%s", sr.Name(32), dst)
		}
	case r < 84: // compares and tests (flags only)
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("cmpq %%%s, %%%s", g.srcReg(), g.srcReg())
		}
		return fmt.Sprintf("testl %%%s, %%%s", reg32(g.srcReg()), reg32(g.srcReg()))
	case r < 88: // bit-manipulation extensions
		ops := []string{"popcntq", "lzcntq", "tzcntq"}
		op := ops[g.rng.IntN(len(ops))]
		return fmt.Sprintf("%s %%%s, %%%s", op, g.srcReg(), g.dstReg())
	case r < 94: // unsupported vector instructions (disassembler gaps)
		switch g.rng.IntN(3) {
		case 0:
			n := g.rng.IntN(8)
			return fmt.Sprintf("pxor %%xmm%d, %%xmm%d", n, n)
		case 1:
			return fmt.Sprintf("movsd %#x(%%rip), %%xmm%d", 0x2000+g.rng.IntN(0x40000), g.rng.IntN(8))
		default:
			return fmt.Sprintf("cvtsi2sd %%%s, %%xmm%d", g.srcReg(), g.rng.IntN(8))
		}
	case r < 97: // call (clobbers caller-saved registers)
		g.written = append(g.written, asm.RAX)
		return fmt.Sprintf("call helper_%d", g.rng.IntN(32))
	default: // rotates and bit test-and-modify
		if g.rng.IntN(2) == 0 {
			op := []string{"rolq", "rorq"}[g.rng.IntN(2)]
			return fmt.Sprintf("%s $%d, %%%s", op, 1+g.rng.IntN(63), g.dstReg())
		}
		op := []string{"btsq", "btrq", "btcq"}[g.rng.IntN(3)]
		return fmt.Sprintf("%s $%d, %%%s", op, g.rng.IntN(64), g.dstReg())
	}
}
