package corpus

import (
	"strings"
	"testing"

	"stochsyn/internal/asm"
)

func TestGenerateParses(t *testing.T) {
	src := Generate(Options{Functions: 50, Seed: 1})
	funcs, err := asm.ParseText(src)
	if err != nil {
		t.Fatalf("generated corpus does not parse: %v", err)
	}
	if len(funcs) != 50 {
		t.Errorf("parsed %d functions, want 50", len(funcs))
	}
	for _, f := range funcs {
		if len(f.Blocks) == 0 {
			t.Errorf("function %s has no blocks", f.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Options{Functions: 10, Seed: 42})
	b := Generate(Options{Functions: 10, Seed: 42})
	if a != b {
		t.Error("same seed produced different corpora")
	}
	c := Generate(Options{Functions: 10, Seed: 43})
	if a == c {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateEndsWithRet(t *testing.T) {
	src := Generate(Options{Functions: 20, Seed: 7})
	funcs, err := asm.ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range funcs {
		last := f.Blocks[len(f.Blocks)-1]
		if n := len(last.Insts); n == 0 || last.Insts[n-1].Mnemonic != "ret" {
			t.Errorf("function %s does not end with ret", f.Name)
		}
	}
}

func TestGenerateInstructionMix(t *testing.T) {
	src := Generate(Options{Functions: 100, Seed: 3})
	// The corpus must include the major instruction classes, including
	// unsupported vector instructions that exercise the pipeline's
	// lossy paths.
	for _, want := range []string{"movq", "movl", "addq", "leal", "shll", "imul", "xmm", "call", "cmpq", "movzbl"} {
		if !strings.Contains(src, want) {
			t.Errorf("corpus lacks %q instructions", want)
		}
	}
}

func TestGenerateYieldsFragments(t *testing.T) {
	src := Generate(Options{Functions: 60, Seed: 5})
	funcs, err := asm.ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range funcs {
		total += len(asm.Fragments(f, 2))
	}
	if total < 20 {
		t.Errorf("corpus produced only %d fragments", total)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{Functions: 1}
	d := o.defaults()
	if d.MaxBlocks <= 0 || d.MaxInsts <= 0 {
		t.Error("defaults not applied")
	}
	if o.MaxBlocks != 0 {
		t.Error("defaults mutated the receiver")
	}
}
