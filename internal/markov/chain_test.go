package markov

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"stochsyn/internal/restart"
	"stochsyn/internal/stats"
)

// twoState returns a simple chain: state 0 (cost 5) exits to the goal
// with probability p per step.
func twoState(p float64) *Chain {
	return &Chain{
		Costs: []float64{5, 0},
		Trans: [][]float64{
			{1 - p, p},
			{0, 0},
		},
		Start: 0,
	}
}

func TestValidate(t *testing.T) {
	if err := twoState(0.1).Validate(); err != nil {
		t.Error(err)
	}
	bad := twoState(0.1)
	bad.Trans[0][0] = 0.5 // row no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-stochastic row")
	}
	bad2 := twoState(0.1)
	bad2.Start = 7
	if err := bad2.Validate(); err == nil {
		t.Error("accepted out-of-range start")
	}
	empty := &Chain{}
	if err := empty.Validate(); err == nil {
		t.Error("accepted empty chain")
	}
	mislabeled := twoState(0.1)
	mislabeled.Labels = []string{"only-one"}
	if err := mislabeled.Validate(); err == nil {
		t.Error("accepted label/state count mismatch")
	}
}

func TestWalkAbsorbs(t *testing.T) {
	c := twoState(0.05)
	w := c.NewWalk(1)
	used, done := w.Step(1_000_000)
	if !done {
		t.Fatal("walk never absorbed")
	}
	if w.Cost() != 0 {
		t.Errorf("absorbed with cost %g", w.Cost())
	}
	if used <= 0 || w.Steps() != used {
		t.Errorf("used=%d steps=%d", used, w.Steps())
	}
	// Further steps are no-ops.
	if u, d := w.Step(100); u != 0 || !d {
		t.Error("Step after absorption did work")
	}
}

func TestWalkMeanMatchesTheory(t *testing.T) {
	// Mean absorption time of twoState(p) is 1/p.
	c := twoState(0.02)
	times := c.SampleAbsorption(3000, 1_000_000, 7)
	if len(times) != 3000 {
		t.Fatalf("only %d/3000 absorbed", len(times))
	}
	mean := stats.Mean(times)
	if mean < 40 || mean > 60 {
		t.Errorf("empirical mean %g, want ~50", mean)
	}
}

func TestAbsorbTimesLinearSolve(t *testing.T) {
	// Expected steps: state0 -> 1/p.
	c := twoState(0.1)
	times := c.AbsorbTimes()
	if !almostEq(times[0], 10, 1e-9) {
		t.Errorf("E[T0] = %g, want 10", times[0])
	}
	if times[1] != 0 {
		t.Errorf("goal E[T] = %g, want 0", times[1])
	}
}

func TestAbsorbTimesChainOfPlateaus(t *testing.T) {
	// A path 0 -> 1 -> goal with exit rates 0.1 then 0.05:
	// E[T0] = 10 + 20 = 30.
	c := &Chain{
		Costs: []float64{10, 5, 0},
		Trans: [][]float64{
			{0.9, 0.1, 0},
			{0, 0.95, 0.05},
			{0, 0, 0},
		},
		Start: 0,
	}
	times := c.AbsorbTimes()
	if !almostEq(times[0], 30, 1e-9) || !almostEq(times[1], 20, 1e-9) {
		t.Errorf("times = %v, want [30 20 0]", times)
	}
}

func TestAbsorbTimesUnreachable(t *testing.T) {
	// State 2 cannot reach the goal.
	c := &Chain{
		Costs: []float64{10, 0, 7},
		Trans: [][]float64{
			{0.5, 0.5, 0},
			{0, 0, 0},
			{0, 0, 1},
		},
		Start: 0,
	}
	times := c.AbsorbTimes()
	if !math.IsInf(times[2], 1) {
		t.Errorf("unreachable state E[T] = %g, want +Inf", times[2])
	}
	if !almostEq(times[0], 2, 1e-9) {
		t.Errorf("E[T0] = %g, want 2", times[0])
	}
}

func TestModelChainsShape(t *testing.T) {
	for _, c := range []*Chain{ModelChainA(), ModelChainB()} {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		times := c.AbsorbTimes()
		if math.IsInf(times[ModelStart], 1) {
			t.Error("start cannot reach goal")
		}
	}
	// In chain A the low-cost middle state is closer to the goal; in
	// chain B it is farther.
	ta := ModelChainA().AbsorbTimes()
	tb := ModelChainB().AbsorbTimes()
	if !(ta[ModelMidLow] < ta[ModelMidHigh]) {
		t.Errorf("chain A: E[low]=%g E[high]=%g, want low < high", ta[ModelMidLow], ta[ModelMidHigh])
	}
	if !(tb[ModelMidLow] > tb[ModelMidHigh]) {
		t.Errorf("chain B: E[low]=%g E[high]=%g, want low > high", tb[ModelMidLow], tb[ModelMidHigh])
	}
}

func TestAdaptiveVsLubyOnModelChains(t *testing.T) {
	// The Section 5.2.1 claim: adaptive beats Luby on chain (a) and
	// loses on chain (b). Means are estimated over repeated strategy
	// runs with a penalized-mean correction for timeouts.
	mean := func(c *Chain, spec string) float64 {
		strat := restart.MustNew(spec)
		var times []float64
		const trials = 30
		for i := 0; i < trials; i++ {
			res := strat.Run(c.Factory(uint64(i)*7919+1), 2_000_000)
			if res.Solved {
				times = append(times, float64(res.Iterations))
			}
		}
		return stats.PenalizedMean(times, trials, 2_000_000)
	}
	a, b := ModelChainA(), ModelChainB()
	lubyA, adaptA := mean(a, "luby:100"), mean(a, "adaptive:100")
	lubyB, adaptB := mean(b, "luby:100"), mean(b, "adaptive:100")
	if !(adaptA < lubyA) {
		t.Errorf("chain A: adaptive %g not faster than luby %g", adaptA, lubyA)
	}
	if !(adaptB > lubyB) {
		t.Errorf("chain B: adaptive %g not slower than luby %g", adaptB, lubyB)
	}
}

func TestFactoryDeterminism(t *testing.T) {
	c := ModelChainA()
	f := c.Factory(99)
	w1 := f(0)
	w2 := f(0)
	u1, d1 := w1.Step(10_000)
	u2, d2 := w2.Step(10_000)
	if u1 != u2 || d1 != d2 {
		t.Error("factory not deterministic per id")
	}
}

func TestPropertyWalkRespectsBudget(t *testing.T) {
	c := ModelChainA()
	f := func(seed uint64, budgetRaw uint16) bool {
		budget := int64(budgetRaw) + 1
		w := c.NewWalk(seed)
		used, _ := w.Step(budget)
		return used <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	c := ModelChainA()
	info := []StateInfo{
		{Canon: "start", Cost: 100, Visits: 100, ExpectedTime: 500},
		{Canon: "low", Cost: 10, Visits: 50, ExpectedTime: 100},
		{Canon: "high", Cost: 50, Visits: 50, ExpectedTime: math.Inf(1)},
		{Canon: "goal", Cost: 0, Visits: 1, ExpectedTime: 0},
	}
	if err := WriteDOT(&sb, c, info); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "style=dotted", "E[T]=inf", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestWriteDOTEscapes(t *testing.T) {
	var sb strings.Builder
	c := twoState(0.5)
	c.Labels = []string{`quo"te\back`, "goal"}
	if err := WriteDOT(&sb, c, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `quo\"te\\back`) {
		t.Error("DOT labels not escaped")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestJSONRoundTrip(t *testing.T) {
	c := ModelChainA()
	info := []StateInfo{
		{Canon: "start", Cost: 100, Visits: 10, ExpectedTime: 500},
		{Canon: "low", Cost: 10, Visits: 5, ExpectedTime: 100},
		{Canon: "high", Cost: 50, Visits: 5, ExpectedTime: 1000},
		{Canon: "goal", Cost: 0, Visits: 1, ExpectedTime: 0},
	}
	var buf strings.Builder
	if err := WriteJSON(&buf, c, info); err != nil {
		t.Fatal(err)
	}
	c2, info2, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() || c2.Start != c.Start {
		t.Error("chain shape changed")
	}
	for i := range c.Costs {
		if c2.Costs[i] != c.Costs[i] {
			t.Error("costs changed")
		}
		for j := range c.Trans[i] {
			if c2.Trans[i][j] != c.Trans[i][j] {
				t.Error("transitions changed")
			}
		}
	}
	if len(info2) != len(info) || info2[1].Canon != "low" {
		t.Error("state info changed")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("accepted malformed JSON")
	}
	// A non-stochastic chain must be rejected by validation.
	bad := `{"costs":[5,0],"transitions":[[0.5,0.1],[0,0]],"start":0}`
	if _, _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("accepted non-stochastic chain")
	}
}
