package markov

import (
	"fmt"
	"io"
	"math"
)

// WriteDOT renders the chain as a Graphviz digraph in the style of
// Figure 5 of the paper: node area scales with visit significance
// (when info is available), node labels carry the program, cost, and
// expected remaining synthesis time, edge width scales with traversal
// frequency, and edges into goal states are dotted. info may be nil
// when rendering a hand-built chain.
func WriteDOT(w io.Writer, c *Chain, info []StateInfo) error {
	var maxVisits int64 = 1
	for _, s := range info {
		if s.Visits > maxVisits {
			maxVisits = s.Visits
		}
	}
	if _, err := fmt.Fprintln(w, "digraph chain {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=ellipse, fontsize=10];")
	for i := range c.Costs {
		label := fmt.Sprintf("s%d", i)
		if c.Labels != nil {
			label = c.Labels[i]
		}
		extra := fmt.Sprintf("cost=%.3g", c.Costs[i])
		size := 0.8
		if info != nil {
			s := info[i]
			if math.IsInf(s.ExpectedTime, 1) {
				extra += ", E[T]=inf"
			} else {
				extra += fmt.Sprintf(", E[T]=%.3g", s.ExpectedTime)
			}
			// Area proportional to visit share, clamped to a readable
			// range.
			frac := float64(s.Visits) / float64(maxVisits)
			size = 0.5 + 1.5*math.Sqrt(frac)
		}
		shape := ""
		if c.Absorbing(i) {
			shape = ", peripheries=2"
		}
		start := ""
		if i == c.Start {
			start = ", style=bold"
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\\n%s\", width=%.2f%s%s];\n",
			i, dotEscape(label), extra, size, shape, start)
	}
	for i, row := range c.Trans {
		if c.Absorbing(i) {
			continue
		}
		for j, p := range row {
			if p == 0 || i == j {
				continue
			}
			style := ""
			if c.Absorbing(j) {
				style = ", style=dotted"
			}
			// Edge width proportional to probability mass on a log-ish
			// scale so rare exits stay visible.
			width := 0.3 + 4*math.Sqrt(p)
			fmt.Fprintf(w, "  n%d -> n%d [penwidth=%.2f, label=\"%.2g\"%s];\n",
				i, j, width, p, style)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func dotEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}
