package markov

import (
	"encoding/json"
	"fmt"
	"io"
)

// chainJSON is the serialized form of an estimated chain, including
// the per-state bookkeeping the experiments report.
type chainJSON struct {
	Costs  []float64   `json:"costs"`
	Trans  [][]float64 `json:"transitions"`
	Start  int         `json:"start"`
	Labels []string    `json:"labels,omitempty"`
	States []StateInfo `json:"states,omitempty"`
}

// WriteJSON serializes a chain (and optional per-state info) so
// external tooling can re-analyze or re-plot it.
func WriteJSON(w io.Writer, c *Chain, info []StateInfo) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chainJSON{
		Costs:  c.Costs,
		Trans:  c.Trans,
		Start:  c.Start,
		Labels: c.Labels,
		States: info,
	})
}

// ReadJSON reads a chain written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Chain, []StateInfo, error) {
	var cj chainJSON
	if err := json.NewDecoder(r).Decode(&cj); err != nil {
		return nil, nil, fmt.Errorf("markov: decode: %w", err)
	}
	c := &Chain{Costs: cj.Costs, Trans: cj.Trans, Start: cj.Start, Labels: cj.Labels}
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	if cj.States != nil && len(cj.States) != c.Len() {
		return nil, nil, fmt.Errorf("markov: %d states but %d info entries", c.Len(), len(cj.States))
	}
	return c, cj.States, nil
}
