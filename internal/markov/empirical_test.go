package markov

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/stats"
	"stochsyn/internal/testcase"
)

// modelSuite builds the or(shl(x), x) suite used throughout Section 4.
func modelSuite(t *testing.T) *testcase.Suite {
	t.Helper()
	ref := prog.MustParse("or(shl(x), x)", 1)
	rng := rand.New(rand.NewPCG(77, 78))
	return testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) }, 1, 16, rng)
}

func buildOpts(seed uint64) BuildOptions {
	return BuildOptions{
		Search: search.Options{
			Set:        prog.ModelSet,
			Cost:       cost.Hamming,
			Beta:       1,
			Redundancy: true,
			Seed:       seed,
		},
		Trials:   40,
		MaxIters: 200_000,
		TopK:     35,
	}
}

func TestBuildEmpirical(t *testing.T) {
	suite := modelSuite(t)
	emp, err := Build(suite, buildOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := emp.Chain.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(emp.States) < 10 {
		t.Errorf("only %d popular states", len(emp.States))
	}
	if emp.Coverage <= 0.3 {
		t.Errorf("popular-state coverage %g suspiciously low", emp.Coverage)
	}
	if emp.Solved == 0 {
		t.Error("no trials solved the model problem")
	}
	// The start state (constant zero) must be present and transient.
	start := emp.Chain.Start
	if emp.Chain.Absorbing(start) {
		t.Error("start state is absorbing")
	}
	// At least one absorbing (cost 0) state must exist.
	hasGoal := false
	for i := range emp.Chain.Costs {
		if emp.Chain.Absorbing(i) {
			hasGoal = true
		}
	}
	if !hasGoal {
		t.Error("no absorbing goal state in the estimated chain")
	}
}

func TestBuildDeterministic(t *testing.T) {
	suite := modelSuite(t)
	a, err := Build(suite, buildOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(suite, buildOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.States) != len(b.States) || a.Coverage != b.Coverage {
		t.Error("Build is not deterministic for equal seeds")
	}
}

func TestEmpiricalPredictsMeasured(t *testing.T) {
	// The Figure 4 claim: absorption times sampled from the estimated
	// chain approximate the real distribution of synthesis times. We
	// check that the means agree within a factor of two (the paper
	// shows close visual agreement).
	suite := modelSuite(t)
	opts := buildOpts(5)
	emp, err := Build(suite, opts)
	if err != nil {
		t.Fatal(err)
	}
	var measured []float64
	for i := 0; i < 40; i++ {
		o := opts.Search
		o.Seed = 1000 + uint64(i)*31
		r := search.New(suite, o)
		if used, done := r.Step(opts.MaxIters); done {
			measured = append(measured, float64(used))
		}
	}
	predicted := emp.Chain.SampleAbsorption(200, opts.MaxIters, 321)
	if len(measured) < 20 || len(predicted) < 100 {
		t.Fatalf("too few samples: measured %d predicted %d", len(measured), len(predicted))
	}
	mm, pm := stats.Mean(measured), stats.Mean(predicted)
	if ratio := mm / pm; ratio < 0.5 || ratio > 2 {
		t.Errorf("measured mean %g vs predicted %g (ratio %g)", mm, pm, ratio)
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	suite := modelSuite(t)
	bad := buildOpts(1)
	bad.Trials = 0
	if _, err := Build(suite, bad); err == nil {
		t.Error("accepted zero trials")
	}
	bad = buildOpts(1)
	bad.TopK = 0
	if _, err := Build(suite, bad); err == nil {
		t.Error("accepted zero TopK")
	}
}

func TestStateInfoExpectedTimes(t *testing.T) {
	suite := modelSuite(t)
	emp, err := Build(suite, buildOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	// Goal states have expected time 0; the start state has a
	// positive finite expected time (the problem is solvable).
	for _, s := range emp.States {
		if s.Cost == 0 && s.ExpectedTime != 0 {
			t.Errorf("goal state %q has E[T] = %g", s.Canon, s.ExpectedTime)
		}
	}
	start := emp.States[emp.Chain.Start]
	if !(start.ExpectedTime > 0) {
		t.Errorf("start state E[T] = %g, want > 0", start.ExpectedTime)
	}
}
