package markov

import (
	"fmt"
	"sort"

	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// StateInfo describes one popular state of an empirical chain.
type StateInfo struct {
	// Canon is the canonical program for the state.
	Canon string
	// Cost is the state's cost under the analysis's cost function.
	Cost float64
	// Visits is the number of iterations spent in the state across all
	// trials.
	Visits int64
	// ExpectedTime is the expected number of steps to absorption from
	// this state under the estimated chain (+Inf if it cannot reach
	// a goal state within the popular set).
	ExpectedTime float64
}

// Empirical is a popular-state Markov chain estimated from real
// synthesis runs, following Section 4 of the paper: the most
// frequently visited states are retained and transition probabilities
// are estimated conditioned on staying within that popular set. The
// imprecision of ignoring rarer states is small when their aggregate
// probability is low, as is the case for the model problems.
type Empirical struct {
	States []StateInfo
	Chain  *Chain
	// Coverage is the fraction of all state visits that fall in the
	// popular set, a diagnostic of how faithful the reduced chain is.
	Coverage float64
	// Trials and Solved count the synthesis runs used for estimation.
	Trials, Solved int
}

// BuildOptions configures empirical chain estimation.
type BuildOptions struct {
	// Search configures the underlying synthesis runs (dialect, cost
	// function, beta, redundancy move, base seed).
	Search search.Options
	// Trials is the number of synthesis runs to observe.
	Trials int
	// MaxIters bounds each run.
	MaxIters int64
	// TopK is the number of popular states to retain (the paper
	// uses 35).
	TopK int
}

// Build estimates an empirical popular-state chain for a synthesis
// problem. It makes two passes with identical seeds: the first counts
// state visits to select the popular set, the second records
// transitions between popular states.
func Build(suite *testcase.Suite, opts BuildOptions) (*Empirical, error) {
	if opts.Trials <= 0 || opts.MaxIters <= 0 || opts.TopK <= 0 {
		return nil, fmt.Errorf("markov: Trials, MaxIters, and TopK must be positive")
	}

	// Pass 1: visit counts. The hook canonizes the current program
	// each iteration; maps are capped to keep pathological problems
	// bounded.
	const maxTracked = 1 << 17
	visits := make(map[string]int64)
	costOf := make(map[string]float64)
	finals := make(map[string]bool)

	runTrial := func(trial int, hook func(p *prog.Program)) (*search.Run, bool) {
		o := opts.Search
		o.Seed = opts.Search.Seed ^ uint64(trial+1)*0x9e3779b97f4a7c15
		o.StateHook = hook
		r := search.New(suite, o)
		_, done := r.Step(opts.MaxIters)
		return r, done
	}

	var scratchVals [prog.MaxNodes]uint64
	solved := 0
	for t := 0; t < opts.Trials; t++ {
		r, done := runTrial(t, func(p *prog.Program) {
			key := p.Canon()
			if _, ok := visits[key]; !ok && len(visits) >= maxTracked {
				return
			}
			visits[key]++
			if _, ok := costOf[key]; !ok {
				costOf[key] = opts.Search.Cost.Of(p, suite, scratchVals[:])
			}
		})
		if done {
			solved++
			finals[r.Solution().Canon()] = true
		}
	}
	if len(visits) == 0 {
		return nil, fmt.Errorf("markov: no states observed")
	}

	// Popular set: top-K by visits, plus every observed final state so
	// the chain has its absorbing goal(s).
	type kv struct {
		key string
		n   int64
	}
	all := make([]kv, 0, len(visits))
	var totalVisits int64
	for k, n := range visits {
		all = append(all, kv{k, n})
		totalVisits += n
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].key < all[j].key
	})
	index := make(map[string]int)
	var states []StateInfo
	addState := func(key string) {
		if _, ok := index[key]; ok {
			return
		}
		index[key] = len(states)
		states = append(states, StateInfo{Canon: key, Cost: costOf[key], Visits: visits[key]})
	}
	for i := 0; i < len(all) && i < opts.TopK; i++ {
		addState(all[i].key)
	}
	for k := range finals {
		addState(k)
	}
	// The start state is part of every trajectory (Figure 5 plots it
	// as the leftmost node) but often gets too few visits to rank;
	// include it explicitly.
	startProg := prog.NewZero(suite.NumInputs)
	if opts.Search.Init != nil {
		startProg = opts.Search.Init
	}
	if startKey := startProg.Canon(); visits[startKey] > 0 {
		addState(startKey)
	}

	var popularVisits int64
	for i := range states {
		popularVisits += states[i].Visits
	}

	// Pass 2: transition counts between popular states, conditioned on
	// staying within the set. Reruns use the same seeds, so the
	// trajectories are identical to pass 1.
	n := len(states)
	counts := make([][]int64, n)
	for i := range counts {
		counts[i] = make([]int64, n)
	}
	for t := 0; t < opts.Trials; t++ {
		prev := -1
		runTrial(t, func(p *prog.Program) {
			key := p.Canon()
			cur, ok := index[key]
			if !ok {
				prev = -1 // left the popular set; restart conditioning
				return
			}
			if prev >= 0 {
				counts[prev][cur]++
			}
			prev = cur
		})
	}

	// Normalize rows into a stochastic matrix. Goal states keep their
	// (ignored) rows zero; dangling transient rows become self-loops.
	trans := make([][]float64, n)
	costs := make([]float64, n)
	labels := make([]string, n)
	for i := range states {
		costs[i] = states[i].Cost
		labels[i] = states[i].Canon
		trans[i] = make([]float64, n)
		if costs[i] == 0 {
			continue
		}
		var row int64
		for j := 0; j < n; j++ {
			row += counts[i][j]
		}
		if row == 0 {
			trans[i][i] = 1
			continue
		}
		for j := 0; j < n; j++ {
			trans[i][j] = float64(counts[i][j]) / float64(row)
		}
	}

	// Start state: the constant-zero program (or the configured Init),
	// added to the popular set above.
	startIdx, ok := index[startProg.Canon()]
	if !ok {
		return nil, fmt.Errorf("markov: start state %q never observed", startProg.Canon())
	}

	chain := &Chain{Costs: costs, Trans: trans, Start: startIdx, Labels: labels}
	if err := chain.Validate(); err != nil {
		return nil, err
	}
	times := chain.AbsorbTimes()
	for i := range states {
		states[i].ExpectedTime = times[i]
	}
	return &Empirical{
		States:   states,
		Chain:    chain,
		Coverage: float64(popularVisits) / float64(totalVisits),
		Trials:   opts.Trials,
		Solved:   solved,
	}, nil
}
