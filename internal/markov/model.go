package markov

// This file defines the two model Markov chains of Figure 10 of the
// paper, used to demonstrate when the adaptive algorithm outperforms
// classic Luby (costs correlate with time-to-finish) and when it is
// hurt (the correlation is reversed).
//
// The figure's topology: a start state that transitions to one of two
// middle states, each of which can transition to the goal; there are
// no transitions between middle states or back to the start. The
// chains are symmetric except for the costs of the middle states and
// their probabilities of finishing. In chain (a) the lower-cost middle
// state is 10x more likely to reach the goal per step; in chain (b)
// the probabilities are swapped so that low cost does not predict
// proximity to the goal (the situation of the upper-right plateau of
// Figure 5).
//
// The paper's figure prints concrete transition probabilities that are
// not recoverable from the text; the constants below are a faithful
// reconstruction of the described structure: the start state leaves
// quickly and splits evenly, and the middle states' exit rates differ
// by the stated factor of 10. The qualitative claim (adaptive beats
// Luby on (a), loses on (b)) is insensitive to the exact rates; the
// experiment for Figure 10 reports the measured percentages alongside
// the paper's 31%/46%.

// Model chain state layout.
const (
	ModelStart   = iota
	ModelMidLow  // the middle state with the LOWER cost
	ModelMidHigh // the middle state with the HIGHER cost
	ModelGoal
	modelStates
)

// Per-step transition rates of the model chains.
const (
	modelLeaveStart = 0.02   // probability per step of leaving the start state
	modelFastExit   = 0.001  // per-step goal probability of the "close" middle state
	modelSlowExit   = 0.0001 // per-step goal probability of the "far" middle state
)

// modelChain builds the shared topology; lowIsFast selects whether the
// low-cost middle state is the one with the fast exit.
func modelChain(lowIsFast bool) *Chain {
	costs := make([]float64, modelStates)
	costs[ModelStart] = 100
	costs[ModelMidLow] = 10
	costs[ModelMidHigh] = 50
	costs[ModelGoal] = 0

	fastState, slowState := ModelMidLow, ModelMidHigh
	if !lowIsFast {
		fastState, slowState = ModelMidHigh, ModelMidLow
	}

	t := make([][]float64, modelStates)
	for i := range t {
		t[i] = make([]float64, modelStates)
	}
	t[ModelStart][ModelMidLow] = modelLeaveStart / 2
	t[ModelStart][ModelMidHigh] = modelLeaveStart / 2
	t[ModelStart][ModelStart] = 1 - modelLeaveStart
	t[fastState][ModelGoal] = modelFastExit
	t[fastState][fastState] = 1 - modelFastExit
	t[slowState][ModelGoal] = modelSlowExit
	t[slowState][slowState] = 1 - modelSlowExit

	labels := make([]string, modelStates)
	labels[ModelStart] = "start(c=100)"
	labels[ModelMidLow] = "mid-low(c=10)"
	labels[ModelMidHigh] = "mid-high(c=50)"
	labels[ModelGoal] = "goal(c=0)"

	return &Chain{Costs: costs, Trans: t, Start: ModelStart, Labels: labels}
}

// ModelChainA returns the Figure 10(a) chain, where cost aligns with
// the probability of finishing: the low-cost middle state is 10x more
// likely to reach the goal. The adaptive algorithm outperforms Luby
// here.
func ModelChainA() *Chain { return modelChain(true) }

// ModelChainB returns the Figure 10(b) chain, where the correlation is
// reversed: the low-cost state is the one that rarely finishes. The
// adaptive algorithm spends its effort on the wrong searches and loses
// to Luby here.
func ModelChainB() *Chain { return modelChain(false) }
