// Package markov provides the Markov-chain machinery of Sections 3.3,
// 4, and 5.2.1 of the paper: explicit finite chains with per-state
// costs (including the two model chains of Figure 10), chain walks
// that implement the search.Search interface so restart strategies can
// be run on them directly, estimation of an empirical popular-state
// chain from real synthesis runs (Figures 4 and 5), expected
// absorption times, and DOT export of the state transition diagram.
package markov

import (
	"fmt"
	"math"
	"math/rand/v2"

	"stochsyn/internal/search"
)

// Chain is a finite Markov chain with a cost attached to each state.
// States with cost zero are absorbing: reaching one ends the search
// (Section 3.3). Trans must be row-stochastic; rows of absorbing
// states are ignored.
type Chain struct {
	// Costs holds the cost of each state; zero marks absorbing goal
	// states.
	Costs []float64
	// Trans is the transition matrix: Trans[i][j] is the probability
	// of moving from state i to state j (including self-loops).
	Trans [][]float64
	// Start is the initial state.
	Start int
	// Labels optionally names the states (canonical programs for
	// empirical chains).
	Labels []string
}

// Validate checks the chain's shape and stochasticity (rows of
// non-absorbing states must sum to 1 within tolerance).
func (c *Chain) Validate() error {
	n := len(c.Costs)
	if n == 0 {
		return fmt.Errorf("markov: empty chain")
	}
	if len(c.Trans) != n {
		return fmt.Errorf("markov: %d states but %d transition rows", n, len(c.Trans))
	}
	if c.Start < 0 || c.Start >= n {
		return fmt.Errorf("markov: start state %d out of range", c.Start)
	}
	if c.Labels != nil && len(c.Labels) != n {
		return fmt.Errorf("markov: %d states but %d labels", n, len(c.Labels))
	}
	for i, row := range c.Trans {
		if len(row) != n {
			return fmt.Errorf("markov: row %d has %d entries, want %d", i, len(row), n)
		}
		if c.Costs[i] == 0 {
			continue
		}
		sum := 0.0
		for j, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("markov: transition [%d][%d] = %g out of range", i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("markov: row %d sums to %g, want 1", i, sum)
		}
	}
	return nil
}

// Len returns the number of states.
func (c *Chain) Len() int { return len(c.Costs) }

// Absorbing reports whether state i is absorbing (cost zero).
func (c *Chain) Absorbing(i int) bool { return c.Costs[i] == 0 }

// Walk is a random walk on a chain; it implements search.Search, with
// one chain step per iteration.
type Walk struct {
	chain *Chain
	rng   *rand.Rand
	state int
	steps int64
	done  bool
}

var _ search.Search = (*Walk)(nil)

// NewWalk starts a walk at the chain's start state.
func (c *Chain) NewWalk(seed uint64) *Walk {
	w := &Walk{chain: c, rng: rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb)), state: c.Start}
	w.done = c.Absorbing(w.state)
	return w
}

// Factory returns a search.Factory producing independent walks, so
// restart strategies can be evaluated on model chains exactly as on
// real synthesis searches (Section 5.2.1).
func (c *Chain) Factory(baseSeed uint64) search.Factory {
	return func(id uint64) search.Search {
		return c.NewWalk(baseSeed ^ (id+1)*0x9e3779b97f4a7c15)
	}
}

// Step implements search.Search.
func (w *Walk) Step(budget int64) (int64, bool) {
	if w.done || budget <= 0 {
		return 0, w.done
	}
	row := w.chain.Trans[w.state]
	var used int64
	for used < budget {
		used++
		w.steps++
		u := w.rng.Float64()
		acc := 0.0
		next := w.state
		for j, p := range row {
			acc += p
			if u < acc {
				next = j
				break
			}
		}
		if next != w.state {
			w.state = next
			if w.chain.Absorbing(next) {
				w.done = true
				return used, true
			}
			row = w.chain.Trans[w.state]
		}
	}
	return used, false
}

// Cost implements search.Search.
func (w *Walk) Cost() float64 { return w.chain.Costs[w.state] }

// State returns the current state index.
func (w *Walk) State() int { return w.state }

// Steps returns the number of steps taken.
func (w *Walk) Steps() int64 { return w.steps }

// SampleAbsorption runs n independent walks, each for at most maxSteps
// steps, and returns the absorption times of the walks that finished.
func (c *Chain) SampleAbsorption(n int, maxSteps int64, seed uint64) []float64 {
	var times []float64
	for i := 0; i < n; i++ {
		w := c.NewWalk(seed ^ uint64(i+1)*0xbf58476d1ce4e5b9)
		used, done := w.Step(maxSteps)
		if done {
			times = append(times, float64(used))
		}
	}
	return times
}

// AbsorbTimes returns the expected number of steps to reach an
// absorbing state from each state, computed by solving the linear
// system (I - Q) t = 1 over the transient states that can reach an
// absorbing state. States that cannot reach absorption get +Inf.
func (c *Chain) AbsorbTimes() []float64 {
	n := c.Len()
	// Reachability to absorbing states over the reversed graph.
	canReach := make([]bool, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if c.Absorbing(i) {
			canReach[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for i := 0; i < n; i++ {
			if !canReach[i] && c.Trans[i][j] > 0 {
				canReach[i] = true
				queue = append(queue, i)
			}
		}
	}

	// Index the transient reachable states.
	idx := make([]int, n)
	var tstates []int
	for i := 0; i < n; i++ {
		idx[i] = -1
		if canReach[i] && !c.Absorbing(i) {
			idx[i] = len(tstates)
			tstates = append(tstates, i)
		}
	}
	m := len(tstates)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		switch {
		case c.Absorbing(i):
			out[i] = 0
		case !canReach[i]:
			out[i] = math.Inf(1)
		}
	}
	if m == 0 {
		return out
	}

	// Build (I - Q) | 1 and solve by Gaussian elimination with
	// partial pivoting. Transitions to unreachable states are dropped,
	// which conditions the expectation on eventual absorption.
	a := make([][]float64, m)
	for r, i := range tstates {
		a[r] = make([]float64, m+1)
		a[r][r] = 1
		for s, j := range tstates {
			a[r][s] -= c.Trans[i][j]
		}
		a[r][m] = 1
	}
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-14 {
			// Degenerate (should not happen for a reachable transient
			// set); mark affected states infinite.
			for _, i := range tstates {
				out[i] = math.Inf(1)
			}
			return out
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for s := col; s <= m; s++ {
				a[r][s] -= f * a[col][s]
			}
		}
	}
	for r, i := range tstates {
		out[i] = a[r][m] / a[r][r]
	}
	return out
}
