package mutate

import (
	"fmt"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
)

// debugChecks gates the post-move invariant checker. Off by default:
// the check walks the whole graph and would dominate the proposal
// cost in the search's hot loop. Enable it with SetDebugChecks (tests,
// bug hunts) or build with -tags stochsyndebug to switch it on for a
// whole binary.
var debugChecks bool

// SetDebugChecks toggles the post-move invariant gate: with it on,
// every successfully applied move re-validates the program's
// structural invariants (acyclicity, no dead code, size limits, zeroed
// unused operand slots) and panics with the offending move and program
// on a violation — a mutator bug, never a legitimate runtime state.
//
// The toggle is process-global and not synchronized; set it before
// starting searches, not while they run.
func SetDebugChecks(on bool) { debugChecks = on }

// DebugChecks reports whether the post-move invariant gate is on.
func DebugChecks() bool { return debugChecks }

// checkMove is called by ApplyMove after a move reports success.
func checkMove(p *prog.Program, mv Move) {
	if err := analysis.Check(p); err != nil {
		panic(fmt.Sprintf("mutate: %s move produced an invalid program: %v\n  program: %s", mv, err, p))
	}
}
