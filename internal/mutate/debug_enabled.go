//go:build stochsyndebug

package mutate

// Building with -tags stochsyndebug turns the post-move invariant gate
// on for the whole binary; see SetDebugChecks.
func init() { debugChecks = true }
