// Package mutate implements the proposal moves of the stochastic
// search (Sections 3.2 and 4 of the paper):
//
//  1. Instruction: point a random argument slot (or the root slot) at
//     a freshly generated instruction whose arguments are random
//     existing nodes (without creating cycles) or random constants.
//  2. Opcode: replace a random instruction node's opcode with a random
//     opcode of the same arity.
//  3. Operand: point a random argument slot (or the root slot) at a
//     random existing node that does not create a cycle.
//  4. Redundancy (model dialect): merge a random pair of instruction
//     nodes that agree on a randomly chosen subset of test cases by
//     redirecting incoming edges from one node to the other.
//
// Each move selects uniformly among its valid options. A move proposal
// may be invalid (for example when it would exceed the program size
// limit); the search counts the iteration and retains the current
// program, matching the is_valid check in Figure 3.
package mutate

import (
	"math/bits"
	"math/rand/v2"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// Move identifies a move type, for tracing and ablation experiments.
type Move uint8

const (
	MoveInstruction Move = iota
	MoveOpcode
	MoveOperand
	MoveRedundancy

	numMoves
)

// String names the move.
func (m Move) String() string {
	switch m {
	case MoveInstruction:
		return "instruction"
	case MoveOpcode:
		return "opcode"
	case MoveOperand:
		return "operand"
	case MoveRedundancy:
		return "redundancy"
	}
	return "move(?)"
}

// Mutator proposes random changes to programs over a fixed dialect and
// test suite. The suite is only consulted by the redundancy move
// (which compares node values on test inputs); it may be nil when
// redundancy is disabled.
type Mutator struct {
	set        *prog.OpSet
	suite      *testcase.Suite
	moves      []Move
	redundancy bool

	// es, when bound (BindEval), serves the redundancy move's
	// signature probes from the engine's committed value columns
	// instead of re-evaluating the program per probe. Optional.
	es Eval

	// cum holds the cumulative move-selection distribution aligned
	// with moves; nil means uniform.
	cum []float64

	// scratch buffers reused across proposals.
	vals [prog.MaxNodes]uint64
	sig  [prog.MaxNodes][redundancyProbes]uint64
}

// redundancyProbes is the number of test cases sampled by the
// redundancy move when comparing node values.
const redundancyProbes = 4

// New returns a Mutator for the dialect. If redundancy is true the
// redundancy move is enabled and suite must be non-nil; otherwise the
// baseline three-move set is used.
func New(set *prog.OpSet, suite *testcase.Suite, redundancy bool) *Mutator {
	if redundancy && suite == nil {
		panic("mutate: redundancy move requires a test suite")
	}
	m := &Mutator{set: set, suite: suite, redundancy: redundancy}
	m.moves = []Move{MoveInstruction, MoveOpcode, MoveOperand}
	if redundancy {
		m.moves = append(m.moves, MoveRedundancy)
	}
	return m
}

// Moves returns the enabled move types.
func (m *Mutator) Moves() []Move { return m.moves }

// Eval is the committed-value-matrix view the redundancy move reads
// its signature probes from. Both the interpreted engine
// (prog.EvalState) and the compiled plan engine (plan.State) satisfy
// it.
type Eval interface {
	// Program returns the program the committed columns describe.
	Program() *prog.Program
	// CaseValues writes the committed value of every program node on
	// suite case c into dst.
	CaseValues(c int, dst []uint64)
}

// BindEval attaches the incremental evaluation engine whose committed
// columns describe the programs this mutator will be applied to. The
// redundancy move then reads its signature probes straight from the
// value matrix — the values are identical to a fresh evaluation, so
// binding never changes proposals, only their cost. Pass nil to detach
// (the legacy reference path evaluates per probe); callers must pass
// an untyped nil, never a nil concrete engine pointer.
func (m *Mutator) BindEval(es Eval) { m.es = es }

// SetWeights installs a non-uniform move-selection distribution (the
// paper uses uniform; STOKE-style implementations expose this as a
// tuning knob, and the ablation benchmarks use it). Weights apply to
// the enabled moves by type; missing or non-positive entries get
// weight zero. It panics if no enabled move has positive weight.
func (m *Mutator) SetWeights(weights map[Move]float64) {
	cum := make([]float64, len(m.moves))
	total := 0.0
	for i, mv := range m.moves {
		w := weights[mv]
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total <= 0 {
		panic("mutate: no enabled move has positive weight")
	}
	for i := range cum {
		cum[i] /= total
	}
	m.cum = cum
}

// pick draws a move according to the configured distribution.
func (m *Mutator) pick(rng *rand.Rand) Move {
	if m.cum == nil {
		return m.moves[rng.IntN(len(m.moves))]
	}
	u := rng.Float64()
	for i, c := range m.cum {
		if u < c {
			return m.moves[i]
		}
	}
	return m.moves[len(m.moves)-1]
}

// Apply proposes one random change to p in place, choosing the move
// type according to the selection distribution (uniform by default).
// It returns the move chosen and whether the proposal was valid; when
// invalid, p is unchanged.
func (m *Mutator) Apply(p *prog.Program, rng *rand.Rand) (Move, bool) {
	mv := m.pick(rng)
	return mv, m.ApplyMove(p, mv, rng)
}

// ApplyMove proposes one change of the given move type. It returns
// false (leaving p unchanged) when the move has no valid option.
//
// With the debug gate on (SetDebugChecks, or the stochsyndebug build
// tag), every successful move is followed by a full invariant check of
// the mutated program; a violation panics, naming the move.
func (m *Mutator) ApplyMove(p *prog.Program, mv Move, rng *rand.Rand) bool {
	var ok bool
	switch mv {
	case MoveInstruction:
		ok = m.instruction(p, rng)
	case MoveOpcode:
		ok = m.opcode(p, rng)
	case MoveOperand:
		ok = m.operand(p, rng)
	case MoveRedundancy:
		ok = m.merge(p, rng)
	}
	if ok && debugChecks {
		checkMove(p, mv)
	}
	return ok
}

// slot identifies an argument position: node/arg for instruction
// arguments, or node == -1 for the root slot.
type slot struct {
	node int32
	arg  int
}

// randomSlot picks a uniformly random argument slot including the root
// slot. There is always at least one slot (the root).
func randomSlot(p *prog.Program, rng *rand.Rand) slot {
	total := 1 + p.ArityTotal() // arg slots plus the root slot
	k := rng.IntN(total)
	if k == 0 {
		return slot{node: -1}
	}
	k--
	for i := range p.Nodes {
		ar := p.Nodes[i].Op.Arity()
		if k < ar {
			return slot{node: int32(i), arg: k}
		}
		k -= ar
	}
	panic("mutate: slot enumeration out of sync")
}

// setSlot points the slot at node v and restores the no-dead-code
// invariant. All writes go through the journaling mutators so that an
// in-place proposal can be rolled back exactly.
func setSlot(p *prog.Program, s slot, v int32) {
	if s.node < 0 {
		p.SetRoot(v)
	} else {
		p.SetArg(s.node, s.arg, v)
	}
	p.GC()
}

// validTargetMask returns the bitmask of nodes that the slot may
// point at without creating a cycle: for the root slot every node; for
// an argument slot of node u, every node from which u is unreachable —
// the complement of u's ancestor mask. Moves draw uniformly from the
// mask via nthSetBit; because set bits enumerate in ascending index
// order, the selection matches indexing the old sorted target slice
// exactly, with the same RNG draws.
func validTargetMask(p *prog.Program, s slot) uint64 {
	all := uint64(1)<<uint(len(p.Nodes)) - 1
	if s.node < 0 {
		return all
	}
	return all &^ p.Ancestors(s.node)
}

// nthSetBit returns the index of the k-th set bit of mask (k zero-
// based, counting from the least significant bit). mask must have more
// than k bits set.
func nthSetBit(mask uint64, k int) int32 {
	for ; k > 0; k-- {
		mask &= mask - 1
	}
	return int32(bits.TrailingZeros64(mask))
}

// instruction implements the instruction move.
func (m *Mutator) instruction(p *prog.Program, rng *rand.Rand) bool {
	s := randomSlot(p, rng)
	op := m.set.RandomOp(rng)

	valid := validTargetMask(p, s)
	nvalid := bits.OnesCount64(valid)

	// Build the new node, materializing constants as needed. Each
	// argument independently chooses between a random existing node
	// and a fresh random constant with equal probability.
	newNode := prog.Node{Op: op}
	var consts [prog.MaxArity]uint64
	nconsts := 0
	for a := 0; a < op.Arity(); a++ {
		if nvalid > 0 && rng.IntN(2) == 0 {
			newNode.Args[a] = nthSetBit(valid, rng.IntN(nvalid))
		} else {
			newNode.Args[a] = int32(len(p.Nodes) + 1 + nconsts) // placeholder past new node
			consts[nconsts] = m.set.RandomConst(rng)
			nconsts++
		}
	}
	if p.BodyLen()+1+nconsts > prog.MaxBody {
		return false
	}
	newIdx := p.AppendNode(newNode)
	for _, cv := range consts[:nconsts] {
		p.AppendNode(prog.Node{Op: prog.OpConst, Val: cv})
	}
	setSlot(p, s, newIdx)
	return true
}

// opcode implements the opcode move.
func (m *Mutator) opcode(p *prog.Program, rng *rand.Rand) bool {
	var instrs [prog.MaxNodes]int32
	cand := instrs[:0]
	for i := range p.Nodes {
		if p.Nodes[i].Op.IsInstruction() {
			cand = append(cand, int32(i))
		}
	}
	if len(cand) == 0 {
		return false
	}
	i := cand[rng.IntN(len(cand))]
	op, ok := m.set.RandomOpArity(rng, p.Nodes[i].Op.Arity())
	if !ok {
		return false
	}
	// SetOp keeps the cached topological order warm: the swap is
	// arity-preserving, so the edge set is unchanged.
	p.SetOp(i, op)
	return true
}

// operand implements the operand move.
func (m *Mutator) operand(p *prog.Program, rng *rand.Rand) bool {
	s := randomSlot(p, rng)
	valid := validTargetMask(p, s)
	nvalid := bits.OnesCount64(valid)
	if nvalid == 0 {
		return false
	}
	setSlot(p, s, nthSetBit(valid, rng.IntN(nvalid)))
	return true
}

// merge implements the redundancy move: it samples a few test cases,
// evaluates every node on them, and merges a random pair of
// instruction nodes with identical sampled values by redirecting the
// incoming edges of one to the other. The move is rejected if any
// redirect would create a cycle.
func (m *Mutator) merge(p *prog.Program, rng *rand.Rand) bool {
	n := len(p.Nodes)
	if n < 2 || m.suite.Len() == 0 {
		return false
	}
	// Sample the random subset of test cases to compare on.
	probes := redundancyProbes
	if probes > m.suite.Len() {
		probes = m.suite.Len()
	}
	for k := 0; k < probes; k++ {
		ci := rng.IntN(m.suite.Len())
		if m.es != nil && m.es.Program() == p {
			// The engine's committed columns hold exactly the values a
			// fresh evaluation of p would compute; read the probe case's
			// row instead of re-evaluating the whole program.
			m.es.CaseValues(ci, m.vals[:n])
		} else {
			prog.EvalInto(p, m.suite.Cases[ci].Inputs, m.vals[:n])
		}
		for i := 0; i < n; i++ {
			m.sig[i][k] = m.vals[i]
		}
	}

	// Collect pairs of distinct instruction nodes with equal sampled
	// signatures.
	type pair struct{ from, to int32 }
	var pairBuf [prog.MaxNodes * (prog.MaxNodes - 1) / 2]pair
	pairs := pairBuf[:0]
	for i := 0; i < n; i++ {
		if !p.Nodes[i].Op.IsInstruction() {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !p.Nodes[j].Op.IsInstruction() {
				continue
			}
			eq := true
			for k := 0; k < probes; k++ {
				if m.sig[i][k] != m.sig[j][k] {
					eq = false
					break
				}
			}
			if eq {
				pairs = append(pairs, pair{int32(i), int32(j)})
			}
		}
	}
	if len(pairs) == 0 {
		return false
	}
	pr := pairs[rng.IntN(len(pairs))]
	from, to := pr.from, pr.to
	if rng.IntN(2) == 0 {
		from, to = to, from
	}
	// Redirecting an edge u->from to u->to creates a cycle iff u is
	// reachable from to; in particular it always does when u is on the
	// path from "to" down to its arguments. Reject the move in that
	// case rather than producing an invalid program. One DFS from
	// "to" classifies every candidate u at once.
	reach := p.ReachableFrom(to)
	for i := 0; i < n; i++ {
		nd := &p.Nodes[i]
		for a := 0; a < nd.Op.Arity(); a++ {
			if nd.Args[a] == from && reach&(uint64(1)<<uint(i)) != 0 {
				return false
			}
		}
	}
	for i := 0; i < n; i++ {
		nd := &p.Nodes[i]
		for a := 0; a < nd.Op.Arity(); a++ {
			if nd.Args[a] == from {
				p.SetArg(int32(i), a, to)
			}
		}
	}
	if p.Root == from {
		p.SetRoot(to)
	}
	p.GC()
	return true
}

// NumMoves is the number of defined move types.
const NumMoves = int(numMoves)

// RandomProgram builds a program by walking the mutator from the zero
// program for steps moves — the same move distribution the search
// proposes from, so fuzz harnesses and benchmarks that need "random
// but realistic" programs sample the production distribution instead
// of a hand-rolled one. The walk is deterministic in seed.
func RandomProgram(seed uint64, numInputs, steps int) *prog.Program {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	suite := testcase.Generate(func(in []uint64) uint64 { return in[0] }, numInputs, 8, rng)
	m := New(prog.FullSet, suite, false)
	p := prog.NewZero(numInputs)
	for i := 0; i < steps; i++ {
		m.Apply(p, rng)
	}
	return p
}
