package mutate

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// TestDebugGateAcceptsAllMoves runs every move type many times with
// the invariant gate on: a panic here is a mutator bug.
func TestDebugGateAcceptsAllMoves(t *testing.T) {
	SetDebugChecks(true)
	defer SetDebugChecks(false)

	suite := testcase.Generate(func(in []uint64) uint64 { return in[0] | in[1] },
		2, 8, rand.New(rand.NewPCG(3, 4)))
	for _, set := range []*prog.OpSet{prog.FullSet, prog.ModelSet} {
		m := New(set, suite, set == prog.ModelSet)
		rng := rand.New(rand.NewPCG(99, 1))
		p := prog.NewZero(2)
		for step := 0; step < 3000; step++ {
			m.Apply(p, rng) // panics on an invariant violation
		}
	}
}

// TestDebugGatePanicsOnViolation plants a corrupted program and checks
// the gate actually fires: a move that "succeeds" on a program left
// invalid must panic rather than let the search continue on it.
func TestDebugGatePanicsOnViolation(t *testing.T) {
	SetDebugChecks(true)
	defer SetDebugChecks(false)

	p, err := prog.Parse("notq(x)", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: plant an unreachable body node. Mutators never produce
	// this. The opcode move succeeds (it only rewrites the notq node)
	// without running GC, so the gate sees the dead node and fires.
	p.Nodes = append(p.Nodes, prog.Node{Op: prog.OpConst, Val: 7})
	p.Invalidate()

	m := New(prog.FullSet, nil, false)
	rng := rand.New(rand.NewPCG(5, 6))
	defer func() {
		if recover() == nil {
			t.Error("debug gate did not panic on a corrupted program")
		}
	}()
	if !m.ApplyMove(p, MoveOpcode, rng) {
		t.Error("opcode move found no candidate (gate never ran)")
	}
	t.Error("gate did not fire after a successful move on a corrupted program")
}

func TestSetDebugChecksToggle(t *testing.T) {
	if DebugChecks() {
		t.Fatal("debug checks unexpectedly on at test start")
	}
	SetDebugChecks(true)
	if !DebugChecks() {
		t.Error("SetDebugChecks(true) did not stick")
	}
	SetDebugChecks(false)
	if DebugChecks() {
		t.Error("SetDebugChecks(false) did not stick")
	}
}
