package mutate

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

func testSuite(numInputs int) *testcase.Suite {
	rng := rand.New(rand.NewPCG(11, 12))
	f := func(in []uint64) uint64 {
		v := uint64(0)
		for _, x := range in {
			v ^= x
		}
		return v
	}
	return testcase.Generate(f, numInputs, 16, rng)
}

func TestMovesListed(t *testing.T) {
	m := New(prog.FullSet, nil, false)
	if len(m.Moves()) != 3 {
		t.Errorf("baseline mutator has %d moves, want 3", len(m.Moves()))
	}
	mr := New(prog.ModelSet, testSuite(1), true)
	if len(mr.Moves()) != 4 {
		t.Errorf("redundancy mutator has %d moves, want 4", len(mr.Moves()))
	}
}

func TestNewPanicsWithoutSuite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for redundancy without suite")
		}
	}()
	New(prog.ModelSet, nil, true)
}

func TestMoveStrings(t *testing.T) {
	names := map[Move]string{
		MoveInstruction: "instruction",
		MoveOpcode:      "opcode",
		MoveOperand:     "operand",
		MoveRedundancy:  "redundancy",
	}
	for mv, want := range names {
		if mv.String() != want {
			t.Errorf("Move(%d).String() = %q, want %q", mv, mv.String(), want)
		}
	}
}

// applyN applies n random moves, validating the program after each.
func applyN(t *testing.T, m *Mutator, p *prog.Program, rng *rand.Rand, n int) (valid, invalid int) {
	t.Helper()
	for i := 0; i < n; i++ {
		before := p.Clone()
		mv, ok := m.Apply(p, rng)
		if !ok {
			invalid++
			if !p.Equal(before) {
				t.Fatalf("invalid %s move modified the program", mv)
			}
			continue
		}
		valid++
		if err := p.Validate(); err != nil {
			t.Fatalf("%s move produced invalid program: %v\nbefore: %s\nafter:  %s",
				mv, err, before, p)
		}
	}
	return valid, invalid
}

func TestMovesPreserveInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	m := New(prog.FullSet, nil, false)
	p := prog.NewZero(2)
	valid, _ := applyN(t, m, p, rng, 5000)
	if valid == 0 {
		t.Error("no valid moves in 5000 proposals")
	}
}

func TestModelMovesPreserveInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	suite := testSuite(1)
	m := New(prog.ModelSet, suite, true)
	p := prog.NewZero(1)
	valid, _ := applyN(t, m, p, rng, 5000)
	if valid == 0 {
		t.Error("no valid moves in 5000 proposals")
	}
}

func TestSizeLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	m := New(prog.FullSet, nil, false)
	p := prog.NewZero(1)
	for i := 0; i < 20000; i++ {
		m.Apply(p, rng)
		if p.BodyLen() > prog.MaxBody {
			t.Fatalf("program grew to %d body nodes", p.BodyLen())
		}
	}
}

func TestInstructionMoveCanReachInputs(t *testing.T) {
	// Starting from the zero program, some instruction move must
	// eventually wire an input into the graph; otherwise synthesis of
	// non-constant functions would be impossible.
	rng := rand.New(rand.NewPCG(4, 4))
	m := New(prog.FullSet, nil, false)
	p := prog.NewZero(1)
	for i := 0; i < 10000; i++ {
		m.Apply(p, rng)
		if p.Output([]uint64{5}) != p.Output([]uint64{1000000}) {
			return // program depends on the input
		}
	}
	t.Error("10000 moves never produced an input-dependent program")
}

func TestOpcodeMoveKeepsArity(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	m := New(prog.FullSet, nil, false)
	p := prog.MustParse("addq(x, 1)", 1)
	for i := 0; i < 500; i++ {
		q := p.Clone()
		if m.ApplyMove(q, MoveOpcode, rng) {
			for _, nd := range q.Nodes {
				if nd.Op.IsInstruction() && nd.Op.Arity() != 2 {
					t.Fatalf("opcode move changed arity: %s", q)
				}
			}
		}
	}
}

func TestOpcodeMoveInvalidOnConstProgram(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	m := New(prog.FullSet, nil, false)
	p := prog.NewZero(1)
	if m.ApplyMove(p, MoveOpcode, rng) {
		t.Error("opcode move succeeded with no instruction nodes")
	}
}

func TestOperandMoveKeepsAcyclicity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	m := New(prog.FullSet, nil, false)
	p := prog.MustParse("addq(notq(x), orq(x, 1))", 1)
	for i := 0; i < 2000; i++ {
		m.ApplyMove(p, MoveOperand, rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("operand move broke invariants: %v", err)
		}
	}
}

func TestRedundancyMergesEquivalentNodes(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	suite := testSuite(1)
	m := New(prog.ModelSet, suite, true)
	// or(x,x) and and(x,x) both compute x: the redundancy move should
	// eventually merge them.
	p := prog.MustParse("xor(or(x, x), and(x, x))", 1)
	startLen := p.BodyLen()
	merged := false
	for i := 0; i < 2000 && !merged; i++ {
		q := p.Clone()
		if m.ApplyMove(q, MoveRedundancy, rng) {
			if err := q.Validate(); err != nil {
				t.Fatalf("redundancy move broke invariants: %v", err)
			}
			if q.BodyLen() < startLen {
				merged = true
			}
		}
	}
	if !merged {
		t.Error("redundancy move never merged value-equal nodes")
	}
}

func TestPropertyLongWalksStayValid(t *testing.T) {
	suite := testSuite(2)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1001))
		m := New(prog.ModelSet, suite, true)
		p := prog.NewZero(2)
		for i := 0; i < 300; i++ {
			m.Apply(p, rng)
			if p.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMoveDistributionCoversAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	m := New(prog.ModelSet, testSuite(1), true)
	p := prog.MustParse("xor(or(x, x), and(x, x))", 1)
	seen := map[Move]int{}
	for i := 0; i < 3000; i++ {
		q := p.Clone()
		mv, _ := m.Apply(q, rng)
		seen[mv]++
	}
	for _, mv := range m.Moves() {
		if seen[mv] == 0 {
			t.Errorf("move %s never chosen in 3000 proposals", mv)
		}
	}
}

func TestSetWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	m := New(prog.FullSet, nil, false)
	m.SetWeights(map[Move]float64{
		MoveInstruction: 8,
		MoveOpcode:      1,
		MoveOperand:     1,
	})
	p := prog.MustParse("addq(notq(x), orq(x, 1))", 1)
	counts := map[Move]int{}
	for i := 0; i < 5000; i++ {
		q := p.Clone()
		mv, _ := m.Apply(q, rng)
		counts[mv]++
	}
	// Instruction should dominate roughly 8:1:1.
	if counts[MoveInstruction] < 3200 || counts[MoveInstruction] > 4800 {
		t.Errorf("instruction chosen %d/5000, want ~4000", counts[MoveInstruction])
	}
	if counts[MoveOpcode] == 0 || counts[MoveOperand] == 0 {
		t.Error("weighted moves starved nonzero-weight entries")
	}
}

func TestSetWeightsZeroesOutMoves(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	m := New(prog.FullSet, nil, false)
	m.SetWeights(map[Move]float64{MoveOperand: 1})
	p := prog.MustParse("addq(notq(x), orq(x, 1))", 1)
	for i := 0; i < 500; i++ {
		q := p.Clone()
		if mv, _ := m.Apply(q, rng); mv != MoveOperand {
			t.Fatalf("zero-weight move %s chosen", mv)
		}
	}
}

func TestSetWeightsPanicsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for all-zero weights")
		}
	}()
	New(prog.FullSet, nil, false).SetWeights(map[Move]float64{})
}
