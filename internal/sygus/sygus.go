// Package sygus provides the SyGuS-style programming-by-example
// bitvector benchmark. The paper evaluates on the 600 input/output
// bitvector problems of the SyGuS 2017 competition; that dataset is
// not redistributable here, so this package substitutes a suite with
// the same shape: classic Hacker's-Delight bit-manipulation tasks
// (the lineage of the SyGuS PBE-BV track) plus a seeded generator of
// random bitvector problems, all specified purely by input/output
// pairs with the low test-case counts characteristic of SyGuS (which
// matter for the incorrect-test-cases cost function's behavior).
package sygus

import (
	"fmt"
	"math/rand/v2"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// Problem is one benchmark entry.
type Problem struct {
	// Name identifies the problem.
	Name string
	// Desc is a human-readable statement of the target function.
	Desc string
	// Suite is the input/output specification.
	Suite *testcase.Suite
}

// named is a curated task: a reference function over 64-bit words.
type named struct {
	name   string
	desc   string
	inputs int
	f      testcase.Func
}

// curated is the fixed task list, in the tradition of the
// Hacker's-Delight / Gulwani et al. loop-free program suite that seeded
// the SyGuS PBE bitvector track.
var curated = []named{
	{"hd01", "turn off the rightmost 1 bit: x & (x-1)", 1,
		func(in []uint64) uint64 { return in[0] & (in[0] - 1) }},
	{"hd02", "test: x & (x+1)", 1,
		func(in []uint64) uint64 { return in[0] & (in[0] + 1) }},
	{"hd03", "isolate the rightmost 1 bit: x & -x", 1,
		func(in []uint64) uint64 { return in[0] & -in[0] }},
	{"hd04", "mask for trailing zeros: ~x & (x-1)", 1,
		func(in []uint64) uint64 { return ^in[0] & (in[0] - 1) }},
	{"hd05", "propagate the rightmost 1 bit: x | (x-1)", 1,
		func(in []uint64) uint64 { return in[0] | (in[0] - 1) }},
	{"hd06", "turn on the rightmost 0 bit: x | (x+1)", 1,
		func(in []uint64) uint64 { return in[0] | (in[0] + 1) }},
	{"hd07", "isolate the rightmost 0 bit: ~x & (x+1)", 1,
		func(in []uint64) uint64 { return ^in[0] & (in[0] + 1) }},
	{"hd08", "mask of trailing ones: ~(x | -x)... form x & ~(x+1)", 1,
		func(in []uint64) uint64 { return in[0] & ^(in[0] + 1) }},
	{"hd09", "absolute value", 1,
		func(in []uint64) uint64 {
			s := in[0] >> 63
			return (in[0] ^ -s) + s
		}},
	{"hd10", "same sign test: (x^y) >= 0 as all-ones/zero mask", 2,
		func(in []uint64) uint64 {
			return uint64(int64(in[0]^in[1]) >> 63)
		}},
	{"hd11", "sign function (-1, 0, 1)", 1,
		func(in []uint64) uint64 {
			x := int64(in[0])
			return uint64(x>>63) | uint64(uint64(-x)>>63)
		}},
	{"hd12", "floor of average without overflow: (x&y) + ((x^y)>>1)", 2,
		func(in []uint64) uint64 { return (in[0] & in[1]) + ((in[0] ^ in[1]) >> 1) }},
	{"hd13", "ceiling of average: (x|y) - ((x^y)>>1)", 2,
		func(in []uint64) uint64 { return (in[0] | in[1]) - ((in[0] ^ in[1]) >> 1) }},
	{"hd14", "max of two signed integers", 2,
		func(in []uint64) uint64 {
			if int64(in[0]) >= int64(in[1]) {
				return in[0]
			}
			return in[1]
		}},
	{"hd15", "min of two signed integers", 2,
		func(in []uint64) uint64 {
			if int64(in[0]) <= int64(in[1]) {
				return in[0]
			}
			return in[1]
		}},
	{"hd16", "swap via xor composition: x ^ y ^ x == y", 2,
		func(in []uint64) uint64 { return in[0] ^ in[1] ^ in[0] }},
	{"hd17", "turn off the rightmost string of 1s: ((x | (x-1)) + 1) & x", 1,
		func(in []uint64) uint64 { return ((in[0] | (in[0] - 1)) + 1) & in[0] }},
	{"hd18", "parity of the low byte, replicated: popcount(x&255)&1", 1,
		func(in []uint64) uint64 {
			x := in[0] & 0xFF
			x ^= x >> 4
			x ^= x >> 2
			x ^= x >> 1
			return x & 1
		}},
	{"hd19", "clear lowest set byte boundary: x & (x << 1)", 1,
		func(in []uint64) uint64 { return in[0] & (in[0] << 1) }},
	{"hd20", "round down to a multiple of 8: x & ~7", 1,
		func(in []uint64) uint64 { return in[0] &^ 7 }},
	{"bv01", "x + y", 2, func(in []uint64) uint64 { return in[0] + in[1] }},
	{"bv02", "x - y", 2, func(in []uint64) uint64 { return in[0] - in[1] }},
	{"bv03", "2x + y", 2, func(in []uint64) uint64 { return 2*in[0] + in[1] }},
	{"bv04", "x & (y | z)", 3, func(in []uint64) uint64 { return in[0] & (in[1] | in[2]) }},
	{"bv05", "bitwise select: (x & y) | (~x & z)", 3,
		func(in []uint64) uint64 { return (in[0] & in[1]) | (^in[0] & in[2]) }},
	{"bv06", "x * 9 (shift-add form)", 1, func(in []uint64) uint64 { return in[0] * 9 }},
	{"bv07", "high half to low half: x >> 32", 1, func(in []uint64) uint64 { return in[0] >> 32 }},
	{"bv08", "byte duplicate of low byte into second byte", 1,
		func(in []uint64) uint64 { return (in[0] & 0xFF) | (in[0]&0xFF)<<8 }},
	{"bv09", "difference or zero (doz) unsigned", 2,
		func(in []uint64) uint64 {
			if in[0] >= in[1] {
				return in[0] - in[1]
			}
			return 0
		}},
	{"bv10", "x rotated left by 8", 1,
		func(in []uint64) uint64 { return in[0]<<8 | in[0]>>56 }},
	{"bv11", "sign-extend low 16 bits", 1,
		func(in []uint64) uint64 { return uint64(int64(int16(in[0]))) }},
	{"bv12", "zero the odd bits: x & 0x5555...", 1,
		func(in []uint64) uint64 { return in[0] & 0x5555555555555555 }},
	{"bv13", "x == y as 0/1", 2,
		func(in []uint64) uint64 {
			if in[0] == in[1] {
				return 1
			}
			return 0
		}},
	{"bv14", "(x + y) >> 1 truncating (may overflow)", 2,
		func(in []uint64) uint64 { return (in[0] + in[1]) >> 1 }},
	{"bv15", "negate if odd: x xor -(x&1) + (x&1)", 1,
		func(in []uint64) uint64 {
			m := -(in[0] & 1)
			return (in[0] ^ m) - m
		}},
}

// Options configures suite construction.
type Options struct {
	// Seed drives test-case generation and the random problem
	// generator.
	Seed uint64
	// TestCases is the number of cases per curated problem. SyGuS PBE
	// problems carry few examples; the default is 10.
	TestCases int
	// RandomProblems is the number of additional generated problems.
	RandomProblems int
	// RandomDepth bounds the expression depth of generated problems
	// (default 3).
	RandomDepth int
}

func (o Options) defaults() Options {
	if o.TestCases <= 0 {
		o.TestCases = 10
	}
	if o.RandomDepth <= 0 {
		o.RandomDepth = 3
	}
	return o
}

// Standard returns the benchmark: the curated tasks followed by
// opts.RandomProblems generated ones. Construction is deterministic
// given the seed.
func Standard(opts Options) []*Problem {
	o := opts.defaults()
	rng := rand.New(rand.NewPCG(o.Seed, 0x082efa98ec4e6c89))
	var out []*Problem
	for _, c := range curated {
		suite := testcase.Generate(c.f, c.inputs, o.TestCases, rng)
		out = append(out, &Problem{Name: c.name, Desc: c.desc, Suite: suite})
	}
	for i := 0; i < o.RandomProblems; i++ {
		p := randomProblem(rng, i, o)
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// randomProblem generates one random bitvector PBE problem by sampling
// a random expression in the full dialect and using it as the
// reference function. Degenerate expressions (constant on the sampled
// tests) are discarded and retried a few times.
func randomProblem(rng *rand.Rand, idx int, o Options) *Problem {
	for attempt := 0; attempt < 10; attempt++ {
		numInputs := 1 + rng.IntN(3)
		p := randomExpr(rng, numInputs, o.RandomDepth)
		f := func(in []uint64) uint64 { return p.Output(in) }
		suite := testcase.Generate(f, numInputs, o.TestCases, rng)
		constant := true
		for _, c := range suite.Cases[1:] {
			if c.Output != suite.Cases[0].Output {
				constant = false
				break
			}
		}
		if constant {
			continue
		}
		return &Problem{
			Name:  fmt.Sprintf("rnd%03d", idx),
			Desc:  "generated: " + p.String(),
			Suite: suite,
		}
	}
	return nil
}

// randomExpr samples a random program of bounded depth over the full
// dialect.
func randomExpr(rng *rand.Rand, numInputs, depth int) *prog.Program {
	p := prog.NewZero(numInputs)
	root := buildExpr(p, rng, numInputs, depth)
	p.Root = root
	p.Invalidate()
	p.GC() // drops the seed constant if unused
	return p
}

// buildExpr appends a random expression to p and returns its root
// index. It keeps the program within the node limit by degrading to
// leaves when full.
func buildExpr(p *prog.Program, rng *rand.Rand, numInputs, depth int) int32 {
	leaf := func() int32 {
		if rng.IntN(3) > 0 {
			return int32(rng.IntN(numInputs)) // a permanent input node
		}
		p.Nodes = append(p.Nodes, prog.Node{Op: prog.OpConst, Val: prog.FullSet.RandomConst(rng)})
		return int32(len(p.Nodes) - 1)
	}
	if depth <= 0 || p.BodyLen() >= prog.MaxBody-2 || rng.IntN(4) == 0 {
		return leaf()
	}
	op := prog.FullSet.RandomOp(rng)
	nd := prog.Node{Op: op}
	for a := 0; a < op.Arity(); a++ {
		nd.Args[a] = buildExpr(p, rng, numInputs, depth-1)
	}
	p.Nodes = append(p.Nodes, nd)
	return int32(len(p.Nodes) - 1)
}
