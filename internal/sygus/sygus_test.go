package sygus

import (
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
)

func TestStandardSuite(t *testing.T) {
	probs := Standard(Options{Seed: 1})
	if len(probs) != len(curated) {
		t.Fatalf("got %d problems, want %d", len(probs), len(curated))
	}
	names := map[string]bool{}
	for _, p := range probs {
		if names[p.Name] {
			t.Errorf("duplicate problem name %q", p.Name)
		}
		names[p.Name] = true
		if err := p.Suite.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Suite.Len() != 10 {
			t.Errorf("%s has %d cases, want the SyGuS-like default 10", p.Name, p.Suite.Len())
		}
	}
}

func TestCuratedSemantics(t *testing.T) {
	// Spot-check some curated reference functions against known
	// closed forms.
	for _, tc := range []struct {
		name string
		in   []uint64
		want uint64
	}{
		{"hd01", []uint64{0b1100}, 0b1000},
		{"hd03", []uint64{0b101000}, 0b1000},
		{"hd09", []uint64{^uint64(4) + 1}, 4}, // |-4| = 4
		{"hd12", []uint64{10, 20}, 15},
		{"hd14", []uint64{^uint64(0), 3}, 3}, // max(-1, 3) = 3
		{"hd15", []uint64{^uint64(0), 3}, ^uint64(0)},
		{"bv13", []uint64{7, 7}, 1},
		{"bv13", []uint64{7, 8}, 0},
	} {
		var f named
		found := false
		for _, c := range curated {
			if c.name == tc.name {
				f = c
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no curated problem %q", tc.name)
		}
		if got := f.f(tc.in); got != tc.want {
			t.Errorf("%s(%v) = %d, want %d", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestRandomProblemsGenerated(t *testing.T) {
	probs := Standard(Options{Seed: 2, RandomProblems: 15})
	got := 0
	for _, p := range probs {
		if len(p.Name) > 3 && p.Name[:3] == "rnd" {
			got++
			// Generated problems must not be constant.
			first := p.Suite.Cases[0].Output
			constant := true
			for _, c := range p.Suite.Cases[1:] {
				if c.Output != first {
					constant = false
				}
			}
			if constant {
				t.Errorf("%s is constant", p.Name)
			}
		}
	}
	if got == 0 {
		t.Error("no random problems generated")
	}
}

func TestStandardDeterministic(t *testing.T) {
	a := Standard(Options{Seed: 5, RandomProblems: 5})
	b := Standard(Options{Seed: 5, RandomProblems: 5})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Suite.Len() != b[i].Suite.Len() {
			t.Errorf("problem %d differs", i)
		}
		for j := range a[i].Suite.Cases {
			if a[i].Suite.Cases[j].Output != b[i].Suite.Cases[j].Output {
				t.Errorf("problem %d case %d differs", i, j)
			}
		}
	}
}

func TestEasyProblemsSynthesize(t *testing.T) {
	// hd01 and bv01 should synthesize quickly; this keeps the suite
	// honest end to end.
	probs := Standard(Options{Seed: 3, TestCases: 32})
	for _, name := range []string{"hd01", "bv01"} {
		for _, p := range probs {
			if p.Name != name {
				continue
			}
			r := search.New(p.Suite, search.Options{
				Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 17,
			})
			if _, done := r.Step(2_000_000); !done {
				t.Errorf("%s did not synthesize in 2M iterations", name)
			}
		}
	}
}
