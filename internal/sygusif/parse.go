package sygusif

import (
	"fmt"
	"strconv"
	"strings"

	"stochsyn/internal/testcase"
)

// Problem is a parsed PBE synthesis problem.
type Problem struct {
	// Name is the synth-fun's name.
	Name string
	// Args are the argument names, in declaration order.
	Args []string
	// Width is the bit width of the function's sort (<= 64). Values
	// are stored zero-extended in 64-bit words.
	Width int
	// Suite holds the input/output examples.
	Suite *testcase.Suite
}

// Parse reads one .sl source and extracts its PBE problem. It errors
// on files without a synth-fun, with non-bitvector sorts wider than 64
// bits, or with constraints that are not input/output examples.
func Parse(src string) (*Problem, error) {
	exprs, err := parseSexprs(src)
	if err != nil {
		return nil, err
	}
	var prob *Problem
	var cases []testcase.Case
	for _, e := range exprs {
		if e.isAtom() || len(e.List) == 0 {
			continue
		}
		switch e.atomAt(0) {
		case "set-logic", "check-synth", "set-option", "declare-var", "set-info":
			// Accepted and ignored. declare-var only matters for
			// universally quantified constraints, which the PBE subset
			// does not use.
		case "synth-fun":
			if prob != nil {
				return nil, fmt.Errorf("sygusif: multiple synth-fun commands")
			}
			prob, err = parseSynthFun(e)
			if err != nil {
				return nil, err
			}
		case "constraint":
			if prob == nil {
				return nil, fmt.Errorf("sygusif: constraint before synth-fun")
			}
			c, err := parseConstraint(e, prob)
			if err != nil {
				return nil, err
			}
			cases = append(cases, *c)
		case "define-fun":
			// Helper definitions are beyond the PBE subset; reject so
			// the caller can skip the file rather than mis-synthesize.
			return nil, fmt.Errorf("sygusif: define-fun is not supported in the PBE subset")
		default:
			return nil, fmt.Errorf("sygusif: unsupported command %q", e.atomAt(0))
		}
	}
	if prob == nil {
		return nil, fmt.Errorf("sygusif: no synth-fun found")
	}
	if len(cases) == 0 {
		return nil, fmt.Errorf("sygusif: no input/output constraints found")
	}
	prob.Suite = &testcase.Suite{NumInputs: len(prob.Args), Cases: cases}
	if err := prob.Suite.Validate(); err != nil {
		return nil, err
	}
	return prob, nil
}

// parseSynthFun handles (synth-fun name ((arg sort)...) sort grammar?).
func parseSynthFun(e *sexpr) (*Problem, error) {
	if len(e.List) < 4 {
		return nil, fmt.Errorf("sygusif: malformed synth-fun")
	}
	name := e.atomAt(1)
	if name == "" {
		return nil, fmt.Errorf("sygusif: synth-fun without a name")
	}
	argsList := e.List[2]
	if argsList.isAtom() {
		return nil, fmt.Errorf("sygusif: synth-fun arguments must be a list")
	}
	p := &Problem{Name: name}
	for _, arg := range argsList.List {
		if arg.isAtom() || len(arg.List) != 2 || !arg.List[0].isAtom() {
			return nil, fmt.Errorf("sygusif: malformed argument declaration %s", arg)
		}
		w, err := bitvecWidth(arg.List[1])
		if err != nil {
			return nil, err
		}
		_ = w // argument widths may differ from the return width
		p.Args = append(p.Args, arg.List[0].Atom)
	}
	w, err := bitvecWidth(e.List[3])
	if err != nil {
		return nil, err
	}
	p.Width = w
	return p, nil
}

// bitvecWidth accepts (_ BitVec n) and (BitVec n) sorts up to 64 bits.
func bitvecWidth(s *sexpr) (int, error) {
	if s.isAtom() {
		return 0, fmt.Errorf("sygusif: unsupported sort %q", s.Atom)
	}
	var widthAtom string
	switch {
	case len(s.List) == 3 && s.atomAt(0) == "_" && s.atomAt(1) == "BitVec":
		widthAtom = s.atomAt(2)
	case len(s.List) == 2 && s.atomAt(0) == "BitVec":
		widthAtom = s.atomAt(1)
	default:
		return 0, fmt.Errorf("sygusif: unsupported sort %s", s)
	}
	w, err := strconv.Atoi(widthAtom)
	if err != nil || w <= 0 || w > 64 {
		return 0, fmt.Errorf("sygusif: unsupported bitvector width %q", widthAtom)
	}
	return w, nil
}

// parseConstraint handles (constraint (= (f lit...) lit)) in either
// orientation.
func parseConstraint(e *sexpr, p *Problem) (*testcase.Case, error) {
	if len(e.List) != 2 || e.List[1].isAtom() {
		return nil, fmt.Errorf("sygusif: unsupported constraint %s", e)
	}
	eq := e.List[1]
	if eq.atomAt(0) != "=" || len(eq.List) != 3 {
		return nil, fmt.Errorf("sygusif: constraint is not an equality example: %s", e)
	}
	lhs, rhs := eq.List[1], eq.List[2]
	// Accept (= (f args) out) or (= out (f args)).
	if lhs.isAtom() || lhs.atomAt(0) != p.Name {
		lhs, rhs = rhs, lhs
	}
	if lhs.isAtom() || lhs.atomAt(0) != p.Name {
		return nil, fmt.Errorf("sygusif: constraint does not apply %s: %s", p.Name, e)
	}
	if len(lhs.List)-1 != len(p.Args) {
		return nil, fmt.Errorf("sygusif: %s takes %d arguments, constraint passes %d",
			p.Name, len(p.Args), len(lhs.List)-1)
	}
	c := &testcase.Case{}
	for _, arg := range lhs.List[1:] {
		v, err := literal(arg)
		if err != nil {
			return nil, fmt.Errorf("sygusif: non-literal argument in example: %v", err)
		}
		c.Inputs = append(c.Inputs, v)
	}
	out, err := literal(rhs)
	if err != nil {
		return nil, fmt.Errorf("sygusif: non-literal output in example: %v", err)
	}
	c.Output = out
	return c, nil
}

// literal parses #xHEX, #bBIN, decimal, and (_ bvN width) constants.
func literal(s *sexpr) (uint64, error) {
	if s.isAtom() {
		a := s.Atom
		switch {
		case strings.HasPrefix(a, "#x"):
			return strconv.ParseUint(a[2:], 16, 64)
		case strings.HasPrefix(a, "#b"):
			return strconv.ParseUint(a[2:], 2, 64)
		default:
			return strconv.ParseUint(a, 10, 64)
		}
	}
	// (_ bvN width)
	if len(s.List) == 3 && s.atomAt(0) == "_" && strings.HasPrefix(s.atomAt(1), "bv") {
		return strconv.ParseUint(s.atomAt(1)[2:], 10, 64)
	}
	return 0, fmt.Errorf("cannot parse literal %s", s)
}
