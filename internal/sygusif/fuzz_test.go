package sygusif

import "testing"

// FuzzParse feeds arbitrary text to the SyGuS-IF reader: it must never
// panic, and accepted problems must carry a valid suite.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("(set-logic BV)")
	f.Add("(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))(constraint (= (f #x1) #x2))(check-synth)")
	f.Add("; comment only")
	f.Add("((((")
	f.Add(`("str)`)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if err := p.Suite.Validate(); err != nil {
			t.Fatalf("accepted problem with invalid suite: %v", err)
		}
		if p.Name == "" || len(p.Args) != p.Suite.NumInputs {
			t.Fatalf("inconsistent problem: %+v", p)
		}
	})
}
