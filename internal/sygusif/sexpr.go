// Package sygusif reads and writes the programming-by-example subset
// of the SyGuS interchange format (the .sl files of the SyGuS
// competition's PBE bitvector track, which the paper's first benchmark
// is drawn from). Supported input shape:
//
//	(set-logic BV)
//	(synth-fun f ((x (_ BitVec 64)) (y (_ BitVec 64))) (_ BitVec 64) ...)
//	(constraint (= (f #x00000000000000ff #x0000000000000001) #x00000000000000fe))
//	(check-synth)
//
// Only input/output-example constraints are accepted — exactly the
// problems amenable to stochastic synthesis (Section 2.1 of the
// paper); any other constraint shape is reported as an error so the
// caller can skip the file. Both the (_ BitVec n) and (BitVec n) sort
// spellings and #x/#b/(_ bvN w) literals are understood.
package sygusif

import (
	"fmt"
	"strings"
	"unicode"
)

// sexpr is an S-expression: either an atom (List == nil) or a list.
type sexpr struct {
	Atom string
	List []*sexpr
	// pos is the byte offset for error messages.
	pos int
}

func (s *sexpr) isAtom() bool { return s.List == nil }

// atomAt returns the i-th element if it is an atom, else "".
func (s *sexpr) atomAt(i int) string {
	if i < len(s.List) && s.List[i].isAtom() {
		return s.List[i].Atom
	}
	return ""
}

// String renders the expression back to source form.
func (s *sexpr) String() string {
	if s.isAtom() {
		return s.Atom
	}
	parts := make([]string, len(s.List))
	for i, e := range s.List {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// parseSexprs parses a whole file into its top-level expressions.
// Line comments start with ';'.
func parseSexprs(src string) ([]*sexpr, error) {
	p := &sparser{src: src}
	var out []*sexpr
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return out, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

type sparser struct {
	src string
	pos int
}

func (p *sparser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ';':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		case unicode.IsSpace(rune(c)):
			p.pos++
		default:
			return
		}
	}
}

func (p *sparser) expr() (*sexpr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("sygusif: unexpected end of input")
	}
	start := p.pos
	switch p.src[p.pos] {
	case '(':
		p.pos++
		node := &sexpr{List: []*sexpr{}, pos: start}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("sygusif: unclosed '(' at offset %d", start)
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return node, nil
			}
			child, err := p.expr()
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
		}
	case ')':
		return nil, fmt.Errorf("sygusif: unexpected ')' at offset %d", p.pos)
	case '"':
		// String literal (kept verbatim, quotes included).
		end := p.pos + 1
		for end < len(p.src) && p.src[end] != '"' {
			end++
		}
		if end >= len(p.src) {
			return nil, fmt.Errorf("sygusif: unterminated string at offset %d", p.pos)
		}
		atom := p.src[p.pos : end+1]
		p.pos = end + 1
		return &sexpr{Atom: atom, pos: start}, nil
	default:
		end := p.pos
		for end < len(p.src) && !isDelim(p.src[end]) {
			end++
		}
		atom := p.src[p.pos:end]
		p.pos = end
		return &sexpr{Atom: atom, pos: start}, nil
	}
}

func isDelim(c byte) bool {
	return c == '(' || c == ')' || c == ';' || c == '"' || unicode.IsSpace(rune(c))
}
