package sygusif

import (
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"stochsyn/internal/testcase"
)

const sample = `
; turn off the rightmost 1 bit
(set-logic BV)
(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))
(constraint (= (f #x0000000000000003) #x0000000000000002))
(constraint (= (f #b0000000000000000000000000000000000000000000000000000000000001100) #x0000000000000008))
(constraint (= (f (_ bv5 64)) (_ bv4 64)))
(constraint (= #x0000000000000000 (f #x0000000000000001)))
(check-synth)
`

func TestParseSample(t *testing.T) {
	p, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "f" || len(p.Args) != 1 || p.Width != 64 {
		t.Fatalf("problem header: %+v", p)
	}
	if p.Suite.Len() != 4 {
		t.Fatalf("got %d cases", p.Suite.Len())
	}
	want := []testcase.Case{
		{Inputs: []uint64{3}, Output: 2},
		{Inputs: []uint64{12}, Output: 8},
		{Inputs: []uint64{5}, Output: 4},
		{Inputs: []uint64{1}, Output: 0},
	}
	for i, c := range p.Suite.Cases {
		if c.Inputs[0] != want[i].Inputs[0] || c.Output != want[i].Output {
			t.Errorf("case %d = %v, want %v", i, c, want[i])
		}
	}
}

func TestParseMultiArg(t *testing.T) {
	src := `
(set-logic BV)
(synth-fun max2 ((a (BitVec 64)) (b (BitVec 64))) (BitVec 64))
(constraint (= (max2 #x0000000000000001 #x0000000000000002) #x0000000000000002))
(check-synth)
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Args) != 2 || p.Args[0] != "a" || p.Args[1] != "b" {
		t.Errorf("args = %v", p.Args)
	}
	if p.Suite.Cases[0].Inputs[1] != 2 {
		t.Error("second input wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "no synth-fun"},
		{"(set-logic BV)(check-synth)", "no synth-fun"},
		{"(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))", "no input/output constraints"},
		{"(synth-fun f ((x (_ BitVec 128))) (_ BitVec 64))", "width"},
		{"(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))(constraint (bvult (f #x0) #x5))(check-synth)",
			"not an equality"},
		{"(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))(constraint (= (f x) #x0000000000000000))",
			"non-literal"},
		{"(constraint (= (f #x0) #x0))", "before synth-fun"},
		{"(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))(synth-fun g ((x (_ BitVec 64))) (_ BitVec 64))",
			"multiple synth-fun"},
		{"(define-fun helper ((x (_ BitVec 64))) (_ BitVec 64) x)", "define-fun"},
		{"(frobnicate)", "unsupported command"},
		{"(synth-fun f ((x (_ BitVec 64))) (_ BitVec 64))(constraint (= (f #x1 #x2) #x3))",
			"takes 1 arguments"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse accepted %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestParseSexprErrors(t *testing.T) {
	for _, src := range []string{"(", ")", "(a (b)", `("unterminated`} {
		if _, err := parseSexprs(src); err == nil {
			t.Errorf("parseSexprs accepted %q", src)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	suite := testcase.Generate(func(in []uint64) uint64 { return in[0] &^ in[1] }, 2, 12, rng)
	var sb strings.Builder
	if err := Write(&sb, "g", suite); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, sb.String())
	}
	if p.Name != "g" || p.Suite.Len() != suite.Len() {
		t.Fatalf("round trip mismatch: %+v", p)
	}
	for i := range suite.Cases {
		if p.Suite.Cases[i].Output != suite.Cases[i].Output {
			t.Fatalf("case %d output differs", i)
		}
		for j := range suite.Cases[i].Inputs {
			if p.Suite.Cases[i].Inputs[j] != suite.Cases[i].Inputs[j] {
				t.Fatalf("case %d input %d differs", i, j)
			}
		}
	}
}

func TestPropertyWriteParseRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%3
		rng := rand.New(rand.NewPCG(seed, 9))
		suite := testcase.GenerateUniform(func(in []uint64) uint64 {
			v := uint64(0)
			for _, x := range in {
				v ^= x
			}
			return v
		}, n, 5, rng)
		var sb strings.Builder
		if err := Write(&sb, "h", suite); err != nil {
			return false
		}
		p, err := Parse(sb.String())
		if err != nil || p.Suite.Len() != 5 || p.Suite.NumInputs != n {
			return false
		}
		for i := range suite.Cases {
			if p.Suite.Cases[i].Output != suite.Cases[i].Output {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := "; header comment\n" + sample + "\n; trailing"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
