package sygusif

import (
	"fmt"
	"io"

	"stochsyn/internal/testcase"
)

// Write renders a PBE problem in SyGuS-IF syntax, the inverse of
// Parse. Values are emitted as 64-bit #x literals.
func Write(w io.Writer, name string, suite *testcase.Suite) error {
	if err := suite.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "(set-logic BV)"); err != nil {
		return err
	}
	fmt.Fprintf(w, "(synth-fun %s (", name)
	for i := 0; i < suite.NumInputs; i++ {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprintf(w, "(%s (_ BitVec 64))", argName(i))
	}
	fmt.Fprintln(w, ") (_ BitVec 64))")
	for _, c := range suite.Cases {
		fmt.Fprintf(w, "(constraint (= (%s", name)
		for _, in := range c.Inputs {
			fmt.Fprintf(w, " #x%016x", in)
		}
		fmt.Fprintf(w, ") #x%016x))\n", c.Output)
	}
	_, err := fmt.Fprintln(w, "(check-synth)")
	return err
}

// argName yields x, y, z, w, a4, a5, ... for argument positions.
func argName(i int) string {
	names := []string{"x", "y", "z", "w"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("a%d", i)
}
