package experiment

import (
	"fmt"
	"io"
	"math"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/textplot"
)

// BetaSweepConfig configures the Figure 13 experiment: for each
// algorithm, cost function, and β, run Trials synthesis trials per
// problem and measure the fraction that fail to finish within Budget
// iterations.
type BetaSweepConfig struct {
	Bench *Benchmark
	// Algorithms are restart strategy specs (see restart.New).
	Algorithms []string
	// Costs are the cost functions to sweep.
	Costs []cost.Kind
	// Betas is the β grid. The paper plots β in log space with an
	// extra β = 0 point; include 0 here to reproduce the "×" marks.
	Betas []float64
	// Trials per (problem, algorithm, cost, β).
	Trials int
	// Budget is the per-trial iteration cutoff (the paper uses 100M).
	Budget int64
	// Seed drives all trials.
	Seed uint64
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
}

// BetaCurve is the failure-rate curve of one (algorithm, cost) pair.
type BetaCurve struct {
	Algorithm string
	Cost      cost.Kind
	Betas     []float64
	// FailRate[i] is the fraction of trials at Betas[i] that did not
	// finish within the budget (lower is better).
	FailRate []float64
	// MeanIters[i] is the mean iterations consumed by successful
	// trials at Betas[i] (NaN when none succeeded).
	MeanIters []float64
}

// OptimalBeta returns the β minimizing the failure rate, breaking ties
// toward fewer mean iterations (this populates Table 1).
func (c *BetaCurve) OptimalBeta() float64 {
	best := 0
	for i := range c.Betas {
		switch {
		case c.FailRate[i] < c.FailRate[best]:
			best = i
		case c.FailRate[i] == c.FailRate[best]:
			mi, mb := c.MeanIters[i], c.MeanIters[best]
			if !math.IsNaN(mi) && (math.IsNaN(mb) || mi < mb) {
				best = i
			}
		}
	}
	return c.Betas[best]
}

// BetaSweepResult holds the full sweep.
type BetaSweepResult struct {
	Bench  string
	Curves []BetaCurve
}

// Curve returns the curve for (algorithm, cost), or nil.
func (r *BetaSweepResult) Curve(algo string, kind cost.Kind) *BetaCurve {
	for i := range r.Curves {
		if r.Curves[i].Algorithm == algo && r.Curves[i].Cost == kind {
			return &r.Curves[i]
		}
	}
	return nil
}

// BetaSweep runs the experiment.
func BetaSweep(cfg BetaSweepConfig) *BetaSweepResult {
	res := &BetaSweepResult{Bench: cfg.Bench.Name}
	type cell struct {
		failures int
		succ     []float64
	}
	// One result cell per (algo, cost, beta); each cell aggregates
	// Trials × problems outcomes.
	cells := make([]cell, len(cfg.Algorithms)*len(cfg.Costs)*len(cfg.Betas))
	var tasks []task
	var cellMu sync.Mutex
	for ai, algo := range cfg.Algorithms {
		for ci, kind := range cfg.Costs {
			for bi, beta := range cfg.Betas {
				idx := (ai*len(cfg.Costs)+ci)*len(cfg.Betas) + bi
				for _, p := range cfg.Bench.Problems {
					for t := 0; t < cfg.Trials; t++ {
						p, algo, kind, beta, t := p, algo, kind, beta, t
						tasks = append(tasks, func() {
							seed := trialSeed(cfg.Seed, p.Name, algo, kind, t) ^ math.Float64bits(beta)
							r := Trial(p, algo, cfg.Bench.Set, kind, beta, cfg.Budget, seed)
							cellMu.Lock()
							if r.Solved {
								cells[idx].succ = append(cells[idx].succ, float64(r.Iterations))
							} else {
								cells[idx].failures++
							}
							cellMu.Unlock()
						})
					}
				}
			}
		}
	}
	runParallel(cfg.Parallelism, tasks)

	for ai, algo := range cfg.Algorithms {
		for ci, kind := range cfg.Costs {
			curve := BetaCurve{Algorithm: algo, Cost: kind, Betas: cfg.Betas}
			for bi := range cfg.Betas {
				idx := (ai*len(cfg.Costs)+ci)*len(cfg.Betas) + bi
				c := &cells[idx]
				total := c.failures + len(c.succ)
				rate := math.NaN()
				if total > 0 {
					rate = float64(c.failures) / float64(total)
				}
				curve.FailRate = append(curve.FailRate, rate)
				curve.MeanIters = append(curve.MeanIters, mean(c.succ))
			}
			res.Curves = append(res.Curves, curve)
		}
	}
	return res
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// OptimalBetaTable renders Table 1: the optimal β per (cost,
// algorithm) for this benchmark.
func (r *BetaSweepResult) OptimalBetaTable(w io.Writer) {
	rows := [][]string{{"cost", "benchmark", "algorithm", "optimal beta"}}
	for i := range r.Curves {
		c := &r.Curves[i]
		rows = append(rows, []string{
			c.Cost.String(), r.Bench, c.Algorithm,
			textplot.FormatFloat(c.OptimalBeta()),
		})
	}
	textplot.Table(w, rows)
}

// Plot renders the Figure 13 panel for one cost function: failure rate
// against β (log x) for each algorithm.
func (r *BetaSweepResult) Plot(w io.Writer, kind cost.Kind, width, height int) {
	var series []textplot.Series
	for i := range r.Curves {
		c := &r.Curves[i]
		if c.Cost != kind {
			continue
		}
		s := textplot.Series{Name: c.Algorithm}
		for j, b := range c.Betas {
			if b <= 0 {
				continue // β = 0 cannot be plotted on a log axis
			}
			s.X = append(s.X, b)
			s.Y = append(s.Y, c.FailRate[j])
		}
		series = append(series, s)
	}
	fmt.Fprintf(w, "failure rate vs beta, %s / %s:\n", r.Bench, kind)
	textplot.Lines(w, series, width, height, true, false, "beta", "failure rate")
	for i := range r.Curves {
		c := &r.Curves[i]
		if c.Cost != kind {
			continue
		}
		for j, b := range c.Betas {
			if b == 0 {
				fmt.Fprintf(w, "   %s at beta=0: failure rate %s (the x mark)\n",
					c.Algorithm, textplot.FormatFloat(c.FailRate[j]))
			}
		}
	}
}

// CSV emits the sweep as rows: bench, cost, algorithm, beta, failrate,
// mean iterations.
func (r *BetaSweepResult) CSV(w io.Writer) error {
	rows := [][]string{{"bench", "cost", "algorithm", "beta", "fail_rate", "mean_iters"}}
	for i := range r.Curves {
		c := &r.Curves[i]
		for j := range c.Betas {
			rows = append(rows, []string{
				r.Bench, c.Cost.String(), c.Algorithm,
				textplot.FormatFloat(c.Betas[j]),
				textplot.FormatFloat(c.FailRate[j]),
				textplot.FormatFloat(c.MeanIters[j]),
			})
		}
	}
	return textplot.CSV(w, rows)
}

// DefaultBetaGrid returns the β grid used by the sweep experiments:
// zero plus a log-spaced range. The incorrect-test-cases cost uses a
// lower range reflecting its different scale (Section 7.1).
func DefaultBetaGrid(kind cost.Kind, points int) []float64 {
	if points < 2 {
		points = 2
	}
	lo, hi := 0.1, 20.0
	if kind == cost.IncorrectTests {
		lo, hi = 0.001, 2.0
	}
	out := []float64{0}
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		out = append(out, lo*math.Pow(hi/lo, f))
	}
	return out
}
