package experiment

import (
	"strings"
	"testing"

	"stochsyn/internal/prog"
	"stochsyn/internal/superopt"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want FailureCategory
	}{
		{"addq(x, 0x1234567890ab)", FailConstants},
		{"addq(x, 7)", FailOther},
		{"addq(x, 0xff)", FailOther},               // contiguous mask
		{"addq(x, 0x8000000000000000)", FailOther}, // single bit
		{"shlq(shrq(x, 3), 5)", FailShifts},
		{"shlq(addq(shrq(x, 3), sarq(x, 2)), 5)", FailShifts},
		{"addq(mulq(x, x), x)", FailOther},
		{"shlq(x, 1)", FailOther}, // one shift is not "many"
	}
	for _, tc := range cases {
		ref := prog.MustParse(tc.src, 1)
		if got := Classify(ref); got != tc.want {
			t.Errorf("Classify(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestFailureAnalysisSmall(t *testing.T) {
	opts := superopt.DefaultOptions(3)
	opts.CorpusFunctions = 60
	opts.SampleSize = 5
	opts.TestCases = 40
	probs, _, err := superopt.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately tiny budget so some problems stay unsolved and
	// the census is exercised.
	res := FailureAnalysis(FailureConfig{
		Problems: probs, Trials: 2, Budget: 5_000, Beta: 2, Seed: 1,
	})
	if res.Total != len(probs) {
		t.Errorf("total = %d", res.Total)
	}
	censusTotal := 0
	for _, n := range res.Census {
		censusTotal += n
	}
	if censusTotal != len(res.Unsolved) {
		t.Errorf("census covers %d, unsolved %d", censusTotal, len(res.Unsolved))
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "unsolved:") {
		t.Error("report incomplete")
	}
}
