package experiment

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"

	"stochsyn/internal/cost"
	"stochsyn/internal/markov"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/stats"
	"stochsyn/internal/testcase"
	"stochsyn/internal/textplot"
)

// MarkovConfig configures the Figure 4/5 experiment: estimate the
// popular-state Markov chain of the model problem or(shl(x), x) and
// compare the chain's predicted distribution of synthesis times with
// the measured one.
type MarkovConfig struct {
	// Expr is the reference program source (default "or(shl(x), x)").
	Expr string
	// NumInputs for the reference program (default 1).
	NumInputs int
	// TestCases in the generated suite (default 16).
	TestCases int
	// Beta for the model search (default 1).
	Beta float64
	// Trials used both to estimate the chain and to measure times.
	Trials int
	// Budget bounds each run.
	Budget int64
	// TopK popular states (the paper uses 35).
	TopK int
	Seed uint64
}

func (c MarkovConfig) defaults() MarkovConfig {
	if c.Expr == "" {
		c.Expr = "or(shl(x), x)"
	}
	if c.NumInputs <= 0 {
		c.NumInputs = 1
	}
	if c.TestCases <= 0 {
		c.TestCases = 16
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.TopK <= 0 {
		c.TopK = 35
	}
	return c
}

// MarkovResult holds the estimated chain and the two distributions.
type MarkovResult struct {
	Empirical *markov.Empirical
	// Measured are the finishing times of real synthesis runs.
	Measured []float64
	// Predicted are absorption times sampled from the estimated chain.
	Predicted []float64
	// KS is the Kolmogorov-Smirnov distance between the two samples'
	// empirical distributions.
	KS float64
}

// MarkovExperiment runs the experiment.
func MarkovExperiment(cfg MarkovConfig) (*MarkovResult, error) {
	c := cfg.defaults()
	ref, err := prog.Parse(c.Expr, c.NumInputs)
	if err != nil {
		return nil, fmt.Errorf("experiment: bad reference expression: %v", err)
	}
	rng := rand.New(rand.NewPCG(c.Seed, 0xc0ac29b7c97c50dd))
	suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
		c.NumInputs, c.TestCases, rng)

	opts := search.Options{
		Set:        prog.ModelSet,
		Cost:       cost.Hamming,
		Beta:       c.Beta,
		Redundancy: true,
		Seed:       c.Seed,
	}
	emp, err := markov.Build(suite, markov.BuildOptions{
		Search: opts, Trials: c.Trials, MaxIters: c.Budget, TopK: c.TopK,
	})
	if err != nil {
		return nil, err
	}

	res := &MarkovResult{Empirical: emp}
	// Measured distribution: independent runs with fresh seeds.
	for t := 0; t < c.Trials; t++ {
		o := opts
		o.Seed = c.Seed ^ uint64(t+7919)*0xff51afd7ed558ccd
		run := search.New(suite, o)
		if used, done := run.Step(c.Budget); done {
			res.Measured = append(res.Measured, float64(used))
		}
	}
	// Predicted distribution: chain absorption samples.
	res.Predicted = emp.Chain.SampleAbsorption(c.Trials, c.Budget, c.Seed^0x9216d5d98979fb1b)
	sort.Float64s(res.Measured)
	sort.Float64s(res.Predicted)
	res.KS = twoSampleKS(res.Measured, res.Predicted)
	return res, nil
}

// twoSampleKS computes the two-sample Kolmogorov-Smirnov statistic for
// sorted samples.
func twoSampleKS(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	i, j := 0, 0
	maxD := 0.0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		d := float64(i)/float64(len(a)) - float64(j)/float64(len(b))
		if d < 0 {
			d = -d
		}
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// Report renders the comparison: per-quantile measured versus
// predicted times, the KS distance, and chain diagnostics.
func (r *MarkovResult) Report(w io.Writer) {
	fmt.Fprintf(w, "popular states: %d (coverage %.1f%% of visits), %d/%d trials solved\n",
		len(r.Empirical.States), 100*r.Empirical.Coverage, r.Empirical.Solved, r.Empirical.Trials)
	rows := [][]string{{"quantile", "measured iters", "predicted iters"}}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", q*100),
			textplot.FormatFloat(stats.QuantileSorted(r.Measured, q)),
			textplot.FormatFloat(stats.QuantileSorted(r.Predicted, q)),
		})
	}
	rows = append(rows, []string{"mean",
		textplot.FormatFloat(stats.Mean(r.Measured)),
		textplot.FormatFloat(stats.Mean(r.Predicted))})
	textplot.Table(w, rows)
	fmt.Fprintf(w, "two-sample KS distance: %.3f\n", r.KS)

	fmt.Fprintln(w, "\nmost significant states (visits, cost, expected remaining time):")
	states := append([]markov.StateInfo(nil), r.Empirical.States...)
	sort.Slice(states, func(i, j int) bool { return states[i].Visits > states[j].Visits })
	n := len(states)
	if n > 10 {
		n = 10
	}
	srows := [][]string{{"state", "visits", "cost", "E[T]"}}
	for _, s := range states[:n] {
		srows = append(srows, []string{
			s.Canon, fmt.Sprint(s.Visits),
			textplot.FormatFloat(s.Cost), textplot.FormatFloat(s.ExpectedTime),
		})
	}
	textplot.Table(w, srows)
}
