package experiment

import (
	"fmt"
	"io"
	"math"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/stats"
	"stochsyn/internal/textplot"
)

// CutoffConfig configures the Section 5.1 ablation: estimate the
// distribution-optimal fixed cutoff t* for each problem from pilot
// naive runs, then compare the fixed(t*) strategy — the best possible
// black-box restart strategy for that distribution — against Luby and
// adaptive, which need no per-problem tuning.
type CutoffConfig struct {
	Bench *Benchmark
	Cost  cost.Kind
	Beta  float64
	// PilotRuns is the number of naive runs used to estimate t*.
	PilotRuns int
	// Trials per strategy for the comparison.
	Trials int
	// Budget bounds every run.
	Budget int64
	Seed   uint64
	// Parallelism bounds concurrent trials.
	Parallelism int
}

// CutoffResult summarizes one problem.
type CutoffResult struct {
	Problem string
	// TStar is the estimated optimal cutoff (NaN when too few pilot
	// runs finished).
	TStar float64
	// Predicted is the estimator's expected total time at TStar.
	Predicted float64
	// Mean penalized time per strategy.
	Fixed, Luby, Adaptive, Naive float64
}

// CutoffAblation runs the experiment.
func CutoffAblation(cfg CutoffConfig) []CutoffResult {
	results := make([]CutoffResult, len(cfg.Bench.Problems))

	// Phase 1: pilot runs to estimate per-problem t*.
	pilots := make([][]float64, len(cfg.Bench.Problems))
	var mu sync.Mutex
	var tasks []task
	for pi, p := range cfg.Bench.Problems {
		results[pi].Problem = p.Name
		for t := 0; t < cfg.PilotRuns; t++ {
			pi, p, t := pi, p, t
			tasks = append(tasks, func() {
				r := Trial(p, "naive", cfg.Bench.Set, cfg.Cost, cfg.Beta, cfg.Budget,
					trialSeed(cfg.Seed, p.Name, "pilot", cfg.Cost, t))
				if r.Solved {
					mu.Lock()
					pilots[pi] = append(pilots[pi], float64(r.Iterations))
					mu.Unlock()
				}
			})
		}
	}
	runParallel(cfg.Parallelism, tasks)
	for pi := range pilots {
		if len(pilots[pi]) >= 3 {
			results[pi].TStar, results[pi].Predicted = stats.OptimalCutoff(pilots[pi])
		} else {
			results[pi].TStar, results[pi].Predicted = math.NaN(), math.NaN()
		}
	}

	// Phase 2: head-to-head at the estimated cutoffs.
	type cell struct{ times []float64 }
	cells := make(map[string]*cell)
	key := func(pi int, algo string) string { return fmt.Sprint(pi, "|", algo) }
	tasks = nil
	for pi, p := range cfg.Bench.Problems {
		specs := map[string]string{
			"naive":    "naive",
			"luby":     "luby",
			"adaptive": "adaptive",
		}
		if !math.IsNaN(results[pi].TStar) && results[pi].TStar >= 1 {
			specs["fixed"] = fmt.Sprintf("fixed:%d", int64(results[pi].TStar))
		}
		for algo, spec := range specs {
			cells[key(pi, algo)] = &cell{}
			for t := 0; t < cfg.Trials; t++ {
				pi, p, algo, spec, t := pi, p, algo, spec, t
				tasks = append(tasks, func() {
					r := Trial(p, spec, cfg.Bench.Set, cfg.Cost, cfg.Beta, cfg.Budget,
						trialSeed(cfg.Seed, p.Name, algo+"-cmp", cfg.Cost, t))
					if r.Solved {
						mu.Lock()
						c := cells[key(pi, algo)]
						c.times = append(c.times, float64(r.Iterations))
						mu.Unlock()
					}
				})
			}
		}
	}
	runParallel(cfg.Parallelism, tasks)
	for pi := range cfg.Bench.Problems {
		get := func(algo string) float64 {
			c, ok := cells[key(pi, algo)]
			if !ok {
				return math.NaN()
			}
			return stats.PenalizedMean(c.times, cfg.Trials, float64(cfg.Budget))
		}
		results[pi].Fixed = get("fixed")
		results[pi].Luby = get("luby")
		results[pi].Adaptive = get("adaptive")
		results[pi].Naive = get("naive")
	}
	return results
}

// ReportCutoff renders the ablation table.
func ReportCutoff(w io.Writer, results []CutoffResult) {
	rows := [][]string{{"problem", "t*", "predicted", "fixed(t*)", "luby", "adaptive", "naive"}}
	for _, r := range results {
		rows = append(rows, []string{
			r.Problem,
			textplot.FormatFloat(r.TStar),
			textplot.FormatFloat(r.Predicted),
			textplot.FormatFloat(r.Fixed),
			textplot.FormatFloat(r.Luby),
			textplot.FormatFloat(r.Adaptive),
			textplot.FormatFloat(r.Naive),
		})
	}
	textplot.Table(w, rows)
	fmt.Fprintln(w, "fixed(t*) is tuned per problem from pilot runs; luby and adaptive are untuned.")
}
