package experiment

import (
	"fmt"
	"io"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/plateau"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/textplot"
)

// PlateauConfig configures the plateau-chart experiments (Figures 1,
// 7, and 11): many traced runs of one problem binned into a cost ×
// log-iteration density chart.
type PlateauConfig struct {
	Problem Problem
	Set     *prog.OpSet
	Cost    cost.Kind
	Beta    float64
	// Runs is the number of independent traced searches.
	Runs int
	// Budget bounds each run.
	Budget int64
	Seed   uint64
	// XBins and YBins set the chart resolution (defaults 72x20).
	XBins, YBins int
	Parallelism  int
}

// PlateauResult holds the chart and per-run plateau decompositions.
type PlateauResult struct {
	Chart *plateau.Chart
	// Runs holds each run's trace summary.
	Runs []plateau.RunTrace
	// Plateaus holds each run's detected plateaus.
	Plateaus [][]plateau.Plateau
	// Finished counts runs that reached cost zero.
	Finished int
}

// PlateauChart runs the experiment.
func PlateauChart(cfg PlateauConfig) *PlateauResult {
	if cfg.XBins <= 0 {
		cfg.XBins = 72
	}
	if cfg.YBins <= 0 {
		cfg.YBins = 20
	}
	runs := make([]plateau.RunTrace, cfg.Runs)
	var tasks []task
	var mu sync.Mutex
	for i := 0; i < cfg.Runs; i++ {
		i := i
		tasks = append(tasks, func() {
			seed := trialSeed(cfg.Seed, cfg.Problem.Name, "plateau", cfg.Cost, i)
			r := search.New(cfg.Problem.Suite, search.Options{
				Set: cfg.Set, Cost: cfg.Cost, Beta: cfg.Beta,
				Seed: seed, TraceCosts: true,
			})
			used, done := r.Step(cfg.Budget)
			mu.Lock()
			runs[i] = plateau.RunTrace{
				Trace:      r.Trace(),
				Finished:   done,
				FinishIter: used,
			}
			mu.Unlock()
		})
	}
	runParallel(cfg.Parallelism, tasks)

	res := &PlateauResult{Runs: runs}
	for i := range runs {
		if runs[i].Finished {
			res.Finished++
		}
		res.Plateaus = append(res.Plateaus, plateau.Detect(runs[i].Trace, cfg.Budget/1000))
	}
	res.Chart = plateau.BuildChart(runs, cfg.XBins, cfg.YBins)
	return res
}

// Report renders the chart and a plateau summary.
func (r *PlateauResult) Report(w io.Writer) {
	fmt.Fprintf(w, "plateau chart (%d runs, %d finished):\n", len(r.Runs), r.Finished)
	textplot.Heat(w, r.Chart.Density, "log10(iterations)", "cost (low at bottom)")
	// Plateau census: how many plateaus per run.
	counts := map[int]int{}
	maxP := 0
	for _, ps := range r.Plateaus {
		counts[len(ps)]++
		if len(ps) > maxP {
			maxP = len(ps)
		}
	}
	labels := make([]string, 0, maxP+1)
	vals := make([]int, 0, maxP+1)
	for n := 0; n <= maxP; n++ {
		if counts[n] > 0 {
			labels = append(labels, fmt.Sprintf("%d plateaus", n))
			vals = append(vals, counts[n])
		}
	}
	fmt.Fprintln(w, "plateaus per run:")
	textplot.Histogram(w, labels, vals)

	// Per-level exit statistics (the Section 4.1 quantities): how long
	// the search dwells at each cost level and how geometric the dwell
	// times look.
	tol := (r.Chart.CostMax - r.Chart.CostMin) / 50
	levels := plateau.Levels(r.Plateaus, tol)
	if len(levels) > 0 {
		fmt.Fprintln(w, "plateau levels (dwell times and exit rates):")
		rows := [][]string{{"cost", "visits", "mean dwell", "median", "exit prob", "geom KS"}}
		max := len(levels)
		if max > 8 {
			max = 8
		}
		for _, l := range levels[:max] {
			rows = append(rows, []string{
				textplot.FormatFloat(l.Cost), fmt.Sprint(l.Count),
				textplot.FormatFloat(l.MeanLen), textplot.FormatFloat(l.MedianLen),
				textplot.FormatFloat(l.ExitProb), textplot.FormatFloat(l.GeomKS),
			})
		}
		textplot.Table(w, rows)
	}
}

// CSV emits the density grid.
func (r *PlateauResult) CSV(w io.Writer) error {
	rows := [][]string{{"ybin", "xbin", "count"}}
	for y, row := range r.Chart.Density {
		for x, d := range row {
			rows = append(rows, []string{fmt.Sprint(y), fmt.Sprint(x), fmt.Sprint(d)})
		}
	}
	return textplot.CSV(w, rows)
}
