package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/search"
	"stochsyn/internal/stats"
	"stochsyn/internal/textplot"
)

// FitConfig configures the Figure 6 experiment: for a selection of
// benchmark problems, run many naive synthesis trials and fit the
// distribution of finishing times against the geometric, gamma, and
// log-normal families.
type FitConfig struct {
	Bench *Benchmark
	// Problems is the number of problems to sample from the benchmark
	// (the paper shows ten).
	Problems int
	Cost     cost.Kind
	Beta     float64
	// Trials is the number of synthesis runs per problem.
	Trials int
	// Budget is the per-run iteration cutoff.
	Budget int64
	Seed   uint64
	// MinSuccesses is the minimum number of finished runs needed to
	// attempt a fit (default 10).
	MinSuccesses int
	Parallelism  int
}

// ProblemFit is one problem's distribution analysis.
type ProblemFit struct {
	Problem string
	// Times are the finishing times of successful runs.
	Times []float64
	// Fits are the per-family fits sorted best-first; nil when too few
	// runs finished.
	Fits []stats.Fit
	// TailRatio is mean/median, the heavy-tail diagnostic.
	TailRatio float64
}

// Best returns the best-fit family name, or "insufficient".
func (p *ProblemFit) Best() string {
	if len(p.Fits) == 0 {
		return "insufficient"
	}
	return p.Fits[0].Dist.Name()
}

// FitResult is the census over problems.
type FitResult struct {
	Bench string
	Fits  []ProblemFit
}

// Census counts the best-fit families, the Figure 6 headline (the
// prevalence of log-normal-like distributions).
func (r *FitResult) Census() map[string]int {
	out := map[string]int{}
	for i := range r.Fits {
		out[r.Fits[i].Best()]++
	}
	return out
}

// Fits runs the experiment.
func Fits(cfg FitConfig) *FitResult {
	if cfg.MinSuccesses <= 0 {
		cfg.MinSuccesses = 10
	}
	problems := cfg.Bench.Problems
	if cfg.Problems > 0 && len(problems) > cfg.Problems {
		problems = cfg.Bench.Subset(float64(cfg.Problems)/float64(len(problems)), cfg.Seed).Problems
	}
	res := &FitResult{Bench: cfg.Bench.Name}
	res.Fits = make([]ProblemFit, len(problems))
	var mu sync.Mutex
	var tasks []task
	for pi, p := range problems {
		res.Fits[pi].Problem = p.Name
		for t := 0; t < cfg.Trials; t++ {
			pi, p, t := pi, p, t
			tasks = append(tasks, func() {
				seed := trialSeed(cfg.Seed, p.Name, "naive-fit", cfg.Cost, t)
				run := search.New(p.Suite, search.Options{
					Set: cfg.Bench.Set, Cost: cfg.Cost, Beta: cfg.Beta, Seed: seed,
				})
				used, done := run.Step(cfg.Budget)
				if done {
					mu.Lock()
					res.Fits[pi].Times = append(res.Fits[pi].Times, float64(used))
					mu.Unlock()
				}
			})
		}
	}
	runParallel(cfg.Parallelism, tasks)
	for i := range res.Fits {
		pf := &res.Fits[i]
		sort.Float64s(pf.Times)
		pf.TailRatio = stats.TailRatio(pf.Times)
		if len(pf.Times) >= cfg.MinSuccesses {
			pf.Fits = stats.FitAll(pf.Times)
		}
	}
	return res
}

// Report renders the per-problem fits and the family census.
func (r *FitResult) Report(w io.Writer) {
	rows := [][]string{{"problem", "finished", "best fit", "KS", "mean/median"}}
	for i := range r.Fits {
		pf := &r.Fits[i]
		ks := math.NaN()
		best := pf.Best()
		if len(pf.Fits) > 0 {
			ks = pf.Fits[0].KS
			best = pf.Fits[0].Dist.String()
		}
		rows = append(rows, []string{
			pf.Problem, fmt.Sprint(len(pf.Times)), best,
			textplot.FormatFloat(ks), textplot.FormatFloat(pf.TailRatio),
		})
	}
	textplot.Table(w, rows)
	fmt.Fprintln(w)
	census := r.Census()
	labels := textplot.SortedKeys(census)
	counts := make([]int, len(labels))
	for i, l := range labels {
		counts[i] = census[l]
	}
	fmt.Fprintln(w, "best-fit family census:")
	textplot.Histogram(w, labels, counts)
}

// CSV emits per-problem rows.
func (r *FitResult) CSV(w io.Writer) error {
	rows := [][]string{{"bench", "problem", "finished", "best_fit", "ks", "tail_ratio"}}
	for i := range r.Fits {
		pf := &r.Fits[i]
		ks := ""
		if len(pf.Fits) > 0 {
			ks = textplot.FormatFloat(pf.Fits[0].KS)
		}
		rows = append(rows, []string{
			r.Bench, pf.Problem, fmt.Sprint(len(pf.Times)), pf.Best(), ks,
			textplot.FormatFloat(pf.TailRatio),
		})
	}
	return textplot.CSV(w, rows)
}
