package experiment

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

func TestSyGuSBenchmark(t *testing.T) {
	b := SyGuSBenchmark(1, 8)
	if len(b.Problems) != 8 {
		t.Fatalf("got %d problems", len(b.Problems))
	}
	if b.Name != "sygus" || b.Set != prog.FullSet {
		t.Error("benchmark metadata wrong")
	}
	// Requesting more than the curated list appends generated
	// problems.
	big := SyGuSBenchmark(1, 40)
	if len(big.Problems) != 40 {
		t.Errorf("big benchmark has %d problems", len(big.Problems))
	}
}

func TestSuperoptBenchmark(t *testing.T) {
	b, stats, err := SuperoptBenchmark(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Problems) == 0 || len(b.Problems) > 6 {
		t.Fatalf("got %d problems (stats %v)", len(b.Problems), stats)
	}
	if b.Name != "superopt" {
		t.Error("benchmark name wrong")
	}
}

func TestSubset(t *testing.T) {
	b := SyGuSBenchmark(1, 20)
	s := b.Subset(0.25, 7)
	if len(s.Problems) != 5 {
		t.Errorf("subset has %d problems, want 5", len(s.Problems))
	}
	// Deterministic.
	s2 := b.Subset(0.25, 7)
	for i := range s.Problems {
		if s.Problems[i].Name != s2.Problems[i].Name {
			t.Error("subset not deterministic")
		}
	}
	// Fraction 1 returns the benchmark itself.
	if full := b.Subset(1, 7); len(full.Problems) != 20 {
		t.Error("full subset truncated")
	}
}

func TestTrialDeterministic(t *testing.T) {
	b := SyGuSBenchmark(1, 1)
	p := b.Problems[0]
	r1 := Trial(p, "naive", b.Set, cost.Hamming, 2, 50_000, 123)
	r2 := Trial(p, "naive", b.Set, cost.Hamming, 2, 50_000, 123)
	if r1.Solved != r2.Solved || r1.Iterations != r2.Iterations {
		t.Error("identical trials diverged")
	}
}

func TestTrialSeedsDiffer(t *testing.T) {
	s1 := trialSeed(1, "p", "naive", cost.Hamming, 0)
	s2 := trialSeed(1, "p", "naive", cost.Hamming, 1)
	s3 := trialSeed(1, "p", "luby", cost.Hamming, 0)
	s4 := trialSeed(1, "q", "naive", cost.Hamming, 0)
	if s1 == s2 || s1 == s3 || s1 == s4 {
		t.Error("trial seeds collide across dimensions")
	}
}

func TestBetaSweepSmall(t *testing.T) {
	b := SyGuSBenchmark(1, 2)
	res := BetaSweep(BetaSweepConfig{
		Bench:      b,
		Algorithms: []string{"naive", "adaptive"},
		Costs:      []cost.Kind{cost.Hamming},
		Betas:      []float64{0, 1, 4},
		Trials:     2,
		Budget:     300_000,
		Seed:       1,
	})
	if len(res.Curves) != 2 {
		t.Fatalf("got %d curves", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.FailRate) != 3 {
			t.Fatalf("curve has %d points", len(c.FailRate))
		}
		for _, fr := range c.FailRate {
			if fr < 0 || fr > 1 {
				t.Errorf("failure rate %g out of range", fr)
			}
		}
		// OptimalBeta must come from the grid.
		ob := c.OptimalBeta()
		if ob != 0 && ob != 1 && ob != 4 {
			t.Errorf("optimal beta %g not on grid", ob)
		}
	}
	if res.Curve("naive", cost.Hamming) == nil {
		t.Error("Curve lookup failed")
	}
	if res.Curve("bogus", cost.Hamming) != nil {
		t.Error("Curve lookup returned a phantom")
	}

	var report strings.Builder
	res.OptimalBetaTable(&report)
	res.Plot(&report, cost.Hamming, 40, 8)
	if err := res.CSV(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "naive") {
		t.Error("reports missing algorithm names")
	}
}

func TestCompareSmall(t *testing.T) {
	b := SyGuSBenchmark(1, 3)
	res := Compare(CompareConfig{
		Bench:      b,
		Algorithms: []string{"naive", "adaptive"},
		Costs:      []cost.Kind{cost.Hamming},
		Beta:       func(string, cost.Kind) float64 { return 2 },
		Trials:     3,
		Budget:     400_000,
		Seed:       2,
	})
	if len(res.Results) != 3*2*1 {
		t.Fatalf("got %d cells", len(res.Results))
	}
	cac := res.Cactus("adaptive", cost.Hamming)
	if len(cac) != 3 {
		t.Fatalf("cactus has %d points", len(cac))
	}
	for i := 1; i < len(cac); i++ {
		if cac[i] < cac[i-1] {
			t.Error("cactus not sorted")
		}
	}
	uf := res.UnsolvedFraction("adaptive", cost.Hamming)
	if uf < 0 || uf > 1 {
		t.Errorf("unsolved fraction %g", uf)
	}
	if sa := res.SolvedAtLeastOnce(); sa < 0 || sa > 1 {
		t.Errorf("solved-at-least-once %g", sa)
	}

	var report strings.Builder
	res.PlotCactus(&report, cost.Hamming, []string{"naive", "adaptive"}, 40, 8)
	res.SpeedupTable(&report, []string{"naive", "adaptive"}, []cost.Kind{cost.Hamming}, []int{2}, 1)
	res.UnsolvedTable(&report, []string{"naive", "adaptive"}, []cost.Kind{cost.Hamming})
	if err := res.CSV(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "cactus") {
		t.Error("cactus header missing")
	}
}

func TestSpeedupAtHandlesTimeouts(t *testing.T) {
	res := &CompareResult{Bench: "x", Budget: 100}
	res.Results = []ProblemResult{
		{Problem: "p", Algorithm: "a", Cost: cost.Hamming, Mean: math.Inf(1)},
		{Problem: "p", Algorithm: "b", Cost: cost.Hamming, Mean: 50},
	}
	if sp := res.SpeedupAt("a", "b", cost.Hamming, 1, 1); !math.IsNaN(sp) {
		t.Errorf("speedup with timeout = %g, want NaN", sp)
	}
}

func TestModelChainsExperiment(t *testing.T) {
	results := ModelChains(ModelChainConfig{
		Algorithms: []string{"luby:100", "adaptive:100"},
		Trials:     15,
		Budget:     1_500_000,
		Seed:       1,
	})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	means := map[string]float64{}
	for _, r := range results {
		if r.Solved == 0 {
			t.Errorf("%s on %s never solved", r.Algorithm, r.Chain)
		}
		means[r.Chain+"|"+r.Algorithm] = r.MeanIters
	}
	// The Section 5.2.1 directional claims.
	if !(means["a (cost aligns with exit rate)|adaptive:100"] < means["a (cost aligns with exit rate)|luby:100"]) {
		t.Error("adaptive not faster than luby on chain (a)")
	}
	if !(means["b (correlation reversed)|adaptive:100"] > means["b (correlation reversed)|luby:100"]) {
		t.Error("adaptive not slower than luby on chain (b)")
	}
	var sb strings.Builder
	ReportModelChains(&sb, results)
	if !strings.Contains(sb.String(), "adaptive/luby mean ratio") {
		t.Error("report missing ratio lines")
	}
}

func TestMarkovExperimentSmall(t *testing.T) {
	res, err := MarkovExperiment(MarkovConfig{Trials: 25, Budget: 150_000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) < 15 || len(res.Predicted) < 15 {
		t.Fatalf("too few samples: %d measured, %d predicted", len(res.Measured), len(res.Predicted))
	}
	if res.KS < 0 || res.KS > 1 {
		t.Errorf("KS = %g", res.KS)
	}
	// The prediction should be in the right ballpark (Figure 4 shows
	// close agreement; we allow a loose factor at this tiny scale).
	mm := mean(res.Measured)
	pm := mean(res.Predicted)
	if ratio := mm / pm; ratio < 0.25 || ratio > 4 {
		t.Errorf("measured mean %g vs predicted %g", mm, pm)
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "KS distance") {
		t.Error("report incomplete")
	}
}

func TestPlateauChartExperiment(t *testing.T) {
	b := SyGuSBenchmark(1, 1)
	res := PlateauChart(PlateauConfig{
		Problem: b.Problems[0],
		Set:     b.Set,
		Cost:    cost.Hamming,
		Beta:    1,
		Runs:    8,
		Budget:  150_000,
		Seed:    3,
	})
	if len(res.Runs) != 8 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	if res.Chart == nil || res.Chart.Density == nil {
		t.Fatal("no chart produced")
	}
	if len(res.Plateaus) != 8 {
		t.Errorf("plateau decompositions: %d", len(res.Plateaus))
	}
	var sb strings.Builder
	res.Report(&sb)
	if err := res.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "plateau chart") {
		t.Error("report incomplete")
	}
}

func TestFitsExperiment(t *testing.T) {
	b := SyGuSBenchmark(1, 3)
	res := Fits(FitConfig{
		Bench:        b,
		Problems:     2,
		Cost:         cost.Hamming,
		Beta:         2,
		Trials:       12,
		Budget:       300_000,
		Seed:         5,
		MinSuccesses: 8,
	})
	if len(res.Fits) != 2 {
		t.Fatalf("got %d problem fits", len(res.Fits))
	}
	census := res.Census()
	total := 0
	for _, n := range census {
		total += n
	}
	if total != 2 {
		t.Errorf("census covers %d problems", total)
	}
	var sb strings.Builder
	res.Report(&sb)
	if err := res.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "best-fit family census") {
		t.Error("report incomplete")
	}
}

func TestDefaultBetaGrid(t *testing.T) {
	g := DefaultBetaGrid(cost.Hamming, 5)
	if g[0] != 0 {
		t.Error("grid must start with the beta=0 point")
	}
	if len(g) != 6 {
		t.Errorf("grid has %d points", len(g))
	}
	for i := 2; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Error("grid not increasing")
		}
	}
	inc := DefaultBetaGrid(cost.IncorrectTests, 5)
	if inc[len(inc)-1] >= g[len(g)-1] {
		t.Error("incorrect-tests grid should use a lower range")
	}
}

func TestRunParallelExecutesAll(t *testing.T) {
	n := 100
	hits := make([]bool, n)
	var tasks []task
	for i := 0; i < n; i++ {
		i := i
		tasks = append(tasks, func() { hits[i] = true })
	}
	runParallel(4, tasks)
	for i, h := range hits {
		if !h {
			t.Fatalf("task %d not executed", i)
		}
	}
	// Sequential path.
	done := false
	runParallel(1, []task{func() { done = true }})
	if !done {
		t.Error("sequential path skipped task")
	}
}

func TestCutoffAblation(t *testing.T) {
	b := SyGuSBenchmark(1, 2)
	results := CutoffAblation(CutoffConfig{
		Bench:     b,
		Cost:      cost.Hamming,
		Beta:      2,
		PilotRuns: 8,
		Trials:    4,
		Budget:    400_000,
		Seed:      7,
	})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Problem == "" {
			t.Error("missing problem name")
		}
		// With 8 pilot runs on easy problems t* should be estimated.
		if math.IsNaN(r.TStar) {
			t.Logf("%s: t* not estimated (few pilot finishes)", r.Problem)
			continue
		}
		if r.TStar <= 0 || r.TStar > 400_000 {
			t.Errorf("%s: t* = %g out of range", r.Problem, r.TStar)
		}
	}
	var sb strings.Builder
	ReportCutoff(&sb, results)
	if !strings.Contains(sb.String(), "fixed(t*)") {
		t.Error("report incomplete")
	}
}

func TestEqSatExperiment(t *testing.T) {
	mk := func(name, expr string, inputs int) EqSatProblem {
		t.Helper()
		ref := prog.MustParse(expr, inputs)
		rng := rand.New(rand.NewPCG(7, 0xe95a7))
		suite := testcase.Generate(func(in []uint64) uint64 { return ref.Output(in) },
			inputs, 30, rng)
		return EqSatProblem{Name: name, SuiteName: "fixture", Suite: suite, Ref: ref}
	}
	res := EqSat(EqSatConfig{
		Problems: []EqSatProblem{
			mk("offset", "addq(addq(x, 1), 2)", 1),
			mk("xor-cancel", "xorq(xorq(x, y), y)", 2),
		},
		Budget: 50_000,
		Seed:   3,
	})
	if !res.Deterministic {
		t.Fatal("recomputed rows diverged")
	}
	for _, row := range res.Rows {
		if !row.Verified {
			t.Errorf("%s: an arm's program failed suite verification", row.Name)
		}
		// No arm may report a larger program than the reference: the
		// reference itself is always a candidate.
		for arm, size := range map[string]int{
			"stoch": row.StochSize, "eqsat": row.EqSatSize, "hybrid": row.HybridSize,
		} {
			if size > row.RefSize {
				t.Errorf("%s/%s: size %d exceeds reference %d", row.Name, arm, size, row.RefSize)
			}
		}
		// The hybrid starts from the extraction and keeps the better of
		// the two, so it can never lose to the eqsat arm.
		if row.HybridSize > row.EqSatSize {
			t.Errorf("%s: hybrid %d worse than eqsat %d", row.Name, row.HybridSize, row.EqSatSize)
		}
		if len(row.ExtractionHash) != 16 {
			t.Errorf("%s: extraction hash %q not 16 hex digits", row.Name, row.ExtractionHash)
		}
	}
	// The eqsat arm alone collapses both fixtures (pure rule wins).
	if got := res.Rows[0].EqSatSize; got != 2 {
		t.Errorf("offset eqsat size = %d, want 2 (addq(3, x): const + add)", got)
	}
	if got := res.Rows[1].EqSatSize; got != 0 {
		t.Errorf("xor-cancel eqsat size = %d, want 0 (bare input)", got)
	}
	var sb strings.Builder
	res.Report(&sb)
	if !strings.Contains(sb.String(), "mean size reduction") {
		t.Errorf("report missing summary:\n%s", sb.String())
	}
}
