package experiment

import (
	"fmt"
	"io"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/superopt"
	"stochsyn/internal/textplot"
)

// This file implements the Section 7.4 analysis: classify why some
// benchmark problems never synthesize. The paper manually reviewed its
// 28 never-synthesized superoptimization problems and attributed 16 to
// non-trivial constants, 7 to heavy shift use, and 5 to other causes;
// with reference translations available, the same classification can
// be computed automatically.

// FailureCategory labels why a problem is hard.
type FailureCategory string

const (
	// FailConstants marks problems whose reference uses constants that
	// the constant generator is unlikely to guess.
	FailConstants FailureCategory = "non-trivial constants"
	// FailShifts marks problems whose reference is shift-heavy (the
	// cost functions are not smooth under shifts).
	FailShifts FailureCategory = "many shifts"
	// FailOther covers the rest.
	FailOther FailureCategory = "other"
)

// Classify attributes a reference program to a failure category using
// the paper's two leading causes: it reports FailConstants when the
// reference contains a constant outside the generator's "interesting"
// classes, FailShifts when at least a third of its instructions are
// shifts or rotates, and FailOther otherwise.
func Classify(ref *prog.Program) FailureCategory {
	shifts, instrs := 0, 0
	for i := ref.NumInputs; i < len(ref.Nodes); i++ {
		nd := ref.Nodes[i]
		switch nd.Op {
		case prog.OpConst:
			if !trivialConstant(nd.Val) {
				return FailConstants
			}
		case prog.OpShl, prog.OpShr, prog.OpSar, prog.OpRol, prog.OpRor,
			prog.OpShl32, prog.OpShr32, prog.OpSar32,
			prog.OpMShl, prog.OpMShr:
			shifts++
			instrs++
		default:
			if nd.Op.IsInstruction() {
				instrs++
			}
		}
	}
	if instrs > 0 && shifts*3 >= instrs && shifts >= 2 {
		return FailShifts
	}
	return FailOther
}

// trivialConstant reports whether the constant generator produces v
// with non-negligible probability: corner values, small signed
// integers, single bits and their complements, and contiguous masks.
func trivialConstant(v uint64) bool {
	if int64(v) >= -16 && int64(v) <= 16 {
		return true
	}
	if v&(v-1) == 0 { // single bit (or zero)
		return true
	}
	if n := ^v; n&(n-1) == 0 { // all ones with a hole
		return true
	}
	if v != 0 && (v+1)&v == 0 { // contiguous low mask
		return true
	}
	for _, c := range [...]uint64{
		0x00000000FFFFFFFF, 0xFFFFFFFF00000000, 0x5555555555555555,
		0xAAAAAAAAAAAAAAAA, 0x00FF00FF00FF00FF, 0x0123456789ABCDEF,
		0x8000000000000001,
	} {
		if v == c {
			return true
		}
	}
	return false
}

// FailureConfig configures the Section 7.4 experiment on the
// superoptimization benchmark.
type FailureConfig struct {
	// Problems is the superopt benchmark with references.
	Problems []*superopt.Problem
	// Trials and Budget define "never synthesized": a problem counts
	// as unsolved when no trial of the adaptive strategy finishes.
	Trials int
	Budget int64
	Beta   float64
	Seed   uint64
	// Parallelism bounds concurrent trials.
	Parallelism int
}

// FailureResult is the outcome.
type FailureResult struct {
	Total    int
	Unsolved []*superopt.Problem
	// Census counts unsolved problems per category.
	Census map[FailureCategory]int
}

// FailureAnalysis runs the experiment.
func FailureAnalysis(cfg FailureConfig) *FailureResult {
	res := &FailureResult{Total: len(cfg.Problems), Census: map[FailureCategory]int{}}
	solved := make([]bool, len(cfg.Problems))
	var mu sync.Mutex
	var tasks []task
	for pi, p := range cfg.Problems {
		for t := 0; t < cfg.Trials; t++ {
			pi, p, t := pi, p, t
			tasks = append(tasks, func() {
				mu.Lock()
				already := solved[pi]
				mu.Unlock()
				if already {
					return
				}
				r := Trial(Problem{Name: p.Name, Suite: p.Suite}, "adaptive",
					prog.FullSet, cost.Hamming, cfg.Beta, cfg.Budget,
					trialSeed(cfg.Seed, p.Name, "fail", cost.Hamming, t))
				if r.Solved {
					mu.Lock()
					solved[pi] = true
					mu.Unlock()
				}
			})
		}
	}
	runParallel(cfg.Parallelism, tasks)
	for pi, p := range cfg.Problems {
		if solved[pi] {
			continue
		}
		res.Unsolved = append(res.Unsolved, p)
		cat := FailOther
		if p.Reference != nil {
			cat = Classify(p.Reference)
		}
		res.Census[cat]++
	}
	return res
}

// Report renders the census in the style of Section 7.4.
func (r *FailureResult) Report(w io.Writer) {
	fmt.Fprintf(w, "unsolved: %d of %d problems (%.1f%%)\n",
		len(r.Unsolved), r.Total, 100*float64(len(r.Unsolved))/float64(maxInt(r.Total, 1)))
	labels := []string{string(FailConstants), string(FailShifts), string(FailOther)}
	counts := []int{
		r.Census[FailConstants], r.Census[FailShifts], r.Census[FailOther],
	}
	textplot.Histogram(w, labels, counts)
	for _, p := range r.Unsolved {
		ref := "-"
		if p.Reference != nil {
			ref = p.Reference.String()
		}
		fmt.Fprintf(w, "  %s [%s]: %s\n", p.Name, ClassifyName(p), ref)
	}
}

// ClassifyName is Classify with a nil guard, for reports.
func ClassifyName(p *superopt.Problem) FailureCategory {
	if p.Reference == nil {
		return FailOther
	}
	return Classify(p.Reference)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
