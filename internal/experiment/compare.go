package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/stats"
	"stochsyn/internal/textplot"
)

// CompareConfig configures the main evaluation (Section 7.3): many
// trials of each algorithm and cost function on every benchmark
// problem at the algorithm's optimal β, summarized by penalized mean
// times.
type CompareConfig struct {
	Bench      *Benchmark
	Algorithms []string
	Costs      []cost.Kind
	// Beta returns the β for (algorithm, cost); use the β sweep's
	// optima (Table 1) for a fair comparison.
	Beta func(algo string, kind cost.Kind) float64
	// Trials per (problem, algorithm, cost); the paper runs 50.
	Trials int
	// Budget is the per-trial iteration cutoff C (the paper uses 100M);
	// it is also the penalty unit of the Section 7.2 estimator.
	Budget int64
	// Seed drives all trials.
	Seed uint64
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
}

// ProblemResult is one (problem, algorithm, cost) cell.
type ProblemResult struct {
	Problem   string
	Algorithm string
	Cost      cost.Kind
	// SuccessTimes holds the iteration counts of successful trials.
	SuccessTimes []float64
	Trials       int
	// Mean is the penalized mean estimate of Section 7.2.
	Mean float64
}

// CompareResult is the full comparison.
type CompareResult struct {
	Bench   string
	Budget  int64
	Trials  int
	Results []ProblemResult
}

// Compare runs the experiment.
func Compare(cfg CompareConfig) *CompareResult {
	res := &CompareResult{Bench: cfg.Bench.Name, Budget: cfg.Budget, Trials: cfg.Trials}
	cells := make([]ProblemResult, 0, len(cfg.Bench.Problems)*len(cfg.Algorithms)*len(cfg.Costs))
	for _, p := range cfg.Bench.Problems {
		for _, algo := range cfg.Algorithms {
			for _, kind := range cfg.Costs {
				cells = append(cells, ProblemResult{
					Problem: p.Name, Algorithm: algo, Cost: kind, Trials: cfg.Trials,
				})
			}
		}
	}
	var mu sync.Mutex
	var tasks []task
	ci := 0
	for _, p := range cfg.Bench.Problems {
		for _, algo := range cfg.Algorithms {
			for _, kind := range cfg.Costs {
				idx := ci
				ci++
				beta := 1.0
				if cfg.Beta != nil {
					beta = cfg.Beta(algo, kind)
				}
				for t := 0; t < cfg.Trials; t++ {
					p, algo, kind, beta, t := p, algo, kind, beta, t
					tasks = append(tasks, func() {
						seed := trialSeed(cfg.Seed, p.Name, algo, kind, t)
						r := Trial(p, algo, cfg.Bench.Set, kind, beta, cfg.Budget, seed)
						if r.Solved {
							mu.Lock()
							cells[idx].SuccessTimes = append(cells[idx].SuccessTimes, float64(r.Iterations))
							mu.Unlock()
						}
					})
				}
			}
		}
	}
	runParallel(cfg.Parallelism, tasks)
	for i := range cells {
		sort.Float64s(cells[i].SuccessTimes)
		cells[i].Mean = stats.PenalizedMean(cells[i].SuccessTimes, cfg.Trials, float64(cfg.Budget))
	}
	res.Results = cells
	return res
}

// Cactus returns the sorted penalized means of one (algorithm, cost)
// pair: the y-values of the cactus plots of Figures 14-16, where x is
// the ordinal rank of the problem (each algorithm's problems sorted by
// its own means).
func (r *CompareResult) Cactus(algo string, kind cost.Kind) []float64 {
	var means []float64
	for i := range r.Results {
		c := &r.Results[i]
		if c.Algorithm == algo && c.Cost == kind {
			means = append(means, c.Mean)
		}
	}
	sort.Float64s(means)
	return means
}

// SpeedupAt implements Table 2: the speedup of algorithm "base"
// relative to algorithm "against" at ordinal rank (1-based), computed
// as the geometric mean of the ratio over a window of ranks to reduce
// noise. It returns NaN when timeouts prevent computing a ratio.
func (r *CompareResult) SpeedupAt(against, base string, kind cost.Kind, rank, window int) float64 {
	a := r.Cactus(against, kind)
	b := r.Cactus(base, kind)
	var ratios []float64
	for i := rank - 1 - window/2; i <= rank-1+window/2; i++ {
		if i < 0 || i >= len(a) || i >= len(b) {
			continue
		}
		if math.IsInf(a[i], 1) || math.IsInf(b[i], 1) || b[i] == 0 {
			continue
		}
		ratios = append(ratios, a[i]/b[i])
	}
	if len(ratios) == 0 {
		return math.NaN()
	}
	return stats.GeoMean(ratios)
}

// UnsolvedFraction implements Table 3: the fraction of problems whose
// penalized expected time exceeds the budget (equivalently, where the
// cactus curve crosses the dashed cutoff line).
func (r *CompareResult) UnsolvedFraction(algo string, kind cost.Kind) float64 {
	means := r.Cactus(algo, kind)
	if len(means) == 0 {
		return math.NaN()
	}
	n := 0
	for _, m := range means {
		if m > float64(r.Budget) || math.IsInf(m, 1) {
			n++
		}
	}
	return float64(n) / float64(len(means))
}

// SolvedAtLeastOnce returns the fraction of problems solved in at
// least one trial by any of the given algorithms and costs (the
// paper's 97% headline for the superoptimization benchmark).
func (r *CompareResult) SolvedAtLeastOnce() float64 {
	solved := map[string]bool{}
	problems := map[string]bool{}
	for i := range r.Results {
		c := &r.Results[i]
		problems[c.Problem] = true
		if len(c.SuccessTimes) > 0 {
			solved[c.Problem] = true
		}
	}
	if len(problems) == 0 {
		return math.NaN()
	}
	return float64(len(solved)) / float64(len(problems))
}

// PlotCactus renders the cactus plot for one cost function.
func (r *CompareResult) PlotCactus(w io.Writer, kind cost.Kind, algorithms []string, width, height int) {
	var series []textplot.Series
	for _, algo := range algorithms {
		means := r.Cactus(algo, kind)
		s := textplot.Series{Name: algo}
		for i, m := range means {
			if math.IsInf(m, 1) || m <= 0 {
				continue
			}
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, m)
		}
		series = append(series, s)
	}
	fmt.Fprintf(w, "cactus plot (%s / %s); horizontal cutoff at %d iterations:\n", r.Bench, kind, r.Budget)
	textplot.Lines(w, series, width, height, false, true, "rank", "mean iterations")
}

// SpeedupTable renders Table 2 for this benchmark: the speedup of the
// last algorithm in algorithms (the adaptive baseline) over each other
// algorithm at the given ordinal ranks.
func (r *CompareResult) SpeedupTable(w io.Writer, algorithms []string, kinds []cost.Kind, ranks []int, window int) {
	if len(algorithms) == 0 {
		return
	}
	base := algorithms[len(algorithms)-1]
	header := []string{"cost", "algorithm"}
	for _, rank := range ranks {
		header = append(header, fmt.Sprintf("rank %d", rank))
	}
	rows := [][]string{header}
	for _, kind := range kinds {
		for _, algo := range algorithms {
			row := []string{kind.String(), algo}
			for _, rank := range ranks {
				if algo == base {
					row = append(row, "1")
					continue
				}
				sp := r.SpeedupAt(algo, base, kind, rank, window)
				if math.IsNaN(sp) {
					row = append(row, "-")
				} else {
					row = append(row, fmt.Sprintf("%.2f", sp))
				}
			}
			rows = append(rows, row)
		}
	}
	textplot.Table(w, rows)
}

// UnsolvedTable renders Table 3 for this benchmark.
func (r *CompareResult) UnsolvedTable(w io.Writer, algorithms []string, kinds []cost.Kind) {
	rows := [][]string{{"cost", "algorithm", "unsolved"}}
	for _, kind := range kinds {
		for _, algo := range algorithms {
			rows = append(rows, []string{
				kind.String(), algo,
				fmt.Sprintf("%.1f%%", 100*r.UnsolvedFraction(algo, kind)),
			})
		}
	}
	textplot.Table(w, rows)
}

// CSV emits every cell: problem, algorithm, cost, successes, trials,
// penalized mean.
func (r *CompareResult) CSV(w io.Writer) error {
	rows := [][]string{{"bench", "problem", "algorithm", "cost", "successes", "trials", "penalized_mean"}}
	for i := range r.Results {
		c := &r.Results[i]
		rows = append(rows, []string{
			r.Bench, c.Problem, c.Algorithm, c.Cost.String(),
			fmt.Sprint(len(c.SuccessTimes)), fmt.Sprint(c.Trials),
			textplot.FormatFloat(c.Mean),
		})
	}
	return textplot.CSV(w, rows)
}
