package experiment

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"stochsyn/internal/markov"
	"stochsyn/internal/restart"
	"stochsyn/internal/stats"
	"stochsyn/internal/textplot"
)

// ModelChainConfig configures the Figure 10 / Section 5.2.1
// experiment: run restart strategies on the two model Markov chains
// and compare mean completion times.
type ModelChainConfig struct {
	// Algorithms are restart strategy specs; the paper compares luby
	// and adaptive (naive is included for context).
	Algorithms []string
	// Trials per (chain, algorithm).
	Trials int
	// Budget bounds each trial.
	Budget int64
	Seed   uint64
	// Parallelism bounds concurrent trials.
	Parallelism int
}

// ModelChainResult summarizes one (chain, algorithm) pair.
type ModelChainResult struct {
	Chain     string
	Algorithm string
	// MeanIters is the penalized mean completion time.
	MeanIters float64
	// CILo and CIHi bound the 95% bootstrap confidence interval of the
	// mean of the successful trials (NaN when too few succeeded).
	CILo, CIHi float64
	// Solved is the number of trials that completed within budget.
	Solved int
	Trials int
}

// ModelChains runs the experiment on Figure 10's chains (a) and (b).
func ModelChains(cfg ModelChainConfig) []ModelChainResult {
	chains := []struct {
		name  string
		chain *markov.Chain
	}{
		{"a (cost aligns with exit rate)", markov.ModelChainA()},
		{"b (correlation reversed)", markov.ModelChainB()},
	}
	var results []ModelChainResult
	for _, ch := range chains {
		for _, algo := range cfg.Algorithms {
			results = append(results, ModelChainResult{Chain: ch.name, Algorithm: algo, Trials: cfg.Trials})
		}
	}
	type obs struct {
		times []float64
	}
	cells := make([]obs, len(results))
	var mu sync.Mutex
	var tasks []task
	idx := 0
	for _, ch := range chains {
		for _, algo := range cfg.Algorithms {
			i := idx
			idx++
			for t := 0; t < cfg.Trials; t++ {
				ch, algo, t := ch, algo, t
				tasks = append(tasks, func() {
					seed := trialSeed(cfg.Seed, ch.name, algo, 0, t)
					strat := restart.MustNew(algo)
					res := strat.Run(ch.chain.Factory(seed), cfg.Budget)
					if res.Solved {
						mu.Lock()
						cells[i].times = append(cells[i].times, float64(res.Iterations))
						mu.Unlock()
					}
				})
			}
		}
	}
	runParallel(cfg.Parallelism, tasks)
	for i := range results {
		results[i].Solved = len(cells[i].times)
		results[i].MeanIters = stats.PenalizedMean(cells[i].times, cfg.Trials, float64(cfg.Budget))
		results[i].CILo, results[i].CIHi = stats.BootstrapCI(cells[i].times, 0.95, 1000, cfg.Seed+uint64(i))
	}
	return results
}

// ReportModelChains renders the comparison, including the paper's
// headline ratios (adaptive ~31% faster than Luby on chain (a), ~46%
// slower on chain (b); exact values depend on the reconstructed
// transition rates).
func ReportModelChains(w io.Writer, results []ModelChainResult) {
	rows := [][]string{{"chain", "algorithm", "solved", "mean iterations", "95% CI"}}
	means := map[string]float64{}
	for _, r := range results {
		rows = append(rows, []string{
			r.Chain, r.Algorithm,
			fmt.Sprintf("%d/%d", r.Solved, r.Trials),
			textplot.FormatFloat(r.MeanIters),
			fmt.Sprintf("[%s, %s]", textplot.FormatFloat(r.CILo), textplot.FormatFloat(r.CIHi)),
		})
		means[r.Chain+"|"+r.Algorithm] = r.MeanIters
	}
	textplot.Table(w, rows)
	// Locate the luby and adaptive entries regardless of their :t0
	// suffixes.
	find := func(chain, prefix string) (float64, bool) {
		for key, v := range means {
			if strings.HasPrefix(key, chain+"|"+prefix) {
				return v, true
			}
		}
		return 0, false
	}
	for _, chain := range []string{"a (cost aligns with exit rate)", "b (correlation reversed)"} {
		luby, okL := find(chain, "luby")
		adapt, okA := find(chain, "adaptive")
		if okL && okA && adapt > 0 {
			fmt.Fprintf(w, "chain %s: adaptive/luby mean ratio = %.2f (adaptive %+.0f%% vs luby)\n",
				chain[:1], adapt/luby, 100*(luby/adapt-1))
		}
	}
}
