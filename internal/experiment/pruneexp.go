package experiment

import (
	"fmt"
	"io"
	"sort"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// This file implements the abstract-interpretation pruning experiment:
// for each fixture problem, the same seeded search is run twice — once
// plain, once with Options.Prune — and the per-move statistics are
// compared. The pruner is designed so the RNG stream is untouched
// (threshold drawn before the prune gate), so the off arm doubles as a
// determinism oracle: two off runs must agree bit for bit, and the on
// arm must differ from it only by proposals that were rejected
// abstractly instead of evaluated concretely. The on arm runs with
// PruneVerify, re-evaluating every pruned proposal concretely; any
// pruned proposal that actually solves the suite is an unsoundness in
// the abstract domains and is counted, never masked.

// PruneProblem is one experiment row's input.
type PruneProblem struct {
	Name  string
	Suite *testcase.Suite
	// RefSize is the reference program's size, carried into the report
	// for context only.
	RefSize int
}

// PruneConfig configures the experiment.
type PruneConfig struct {
	Problems []PruneProblem
	// Budget is the iteration budget of each arm.
	Budget int64
	Seed   uint64
	// Parallelism bounds concurrent rows (0 = GOMAXPROCS).
	Parallelism int
}

// PruneRow is one problem's outcome across both arms. The struct is
// comparable: determinism is checked by recomputing every row and
// requiring ==.
type PruneRow struct {
	Name    string `json:"name"`
	Inputs  int    `json:"inputs"`
	RefSize int    `json:"ref_size"`

	// Base arm: the identically-seeded search without pruning.
	BaseSolved    bool   `json:"base_solved"`
	BaseIters     int64  `json:"base_iters"`
	BaseProposed  int64  `json:"base_proposed"`
	BaseEvaluated int64  `json:"base_evaluated"`
	BaseHash      string `json:"base_hash,omitempty"` // canonical hash of the solution, solved rows only

	// Prune arm.
	PruneSolved    bool   `json:"prune_solved"`
	PruneIters     int64  `json:"prune_iters"`
	PruneProposed  int64  `json:"prune_proposed"`
	PruneEvaluated int64  `json:"prune_evaluated"`
	PruneChecked   int64  `json:"prune_checked"`
	PruneRejected  int64  `json:"prune_rejected"`
	PruneUnsound   int64  `json:"prune_unsound"`
	PruneHash      string `json:"prune_hash,omitempty"`

	// Reduced reports a measurable proposal-space reduction: the pruner
	// rejected at least one proposal AND the arm evaluated a strictly
	// smaller fraction of its proposals than the base arm did.
	Reduced bool `json:"reduced"`
}

// PruneResult is the full experiment.
type PruneResult struct {
	Rows []PruneRow
	// Deterministic reports that recomputing every row (both arms)
	// reproduced it exactly; a false value means the search trajectory
	// diverged between identically-seeded runs and the report cannot be
	// trusted.
	Deterministic bool
}

// Prune runs the two-arm comparison. Each row is computed twice;
// Deterministic reports whether the repeats agreed on every row.
func Prune(cfg PruneConfig) *PruneResult {
	res := &PruneResult{Rows: make([]PruneRow, len(cfg.Problems)), Deterministic: true}
	repeat := make([]PruneRow, len(cfg.Problems))
	tasks := make([]task, 0, 2*len(cfg.Problems))
	for i := range cfg.Problems {
		i := i
		tasks = append(tasks,
			func() { res.Rows[i] = pruneRow(cfg.Problems[i], cfg.Budget, cfg.Seed) },
			func() { repeat[i] = pruneRow(cfg.Problems[i], cfg.Budget, cfg.Seed) },
		)
	}
	runParallel(cfg.Parallelism, tasks)
	for i := range res.Rows {
		if res.Rows[i] != repeat[i] {
			res.Deterministic = false
		}
	}
	return res
}

// pruneRow runs both arms on one problem with the same derived seed.
func pruneRow(p PruneProblem, budget int64, seed uint64) PruneRow {
	row := PruneRow{Name: p.Name, Inputs: p.Suite.NumInputs, RefSize: p.RefSize}
	armSeed := trialSeed(seed, p.Name, "prune", cost.Hamming, 0)

	arm := func(prune bool) (search.Stats, int64, bool, string) {
		r := search.New(p.Suite, search.Options{
			Set:         prog.FullSet,
			Cost:        cost.Hamming,
			Beta:        1,
			Seed:        armSeed,
			Prune:       prune,
			PruneVerify: prune,
		})
		used, done := r.Step(budget)
		hash := ""
		if done {
			hash = fmt.Sprintf("%016x", analysis.CanonHash(r.Solution()))
		}
		return r.MoveStats(), used, done, hash
	}

	base, bIters, bDone, bHash := arm(false)
	row.BaseSolved, row.BaseIters, row.BaseHash = bDone, bIters, bHash
	row.BaseProposed, row.BaseEvaluated = base.TotalProposed(), base.Evaluated

	on, pIters, pDone, pHash := arm(true)
	row.PruneSolved, row.PruneIters, row.PruneHash = pDone, pIters, pHash
	row.PruneProposed, row.PruneEvaluated = on.TotalProposed(), on.Evaluated
	row.PruneChecked, row.PruneRejected, row.PruneUnsound =
		on.PruneChecked, on.PruneRejected, on.PruneUnsound

	// Evaluated/proposed must drop as a fraction, not just absolutely:
	// a solved arm stops early, shrinking both numbers without the
	// pruner deserving credit. Cross-multiplied to stay in integers.
	row.Reduced = row.PruneRejected > 0 &&
		row.PruneEvaluated*row.BaseProposed < row.BaseEvaluated*row.PruneProposed
	return row
}

// Report prints the per-row table and the gate summary.
func (r *PruneResult) Report(w io.Writer) {
	rows := append([]PruneRow(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	fmt.Fprintf(w, "%-16s %4s  %10s %10s  %10s %10s %10s %8s  %7s %7s\n",
		"problem", "ref", "base-prop", "base-eval",
		"prune-prop", "prune-eval", "rejected", "unsound", "reduced", "solved")
	for _, row := range rows {
		solved := fmt.Sprintf("%v/%v", row.BaseSolved, row.PruneSolved)
		fmt.Fprintf(w, "%-16s %4d  %10d %10d  %10d %10d %10d %8d  %7v %7s\n",
			row.Name, row.RefSize, row.BaseProposed, row.BaseEvaluated,
			row.PruneProposed, row.PruneEvaluated, row.PruneRejected,
			row.PruneUnsound, row.Reduced, solved)
	}
	reduced, unsound := r.Summary()
	fmt.Fprintf(w, "proposal-space reduction on %d/%d rows; %d unsound prune decisions\n",
		reduced, len(r.Rows), unsound)
	if !r.Deterministic {
		fmt.Fprintln(w, "!! NONDETERMINISM: a recomputed row differed")
	}
}

// Summary returns the number of rows with a measurable reduction and
// the total count of unsound prune decisions across all rows.
func (r *PruneResult) Summary() (reduced int, unsound int64) {
	for _, row := range r.Rows {
		if row.Reduced {
			reduced++
		}
		unsound += row.PruneUnsound
	}
	return reduced, unsound
}
