// Package experiment implements the evaluation harness of Section 7 of
// the paper: the β sweep (Figure 13, Table 1), the main algorithm
// comparison with penalized mean times and cactus plots (Figures
// 14-16), ordinal-rank speedups (Table 2), unsolved fractions
// (Table 3), the distribution-family census (Figure 6), the model
// Markov-chain comparison (Figure 10, Section 5.2.1), the
// measured-versus-predicted experiment (Figure 4), and plateau charts
// (Figures 1, 7, and 11).
//
// Every experiment is deterministic given its seed and scales from
// smoke-test size to paper scale through its config.
package experiment

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/restart"
	"stochsyn/internal/search"
	"stochsyn/internal/superopt"
	"stochsyn/internal/sygus"
	"stochsyn/internal/testcase"
)

// Problem is one named synthesis problem.
type Problem struct {
	Name  string
	Suite *testcase.Suite
}

// Benchmark is a named list of problems.
type Benchmark struct {
	Name     string
	Problems []Problem
	// Set is the dialect problems of this benchmark are synthesized
	// in.
	Set *prog.OpSet
}

// SyGuSBenchmark builds the SyGuS-style benchmark with n problems
// (curated tasks first, generated ones after).
func SyGuSBenchmark(seed uint64, n int) *Benchmark {
	extra := 0
	if n > 35 {
		extra = n - 35
	}
	probs := sygus.Standard(sygus.Options{Seed: seed, RandomProblems: extra})
	if n > 0 && len(probs) > n {
		probs = probs[:n]
	}
	b := &Benchmark{Name: "sygus", Set: prog.FullSet}
	for _, p := range probs {
		b.Problems = append(b.Problems, Problem{Name: p.Name, Suite: p.Suite})
	}
	return b
}

// SuperoptBenchmark builds the superoptimization benchmark with n
// problems via the scraping pipeline.
func SuperoptBenchmark(seed uint64, n int) (*Benchmark, superopt.Stats, error) {
	opts := superopt.DefaultOptions(seed)
	if n > 0 {
		opts.SampleSize = n
		// Scale the corpus so the signature pool comfortably covers
		// the requested sample.
		opts.CorpusFunctions = 60 + 8*n
	}
	probs, stats, err := superopt.Build(opts)
	if err != nil {
		return nil, stats, err
	}
	b := &Benchmark{Name: "superopt", Set: prog.FullSet}
	for _, p := range probs {
		b.Problems = append(b.Problems, Problem{Name: p.Name, Suite: p.Suite})
	}
	return b, stats, nil
}

// Trial runs one strategy on one problem with one cost function and β,
// under the given iteration budget, deterministically in the seed.
func Trial(p Problem, spec string, set *prog.OpSet, kind cost.Kind, beta float64, budget int64, seed uint64) restart.Result {
	strat := restart.MustNew(spec)
	factory := search.NewFactory(p.Suite, search.Options{
		Set:  set,
		Cost: kind,
		Beta: beta,
		Seed: seed,
	})
	return strat.Run(factory, budget)
}

// task is one unit of parallel work.
type task func()

// runParallel executes tasks over a bounded worker pool. Tasks must be
// independent; each writes to its own result slot.
func runParallel(parallelism int, tasks []task) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	if parallelism <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan task)
	for i := 0; i < parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				t()
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
}

// trialSeed derives a deterministic seed for (experiment seed,
// problem, algorithm, cost, trial).
func trialSeed(seed uint64, problem, spec string, kind cost.Kind, trial int) uint64 {
	h := seed
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	mix(problem)
	mix(spec)
	mix(kind.String())
	h ^= uint64(trial+1) * 0x9e3779b97f4a7c15
	return h
}

// Subset deterministically samples a fraction of the benchmark's
// problems (the β sweep runs on a randomly selected 10% subset).
func (b *Benchmark) Subset(frac float64, seed uint64) *Benchmark {
	if frac >= 1 || len(b.Problems) == 0 {
		return b
	}
	n := int(float64(len(b.Problems)) * frac)
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewPCG(seed, 0xbe5466cf34e90c6c))
	idx := rng.Perm(len(b.Problems))[:n]
	out := &Benchmark{Name: b.Name, Set: b.Set}
	for _, i := range idx {
		out.Problems = append(out.Problems, b.Problems[i])
	}
	return out
}

// String summarizes the benchmark.
func (b *Benchmark) String() string {
	return fmt.Sprintf("%s(%d problems)", b.Name, len(b.Problems))
}
