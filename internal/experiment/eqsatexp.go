package experiment

import (
	"fmt"
	"io"
	"sort"

	"stochsyn/internal/cost"
	"stochsyn/internal/eqsat"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/search"
	"stochsyn/internal/superopt"
	"stochsyn/internal/testcase"
)

// This file implements the stochastic-vs-EqSat superoptimization
// comparison: given a known-correct reference program, how small a
// correct program does each approach find?
//
//   - stochastic: MCMC size minimization (search.Options.MinimizeSize)
//     seeded with the reference, the paper's optimization mode;
//   - eqsat: bounded equality saturation over the reference followed by
//     cost-minimal extraction (internal/eqsat.Simplify) — deterministic
//     and budget-free, but limited to the rule set;
//   - hybrid: the eqsat extraction used as the stochastic search's
//     starting point, so saturation's algebraic wins compose with the
//     sampler's ability to leave the rule closure.
//
// Everything reported is deterministic in the seed: each row is
// computed twice and the repeat must agree bit for bit.

// EqSatProblem is one comparison row's input: a suite and a
// known-correct reference program for it.
type EqSatProblem struct {
	Name string
	// SuiteName tags the originating benchmark ("superopt", "fixture").
	SuiteName string
	Suite     *testcase.Suite
	Ref       *prog.Program
}

// EqSatConfig configures the comparison.
type EqSatConfig struct {
	Problems []EqSatProblem
	// Budget is the iteration budget of each stochastic arm (the eqsat
	// arm uses none).
	Budget int64
	Seed   uint64
	// Parallelism bounds concurrent rows (0 = GOMAXPROCS).
	Parallelism int
}

// EqSatRow is one problem's outcome across the three arms.
type EqSatRow struct {
	Name      string `json:"name"`
	SuiteName string `json:"suite"`
	Inputs    int    `json:"inputs"`
	RefSize   int    `json:"ref_size"`

	// Arm outcomes: the smallest correct program size each arm reached.
	StochSize  int `json:"stoch_size"`
	EqSatSize  int `json:"eqsat_size"`
	HybridSize int `json:"hybrid_size"`

	// E-graph shape after saturating the reference.
	EClasses  int  `json:"eclasses"`
	ENodes    int  `json:"enodes"`
	Saturated bool `json:"saturated"`

	// ExtractionHash is the canonical semantic hash of the eqsat
	// extraction (16 hex digits); with EClasses/ENodes it pins the
	// engine's determinism in the committed report.
	ExtractionHash string `json:"extraction_hash"`

	// Verified reports that every arm's winning program matched the
	// whole suite (always true; a false value is an engine bug).
	Verified bool `json:"verified"`
}

// EqSatResult is the full comparison.
type EqSatResult struct {
	Rows []EqSatRow
	// Deterministic reports that recomputing every row reproduced it
	// exactly.
	Deterministic bool
}

// SuperoptBenchmarkWithRefs builds the superopt benchmark like
// SuperoptBenchmark but keeps each problem's translated reference,
// which the EqSat comparison needs as its starting point.
func SuperoptBenchmarkWithRefs(seed uint64, n int) ([]EqSatProblem, superopt.Stats, error) {
	opts := superopt.DefaultOptions(seed)
	if n > 0 {
		opts.SampleSize = n
		opts.CorpusFunctions = 60 + 8*n
	}
	probs, stats, err := superopt.Build(opts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]EqSatProblem, 0, len(probs))
	for _, p := range probs {
		if p.Reference == nil {
			continue // DefaultOptions requires references; belt and braces
		}
		out = append(out, EqSatProblem{
			Name: p.Name, SuiteName: "superopt", Suite: p.Suite, Ref: p.Reference,
		})
	}
	return out, stats, nil
}

// EqSat runs the three-arm comparison. Each row is computed twice;
// Deterministic reports whether the repeats agreed on every row.
func EqSat(cfg EqSatConfig) *EqSatResult {
	res := &EqSatResult{Rows: make([]EqSatRow, len(cfg.Problems)), Deterministic: true}
	repeat := make([]EqSatRow, len(cfg.Problems))
	tasks := make([]task, 0, 2*len(cfg.Problems))
	for i := range cfg.Problems {
		i := i
		tasks = append(tasks,
			func() { res.Rows[i] = eqsatRow(cfg.Problems[i], cfg.Budget, cfg.Seed) },
			func() { repeat[i] = eqsatRow(cfg.Problems[i], cfg.Budget, cfg.Seed) },
		)
	}
	runParallel(cfg.Parallelism, tasks)
	for i := range res.Rows {
		if res.Rows[i] != repeat[i] {
			res.Deterministic = false
		}
	}
	return res
}

// eqsatRow runs all three arms on one problem.
func eqsatRow(p EqSatProblem, budget int64, seed uint64) EqSatRow {
	row := EqSatRow{
		Name:      p.Name,
		SuiteName: p.SuiteName,
		Inputs:    p.Suite.NumInputs,
		RefSize:   p.Ref.BodyLen(),
		Verified:  true,
	}

	// EqSat arm: saturate + extract. Simplify already proves the
	// extraction Eval-equal to the reference on its fixed batteries; the
	// suite check below is a second, independent witness.
	ex, st := eqsat.Simplify(p.Ref, eqsat.Budget{})
	row.EClasses, row.ENodes, row.Saturated = st.Classes, st.Nodes, st.Saturated
	row.ExtractionHash = fmt.Sprintf("%016x", analysis.Hash(ex))
	row.EqSatSize = ex.BodyLen()

	// Stochastic arm: size-minimizing MCMC from the reference.
	stoch := minimizeFrom(p, p.Ref, budget, trialSeed(seed, p.Name, "stoch", cost.Hamming, 0))
	row.StochSize = stoch.BodyLen()

	// Hybrid arm: the same sampler started from the extraction.
	hybrid := minimizeFrom(p, ex, budget, trialSeed(seed, p.Name, "hybrid", cost.Hamming, 0))
	if ex.BodyLen() < hybrid.BodyLen() {
		hybrid = ex
	}
	row.HybridSize = hybrid.BodyLen()

	for _, q := range []*prog.Program{ex, stoch, hybrid} {
		if !matchesSuite(q, p.Suite) {
			row.Verified = false
		}
	}
	return row
}

// minimizeFrom runs one size-minimizing search seeded with init and
// returns the smallest correct program observed (init itself if the
// search never improved on it).
func minimizeFrom(p EqSatProblem, init *prog.Program, budget int64, seed uint64) *prog.Program {
	r := search.New(p.Suite, search.Options{
		Set:          prog.FullSet,
		Cost:         cost.Hamming,
		Beta:         1,
		Seed:         seed,
		Init:         init.Clone(),
		MinimizeSize: true,
	})
	r.Step(budget)
	best := r.Best()
	if best == nil || init.BodyLen() < best.BodyLen() {
		return init
	}
	return best
}

// matchesSuite checks q against every case of the suite.
func matchesSuite(q *prog.Program, s *testcase.Suite) bool {
	for _, c := range s.Cases {
		if q.Output(c.Inputs) != c.Output {
			return false
		}
	}
	return true
}

// Report prints the comparison table and summary reductions.
func (r *EqSatResult) Report(w io.Writer) {
	rows := append([]EqSatRow(nil), r.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SuiteName != rows[j].SuiteName {
			return rows[i].SuiteName < rows[j].SuiteName
		}
		return rows[i].Name < rows[j].Name
	})
	fmt.Fprintf(w, "%-16s %-9s %4s  %6s %6s %6s  %8s %7s %4s  %-16s\n",
		"problem", "suite", "ref", "stoch", "eqsat", "hybrid",
		"eclasses", "enodes", "sat", "extraction")
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s %-9s %4d  %6d %6d %6d  %8d %7d %4v  %-16s\n",
			row.Name, row.SuiteName, row.RefSize,
			row.StochSize, row.EqSatSize, row.HybridSize,
			row.EClasses, row.ENodes, row.Saturated, row.ExtractionHash)
		if !row.Verified {
			fmt.Fprintf(w, "  !! %s: an arm's program failed suite verification\n", row.Name)
		}
	}
	stoch, eq, hy, wins := r.Summary()
	fmt.Fprintf(w, "mean size reduction vs reference: stoch %.1f%%  eqsat %.1f%%  hybrid %.1f%%\n",
		100*stoch, 100*eq, 100*hy)
	fmt.Fprintf(w, "hybrid at least as small as both single arms on %d/%d problems\n",
		wins, len(r.Rows))
	if !r.Deterministic {
		fmt.Fprintln(w, "!! NONDETERMINISM: a recomputed row differed")
	}
}

// Summary returns the mean fractional size reduction of each arm and
// the number of rows where the hybrid matched or beat both single arms.
func (r *EqSatResult) Summary() (stoch, eq, hybrid float64, hybridWins int) {
	if len(r.Rows) == 0 {
		return 0, 0, 0, 0
	}
	for _, row := range r.Rows {
		ref := float64(row.RefSize)
		stoch += 1 - float64(row.StochSize)/ref
		eq += 1 - float64(row.EqSatSize)/ref
		hybrid += 1 - float64(row.HybridSize)/ref
		if row.HybridSize <= row.StochSize && row.HybridSize <= row.EqSatSize {
			hybridWins++
		}
	}
	n := float64(len(r.Rows))
	return stoch / n, eq / n, hybrid / n, hybridWins
}
