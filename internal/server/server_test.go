package server_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"stochsyn/internal/server"
	"stochsyn/internal/server/client"
)

// easySpec is a job the search solves in well under a second; distinct
// seeds give distinct cache keys.
func easySpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Problem: server.ProblemSpec{Expr: "xorq(x, y)", Inputs: 2, NumCases: 40, CaseSeed: 11},
		Options: server.OptionsSpec{Budget: 2_000_000, Seed: seed, Workers: 2},
	}
}

// hardSpec is a job that will not be solved in the lifetime of a test:
// a five-operation multiplicative hash with an effectively unlimited
// budget. Used as the target for cancellation and timeout tests.
func hardSpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Problem: server.ProblemSpec{
			Expr:   "subq(xorq(mull(x, x), shrq(x, 9)), orq(x, 0x5bd1e995))",
			Inputs: 1, NumCases: 50, CaseSeed: 3,
		},
		Options: server.OptionsSpec{Budget: 1 << 40, Seed: seed},
	}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	c := client.New(ts.URL)
	c.HTTPClient = ts.Client()
	return srv, ts, c
}

// TestEndToEnd is the subsystem's acceptance test: many concurrent
// jobs through the HTTP client, one cancelled mid-run, the rest
// solved, a repeat submission served from the result cache, and no
// goroutine leaks after drain. Run it under -race.
func TestEndToEnd(t *testing.T) {
	ctx := context.Background()
	goroutinesBefore := runtime.NumGoroutine()

	srv, ts, c := newTestServer(t, server.Config{
		Workers: 4, WorkerBudget: 8, QueueDepth: 32, CacheSize: 64,
		DrainTimeout: 10 * time.Second,
	})

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// One hard job (the cancellation target) and 8 easy jobs, all in
	// flight concurrently.
	hard, err := c.Submit(ctx, hardSpec(99))
	if err != nil {
		t.Fatalf("submit hard: %v", err)
	}
	ids := make([]string, 8)
	for i := range ids {
		v, err := c.Submit(ctx, easySpec(uint64(i)+1))
		if err != nil {
			t.Fatalf("submit easy %d: %v", i, err)
		}
		if v.Status.Terminal() {
			t.Fatalf("easy job %d terminal at submit: %+v", i, v)
		}
		ids[i] = v.ID
	}

	// Cancel the hard job once it is running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, hard.ID)
		if err != nil {
			t.Fatalf("poll hard: %v", err)
		}
		if v.Status == server.StatusRunning {
			break
		}
		if v.Status.Terminal() {
			t.Fatalf("hard job terminal before cancel: %+v", v)
		}
		if time.Now().After(deadline) {
			t.Fatal("hard job did not start running within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, hard.ID); err != nil {
		t.Fatalf("cancel hard: %v", err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	hv, err := c.Wait(wctx, hard.ID, 10*time.Millisecond)
	wcancel()
	if err != nil {
		t.Fatalf("wait for cancelled job: %v", err)
	}
	if hv.Status != server.StatusCancelled {
		t.Fatalf("cancelled job status = %s, want cancelled: %+v", hv.Status, hv)
	}
	if hv.Result == nil || hv.Result.Iterations <= 0 || hv.Result.Solved {
		t.Errorf("cancelled job should report partial unsolved counters: %+v", hv.Result)
	}

	// The easy jobs all solve.
	for i, id := range ids {
		wctx, wcancel := context.WithTimeout(ctx, 60*time.Second)
		v, err := c.Wait(wctx, id, 0)
		wcancel()
		if err != nil {
			t.Fatalf("wait easy %d: %v", i, err)
		}
		if v.Status != server.StatusCompleted || v.Result == nil || !v.Result.Solved {
			t.Fatalf("easy job %d: %+v", i, v)
		}
		if v.Result.Program == "" || v.Result.Seed != uint64(i)+1 {
			t.Errorf("easy job %d result: %+v", i, v.Result)
		}
		if v.Cached {
			t.Errorf("easy job %d served from cache on first submission", i)
		}
	}

	// Resubmitting an identical spec is served from the cache: born
	// completed, flagged cached, same program.
	first, err := c.Job(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := c.Submit(ctx, easySpec(1))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if repeat.Status != server.StatusCompleted || !repeat.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", repeat)
	}
	if repeat.Result == nil || repeat.Result.Program != first.Result.Program ||
		repeat.Result.Iterations != first.Result.Iterations {
		t.Errorf("cached result differs from original:\n%+v\n%+v", repeat.Result, first.Result)
	}

	// Stats reflect all of the above.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	if st.Submitted != 10 {
		t.Errorf("stats.submitted = %d, want 10", st.Submitted)
	}
	if st.Cache.Hits < 1 {
		t.Errorf("stats.cache.hits = %d, want >= 1", st.Cache.Hits)
	}
	if st.Jobs.Completed < 9 || st.Jobs.Cancelled < 1 || st.Jobs.Total != 10 {
		t.Errorf("stats.jobs = %+v", st.Jobs)
	}
	if st.Workers.Total != 4 {
		t.Errorf("stats.workers.total = %d, want 4", st.Workers.Total)
	}

	// Status filter.
	cancelled, err := c.Jobs(ctx, server.StatusCancelled)
	if err != nil {
		t.Fatal(err)
	}
	if len(cancelled) != 1 || cancelled[0].ID != hard.ID {
		t.Errorf("jobs?status=cancelled = %+v", cancelled)
	}

	// Clean drain, then check for leaked goroutines.
	if err := srv.Close(); err != nil {
		t.Errorf("drain: %v", err)
	}
	ts.Close()
	settle := time.Now().Add(5 * time.Second)
	for time.Now().Before(settle) {
		if runtime.NumGoroutine() <= goroutinesBefore+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after shutdown", goroutinesBefore, runtime.NumGoroutine())
}

// TestJobTimeout submits a hard job bounded by timeout_ms and expects
// it to finish cancelled on its own.
func TestJobTimeout(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 2, WorkerBudget: 2})
	defer ts.Close()
	defer srv.Close()

	spec := hardSpec(7)
	spec.TimeoutMS = 150
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	v, err = c.Wait(wctx, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != server.StatusCancelled {
		t.Fatalf("timed-out job status = %s, want cancelled: %+v", v.Status, v)
	}
}

// TestBadRequests checks the HTTP error mapping for malformed specs.
func TestBadRequests(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 1, WorkerBudget: 1})
	defer ts.Close()
	defer srv.Close()

	for name, spec := range map[string]server.JobSpec{
		"no-problem-source": {},
		"two-sources": {Problem: server.ProblemSpec{
			Expr: "xorq(x, y)", Inputs: 2, Sygus: "(set-logic BV)",
		}},
		"bad-expr":     {Problem: server.ProblemSpec{Expr: "frobq(x)", Inputs: 1}},
		"bad-cost":     {Problem: server.ProblemSpec{Expr: "xorq(x, y)", Inputs: 2}, Options: server.OptionsSpec{Cost: "bogus"}},
		"bad-strategy": {Problem: server.ProblemSpec{Expr: "xorq(x, y)", Inputs: 2}, Options: server.OptionsSpec{Strategy: "fixed:-1"}},
		"bad-timeout":  {Problem: server.ProblemSpec{Expr: "xorq(x, y)", Inputs: 2}, TimeoutMS: -5},
	} {
		_, err := c.Submit(ctx, spec)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.StatusCode != 400 {
			t.Errorf("%s: err = %v, want 400 APIError", name, err)
		}
	}

	_, err := c.Job(ctx, "j999999")
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != 404 {
		t.Errorf("unknown job: err = %v, want 404 APIError", err)
	}
}

// TestQueueFullAndDrain fills a depth-1 queue, expects a 503, and then
// shuts the server down with an already-expired context: the running
// job must be cancelled promptly rather than holding the drain.
func TestQueueFullAndDrain(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 1, WorkerBudget: 1, QueueDepth: 1})
	defer ts.Close()

	first, err := c.Submit(ctx, hardSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first job occupies the worker so the queue slot is
	// free for exactly one more.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, first.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == server.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job did not start")
		}
		time.Sleep(5 * time.Millisecond)
	}
	queued, err := c.Submit(ctx, hardSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, hardSpec(3))
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != 503 {
		t.Fatalf("overflow submit: err = %v, want 503 APIError", err)
	}

	// Drain with an expired deadline: running jobs are cancelled.
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	if err := srv.Shutdown(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Shutdown with expired ctx = %v, want DeadlineExceeded", err)
	}
	for _, id := range []string{first.ID, queued.ID} {
		v, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status != server.StatusCancelled {
			t.Errorf("job %s after forced drain: status %s, want cancelled", id, v.Status)
		}
	}

	// Submissions after shutdown are rejected with 503.
	_, err = c.Submit(ctx, easySpec(1))
	if !errors.As(err, &ae) || ae.StatusCode != 503 {
		t.Errorf("submit after shutdown: err = %v, want 503 APIError", err)
	}
}

// TestCanonicalCacheHit submits two structurally different but
// semantically equal jobs — same example set in a different order with
// a duplicate, equivalent strategy spellings — and expects the second
// to be served from the cache as a canonical hit, visible in /statsz
// and /metrics. An exact replay of the first spec then hits without
// bumping the canonical counter.
func TestCanonicalCacheHit(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 2, WorkerBudget: 4, CacheSize: 8})
	defer ts.Close()
	defer srv.Close()

	examples := []server.Example{
		{Inputs: []uint64{1, 3}, Output: 2},
		{Inputs: []uint64{0xf, 5}, Output: 0xa},
		{Inputs: []uint64{0, 0}, Output: 0},
		{Inputs: []uint64{7, 7}, Output: 0},
		{Inputs: []uint64{0xff, 0xf0}, Output: 0x0f},
		{Inputs: []uint64{1 << 40, 1}, Output: 1<<40 | 1},
	}
	spec := func(order []int, strategy string) server.JobSpec {
		ex := make([]server.Example, len(order))
		for i, j := range order {
			ex[i] = examples[j]
		}
		return server.JobSpec{
			Problem: server.ProblemSpec{Examples: ex},
			Options: server.OptionsSpec{Budget: 4_000_000, Seed: 2, Strategy: strategy},
		}
	}

	first, err := c.Submit(ctx, spec([]int{0, 1, 2, 3, 4, 5}, "adaptive"))
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	fv, err := c.Wait(wctx, first.ID, 0)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if fv.Status != server.StatusCompleted || fv.Result == nil || !fv.Result.Solved || fv.Cached {
		t.Fatalf("first job: %+v", fv)
	}
	if fv.Result.Canonical == "" || fv.Result.CanonicalHash == "" {
		t.Errorf("first result missing canonical form/hash: %+v", fv.Result)
	}

	// Reordered + duplicated examples, equivalent strategy spelling:
	// structurally distinct, canonically equal.
	hit, err := c.Submit(ctx, spec([]int{3, 0, 5, 2, 4, 1, 0}, "adaptive:1000:0:8"))
	if err != nil {
		t.Fatal(err)
	}
	if hit.Status != server.StatusCompleted || !hit.Cached {
		t.Fatalf("canonical resubmission not served from cache: %+v", hit)
	}
	if hit.Result == nil || hit.Result.Program != fv.Result.Program {
		t.Errorf("canonical hit program differs:\n%+v\n%+v", hit.Result, fv.Result)
	}

	// An exact replay also hits, but is not a canonical hit.
	replay, err := c.Submit(ctx, spec([]int{0, 1, 2, 3, 4, 5}, "adaptive"))
	if err != nil {
		t.Fatal(err)
	}
	if replay.Status != server.StatusCompleted || !replay.Cached {
		t.Fatalf("exact replay not served from cache: %+v", replay)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 2 {
		t.Errorf("stats.cache.hits = %d, want 2", st.Cache.Hits)
	}
	if st.Cache.CanonicalHits != 1 {
		t.Errorf("stats.cache.canonical_hits = %d, want 1", st.Cache.CanonicalHits)
	}

	// The counter is also exported on /metrics.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "stochsyn_cache_canonical_hits_total 1") {
		t.Errorf("/metrics missing stochsyn_cache_canonical_hits_total 1:\n%s", body)
	}
}

// TestEqSatCacheHit submits two expr jobs whose reference expressions
// are rewrite-equivalent but canonically distinct — "addq(addq(x, 1),
// 2)" and "addq(x, 3)" — with different case seeds, so their sampled
// example sets (and hence both the structural and canonical cache
// keys) differ. The second submission must be served born-completed
// through the second-level rewrite-equivalence index, counted by
// stochsyn_eqsat_cache_hits_total, after its program re-verified
// against the new example set.
func TestEqSatCacheHit(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 2, WorkerBudget: 4, CacheSize: 8})
	defer ts.Close()
	defer srv.Close()

	spec := func(expr string, caseSeed uint64) server.JobSpec {
		return server.JobSpec{
			Problem: server.ProblemSpec{Expr: expr, Inputs: 1, NumCases: 40, CaseSeed: caseSeed},
			Options: server.OptionsSpec{Budget: 4_000_000, Seed: 2},
		}
	}

	first, err := c.Submit(ctx, spec("addq(addq(x, 1), 2)", 11))
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	fv, err := c.Wait(wctx, first.ID, 0)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if fv.Status != server.StatusCompleted || fv.Result == nil || !fv.Result.Solved || fv.Cached {
		t.Fatalf("first job: %+v", fv)
	}

	// A rewrite-equivalent respelling over a different sampled suite:
	// level-1 misses (different examples), level-2 hits.
	hit, err := c.Submit(ctx, spec("addq(x, 3)", 12))
	if err != nil {
		t.Fatal(err)
	}
	if hit.Status != server.StatusCompleted || !hit.Cached {
		t.Fatalf("rewrite-equivalent resubmission not served from cache: %+v", hit)
	}
	if hit.Result == nil || !hit.Result.Solved || hit.Result.Program != fv.Result.Program {
		t.Errorf("eqsat hit result differs from original:\n%+v\n%+v", hit.Result, fv.Result)
	}

	// A rewrite-INequivalent expr over yet another suite must miss and
	// run its own search (pinning that the index can't serve wrong
	// programs: xorq(x, 3) is in a different e-class).
	miss, err := c.Submit(ctx, spec("xorq(x, 3)", 13))
	if err != nil {
		t.Fatal(err)
	}
	if miss.Status.Terminal() {
		t.Fatalf("inequivalent expr served at submit: %+v", miss)
	}
	wctx, cancel = context.WithTimeout(ctx, 60*time.Second)
	mv, err := c.Wait(wctx, miss.ID, 0)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if mv.Status != server.StatusCompleted || mv.Result == nil || !mv.Result.Solved || mv.Cached {
		t.Fatalf("inequivalent job: %+v", mv)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.EqSatHits != 1 {
		t.Errorf("stats.cache.eqsat_hits = %d, want 1", st.Cache.EqSatHits)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Errorf("stats.cache = hits %d misses %d, want 1/2", st.Cache.Hits, st.Cache.Misses)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "stochsyn_eqsat_cache_hits_total 1") {
		t.Errorf("/metrics missing stochsyn_eqsat_cache_hits_total 1:\n%s", body)
	}
}

// TestPruneJobExportsFacts runs a prune-enabled job end to end: the
// search must still solve the problem, the result view must carry the
// per-node abstract facts derived from the example inputs, and the
// stochsyn_prune_* series must show proposals actually being checked —
// with the unsound-check audit counter at zero.
func TestPruneJobExportsFacts(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 2, WorkerBudget: 4, CacheSize: 8})
	defer ts.Close()
	defer srv.Close()

	spec := server.JobSpec{
		Problem: server.ProblemSpec{Expr: "andq(x, subq(x, 1))", Inputs: 1, NumCases: 60, CaseSeed: 7},
		Options: server.OptionsSpec{Budget: 8_000_000, Seed: 3, Prune: true},
	}
	v, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	fv, err := c.Wait(wctx, v.ID, 0)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if fv.Status != server.StatusCompleted || fv.Result == nil || !fv.Result.Solved {
		t.Fatalf("prune job: %+v", fv)
	}
	if len(fv.Result.Facts) == 0 {
		t.Errorf("prune job result carries no abstract facts: %+v", fv.Result)
	}
	for _, f := range fv.Result.Facts {
		if !strings.Contains(f, "node ") {
			t.Errorf("fact %q not in per-node form", f)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	if strings.Contains(metrics, "stochsyn_prune_checked_total 0\n") ||
		!strings.Contains(metrics, "stochsyn_prune_checked_total") {
		t.Errorf("/metrics missing nonzero stochsyn_prune_checked_total:\n%s", metrics)
	}
	if strings.Contains(metrics, "stochsyn_prune_unsound_check_total") &&
		!strings.Contains(metrics, "stochsyn_prune_unsound_check_total 0") {
		t.Errorf("/metrics reports unsound prune checks:\n%s", metrics)
	}
}

// TestSygusJob exercises the third problem source end to end.
func TestSygusJob(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 1, WorkerBudget: 1})
	defer ts.Close()
	defer srv.Close()

	const sl = `
(set-logic BV)
(synth-fun f ((x (_ BitVec 64)) (y (_ BitVec 64))) (_ BitVec 64))
(constraint (= (f #x0000000000000001 #x0000000000000003) #x0000000000000002))
(constraint (= (f #x000000000000000f #x0000000000000005) #x000000000000000a))
(constraint (= (f #x0000000000000000 #x0000000000000000) #x0000000000000000))
(constraint (= (f #xffffffffffffffff #x0000000000000000) #xffffffffffffffff))
(constraint (= (f #x00000000000000ff #x00000000000000f0) #x000000000000000f))
(check-synth)
`
	v, err := c.Submit(ctx, server.JobSpec{
		Problem: server.ProblemSpec{Sygus: sl},
		Options: server.OptionsSpec{Budget: 4_000_000, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	v, err = c.Wait(wctx, v.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != server.StatusCompleted || v.Result == nil || !v.Result.Solved {
		t.Fatalf("sygus job: %+v", v)
	}
}
