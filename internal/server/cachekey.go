package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"stochsyn"
	"stochsyn/internal/eqsat"
	"stochsyn/internal/prog"
	"stochsyn/internal/restart"
)

// CacheKey returns the canonical cache key for running opts against
// p: a SHA-256 over the problem's exact example set and the
// normalized options. Two submissions collide exactly when a
// synthesis run could not tell them apart:
//
//   - the examples are hashed in order with explicit lengths, so no
//     two distinct suites serialize alike;
//   - options are normalized first (defaults filled in), so "empty
//     strategy" and "adaptive" share a key;
//   - Workers is excluded: the doubling-tree executor is
//     bit-identical for any worker count, so parallelism must not
//     fragment the cache.
//
// The textual strategy spec participates verbatim (after
// normalization of the empty spec), so "adaptive" and
// "adaptive:1000" hash differently even though they configure the
// same tree — a conservative choice that can only cause extra
// misses, never wrong hits.
func CacheKey(p *stochsyn.Problem, opts stochsyn.Options) (string, error) {
	o, err := opts.Normalized()
	if err != nil {
		return "", err
	}
	return hashJob("stochsyn-job-v1", p.Cases(), p.NumInputs(), o, o.Strategy), nil
}

// CanonicalCacheKey is the semantic counterpart of CacheKey: it hashes
// the job after canonicalization, so structurally distinct but
// semantically equal submissions collide. On top of CacheKey's
// normalization it:
//
//   - sorts the examples lexicographically (inputs, then output) and
//     drops exact duplicates — a synthesized program either matches an
//     example set or it doesn't, regardless of order or repetition;
//   - canonicalizes the strategy spec via restart.CanonicalSpec, so
//     "adaptive", "adaptive:1000", and "adaptive:1000:0:8" share a key
//     (defaults made explicit, the results-neutral workers field
//     dropped).
//
// A hit under this key returns a Result whose Program provably solves
// the submitted example set. The run counters (Iterations, Searches)
// are those of the populating run: a fresh run on a reordered suite
// could walk a different trajectory and report different counters, so
// canonical hits trade exact counter reproducibility for a higher hit
// rate on semantically identical work. Servers surface how often that
// trade fires via the cache_canonical_hits metric.
func CanonicalCacheKey(p *stochsyn.Problem, opts stochsyn.Options) (string, error) {
	o, err := opts.Normalized()
	if err != nil {
		return "", err
	}
	spec, err := restart.CanonicalSpec(o.Strategy)
	if err != nil {
		return "", err
	}
	cases := p.Cases()
	sort.Slice(cases, func(i, j int) bool { return lessCase(cases[i], cases[j]) })
	dedup := cases[:0]
	for i, c := range cases {
		if i == 0 || !equalCase(cases[i-1], c) {
			dedup = append(dedup, c)
		}
	}
	return hashJob("stochsyn-job-v2-canon", dedup, p.NumInputs(), o, spec), nil
}

// hashJob serializes one job (version tag, example set, normalized
// options with the given strategy spec) into a SHA-256 hex key.
// Options.Workers and Options.Obs are deliberately excluded: neither
// changes results.
func hashJob(version string, cases []stochsyn.Case, numInputs int, o stochsyn.Options, strategy string) string {
	h := sha256.New()
	buf := make([]byte, 8)
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}

	writeStr(version)
	writeU64(uint64(numInputs))
	writeU64(uint64(len(cases)))
	for _, c := range cases {
		writeU64(uint64(len(c.Inputs)))
		for _, in := range c.Inputs {
			writeU64(in)
		}
		writeU64(c.Output)
	}

	writeStr(string(o.Cost))
	writeU64(math.Float64bits(o.Beta))
	if o.Greedy {
		writeU64(1)
	} else {
		writeU64(0)
	}
	writeStr(strategy)
	writeU64(uint64(o.Budget))
	writeStr(string(o.Dialect))
	writeU64(o.Seed)
	// EqSat and Prune deliberately change the search trajectory (unlike
	// Workers and Obs), so they must fragment the cache.
	if o.EqSat {
		writeU64(1)
	} else {
		writeU64(0)
	}
	if o.Prune {
		writeU64(1)
	} else {
		writeU64(0)
	}

	return hex.EncodeToString(h.Sum(nil))
}

// EqSatCacheKey is the second-level, rewrite-equivalence cache key for
// expr-based submissions: it hashes the reference expression's e-class
// (eqsat.EClassHash under the default saturation budget) instead of the
// sampled example set, so two submissions whose reference expressions
// the rewrite rules can prove equal — e.g. "addq(addq(x, 1), 2)" and
// "addq(x, 3)" — collide even when their generated suites differ
// (different num_cases or case_seed, which are deliberately excluded).
//
// A hit under this key is only a candidate: the cached Program was
// synthesized against a different example set, so the scheduler
// re-verifies it against the submitted problem before serving it (a
// solved program either matches the new suite or the hit is discarded).
// Options that change what a run would produce (cost, beta, greedy,
// canonical strategy, budget, dialect, seed, the EqSat flag itself)
// participate exactly as in CanonicalCacheKey.
func EqSatCacheKey(expr string, numInputs int, opts stochsyn.Options) (string, error) {
	o, err := opts.Normalized()
	if err != nil {
		return "", err
	}
	spec, err := restart.CanonicalSpec(o.Strategy)
	if err != nil {
		return "", err
	}
	ref, err := prog.Parse(expr, numInputs)
	if err != nil {
		return "", err
	}
	eh, _ := eqsat.EClassHash(ref, eqsat.Budget{})
	// One synthetic "case" carries the e-class hash through the shared
	// serializer; the version tag keeps the namespace disjoint from the
	// example-set keys.
	carrier := []stochsyn.Case{{Inputs: []uint64{eh}, Output: 0}}
	return hashJob("stochsyn-job-v3-eqsat", carrier, numInputs, o, spec), nil
}

// lessCase orders examples lexicographically by inputs, then output.
func lessCase(a, b stochsyn.Case) bool {
	for i := 0; i < len(a.Inputs) && i < len(b.Inputs); i++ {
		if a.Inputs[i] != b.Inputs[i] {
			return a.Inputs[i] < b.Inputs[i]
		}
	}
	if len(a.Inputs) != len(b.Inputs) {
		return len(a.Inputs) < len(b.Inputs)
	}
	return a.Output < b.Output
}

// equalCase reports example equality.
func equalCase(a, b stochsyn.Case) bool {
	if len(a.Inputs) != len(b.Inputs) || a.Output != b.Output {
		return false
	}
	for i := range a.Inputs {
		if a.Inputs[i] != b.Inputs[i] {
			return false
		}
	}
	return true
}
