package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"stochsyn"
)

// CacheKey returns the canonical cache key for running opts against
// p: a SHA-256 over the problem's exact example set and the
// normalized options. Two submissions collide exactly when a
// synthesis run could not tell them apart:
//
//   - the examples are hashed in order with explicit lengths, so no
//     two distinct suites serialize alike;
//   - options are normalized first (defaults filled in), so "empty
//     strategy" and "adaptive" share a key;
//   - Workers is excluded: the doubling-tree executor is
//     bit-identical for any worker count, so parallelism must not
//     fragment the cache.
//
// The textual strategy spec participates verbatim (after
// normalization of the empty spec), so "adaptive" and
// "adaptive:1000" hash differently even though they configure the
// same tree — a conservative choice that can only cause extra
// misses, never wrong hits.
func CacheKey(p *stochsyn.Problem, opts stochsyn.Options) (string, error) {
	o, err := opts.Normalized()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	buf := make([]byte, 8)
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}

	writeStr("stochsyn-job-v1")
	writeU64(uint64(p.NumInputs()))
	cases := p.Cases()
	writeU64(uint64(len(cases)))
	for _, c := range cases {
		writeU64(uint64(len(c.Inputs)))
		for _, in := range c.Inputs {
			writeU64(in)
		}
		writeU64(c.Output)
	}

	writeStr(string(o.Cost))
	writeU64(math.Float64bits(o.Beta))
	if o.Greedy {
		writeU64(1)
	} else {
		writeU64(0)
	}
	writeStr(o.Strategy)
	writeU64(uint64(o.Budget))
	writeStr(string(o.Dialect))
	writeU64(o.Seed)

	return hex.EncodeToString(h.Sum(nil)), nil
}
