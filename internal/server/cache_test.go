package server

import (
	"fmt"
	"testing"

	"stochsyn"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(3)
	res := func(i int64) stochsyn.Result { return stochsyn.Result{Iterations: i} }

	c.put("a", "sa", "", res(1))
	c.put("b", "sb", "", res(2))
	c.put("c", "sc", "", res(3))
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}

	// Touch "a" so "b" becomes least recently used, then overflow.
	if r, sk, ok := c.get("a"); !ok || r.Iterations != 1 || sk != "sa" {
		t.Fatalf("get(a) = %+v, %q, %v", r, sk, ok)
	}
	c.put("d", "sd", "", res(4))
	if _, _, ok := c.get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}

	// Updating an existing key refreshes value, structural key, and
	// recency.
	c.put("c", "sc2", "", res(30))
	c.put("e", "se", "", res(5)) // evicts "a" (oldest after the gets above touched a,c,d)
	if r, sk, ok := c.get("c"); !ok || r.Iterations != 30 || sk != "sc2" {
		t.Errorf("get(c) after update = %+v, %q, %v", r, sk, ok)
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want 3", c.len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", "sa", "", stochsyn.Result{Iterations: 1})
	if _, _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Errorf("disabled cache len = %d", c.len())
	}
}

// TestResultCacheEqSatIndex pins the second-level index's contract:
// solved entries are findable by rewrite-equivalence key, unsolved
// ones never are, overwrites retarget the index, and eviction removes
// the slot together with the entry.
func TestResultCacheEqSatIndex(t *testing.T) {
	c := newResultCache(2)
	solved := func(i int64) stochsyn.Result { return stochsyn.Result{Solved: true, Iterations: i} }

	c.put("a", "sa", "eq1", solved(1))
	if r, ok := c.getEq("eq1"); !ok || r.Iterations != 1 {
		t.Fatalf("getEq(eq1) = %+v, %v; want hit with Iterations=1", r, ok)
	}
	if _, ok := c.getEq(""); ok {
		t.Error(`getEq("") returned a hit; empty key must disable the lookup`)
	}
	if _, ok := c.getEq("missing"); ok {
		t.Error("getEq(missing) returned a hit")
	}

	// Unsolved results must not be indexed: a rewrite-equivalent
	// submission with a different example set could still be solvable.
	c.put("b", "sb", "eq2", stochsyn.Result{Solved: false, Iterations: 2})
	if _, ok := c.getEq("eq2"); ok {
		t.Error("unsolved result reachable through the eqsat index")
	}

	// Overwriting an entry with a new eqKey drops the stale slot.
	c.put("a", "sa2", "eq1b", solved(10))
	if _, ok := c.getEq("eq1"); ok {
		t.Error("stale eqsat slot survived an overwrite")
	}
	if r, ok := c.getEq("eq1b"); !ok || r.Iterations != 10 {
		t.Errorf("getEq(eq1b) = %+v, %v; want the overwritten entry", r, ok)
	}

	// A getEq hit refreshes recency: after touching "a" via eq1b,
	// overflowing evicts "b", and "a" stays findable both ways.
	c.put("c", "sc", "eq3", solved(3))
	if _, _, ok := c.get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	if r, ok := c.getEq("eq1b"); !ok || r.Iterations != 10 {
		t.Errorf("getEq(eq1b) after eviction = %+v, %v", r, ok)
	}

	// Evicting an indexed entry removes its slot.
	c.put("d", "sd", "eq4", solved(4)) // evicts "c" (a was just touched)
	if _, ok := c.getEq("eq3"); ok {
		t.Error("eqsat slot outlived its evicted entry")
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	p, err := stochsyn.ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := stochsyn.Options{Budget: 1_000_000, Seed: 3}
	key := func(o stochsyn.Options) string {
		t.Helper()
		k, err := CacheKey(p, o)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	// Workers never fragments the cache: the executors are
	// bit-identical for any worker count.
	w := base
	w.Workers = 8
	if key(base) != key(w) {
		t.Error("Workers changed the cache key")
	}

	// Explicit defaults hash like implicit ones.
	expl := base
	expl.Cost, expl.Strategy, expl.Dialect, expl.Beta = stochsyn.Hamming, "adaptive", stochsyn.Full, 1
	if key(base) != key(expl) {
		t.Error("normalized defaults produced a different key than zero values")
	}

	// Every search-relevant knob must fragment the key.
	variants := map[string]stochsyn.Options{}
	for i, mod := range []func(*stochsyn.Options){
		func(o *stochsyn.Options) { o.Seed = 4 },
		func(o *stochsyn.Options) { o.Budget = 2_000_000 },
		func(o *stochsyn.Options) { o.Strategy = "luby" },
		func(o *stochsyn.Options) { o.Beta = 2 },
		func(o *stochsyn.Options) { o.Greedy = true },
		func(o *stochsyn.Options) { o.EqSat = true },
		func(o *stochsyn.Options) { o.Prune = true },
	} {
		o := base
		mod(&o)
		variants[fmt.Sprint(i)] = o
	}
	baseKey := key(base)
	seen := map[string]string{"base": baseKey}
	for name, o := range variants {
		k := key(o)
		if k == baseKey {
			t.Errorf("variant %s produced the base key", name)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("variants %s and %s collide", name, prev)
			}
		}
		seen[name] = k
	}

	// A different problem (different cases) changes the key.
	p2, err := stochsyn.ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(p2, base)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == baseKey {
		t.Error("different problem hashed to the same key")
	}
}

// TestCanonicalCacheKeySemantics pins the semantic key's collision
// rules: example order and duplication never matter, equivalent
// strategy spellings collide, and everything that fragments the
// structural key except those two still fragments the canonical one.
func TestCanonicalCacheKeySemantics(t *testing.T) {
	cases := []stochsyn.Case{
		{Inputs: []uint64{3, 5}, Output: 6},
		{Inputs: []uint64{1, 4}, Output: 5},
		{Inputs: []uint64{0, 0}, Output: 0},
	}
	mk := func(cs []stochsyn.Case) *stochsyn.Problem {
		t.Helper()
		p, err := stochsyn.NewProblem(2, cs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := stochsyn.Options{Budget: 1_000_000, Seed: 3}
	ckey := func(p *stochsyn.Problem, o stochsyn.Options) string {
		t.Helper()
		k, err := CanonicalCacheKey(p, o)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	p := mk(cases)
	baseKey := ckey(p, base)

	// Reordered examples: canonically equal, structurally distinct.
	shuffled := mk([]stochsyn.Case{cases[2], cases[0], cases[1]})
	if ckey(shuffled, base) != baseKey {
		t.Error("reordered examples changed the canonical key")
	}
	sk1, err := CacheKey(p, base)
	if err != nil {
		t.Fatal(err)
	}
	sk2, err := CacheKey(shuffled, base)
	if err != nil {
		t.Fatal(err)
	}
	if sk1 == sk2 {
		t.Error("reordered examples did not change the structural key")
	}

	// Duplicated examples collapse.
	dup := mk(append([]stochsyn.Case{cases[1]}, cases...))
	if ckey(dup, base) != baseKey {
		t.Error("duplicated examples changed the canonical key")
	}

	// Equivalent strategy spellings collide; the workers field of the
	// adaptive spec is results-neutral and must be dropped.
	for _, spec := range []string{"adaptive", "adaptive:1000", "adaptive:1000:0", "adaptive:1000:0:8"} {
		o := base
		o.Strategy = spec
		if got := ckey(p, o); got != baseKey {
			t.Errorf("strategy %q fragmented the canonical key", spec)
		}
	}

	// Semantically different knobs still fragment.
	for name, mod := range map[string]func(*stochsyn.Options){
		"seed":     func(o *stochsyn.Options) { o.Seed = 4 },
		"budget":   func(o *stochsyn.Options) { o.Budget = 2_000_000 },
		"strategy": func(o *stochsyn.Options) { o.Strategy = "luby" },
		"t0":       func(o *stochsyn.Options) { o.Strategy = "adaptive:2000" },
	} {
		o := base
		mod(&o)
		if ckey(p, o) == baseKey {
			t.Errorf("variant %s collided with the base canonical key", name)
		}
	}

	// A genuinely different example set still fragments.
	other := mk([]stochsyn.Case{cases[0], cases[1], {Inputs: []uint64{9, 9}, Output: 0}})
	if ckey(other, base) == baseKey {
		t.Error("different example set collided with the base canonical key")
	}
}
