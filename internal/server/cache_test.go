package server

import (
	"fmt"
	"testing"

	"stochsyn"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(3)
	res := func(i int64) stochsyn.Result { return stochsyn.Result{Iterations: i} }

	c.put("a", res(1))
	c.put("b", res(2))
	c.put("c", res(3))
	if c.len() != 3 {
		t.Fatalf("len = %d, want 3", c.len())
	}

	// Touch "a" so "b" becomes least recently used, then overflow.
	if r, ok := c.get("a"); !ok || r.Iterations != 1 {
		t.Fatalf("get(a) = %+v, %v", r, ok)
	}
	c.put("d", res(4))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing after eviction", k)
		}
	}

	// Updating an existing key refreshes both value and recency.
	c.put("c", res(30))
	c.put("e", res(5)) // evicts "a" (oldest after the gets above touched a,c,d)
	if r, ok := c.get("c"); !ok || r.Iterations != 30 {
		t.Errorf("get(c) after update = %+v, %v", r, ok)
	}
	if c.len() != 3 {
		t.Errorf("len = %d, want 3", c.len())
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", stochsyn.Result{Iterations: 1})
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Errorf("disabled cache len = %d", c.len())
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	p, err := stochsyn.ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := stochsyn.Options{Budget: 1_000_000, Seed: 3}
	key := func(o stochsyn.Options) string {
		t.Helper()
		k, err := CacheKey(p, o)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	// Workers never fragments the cache: the executors are
	// bit-identical for any worker count.
	w := base
	w.Workers = 8
	if key(base) != key(w) {
		t.Error("Workers changed the cache key")
	}

	// Explicit defaults hash like implicit ones.
	expl := base
	expl.Cost, expl.Strategy, expl.Dialect, expl.Beta = stochsyn.Hamming, "adaptive", stochsyn.Full, 1
	if key(base) != key(expl) {
		t.Error("normalized defaults produced a different key than zero values")
	}

	// Every search-relevant knob must fragment the key.
	variants := map[string]stochsyn.Options{}
	for i, mod := range []func(*stochsyn.Options){
		func(o *stochsyn.Options) { o.Seed = 4 },
		func(o *stochsyn.Options) { o.Budget = 2_000_000 },
		func(o *stochsyn.Options) { o.Strategy = "luby" },
		func(o *stochsyn.Options) { o.Beta = 2 },
		func(o *stochsyn.Options) { o.Greedy = true },
	} {
		o := base
		mod(&o)
		variants[fmt.Sprint(i)] = o
	}
	baseKey := key(base)
	seen := map[string]string{"base": baseKey}
	for name, o := range variants {
		k := key(o)
		if k == baseKey {
			t.Errorf("variant %s produced the base key", name)
		}
		for prev, pk := range seen {
			if pk == k {
				t.Errorf("variants %s and %s collide", name, prev)
			}
		}
		seen[name] = k
	}

	// A different problem (different cases) changes the key.
	p2, err := stochsyn.ProblemFromFunc(func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(p2, base)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == baseKey {
		t.Error("different problem hashed to the same key")
	}
}
