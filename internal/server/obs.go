package server

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"stochsyn/internal/obs"
)

// This file holds the server's observability wiring: the metric
// bundle resolved against the obs registry at startup, the HTTP
// latency middleware, and the /metrics, /tracez, and /debug/pprof
// routes. The server always owns an obs sink — Config.Obs lets the
// embedding process (cmd/synthd) share it, e.g. to add a -trace file
// sink or extra series.

// serverMetrics bundles the handles the request and job paths touch,
// so those paths never hit the registry's name lookup.
type serverMetrics struct {
	submitted   *obs.Counter
	rejected    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	// canonicalHits counts the subset of cacheHits where the hit was
	// semantic: the cached entry was populated by a structurally
	// different (but canonically equal) submission.
	canonicalHits *obs.Counter
	// workerHits counts late cache hits at claim time — jobs that
	// missed at submit and hit when a worker picked them up. Kept out
	// of cacheHits so hits+misses equals submit-time lookups.
	workerHits *obs.Counter
	// eqsatHits counts hits served through the second-level rewrite-
	// equivalence index (EqSatCacheKey): the submitted reference
	// expression was rewrite-equivalent to a cached one and the cached
	// program re-verified against the new example set. A subset of
	// cacheHits (submit path) or workerHits (claim path).
	eqsatHits *obs.Counter
	// dedupJoins/dedupPromotions are the singleflight counters: joins
	// of an in-flight identical job, and follower re-dispatches after
	// a leader ended without a usable result.
	dedupJoins      *obs.Counter
	dedupPromotions *obs.Counter
	// analysisFindings accumulates the static-analysis findings
	// (lint/fold/liveness) reported on completed jobs' solutions.
	analysisFindings *obs.Counter
	queueWait        *obs.Histogram
	jobRun           *obs.Histogram
}

// initObs registers the server's series on the sink and resolves the
// hot handles. Called once from New, after the Server struct exists
// (the gauge closures read live server state at scrape time).
func (s *Server) initObs() {
	r := s.obs.Reg
	s.metrics = serverMetrics{
		submitted:        r.Counter("stochsyn_jobs_submitted_total"),
		rejected:         r.Counter("stochsyn_jobs_rejected_total"),
		cacheHits:        r.Counter("stochsyn_cache_hits_total"),
		cacheMisses:      r.Counter("stochsyn_cache_misses_total"),
		canonicalHits:    r.Counter("stochsyn_cache_canonical_hits_total"),
		workerHits:       r.Counter("stochsyn_cache_worker_hits_total"),
		eqsatHits:        r.Counter("stochsyn_eqsat_cache_hits_total"),
		dedupJoins:       r.Counter("stochsyn_singleflight_joins_total"),
		dedupPromotions:  r.Counter("stochsyn_singleflight_promotions_total"),
		analysisFindings: r.Counter("stochsyn_analysis_findings_total"),
		queueWait:        r.Histogram("stochsyn_job_queue_wait_seconds", nil),
		jobRun:           r.Histogram("stochsyn_job_run_seconds", nil),
	}
	r.SetHelp("stochsyn_jobs_submitted_total", "Jobs submitted (accepted or not).")
	r.SetHelp("stochsyn_jobs_rejected_total", "Jobs rejected: queue full or server draining.")
	r.SetHelp("stochsyn_cache_hits_total", "Result-cache hits at submit time; each submission's lookup is counted exactly once, as a hit or a miss.")
	r.SetHelp("stochsyn_cache_misses_total", "Result-cache misses at submit time.")
	r.SetHelp("stochsyn_cache_worker_hits_total", "Late cache hits at claim time (job missed at submit, hit when a worker picked it up); not part of the hit/miss lookup accounting.")
	r.SetHelp("stochsyn_singleflight_joins_total", "Submissions that joined an identical in-flight job instead of searching.")
	r.SetHelp("stochsyn_singleflight_promotions_total", "Singleflight followers re-dispatched after their leader ended cancelled or failed.")
	r.SetHelp("stochsyn_cache_canonical_hits_total", "Cache hits where the entry came from a structurally different, semantically equal submission.")
	r.SetHelp("stochsyn_eqsat_cache_hits_total", "Cache hits served through the rewrite-equivalence (e-class) index after re-verification against the submitted examples.")
	// The per-run eqsat series are populated by the library
	// (stochsyn.Options.EqSat flushes them after each run); registering
	// their help here keeps /metrics self-describing even before the
	// first EqSat job runs.
	r.SetHelp("stochsyn_eqsat_saturations_total", "Equality-saturation runs performed (one per e-class hash).")
	r.SetHelp("stochsyn_eqsat_eclass_merges_total", "E-class unions performed during saturation.")
	r.SetHelp("stochsyn_eqsat_extractions_total", "Cost-minimal extractions performed on saturated e-graphs.")
	r.SetHelp("stochsyn_eqsat_fallbacks_total", "Extractions discarded by the Eval-equality safety net (fell back to the input program).")
	r.SetHelp("stochsyn_eqsat_plateau_checks_total", "Cost-neutral plateau moves hashed by the rewrite-equivalence memo (post-sampling).")
	r.SetHelp("stochsyn_eqsat_plateau_hits_total", "Plateau moves rejected as rewrite-equivalent revisits.")
	r.SetHelp("stochsyn_eqsat_seeds_total", "Restart seeds hashed by the rewrite-equivalence memo.")
	r.SetHelp("stochsyn_eqsat_seed_dups_total", "Restart seeds rewrite-equivalent to an earlier seed of the same run.")
	r.SetHelp("stochsyn_eqsat_fact_consts_total", "E-classes proved constant by the abstract e-class analysis alone (out of the constant folder's reach).")
	r.SetHelp("stochsyn_eqsat_fact_conflicts_total", "E-class fact meets that came out empty — the abstract unsoundness canary; must stay zero.")
	r.SetHelp("stochsyn_eqsat_empty_classes_total", "E-classes cut before extraction because their fact was empty; must stay zero.")
	r.SetHelp("stochsyn_analysis_findings_total", "Static-analysis findings (fold/lint/liveness) on completed jobs' solutions.")
	// The prune series are likewise library-populated (Options.Prune).
	r.SetHelp("stochsyn_prune_checked_total", "Proposals checked against the abstract-interpretation pruner.")
	r.SetHelp("stochsyn_prune_rejected_total", "Proposals rejected without evaluation: abstract output cannot contain every example output.")
	r.SetHelp("stochsyn_prune_unsound_check_total", "Pruned proposals that concretely satisfied the suite (PruneVerify audit); must stay zero.")
	r.SetHelp("stochsyn_job_queue_wait_seconds", "Time jobs spent queued before a worker claimed them.")
	r.SetHelp("stochsyn_job_run_seconds", "Wall-clock synthesis time of executed jobs.")

	r.GaugeFunc("stochsyn_singleflight_inflight", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.flights))
	})
	r.SetHelp("stochsyn_singleflight_inflight", "Currently open singleflight flights (distinct canonical keys in flight).")
	// Trace-event loss, split by reason. The source of truth is the
	// tracer's own atomic counters (shared across every per-job fork),
	// read at scrape time.
	tr := s.obs.Tracer
	r.CounterFunc("stochsyn_trace_dropped_total", func() float64 { return float64(tr.RingOverwrites()) }, "reason", "ring")
	r.CounterFunc("stochsyn_trace_dropped_total", func() float64 { return float64(tr.SinkErrors()) }, "reason", "sink")
	r.CounterFunc("stochsyn_trace_dropped_total", func() float64 { return float64(tr.SubscriberDrops()) }, "reason", "subscriber")
	r.SetHelp("stochsyn_trace_dropped_total", "Trace events lost, by reason: ring (overwritten before a drain), sink (write failure or backlog overflow), subscriber (SSE consumer too slow).")
	r.GaugeFunc("stochsyn_queue_depth", func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("stochsyn_queue_capacity", func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("stochsyn_busy_workers", func() float64 { return float64(s.busyWorkers.Load()) })
	r.GaugeFunc("stochsyn_uptime_seconds", func() float64 { return time.Since(s.started).Seconds() })
	r.SetHelp("stochsyn_queue_depth", "Jobs currently waiting in the queue.")
	r.SetHelp("stochsyn_busy_workers", "Scheduler workers currently running a job.")
	r.SetHelp("stochsyn_uptime_seconds", "Seconds since the server started.")

	// One gauge per lifecycle state; the scrape walks the job table
	// once per state, which stays cheap at the server's job-count
	// scale and keeps the series set fixed.
	for _, st := range []Status{StatusQueued, StatusRunning, StatusCompleted, StatusCancelled, StatusFailed} {
		st := st
		r.GaugeFunc("stochsyn_jobs", func() float64 {
			return float64(s.jobCounts().by(st))
		}, "state", string(st))
	}
	r.SetHelp("stochsyn_jobs", "Registered jobs by lifecycle state.")
	r.SetHelp("stochsyn_http_requests_total", "HTTP requests by route pattern and status code.")
	r.SetHelp("stochsyn_http_request_seconds", "HTTP request latency by route pattern.")
}

// by returns the count for one state.
func (c JobCounts) by(st Status) int {
	switch st {
	case StatusQueued:
		return c.Queued
	case StatusRunning:
		return c.Running
	case StatusCompleted:
		return c.Completed
	case StatusCancelled:
		return c.Cancelled
	case StatusFailed:
		return c.Failed
	}
	return 0
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route latency and request
// counting. The route label is the (static) mux pattern, never the
// raw URL, so series cardinality stays bounded.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.obs.Reg.Histogram("stochsyn_http_request_seconds", nil, "route", route)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		hist.Observe(time.Since(begin).Seconds())
		s.obs.Reg.Counter("stochsyn_http_requests_total",
			"route", route, "code", strconv.Itoa(sw.code)).Inc()
	}
}

// observability registers the telemetry endpoints on mux:
//
//	GET /metrics       Prometheus text exposition of the registry
//	GET /tracez        recent trace events as JSONL (?n= caps the count)
//	GET /debug/pprof/  the standard net/http/pprof handlers
func (s *Server) observability(mux *http.ServeMux) {
	mux.Handle("GET /metrics", s.obs.Reg.Handler())
	mux.Handle("GET /tracez", s.obs.Tracer.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
