package fleet_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
)

// getBody fetches url and returns its body, failing the test on any
// error or non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestFleetEventsStream streams a job's telemetry through the
// coordinator: the relay mirrors the owning worker's feed, so the
// client sees the full lifecycle under one trace id, with worker
// attribution and the coordinator's job id, ending on exactly one
// job_finished.
func TestFleetEventsStream(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	w1 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	defer w0.stop()
	defer w1.stop()
	co, ts, c := newFleet(t, w0, w1)
	defer ts.Close()
	defer co.Close()

	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	v, err := c.SubmitTraced(ctx, easySpec(5), parent)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.ID, "c") {
		t.Fatalf("not a coordinator id: %q", v.ID)
	}
	var events []obs.Event
	finished := 0
	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := c.Events(sctx, v.ID, 0, func(ev obs.Event) error {
		events = append(events, ev)
		if ev.Name == "job_finished" {
			finished++
		}
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if finished != 1 {
		t.Fatalf("saw %d job_finished events, want exactly 1", finished)
	}
	if last := events[len(events)-1]; last.Name != "job_finished" {
		t.Fatalf("stream did not end on the terminal event: %q", last.Name)
	}
	saw := map[string]bool{}
	for _, ev := range events {
		saw[ev.Name] = true
		if ev.TraceID != parent.TraceID {
			t.Fatalf("event %q has trace %q, want the propagated %q", ev.Name, ev.TraceID, parent.TraceID)
		}
		if ev.Attrs["job"] != v.ID {
			t.Fatalf("event %q not stamped with the coordinator id: %+v", ev.Name, ev.Attrs)
		}
	}
	// The stream interleaves coordinator-side spans with relayed
	// worker-side lifecycle events.
	for _, want := range []string{"fleet_forward", "job_submitted", "job_started", "search_start", "search_stop", "job_finished"} {
		if !saw[want] {
			t.Errorf("stream missing a %q event (saw %v)", want, saw)
		}
	}
	for _, ev := range events {
		if ev.Name == "job_submitted" && ev.Attrs["worker"] == nil {
			t.Errorf("relayed event lacks worker attribution: %+v", ev.Attrs)
		}
	}
}

// TestFleetEventsFailover is the headline streaming guarantee: a
// client streaming through the coordinator keeps its one connection
// across a mid-run worker death. The relay notices the torn worker
// stream, re-dispatches, re-attaches to the survivor, and the client
// sees events from both workers under one trace id with exactly one
// terminal event.
func TestFleetEventsFailover(t *testing.T) {
	ctx := context.Background()
	workers := []*worker{
		newWorker(t, server.Config{Workers: 1, WorkerBudget: 1}),
		newWorker(t, server.Config{Workers: 1, WorkerBudget: 1}),
	}
	co, ts, c := newFleet(t, workers[0], workers[1])
	defer ts.Close()
	defer co.Close()

	v, err := c.Submit(ctx, hardSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	v = waitRunning(t, c, v.ID)
	var dead, survivor *worker
	switch v.Worker {
	case "w0":
		dead, survivor = workers[0], workers[1]
	case "w1":
		dead, survivor = workers[1], workers[0]
	default:
		t.Fatalf("unattributed job: %+v", v)
	}
	deadName := v.Worker
	defer survivor.stop()

	type tally struct {
		byWorker map[string]int
		finished int
		traceIDs map[string]bool
	}
	got := tally{byWorker: map[string]int{}, traceIDs: map[string]bool{}}
	seenDead := make(chan struct{})
	var deadOnce bool
	done := make(chan error, 1)
	sctx, scancel := context.WithTimeout(ctx, 60*time.Second)
	defer scancel()
	go func() {
		done <- c.Events(sctx, v.ID, 0, func(ev obs.Event) error {
			if w, ok := ev.Attrs["worker"].(string); ok {
				got.byWorker[w]++
				if w == deadName && !deadOnce {
					deadOnce = true
					close(seenDead)
				}
			}
			if ev.TraceID != "" {
				got.traceIDs[ev.TraceID] = true
			}
			if ev.Name == "job_finished" {
				got.finished++
			}
			return nil
		})
	}()

	// Only kill the worker once its events are flowing on the stream.
	select {
	case <-seenDead:
	case <-time.After(30 * time.Second):
		t.Fatal("no events from the owning worker arrived")
	}
	dead.stop()

	// The relay (or a poll) re-dispatches; wait until the job runs on
	// the survivor, then cancel it so the stream can terminate.
	deadline := time.Now().Add(30 * time.Second)
	for {
		rv, err := c.Job(ctx, v.ID)
		if err == nil && rv.Worker != deadName && rv.Status == server.StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not re-dispatched: last view %+v err %v", rv, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not terminate after cancel")
	}

	// The single client connection saw both sides of the failover.
	survivorName := "w0"
	if deadName == "w0" {
		survivorName = "w1"
	}
	if got.byWorker[deadName] == 0 {
		t.Errorf("no events relayed from the original worker %s: %v", deadName, got.byWorker)
	}
	if got.byWorker[survivorName] == 0 {
		t.Errorf("no events relayed from the survivor %s after redispatch: %v", survivorName, got.byWorker)
	}
	if got.finished != 1 {
		t.Errorf("saw %d job_finished events across the failover, want exactly 1", got.finished)
	}
	if len(got.traceIDs) != 1 {
		t.Errorf("trace id changed across redispatch: %v", got.traceIDs)
	}
	if st := co.Snapshot(); st.Redispatches != 1 {
		t.Errorf("redispatches = %d, want 1", st.Redispatches)
	}
}

// TestFleetStatszRollup checks /statsz aggregates worker-side stats
// fleet-wide: after jobs complete on the workers, the rollup counts
// them and attributes per-worker snapshots.
func TestFleetStatszRollup(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	w1 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	defer w0.stop()
	defer w1.stop()
	co, ts, c := newFleet(t, w0, w1)
	defer ts.Close()
	defer co.Close()

	for _, seed := range []uint64{21, 22, 23} {
		v, err := c.Submit(ctx, easySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		if _, err := c.Wait(wctx, v.ID, 0); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
	}

	st := co.SnapshotFleet(ctx)
	if st.Fleet.WorkersReachable != 2 {
		t.Fatalf("workers reachable = %d, want 2", st.Fleet.WorkersReachable)
	}
	if st.Fleet.Submitted != 3 || st.Fleet.Jobs.Completed != 3 {
		t.Errorf("fleet rollup = %+v, want 3 submitted/completed", st.Fleet)
	}
	if st.Fleet.PoolTotal != 4 {
		t.Errorf("fleet pool total = %d, want 4 (2 workers x 2)", st.Fleet.PoolTotal)
	}
	for _, ws := range st.Workers {
		if ws.Stats == nil {
			t.Errorf("worker %s missing scraped stats", ws.Name)
		}
	}

	// A dead worker degrades the rollup, never fails it.
	w1.stop()
	st = co.SnapshotFleet(ctx)
	if st.Fleet.WorkersReachable != 1 {
		t.Errorf("workers reachable after death = %d, want 1", st.Fleet.WorkersReachable)
	}
}

// TestFleetMetricsFederation checks the coordinator /metrics merges
// worker expositions under worker labels alongside its own series.
func TestFleetMetricsFederation(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	w1 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	defer w0.stop()
	defer w1.stop()
	co, ts, c := newFleet(t, w0, w1)
	defer ts.Close()
	defer co.Close()

	v, err := c.Submit(ctx, easySpec(31))
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if _, err := c.Wait(wctx, v.ID, 0); err != nil {
		t.Fatal(err)
	}

	body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		// Coordinator-local series stay unlabeled.
		"stochsyn_fleet_forwards_total{worker=\"w0\"}",
		// Every worker's series appear, tagged by shard.
		"stochsyn_jobs_submitted_total{worker=\"w0\"}",
		"stochsyn_jobs_submitted_total{worker=\"w1\"}",
		// Labeled worker series merge the shard tag into existing labels.
		"state=\"completed\",worker=",
		// Histogram families survive the merge with their TYPE line.
		"# TYPE stochsyn_job_run_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("federated /metrics missing %q", want)
		}
	}
	// One completed job somewhere in the fleet: exactly one of the two
	// labeled submitted counters reads 1.
	if !strings.Contains(body, "stochsyn_jobs_submitted_total{worker=\"w0\"} 1") &&
		!strings.Contains(body, "stochsyn_jobs_submitted_total{worker=\"w1\"} 1") {
		t.Error("federated /metrics does not show the forwarded job on either worker")
	}

	// A dead worker turns into a comment, not a scrape failure.
	w1.stop()
	body = getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "# federation: worker w1 unreachable") {
		t.Error("federated /metrics does not flag the dead worker")
	}
	if !strings.Contains(body, "stochsyn_jobs_submitted_total{worker=\"w0\"}") {
		t.Error("surviving worker's series vanished from the federation")
	}
}
