package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file implements the coordinator's federated /metrics: one
// scrape of the coordinator answers with the coordinator's own series
// plus every reachable worker's, each worker sample re-labeled with
// worker="wN". A fleet then needs exactly one Prometheus target, and
// per-shard breakdowns fall out of the worker label instead of
// per-target relabeling config.

// scrapeTimeout bounds each worker's /metrics fetch; a dead worker
// costs one timeout, not a hung federation scrape.
const scrapeTimeout = 2 * time.Second

// handleMetrics serves the federated exposition. Worker scrapes run
// concurrently; a failed scrape degrades to a comment line naming the
// worker, never a failed response (the coordinator's own series must
// stay scrapeable while shards are down).
func (co *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var own strings.Builder
	_ = co.obs.Reg.WriteProm(&own)

	bodies := make([]string, len(co.workers))
	errs := make([]error, len(co.workers))
	var wg sync.WaitGroup
	for i, wk := range co.workers {
		i, wk := i, wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			bodies[i], errs[i] = co.scrapeWorker(r.Context(), wk.base)
		}()
	}
	wg.Wait()

	merged := newExposition()
	merged.add(own.String(), "") // coordinator series stay unlabeled
	var down []string
	for i, wk := range co.workers {
		if errs[i] != nil {
			down = append(down, fmt.Sprintf("# federation: worker %s unreachable: %v", wk.name, errs[i]))
			continue
		}
		merged.add(bodies[i], wk.name)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, line := range down {
		fmt.Fprintln(w, line)
	}
	merged.write(w)
}

// scrapeWorker fetches one worker's /metrics text.
func (co *Coordinator) scrapeWorker(ctx context.Context, base string) (string, error) {
	sctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	hc := co.cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	return string(body), nil
}

// exposition accumulates samples grouped by metric family, so merged
// output keeps each family's HELP/TYPE header immediately above all
// of its samples (histogram _bucket/_sum/_count series stay grouped
// under their base family, as the text format requires).
type exposition struct {
	families map[string]*famChunk
	names    []string
}

type famChunk struct {
	help    string
	typ     string
	samples []string
}

func newExposition() *exposition {
	return &exposition{families: make(map[string]*famChunk)}
}

// add parses one exposition body and appends its samples, labeling
// each with worker="<worker>" when worker is non-empty. Sample lines
// are attributed to the family of the most recent # TYPE line, which
// is how both the registry and Prometheus order their output.
func (e *exposition) add(body, worker string) {
	var cur *famChunk
	var pendingHelp string
	var pendingHelpName string
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			if sp := strings.IndexByte(rest, ' '); sp > 0 {
				pendingHelpName, pendingHelp = rest[:sp], line
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				continue
			}
			name := rest[:sp]
			cur = e.family(name)
			if cur.typ == "" {
				cur.typ = line
			}
			if cur.help == "" && pendingHelpName == name {
				cur.help = pendingHelp
			}
		case strings.HasPrefix(line, "#"):
			// Free-form comment: not part of any family; drop it.
		default:
			if cur == nil {
				// A sample before any TYPE line: attribute it to its own
				// name so it is not lost (the registry never emits this,
				// but a foreign exposition might).
				name := line
				if cut := strings.IndexAny(line, "{ "); cut > 0 {
					name = line[:cut]
				}
				cur = e.family(strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count"))
			}
			cur.samples = append(cur.samples, labelSample(line, worker))
		}
	}
}

func (e *exposition) family(name string) *famChunk {
	if f, ok := e.families[name]; ok {
		return f
	}
	f := &famChunk{}
	e.families[name] = f
	e.names = append(e.names, name)
	return f
}

// labelSample injects worker="<worker>" into one sample line. The
// label is appended last inside the braces; the search for the brace
// runs from the right because label VALUES may contain '{' but the
// sample's value/timestamp tail never contains '}'.
func labelSample(line, worker string) string {
	if worker == "" {
		return line
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return line // not a sample; pass through untouched
	}
	head, tail := line[:sp], line[sp:]
	if i := strings.LastIndexByte(head, '}'); i >= 0 {
		return head[:i] + `,worker="` + worker + `"}` + tail
	}
	return head + `{worker="` + worker + `"}` + tail
}

// write renders the merged exposition, families sorted by name.
func (e *exposition) write(w io.Writer) {
	sort.Strings(e.names)
	for _, name := range e.names {
		f := e.families[name]
		if f.help != "" {
			fmt.Fprintln(w, f.help)
		}
		if f.typ != "" {
			fmt.Fprintln(w, f.typ)
		}
		for _, s := range f.samples {
			fmt.Fprintln(w, s)
		}
	}
}
