package fleet

import (
	"hash/fnv"
	"sort"
)

// Rendezvous (highest-random-weight) hashing assigns each canonical
// cache key a total order over the workers: the key's home shard is
// the highest-scoring worker, and failover walks the same order. Two
// properties make it the right sharding function for the fleet:
//
//   - No coordination: every coordinator (and every retry) computes
//     the same order from nothing but the key and the worker names,
//     so identical submissions always land on the same worker — its
//     local result cache and singleflight table see every duplicate,
//     and the sharded cache needs no cross-node invalidation.
//   - Minimal disruption: removing a worker reassigns only the keys
//     it owned (each to its second-ranked worker); every other key's
//     order is untouched. A static worker set plus failover-to-next
//     therefore behaves like consistent hashing without a ring.
func hrwScore(key, worker string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(worker))
	return h.Sum64()
}

// shardOrder returns workers ranked for key, best first. Ties (never
// expected from a 64-bit hash, but the order must be total) break by
// name so every coordinator agrees.
func shardOrder(workers []*workerRef, key string) []*workerRef {
	ranked := make([]*workerRef, len(workers))
	copy(ranked, workers)
	score := make(map[*workerRef]uint64, len(workers))
	for _, w := range ranked {
		score[w] = hrwScore(key, w.name)
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := score[ranked[i]], score[ranked[j]]
		if si != sj {
			return si > sj
		}
		return ranked[i].name < ranked[j].name
	})
	return ranked
}
