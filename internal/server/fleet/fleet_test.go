package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"stochsyn/internal/server"
	"stochsyn/internal/server/client"
	"stochsyn/internal/server/fleet"
)

func easySpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Problem: server.ProblemSpec{Expr: "xorq(x, y)", Inputs: 2, NumCases: 40, CaseSeed: 11},
		Options: server.OptionsSpec{Budget: 2_000_000, Seed: seed, Workers: 2},
	}
}

func hardSpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Problem: server.ProblemSpec{
			Expr:   "subq(xorq(mull(x, x), shrq(x, 9)), orq(x, 0x5bd1e995))",
			Inputs: 1, NumCases: 50, CaseSeed: 3,
		},
		Options: server.OptionsSpec{Budget: 1 << 40, Seed: seed},
	}
}

func slowSpec(seed uint64) server.JobSpec {
	s := hardSpec(seed)
	s.Options.Budget = 1_500_000
	return s
}

// worker bundles one worker synthd and its HTTP front.
type worker struct {
	srv *server.Server
	ts  *httptest.Server
}

func newWorker(t *testing.T, cfg server.Config) *worker {
	t.Helper()
	srv := server.New(cfg)
	return &worker{srv: srv, ts: httptest.NewServer(srv.Handler())}
}

// stop tears the worker down hard: HTTP first, then an already-
// expired drain so running jobs are cancelled, not awaited. Open
// client connections (e.g. a relay's SSE stream) are severed first —
// ts.Close would otherwise block on them, which is exactly the
// opposite of the worker-crash this simulates.
func (w *worker) stop() {
	w.ts.CloseClientConnections()
	w.ts.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now())
	defer cancel()
	_ = w.srv.Shutdown(ctx)
}

func newFleet(t *testing.T, workers ...*worker) (*fleet.Coordinator, *httptest.Server, *client.Client) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.ts.URL
	}
	co, err := fleet.New(fleet.Config{Workers: urls, HealthInterval: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	c := client.New(ts.URL)
	c.HTTPClient = ts.Client()
	return co, ts, c
}

func waitRunning(t *testing.T, c *client.Client, id string) *server.JobView {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if v.Status == server.StatusRunning {
			return v
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s terminal while waiting for running: %+v", id, v)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not start running", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetDeterminism is the ISSUE's acceptance e2e: a job submitted
// through the coordinator returns a bit-identical Result (program,
// iterations, searches, seed) to the same spec run against a single
// local synthd — the schedule-deterministic tree executor makes
// placement invisible.
func TestFleetDeterminism(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	w1 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	defer w0.stop()
	defer w1.stop()
	co, ts, c := newFleet(t, w0, w1)
	defer ts.Close()
	defer co.Close()

	local := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4})
	defer local.stop()
	lc := client.New(local.ts.URL)

	seeds := []uint64{1, 2, 3, 4}
	fleetViews := make([]*server.JobView, len(seeds))
	for i, seed := range seeds {
		v, err := c.Submit(ctx, easySpec(seed))
		if err != nil {
			t.Fatalf("fleet submit seed %d: %v", seed, err)
		}
		fleetViews[i] = v
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	for i := range fleetViews {
		v, err := c.Wait(wctx, fleetViews[i].ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		fleetViews[i] = v
	}

	for i, seed := range seeds {
		lv, err := lc.Submit(ctx, easySpec(seed))
		if err != nil {
			t.Fatalf("local submit seed %d: %v", seed, err)
		}
		lv, err = lc.Wait(wctx, lv.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		fv := fleetViews[i]
		if fv.Status != server.StatusCompleted || lv.Status != server.StatusCompleted {
			t.Fatalf("seed %d: fleet %s / local %s", seed, fv.Status, lv.Status)
		}
		if fv.Worker == "" {
			t.Errorf("seed %d: fleet view missing worker attribution: %+v", seed, fv)
		}
		fr, lr := fv.Result, lv.Result
		if fr == nil || lr == nil {
			t.Fatalf("seed %d: missing result: fleet %+v local %+v", seed, fr, lr)
		}
		if fr.Program != lr.Program || fr.Iterations != lr.Iterations ||
			fr.Searches != lr.Searches || fr.Seed != lr.Seed || fr.Solved != lr.Solved {
			t.Errorf("seed %d: fleet result differs from local:\nfleet: %+v\nlocal: %+v", seed, fr, lr)
		}
	}

	st := co.Snapshot()
	var forwards int64
	for _, ws := range st.Workers {
		forwards += ws.Forwards
	}
	if forwards != int64(len(seeds)) || st.Submissions != len(seeds) {
		t.Errorf("fleet stats: %+v, want %d forwards/submissions", st, len(seeds))
	}
}

// TestFleetFailoverMidRun kills the worker a job is running on and
// expects the coordinator to re-dispatch it to the surviving shard
// under the same id — no hang, no lost job.
func TestFleetFailoverMidRun(t *testing.T) {
	ctx := context.Background()
	workers := []*worker{
		newWorker(t, server.Config{Workers: 1, WorkerBudget: 1}),
		newWorker(t, server.Config{Workers: 1, WorkerBudget: 1}),
	}
	co, ts, c := newFleet(t, workers[0], workers[1])
	defer ts.Close()
	defer co.Close()

	v, err := c.Submit(ctx, hardSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	v = waitRunning(t, c, v.ID)
	var dead, survivor *worker
	switch v.Worker {
	case "w0":
		dead, survivor = workers[0], workers[1]
	case "w1":
		dead, survivor = workers[1], workers[0]
	default:
		t.Fatalf("unattributed job: %+v", v)
	}
	deadName := v.Worker
	defer survivor.stop()
	dead.stop()

	// The next polls find the worker gone and re-dispatch; the job
	// keeps its coordinator id and ends up running on the survivor.
	deadline := time.Now().Add(15 * time.Second)
	for {
		rv, err := c.Job(ctx, v.ID)
		if err == nil && rv.Worker != deadName && rv.Status == server.StatusRunning {
			v = rv
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not re-dispatched: last view %+v err %v", rv, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := co.Snapshot(); st.Redispatches != 1 {
		t.Errorf("redispatches = %d, want 1", st.Redispatches)
	}

	// The re-dispatched job is live: cancel it through the
	// coordinator and see it finish.
	if _, err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	fv, err := c.Wait(wctx, v.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Status != server.StatusCancelled {
		t.Errorf("cancelled re-dispatched job: %+v", fv)
	}
}

// TestFleetSingleflightSharding checks the fleet-level dedup story:
// identical submissions shard to the same worker, whose singleflight
// joins them — one search for two coordinator clients.
func TestFleetSingleflightSharding(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 2})
	w1 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 2})
	defer w0.stop()
	defer w1.stop()
	co, ts, c := newFleet(t, w0, w1)
	defer ts.Close()
	defer co.Close()

	first, err := c.Submit(ctx, slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	first = waitRunning(t, c, first.ID)
	second, err := c.Submit(ctx, slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if second.Worker != first.Worker {
		t.Fatalf("identical submissions sharded apart: %s vs %s", first.Worker, second.Worker)
	}

	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	fv, err := c.Wait(wctx, first.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.Wait(wctx, second.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Deduped {
		t.Errorf("second identical submission should be a singleflight follower: %+v", sv)
	}
	if fv.Result == nil || sv.Result == nil || fv.Result.Program != sv.Result.Program ||
		fv.Result.Iterations != sv.Result.Iterations {
		t.Errorf("deduped results differ:\n%+v\n%+v", fv.Result, sv.Result)
	}
	joins := w0.srv.Snapshot().Dedup.Joins + w1.srv.Snapshot().Dedup.Joins
	if joins != 1 {
		t.Errorf("worker dedup joins = %d, want 1", joins)
	}
}

// TestFleetBackpressure fills the only worker and expects the
// coordinator to answer 503 with a Retry-After hint rather than hang.
func TestFleetBackpressure(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 1, WorkerBudget: 1, QueueDepth: 1})
	defer w0.stop()
	co, ts, c := newFleet(t, w0)
	defer ts.Close()
	defer co.Close()

	first, err := c.Submit(ctx, hardSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, c, first.ID)
	if _, err := c.Submit(ctx, hardSpec(2)); err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(hardSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit through coordinator = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from coordinator missing Retry-After hint")
	}
	if st := co.Snapshot(); st.Backpressure != 1 {
		t.Errorf("backpressure counter = %d, want 1", st.Backpressure)
	}
}

// TestFleetBadSpec checks that invalid specs are rejected at the
// coordinator (400) without consuming a forward.
func TestFleetBadSpec(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 1, WorkerBudget: 1})
	defer w0.stop()
	co, ts, c := newFleet(t, w0)
	defer ts.Close()
	defer co.Close()

	_, err := c.Submit(ctx, server.JobSpec{Problem: server.ProblemSpec{Expr: "frobq(x)", Inputs: 1}})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec through coordinator: %v, want 400", err)
	}
	var forwards int64
	for _, ws := range co.Snapshot().Workers {
		forwards += ws.Forwards
	}
	if forwards != 0 {
		t.Errorf("bad spec consumed %d forwards", forwards)
	}

	// Unknown ?status= filters are a 400 at the coordinator too.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs?status=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("coordinator ?status=bogus = %d, want 400", resp.StatusCode)
	}
}

// TestFleetEqSatCacheHit checks that rewrite-equivalence caching works
// fleet-wide: expr submissions shard by EqSatCacheKey, so a reference
// expression rewrite-equivalent to an earlier one — over a different
// sampled example set — lands on the same worker, whose second-level
// cache index serves it born-completed.
func TestFleetEqSatCacheHit(t *testing.T) {
	ctx := context.Background()
	w0 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4, CacheSize: 8})
	w1 := newWorker(t, server.Config{Workers: 2, WorkerBudget: 4, CacheSize: 8})
	defer w0.stop()
	defer w1.stop()
	co, ts, c := newFleet(t, w0, w1)
	defer ts.Close()
	defer co.Close()

	spec := func(expr string, caseSeed uint64) server.JobSpec {
		return server.JobSpec{
			Problem: server.ProblemSpec{Expr: expr, Inputs: 1, NumCases: 40, CaseSeed: caseSeed},
			Options: server.OptionsSpec{Budget: 4_000_000, Seed: 2},
		}
	}

	first, err := c.Submit(ctx, spec("addq(addq(x, 1), 2)", 11))
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	fv, err := c.Wait(wctx, first.ID, 0)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if fv.Status != server.StatusCompleted || fv.Result == nil || !fv.Result.Solved {
		t.Fatalf("first job: %+v", fv)
	}

	// The respelling samples a different suite (different case seed),
	// so only the rewrite-equivalence shard key can co-locate it.
	second, err := c.Submit(ctx, spec("addq(x, 3)", 12))
	if err != nil {
		t.Fatal(err)
	}
	if second.Worker != first.Worker {
		t.Fatalf("rewrite-equivalent submissions sharded apart: %s vs %s", first.Worker, second.Worker)
	}
	if second.Status != server.StatusCompleted || !second.Cached {
		t.Fatalf("rewrite-equivalent submission not served from the worker cache: %+v", second)
	}
	if second.Result == nil || !second.Result.Solved || second.Result.Program != fv.Result.Program {
		t.Errorf("eqsat hit result differs:\n%+v\n%+v", second.Result, fv.Result)
	}

	hits := w0.srv.Snapshot().Cache.EqSatHits + w1.srv.Snapshot().Cache.EqSatHits
	if hits != 1 {
		t.Errorf("worker eqsat cache hits = %d, want 1", hits)
	}
}
