// Package fleet implements synthd's coordinator mode: an HTTP front
// end that speaks the same /v1 job API as a single synthd
// (internal/server) but owns no scheduler of its own. Submissions are
// sharded over a static set of worker synthd instances by rendezvous
// hashing of the canonical cache key (see hrw.go), forwarded through
// the standard Go client, and tracked so polls, cancels, and worker
// failures route to the right place.
//
// Robustness model:
//
//   - Health: a background prober pings every worker's /healthz on an
//     interval; forwarding prefers healthy workers but will try
//     unhealthy ones as a last resort (stale probe state must not
//     reject work a live worker could take).
//   - Failover: a worker that cannot be reached at submit time is
//     marked unhealthy and the next shard in the key's rendezvous
//     order is tried, with backoff between attempts. A worker that
//     dies while running a job is detected at poll time and the job
//     is re-dispatched to the next shard under the same coordinator
//     id. The positional-grant tree executor is schedule-
//     deterministic, so the re-run returns the bit-identical result
//     the dead worker would have produced.
//   - Backpressure: a 503 from a worker (queue full) is not retried
//     against that worker; if every candidate is full or down, the
//     coordinator answers 503 with a Retry-After hint instead of
//     hanging or queueing unboundedly.
//   - Dedup: identical in-flight submissions shard to the same worker
//     by construction, where the server's singleflight joins them to
//     one search; the coordinator adds no second dedup layer.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
	"stochsyn/internal/server/client"
)

// Config sizes the coordinator. Workers is required; the zero value
// of everything else selects defaults.
type Config struct {
	// Workers lists the base URLs of the worker synthd instances,
	// e.g. ["http://10.0.0.1:8731", "http://10.0.0.2:8731"]. The set
	// is static for the coordinator's lifetime; position i is named
	// "w<i>" in ids, metrics, and traces.
	Workers []string
	// HealthInterval is the period of the background health prober
	// (default 1s).
	HealthInterval time.Duration
	// RetryBackoff is the pause before each failover attempt after
	// the first (default 50ms, growing linearly per attempt).
	RetryBackoff time.Duration
	// HTTPClient is the transport used for all worker calls; nil uses
	// http.DefaultClient.
	HTTPClient *http.Client
	// Obs, when non-nil, is the observability sink the coordinator
	// publishes into; nil creates a private one. The Handler serves
	// /metrics, /tracez, and /debug/pprof either way.
	Obs *obs.Obs
}

// Coordinator fronts a fleet of worker synthds. Create with New,
// serve Handler, stop with Close.
type Coordinator struct {
	cfg     Config
	obs     *obs.Obs
	workers []*workerRef

	mu     sync.Mutex
	subs   map[string]*submission
	order  []*submission
	nextID int

	metrics coordMetrics
	stop    chan struct{}
	wg      sync.WaitGroup
	// relayCtx bounds the per-submission event-relay goroutines (see
	// relayLoop); Close cancels it.
	relayCtx    context.Context
	relayCancel context.CancelFunc
}

// workerRef is one worker shard. The health flag is written by the
// prober and by forwarding failures, read by shard selection.
type workerRef struct {
	name   string
	base   string
	client *client.Client

	mu      sync.Mutex
	healthy bool
}

func (w *workerRef) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// setHealthy updates the flag and reports whether it changed.
func (w *workerRef) setHealthy(v bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	changed := w.healthy != v
	w.healthy = v
	return changed
}

// submission is the coordinator-side record of one forwarded job. mu
// serializes polls and re-dispatches of the same submission (held
// across the worker round trip, so two pollers cannot double-dispatch
// a dead worker's job).
type submission struct {
	id      string
	spec    server.JobSpec
	key     string
	created time.Time
	// tracer is the submission's trace fork: forward, failover, and
	// redispatch spans land here (parented under the submit span), as
	// do the owning worker's events once the relay mirrors them in —
	// it backs the coordinator's GET /v1/jobs/{id}/events stream.
	tracer *obs.Tracer
	// submit is the submission's root span; the worker-side job and
	// every coordinator-side operation span parent under it, sharing
	// its trace id across the fleet (propagated via traceparent).
	submit obs.SpanContext
	// relay starts the worker event-stream mirror at most once, on the
	// first /events request for this submission.
	relay sync.Once

	mu       sync.Mutex
	worker   *workerRef
	remoteID string
	last     server.JobView // last seen view, already rewritten
	terminal bool
}

// SubTraceCap is the ring capacity of each submission's trace fork.
// It is larger than the worker-side server.JobTraceCap: a redispatched
// submission relays up to two runs' worth of events plus its own
// forward/redispatch spans.
const SubTraceCap = 4096

type coordMetrics struct {
	forwards     map[string]*obs.Counter // by worker name
	failovers    map[string]*obs.Counter // by worker name (the worker failed away from)
	redispatches *obs.Counter
	backpressure *obs.Counter
}

// New validates cfg, builds the worker set, and starts the health
// prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	for _, u := range cfg.Workers {
		if strings.TrimSpace(u) == "" {
			return nil, errors.New("fleet: empty worker URL in worker list")
		}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	co := &Coordinator{
		cfg:  cfg,
		obs:  cfg.Obs,
		subs: make(map[string]*submission),
		stop: make(chan struct{}),
	}
	co.relayCtx, co.relayCancel = context.WithCancel(context.Background())
	if co.obs == nil {
		co.obs = obs.New()
	}
	co.metrics = coordMetrics{
		forwards:     make(map[string]*obs.Counter),
		failovers:    make(map[string]*obs.Counter),
		redispatches: co.obs.Reg.Counter("stochsyn_fleet_redispatches_total"),
		backpressure: co.obs.Reg.Counter("stochsyn_fleet_backpressure_total"),
	}
	co.obs.Reg.SetHelp("stochsyn_fleet_redispatches_total", "Jobs re-dispatched to another shard after their worker became unreachable mid-run.")
	co.obs.Reg.SetHelp("stochsyn_fleet_backpressure_total", "Submissions answered 503 because every candidate worker was full or down.")
	for i, base := range cfg.Workers {
		w := &workerRef{
			name:   fmt.Sprintf("w%d", i),
			base:   base,
			client: client.New(base),
		}
		w.client.HTTPClient = cfg.HTTPClient
		w.healthy = true // optimistic until the first probe says otherwise
		co.workers = append(co.workers, w)
		co.metrics.forwards[w.name] = co.obs.Reg.Counter("stochsyn_fleet_forwards_total", "worker", w.name)
		co.metrics.failovers[w.name] = co.obs.Reg.Counter("stochsyn_fleet_failovers_total", "worker", w.name)
		co.obs.Reg.GaugeFunc("stochsyn_fleet_worker_healthy", func() float64 {
			if w.isHealthy() {
				return 1
			}
			return 0
		}, "worker", w.name)
	}
	co.obs.Reg.SetHelp("stochsyn_fleet_forwards_total", "Jobs forwarded to each worker shard.")
	co.obs.Reg.SetHelp("stochsyn_fleet_failovers_total", "Forwarding attempts that failed against each worker and moved to the next shard.")
	co.obs.Reg.SetHelp("stochsyn_fleet_worker_healthy", "1 if the last health probe of the worker succeeded, else 0.")

	co.wg.Add(1)
	go co.healthLoop()
	return co, nil
}

// Close stops the health prober and the event relays. In-flight jobs
// keep running on their workers; the coordinator holds no queue of
// its own.
func (co *Coordinator) Close() error {
	close(co.stop)
	co.relayCancel()
	co.wg.Wait()
	return nil
}

// healthLoop probes every worker's /healthz each interval.
func (co *Coordinator) healthLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HealthInterval)
	defer t.Stop()
	for {
		co.probeAll()
		select {
		case <-co.stop:
			return
		case <-t.C:
		}
	}
}

func (co *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, w := range co.workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HealthInterval)
			defer cancel()
			err := w.client.Health(ctx)
			if w.setHealthy(err == nil) {
				co.obs.Trace().Emit("fleet_worker_health", map[string]any{
					"worker": w.name, "healthy": err == nil,
				})
			}
		}()
	}
	wg.Wait()
}

// forward submits the submission's spec to the best available shard
// for its key, walking the rendezvous order with backoff. exclude,
// when non-nil, is skipped (the worker a re-dispatch is fleeing). The
// whole walk is one fleet_forward span on sub.tracer, parented under
// parentID (the submit span, or a redispatch span); per-candidate
// failures become fleet_failover / fleet_backpressure events under
// it, and the accepting worker receives the span's context as a
// traceparent header, so the worker-side job joins the same trace. It
// returns the worker that accepted the job and its initial view.
func (co *Coordinator) forward(ctx context.Context, sub *submission, parentID string, exclude *workerRef) (*workerRef, *server.JobView, error) {
	span := sub.tracer.StartSpan("fleet_forward", sub.submit.TraceID, parentID)
	ranked := shardOrder(co.workers, sub.key)
	// Healthy shards first in rank order, then the unhealthy ones as
	// a last resort: a stale probe must not turn capacity away.
	candidates := make([]*workerRef, 0, len(ranked))
	for _, w := range ranked {
		if w != exclude && w.isHealthy() {
			candidates = append(candidates, w)
		}
	}
	for _, w := range ranked {
		if w != exclude && !w.isHealthy() {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		span.End(map[string]any{"error": "no workers available"})
		return nil, nil, &fleetError{code: http.StatusServiceUnavailable, retryAfter: 1, msg: "no workers available"}
	}

	sawBusy := false
	for i, w := range candidates {
		if i > 0 {
			select {
			case <-ctx.Done():
				span.End(map[string]any{"error": ctx.Err().Error()})
				return nil, nil, ctx.Err()
			case <-time.After(co.cfg.RetryBackoff * time.Duration(i)):
			}
		}
		v, err := w.client.SubmitTraced(ctx, sub.spec, span.Context())
		if err == nil {
			co.metrics.forwards[w.name].Inc()
			span.End(map[string]any{
				"worker": w.name, "remote_id": v.ID, "key": sub.key, "attempts": i + 1,
			})
			return w, v, nil
		}
		var ae *client.APIError
		if errors.As(err, &ae) {
			if ae.StatusCode == http.StatusServiceUnavailable {
				// Worker is up but full: backpressure, not failure.
				sawBusy = true
				sub.tracer.EmitSpan("fleet_backpressure",
					obs.SpanContext{TraceID: sub.submit.TraceID, SpanID: obs.NewSpanID()},
					span.Context().SpanID, map[string]any{"worker": w.name})
				continue
			}
			// Any other API error (400 bad spec, ...) is not going to
			// improve on another shard; surface it as-is.
			span.End(map[string]any{"error": ae.Message})
			return nil, nil, err
		}
		// Transport-level failure: the worker is unreachable.
		w.setHealthy(false)
		co.metrics.failovers[w.name].Inc()
		sub.tracer.EmitSpan("fleet_failover",
			obs.SpanContext{TraceID: sub.submit.TraceID, SpanID: obs.NewSpanID()},
			span.Context().SpanID, map[string]any{"worker": w.name, "error": err.Error()})
	}
	co.metrics.backpressure.Inc()
	msg := "no worker reachable"
	if sawBusy {
		msg = "all workers are at capacity"
	}
	span.End(map[string]any{"error": msg})
	return nil, nil, &fleetError{code: http.StatusServiceUnavailable, retryAfter: 1, msg: msg}
}

// view rewrites a worker-local JobView into the coordinator's wire
// form: the coordinator id replaces the worker-local one, and the
// shard is named. Callers hold sub.mu.
func (sub *submission) view(v server.JobView) server.JobView {
	v.ID = sub.id
	if sub.worker != nil {
		v.Worker = sub.worker.name
	}
	return v
}

// record stores the latest view. Callers hold sub.mu.
func (sub *submission) record(v server.JobView) server.JobView {
	v = sub.view(v)
	sub.last = v
	sub.terminal = v.Status.Terminal()
	return v
}

// Handler returns the coordinator's HTTP API — the same surface a
// single synthd serves, so clients (synth -remote, the Go client) are
// oblivious to the topology:
//
//	POST   /v1/jobs             validate, shard by canonical key, forward
//	GET    /v1/jobs             merged list of forwarded jobs
//	GET    /v1/jobs/{id}        poll (re-dispatching off dead workers)
//	GET    /v1/jobs/{id}/events live telemetry stream (SSE), relayed from
//	                            the owning worker and surviving redispatch
//	DELETE /v1/jobs/{id}        cancel on the owning worker
//	GET    /healthz             coordinator liveness + healthy worker count
//	GET    /statsz              fleet snapshot (per-worker health/forwards,
//	                            rolled-up worker stats)
//	GET    /metrics             federated Prometheus exposition: the
//	                            coordinator's own series plus every
//	                            reachable worker's, labeled worker="wN"
//	GET    /tracez              recent trace events as JSONL
//	GET    /debug/pprof/        runtime profiles
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", co.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	mux.HandleFunc("GET /statsz", co.handleStatsz)
	mux.HandleFunc("GET /metrics", co.handleMetrics)
	mux.Handle("GET /tracez", co.obs.Tracer.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	// Validate here and compute the shard key; a spec the workers
	// would reject never leaves the coordinator.
	problem, opts, err := spec.Build()
	if err != nil {
		writeError(w, server.ErrorStatus(err), err.Error())
		return
	}
	key, err := server.CanonicalCacheKey(problem, opts)
	if err != nil {
		writeError(w, server.ErrorStatus(err), err.Error())
		return
	}
	// Expr-based submissions shard by their rewrite-equivalence key
	// instead: rewrite-equivalent references then land on the same
	// worker, whose second-level cache index can serve one from the
	// other. Example-set submissions keep the canonical key (they have
	// no reference expression to saturate).
	if spec.Problem.Expr != "" {
		if ek, err := server.EqSatCacheKey(spec.Problem.Expr, spec.Problem.Inputs, opts); err == nil {
			key = ek
		}
	}

	// The submission record — id, trace fork, submit span — exists
	// before the first forward attempt, so the forward/failover walk is
	// already traced under the submit span. A submitter's Traceparent
	// header parents the whole fleet-side trace under its span; without
	// one the submission roots a fresh trace. On forward failure the
	// record is discarded (its id is burned, never registered).
	parent, _ := obs.ParseTraceParent(r.Header.Get("Traceparent"))
	co.mu.Lock()
	co.nextID++
	id := fmt.Sprintf("c%06d", co.nextID)
	co.mu.Unlock()
	sc := obs.SpanContext{TraceID: parent.TraceID, SpanID: obs.NewSpanID()}
	if sc.TraceID == "" {
		sc.TraceID = obs.NewTraceID()
	}
	sub := &submission{
		id:      id,
		spec:    spec,
		key:     key,
		created: time.Now(),
		submit:  sc,
		tracer:  co.obs.Trace().Fork(SubTraceCap, sc, parent.SpanID, map[string]any{"job": id}),
	}

	worker, v, err := co.forward(r.Context(), sub, sc.SpanID, nil)
	if err != nil {
		writeFleetError(w, err)
		return
	}

	sub.worker = worker
	sub.remoteID = v.ID
	co.mu.Lock()
	co.subs[sub.id] = sub
	co.order = append(co.order, sub)
	co.mu.Unlock()

	sub.mu.Lock()
	out := sub.record(*v)
	sub.mu.Unlock()
	code := http.StatusAccepted
	if out.Status.Terminal() {
		code = http.StatusOK // served from the worker's cache
	}
	writeJSON(w, code, out)
}

// refresh polls the submission's worker for a fresh view,
// re-dispatching to another shard if the worker is gone. It returns
// the freshest view it can get; a stale last-known view with a nil
// error is returned only when the job already reached a terminal
// state (then the worker no longer matters).
func (co *Coordinator) refresh(ctx context.Context, sub *submission) (server.JobView, error) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.terminal {
		return sub.last, nil
	}
	v, err := sub.worker.client.Job(ctx, sub.remoteID)
	if err == nil {
		return sub.record(*v), nil
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.StatusCode != http.StatusNotFound {
		// The worker answered: the job is there, the request was bad
		// some other way. Pass it through.
		return server.JobView{}, err
	}
	// Transport failure (worker dead) or 404 (worker restarted and
	// forgot the job): the search is lost, but it is deterministic —
	// re-dispatch the original spec to the next shard and keep the
	// coordinator id. The redispatch span parents the new forward walk,
	// so the trace shows submit → redispatch → forward → new run.
	dead := sub.worker
	dead.setHealthy(false)
	span := sub.tracer.StartSpan("fleet_redispatch", sub.submit.TraceID, sub.submit.SpanID)
	worker, v, ferr := co.forward(ctx, sub, span.Context().SpanID, dead)
	if ferr != nil {
		span.End(map[string]any{"from": dead.name, "error": ferr.Error()})
		return server.JobView{}, ferr
	}
	sub.worker = worker
	sub.remoteID = v.ID
	co.metrics.redispatches.Inc()
	span.End(map[string]any{
		"from": dead.name, "to": worker.name, "remote_id": v.ID,
	})
	return sub.record(*v), nil
}

func (co *Coordinator) lookup(id string) *submission {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.subs[id]
}

func (co *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	sub := co.lookup(r.PathValue("id"))
	if sub == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	v, err := co.refresh(r.Context(), sub)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleEvents serves the coordinator-side live telemetry stream for a
// submission. The stream is backed by the submission's own tracer, fed
// by a relay goroutine that mirrors the owning worker's event stream —
// so a client streaming through the coordinator survives a mid-run
// worker death: the relay notices the torn stream, re-dispatches, and
// re-attaches to the replacement worker under the same trace id.
func (co *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	sub := co.lookup(r.PathValue("id"))
	if sub == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	co.ensureRelay(sub)
	obs.ServeEventStream(w, r, sub.tracer, "job_finished")
}

// ensureRelay starts the submission's worker-stream relay exactly
// once, lazily: submissions nobody watches cost no extra connection.
func (co *Coordinator) ensureRelay(sub *submission) {
	sub.relay.Do(func() {
		co.wg.Add(1)
		go co.relayLoop(sub)
	})
}

// relayLoop mirrors the owning worker's event stream into the
// submission tracer until the terminal job_finished event arrives (or
// the coordinator shuts down). Worker events pass through Ingest, so
// they keep their timestamps, span identity, and attrs but are
// re-sequenced into the submission's own stream — /events consumers
// resume against coordinator sequence numbers, never worker-local
// ones.
//
// When the stream tears mid-run the loop re-dispatches via refresh and
// reconnects. On the same worker (transient blip) it resumes after the
// last relayed worker sequence number, so nothing duplicates; on a
// replacement worker it replays the re-run from zero — the re-run's
// lifecycle events are genuinely new events on this submission's
// stream, and the dead worker never emitted a terminal event, so
// watchers still see exactly one job_finished.
func (co *Coordinator) relayLoop(sub *submission) {
	defer co.wg.Done()
	ctx := co.relayCtx
	var (
		w          *workerRef
		remoteID   string
		lastRemote uint64
		finished   bool
	)
	// pump mirrors one worker event into the submission stream. Like
	// the coordinator's JobView rewriting, the worker-local job id is
	// replaced by the coordinator id and the shard is named, so
	// watchers see one coherent stream across redispatches.
	pump := func(ev obs.Event) error {
		lastRemote = ev.Seq
		if ev.Attrs == nil {
			ev.Attrs = make(map[string]any, 2)
		}
		ev.Attrs["job"] = sub.id
		ev.Attrs["worker"] = w.name
		sub.tracer.Ingest(ev)
		if ev.Name == "job_finished" {
			finished = true
		}
		return nil
	}
	// owner re-reads the current placement and zeroes the resume point
	// when the job moved (a redispatched run is a fresh sequence
	// space); on the same worker the relay resumes after lastRemote, so
	// a transient blip duplicates nothing.
	owner := func(prevW *workerRef, prevID string) (*workerRef, string) {
		sub.mu.Lock()
		cw, id := sub.worker, sub.remoteID
		sub.mu.Unlock()
		if cw != prevW || id != prevID {
			lastRemote = 0
		}
		return cw, id
	}
	w, remoteID = owner(nil, "")
	for !finished {
		_ = w.client.Events(ctx, remoteID, lastRemote, pump)
		if finished || ctx.Err() != nil {
			return
		}
		// The stream ended without a terminal event: the worker died or
		// the connection tore. refresh re-dispatches if the worker is
		// really gone; on any error, back off and retry.
		v, rerr := co.refresh(ctx, sub)
		if rerr == nil && v.Status.Terminal() {
			// The job finished before its stream could: either the poll
			// raced ahead of the relay, or the worker died along with its
			// event ring. Drain whatever ring the current owner still
			// holds; if no terminal event surfaces, synthesize one so
			// watchers are released instead of left hanging.
			w, remoteID = owner(w, remoteID)
			_ = w.client.Events(ctx, remoteID, lastRemote, pump)
			if !finished && ctx.Err() == nil {
				sub.tracer.Emit("job_finished", map[string]any{
					"id": sub.id, "status": string(v.Status), "synthetic": true,
				})
			}
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(co.cfg.RetryBackoff):
		}
		w, remoteID = owner(w, remoteID)
	}
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	sub := co.lookup(r.PathValue("id"))
	if sub == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.terminal {
		writeJSON(w, http.StatusOK, sub.last)
		return
	}
	v, err := sub.worker.client.Cancel(r.Context(), sub.remoteID)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.StatusCode != http.StatusNotFound {
			writeError(w, ae.StatusCode, ae.Message)
			return
		}
		// The worker is gone, and with it the job: honor the cancel
		// locally instead of resurrecting the search elsewhere.
		sub.worker.setHealthy(false)
		now := time.Now()
		out := sub.record(server.JobView{
			Status: server.StatusCancelled, CreatedAt: sub.created, FinishedAt: &now,
		})
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusOK, sub.record(*v))
}

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	filter := server.Status(r.URL.Query().Get("status"))
	if filter != "" && !filter.Known() {
		known := server.KnownStatuses()
		names := make([]string, len(known))
		for i, st := range known {
			names[i] = string(st)
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"unknown status %q (want one of %s)", filter, strings.Join(names, ", ")))
		return
	}
	co.mu.Lock()
	subs := make([]*submission, len(co.order))
	copy(subs, co.order)
	co.mu.Unlock()
	views := make([]server.JobView, 0, len(subs))
	for _, sub := range subs {
		v, err := co.refresh(r.Context(), sub)
		if err != nil {
			// Unreachable job: report the last thing we knew rather
			// than failing the whole listing.
			sub.mu.Lock()
			v = sub.last
			sub.mu.Unlock()
		}
		if filter != "" && v.Status != filter {
			continue
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, views)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, wr := range co.workers {
		if wr.isHealthy() {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "workers": len(co.workers), "healthy_workers": healthy,
	})
}

// Stats is the coordinator's /statsz snapshot.
type Stats struct {
	Workers      []WorkerStats `json:"workers"`
	Submissions  int           `json:"submissions"`
	Redispatches int64         `json:"redispatches"`
	Backpressure int64         `json:"backpressure"`
	// Fleet rolls worker-side /statsz snapshots up into fleet-wide
	// totals (populated by SnapshotFleet; zero in a plain Snapshot).
	Fleet FleetTotals `json:"fleet"`
	// Trace reports the coordinator's own trace-event loss (the relay
	// forks included).
	Trace server.TraceStats `json:"trace"`
}

// WorkerStats is one shard's view in Stats.
type WorkerStats struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Forwards  int64  `json:"forwards"`
	Failovers int64  `json:"failovers"`
	// Stats is the worker's own /statsz snapshot, scraped live by
	// SnapshotFleet; nil when the worker was unreachable.
	Stats *server.Stats `json:"stats,omitempty"`
}

// FleetTotals is the fleet-wide rollup of worker-side stats.
type FleetTotals struct {
	// WorkersReachable counts workers whose /statsz scrape succeeded;
	// the totals below sum over exactly those.
	WorkersReachable int              `json:"workers_reachable"`
	Submitted        int64            `json:"submitted"`
	Rejected         int64            `json:"rejected"`
	Jobs             server.JobCounts `json:"jobs"`
	CacheHits        int64            `json:"cache_hits"`
	CacheMisses      int64            `json:"cache_misses"`
	CacheEntries     int              `json:"cache_entries"`
	DedupJoins       int64            `json:"dedup_joins"`
	PoolTotal        int              `json:"pool_total"`
	PoolBusy         int64            `json:"pool_busy"`
}

// Snapshot assembles the coordinator-local Stats (no worker round
// trips; Fleet stays zero).
func (co *Coordinator) Snapshot() Stats {
	tr := co.obs.Trace()
	st := Stats{
		Redispatches: int64(co.metrics.redispatches.Value()),
		Backpressure: int64(co.metrics.backpressure.Value()),
		Trace: server.TraceStats{
			RingOverwrites:  tr.RingOverwrites(),
			SinkErrors:      tr.SinkErrors(),
			SubscriberDrops: tr.SubscriberDrops(),
		},
	}
	for _, w := range co.workers {
		st.Workers = append(st.Workers, WorkerStats{
			Name:      w.name,
			URL:       w.base,
			Healthy:   w.isHealthy(),
			Forwards:  int64(co.metrics.forwards[w.name].Value()),
			Failovers: int64(co.metrics.failovers[w.name].Value()),
		})
	}
	co.mu.Lock()
	st.Submissions = len(co.order)
	co.mu.Unlock()
	return st
}

// SnapshotFleet is Snapshot plus a concurrent scrape of every worker's
// /statsz, attached per worker and rolled up into Fleet. Unreachable
// workers are skipped (their last-known health flag already says so).
func (co *Coordinator) SnapshotFleet(ctx context.Context) Stats {
	st := co.Snapshot()
	scraped := make([]*server.Stats, len(co.workers))
	var wg sync.WaitGroup
	for i, w := range co.workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			if ws, err := w.client.Stats(sctx); err == nil {
				scraped[i] = ws
			}
		}()
	}
	wg.Wait()
	for i := range st.Workers {
		ws := scraped[i]
		if ws == nil {
			continue
		}
		st.Workers[i].Stats = ws
		ft := &st.Fleet
		ft.WorkersReachable++
		ft.Submitted += ws.Submitted
		ft.Rejected += ws.Rejected
		ft.Jobs.Queued += ws.Jobs.Queued
		ft.Jobs.Running += ws.Jobs.Running
		ft.Jobs.Completed += ws.Jobs.Completed
		ft.Jobs.Cancelled += ws.Jobs.Cancelled
		ft.Jobs.Failed += ws.Jobs.Failed
		ft.Jobs.Total += ws.Jobs.Total
		ft.CacheHits += ws.Cache.Hits
		ft.CacheMisses += ws.Cache.Misses
		ft.CacheEntries += ws.Cache.Entries
		ft.DedupJoins += ws.Dedup.Joins
		ft.PoolTotal += ws.Workers.Total
		ft.PoolBusy += ws.Workers.Busy
	}
	return st
}

func (co *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.SnapshotFleet(r.Context()))
}

// fleetError is a coordinator-detected failure with an HTTP status
// and an optional Retry-After hint.
type fleetError struct {
	code       int
	retryAfter int
	msg        string
}

func (e *fleetError) Error() string { return e.msg }

func writeFleetError(w http.ResponseWriter, err error) {
	var fe *fleetError
	if errors.As(err, &fe) {
		if fe.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(fe.retryAfter))
		}
		writeError(w, fe.code, fe.msg)
		return
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		if ae.StatusCode == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, ae.StatusCode, ae.Message)
		return
	}
	writeError(w, http.StatusBadGateway, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, server.APIError{Error: msg})
}
