// Package fleet implements synthd's coordinator mode: an HTTP front
// end that speaks the same /v1 job API as a single synthd
// (internal/server) but owns no scheduler of its own. Submissions are
// sharded over a static set of worker synthd instances by rendezvous
// hashing of the canonical cache key (see hrw.go), forwarded through
// the standard Go client, and tracked so polls, cancels, and worker
// failures route to the right place.
//
// Robustness model:
//
//   - Health: a background prober pings every worker's /healthz on an
//     interval; forwarding prefers healthy workers but will try
//     unhealthy ones as a last resort (stale probe state must not
//     reject work a live worker could take).
//   - Failover: a worker that cannot be reached at submit time is
//     marked unhealthy and the next shard in the key's rendezvous
//     order is tried, with backoff between attempts. A worker that
//     dies while running a job is detected at poll time and the job
//     is re-dispatched to the next shard under the same coordinator
//     id. The positional-grant tree executor is schedule-
//     deterministic, so the re-run returns the bit-identical result
//     the dead worker would have produced.
//   - Backpressure: a 503 from a worker (queue full) is not retried
//     against that worker; if every candidate is full or down, the
//     coordinator answers 503 with a Retry-After hint instead of
//     hanging or queueing unboundedly.
//   - Dedup: identical in-flight submissions shard to the same worker
//     by construction, where the server's singleflight joins them to
//     one search; the coordinator adds no second dedup layer.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
	"stochsyn/internal/server/client"
)

// Config sizes the coordinator. Workers is required; the zero value
// of everything else selects defaults.
type Config struct {
	// Workers lists the base URLs of the worker synthd instances,
	// e.g. ["http://10.0.0.1:8731", "http://10.0.0.2:8731"]. The set
	// is static for the coordinator's lifetime; position i is named
	// "w<i>" in ids, metrics, and traces.
	Workers []string
	// HealthInterval is the period of the background health prober
	// (default 1s).
	HealthInterval time.Duration
	// RetryBackoff is the pause before each failover attempt after
	// the first (default 50ms, growing linearly per attempt).
	RetryBackoff time.Duration
	// HTTPClient is the transport used for all worker calls; nil uses
	// http.DefaultClient.
	HTTPClient *http.Client
	// Obs, when non-nil, is the observability sink the coordinator
	// publishes into; nil creates a private one. The Handler serves
	// /metrics, /tracez, and /debug/pprof either way.
	Obs *obs.Obs
}

// Coordinator fronts a fleet of worker synthds. Create with New,
// serve Handler, stop with Close.
type Coordinator struct {
	cfg     Config
	obs     *obs.Obs
	workers []*workerRef

	mu     sync.Mutex
	subs   map[string]*submission
	order  []*submission
	nextID int

	metrics coordMetrics
	stop    chan struct{}
	wg      sync.WaitGroup
}

// workerRef is one worker shard. The health flag is written by the
// prober and by forwarding failures, read by shard selection.
type workerRef struct {
	name   string
	base   string
	client *client.Client

	mu      sync.Mutex
	healthy bool
}

func (w *workerRef) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// setHealthy updates the flag and reports whether it changed.
func (w *workerRef) setHealthy(v bool) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	changed := w.healthy != v
	w.healthy = v
	return changed
}

// submission is the coordinator-side record of one forwarded job. mu
// serializes polls and re-dispatches of the same submission (held
// across the worker round trip, so two pollers cannot double-dispatch
// a dead worker's job).
type submission struct {
	id      string
	spec    server.JobSpec
	key     string
	created time.Time

	mu       sync.Mutex
	worker   *workerRef
	remoteID string
	last     server.JobView // last seen view, already rewritten
	terminal bool
}

type coordMetrics struct {
	forwards     map[string]*obs.Counter // by worker name
	failovers    map[string]*obs.Counter // by worker name (the worker failed away from)
	redispatches *obs.Counter
	backpressure *obs.Counter
}

// New validates cfg, builds the worker set, and starts the health
// prober.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	for _, u := range cfg.Workers {
		if strings.TrimSpace(u) == "" {
			return nil, errors.New("fleet: empty worker URL in worker list")
		}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	co := &Coordinator{
		cfg:  cfg,
		obs:  cfg.Obs,
		subs: make(map[string]*submission),
		stop: make(chan struct{}),
	}
	if co.obs == nil {
		co.obs = obs.New()
	}
	co.metrics = coordMetrics{
		forwards:     make(map[string]*obs.Counter),
		failovers:    make(map[string]*obs.Counter),
		redispatches: co.obs.Reg.Counter("stochsyn_fleet_redispatches_total"),
		backpressure: co.obs.Reg.Counter("stochsyn_fleet_backpressure_total"),
	}
	co.obs.Reg.SetHelp("stochsyn_fleet_redispatches_total", "Jobs re-dispatched to another shard after their worker became unreachable mid-run.")
	co.obs.Reg.SetHelp("stochsyn_fleet_backpressure_total", "Submissions answered 503 because every candidate worker was full or down.")
	for i, base := range cfg.Workers {
		w := &workerRef{
			name:   fmt.Sprintf("w%d", i),
			base:   base,
			client: client.New(base),
		}
		w.client.HTTPClient = cfg.HTTPClient
		w.healthy = true // optimistic until the first probe says otherwise
		co.workers = append(co.workers, w)
		co.metrics.forwards[w.name] = co.obs.Reg.Counter("stochsyn_fleet_forwards_total", "worker", w.name)
		co.metrics.failovers[w.name] = co.obs.Reg.Counter("stochsyn_fleet_failovers_total", "worker", w.name)
		co.obs.Reg.GaugeFunc("stochsyn_fleet_worker_healthy", func() float64 {
			if w.isHealthy() {
				return 1
			}
			return 0
		}, "worker", w.name)
	}
	co.obs.Reg.SetHelp("stochsyn_fleet_forwards_total", "Jobs forwarded to each worker shard.")
	co.obs.Reg.SetHelp("stochsyn_fleet_failovers_total", "Forwarding attempts that failed against each worker and moved to the next shard.")
	co.obs.Reg.SetHelp("stochsyn_fleet_worker_healthy", "1 if the last health probe of the worker succeeded, else 0.")

	co.wg.Add(1)
	go co.healthLoop()
	return co, nil
}

// Close stops the health prober. In-flight jobs keep running on their
// workers; the coordinator holds no queue of its own.
func (co *Coordinator) Close() error {
	close(co.stop)
	co.wg.Wait()
	return nil
}

// healthLoop probes every worker's /healthz each interval.
func (co *Coordinator) healthLoop() {
	defer co.wg.Done()
	t := time.NewTicker(co.cfg.HealthInterval)
	defer t.Stop()
	for {
		co.probeAll()
		select {
		case <-co.stop:
			return
		case <-t.C:
		}
	}
}

func (co *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, w := range co.workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), co.cfg.HealthInterval)
			defer cancel()
			err := w.client.Health(ctx)
			if w.setHealthy(err == nil) {
				co.obs.Trace().Emit("fleet_worker_health", map[string]any{
					"worker": w.name, "healthy": err == nil,
				})
			}
		}()
	}
	wg.Wait()
}

// forward submits spec to the best available shard for key, walking
// the rendezvous order with backoff. exclude, when non-nil, is
// skipped (the worker a re-dispatch is fleeing). It returns the
// worker that accepted the job and its initial view.
func (co *Coordinator) forward(r *http.Request, spec server.JobSpec, key string, exclude *workerRef) (*workerRef, *server.JobView, error) {
	ranked := shardOrder(co.workers, key)
	// Healthy shards first in rank order, then the unhealthy ones as
	// a last resort: a stale probe must not turn capacity away.
	candidates := make([]*workerRef, 0, len(ranked))
	for _, w := range ranked {
		if w != exclude && w.isHealthy() {
			candidates = append(candidates, w)
		}
	}
	for _, w := range ranked {
		if w != exclude && !w.isHealthy() {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		return nil, nil, &fleetError{code: http.StatusServiceUnavailable, retryAfter: 1, msg: "no workers available"}
	}

	sawBusy := false
	for i, w := range candidates {
		if i > 0 {
			select {
			case <-r.Context().Done():
				return nil, nil, r.Context().Err()
			case <-time.After(co.cfg.RetryBackoff * time.Duration(i)):
			}
		}
		v, err := w.client.Submit(r.Context(), spec)
		if err == nil {
			co.metrics.forwards[w.name].Inc()
			return w, v, nil
		}
		var ae *client.APIError
		if errors.As(err, &ae) {
			if ae.StatusCode == http.StatusServiceUnavailable {
				// Worker is up but full: backpressure, not failure.
				sawBusy = true
				co.obs.Trace().Emit("fleet_backpressure", map[string]any{"worker": w.name})
				continue
			}
			// Any other API error (400 bad spec, ...) is not going to
			// improve on another shard; surface it as-is.
			return nil, nil, err
		}
		// Transport-level failure: the worker is unreachable.
		w.setHealthy(false)
		co.metrics.failovers[w.name].Inc()
		co.obs.Trace().Emit("fleet_failover", map[string]any{
			"worker": w.name, "error": err.Error(),
		})
	}
	co.metrics.backpressure.Inc()
	if sawBusy {
		return nil, nil, &fleetError{code: http.StatusServiceUnavailable, retryAfter: 1, msg: "all workers are at capacity"}
	}
	return nil, nil, &fleetError{code: http.StatusServiceUnavailable, retryAfter: 1, msg: "no worker reachable"}
}

// view rewrites a worker-local JobView into the coordinator's wire
// form: the coordinator id replaces the worker-local one, and the
// shard is named. Callers hold sub.mu.
func (sub *submission) view(v server.JobView) server.JobView {
	v.ID = sub.id
	if sub.worker != nil {
		v.Worker = sub.worker.name
	}
	return v
}

// record stores the latest view. Callers hold sub.mu.
func (sub *submission) record(v server.JobView) server.JobView {
	v = sub.view(v)
	sub.last = v
	sub.terminal = v.Status.Terminal()
	return v
}

// Handler returns the coordinator's HTTP API — the same surface a
// single synthd serves, so clients (synth -remote, the Go client) are
// oblivious to the topology:
//
//	POST   /v1/jobs      validate, shard by canonical key, forward
//	GET    /v1/jobs      merged list of forwarded jobs
//	GET    /v1/jobs/{id} poll (re-dispatching off dead workers)
//	DELETE /v1/jobs/{id} cancel on the owning worker
//	GET    /healthz      coordinator liveness + healthy worker count
//	GET    /statsz       fleet snapshot (per-worker health/forwards)
//	GET    /metrics      Prometheus text exposition
//	GET    /tracez       recent trace events as JSONL
//	GET    /debug/pprof/ runtime profiles
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", co.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", co.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", co.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", co.handleCancel)
	mux.HandleFunc("GET /healthz", co.handleHealthz)
	mux.HandleFunc("GET /statsz", co.handleStatsz)
	mux.Handle("GET /metrics", co.obs.Reg.Handler())
	mux.Handle("GET /tracez", co.obs.Tracer.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func (co *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	// Validate here and compute the shard key; a spec the workers
	// would reject never leaves the coordinator.
	problem, opts, err := spec.Build()
	if err != nil {
		writeError(w, server.ErrorStatus(err), err.Error())
		return
	}
	key, err := server.CanonicalCacheKey(problem, opts)
	if err != nil {
		writeError(w, server.ErrorStatus(err), err.Error())
		return
	}
	// Expr-based submissions shard by their rewrite-equivalence key
	// instead: rewrite-equivalent references then land on the same
	// worker, whose second-level cache index can serve one from the
	// other. Example-set submissions keep the canonical key (they have
	// no reference expression to saturate).
	if spec.Problem.Expr != "" {
		if ek, err := server.EqSatCacheKey(spec.Problem.Expr, spec.Problem.Inputs, opts); err == nil {
			key = ek
		}
	}

	worker, v, err := co.forward(r, spec, key, nil)
	if err != nil {
		writeFleetError(w, err)
		return
	}

	co.mu.Lock()
	co.nextID++
	sub := &submission{
		id:       fmt.Sprintf("c%06d", co.nextID),
		spec:     spec,
		key:      key,
		created:  time.Now(),
		worker:   worker,
		remoteID: v.ID,
	}
	co.subs[sub.id] = sub
	co.order = append(co.order, sub)
	co.mu.Unlock()

	sub.mu.Lock()
	out := sub.record(*v)
	sub.mu.Unlock()
	co.obs.Trace().Emit("fleet_forward", map[string]any{
		"id": sub.id, "worker": worker.name, "remote_id": v.ID, "key": key,
	})
	code := http.StatusAccepted
	if out.Status.Terminal() {
		code = http.StatusOK // served from the worker's cache
	}
	writeJSON(w, code, out)
}

// refresh polls the submission's worker for a fresh view,
// re-dispatching to another shard if the worker is gone. It returns
// the freshest view it can get; a stale last-known view with a nil
// error is returned only when the job already reached a terminal
// state (then the worker no longer matters).
func (co *Coordinator) refresh(r *http.Request, sub *submission) (server.JobView, error) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.terminal {
		return sub.last, nil
	}
	v, err := sub.worker.client.Job(r.Context(), sub.remoteID)
	if err == nil {
		return sub.record(*v), nil
	}
	var ae *client.APIError
	if errors.As(err, &ae) && ae.StatusCode != http.StatusNotFound {
		// The worker answered: the job is there, the request was bad
		// some other way. Pass it through.
		return server.JobView{}, err
	}
	// Transport failure (worker dead) or 404 (worker restarted and
	// forgot the job): the search is lost, but it is deterministic —
	// re-dispatch the original spec to the next shard and keep the
	// coordinator id.
	dead := sub.worker
	dead.setHealthy(false)
	worker, v, ferr := co.forward(r, sub.spec, sub.key, dead)
	if ferr != nil {
		return server.JobView{}, ferr
	}
	sub.worker = worker
	sub.remoteID = v.ID
	co.metrics.redispatches.Inc()
	co.obs.Trace().Emit("fleet_redispatch", map[string]any{
		"id": sub.id, "from": dead.name, "to": worker.name, "remote_id": v.ID,
	})
	return sub.record(*v), nil
}

func (co *Coordinator) lookup(id string) *submission {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.subs[id]
}

func (co *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	sub := co.lookup(r.PathValue("id"))
	if sub == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	v, err := co.refresh(r, sub)
	if err != nil {
		writeFleetError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (co *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	sub := co.lookup(r.PathValue("id"))
	if sub == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.terminal {
		writeJSON(w, http.StatusOK, sub.last)
		return
	}
	v, err := sub.worker.client.Cancel(r.Context(), sub.remoteID)
	if err != nil {
		var ae *client.APIError
		if errors.As(err, &ae) && ae.StatusCode != http.StatusNotFound {
			writeError(w, ae.StatusCode, ae.Message)
			return
		}
		// The worker is gone, and with it the job: honor the cancel
		// locally instead of resurrecting the search elsewhere.
		sub.worker.setHealthy(false)
		now := time.Now()
		out := sub.record(server.JobView{
			Status: server.StatusCancelled, CreatedAt: sub.created, FinishedAt: &now,
		})
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusOK, sub.record(*v))
}

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	filter := server.Status(r.URL.Query().Get("status"))
	if filter != "" && !filter.Known() {
		known := server.KnownStatuses()
		names := make([]string, len(known))
		for i, st := range known {
			names[i] = string(st)
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"unknown status %q (want one of %s)", filter, strings.Join(names, ", ")))
		return
	}
	co.mu.Lock()
	subs := make([]*submission, len(co.order))
	copy(subs, co.order)
	co.mu.Unlock()
	views := make([]server.JobView, 0, len(subs))
	for _, sub := range subs {
		v, err := co.refresh(r, sub)
		if err != nil {
			// Unreachable job: report the last thing we knew rather
			// than failing the whole listing.
			sub.mu.Lock()
			v = sub.last
			sub.mu.Unlock()
		}
		if filter != "" && v.Status != filter {
			continue
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, views)
}

func (co *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, wr := range co.workers {
		if wr.isHealthy() {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "workers": len(co.workers), "healthy_workers": healthy,
	})
}

// Stats is the coordinator's /statsz snapshot.
type Stats struct {
	Workers      []WorkerStats `json:"workers"`
	Submissions  int           `json:"submissions"`
	Redispatches int64         `json:"redispatches"`
	Backpressure int64         `json:"backpressure"`
}

// WorkerStats is one shard's view in Stats.
type WorkerStats struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Forwards  int64  `json:"forwards"`
	Failovers int64  `json:"failovers"`
}

// Snapshot assembles the current Stats.
func (co *Coordinator) Snapshot() Stats {
	st := Stats{
		Redispatches: int64(co.metrics.redispatches.Value()),
		Backpressure: int64(co.metrics.backpressure.Value()),
	}
	for _, w := range co.workers {
		st.Workers = append(st.Workers, WorkerStats{
			Name:      w.name,
			URL:       w.base,
			Healthy:   w.isHealthy(),
			Forwards:  int64(co.metrics.forwards[w.name].Value()),
			Failovers: int64(co.metrics.failovers[w.name].Value()),
		})
	}
	co.mu.Lock()
	st.Submissions = len(co.order)
	co.mu.Unlock()
	return st
}

func (co *Coordinator) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, co.Snapshot())
}

// fleetError is a coordinator-detected failure with an HTTP status
// and an optional Retry-After hint.
type fleetError struct {
	code       int
	retryAfter int
	msg        string
}

func (e *fleetError) Error() string { return e.msg }

func writeFleetError(w http.ResponseWriter, err error) {
	var fe *fleetError
	if errors.As(err, &fe) {
		if fe.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(fe.retryAfter))
		}
		writeError(w, fe.code, fe.msg)
		return
	}
	var ae *client.APIError
	if errors.As(err, &ae) {
		if ae.StatusCode == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, ae.StatusCode, ae.Message)
		return
	}
	writeError(w, http.StatusBadGateway, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, server.APIError{Error: msg})
}
