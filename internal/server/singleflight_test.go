package server_test

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
	"stochsyn/internal/server/client"
)

// slowSpec is an unsolvable job with a bounded budget: it runs for
// one-to-two seconds and then completes (solved=false) with exactly
// Budget iterations — long enough for identical submissions to pile
// up behind it, deterministic enough to compare their results.
func slowSpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Problem: server.ProblemSpec{
			Expr:   "subq(xorq(mull(x, x), shrq(x, 9)), orq(x, 0x5bd1e995))",
			Inputs: 1, NumCases: 50, CaseSeed: 3,
		},
		Options: server.OptionsSpec{Budget: 1_500_000, Seed: seed},
	}
}

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, c *client.Client, id string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if v.Status == server.StatusRunning {
			return
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s terminal while waiting for running: %+v", id, v)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not start running", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSingleflightDedup is the ISSUE's singleflight acceptance test:
// N concurrent identical submissions run exactly one search (asserted
// via search_start trace events), every observer receives the same
// result, one follower cancelled mid-flight stays cancelled, and the
// cache/dedup accounting adds up (hits+misses == lookups).
func TestSingleflightDedup(t *testing.T) {
	ctx := context.Background()
	o := obs.New()
	srv, ts, c := newTestServer(t, server.Config{
		Workers: 4, WorkerBudget: 4, CacheSize: 16, Obs: o,
	})
	defer ts.Close()
	defer srv.Close()

	leader, err := c.Submit(ctx, slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, c, leader.ID)

	// Three identical submissions arrive while the leader runs; none
	// may burn a second search.
	var mu sync.Mutex
	var followers []string
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Submit(ctx, slowSpec(5))
			if err != nil {
				t.Errorf("follower submit: %v", err)
				return
			}
			if v.Status.Terminal() {
				t.Errorf("follower terminal at submit (leader still running): %+v", v)
			}
			mu.Lock()
			followers = append(followers, v.ID)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Cancel one follower mid-flight: it must finish cancelled and
	// stay cancelled when the flight resolves.
	if _, err := c.Cancel(ctx, followers[2]); err != nil {
		t.Fatal(err)
	}

	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	lv, err := c.Wait(wctx, leader.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Status != server.StatusCompleted || lv.Result == nil || lv.Deduped {
		t.Fatalf("leader: %+v", lv)
	}
	if lv.Result.Iterations != 1_500_000 || lv.Result.Solved {
		t.Errorf("leader should exhaust its budget unsolved: %+v", lv.Result)
	}

	for _, id := range followers[:2] {
		fv, err := c.Wait(wctx, id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fv.Status != server.StatusCompleted || !fv.Deduped {
			t.Fatalf("follower %s not deduped: %+v", id, fv)
		}
		if fv.Result == nil || fv.Result.Iterations != lv.Result.Iterations ||
			fv.Result.Program != lv.Result.Program || fv.Result.Seed != lv.Result.Seed {
			t.Errorf("follower %s result differs from leader:\n%+v\n%+v", id, fv.Result, lv.Result)
		}
		if fv.StartedAt == nil || fv.FinishedAt == nil {
			t.Errorf("follower %s missing timestamps: %+v", id, fv)
		}
	}
	cv, err := c.Job(ctx, followers[2])
	if err != nil {
		t.Fatal(err)
	}
	if cv.Status != server.StatusCancelled {
		t.Errorf("cancelled follower resurrected by flight resolution: %+v", cv)
	}

	// A fifth identical submission after completion is a plain cache
	// hit, born completed with both timestamps set.
	hit, err := c.Submit(ctx, slowSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if hit.Status != server.StatusCompleted || !hit.Cached || hit.Deduped {
		t.Fatalf("post-flight resubmission not a cache hit: %+v", hit)
	}
	if hit.StartedAt == nil || hit.FinishedAt == nil {
		t.Errorf("cache-born job missing started_at/finished_at: %+v", hit)
	}

	// Exactly one search ran across five identical submissions.
	starts := 0
	for _, ev := range o.Tracer.Events() {
		if ev.Name == "search_start" {
			starts++
		}
	}
	if starts != 1 {
		t.Errorf("search_start events = %d, want exactly 1", starts)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dedup.Joins != 3 {
		t.Errorf("dedup joins = %d, want 3", st.Dedup.Joins)
	}
	if st.Dedup.InFlight != 0 {
		t.Errorf("dedup in_flight = %d, want 0 after resolution", st.Dedup.InFlight)
	}
	// The lookup accounting: 5 submissions, each counted exactly once
	// — 4 misses (leader + 3 followers) and 1 hit. Before the fix the
	// in-worker recheck double-counted and hits+misses drifted past
	// the number of lookups.
	if st.Cache.Hits != 1 || st.Cache.Misses != 4 {
		t.Errorf("cache hits/misses = %d/%d, want 1/4", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.Hits+st.Cache.Misses != st.Submitted {
		t.Errorf("hits+misses = %d, want == submitted lookups %d",
			st.Cache.Hits+st.Cache.Misses, st.Submitted)
	}
	if got := st.Cache.HitRate; got != 0.2 {
		t.Errorf("hit rate = %g, want 0.2", got)
	}
}

// TestSingleflightPromotion covers the leader-dies path: when the
// leader is cancelled (here by its own timeout), its partial result
// must not satisfy the followers — the first live follower is
// promoted, re-dispatched, and runs its own search.
func TestSingleflightPromotion(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 2, WorkerBudget: 2})
	defer ts.Close()
	defer srv.Close()

	spec := hardSpec(42)
	spec.TimeoutMS = 200

	leader, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, c, leader.ID)
	follower, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if follower.Status.Terminal() {
		t.Fatalf("follower terminal at submit: %+v", follower)
	}

	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	lv, err := c.Wait(wctx, leader.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Status != server.StatusCancelled {
		t.Fatalf("leader should time out cancelled: %+v", lv)
	}
	fv, err := c.Wait(wctx, follower.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The promoted follower ran (and timed out) on its own: own
	// counters, not adopted ones.
	if fv.Status != server.StatusCancelled || fv.Deduped {
		t.Fatalf("promoted follower: %+v", fv)
	}
	if fv.Result == nil || fv.Result.Iterations <= 0 {
		t.Errorf("promoted follower should have its own partial counters: %+v", fv.Result)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dedup.Joins != 1 || st.Dedup.Promotions != 1 {
		t.Errorf("dedup = %+v, want 1 join and 1 promotion", st.Dedup)
	}
}

// TestListStatusValidation pins the ?status= filter contract: typos
// are a 400 naming the allowed values, not a silent empty list.
func TestListStatusValidation(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{Workers: 1, WorkerBudget: 1})
	defer ts.Close()
	defer srv.Close()

	v, err := c.Submit(ctx, easySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, 0); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs?status=complete")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET ?status=complete → %d, want 400 (%s)", resp.StatusCode, body[:n])
	}
	for _, want := range []string{"complete", "queued", "running", "completed", "cancelled", "failed"} {
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("400 body should name %q: %s", want, body[:n])
		}
	}

	// The valid spellings still filter.
	done, err := c.Jobs(ctx, server.StatusCompleted)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Errorf("jobs?status=completed = %d entries, want 1", len(done))
	}
}
