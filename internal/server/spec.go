// Package server implements synthd, the synthesis-as-a-service
// subsystem: a JSON-over-HTTP API for submitting synthesis jobs, a
// bounded job queue feeding a worker-pool scheduler, per-job
// cancellation via context plumbing down to the search inner loop, an
// LRU result cache keyed by a canonical (problem, strategy, seed)
// hash, and graceful drain-with-deadline shutdown. cmd/synthd wraps
// it in a daemon; internal/server/client is the matching Go client.
package server

import (
	"errors"
	"fmt"

	"stochsyn"
	"stochsyn/internal/prog"
	"stochsyn/internal/sygusif"
)

// ErrBadSpec tags job-spec level errors (no problem source given, two
// problem sources given, malformed SyGuS text, ...). The HTTP layer
// maps it — along with stochsyn.ErrInvalidOptions and
// stochsyn.ErrInvalidProblem — to 400 Bad Request.
var ErrBadSpec = errors.New("bad job spec")

// JobSpec is the body of POST /v1/jobs: what to synthesize, how, and
// under which budgets.
type JobSpec struct {
	// Problem names the synthesis problem; exactly one source must be
	// set.
	Problem ProblemSpec `json:"problem"`
	// Options configures the search; zero values select the library
	// defaults (adaptive strategy, Hamming cost, Beta 1, full
	// dialect, 10M iterations, seed 1).
	Options OptionsSpec `json:"options"`
	// TimeoutMS, when positive, bounds the job's wall-clock run time;
	// a job past its deadline finishes with status "cancelled".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ProblemSpec describes a synthesis problem. Exactly one of Expr,
// Examples, or Sygus must be set.
type ProblemSpec struct {
	// Expr is a reference expression in the library's program
	// notation (e.g. "andq(x, subq(x, 1))"); the server samples
	// NumCases test cases from it, deterministically in CaseSeed.
	Expr string `json:"expr,omitempty"`
	// Inputs is the input arity (required with Expr).
	Inputs int `json:"inputs,omitempty"`
	// NumCases is the number of sampled cases (default 100, with Expr).
	NumCases int `json:"num_cases,omitempty"`
	// CaseSeed seeds case generation (default 1, with Expr).
	CaseSeed uint64 `json:"case_seed,omitempty"`

	// Examples lists explicit input/output examples.
	Examples []Example `json:"examples,omitempty"`

	// Sygus is the text of a SyGuS-IF problem (the PBE bitvector
	// subset, as accepted by synth -sl).
	Sygus string `json:"sygus,omitempty"`
}

// Example is one explicit input/output example.
type Example struct {
	Inputs []uint64 `json:"inputs"`
	Output uint64   `json:"output"`
}

// OptionsSpec mirrors stochsyn.Options field for field in JSON form.
type OptionsSpec struct {
	Cost     string  `json:"cost,omitempty"`
	Beta     float64 `json:"beta,omitempty"`
	Greedy   bool    `json:"greedy,omitempty"`
	Strategy string  `json:"strategy,omitempty"`
	Budget   int64   `json:"budget,omitempty"`
	Dialect  string  `json:"dialect,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	// Workers requests per-job parallelism for the doubling-tree
	// executor; the server caps it by its worker budget (see
	// Config.WorkerBudget). Results are bit-identical regardless of
	// the cap, so caching stays sound.
	Workers int `json:"workers,omitempty"`
	// EqSat enables rewrite-aware restarts (stochsyn.Options.EqSat).
	// Unlike Workers it deliberately changes the search trajectory, so
	// it participates in every cache key.
	EqSat bool `json:"eqsat,omitempty"`
	// Prune enables abstract-interpretation proposal pruning
	// (stochsyn.Options.Prune). Like EqSat it changes the search
	// trajectory (pruned proposals are never evaluated), so it
	// participates in every cache key.
	Prune bool `json:"prune,omitempty"`
}

// options converts the wire form to stochsyn.Options.
func (s OptionsSpec) options() stochsyn.Options {
	return stochsyn.Options{
		Cost:     stochsyn.CostFunction(s.Cost),
		Beta:     s.Beta,
		Greedy:   s.Greedy,
		Strategy: s.Strategy,
		Budget:   s.Budget,
		Dialect:  stochsyn.Dialect(s.Dialect),
		Seed:     s.Seed,
		Workers:  s.Workers,
		EqSat:    s.EqSat,
		Prune:    s.Prune,
	}
}

// Build resolves the spec into a problem and normalized options,
// validating both. Errors wrap ErrBadSpec, stochsyn.ErrInvalidProblem,
// or stochsyn.ErrInvalidOptions.
func (s JobSpec) Build() (*stochsyn.Problem, stochsyn.Options, error) {
	p, err := s.Problem.build()
	if err != nil {
		return nil, stochsyn.Options{}, err
	}
	opts, err := s.Options.options().Normalized()
	if err != nil {
		return nil, stochsyn.Options{}, err
	}
	if s.TimeoutMS < 0 {
		return nil, stochsyn.Options{}, fmt.Errorf("%w: negative timeout_ms %d", ErrBadSpec, s.TimeoutMS)
	}
	return p, opts, nil
}

func (s ProblemSpec) build() (*stochsyn.Problem, error) {
	sources := 0
	for _, set := range []bool{s.Expr != "", len(s.Examples) > 0, s.Sygus != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("%w: exactly one of problem.expr, problem.examples, problem.sygus is required", ErrBadSpec)
	}
	switch {
	case s.Expr != "":
		if s.Inputs <= 0 {
			return nil, fmt.Errorf("%w: problem.inputs must be positive with problem.expr", ErrBadSpec)
		}
		ref, err := prog.Parse(s.Expr, s.Inputs)
		if err != nil {
			return nil, fmt.Errorf("%w: bad problem.expr: %v", ErrBadSpec, err)
		}
		numCases := s.NumCases
		if numCases == 0 {
			numCases = 100
		}
		seed := s.CaseSeed
		if seed == 0 {
			seed = 1
		}
		return stochsyn.ProblemFromFunc(func(in []uint64) uint64 { return ref.Output(in) }, s.Inputs, numCases, seed)
	case len(s.Examples) > 0:
		if s.NumCases != 0 || s.CaseSeed != 0 {
			return nil, fmt.Errorf("%w: num_cases/case_seed apply only to expr problems", ErrBadSpec)
		}
		inputs := s.Inputs
		if inputs == 0 {
			inputs = len(s.Examples[0].Inputs)
		}
		cases := make([]stochsyn.Case, len(s.Examples))
		for i, e := range s.Examples {
			cases[i] = stochsyn.Case{Inputs: e.Inputs, Output: e.Output}
		}
		return stochsyn.NewProblem(inputs, cases)
	default:
		p, err := sygusif.Parse(s.Sygus)
		if err != nil {
			return nil, fmt.Errorf("%w: bad problem.sygus: %v", ErrBadSpec, err)
		}
		cases := make([]stochsyn.Case, 0, p.Suite.Len())
		for _, c := range p.Suite.Cases {
			cases = append(cases, stochsyn.Case{Inputs: c.Inputs, Output: c.Output})
		}
		return stochsyn.NewProblem(p.Suite.NumInputs, cases)
	}
}
