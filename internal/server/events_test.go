package server_test

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
)

// TestJobEventsLifecycle streams a job's telemetry end to end: the
// feed opens while the job runs, carries the lifecycle and search
// events in sequence order under one trace id, and terminates itself
// with exactly one job_finished.
func TestJobEventsLifecycle(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{
		Workers: 2, WorkerBudget: 4, QueueDepth: 16, CacheSize: 16,
		DrainTimeout: 10 * time.Second,
	})
	defer ts.Close()
	defer srv.Close()

	v, err := c.Submit(ctx, easySpec(41))
	if err != nil {
		t.Fatal(err)
	}
	var (
		events   []obs.Event
		lastSeq  uint64
		finished int
	)
	err = c.Events(ctx, v.ID, 0, func(ev obs.Event) error {
		if ev.Seq <= lastSeq {
			t.Errorf("seq not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		events = append(events, ev)
		if ev.Name == "job_finished" {
			finished++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events stream: %v", err)
	}
	if finished != 1 {
		t.Fatalf("saw %d job_finished events, want exactly 1", finished)
	}
	if events[len(events)-1].Name != "job_finished" {
		t.Fatalf("stream did not end on the terminal event: %v", events[len(events)-1].Name)
	}
	saw := map[string]bool{}
	traceID := events[0].TraceID
	if traceID == "" {
		t.Fatal("events carry no trace id")
	}
	for _, ev := range events {
		saw[ev.Name] = true
		if ev.TraceID != traceID {
			t.Fatalf("trace id changed mid-job: %q then %q", traceID, ev.TraceID)
		}
		if ev.Attrs["job"] != v.ID {
			t.Fatalf("event %q not stamped with the job id: %+v", ev.Name, ev.Attrs)
		}
	}
	for _, want := range []string{"job_submitted", "job_started", "search_start", "search_cost", "search_stop", "job_finished"} {
		if !saw[want] {
			t.Errorf("stream missing a %q event (saw %v)", want, saw)
		}
	}

	// A finished job's stream replays from the ring and still
	// terminates; resuming mid-way replays the rest without duplicates.
	mid := events[len(events)/2].Seq
	var resumed []obs.Event
	if err := c.Events(ctx, v.ID, mid, func(ev obs.Event) error {
		resumed = append(resumed, ev)
		return nil
	}); err != nil {
		t.Fatalf("resume stream: %v", err)
	}
	if len(resumed) == 0 || resumed[0].Seq != mid+1 {
		t.Fatalf("resume after %d started at %v, want %d", mid, resumed, mid+1)
	}
	if got, want := len(resumed), len(events)-len(events)/2-1; got != want {
		t.Fatalf("resume replayed %d events, want %d", got, want)
	}
	if resumed[len(resumed)-1].Name != "job_finished" {
		t.Fatal("resumed stream did not end on the terminal event")
	}

	// Unknown job ids and malformed resume headers are client errors.
	resp, err := http.Get(ts.URL + "/v1/jobs/zzz/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-seq")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID = %d, want 400", resp.StatusCode)
	}
}

// TestJobEventsTraceparent submits with an explicit parent span and
// checks the job's telemetry is parented under it — the propagation
// path the fleet coordinator uses.
func TestJobEventsTraceparent(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{
		Workers: 2, WorkerBudget: 4, QueueDepth: 16, CacheSize: 16,
		DrainTimeout: 10 * time.Second,
	})
	defer ts.Close()
	defer srv.Close()

	parent := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	v, err := c.SubmitTraced(ctx, easySpec(42), parent)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = c.Events(ctx, v.ID, 0, func(ev obs.Event) error {
		n++
		if ev.TraceID != parent.TraceID {
			t.Fatalf("event %q has trace %q, want the propagated %q", ev.Name, ev.TraceID, parent.TraceID)
		}
		if ev.ParentID != parent.SpanID {
			t.Fatalf("event %q parented under %q, want the submit span %q", ev.Name, ev.ParentID, parent.SpanID)
		}
		return nil
	})
	if err != nil || n == 0 {
		t.Fatalf("stream: %v after %d events", err, n)
	}
}

// TestJobEventsDisconnectNoLeak hangs up mid-stream on a job that
// never finishes and checks the handler goroutine and subscription
// are released (run under -race: the assertion is the goroutine
// count returning to baseline, which a leaked handler would hold up).
func TestJobEventsDisconnectNoLeak(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{
		Workers: 2, WorkerBudget: 4, QueueDepth: 16, CacheSize: 16,
		DrainTimeout: 10 * time.Second,
	})
	defer ts.Close()

	v, err := c.Submit(ctx, hardSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, c, v.ID)
	before := runtime.NumGoroutine()

	streamCtx, cancel := context.WithCancel(ctx)
	got := make(chan struct{})
	done := make(chan error, 1)
	var once bool
	go func() {
		done <- c.Events(streamCtx, v.ID, 0, func(obs.Event) error {
			if !once {
				once = true
				close(got)
			}
			return nil
		})
	}()
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no event arrived on the stream")
	}
	cancel() // client hangs up mid-stream
	select {
	case err := <-done:
		if err == nil || ctx.Err() != nil {
			t.Fatalf("stream end: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Events did not return after cancel")
	}

	// The handler notices the dead client on its next event (search
	// cost samples keep flowing) and exits, releasing the subscription.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines: %d after disconnect, want <= %d (leaked handler?)", now, before)
	}

	if _, err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestJobEventsCachedJob checks a born-completed (cache-hit) job still
// delivers a terminating stream: its ring holds the terminal event.
func TestJobEventsCachedJob(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{
		Workers: 2, WorkerBudget: 4, QueueDepth: 16, CacheSize: 16,
		DrainTimeout: 10 * time.Second,
	})
	defer ts.Close()
	defer srv.Close()

	v, err := c.Submit(ctx, easySpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	v2, err := c.Submit(ctx, easySpec(43))
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached {
		t.Fatalf("resubmission not served from cache: %+v", v2)
	}
	var names []string
	if err := c.Events(ctx, v2.ID, 0, func(ev obs.Event) error {
		names = append(names, ev.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "job_finished" {
		t.Fatalf("cached job stream = %v, want exactly [job_finished]", names)
	}
}
