package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stochsyn"
	"stochsyn/internal/obs"
)

// Config sizes the server. The zero value selects sensible defaults.
type Config struct {
	// Workers is the number of scheduler goroutines, i.e. the number
	// of jobs that run concurrently (default GOMAXPROCS).
	Workers int
	// WorkerBudget is the global budget of search goroutines across
	// all running jobs: a job asking for Options.Workers inner
	// workers (doubling-tree parallelism) is capped at
	// WorkerBudget/Workers, so full load never oversubscribes the
	// machine by more than the budget (default GOMAXPROCS).
	WorkerBudget int
	// QueueDepth bounds the number of jobs waiting to run; submits
	// beyond it are rejected with 503 (default 256).
	QueueDepth int
	// CacheSize is the LRU result cache capacity in entries; 0
	// selects the default (1024), negative disables caching.
	CacheSize int
	// DrainTimeout bounds Close's graceful drain (default 30s); see
	// Shutdown for the semantics.
	DrainTimeout time.Duration
	// Obs, when non-nil, is the observability sink (metrics registry +
	// event tracer) the server publishes into; nil creates a private
	// sink. Either way the Handler serves /metrics, /tracez, and
	// /debug/pprof, and every job run is instrumented.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Server is the synthesis service: an HTTP handler (Handler) in front
// of a bounded job queue, a pool of scheduler workers, and an LRU
// result cache. Create one with New, serve Handler, and stop it with
// Shutdown or Close.
type Server struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	cache      *resultCache
	wg         sync.WaitGroup
	started    time.Time

	mu        sync.Mutex
	jobs      map[string]*job
	order     []*job
	flights   map[string]*flight // open singleflight entries by canonical key
	nextID    int
	accepting bool

	busyWorkers atomic.Int64
	busyNanos   atomic.Int64

	// obs is the observability sink (never nil after New); metrics
	// holds the pre-resolved handles the request and job paths use.
	// Counters that /statsz reports (submitted, rejected, cache
	// hits/misses) live in the registry rather than in duplicate
	// atomics; Snapshot reads them back.
	obs     *obs.Obs
	metrics serverMetrics
}

// New creates a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		cache:      newResultCache(cfg.CacheSize),
		started:    time.Now(),
		jobs:       make(map[string]*job),
		flights:    make(map[string]*flight),
		accepting:  true,
		obs:        cfg.Obs,
	}
	if s.obs == nil {
		s.obs = obs.New()
	}
	s.initObs()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Shutdown gracefully stops the server: it rejects new submissions,
// cancels jobs still waiting in the queue, and drains running jobs
// until they finish or ctx expires — at which point their contexts
// are cancelled and the drain completes promptly (cancellation is
// plumbed down to the search inner loops). It returns ctx.Err() when
// the deadline cut running jobs short, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.accepting {
		s.accepting = false
		close(s.queue)
	}
	pending := make([]*job, len(s.order))
	copy(pending, s.order)
	s.mu.Unlock()

	for _, j := range pending {
		j.mu.Lock()
		queued := j.status == StatusQueued
		j.mu.Unlock()
		if queued {
			j.requestCancel()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel() // cut running jobs loose; they observe it promptly
		<-done
		return ctx.Err()
	}
}

// Close is Shutdown bounded by Config.DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// worker pulls jobs off the queue until the queue is closed and
// drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end: claim, re-check the cache,
// synthesize under the job's context, finalize, and (for completed
// runs) populate the cache.
func (s *Server) runJob(j *job) {
	if !j.claim() {
		return // cancelled while queued
	}
	defer j.cancel() // release the context's resources
	s.busyWorkers.Add(1)
	begin := time.Now()
	wait := begin.Sub(j.created)
	s.metrics.queueWait.Observe(wait.Seconds())
	j.tracer.Emit("job_started", map[string]any{
		"id": j.id, "wait_seconds": wait.Seconds(),
	})
	defer func() {
		s.busyNanos.Add(int64(time.Since(begin)))
		s.busyWorkers.Add(-1)
	}()

	// A semantically identical job may have completed while this one
	// waited. This submission's lookup outcome was already counted (a
	// miss) at submit time, so this late hit goes to its own counter —
	// bumping cacheHits here would make hits+misses exceed lookups and
	// skew Stats.HitRate's denominator.
	if res, populated, ok := s.cache.get(j.key); ok {
		s.metrics.workerHits.Inc()
		j.tracer.Emit("cache_worker_hit", map[string]any{
			"key": j.key, "canonical": populated != j.structKey,
		})
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		j.finish(StatusCompleted, &res, "")
		return
	}
	// Claim-time level-2 recheck: a rewrite-equivalent expr job may
	// have completed while this one queued.
	if res, ok := s.lookupEqSat(j.eqKey, j.problem); ok {
		s.metrics.workerHits.Inc()
		s.metrics.eqsatHits.Inc()
		j.tracer.Emit("cache_worker_hit", map[string]any{
			"key": j.key, "eqsat": true,
		})
		s.cache.put(j.key, j.structKey, j.eqKey, res)
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		j.finish(StatusCompleted, &res, "")
		return
	}

	ctx := j.ctx
	if j.spec.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// Attach the observability sink to the run — the shared metrics
	// registry, but the job's own trace fork, so restart fires,
	// plateau transitions, and sampled costs stream per job on
	// /v1/jobs/{id}/events (and still reach the global ring via the
	// fork's forwarding). The sink is deliberately not part of the
	// cache key: it never changes results.
	opts := j.opts
	opts.Obs = &obs.Obs{Reg: s.obs.Reg, Tracer: j.tracer}
	res, err := stochsyn.SynthesizeContext(ctx, j.problem, opts)
	s.metrics.jobRun.Observe(time.Since(begin).Seconds())
	// The terminal job_finished event is emitted by finishWith, the
	// choke point every terminal transition passes through.
	switch {
	case err != nil:
		j.finish(StatusFailed, nil, err.Error())
	case res.Cancelled:
		j.finish(StatusCancelled, &res, "")
	default:
		s.cache.put(j.key, j.structKey, j.eqKey, res)
		s.metrics.analysisFindings.Add(float64(len(res.Lint)))
		j.finish(StatusCompleted, &res, "")
	}
}

// submit registers a new job for the spec, serving it from the cache
// when possible. It returns the job and whether it was accepted;
// rejections (queue full or server draining) are reported as an
// httpError. parent is the submitter's span context (from a
// traceparent header — the fleet coordinator's submit span); the zero
// value starts a fresh trace.
func (s *Server) submit(spec JobSpec, parent obs.SpanContext) (*job, error) {
	problem, opts, err := spec.Build()
	if err != nil {
		return nil, err
	}
	// Cap per-job parallelism by the global worker budget. The cap
	// never changes results (the tree executor is bit-identical for
	// any worker count), so it does not participate in the cache key.
	if maxPerJob := s.cfg.WorkerBudget / s.cfg.Workers; opts.Workers > maxPerJob {
		opts.Workers = maxPerJob
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	structKey, err := CacheKey(problem, opts)
	if err != nil {
		return nil, err
	}
	// The cache is indexed by the semantic (canonical) key, so
	// structurally different but semantically equal submissions —
	// reordered or duplicated examples, differently spelled strategy
	// specs — hit the same entry.
	key, err := CanonicalCacheKey(problem, opts)
	if err != nil {
		return nil, err
	}
	// Expr-based submissions additionally get the second-level
	// rewrite-equivalence key; spec.Build already validated the expr,
	// so key construction cannot fail here.
	var eqKey string
	if spec.Problem.Expr != "" {
		if k, err := EqSatCacheKey(spec.Problem.Expr, spec.Problem.Inputs, opts); err == nil {
			eqKey = k
		}
	}
	s.metrics.submitted.Inc()

	if res, populated, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Inc()
		canonical := populated != structKey
		if canonical {
			s.metrics.canonicalHits.Inc()
			s.obs.Trace().Emit("cache_canonical_hit", map[string]any{"key": key})
		}
		s.obs.Trace().Emit("cache_hit", map[string]any{"key": key, "canonical": canonical})
		j := s.newJob(spec, problem, opts, key, structKey, eqKey, parent)
		s.finishFromCache(j, res)
		s.register(j)
		return j, nil
	}
	// Level-2: a rewrite-equivalent reference expression's cached
	// solution, re-verified against this submission's own example set
	// before it is served (the entry was populated against different
	// examples). A verified hit is promoted into this submission's
	// canonical slot so exact resubmissions hit level 1 directly.
	if res, ok := s.lookupEqSat(eqKey, problem); ok {
		s.metrics.cacheHits.Inc()
		s.metrics.eqsatHits.Inc()
		s.obs.Trace().Emit("cache_eqsat_hit", map[string]any{"key": key, "eqsat_key": eqKey})
		j := s.newJob(spec, problem, opts, key, structKey, eqKey, parent)
		s.finishFromCache(j, res)
		s.cache.put(key, structKey, eqKey, res)
		s.register(j)
		return j, nil
	}
	s.metrics.cacheMisses.Inc()
	s.obs.Trace().Emit("cache_miss", map[string]any{"key": key})

	j := s.newJob(spec, problem, opts, key, structKey, eqKey, parent)
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	j.onTerminal = s.jobTerminal

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		j.cancel()
		return nil, &httpError{code: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	// An identical job may already be in flight: join it as a follower
	// instead of burning a second search (see singleflight.go).
	if s.joinOrLeadLocked(j) {
		s.registerLocked(j)
		leader := s.flights[key].leader
		s.mu.Unlock()
		s.metrics.dedupJoins.Inc()
		j.tracer.Emit("singleflight_join", map[string]any{
			"id": j.id, "leader": leader.id, "key": key,
		})
		return j, nil
	}
	select {
	case s.queue <- j:
		s.registerLocked(j)
		s.mu.Unlock()
		j.tracer.Emit("job_submitted", map[string]any{"id": j.id})
		return j, nil
	default:
		delete(s.flights, key)
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		j.cancel()
		return nil, &httpError{code: http.StatusServiceUnavailable, msg: fmt.Sprintf("job queue full (depth %d)", s.cfg.QueueDepth)}
	}
}

// JobTraceCap is the ring capacity of each job's trace fork: enough
// for a full-budget run's sampled cost trajectory plus its restart
// and plateau events, allocated lazily so cheap jobs stay cheap.
const JobTraceCap = 2048

func (s *Server) newJob(spec JobSpec, problem *stochsyn.Problem, opts stochsyn.Options, key, structKey, eqKey string, parent obs.SpanContext) *job {
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	s.mu.Unlock()
	// The job's events live in its own span, parented under the
	// submitter's span (the fleet coordinator's forward) when a
	// traceparent was propagated; otherwise the job roots a new trace.
	sc := obs.SpanContext{TraceID: parent.TraceID, SpanID: obs.NewSpanID()}
	if sc.TraceID == "" {
		sc.TraceID = obs.NewTraceID()
	}
	return &job{
		id:        id,
		spec:      spec,
		problem:   problem,
		opts:      opts,
		key:       key,
		structKey: structKey,
		eqKey:     eqKey,
		tracer:    s.obs.Trace().Fork(JobTraceCap, sc, parent.SpanID, map[string]any{"job": id}),
		status:    StatusQueued,
		created:   time.Now(),
		done:      make(chan struct{}),
	}
}

// finishFromCache marks a freshly created job as born-completed with a
// cached result. A cache-born job starts and finishes at birth: both
// stamps are set (to the same instant) so client-side duration math
// never sees a FinishedAt without a StartedAt.
func (s *Server) finishFromCache(j *job, res stochsyn.Result) {
	j.ctx, j.cancel = nil, func() {}
	j.cached = true
	j.status = StatusCompleted
	j.result = &res
	now := time.Now()
	j.started = now
	j.finished = now
	close(j.done)
	// Born-completed jobs never pass through finishWith, so the
	// terminal event for their SSE stream is emitted here.
	j.emitFinished()
}

// lookupEqSat performs the second-level cache lookup: the result most
// recently stored under the rewrite-equivalence key, served only if
// its program re-verifies against this submission's example set. An
// empty key, a miss, or a verification failure all report false.
func (s *Server) lookupEqSat(eqKey string, problem *stochsyn.Problem) (stochsyn.Result, bool) {
	res, ok := s.cache.getEq(eqKey)
	if !ok || !res.Solved {
		return stochsyn.Result{}, false
	}
	pr, err := stochsyn.ParseProgram(res.Program, problem.NumInputs())
	if err != nil || !pr.Matches(problem) {
		return stochsyn.Result{}, false
	}
	return res, true
}

func (s *Server) register(j *job) {
	s.mu.Lock()
	s.registerLocked(j)
	s.mu.Unlock()
}

func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j)
}

// lookup returns the job with the given id, or nil.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Stats is the /statsz snapshot. The counters are read back from the
// obs metrics registry (the single source of truth shared with
// /metrics); the original fields keep their JSON names so existing
// consumers are unaffected.
type Stats struct {
	UptimeMS int64 `json:"uptime_ms"`
	// UptimeSeconds mirrors the stochsyn_uptime_seconds gauge.
	UptimeSeconds float64   `json:"uptime_seconds"`
	QueueDepth    int       `json:"queue_depth"`
	QueueCapacity int       `json:"queue_capacity"`
	Submitted     int64     `json:"submitted"`
	Rejected      int64     `json:"rejected"`
	Jobs          JobCounts `json:"jobs"`
	// JobsByState is the Jobs breakdown keyed by state name, matching
	// the stochsyn_jobs{state=...} gauge series.
	JobsByState map[string]int `json:"jobs_by_state"`
	Cache       CacheStats     `json:"cache"`
	Dedup       DedupStats     `json:"dedup"`
	Workers     PoolStats      `json:"workers"`
	Trace       TraceStats     `json:"trace"`
}

// TraceStats reports trace-event loss, totaled across the global
// tracer and every per-job fork (the stochsyn_trace_dropped_total
// series, split by reason).
type TraceStats struct {
	// RingOverwrites counts events overwritten in a ring buffer; a
	// consumer that drained in time would have seen them.
	RingOverwrites uint64 `json:"ring_overwrites"`
	// SinkErrors counts events that failed to reach the -trace sink
	// (write errors or pending-buffer overflow behind a stalled sink).
	SinkErrors uint64 `json:"sink_errors"`
	// SubscriberDrops counts events a live subscriber (an SSE stream)
	// was too slow to take.
	SubscriberDrops uint64 `json:"subscriber_drops"`
}

// JobCounts breaks the registered jobs down by status.
type JobCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Completed int `json:"completed"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`
	Total     int `json:"total"`
}

// CacheStats reports result-cache effectiveness.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// CanonicalHits is the subset of Hits where the cached entry was
	// populated by a structurally different but semantically equal
	// submission (the cache is keyed by CanonicalCacheKey).
	CanonicalHits int64 `json:"canonical_hits"`
	// WorkerHits counts late hits at claim time: a job that missed at
	// submit but found its result cached when a worker picked it up.
	// These are deliberately excluded from Hits so that Hits+Misses
	// equals the number of submit-time lookups and HitRate's
	// denominator stays honest.
	WorkerHits int `json:"worker_hits"`
	// EqSatHits counts hits served through the second-level rewrite-
	// equivalence index: the submitted reference expression was
	// rewrite-equivalent to a cached one (EqSatCacheKey collision) and
	// the cached program re-verified against the submitted examples.
	// Submit-path eqsat hits are a subset of Hits; claim-path ones a
	// subset of WorkerHits.
	EqSatHits int64   `json:"eqsat_hits"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// DedupStats reports singleflight effectiveness: identical
// submissions that joined an in-flight search instead of running
// their own.
type DedupStats struct {
	// Joins is the number of submissions that became followers of an
	// already-in-flight identical job.
	Joins int64 `json:"joins"`
	// Promotions counts flights whose leader ended cancelled/failed
	// and a follower was re-dispatched in its place.
	Promotions int64 `json:"promotions"`
	// InFlight is the number of currently open flights.
	InFlight int `json:"in_flight"`
}

// PoolStats reports scheduler utilization.
type PoolStats struct {
	Total        int   `json:"total"`
	Busy         int64 `json:"busy"`
	WorkerBudget int   `json:"worker_budget"`
	// Utilization is the time-averaged busy fraction of the pool
	// since the server started, in [0, 1].
	Utilization float64 `json:"utilization"`
}

// jobCounts walks the job table and tallies states. Used by Snapshot
// and by the stochsyn_jobs{state=...} scrape-time gauges.
func (s *Server) jobCounts() JobCounts {
	var c JobCounts
	s.mu.Lock()
	for _, j := range s.order {
		j.mu.Lock()
		status := j.status
		j.mu.Unlock()
		switch status {
		case StatusQueued:
			c.Queued++
		case StatusRunning:
			c.Running++
		case StatusCompleted:
			c.Completed++
		case StatusCancelled:
			c.Cancelled++
		case StatusFailed:
			c.Failed++
		}
	}
	c.Total = len(s.order)
	s.mu.Unlock()
	return c
}

// Snapshot assembles the current Stats.
func (s *Server) Snapshot() Stats {
	up := time.Since(s.started)
	st := Stats{
		UptimeMS:      up.Milliseconds(),
		UptimeSeconds: up.Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Submitted:     int64(s.metrics.submitted.Value()),
		Rejected:      int64(s.metrics.rejected.Value()),
	}
	st.Jobs = s.jobCounts()
	st.JobsByState = map[string]int{
		string(StatusQueued):    st.Jobs.Queued,
		string(StatusRunning):   st.Jobs.Running,
		string(StatusCompleted): st.Jobs.Completed,
		string(StatusCancelled): st.Jobs.Cancelled,
		string(StatusFailed):    st.Jobs.Failed,
	}

	st.Cache = CacheStats{
		Hits:          int64(s.metrics.cacheHits.Value()),
		Misses:        int64(s.metrics.cacheMisses.Value()),
		CanonicalHits: int64(s.metrics.canonicalHits.Value()),
		WorkerHits:    int(s.metrics.workerHits.Value()),
		EqSatHits:     int64(s.metrics.eqsatHits.Value()),
		Entries:       s.cache.len(),
		Capacity:      s.cfg.CacheSize,
	}
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(lookups)
	}
	s.mu.Lock()
	inFlight := len(s.flights)
	s.mu.Unlock()
	st.Dedup = DedupStats{
		Joins:      int64(s.metrics.dedupJoins.Value()),
		Promotions: int64(s.metrics.dedupPromotions.Value()),
		InFlight:   inFlight,
	}
	st.Workers = PoolStats{
		Total:        s.cfg.Workers,
		Busy:         s.busyWorkers.Load(),
		WorkerBudget: s.cfg.WorkerBudget,
	}
	if up := time.Since(s.started); up > 0 {
		st.Workers.Utilization = float64(s.busyNanos.Load()) / (float64(up) * float64(s.cfg.Workers))
	}
	st.Trace = TraceStats{
		RingOverwrites:  s.obs.Trace().RingOverwrites(),
		SinkErrors:      s.obs.Trace().SinkErrors(),
		SubscriberDrops: s.obs.Trace().SubscriberDrops(),
	}
	return st
}

// httpError carries a status code chosen by the layer that detected
// the problem.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// statusNames renders the known lifecycle states for error messages.
func statusNames() string {
	names := make([]string, 0, 5)
	for _, st := range KnownStatuses() {
		names = append(names, string(st))
	}
	return strings.Join(names, ", ")
}

// ErrorStatus maps an error to its HTTP status: spec and validation
// errors are the client's fault (400), scheduling rejections carry
// their own code, everything else is a 500. Exported for the fleet
// coordinator, which validates specs with the same machinery before
// forwarding them.
func ErrorStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, ErrBadSpec),
		errors.Is(err, stochsyn.ErrInvalidOptions),
		errors.Is(err, stochsyn.ErrInvalidProblem):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a job (JobSpec body) → JobView
//	GET    /v1/jobs             list jobs (optional ?status= filter) → []JobView
//	GET    /v1/jobs/{id}        poll one job → JobView
//	GET    /v1/jobs/{id}/events live job telemetry as SSE (resumable via Last-Event-ID)
//	DELETE /v1/jobs/{id}        cancel a job → JobView
//	GET    /healthz             liveness probe
//	GET    /statsz              Stats snapshot
//	GET    /metrics             Prometheus text exposition
//	GET    /tracez              recent trace events as JSONL (?n= caps, ?event= filters)
//	GET    /debug/pprof/        runtime profiles (net/http/pprof)
//
// The /v1, /healthz, and /statsz routes are wrapped with per-route
// latency histograms and request counters (stochsyn_http_*); the
// telemetry routes themselves are left unwrapped so scraping does not
// feed back into the scraped series — that includes the SSE route,
// whose open-ended connection lifetime would poison the latency
// histogram.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.instrument("/v1/jobs", s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument("/v1/jobs", s.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleGet))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleCancel))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /statsz", s.instrument("/statsz", s.handleStatsz))
	s.observability(mux)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	// A traceparent-style header links the job's spans under the
	// submitter's trace (the fleet coordinator propagates its submit
	// span this way); absent or malformed, the job roots a new trace.
	parent, _ := obs.ParseTraceParent(r.Header.Get("Traceparent"))
	j, err := s.submit(spec, parent)
	if err != nil {
		writeError(w, ErrorStatus(err), err.Error())
		return
	}
	v := j.snapshot()
	code := http.StatusAccepted
	if v.Status.Terminal() {
		code = http.StatusOK // served from cache
	}
	writeJSON(w, code, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := Status(r.URL.Query().Get("status"))
	if filter != "" && !filter.Known() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"unknown status %q (want one of %s)", filter, statusNames()))
		return
	}
	s.mu.Lock()
	jobs := make([]*job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		v := j.snapshot()
		if filter != "" && v.Status != filter {
			continue
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleEvents streams one job's telemetry as Server-Sent Events:
// a replay of the job's trace ring (resumable — Last-Event-ID skips
// already-seen sequence numbers) followed by the live feed, ending
// with the terminal job_finished event. Slow consumers lose events
// rather than ever stalling the search (the tracer counts drops).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	obs.ServeEventStream(w, r, j.tracer, "job_finished")
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// APIError is the JSON body of every non-2xx response.
type APIError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, APIError{Error: msg})
}
