package server

import (
	"container/list"
	"sync"

	"stochsyn"
)

// resultCache is a fixed-capacity LRU map from canonical job keys
// (see CanonicalCacheKey) to completed synthesis results. It is safe
// for concurrent use. Only completed, non-cancelled results are cached
// (the scheduler enforces that); a cancelled run's partial counters
// would not be reproducible and must never satisfy a later identical
// submission.
//
// Each entry remembers the structural key (CacheKey) of the
// submission that populated it, so the scheduler can distinguish an
// exact replay from a canonical hit — a structurally different but
// semantically equal submission — and count the two separately.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key       string // canonical key (the map key)
	structKey string // structural key of the populating submission
	res       stochsyn.Result
}

// newResultCache returns a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, every store is
// dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached result for key along with the structural key
// of the submission that populated the entry, marking it most recently
// used.
func (c *resultCache) get(key string) (stochsyn.Result, string, bool) {
	if c.cap <= 0 {
		return stochsyn.Result{}, "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return stochsyn.Result{}, "", false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.res, e.structKey, true
}

// put stores a result under key, recording the populating submission's
// structural key and evicting the least recently used entry when full.
func (c *resultCache) put(key, structKey string, res stochsyn.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.res = res
		e.structKey = structKey
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, structKey: structKey, res: res})
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
