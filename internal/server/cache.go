package server

import (
	"container/list"
	"sync"

	"stochsyn"
)

// resultCache is a fixed-capacity LRU map from canonical job keys
// (see CanonicalCacheKey) to completed synthesis results. It is safe
// for concurrent use. Only completed, non-cancelled results are cached
// (the scheduler enforces that); a cancelled run's partial counters
// would not be reproducible and must never satisfy a later identical
// submission.
//
// Each entry remembers the structural key (CacheKey) of the
// submission that populated it, so the scheduler can distinguish an
// exact replay from a canonical hit — a structurally different but
// semantically equal submission — and count the two separately.
//
// Solved expr-based entries additionally carry their rewrite-
// equivalence key (EqSatCacheKey) and are indexed by it, giving the
// scheduler a second-level lookup: a submission whose reference
// expression is rewrite-equivalent to a cached one finds the entry
// even though the two canonical keys differ. The eqsat index never
// extends an entry's lifetime — it is a view over the same LRU
// entries, maintained on put and eviction.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	// eqsat maps EqSatCacheKey → the entry that most recently carried
	// it (newer entries win; at most one index slot per key).
	eqsat map[string]*list.Element
}

type cacheEntry struct {
	key       string // canonical key (the map key)
	structKey string // structural key of the populating submission
	eqKey     string // rewrite-equivalence key ("" when not indexed)
	res       stochsyn.Result
}

// newResultCache returns a cache holding up to capacity results;
// capacity <= 0 disables caching (every lookup misses, every store is
// dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		eqsat:   make(map[string]*list.Element),
	}
}

// get returns the cached result for key along with the structural key
// of the submission that populated the entry, marking it most recently
// used.
func (c *resultCache) get(key string) (stochsyn.Result, string, bool) {
	if c.cap <= 0 {
		return stochsyn.Result{}, "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return stochsyn.Result{}, "", false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.res, e.structKey, true
}

// getEq is the second-level lookup: it returns the result most
// recently stored under the rewrite-equivalence key eqKey, marking the
// owning entry most recently used. Callers must re-verify the program
// against their own problem before serving it — the entry was
// populated against a different example set.
func (c *resultCache) getEq(eqKey string) (stochsyn.Result, bool) {
	if c.cap <= 0 || eqKey == "" {
		return stochsyn.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.eqsat[eqKey]
	if !ok {
		return stochsyn.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result under key, recording the populating submission's
// structural key, indexing solved results by their rewrite-equivalence
// key (pass "" to skip), and evicting the least recently used entry
// when full.
func (c *resultCache) put(key, structKey, eqKey string, res stochsyn.Result) {
	if c.cap <= 0 {
		return
	}
	if !res.Solved {
		// Unsolved results are legitimate level-1 entries (an exhausted
		// budget reproduces exactly for the identical submission) but
		// must never satisfy a rewrite-equivalent submission with a
		// different example set.
		eqKey = ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.eqKey != "" && e.eqKey != eqKey && c.eqsat[e.eqKey] == el {
			delete(c.eqsat, e.eqKey)
		}
		e.res = res
		e.structKey = structKey
		e.eqKey = eqKey
		if eqKey != "" {
			c.eqsat[eqKey] = el
		}
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, structKey: structKey, eqKey: eqKey, res: res})
	c.entries[key] = el
	if eqKey != "" {
		c.eqsat[eqKey] = el
	}
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		if e.eqKey != "" && c.eqsat[e.eqKey] == oldest {
			delete(c.eqsat, e.eqKey)
		}
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
