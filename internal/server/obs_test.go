package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"stochsyn/internal/server"
)

// expositionLine matches one sample line of the Prometheus text
// format: a metric name, an optional label set, and a value. Label
// values may themselves contain braces (route patterns like
// /v1/jobs/{id}), so the label-set match is greedy rather than
// brace-excluding.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+$`)

// TestMetricsExposition drives the server with real jobs and then
// checks the /metrics endpoint end to end: the body parses as valid
// exposition text with no duplicate series, and the series the ISSUE
// names as the acceptance bar are all present with sensible values.
func TestMetricsExposition(t *testing.T) {
	ctx := context.Background()
	srv, ts, c := newTestServer(t, server.Config{
		Workers: 2, WorkerBudget: 4, QueueDepth: 16, CacheSize: 16,
		DrainTimeout: 10 * time.Second,
	})
	defer ts.Close()
	defer srv.Close()

	// Run a few jobs (one repeated for a cache hit) so the search,
	// restart, job, and cache series all have observations.
	for _, seed := range []uint64{1, 2, 1} {
		v, err := c.Submit(ctx, easySpec(seed))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if _, err := c.Wait(ctx, v.ID, 5*time.Millisecond); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}

	body := mustGET(t, ts.URL+"/metrics")
	series := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatal("empty exposition line")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		key := line[:sp]
		if _, dup := series[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		var v float64
		if err := json.Unmarshal([]byte(line[sp+1:]), &v); err == nil {
			series[key] = v
		} else {
			series[key] = 0 // NaN/Inf renderings; presence is what matters
		}
	}

	for _, want := range []string{
		"stochsyn_search_iterations_total",
		`stochsyn_moves_proposed_total{move="instruction"}`,
		`stochsyn_moves_accepted_total{move="instruction"}`,
		`stochsyn_restarts_total{strategy="adaptive"}`,
		`stochsyn_job_run_seconds_count`,
		`stochsyn_job_run_seconds_bucket{le="+Inf"}`,
		"stochsyn_job_queue_wait_seconds_count",
		"stochsyn_jobs_submitted_total",
		"stochsyn_cache_hits_total",
		"stochsyn_cache_misses_total",
		"stochsyn_queue_depth",
		"stochsyn_uptime_seconds",
		`stochsyn_jobs{state="completed"}`,
		`stochsyn_http_requests_total{code="200",route="/v1/jobs/{id}"}`,
		`stochsyn_http_request_seconds_count{route="/v1/jobs"}`,
		"go_goroutines",
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("exposition missing series %q", want)
		}
	}
	if v := series["stochsyn_search_iterations_total"]; v <= 0 {
		t.Errorf("search iterations total = %g, want > 0", v)
	}
	if v := series[`stochsyn_jobs{state="completed"}`]; v != 3 {
		t.Errorf("completed jobs gauge = %g, want 3", v)
	}
	if v := series["stochsyn_cache_hits_total"]; v < 1 {
		t.Errorf("cache hits = %g, want >= 1", v)
	}

	// /tracez returns well-formed JSONL covering the job lifecycle.
	trace := mustGET(t, ts.URL+"/tracez")
	sawJob := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(trace))
	n := 0
	for sc.Scan() {
		var ev struct {
			Seq   uint64         `json:"seq"`
			Event string         `json:"event"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("tracez line %d is not JSON: %v (%q)", n, err, sc.Text())
		}
		sawJob[ev.Event] = true
		n++
	}
	if n == 0 {
		t.Fatal("tracez is empty after running jobs")
	}
	for _, want := range []string{"job_submitted", "job_started", "job_finished", "search_start", "search_stop", "cache_hit"} {
		if !sawJob[want] {
			t.Errorf("tracez missing a %q event (saw %v)", want, sawJob)
		}
	}

	// /statsz carries the new fields alongside the original shape.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %g", st.UptimeSeconds)
	}
	if st.JobsByState["completed"] != 3 || st.Jobs.Completed != 3 {
		t.Errorf("jobs_by_state = %v, Jobs = %+v; want 3 completed", st.JobsByState, st.Jobs)
	}
	if st.Cache.Hits < 1 || st.Submitted != 3 {
		t.Errorf("registry-backed stats wrong: %+v", st)
	}

	// pprof is wired.
	if body := mustGET(t, ts.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline endpoint returned nothing")
	}
}

func mustGET(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
