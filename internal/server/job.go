package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stochsyn"
	"stochsyn/internal/obs"
)

// Status is a job's lifecycle state. Transitions:
//
//	queued → running → {completed, cancelled, failed}
//	queued → cancelled                    (cancelled before a worker picked it up)
//	         completed                    (cache hit: born completed)
type Status string

// Job lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed" // ran to a verdict: solved or budget exhausted
	StatusCancelled Status = "cancelled" // DELETE /v1/jobs/{id}, job timeout, or server drain
	StatusFailed    Status = "failed"    // internal error while running
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusCompleted || s == StatusCancelled || s == StatusFailed
}

// KnownStatuses lists every lifecycle state, in transition order. The
// HTTP layer uses it to validate ?status= filters.
func KnownStatuses() []Status {
	return []Status{StatusQueued, StatusRunning, StatusCompleted, StatusCancelled, StatusFailed}
}

// Known reports whether s is one of the lifecycle states.
func (s Status) Known() bool {
	switch s {
	case StatusQueued, StatusRunning, StatusCompleted, StatusCancelled, StatusFailed:
		return true
	}
	return false
}

// job is the server-side state of one submission. The mutable fields
// are guarded by mu; the identity fields (id, spec, problem, opts,
// key, ctx/cancel) are set once at submission and read-only after.
type job struct {
	id      string
	spec    JobSpec
	problem *stochsyn.Problem
	opts    stochsyn.Options // normalized, with Workers already capped
	// key is the semantic cache key (CanonicalCacheKey): the cache is
	// indexed by it, so structurally different but semantically equal
	// submissions share entries. structKey is the structural key
	// (CacheKey) of this exact submission; comparing it against the
	// structKey recorded in a cache entry tells an exact replay apart
	// from a canonical (semantics-only) hit.
	key       string
	structKey string
	// eqKey is the second-level rewrite-equivalence key
	// (EqSatCacheKey), set only for expr-based submissions; "" disables
	// the level-2 lookup and indexing for this job.
	eqKey  string
	ctx    context.Context
	cancel context.CancelFunc
	// tracer is the job-scoped trace fork (see obs.Tracer.Fork): every
	// lifecycle and search event for this job flows through it — into
	// the job's own ring (the GET /v1/jobs/{id}/events SSE stream) and
	// onward to the server's global tracer. Its span context carries
	// the job's trace id, propagated from the submitter's traceparent
	// header when one was sent.
	tracer *obs.Tracer
	// onTerminal, when set, is invoked exactly once, after the job
	// enters a terminal state (outside j.mu). The server uses it to
	// resolve the job's singleflight flight; it must not call back
	// into finish/adopt on this job.
	onTerminal func(*job)

	mu       sync.Mutex
	status   Status
	cached   bool
	deduped  bool
	errMsg   string
	result   *stochsyn.Result
	created  time.Time
	started  time.Time
	finished time.Time
	done     chan struct{} // closed on entering a terminal state
}

// claim moves a queued job to running; it returns false if the job is
// no longer claimable (cancelled while queued).
func (j *job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state; it is a no-op if the job
// already is terminal. It reports whether this call performed the
// transition, and fires onTerminal (outside the lock) when it did.
func (j *job) finish(status Status, res *stochsyn.Result, errMsg string) bool {
	return j.finishWith(status, res, errMsg, false)
}

// adopt is finish for a singleflight follower taking over its
// leader's outcome: same transition, but the job is marked deduped so
// the wire view shows the result was shared, not searched for.
func (j *job) adopt(status Status, res *stochsyn.Result, errMsg string) bool {
	return j.finishWith(status, res, errMsg, true)
}

func (j *job) finishWith(status Status, res *stochsyn.Result, errMsg string, deduped bool) bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.status = status
	j.result = res
	j.errMsg = errMsg
	j.deduped = deduped
	j.finished = time.Now()
	// A follower adopting a result never ran; stamp started so its
	// view, like a cache-born job's, has a zero-length run rather
	// than a FinishedAt with no StartedAt.
	if deduped && j.started.IsZero() {
		j.started = j.finished
	}
	close(j.done)
	j.mu.Unlock()
	// The terminal trace event is emitted here — the single choke
	// point every terminal transition passes through — so SSE streams
	// always see exactly one job_finished, whatever path ended the job
	// (run, cache hit at claim time, cancel while queued, adoption).
	j.emitFinished()
	if j.onTerminal != nil {
		j.onTerminal(j)
	}
	return true
}

// emitFinished emits the job's terminal job_finished event on its
// tracer. On the failed path the result is absent; reporting
// solved/iterations there would fabricate telemetry for a run that
// never produced either.
func (j *job) emitFinished() {
	if j.tracer == nil {
		return
	}
	j.mu.Lock()
	attrs := map[string]any{"id": j.id, "status": string(j.status)}
	if j.cached {
		attrs["cached"] = true
	}
	if j.deduped {
		attrs["deduped"] = true
	}
	if j.errMsg != "" {
		attrs["error"] = j.errMsg
	} else if j.result != nil {
		attrs["solved"] = j.result.Solved
		attrs["iterations"] = j.result.Iterations
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		attrs["seconds"] = j.finished.Sub(j.started).Seconds()
	}
	j.mu.Unlock()
	j.tracer.Emit("job_finished", attrs)
}

// requestCancel cancels the job's context and, if the job has not
// started yet, finalizes it immediately (the scheduler will skip it).
func (j *job) requestCancel() {
	j.cancel()
	j.mu.Lock()
	queued := j.status == StatusQueued
	j.mu.Unlock()
	if queued {
		j.finish(StatusCancelled, nil, "")
	}
}

// snapshot returns the job's wire view.
func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:        j.id,
		Status:    j.status,
		Cached:    j.cached,
		Deduped:   j.deduped,
		Error:     j.errMsg,
		CreatedAt: j.created,
	}
	if !j.started.IsZero() {
		v.StartedAt = &j.started
	}
	if !j.finished.IsZero() {
		v.FinishedAt = &j.finished
	}
	if j.result != nil {
		v.Result = &ResultView{
			Solved:     j.result.Solved,
			Program:    j.result.Program,
			Iterations: j.result.Iterations,
			Searches:   j.result.Searches,
			Seed:       j.result.Seed,
			DurationMS: float64(j.result.Duration) / float64(time.Millisecond),
			Lint:       j.result.Lint,
			Facts:      j.result.Facts,
			Canonical:  j.result.Canonical,
		}
		if j.result.CanonicalHash != 0 {
			v.Result.CanonicalHash = fmt.Sprintf("%016x", j.result.CanonicalHash)
		}
	}
	return v
}

// JobView is the wire form of a job, returned by every /v1/jobs
// endpoint.
type JobView struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	// Cached marks a job whose result was served from the result
	// cache without running a search.
	Cached bool `json:"cached,omitempty"`
	// Deduped marks a singleflight follower: an identical submission
	// was already in flight, so this job adopted its outcome instead
	// of running a second search.
	Deduped bool `json:"deduped,omitempty"`
	// Worker names the worker shard a fleet coordinator dispatched
	// the job to (see internal/server/fleet). Single-node servers
	// leave it empty.
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
	// Result is set once the job completes (and for cancelled jobs
	// that got far enough to have partial counters).
	Result     *ResultView `json:"result,omitempty"`
	CreatedAt  time.Time   `json:"created_at"`
	StartedAt  *time.Time  `json:"started_at,omitempty"`
	FinishedAt *time.Time  `json:"finished_at,omitempty"`
}

// ResultView is the wire form of a stochsyn.Result. Together with the
// submitted spec it makes the run reproducible: re-running the same
// problem and options with Seed yields bit-identical counters and
// program.
type ResultView struct {
	Solved     bool    `json:"solved"`
	Program    string  `json:"program,omitempty"`
	Iterations int64   `json:"iterations"`
	Searches   int     `json:"searches"`
	Seed       uint64  `json:"seed"`
	DurationMS float64 `json:"duration_ms"`
	// Lint holds static-analysis findings for the solved program:
	// foldable constants, algebraic identities, dead inputs (see
	// internal/prog/analysis).
	Lint []string `json:"lint,omitempty"`
	// Facts holds the abstract-interpretation facts (known bits and
	// value intervals, per node) derived for the solved program from
	// the job's example inputs (see internal/prog/analysis/absint).
	Facts []string `json:"facts,omitempty"`
	// Canonical is the canonicalized equivalent of Program (folded,
	// simplified, deduplicated, renumbered).
	Canonical string `json:"canonical,omitempty"`
	// CanonicalHash is the 64-bit semantic hash of the canonical form,
	// as 16 hex digits (a string, so JSON consumers never round it
	// through a float64).
	CanonicalHash string `json:"canonical_hash,omitempty"`
}
