package server

import (
	"fmt"
)

// Singleflight dedup of identical in-flight jobs.
//
// Without it, two concurrent submissions of the same spec both miss
// the result cache (the first has not completed yet) and both burn a
// full search — wasted work on one node, and a thundering herd on a
// fleet where a popular spec lands on one shard. With it, the first
// cache-missing submission of a canonical key becomes the *leader* of
// a flight and is enqueued normally; every identical submission that
// arrives while the flight is open becomes a *follower*: it is
// registered (it has its own id, its own wire view, its own DELETE)
// but never enters the queue. When the leader reaches a terminal
// state the flight resolves:
//
//   - leader completed → every still-live follower adopts the
//     leader's result, marked "deduped" on the wire;
//   - leader cancelled or failed → the leader's outcome must NOT
//     satisfy the followers (a cancelled run's partial counters are
//     not reproducible, and the followers were not the ones
//     cancelled), so the first still-live follower is promoted to
//     leader of a fresh flight and re-dispatched; the rest ride
//     along.
//
// Flights are keyed by the canonical cache key — the same key the
// result cache uses — so a flight join has exactly the semantics of a
// cache hit that has not materialized yet. The flight table is
// guarded by Server.mu; resolution runs on the goroutine that
// finished the leader (a scheduler worker, or the HTTP handler for a
// queued-job cancellation) and takes the lock only to swap the table.

// flight is one open singleflight entry: a leader owning the search
// and the followers awaiting its outcome.
type flight struct {
	leader    *job
	followers []*job
}

// joinOrLeadLocked either attaches j to an open flight for its key
// (returning true: j is a follower and must not be enqueued) or opens
// a new flight with j as leader (returning false: enqueue j).
// Requires s.mu.
func (s *Server) joinOrLeadLocked(j *job) (follower bool) {
	if fl, ok := s.flights[j.key]; ok {
		fl.followers = append(fl.followers, j)
		return true
	}
	s.flights[j.key] = &flight{leader: j}
	return false
}

// jobTerminal is every job's onTerminal hook: when a flight leader
// reaches a terminal state, resolve its flight. Follower and
// cache-born jobs have no flight entry and return immediately.
func (s *Server) jobTerminal(j *job) {
	s.mu.Lock()
	fl, ok := s.flights[j.key]
	if !ok || fl.leader != j {
		s.mu.Unlock()
		return
	}
	delete(s.flights, j.key)
	followers := fl.followers
	s.mu.Unlock()
	if len(followers) == 0 {
		return
	}

	j.mu.Lock()
	status, res, errMsg := j.status, j.result, j.errMsg
	j.mu.Unlock()

	if status == StatusCompleted {
		adopted := 0
		for _, f := range followers {
			if f.adopt(status, res, errMsg) {
				adopted++
			}
		}
		s.obs.Trace().Emit("singleflight_resolve", map[string]any{
			"leader": j.id, "followers": adopted,
		})
		return
	}
	s.promote(j, status, followers)
}

// promote re-dispatches a flight whose leader ended without a usable
// result: the first follower that is still live becomes the new
// leader and is enqueued, with the remaining followers carried into
// the new flight. If the server is draining the followers finish
// cancelled (matching what Shutdown does to queued jobs); if the
// queue is full they fail with an explanatory error rather than
// silently hanging.
func (s *Server) promote(leader *job, status Status, followers []*job) {
	var next *job
	var rest []*job
	for i, f := range followers {
		f.mu.Lock()
		terminal := f.status.Terminal()
		f.mu.Unlock()
		if !terminal {
			next, rest = f, followers[i+1:]
			break
		}
	}
	if next == nil {
		return
	}

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		next.finish(StatusCancelled, nil, "")
		for _, f := range rest {
			f.finish(StatusCancelled, nil, "")
		}
		return
	}
	select {
	case s.queue <- next:
		s.flights[next.key] = &flight{leader: next, followers: rest}
		s.mu.Unlock()
		s.metrics.dedupPromotions.Inc()
		s.obs.Trace().Emit("singleflight_promote", map[string]any{
			"id": next.id, "was_leader": leader.id, "leader_status": string(status),
		})
	default:
		s.mu.Unlock()
		msg := fmt.Sprintf("singleflight leader %s finished %s and the queue is full (depth %d)", leader.id, status, s.cfg.QueueDepth)
		next.finish(StatusFailed, nil, msg)
		for _, f := range rest {
			f.finish(StatusFailed, nil, msg)
		}
	}
}
