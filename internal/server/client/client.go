// Package client is the Go client for the synthd HTTP API
// (internal/server). It is used by cmd/synth's -remote mode and by
// the end-to-end tests; it speaks exactly the wire types the server
// defines, so the two cannot drift apart.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"stochsyn/internal/server"
)

// Client talks to one synthd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8731".
	BaseURL string
	// HTTPClient is the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %d: %s", e.StatusCode, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (which
// may be nil to discard the body).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ae server.APIError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Message: ae.Error}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job and returns its initial view (status "queued",
// or "completed" when served from the result cache).
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (*server.JobView, error) {
	var v server.JobView
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (*server.JobView, error) {
	var v server.JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Jobs lists jobs, optionally filtered by status ("" = all).
func (c *Client) Jobs(ctx context.Context, status server.Status) ([]server.JobView, error) {
	path := "/v1/jobs"
	if status != "" {
		path += "?status=" + url.QueryEscape(string(status))
	}
	var vs []server.JobView
	if err := c.do(ctx, http.MethodGet, path, nil, &vs); err != nil {
		return nil, err
	}
	return vs, nil
}

// Cancel requests cancellation of a job. The returned view may still
// show "running": cancellation is asynchronous; poll (or Wait) for
// the terminal state.
func (c *Client) Cancel(ctx context.Context, id string) (*server.JobView, error) {
	var v server.JobView
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Wait polls the job every poll interval (default 50ms) until it
// reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*server.JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Stats fetches the /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*server.Stats, error) {
	var st server.Stats
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
