// Package client is the Go client for the synthd HTTP API
// (internal/server). It is used by cmd/synth's -remote mode and by
// the end-to-end tests; it speaks exactly the wire types the server
// defines, so the two cannot drift apart.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"stochsyn/internal/obs"
	"stochsyn/internal/server"
)

// Client talks to one synthd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8731".
	BaseURL string
	// HTTPClient is the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("synthd: %d: %s", e.StatusCode, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (which
// may be nil to discard the body).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiErr(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues a job and returns its initial view (status "queued",
// or "completed" when served from the result cache).
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (*server.JobView, error) {
	return c.SubmitTraced(ctx, spec, obs.SpanContext{})
}

// SubmitTraced is Submit carrying the caller's span context as a
// traceparent-style header, so the job's telemetry is parented under
// the caller's trace (the fleet coordinator submits this way). The
// zero SpanContext degrades to a plain Submit.
func (c *Client) SubmitTraced(ctx context.Context, spec server.JobSpec, parent obs.SpanContext) (*server.JobView, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if hdr := obs.FormatTraceParent(parent); hdr != "" {
		req.Header.Set("Traceparent", hdr)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiErr(resp.StatusCode, body)
	}
	var v server.JobView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// StopStreaming is the sentinel an Events callback returns to end the
// stream early; Events then returns nil.
var StopStreaming = errors.New("client: stop streaming")

// Events consumes the job's live telemetry feed (GET
// /v1/jobs/{id}/events, Server-Sent Events), invoking fn for every
// event. lastSeq > 0 resumes after that sequence number (the server
// replays the rest of its ring, never duplicating ids at or below
// it). Events returns nil when the server ends the stream (it does so
// after the terminal job_finished event), when fn returns
// StopStreaming, or with the first error otherwise: fn's, the
// transport's, or ctx's.
func (c *Client) Events(ctx context.Context, id string, lastSeq uint64, fn func(obs.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastSeq, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		return apiErr(resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id:/event: lines and keep-alive blanks
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("client: bad event payload: %w", err)
		}
		if err := fn(ev); err != nil {
			if errors.Is(err, StopStreaming) {
				return nil
			}
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// Prefer the cancellation cause over the transport's rendering
		// of the torn connection.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}

// apiErr decodes a non-2xx response body into an APIError.
func apiErr(code int, body []byte) error {
	var ae server.APIError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return &APIError{StatusCode: code, Message: ae.Error}
	}
	return &APIError{StatusCode: code, Message: strings.TrimSpace(string(body))}
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (*server.JobView, error) {
	var v server.JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Jobs lists jobs, optionally filtered by status ("" = all).
func (c *Client) Jobs(ctx context.Context, status server.Status) ([]server.JobView, error) {
	path := "/v1/jobs"
	if status != "" {
		path += "?status=" + url.QueryEscape(string(status))
	}
	var vs []server.JobView
	if err := c.do(ctx, http.MethodGet, path, nil, &vs); err != nil {
		return nil, err
	}
	return vs, nil
}

// Cancel requests cancellation of a job. The returned view may still
// show "running": cancellation is asynchronous; poll (or Wait) for
// the terminal state.
func (c *Client) Cancel(ctx context.Context, id string) (*server.JobView, error) {
	var v server.JobView
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Wait polls the job every poll interval (default 50ms) until it
// reaches a terminal state or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*server.JobView, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Status.Terminal() {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-t.C:
		}
	}
}

// Stats fetches the /statsz snapshot.
func (c *Client) Stats(ctx context.Context) (*server.Stats, error) {
	var st server.Stats
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
