package superopt

import (
	"fmt"

	"stochsyn/internal/asm"
	"stochsyn/internal/prog"
)

// Translate converts a scraped fragment into an equivalent dataflow
// program in the synthesis language by symbolic forward execution:
// each register maps to the node currently holding its value, and each
// instruction appends the nodes computing its effect (including the
// zero-extension and merge semantics of sub-64-bit writes).
//
// The translation is the pipeline's ground truth: it proves the
// fragment expressible in the dialect (a constructive version of the
// prefix-synthesizability argument of Section 6.1) and provides a
// known solution for optimization-mode searches. Fragments whose
// translation would exceed the program size limit return an error.
func Translate(fr *asm.Fragment) (*prog.Program, error) {
	if len(fr.Inputs) > prog.MaxInputs {
		return nil, fmt.Errorf("superopt: fragment has %d inputs, limit %d", len(fr.Inputs), prog.MaxInputs)
	}
	tr := &translator{
		p:      prog.NewZero(len(fr.Inputs)),
		regs:   map[asm.Reg]int32{},
		consts: map[uint64]int32{},
		clean:  map[int32]bool{},
	}
	// The zero seed node is node NumInputs; reuse it as the constant-0
	// pool entry (it is garbage collected if unused).
	tr.consts[0] = int32(len(fr.Inputs))
	for i, r := range fr.Inputs {
		tr.regs[r] = int32(i)
	}
	for _, in := range fr.Insts {
		if err := tr.step(in); err != nil {
			return nil, err
		}
	}
	out, ok := tr.regs[fr.Output]
	if !ok {
		return nil, fmt.Errorf("superopt: output register %s never defined", fr.Output)
	}
	tr.p.Root = tr.truncate(out, fr.OutputWidth)
	tr.p.Invalidate()
	tr.p.GC()
	if body := tr.p.BodyLen(); body > prog.MaxBody {
		return nil, fmt.Errorf("superopt: translation needs %d nodes, limit %d", body, prog.MaxBody)
	}
	if err := tr.p.Validate(); err != nil {
		return nil, fmt.Errorf("superopt: internal translation error: %v", err)
	}
	return tr.p, nil
}

type translator struct {
	p      *prog.Program
	regs   map[asm.Reg]int32
	consts map[uint64]int32
	// clean records nodes known to have zero upper 32 bits, so
	// 32-bit truncations of them can be skipped.
	clean map[int32]bool
}

// node appends an instruction node, recording whether its result is
// known to fit in 32 bits.
func (t *translator) node(op prog.Op, args ...int32) int32 {
	nd := prog.Node{Op: op}
	copy(nd.Args[:], args)
	t.p.Nodes = append(t.p.Nodes, nd)
	idx := int32(len(t.p.Nodes) - 1)
	switch op {
	case prog.OpZext8, prog.OpZext16, prog.OpZext32,
		prog.OpAdd32, prog.OpSub32, prog.OpMul32, prog.OpAnd32,
		prog.OpOr32, prog.OpXor32, prog.OpShl32, prog.OpShr32,
		prog.OpSar32, prog.OpNot32, prog.OpNeg32,
		prog.OpPopcnt, prog.OpClz, prog.OpCtz,
		prog.OpEq, prog.OpUlt, prog.OpSlt:
		t.clean[idx] = true
	}
	return idx
}

// constant returns a node for the value, pooling duplicates.
func (t *translator) constant(v uint64) int32 {
	if idx, ok := t.consts[v]; ok {
		return idx
	}
	t.p.Nodes = append(t.p.Nodes, prog.Node{Op: prog.OpConst, Val: v})
	idx := int32(len(t.p.Nodes) - 1)
	t.consts[v] = idx
	if v < 1<<32 {
		t.clean[idx] = true
	}
	return idx
}

// reg reads the register's current 64-bit node (0 if never written:
// registers outside the input set start at zero in Execute, matching
// an all-zero register file).
func (t *translator) reg(r asm.Reg) int32 {
	if idx, ok := t.regs[r]; ok {
		return idx
	}
	return t.constant(0)
}

// truncate returns a node holding the low `width` bits of n,
// zero-extended.
func (t *translator) truncate(n int32, width int) int32 {
	switch width {
	case 64:
		return n
	case 32:
		if t.clean[n] {
			return n
		}
		return t.node(prog.OpZext32, n)
	case 16:
		return t.node(prog.OpZext16, n)
	case 8:
		return t.node(prog.OpZext8, n)
	}
	return n
}

// write stores value into the register at the given width with x86
// semantics (64-bit replaces, 32-bit zero-extends, 8/16-bit merges).
func (t *translator) write(r asm.Reg, width int, value int32) {
	switch width {
	case 64:
		t.regs[r] = value
	case 32:
		t.regs[r] = t.truncate(value, 32)
	case 16, 8:
		mask := uint64(0xFFFF)
		if width == 8 {
			mask = 0xFF
		}
		old := t.reg(r)
		keep := t.node(prog.OpAnd, old, t.constant(^mask))
		low := t.node(prog.OpAnd, value, t.constant(mask))
		t.regs[r] = t.node(prog.OpOr, keep, low)
	}
}

// operand resolves a source operand to a node holding its (width-
// truncated, zero-extended) value.
func (t *translator) operand(o *asm.Operand) (int32, error) {
	switch o.Kind {
	case asm.OpReg:
		w := o.Width
		if w == 0 {
			w = 64
		}
		return t.truncate(t.reg(o.Reg), w), nil
	case asm.OpImm:
		return t.constant(uint64(o.Imm)), nil
	}
	return 0, fmt.Errorf("superopt: cannot translate %s operand", o)
}

// operandRaw resolves a source operand without truncation, for use
// with the self-truncating 32-bit opcodes.
func (t *translator) operandRaw(o *asm.Operand) (int32, error) {
	switch o.Kind {
	case asm.OpReg:
		return t.reg(o.Reg), nil
	case asm.OpImm:
		return t.constant(uint64(o.Imm)), nil
	}
	return 0, fmt.Errorf("superopt: cannot translate %s operand", o)
}

// alu32Ops maps base ALU mnemonics to the zero-extending 32-bit
// opcodes.
var alu32Ops = map[string]prog.Op{
	"add": prog.OpAdd32, "sub": prog.OpSub32, "imul": prog.OpMul32,
	"and": prog.OpAnd32, "or": prog.OpOr32, "xor": prog.OpXor32,
}

// alu2Ops maps base ALU mnemonics to 64-bit opcodes; 32-bit variants
// use alu32Ops or explicit truncation, matching the evaluator's
// semantics.
var alu2Ops = map[string]prog.Op{
	"add": prog.OpAdd, "sub": prog.OpSub, "imul": prog.OpMul,
	"and": prog.OpAnd, "or": prog.OpOr, "xor": prog.OpXor,
	"shl": prog.OpShl, "sal": prog.OpShl, "shr": prog.OpShr, "sar": prog.OpSar,
	"rol": prog.OpRol, "ror": prog.OpRor,
}

// step translates one instruction.
func (t *translator) step(in *asm.Inst) error {
	base := trimWidthSuffix(in.Mnemonic)
	ops := in.Operands
	dst := func() *asm.Operand { return &ops[len(ops)-1] }
	width := func() int {
		d := dst()
		if d.Kind == asm.OpReg && d.Width != 0 {
			return d.Width
		}
		return 64
	}

	switch base {
	case "mov", "movabs":
		src, err := t.operand(&ops[0])
		if err != nil {
			return err
		}
		t.write(dst().Reg, width(), src)
		return nil

	case "add", "sub", "imul", "and", "or", "xor":
		w := width()
		if w == 32 {
			// The 32-bit opcodes truncate their inputs and
			// zero-extend their result, so raw values suffice.
			a := t.reg(dst().Reg)
			b, err := t.operandRaw(&ops[0])
			if err != nil {
				return err
			}
			t.regs[dst().Reg] = t.node(alu32Ops[base], a, b)
			return nil
		}
		a := t.truncate(t.reg(dst().Reg), w)
		b, err := t.operand(&ops[0])
		if err != nil {
			return err
		}
		res := t.node(alu2Ops[base], a, b)
		t.write(dst().Reg, w, res)
		return nil

	case "shl", "sal", "shr", "sar", "rol", "ror":
		w := width()
		a := t.truncate(t.reg(dst().Reg), w)
		b, err := t.operand(&ops[0])
		if err != nil {
			return err
		}
		op := alu2Ops[base]
		if w == 32 {
			// The 32-bit shift opcodes truncate internally.
			a = t.reg(dst().Reg)
			switch base {
			case "shl", "sal":
				op = prog.OpShl32
			case "shr":
				op = prog.OpShr32
			case "sar":
				op = prog.OpSar32
			case "rol", "ror":
				a = t.truncate(a, 32)
				// 32-bit rotates: express via 64-bit ops on the
				// truncated value: rol32(a, k) = zext32(a<<k | a>>(32-k)).
				k := t.node(prog.OpAnd, b, t.constant(31))
				k2 := t.node(prog.OpSub, t.constant(32), k)
				var hi, lo int32
				if base == "rol" {
					hi = t.node(prog.OpShl, a, k)
					lo = t.node(prog.OpShr, a, k2)
				} else {
					hi = t.node(prog.OpShr, a, k)
					lo = t.node(prog.OpShl, a, k2)
				}
				t.write(dst().Reg, 32, t.node(prog.OpOr, hi, lo))
				return nil
			}
		}
		res := t.node(op, a, b)
		t.write(dst().Reg, w, res)
		return nil

	case "not", "neg", "inc", "dec", "bswap":
		w := width()
		a := t.truncate(t.reg(dst().Reg), w)
		var res int32
		switch base {
		case "not":
			if w == 32 {
				res = t.node(prog.OpNot32, t.reg(dst().Reg))
			} else {
				res = t.node(prog.OpNot, a)
			}
		case "neg":
			if w == 32 {
				res = t.node(prog.OpNeg32, t.reg(dst().Reg))
			} else {
				res = t.node(prog.OpNeg, a)
			}
		case "inc":
			if w == 32 {
				res = t.node(prog.OpAdd32, t.reg(dst().Reg), t.constant(1))
			} else {
				res = t.node(prog.OpAdd, a, t.constant(1))
			}
		case "dec":
			if w == 32 {
				res = t.node(prog.OpSub32, t.reg(dst().Reg), t.constant(1))
			} else {
				res = t.node(prog.OpSub, a, t.constant(1))
			}
		case "bswap":
			if w == 32 {
				// bswap32(a) = bswap64(a) >> 32 for a zero-extended a.
				full := t.node(prog.OpBswap, a)
				res = t.node(prog.OpShr, full, t.constant(32))
			} else {
				res = t.node(prog.OpBswap, a)
			}
		}
		t.write(dst().Reg, w, res)
		return nil

	case "lea":
		src := &ops[0]
		if src.Kind != asm.OpMem {
			return fmt.Errorf("superopt: lea without memory operand")
		}
		acc := t.constant(uint64(src.Mem.Disp))
		if src.Mem.Base != asm.NoReg && src.Mem.Base != asm.RIP {
			acc = t.node(prog.OpAdd, acc, t.reg(src.Mem.Base))
		}
		if src.Mem.Index != asm.NoReg {
			idx := t.reg(src.Mem.Index)
			if src.Mem.Scale > 1 {
				idx = t.node(prog.OpMul, idx, t.constant(uint64(src.Mem.Scale)))
			}
			acc = t.node(prog.OpAdd, acc, idx)
		}
		t.write(dst().Reg, width(), acc)
		return nil

	case "movzbl", "movzbq":
		return t.extend(in, prog.OpZext8)
	case "movzwl", "movzwq":
		return t.extend(in, prog.OpZext16)
	case "movsbl", "movsbq":
		return t.extendMaybe32(in, prog.OpSext8)
	case "movswl", "movswq":
		return t.extendMaybe32(in, prog.OpSext16)
	case "movslq":
		return t.extend(in, prog.OpSext32)

	case "bts", "btr", "btc":
		// Bit test-and-modify: dst op= (1 << (src & 63)).
		a := t.reg(dst().Reg)
		b, err := t.operandRaw(&ops[0])
		if err != nil {
			return err
		}
		bit := t.node(prog.OpShl, t.constant(1), b)
		var res int32
		switch base {
		case "bts":
			res = t.node(prog.OpOr, a, bit)
		case "btr":
			res = t.node(prog.OpAnd, a, t.node(prog.OpNot, bit))
		case "btc":
			res = t.node(prog.OpXor, a, bit)
		}
		t.regs[dst().Reg] = res
		return nil

	case "popcnt":
		return t.unary(in, prog.OpPopcnt)
	case "lzcnt":
		return t.scan(in, prog.OpClz)
	case "tzcnt":
		return t.scan(in, prog.OpCtz)

	case "cmp", "test", "nop":
		return nil // flags only
	}
	return fmt.Errorf("superopt: cannot translate %q", in.String())
}

// extend translates a zero/sign extension instruction.
func (t *translator) extend(in *asm.Inst, op prog.Op) error {
	src, err := t.operand(&in.Operands[0])
	if err != nil {
		return err
	}
	dst := &in.Operands[1]
	w := dst.Width
	if w == 0 {
		w = 64
	}
	t.write(dst.Reg, w, t.node(op, src))
	return nil
}

// extendMaybe32 handles sign extensions into 32-bit destinations,
// where the result is additionally zero-extended by the write.
func (t *translator) extendMaybe32(in *asm.Inst, op prog.Op) error {
	return t.extend(in, op)
}

// unary translates one-source/one-dest ops like popcnt.
func (t *translator) unary(in *asm.Inst, op prog.Op) error {
	w := 64
	if d := &in.Operands[1]; d.Kind == asm.OpReg && d.Width != 0 {
		w = d.Width
	}
	src, err := t.operand(&in.Operands[0])
	if err != nil {
		return err
	}
	t.write(in.Operands[1].Reg, w, t.node(op, src))
	return nil
}

// scan translates lzcnt/tzcnt, whose 32-bit forms count within 32
// bits.
func (t *translator) scan(in *asm.Inst, op prog.Op) error {
	d := &in.Operands[1]
	w := 64
	if d.Kind == asm.OpReg && d.Width != 0 {
		w = d.Width
	}
	src, err := t.operand(&in.Operands[0])
	if err != nil {
		return err
	}
	var res int32
	if w == 32 {
		if op == prog.OpClz {
			// lzcnt32(a) = lzcnt64(zext32 a) - 32.
			full := t.node(prog.OpClz, src)
			res = t.node(prog.OpSub, full, t.constant(32))
		} else {
			// tzcnt32(a) = min(tzcnt64(a), 32); realize via
			// tzcnt64(a | 2^32), which caps the count at 32.
			forced := t.node(prog.OpOr, src, t.constant(1<<32))
			res = t.node(prog.OpCtz, forced)
		}
	} else {
		res = t.node(op, src)
	}
	t.write(d.Reg, w, res)
	return nil
}

// trimWidthSuffix strips a trailing q/l width suffix from mnemonics
// that have one (mirroring the evaluator's table).
func trimWidthSuffix(m string) string {
	if n := len(m); n > 1 && (m[n-1] == 'q' || m[n-1] == 'l') {
		base := m[:n-1]
		switch base {
		case "mov", "add", "sub", "imul", "and", "or", "xor",
			"shl", "sal", "shr", "sar", "rol", "ror",
			"not", "neg", "inc", "dec", "bswap", "lea",
			"popcnt", "lzcnt", "tzcnt", "cmp", "test",
			"bts", "btr", "btc":
			return base
		}
	}
	return m
}
