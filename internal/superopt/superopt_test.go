package superopt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stochsyn/internal/asm"
	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
)

func smallOptions(seed uint64) Options {
	o := DefaultOptions(seed)
	o.CorpusFunctions = 80
	o.SampleSize = 15
	o.TestCases = 40
	return o
}

func TestBuildPipeline(t *testing.T) {
	probs, stats, err := Build(smallOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Functions != 80 {
		t.Errorf("functions = %d", stats.Functions)
	}
	if stats.Fragments == 0 || stats.Signatures == 0 {
		t.Errorf("empty pipeline stages: %v", stats)
	}
	if stats.Signatures > stats.AfterLimits {
		t.Errorf("more signatures than fragments: %v", stats)
	}
	if len(probs) == 0 || len(probs) > 15 {
		t.Errorf("sampled %d problems", len(probs))
	}
	for _, p := range probs {
		if err := p.Suite.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Suite.NumInputs != len(p.Frag.Inputs) {
			t.Errorf("%s: suite arity %d != fragment arity %d",
				p.Name, p.Suite.NumInputs, len(p.Frag.Inputs))
		}
		if p.Signature != p.Frag.Signature() {
			t.Errorf("%s: stored signature mismatch", p.Name)
		}
		// The suite must reflect the fragment's semantics.
		for i, c := range p.Suite.Cases {
			got, err := p.Frag.Execute(c.Inputs)
			if err != nil {
				t.Fatalf("%s case %d: %v", p.Name, i, err)
			}
			if got != c.Output {
				t.Fatalf("%s case %d: suite says %#x, fragment computes %#x",
					p.Name, i, c.Output, got)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, _, err := Build(smallOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(smallOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("problem counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Signature != b[i].Signature {
			t.Errorf("problem %d differs across identical builds", i)
		}
	}
}

func TestSignaturesDistinct(t *testing.T) {
	probs, _, err := Build(smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, p := range probs {
		if prev, dup := seen[p.Signature]; dup {
			t.Errorf("problems %s and %s share signature %q", prev, p.Name, p.Signature)
		}
		seen[p.Signature] = p.Name
	}
}

func TestLimitsApplied(t *testing.T) {
	o := smallOptions(3)
	o.MaxInsts = 4
	o.MaxInputs = 2
	probs, _, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if len(p.Frag.Insts) > 4 {
			t.Errorf("%s has %d instructions", p.Name, len(p.Frag.Insts))
		}
		if len(p.Frag.Inputs) > 2 {
			t.Errorf("%s has %d inputs", p.Name, len(p.Frag.Inputs))
		}
	}
}

func TestProblemsAreSynthesizable(t *testing.T) {
	// A sanity check that the benchmark is usable: at least one small
	// problem synthesizes within a modest budget.
	probs, _, err := Build(smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probs {
		if len(p.Frag.Insts) > 3 {
			continue
		}
		r := search.New(p.Suite, search.Options{
			Set: prog.FullSet, Cost: cost.Hamming, Beta: 2, Seed: 5,
		})
		if _, done := r.Step(2_000_000); done {
			return // success
		}
	}
	t.Skip("no small problem synthesized within budget (stochastic)")
}

func TestPrefixFilter(t *testing.T) {
	o := smallOptions(5)
	o.SampleSize = 5
	o.PrefixFilter = true
	o.PrefixBudget = 30_000
	probs, stats, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	// The filter ran; most synthetic fragments are expressible, so
	// some problems must survive.
	if len(probs) == 0 {
		t.Errorf("prefix filter dropped everything: %v", stats)
	}
}

func TestBuildFromFuncs(t *testing.T) {
	src := `
f:
	movq %rdi, %rax
	addq %rsi, %rax
	xorq %rdx, %rax
	ret
`
	funcs, err := asm.ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions(1)
	o.TestCases = 30
	probs, stats, err := BuildFromFuncs(funcs, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Functions != 1 || len(probs) != 1 {
		t.Fatalf("stats %v, %d problems", stats, len(probs))
	}
	p := probs[0]
	// (rdi + rsi) ^ rdx with inputs in encoding order rdx, rsi, rdi.
	for _, c := range p.Suite.Cases {
		got, _ := p.Frag.Execute(c.Inputs)
		if got != c.Output {
			t.Fatal("suite does not match fragment")
		}
	}
}

func TestPrefixFragment(t *testing.T) {
	src := `
g:
	addq %rsi, %rdi
	shlq $3, %rdi
	movq %rdi, %rax
	ret
`
	funcs, _ := asm.ParseText(src)
	frag, err := asm.SliceBlock(funcs[0], funcs[0].Blocks[0], asm.RAX)
	if err != nil {
		t.Fatal(err)
	}
	pf := prefixFragment(frag, 1)
	if pf == nil {
		t.Fatal("prefix of length 1 is nil")
	}
	if pf.Output != asm.RDI {
		t.Errorf("prefix output = %v, want rdi", pf.Output)
	}
	out, err := pf.Execute(make([]uint64, len(pf.Inputs)))
	if err != nil {
		t.Fatal(err)
	}
	_ = out
}

func TestReferencesMatchSuites(t *testing.T) {
	probs, _, err := Build(smallOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	withRef := 0
	for _, p := range probs {
		if p.Reference == nil {
			t.Errorf("%s has no reference (RequireReference is on)", p.Name)
			continue
		}
		withRef++
		for i, c := range p.Suite.Cases {
			if got := p.Reference.Output(c.Inputs); got != c.Output {
				t.Fatalf("%s case %d: reference computes %#x, suite says %#x",
					p.Name, i, got, c.Output)
			}
		}
	}
	if withRef == 0 {
		t.Fatal("no problems with references")
	}
}

func TestProbRoundTrip(t *testing.T) {
	probs, _, err := Build(smallOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) == 0 {
		t.Fatal("no problems")
	}
	p := probs[0]
	src := WriteProb(p)
	name, suite, err := ParseProb(src)
	if err != nil {
		t.Fatalf("ParseProb: %v\n%s", err, src)
	}
	if name != p.Name {
		t.Errorf("name %q, want %q", name, p.Name)
	}
	if suite.NumInputs != p.Suite.NumInputs || suite.Len() != p.Suite.Len() {
		t.Fatalf("shape mismatch")
	}
	for i := range suite.Cases {
		if suite.Cases[i].Output != p.Suite.Cases[i].Output {
			t.Fatalf("case %d output differs", i)
		}
		for j := range suite.Cases[i].Inputs {
			if suite.Cases[i].Inputs[j] != p.Suite.Cases[i].Inputs[j] {
				t.Fatalf("case %d input %d differs", i, j)
			}
		}
	}
}

func TestParseProbErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"case 0x1 -> 0x2\n", "case before inputs"},
		{"inputs 1\ncase 0x1 0x2 -> 0x3\n", "want 1"},
		{"inputs 1\ncase 0x1 0x2\n", "missing '->'"},
		{"inputs x\n", "bad inputs count"},
		{"garbage\n", "unrecognized"},
		{"inputs 1\ncase zz -> 0x0\n", "invalid syntax"},
		{"inputs 1\n", "empty suite"},
	}
	for _, tc := range cases {
		_, _, err := ParseProb(tc.src)
		if err == nil {
			t.Errorf("ParseProb accepted %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseProb(%q) = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	probs, _, err := Build(smallOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	n := 3
	if len(probs) < n {
		n = len(probs)
	}
	for _, p := range probs[:n] {
		if err := os.WriteFile(filepath.Join(dir, p.Name+".prob"), []byte(WriteProb(p)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A non-prob file must be ignored.
	os.WriteFile(filepath.Join(dir, "index.txt"), []byte("x"), 0o644)
	names, suites, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != n || len(suites) != n {
		t.Fatalf("loaded %d problems, want %d", len(names), n)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("names not sorted")
		}
	}
}
