package superopt

import "testing"

// FuzzParseProb exercises the .prob reader with arbitrary input.
func FuzzParseProb(f *testing.F) {
	f.Add("inputs 1\ncase 0x1 -> 0x2\n")
	f.Add("# problem p\n# comment\ninputs 2\ncase 0x1 0x2 -> 0x3\n")
	f.Add("inputs x")
	f.Add("case before inputs")
	f.Fuzz(func(t *testing.T, src string) {
		_, suite, err := ParseProb(src)
		if err != nil {
			return
		}
		if err := suite.Validate(); err != nil {
			t.Fatalf("accepted invalid suite: %v", err)
		}
	})
}
