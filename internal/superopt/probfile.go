package superopt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"stochsyn/internal/testcase"
)

// This file implements the .prob problem format written by
// cmd/genbench: a commented header describing the source fragment,
// an "inputs N" line, and one "case in... -> out" line per test case.
// Loading ignores the comments (the fragment listing is documentation;
// the cases are the specification).

// WriteProb renders a problem in .prob format.
func WriteProb(p *Problem) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# problem %s\n# signature %s\n", p.Name, p.Signature)
	for _, line := range strings.Split(strings.TrimRight(p.Frag.String(), "\n"), "\n") {
		fmt.Fprintf(&sb, "# %s\n", strings.TrimPrefix(line, "\t"))
	}
	if p.Reference != nil {
		fmt.Fprintf(&sb, "# reference %s\n", p.Reference)
	}
	fmt.Fprintf(&sb, "inputs %d\n", p.Suite.NumInputs)
	for _, c := range p.Suite.Cases {
		sb.WriteString("case")
		for _, in := range c.Inputs {
			fmt.Fprintf(&sb, " %#x", in)
		}
		fmt.Fprintf(&sb, " -> %#x\n", c.Output)
	}
	return sb.String()
}

// ParseProb parses the .prob format into a name and suite. The
// fragment itself is not reconstructed (the suite is the
// specification).
func ParseProb(src string) (name string, suite *testcase.Suite, err error) {
	suite = &testcase.Suite{NumInputs: -1}
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "":
		case strings.HasPrefix(line, "# problem "):
			name = strings.TrimSpace(strings.TrimPrefix(line, "# problem "))
		case strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "inputs "):
			n, convErr := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "inputs ")))
			if convErr != nil || n < 0 {
				return "", nil, fmt.Errorf("superopt: line %d: bad inputs count", lineno+1)
			}
			suite.NumInputs = n
		case strings.HasPrefix(line, "case "):
			if suite.NumInputs < 0 {
				return "", nil, fmt.Errorf("superopt: line %d: case before inputs", lineno+1)
			}
			parts := strings.Split(strings.TrimPrefix(line, "case "), "->")
			if len(parts) != 2 {
				return "", nil, fmt.Errorf("superopt: line %d: missing '->'", lineno+1)
			}
			inFields := strings.Fields(parts[0])
			if len(inFields) != suite.NumInputs {
				return "", nil, fmt.Errorf("superopt: line %d: %d inputs, want %d",
					lineno+1, len(inFields), suite.NumInputs)
			}
			c := testcase.Case{}
			for _, f := range inFields {
				v, convErr := parseHexWord(f)
				if convErr != nil {
					return "", nil, fmt.Errorf("superopt: line %d: %v", lineno+1, convErr)
				}
				c.Inputs = append(c.Inputs, v)
			}
			out, convErr := parseHexWord(strings.TrimSpace(parts[1]))
			if convErr != nil {
				return "", nil, fmt.Errorf("superopt: line %d: %v", lineno+1, convErr)
			}
			c.Output = out
			suite.Cases = append(suite.Cases, c)
		default:
			return "", nil, fmt.Errorf("superopt: line %d: unrecognized line %q", lineno+1, line)
		}
	}
	if err := suite.Validate(); err != nil {
		return "", nil, err
	}
	return name, suite, nil
}

func parseHexWord(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// LoadDir reads every .prob file in a directory (as written by
// cmd/genbench), returning name/suite pairs sorted by name.
func LoadDir(dir string) (names []string, suites []*testcase.Suite, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type entry struct {
		name  string
		suite *testcase.Suite
	}
	var out []entry
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".prob") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, nil, err
		}
		name, suite, err := ParseProb(string(data))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", e.Name(), err)
		}
		if name == "" {
			name = strings.TrimSuffix(e.Name(), ".prob")
		}
		out = append(out, entry{name, suite})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for _, e := range out {
		names = append(names, e.name)
		suites = append(suites, e.suite)
	}
	return names, suites, nil
}
