package superopt

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/asm"
	"stochsyn/internal/corpus"
	"stochsyn/internal/prog"
)

// fragFor extracts the rax fragment from an assembly function body.
func fragFor(t *testing.T, body string) *asm.Fragment {
	t.Helper()
	funcs, err := asm.ParseText("f:\n" + body + "\tret\n")
	if err != nil {
		t.Fatal(err)
	}
	frag, err := asm.SliceBlock(funcs[0], funcs[0].Blocks[0], asm.RAX)
	if err != nil {
		t.Fatal(err)
	}
	return frag
}

// checkAgree verifies Translate(frag) and frag.Execute agree on a set
// of inputs.
func checkAgree(t *testing.T, frag *asm.Fragment, samples int) {
	t.Helper()
	p, err := Translate(frag)
	if err != nil {
		t.Fatalf("Translate: %v\n%s", err, frag)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("translation invalid: %v", err)
	}
	rng := rand.New(rand.NewPCG(999, 111))
	for i := 0; i < samples; i++ {
		in := make([]uint64, len(frag.Inputs))
		for j := range in {
			switch i % 3 {
			case 0:
				in[j] = rng.Uint64()
			case 1:
				in[j] = uint64(rng.IntN(100))
			default:
				in[j] = ^uint64(0) - uint64(rng.IntN(5))
			}
		}
		want, err := frag.Execute(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Output(in); got != want {
			t.Fatalf("disagree on %v: translate %#x, execute %#x\nfragment:\n%sprogram: %s",
				in, got, want, frag, p)
		}
	}
}

func TestTranslateBasicALU(t *testing.T) {
	frag := fragFor(t, `
	movq %rdi, %rax
	addq %rsi, %rax
	xorq %rdx, %rax
`)
	checkAgree(t, frag, 30)
}

func TestTranslate32BitSemantics(t *testing.T) {
	frag := fragFor(t, `
	movl %edi, %eax
	addl %esi, %eax
	shll $5, %eax
	notl %eax
`)
	checkAgree(t, frag, 30)
}

func TestTranslateLea(t *testing.T) {
	frag := fragFor(t, `
	leaq 4(%rdi,%rsi,8), %rax
`)
	checkAgree(t, frag, 30)
}

func TestTranslateLea32(t *testing.T) {
	frag := fragFor(t, `
	leal 7(%rdi,%rdi,4), %eax
`)
	checkAgree(t, frag, 30)
}

func TestTranslateExtensions(t *testing.T) {
	frag := fragFor(t, `
	movsbq %dil, %rax
	addq %rsi, %rax
`)
	checkAgree(t, frag, 30)
	frag = fragFor(t, `
	movslq %edi, %rax
	negq %rax
`)
	checkAgree(t, frag, 30)
	frag = fragFor(t, `
	movzwl %di, %eax
	incq %rax
`)
	checkAgree(t, frag, 30)
}

func TestTranslateShiftsAndRotates(t *testing.T) {
	frag := fragFor(t, `
	movq %rdi, %rax
	sarq $7, %rax
	rolq $13, %rax
`)
	checkAgree(t, frag, 30)
}

func TestTranslateBitScan(t *testing.T) {
	frag := fragFor(t, `
	popcntq %rdi, %rax
	addq %rsi, %rax
`)
	checkAgree(t, frag, 30)
	frag = fragFor(t, `
	tzcntq %rdi, %rax
	incq %rax
`)
	checkAgree(t, frag, 30)
	frag = fragFor(t, `
	lzcntq %rdi, %rax
	decq %rax
`)
	checkAgree(t, frag, 30)
}

func TestTranslateFigure12(t *testing.T) {
	// The paper's Figure 12 slice (for %edx, reconstructed here with
	// rax as the output register via an extra move).
	frag := fragFor(t, `
	addl %r14d, %ebp
	addl %ebp, %eax
	leal (%rax,%rax,4), %edx
	shll $0x3, %edx
	movl %edx, %eax
`)
	checkAgree(t, frag, 40)
}

func TestTranslateRejectsOversized(t *testing.T) {
	// A long chain of 16-bit merges needs 3 nodes per instruction and
	// must overflow the body limit.
	body := "\tmovq %rdi, %rax\n"
	for i := 0; i < 12; i++ {
		body += "\taddw %si, %ax\n"
	}
	funcs, err := asm.ParseText("f:\n" + body + "\tret\n")
	if err != nil {
		t.Skip("16-bit adds unsupported by parser")
	}
	frag, err := asm.SliceBlock(funcs[0], funcs[0].Blocks[0], asm.RAX)
	if err != nil {
		t.Skip("slice unavailable")
	}
	if _, err := Translate(frag); err == nil {
		t.Skip("translation fit; nothing to check")
	}
}

func TestTranslateCorpusFragmentsAgree(t *testing.T) {
	// Property-style sweep: every translatable fragment from a corpus
	// sample must agree with the evaluator on random inputs.
	src := corpus.Generate(corpus.Options{Functions: 120, Seed: 31})
	funcs, err := asm.ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	translated, agree := 0, 0
	for _, f := range funcs {
		for _, frag := range asm.Fragments(f, 2) {
			if len(frag.Inputs) == 0 || len(frag.Inputs) > prog.MaxInputs {
				continue
			}
			p, err := Translate(frag)
			if err != nil {
				continue // oversized or untranslatable
			}
			translated++
			ok := true
			rng := rand.New(rand.NewPCG(uint64(translated), 5))
			for i := 0; i < 10; i++ {
				in := make([]uint64, len(frag.Inputs))
				for j := range in {
					in[j] = rng.Uint64()
				}
				want, err := frag.Execute(in)
				if err != nil {
					t.Fatal(err)
				}
				if p.Output(in) != want {
					ok = false
					t.Errorf("fragment disagrees:\n%sprogram: %s", frag, p)
					break
				}
			}
			if ok {
				agree++
			}
		}
	}
	if translated < 20 {
		t.Fatalf("only %d fragments translated", translated)
	}
	if agree != translated {
		t.Errorf("%d/%d fragments agree", agree, translated)
	}
}

func TestPropertyTranslateAgreesOnRandomInputs(t *testing.T) {
	frag := fragFor(t, `
	movq %rdi, %rax
	imulq %rsi, %rax
	subq %rdi, %rax
	sarq $3, %rax
`)
	p, err := Translate(frag)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint64) bool {
		in := []uint64{0, 0}
		for i, r := range frag.Inputs {
			if r == asm.RDI {
				in[i] = a
			} else {
				in[i] = b
			}
		}
		want, err := frag.Execute(in)
		if err != nil {
			return false
		}
		return p.Output(in) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateBitTest(t *testing.T) {
	frag := fragFor(t, `
	movq %rdi, %rax
	btsq $5, %rax
	btcq $62, %rax
	btrq $1, %rax
`)
	checkAgree(t, frag, 30)
}
