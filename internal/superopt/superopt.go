// Package superopt builds the superoptimization synthesis benchmark of
// Section 6 of the paper: it scrapes dataflow-related straight-line
// fragments from an assembly corpus, deduplicates them by instruction
// signature, generates test cases (corner cases, random bit patterns,
// and skewed Hamming weights), filters out fragments that are unlikely
// to be expressible in the synthesis dialect via the incremental
// prefix-synthesis check, and samples a standard benchmark.
package superopt

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"stochsyn/internal/asm"
	"stochsyn/internal/corpus"
	"stochsyn/internal/cost"
	"stochsyn/internal/prog"
	"stochsyn/internal/search"
	"stochsyn/internal/testcase"
)

// Problem is one benchmark entry: a fragment together with the test
// suite that specifies it.
type Problem struct {
	// Name identifies the problem within the benchmark.
	Name string
	// Frag is the scraped fragment (the reference semantics).
	Frag *asm.Fragment
	// Suite is the input/output specification the search sees.
	Suite *testcase.Suite
	// Signature is the fragment's instruction signature.
	Signature string
	// Reference is the fragment translated into the synthesis dialect
	// (a known solution), or nil when the translation exceeds the
	// program size limit. When Options.RequireReference is set, every
	// benchmark problem has a non-nil Reference, making the benchmark
	// synthesizable by construction.
	Reference *prog.Program
}

// Options configures the pipeline.
type Options struct {
	// CorpusFunctions is the number of synthetic functions to scrape
	// (the stand-in for the paper's 187K-fragment Ubuntu scan).
	CorpusFunctions int
	// Seed drives every random choice in the pipeline.
	Seed uint64
	// TestCases is the number of test cases per problem (the paper's
	// benchmark uses about 100).
	TestCases int
	// SampleSize is the number of problems in the final benchmark
	// (the paper samples 1000).
	SampleSize int
	// MinNonTrivial is the minimum number of non-data-movement
	// instructions per fragment (the paper uses 2).
	MinNonTrivial int
	// MaxInsts caps the fragment length (the paper's fragments run 2
	// to 15 instructions).
	MaxInsts int
	// PrefixFilter enables the incremental prefix-synthesizability
	// check of Section 6.1 (the paper's stochastic filter).
	PrefixFilter bool
	// PrefixBudget is the per-prefix iteration budget of the filter.
	PrefixBudget int64
	// RequireReference keeps only fragments that translate exactly
	// into the synthesis dialect within the size limit — a
	// constructive, deterministic alternative to the prefix filter
	// that guarantees every problem is expressible.
	RequireReference bool
	// MaxInputs drops fragments with more inputs than this (very wide
	// fragments make poor synthesis problems); 0 means no limit.
	MaxInputs int
}

// DefaultOptions returns pipeline options scaled for interactive use.
func DefaultOptions(seed uint64) Options {
	return Options{
		CorpusFunctions:  300,
		Seed:             seed,
		TestCases:        100,
		SampleSize:       50,
		MinNonTrivial:    2,
		MaxInsts:         15,
		PrefixFilter:     false,
		PrefixBudget:     20000,
		RequireReference: true,
		MaxInputs:        4,
	}
}

// Stats reports the attrition at each pipeline stage, mirroring the
// counts the paper gives for its scrape.
type Stats struct {
	Functions     int // functions parsed
	Fragments     int // raw fragments extracted
	AfterLimits   int // fragments within size/input limits
	Signatures    int // distinct instruction signatures
	FilterDropped int // dropped by the prefix-synthesizability check
	Final         int // problems in the sampled benchmark
}

// String renders the attrition report.
func (s Stats) String() string {
	return fmt.Sprintf("functions=%d fragments=%d within-limits=%d signatures=%d filter-dropped=%d final=%d",
		s.Functions, s.Fragments, s.AfterLimits, s.Signatures, s.FilterDropped, s.Final)
}

// Build runs the full pipeline on a freshly generated synthetic corpus
// and returns the benchmark problems in a deterministic order.
func Build(opts Options) ([]*Problem, Stats, error) {
	src := corpus.Generate(corpus.Options{Functions: opts.CorpusFunctions, Seed: opts.Seed})
	funcs, err := asm.ParseText(src)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("superopt: corpus parse: %v", err)
	}
	return BuildFromFuncs(funcs, opts)
}

// BuildFromFuncs runs the pipeline stages (fragment extraction, size
// limits, signature dedup, test generation, optional prefix filter,
// sampling) on already-parsed functions — e.g. a real disassembly
// listing supplied by the user.
func BuildFromFuncs(funcs []*asm.Func, opts Options) ([]*Problem, Stats, error) {
	var st Stats
	st.Functions = len(funcs)

	// Stage 1: extract fragments.
	var frags []*asm.Fragment
	for _, f := range funcs {
		frags = append(frags, asm.Fragments(f, opts.MinNonTrivial)...)
	}
	st.Fragments = len(frags)

	// Stage 2: size and input limits.
	var limited []*asm.Fragment
	for _, fr := range frags {
		if opts.MaxInsts > 0 && len(fr.Insts) > opts.MaxInsts {
			continue
		}
		if opts.MaxInputs > 0 && len(fr.Inputs) > opts.MaxInputs {
			continue
		}
		if len(fr.Inputs) == 0 {
			continue // constant fragments make degenerate problems
		}
		limited = append(limited, fr)
	}
	st.AfterLimits = len(limited)

	// Stage 3: group by instruction signature and sample one
	// representative per class.
	rng := rand.New(rand.NewPCG(opts.Seed, 0x13198a2e03707344))
	bySig := map[string][]*asm.Fragment{}
	var sigs []string
	for _, fr := range limited {
		sig := fr.Signature()
		if _, ok := bySig[sig]; !ok {
			sigs = append(sigs, sig)
		}
		bySig[sig] = append(bySig[sig], fr)
	}
	sort.Strings(sigs)
	st.Signatures = len(sigs)

	var reps []*asm.Fragment
	for _, sig := range sigs {
		group := bySig[sig]
		reps = append(reps, group[rng.IntN(len(group))])
	}

	// Stage 4: generate test cases and apply the expressibility
	// filters (the exact translation check and, optionally, the
	// paper's stochastic prefix filter).
	var problems []*Problem
	for i, fr := range reps {
		suite := suiteFor(fr, opts.TestCases, rng)
		if suite == nil {
			continue
		}
		ref, refErr := Translate(fr)
		if opts.RequireReference && refErr != nil {
			st.FilterDropped++
			continue
		}
		if opts.PrefixFilter && !prefixSynthesizable(fr, opts, rng.Uint64()) {
			st.FilterDropped++
			continue
		}
		problems = append(problems, &Problem{
			Name:      fmt.Sprintf("so%04d", i),
			Frag:      fr,
			Suite:     suite,
			Signature: fr.Signature(),
			Reference: ref,
		})
	}

	// Stage 5: sample the standard benchmark.
	rng.Shuffle(len(problems), func(i, j int) { problems[i], problems[j] = problems[j], problems[i] })
	if opts.SampleSize > 0 && len(problems) > opts.SampleSize {
		problems = problems[:opts.SampleSize]
	}
	sort.Slice(problems, func(i, j int) bool { return problems[i].Name < problems[j].Name })
	st.Final = len(problems)
	return problems, st, nil
}

// suiteFor generates the problem's test suite by executing the
// fragment; it returns nil for fragments whose execution fails or
// whose output is constant across all generated cases (degenerate
// specifications).
func suiteFor(fr *asm.Fragment, n int, rng *rand.Rand) *testcase.Suite {
	ok := true
	f := func(in []uint64) uint64 {
		out, err := fr.Execute(in)
		if err != nil {
			ok = false
			return 0
		}
		return out
	}
	suite := testcase.Generate(f, len(fr.Inputs), n, rng)
	if !ok {
		return nil
	}
	constant := true
	for _, c := range suite.Cases[1:] {
		if c.Output != suite.Cases[0].Output {
			constant = false
			break
		}
	}
	if constant {
		return nil
	}
	return suite
}

// prefixSynthesizable implements the incremental filter of Section
// 6.1: synthesize the length-n prefix starting from the solution of
// the length-(n-1) prefix. A fragment passes if every prefix
// synthesizes within the per-prefix budget. Prefixes whose final
// instruction defines no register (stores, flag writes) are skipped.
func prefixSynthesizable(fr *asm.Fragment, opts Options, seed uint64) bool {
	rng := rand.New(rand.NewPCG(seed, 0xa4093822299f31d0))
	var init *prog.Program
	for k := 1; k <= len(fr.Insts); k++ {
		pf := prefixFragment(fr, k)
		if pf == nil {
			continue
		}
		suite := suiteFor(pf, 32, rng)
		if suite == nil {
			continue
		}
		run := search.New(suite, search.Options{
			Set:  prog.FullSet,
			Cost: cost.Hamming,
			Beta: 2,
			Seed: seed ^ uint64(k)*0x9e3779b97f4a7c15,
			Init: init,
		})
		if _, done := run.Step(opts.PrefixBudget); !done {
			return false
		}
		init = run.Solution()
	}
	return true
}

// prefixFragment builds the fragment consisting of the first k
// instructions, with the k-th instruction's destination as output. It
// returns nil when that instruction defines no register.
func prefixFragment(fr *asm.Fragment, k int) *asm.Fragment {
	last := fr.Insts[k-1]
	d := last.Def()
	if d == asm.NoReg {
		return nil
	}
	width := 64
	if ops := last.Operands; len(ops) > 0 && ops[len(ops)-1].Kind == asm.OpReg {
		width = ops[len(ops)-1].Width
	}
	return &asm.Fragment{
		Insts:       fr.Insts[:k],
		Output:      d,
		OutputWidth: width,
		Inputs:      fr.Inputs,
		FreshInputs: fr.FreshInputs,
		Source:      fr.Source,
	}
}
