// Package bits provides 64-bit word utilities shared by the cost
// functions, test-case generators, and benchmark pipeline: Hamming
// weights and distances, the log-difference metric of the paper's
// log-difference cost function, and random word generators for the
// corner-case / random / skewed-Hamming-weight test inputs described
// in Section 6.1 of the paper.
package bits

import (
	"math"
	mathbits "math/bits"
	"math/rand/v2"
)

// Weight returns the Hamming weight (number of set bits) of x.
func Weight(x uint64) int {
	return mathbits.OnesCount64(x)
}

// Distance returns the Hamming distance between a and b, i.e. the
// number of bit positions at which they differ.
func Distance(a, b uint64) int {
	return mathbits.OnesCount64(a ^ b)
}

// LogDiff returns the log-difference cost contribution for a candidate
// output a against a desired output b, both interpreted as 64-bit
// signed integers: 0 if they are equal and 1 + log2(|a-b|) otherwise.
//
// The absolute difference is computed without overflow even when the
// true difference does not fit in int64 (e.g. MaxInt64 - MinInt64).
func LogDiff(a, b uint64) float64 {
	if a == b {
		return 0
	}
	return 1 + math.Log2(float64(absDiff(int64(a), int64(b))))
}

// absDiff returns |a-b| as a uint64, exact for all int64 inputs.
func absDiff(a, b int64) uint64 {
	if a >= b {
		return uint64(a) - uint64(b)
	}
	return uint64(b) - uint64(a)
}

// RandomWeighted returns a uniformly random 64-bit word conditioned on
// having exactly w set bits. It panics if w is outside [0, 64].
func RandomWeighted(rng *rand.Rand, w int) uint64 {
	if w < 0 || w > 64 {
		panic("bits: weight out of range")
	}
	// Reservoir-style selection of w distinct bit positions.
	var x uint64
	chosen := 0
	for pos := 0; pos < 64; pos++ {
		remaining := 64 - pos
		need := w - chosen
		if need == 0 {
			break
		}
		if rng.IntN(remaining) < need {
			x |= 1 << uint(pos)
			chosen++
		}
	}
	return x
}

// RandomLowWeight returns a random word with a low Hamming weight
// (between 1 and 8 set bits), used for "bit patterns with low Hamming
// weight" test inputs.
func RandomLowWeight(rng *rand.Rand) uint64 {
	return RandomWeighted(rng, 1+rng.IntN(8))
}

// RandomHighWeight returns a random word with a high Hamming weight
// (between 56 and 63 set bits), used for "bit patterns with high
// Hamming weight" test inputs.
func RandomHighWeight(rng *rand.Rand) uint64 {
	return RandomWeighted(rng, 56+rng.IntN(8))
}

// CornerCases is the set of important corner-case input values used by
// the benchmark test-case generator: 0, 1, and -1 (all ones), per
// Section 6.1, extended with the extreme signed values and a couple of
// byte-boundary patterns that exercise sign handling.
var CornerCases = []uint64{
	0,
	1,
	^uint64(0),                  // -1
	1 << 63,                     // math.MinInt64
	(1 << 63) - 1,               // math.MaxInt64
	0x00000000FFFFFFFF,          // low-half mask
	0xFFFFFFFF00000000,          // high-half mask
	0x8000000000000001,          // sign bit plus low bit
	0x5555555555555555,          // alternating 01
	0xAAAAAAAAAAAAAAAA,          // alternating 10
	0x00FF00FF00FF00FF,          // byte stripes
	0x0123456789ABCDEF,          // ascending nibbles
	2, 3, 4, 7, 8, 15, 16, 0x80, // small values and powers of two
}

// InterestingConstant draws a random constant from a distribution that
// favors values useful in low-level code: corner cases, small signed
// integers, single bits, contiguous masks, and occasionally a fully
// random word. The instruction move uses this when materializing new
// constant operands.
func InterestingConstant(rng *rand.Rand) uint64 {
	switch rng.IntN(6) {
	case 0: // a corner case
		return CornerCases[rng.IntN(len(CornerCases))]
	case 1: // small signed integer in [-16, 16]
		return uint64(int64(rng.IntN(33) - 16))
	case 2: // a single set bit
		return 1 << uint(rng.IntN(64))
	case 3: // contiguous low mask of 1..64 bits
		n := 1 + rng.IntN(64)
		if n == 64 {
			return ^uint64(0)
		}
		return (uint64(1) << uint(n)) - 1
	case 4: // negated single bit (all ones with a hole)
		return ^(uint64(1) << uint(rng.IntN(64)))
	default: // uniform random word
		return rng.Uint64()
	}
}
