package bits

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWeight(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{^uint64(0), 64},
		{0xFF, 8},
		{0x8000000000000001, 2},
	}
	for _, tc := range cases {
		if got := Weight(tc.x); got != tc.want {
			t.Errorf("Weight(%#x) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestDistance(t *testing.T) {
	if got := Distance(0, ^uint64(0)); got != 64 {
		t.Errorf("Distance(0, ~0) = %d, want 64", got)
	}
	if got := Distance(0b1100, 0b1010); got != 2 {
		t.Errorf("Distance = %d, want 2", got)
	}
}

func TestPropertyDistanceMetric(t *testing.T) {
	// Symmetry, identity, and triangle inequality.
	f := func(a, b, c uint64) bool {
		return Distance(a, b) == Distance(b, a) &&
			Distance(a, a) == 0 &&
			Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogDiff(t *testing.T) {
	if got := LogDiff(5, 5); got != 0 {
		t.Errorf("LogDiff(5,5) = %g, want 0", got)
	}
	if got := LogDiff(5, 4); got != 1 { // 1 + log2(1) = 1
		t.Errorf("LogDiff(5,4) = %g, want 1", got)
	}
	if got := LogDiff(0, 4); got != 3 { // 1 + log2(4) = 3
		t.Errorf("LogDiff(0,4) = %g, want 3", got)
	}
	// Extreme difference must not overflow: MaxInt64 - MinInt64.
	big := LogDiff(uint64(math.MaxInt64), 1<<63)
	if big < 64 || big > 66 || math.IsInf(big, 0) || math.IsNaN(big) {
		t.Errorf("LogDiff extreme = %g, want ~65", big)
	}
}

func TestPropertyLogDiffSymmetricPositive(t *testing.T) {
	f := func(a, b uint64) bool {
		d := LogDiff(a, b)
		if a == b {
			return d == 0
		}
		return d >= 1 && d == LogDiff(b, a) && !math.IsNaN(d) && !math.IsInf(d, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomWeighted(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, w := range []int{0, 1, 7, 32, 63, 64} {
		for i := 0; i < 50; i++ {
			x := RandomWeighted(rng, w)
			if got := Weight(x); got != w {
				t.Fatalf("RandomWeighted(%d) produced weight %d", w, got)
			}
		}
	}
}

func TestRandomWeightedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for weight 65")
		}
	}()
	RandomWeighted(rand.New(rand.NewPCG(1, 1)), 65)
}

func TestRandomWeightedVariety(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[RandomWeighted(rng, 32)] = true
	}
	if len(seen) < 90 {
		t.Errorf("weight-32 words show little variety: %d/100 distinct", len(seen))
	}
}

func TestSkewedWeights(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 100; i++ {
		if w := Weight(RandomLowWeight(rng)); w < 1 || w > 8 {
			t.Fatalf("RandomLowWeight weight %d out of [1, 8]", w)
		}
		if w := Weight(RandomHighWeight(rng)); w < 56 || w > 63 {
			t.Fatalf("RandomHighWeight weight %d out of [56, 63]", w)
		}
	}
}

func TestCornerCasesContainEssentials(t *testing.T) {
	want := map[uint64]bool{0: true, 1: true, ^uint64(0): true}
	for _, c := range CornerCases {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("CornerCases missing %v", want)
	}
}

func TestInterestingConstantCoversClasses(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	sawZero, sawOnes, sawPow2 := false, false, false
	for i := 0; i < 2000; i++ {
		c := InterestingConstant(rng)
		switch {
		case c == 0:
			sawZero = true
		case c == ^uint64(0):
			sawOnes = true
		case c != 0 && c&(c-1) == 0:
			sawPow2 = true
		}
	}
	if !sawZero || !sawOnes || !sawPow2 {
		t.Errorf("constant classes missing: zero=%v ones=%v pow2=%v", sawZero, sawOnes, sawPow2)
	}
}
