// Package cost implements the three cost functions of Section 3.2 of
// the paper — Hamming, incorrect test cases, and log-difference — and
// the β normalization rule β' = β·|test cases|/100. Every cost
// function is zero exactly when the candidate output matches the
// desired output on every test case.
package cost

import (
	"fmt"
	"math"

	"stochsyn/internal/bits"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/plan"
	"stochsyn/internal/testcase"
)

// inf is the rejection sentinel returned by OfBounded.
var inf = math.Inf(1)

// Kind selects a cost function.
type Kind uint8

const (
	// Hamming is the total number of incorrect bits across all test
	// cases: the Hamming weight of the XOR of desired and candidate
	// outputs.
	Hamming Kind = iota
	// IncorrectTests counts the test cases that are not entirely
	// correct (differ in at least one bit). It avoids artifacts of the
	// Hamming cost but provides less signal.
	IncorrectTests
	// LogDiff interprets outputs as 64-bit signed integers a and b and
	// charges 1 + log2(|a-b|) per differing case. Most useful when the
	// output is numeric.
	LogDiff

	numKinds
)

// Kinds lists all cost function kinds, in the order the paper's
// evaluation presents them.
var Kinds = []Kind{Hamming, IncorrectTests, LogDiff}

// String returns the evaluation section's name for the cost function.
func (k Kind) String() string {
	switch k {
	case Hamming:
		return "hamming"
	case IncorrectTests:
		return "inctests"
	case LogDiff:
		return "logdiff"
	}
	return fmt.Sprintf("cost(%d)", uint8(k))
}

// ParseKind maps a name (as produced by String) to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "hamming":
		return Hamming, nil
	case "inctests", "incorrect", "inc":
		return IncorrectTests, nil
	case "logdiff", "log":
		return LogDiff, nil
	}
	return 0, fmt.Errorf("cost: unknown cost function %q", name)
}

// PerCase returns the cost contribution of a single test case given
// the candidate output got and desired output want.
func (k Kind) PerCase(got, want uint64) float64 {
	switch k {
	case Hamming:
		return float64(bits.Distance(got, want))
	case IncorrectTests:
		if got != want {
			return 1
		}
		return 0
	case LogDiff:
		return bits.LogDiff(got, want)
	}
	panic("cost: invalid kind")
}

// Of evaluates program p on every case of suite s and returns the
// total cost. vals must have length >= p.Len(); it is scratch space so
// the hot loop performs no allocation. Of is OfBounded with an
// infinite bound: the per-case summation order is identical, so the
// two agree bit-for-bit whenever OfBounded does not abort.
func (k Kind) Of(p *prog.Program, s *testcase.Suite, vals []uint64) float64 {
	return k.OfBounded(p, s, vals, inf)
}

// OfBounded is Of with an early abort: because per-case costs are
// non-negative, once the partial sum exceeds bound the proposal is
// certain to be rejected, so evaluation stops and +Inf is returned.
// The search draws its acceptance threshold before evaluating, which
// makes this optimization exact (it never changes accept/reject
// decisions) while skipping most of the work for bad proposals.
func (k Kind) OfBounded(p *prog.Program, s *testcase.Suite, vals []uint64, bound float64) float64 {
	total := 0.0
	for i := range s.Cases {
		c := &s.Cases[i]
		got := p.Eval(c.Inputs, vals)
		total += k.PerCase(got, c.Output)
		if total > bound {
			return inf
		}
	}
	return total
}

// OfColumn sums the cost over a complete root-value column (one value
// per suite case, in case order), as produced by the evaluation
// engine's committed matrix. The summation order matches Of exactly,
// so the results are bit-equal. The Kind dispatch is hoisted out of
// the per-case loop: each arm is PerCase's body applied in the same
// case order, so hoisting cannot change the float sum.
func (k Kind) OfColumn(root []uint64, s *testcase.Suite) float64 {
	cases := s.Cases
	total := 0.0
	switch k {
	case Hamming:
		for i := range cases {
			total += float64(bits.Distance(root[i], cases[i].Output))
		}
	case IncorrectTests:
		for i := range cases {
			if root[i] != cases[i].Output {
				total++
			}
		}
	case LogDiff:
		for i := range cases {
			total += bits.LogDiff(root[i], cases[i].Output)
		}
	default:
		panic("cost: invalid kind")
	}
	return total
}

// Source is the column producer OfState consumes: an incremental
// evaluation engine with an active proposal. Both the interpreted
// engine (prog.EvalState) and the compiled plan engine (plan.State)
// satisfy it; the cost layer is indifferent to how the root column
// gets computed as long as blocks arrive in case order.
type Source interface {
	// Suite returns the test suite the proposal is evaluated against.
	Suite() *testcase.Suite
	// EvalRange computes the proposal for suite cases [c0, c1) and
	// returns the root values for that range.
	EvalRange(c0, c1 int) []uint64
}

// OfState evaluates the engine's active proposal and returns its total
// cost, aborting with +Inf once the partial sum exceeds bound. It
// pulls root values from the engine in EvalChunk-case blocks but sums
// and bound-checks per case in case order, so the returned total (and
// the abort decision) is bit-identical to OfBounded on the proposal
// program. A non-Inf return implies every case block was pulled, which
// is exactly the precondition of the engines' Commit. As in OfColumn,
// the Kind dispatch runs once per call instead of once per case; the
// per-arm bodies and summation order are unchanged.
func (k Kind) OfState(e Source, bound float64) float64 {
	s := e.Suite()
	cases := s.Cases
	n := len(cases)
	total := 0.0
	switch k {
	case Hamming:
		for c0 := 0; c0 < n; c0 += prog.EvalChunk {
			c1 := c0 + prog.EvalChunk
			if c1 > n {
				c1 = n
			}
			root := e.EvalRange(c0, c1)
			for i, got := range root {
				total += float64(bits.Distance(got, cases[c0+i].Output))
				if total > bound {
					return inf
				}
			}
		}
	case IncorrectTests:
		for c0 := 0; c0 < n; c0 += prog.EvalChunk {
			c1 := c0 + prog.EvalChunk
			if c1 > n {
				c1 = n
			}
			root := e.EvalRange(c0, c1)
			for i, got := range root {
				if got != cases[c0+i].Output {
					total++
				}
				if total > bound {
					return inf
				}
			}
		}
	case LogDiff:
		for c0 := 0; c0 < n; c0 += prog.EvalChunk {
			c1 := c0 + prog.EvalChunk
			if c1 > n {
				c1 = n
			}
			root := e.EvalRange(c0, c1)
			for i, got := range root {
				total += bits.LogDiff(got, cases[c0+i].Output)
				if total > bound {
					return inf
				}
			}
		}
	default:
		panic("cost: invalid kind")
	}
	return total
}

// OfPlan is OfState specialized to the compiled plan engine: the same
// chunked pulls, the same per-case summation order, and the same
// abort decisions, with two plan-only savings. The tape runs through
// direct calls (no interface dispatch, no per-chunk root reslicing —
// the root column is resolved once), and the bound check runs once
// per chunk instead of once per case. Per-case costs are
// non-negative, so the partial sum is monotone: a sum that crosses
// bound mid-chunk has still crossed it at the chunk boundary, the
// same chunks get pulled either way, and the same +Inf comes back.
// Trajectories and eval-work stats are bit-identical to OfState on
// the same engine.
func (k Kind) OfPlan(e *plan.State, bound float64) float64 {
	cases := e.Suite().Cases
	n := len(cases)
	root := e.ProposalRoot()[:n]
	total := 0.0
	switch k {
	case Hamming:
		// Per-case distances are small integers, so accumulating them in
		// an int and converting once per chunk is exact (every partial
		// sum is far below 2^53) and bit-identical to the per-case
		// float adds of OfState — it just trades EvalChunk int→float
		// conversions and float adds for integer adds.
		d := 0
		for c0 := 0; c0 < n; c0 += prog.EvalChunk {
			c1 := c0 + prog.EvalChunk
			if c1 > n {
				c1 = n
			}
			e.RunTape(c0, c1)
			for c := c0; c < c1; c++ {
				d += bits.Distance(root[c], cases[c].Output)
			}
			if total = float64(d); total > bound {
				return inf
			}
		}
	case IncorrectTests:
		d := 0
		for c0 := 0; c0 < n; c0 += prog.EvalChunk {
			c1 := c0 + prog.EvalChunk
			if c1 > n {
				c1 = n
			}
			e.RunTape(c0, c1)
			for c := c0; c < c1; c++ {
				if root[c] != cases[c].Output {
					d++
				}
			}
			if total = float64(d); total > bound {
				return inf
			}
		}
	case LogDiff:
		for c0 := 0; c0 < n; c0 += prog.EvalChunk {
			c1 := c0 + prog.EvalChunk
			if c1 > n {
				c1 = n
			}
			e.RunTape(c0, c1)
			for c := c0; c < c1; c++ {
				total += bits.LogDiff(root[c], cases[c].Output)
			}
			if total > bound {
				return inf
			}
		}
	default:
		panic("cost: invalid kind")
	}
	return total
}

// Solves reports whether p produces the desired output on every case.
// It is equivalent to Of(...) == 0 for any Kind but short-circuits on
// the first failing case. vals is caller-provided scratch with length
// >= p.Len(), mirroring Of, so repeated calls perform no allocation.
func Solves(p *prog.Program, s *testcase.Suite, vals []uint64) bool {
	for i := range s.Cases {
		c := &s.Cases[i]
		if p.Eval(c.Inputs, vals) != c.Output {
			return false
		}
	}
	return true
}

// NormalizeBeta scales a user-facing β, which is expressed relative to
// a 100-test-case problem, to the problem's actual test-case count:
// β' = β·|tests|/100 (Section 3.2).
func NormalizeBeta(beta float64, numTests int) float64 {
	return beta * float64(numTests) / 100
}
