package cost

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// suiteFor builds a small suite for f.
func suiteFor(t *testing.T, f testcase.Func, numInputs, n int) *testcase.Suite {
	t.Helper()
	rng := rand.New(rand.NewPCG(42, 42))
	s := testcase.Generate(f, numInputs, n, rng)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Kind
	}{
		{"hamming", Hamming},
		{"inctests", IncorrectTests},
		{"inc", IncorrectTests},
		{"logdiff", LogDiff},
		{"log", LogDiff},
	} {
		got, err := ParseKind(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v", tc.name, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted bogus name")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range Kinds {
		name := k.String()
		back, err := ParseKind(name)
		if err != nil || back != k {
			t.Errorf("round trip of %v via %q failed", k, name)
		}
	}
}

func TestPerCaseHamming(t *testing.T) {
	if got := Hamming.PerCase(0b1100, 0b1010); got != 2 {
		t.Errorf("hamming = %g, want 2", got)
	}
	if got := Hamming.PerCase(5, 5); got != 0 {
		t.Errorf("hamming equal = %g, want 0", got)
	}
}

func TestPerCaseIncorrectTests(t *testing.T) {
	if got := IncorrectTests.PerCase(1, 2); got != 1 {
		t.Errorf("inctests = %g, want 1", got)
	}
	if got := IncorrectTests.PerCase(9, 9); got != 0 {
		t.Errorf("inctests equal = %g, want 0", got)
	}
}

func TestPerCaseLogDiff(t *testing.T) {
	if got := LogDiff.PerCase(4, 0); got != 3 { // 1 + log2(4)
		t.Errorf("logdiff = %g, want 3", got)
	}
}

func TestPropertyZeroIffEqual(t *testing.T) {
	// All three cost functions are zero exactly when outputs match.
	f := func(got, want uint64) bool {
		for _, k := range Kinds {
			c := k.PerCase(got, want)
			if (c == 0) != (got == want) {
				return false
			}
			if c < 0 || math.IsNaN(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOfMatchesSolves(t *testing.T) {
	s := suiteFor(t, func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, 1, 50)
	sol := prog.MustParse("andq(x, subq(x, 1))", 1)
	wrong := prog.MustParse("andq(x, addq(x, 1))", 1)
	var vals [prog.MaxNodes]uint64
	for _, k := range Kinds {
		if c := k.Of(sol, s, vals[:]); c != 0 {
			t.Errorf("%s cost of solution = %g, want 0", k, c)
		}
		if c := k.Of(wrong, s, vals[:]); c <= 0 {
			t.Errorf("%s cost of wrong program = %g, want > 0", k, c)
		}
	}
	if !Solves(sol, s, vals[:]) {
		t.Error("Solves rejected the solution")
	}
	if Solves(wrong, s, vals[:]) {
		t.Error("Solves accepted a wrong program")
	}
}

func TestOfBoundedExact(t *testing.T) {
	// OfBounded must agree with Of whenever the true cost is within
	// the bound, and must return +Inf beyond it.
	s := suiteFor(t, func(in []uint64) uint64 { return in[0] ^ in[1] }, 2, 40)
	p := prog.MustParse("andq(x, y)", 2)
	var vals [prog.MaxNodes]uint64
	for _, k := range Kinds {
		full := k.Of(p, s, vals[:])
		if got := k.OfBounded(p, s, vals[:], full); got != full {
			t.Errorf("%s OfBounded(bound=cost) = %g, want %g", k, got, full)
		}
		if got := k.OfBounded(p, s, vals[:], full+1); got != full {
			t.Errorf("%s OfBounded(bound=cost+1) = %g, want %g", k, got, full)
		}
		if got := k.OfBounded(p, s, vals[:], full/2); !math.IsInf(got, 1) {
			t.Errorf("%s OfBounded(bound=cost/2) = %g, want +Inf", k, got)
		}
	}
}

func TestPropertyOfBoundedConsistent(t *testing.T) {
	s := suiteFor(t, func(in []uint64) uint64 { return in[0] + in[1] }, 2, 20)
	f := func(seed uint64, boundRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		// A random small program.
		p := prog.NewZero(2)
		op := prog.FullSet.RandomOp(rng)
		nd := prog.Node{Op: op}
		for a := 0; a < op.Arity(); a++ {
			nd.Args[a] = int32(rng.IntN(len(p.Nodes)))
		}
		p.Nodes = append(p.Nodes, nd)
		p.Root = int32(len(p.Nodes) - 1)
		p.Invalidate()
		p.GC()

		var vals [prog.MaxNodes]uint64
		bound := float64(boundRaw)
		for _, k := range Kinds {
			full := k.Of(p, s, vals[:])
			got := k.OfBounded(p, s, vals[:], bound)
			if full <= bound && got != full {
				return false
			}
			if full > bound && !math.IsInf(got, 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeBeta(t *testing.T) {
	if got := NormalizeBeta(1, 100); got != 1 {
		t.Errorf("NormalizeBeta(1, 100) = %g, want 1", got)
	}
	if got := NormalizeBeta(1, 50); got != 0.5 {
		t.Errorf("NormalizeBeta(1, 50) = %g, want 0.5", got)
	}
	if got := NormalizeBeta(2, 200); got != 4 {
		t.Errorf("NormalizeBeta(2, 200) = %g, want 4", got)
	}
}
