package plateau

import (
	"math"
	"math/rand/v2"
	"testing"

	"stochsyn/internal/search"
)

func tp(iter int64, cost float64) search.TracePoint {
	return search.TracePoint{Iteration: iter, Cost: cost}
}

func TestDetectSinglePlateau(t *testing.T) {
	trace := []search.TracePoint{tp(1, 100), tp(5000, 0)}
	ps := Detect(trace, 0)
	if len(ps) != 2 {
		t.Fatalf("got %d plateaus, want 2", len(ps))
	}
	if ps[0].Cost != 100 || ps[0].Start != 1 || ps[0].End != 5000 {
		t.Errorf("first plateau %+v", ps[0])
	}
	if ps[1].Cost != 0 {
		t.Errorf("final plateau cost %g", ps[1].Cost)
	}
}

func TestDetectIgnoresUpwardFluctuations(t *testing.T) {
	// Cost wiggles up and back down around 50 before improving: the
	// fluctuation must not split the plateau.
	trace := []search.TracePoint{
		tp(1, 100), tp(10, 50), tp(20, 55), tp(30, 50),
		tp(4000, 10), tp(9000, 0),
	}
	ps := Detect(trace, 0)
	var costs []float64
	for _, p := range ps {
		costs = append(costs, p.Cost)
	}
	want := []float64{100, 50, 10, 0}
	if len(costs) != len(want) {
		t.Fatalf("plateau costs %v, want %v", costs, want)
	}
	for i := range want {
		if costs[i] != want[i] {
			t.Fatalf("plateau costs %v, want %v", costs, want)
		}
	}
	// The cost-50 plateau spans through the fluctuation.
	if ps[1].Start != 10 || ps[1].End != 4000 {
		t.Errorf("fluctuating plateau %+v, want span [10, 4000]", ps[1])
	}
}

func TestDetectMergesShortPlateaus(t *testing.T) {
	// Transitional costs shorter than minLen disappear.
	trace := []search.TracePoint{
		tp(1, 100), tp(1000, 60), tp(1005, 40), tp(5000, 0),
	}
	ps := Detect(trace, 100)
	for _, p := range ps[:len(ps)-1] {
		if p.Len() < 100 {
			t.Errorf("short plateau survived: %+v", p)
		}
	}
}

func TestDetectEmpty(t *testing.T) {
	if ps := Detect(nil, 10); ps != nil {
		t.Errorf("Detect(nil) = %v", ps)
	}
}

func TestCostAt(t *testing.T) {
	trace := []search.TracePoint{tp(10, 100), tp(50, 30), tp(90, 0)}
	cases := []struct {
		iter int64
		want float64
	}{
		{5, math.NaN()},
		{10, 100},
		{49, 100},
		{50, 30},
		{89, 30},
		{90, 0},
		{1000, 0},
	}
	for _, tc := range cases {
		got := CostAt(trace, tc.iter)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("CostAt(%d) = %g, want NaN", tc.iter, got)
			}
			continue
		}
		if got != tc.want {
			t.Errorf("CostAt(%d) = %g, want %g", tc.iter, got, tc.want)
		}
	}
}

func TestBuildChart(t *testing.T) {
	runs := []RunTrace{
		{Trace: []search.TracePoint{tp(1, 100), tp(100, 50), tp(1000, 0)}, Finished: true, FinishIter: 1000},
		{Trace: []search.TracePoint{tp(1, 100), tp(10000, 80)}, Finished: false},
	}
	ch := BuildChart(runs, 30, 10)
	if ch.Density == nil {
		t.Fatal("no density grid")
	}
	if len(ch.Density) != 10 || len(ch.Density[0]) != 30 {
		t.Fatalf("grid is %dx%d", len(ch.Density), len(ch.Density[0]))
	}
	total := 0
	for _, row := range ch.Density {
		for _, d := range row {
			total += d
		}
	}
	if total == 0 {
		t.Error("empty density")
	}
	if len(ch.Finishes) != 1 {
		t.Errorf("%d finish marks, want 1", len(ch.Finishes))
	}
	if ch.CostMin != 0 || ch.CostMax != 100 {
		t.Errorf("cost range [%g, %g], want [0, 100]", ch.CostMin, ch.CostMax)
	}
}

func TestBuildChartEmpty(t *testing.T) {
	ch := BuildChart(nil, 10, 10)
	if ch.Density != nil {
		t.Error("expected nil density for no runs")
	}
	ch2 := BuildChart([]RunTrace{{}}, 10, 10)
	if ch2.Density != nil {
		t.Error("expected nil density for empty traces")
	}
}

func TestChartCostBinClamped(t *testing.T) {
	ch := &Chart{YBins: 10, CostMin: 0, CostMax: 100}
	if b := ch.costBin(-5); b != 0 {
		t.Errorf("costBin(-5) = %d", b)
	}
	if b := ch.costBin(500); b != 9 {
		t.Errorf("costBin(500) = %d", b)
	}
	if b := ch.costBin(55); b != 5 {
		t.Errorf("costBin(55) = %d", b)
	}
}

func TestLevels(t *testing.T) {
	// Three runs over two cost levels (100 and 50), with slightly
	// jittered costs that must merge under the tolerance.
	plateaus := [][]Plateau{
		{{Cost: 100, Start: 1, End: 101}, {Cost: 50, Start: 101, End: 301}, {Cost: 0, Start: 301, End: 301}},
		{{Cost: 100.4, Start: 1, End: 201}, {Cost: 49.8, Start: 201, End: 501}},
		{{Cost: 100, Start: 1, End: 151}},
	}
	levels := Levels(plateaus, 1.0)
	if len(levels) != 2 {
		t.Fatalf("got %d levels: %+v", len(levels), levels)
	}
	if levels[0].Cost != 100 || levels[0].Count != 3 {
		t.Errorf("level 0: %+v", levels[0])
	}
	if levels[1].Count != 2 {
		t.Errorf("level 1: %+v", levels[1])
	}
	// Exit probability is the reciprocal of the mean duration.
	wantMean := (101.0 + 201 + 151) / 3
	if math.Abs(levels[0].MeanLen-wantMean) > 1e-9 {
		t.Errorf("mean len %g, want %g", levels[0].MeanLen, wantMean)
	}
	if math.Abs(levels[0].ExitProb-1/wantMean) > 1e-12 {
		t.Errorf("exit prob %g", levels[0].ExitProb)
	}
	// Zero-cost plateaus are excluded.
	for _, l := range levels {
		if l.Cost == 0 {
			t.Error("absorbing level included")
		}
	}
}

func TestLevelsGeometricFit(t *testing.T) {
	// Durations drawn from a geometric distribution should fit well.
	rng := rand.New(rand.NewPCG(5, 6))
	var plateaus [][]Plateau
	for i := 0; i < 200; i++ {
		d := int64(1)
		for rng.Float64() > 0.01 {
			d++
		}
		plateaus = append(plateaus, []Plateau{{Cost: 10, Start: 0, End: d}})
	}
	levels := Levels(plateaus, 0.5)
	if len(levels) != 1 {
		t.Fatalf("got %d levels", len(levels))
	}
	if levels[0].GeomKS > 0.1 {
		t.Errorf("geometric KS %g too large for geometric data", levels[0].GeomKS)
	}
}
