// Package plateau analyzes the plateau structure of stochastic
// searches (Section 4 of the paper): detection of plateaus — periods
// of a search that fluctuate around a fixed cost — from recorded cost
// traces, and construction of plateau charts (Figures 1, 7, and 11),
// which bin the cost of many independent runs against the logarithm of
// the iteration count.
package plateau

import (
	"math"

	"stochsyn/internal/search"
)

// Plateau is one detected plateau of a single run.
type Plateau struct {
	// Cost is the plateau's level: the best cost achieved during it.
	Cost float64
	// Start and End are the first and last iteration of the span.
	Start, End int64
}

// Len returns the plateau's length in iterations.
func (p Plateau) Len() int64 { return p.End - p.Start }

// Detect segments a cost trace into plateaus. A plateau is a maximal
// span during which the best-so-far cost does not improve; upward
// fluctuations (temporarily accepted cost increases) are attributed to
// the plateau they depart from, matching the paper's description of
// searches that "fluctuate around a fixed cost". Spans shorter than
// minLen iterations are merged into their successor, so brief
// transitional costs do not register as plateaus.
func Detect(trace []search.TracePoint, minLen int64) []Plateau {
	if len(trace) == 0 {
		return nil
	}
	var out []Plateau
	best := math.Inf(1)
	for i, tp := range trace {
		if tp.Cost >= best {
			continue // still on the current plateau
		}
		// Strict improvement: close the previous plateau and open a
		// new one at this cost.
		if n := len(out); n > 0 {
			out[n-1].End = tp.Iteration
		}
		best = tp.Cost
		out = append(out, Plateau{Cost: best, Start: tp.Iteration, End: tp.Iteration})
		if i == len(trace)-1 {
			break
		}
	}
	if n := len(out); n > 0 && out[n-1].End < trace[len(trace)-1].Iteration {
		out[n-1].End = trace[len(trace)-1].Iteration
	}
	// Merge too-short plateaus into their successors (they were
	// transitional).
	if minLen > 0 {
		w := 0
		for i := 0; i < len(out); i++ {
			if out[i].Len() >= minLen || i == len(out)-1 {
				out[w] = out[i]
				w++
			}
		}
		out = out[:w]
	}
	return out
}

// CostAt evaluates a trace as a step function: the cost in effect at
// the given iteration (the cost of the latest trace point at or before
// it). It returns NaN before the first point.
func CostAt(trace []search.TracePoint, iter int64) float64 {
	cost := math.NaN()
	for _, tp := range trace {
		if tp.Iteration > iter {
			break
		}
		cost = tp.Cost
	}
	return cost
}

// RunTrace is one run's input to a plateau chart.
type RunTrace struct {
	Trace []search.TracePoint
	// Finished reports whether the run reached cost zero; FinishIter
	// is the iteration at which it did.
	Finished   bool
	FinishIter int64
}

// Chart is a binned plateau chart: Density[y][x] counts how many runs
// had a cost in bin y at (log-scaled) iteration bin x, with y = 0 the
// lowest cost. Finish marks, one per finished run, give the chart's
// dots (the successful ends of synthesis runs).
type Chart struct {
	XBins, YBins int
	// LogMin and LogMax bound the x axis in log10(iterations).
	LogMin, LogMax float64
	// CostMin and CostMax bound the y axis.
	CostMin, CostMax float64
	Density          [][]int
	// Finishes holds log10(finish iteration) for each finished run.
	Finishes []float64
}

// BuildChart bins many runs' traces into a plateau chart with the
// given resolution. Runs with empty traces are skipped.
func BuildChart(runs []RunTrace, xBins, yBins int) *Chart {
	ch := &Chart{XBins: xBins, YBins: yBins}
	ch.LogMin, ch.LogMax = math.Inf(1), math.Inf(-1)
	ch.CostMin, ch.CostMax = math.Inf(1), math.Inf(-1)
	any := false
	for _, r := range runs {
		if len(r.Trace) == 0 {
			continue
		}
		any = true
		last := r.Trace[len(r.Trace)-1].Iteration
		if r.Finished && r.FinishIter > last {
			last = r.FinishIter
		}
		ch.LogMax = math.Max(ch.LogMax, math.Log10(float64(maxI64(last, 1))))
		ch.LogMin = math.Min(ch.LogMin, 0) // iteration 1
		for _, tp := range r.Trace {
			ch.CostMin = math.Min(ch.CostMin, tp.Cost)
			ch.CostMax = math.Max(ch.CostMax, tp.Cost)
		}
	}
	if !any {
		return ch
	}
	if ch.CostMax == ch.CostMin {
		ch.CostMax = ch.CostMin + 1
	}
	if ch.LogMax <= ch.LogMin {
		ch.LogMax = ch.LogMin + 1
	}
	ch.Density = make([][]int, yBins)
	for y := range ch.Density {
		ch.Density[y] = make([]int, xBins)
	}
	for _, r := range runs {
		if len(r.Trace) == 0 {
			continue
		}
		end := r.Trace[len(r.Trace)-1].Iteration
		if r.Finished {
			end = r.FinishIter
			ch.Finishes = append(ch.Finishes, math.Log10(float64(maxI64(end, 1))))
		}
		for x := 0; x < xBins; x++ {
			// Midpoint of the x bin in log space.
			lg := ch.LogMin + (ch.LogMax-ch.LogMin)*(float64(x)+0.5)/float64(xBins)
			iter := int64(math.Pow(10, lg))
			if iter > end {
				break
			}
			c := CostAt(r.Trace, iter)
			if math.IsNaN(c) {
				continue
			}
			y := ch.costBin(c)
			ch.Density[y][x]++
		}
	}
	return ch
}

func (ch *Chart) costBin(c float64) int {
	y := int(float64(ch.YBins) * (c - ch.CostMin) / (ch.CostMax - ch.CostMin))
	if y < 0 {
		y = 0
	}
	if y >= ch.YBins {
		y = ch.YBins - 1
	}
	return y
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
