package plateau

import (
	"math"
	"sort"

	"stochsyn/internal/stats"
)

// Level aggregates the plateaus observed at one cost level across many
// runs of the same problem, quantifying the Section 4.1 analysis: the
// time to leave a plateau is approximately geometric, so the level's
// exit probability is estimated as 1/mean(duration), and the KS
// distance of the durations against that geometric reports how well
// the single-exit-rate model fits.
type Level struct {
	// Cost is the plateau cost level.
	Cost float64
	// Count is the number of plateau visits observed at this level.
	Count int
	// MeanLen and MedianLen summarize visit durations in iterations.
	MeanLen, MedianLen float64
	// ExitProb is the estimated per-iteration probability of leaving
	// the plateau (1/MeanLen).
	ExitProb float64
	// GeomKS is the Kolmogorov-Smirnov distance of the durations
	// against Geometric(ExitProb); NaN with fewer than 5 visits.
	GeomKS float64
}

// Levels groups the detected plateaus of many runs by cost level
// (levels closer than tol merge, taking the first-seen representative
// cost) and returns per-level statistics sorted by descending cost.
// The final zero-cost "plateau" (the absorbing solution) is excluded.
func Levels(plateaus [][]Plateau, tol float64) []Level {
	reps := []float64{}
	durations := map[int][]float64{}
	find := func(c float64) int {
		for i, r := range reps {
			if math.Abs(r-c) <= tol {
				return i
			}
		}
		reps = append(reps, c)
		return len(reps) - 1
	}
	for _, runPs := range plateaus {
		for _, p := range runPs {
			if p.Cost == 0 {
				continue
			}
			i := find(p.Cost)
			durations[i] = append(durations[i], float64(p.Len())+1)
		}
	}
	out := make([]Level, 0, len(reps))
	for i, c := range reps {
		d := durations[i]
		mean := stats.Mean(d)
		lvl := Level{
			Cost:      c,
			Count:     len(d),
			MeanLen:   mean,
			MedianLen: stats.Median(d),
			ExitProb:  1 / mean,
			GeomKS:    math.NaN(),
		}
		if len(d) >= 5 {
			lvl.GeomKS = stats.KSDistance(d, stats.Geometric{P: lvl.ExitProb})
		}
		out = append(out, lvl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost > out[j].Cost })
	return out
}
