// Package textplot renders the experiment outputs as plain text: line
// charts for the β sweeps and cactus plots, density heat maps for the
// plateau charts, histograms for the distribution fits, and CSV
// writers so external tooling can re-plot everything.
package textplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// shades orders the density glyphs from sparse to dense.
var shades = []rune{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// Heat renders a density grid (rows indexed bottom-up) as an ASCII
// heat map with the given axis labels. Density[y][x] with y = 0 at the
// bottom of the plot.
func Heat(w io.Writer, density [][]int, xlabel, ylabel string) {
	if len(density) == 0 {
		fmt.Fprintln(w, "(empty chart)")
		return
	}
	maxD := 0
	for _, row := range density {
		for _, d := range row {
			if d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	for y := len(density) - 1; y >= 0; y-- {
		var sb strings.Builder
		sb.WriteString("  |")
		for _, d := range density[y] {
			idx := 0
			if d > 0 {
				idx = 1 + int(float64(len(shades)-2)*math.Log1p(float64(d))/math.Log1p(float64(maxD)))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			sb.WriteRune(shades[idx])
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", len(density[0])))
	fmt.Fprintf(w, "   x: %s, y: %s, peak density %d\n", xlabel, ylabel, maxD)
}

// sparkRunes orders the sparkline glyphs from low to high.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line unicode sparkline scaled to the
// finite min..max of the series. When width > 0 and the series is
// longer, it is downsampled to width glyphs by bucket means; width <= 0
// keeps one glyph per value. Non-finite points render as spaces, and a
// series with no finite points renders as the empty string. A flat
// series renders at the lowest glyph.
func Spark(values []float64, width int) string {
	if width > 0 && len(values) > width {
		buckets := make([]float64, width)
		for b := range buckets {
			lo, hi := b*len(values)/width, (b+1)*len(values)/width
			sum, n := 0.0, 0
			for _, v := range values[lo:hi] {
				if finite(v) {
					sum += v
					n++
				}
			}
			if n == 0 {
				buckets[b] = math.NaN()
			} else {
				buckets[b] = sum / float64(n)
			}
		}
		values = buckets
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if finite(v) {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		switch {
		case !finite(v):
			sb.WriteByte(' ')
		case span == 0:
			sb.WriteRune(sparkRunes[0])
		default:
			idx := int(float64(len(sparkRunes)) * (v - lo) / span)
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
			sb.WriteRune(sparkRunes[idx])
		}
	}
	return sb.String()
}

// Series is one named line of a Lines chart.
type Series struct {
	Name string
	X, Y []float64
}

// Lines renders multiple series on a shared log-or-linear grid of the
// given size. Points are marked with the series' index glyph; the
// legend maps glyphs to names. NaN and Inf points are skipped.
func Lines(w io.Writer, series []Series, width, height int, logX, logY bool, xlabel, ylabel string) {
	glyphs := "abcdefghijklmnopqrstuvwxyz"
	tx := func(v float64) float64 {
		if logX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if logY {
			return math.Log10(v)
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := false
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if !finite(x) || !finite(y) {
				continue
			}
			usable = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !usable {
		fmt.Fprintln(w, "(no finite points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if !finite(x) || !finite(y) {
				continue
			}
			cx := int(float64(width-1) * (x - minX) / (maxX - minX))
			cy := int(float64(height-1) * (y - minY) / (maxY - minY))
			grid[cy][cx] = g
		}
	}
	for y := height - 1; y >= 0; y-- {
		fmt.Fprintf(w, "  |%s\n", string(grid[y]))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   x: %s [%.3g, %.3g]%s, y: %s [%.3g, %.3g]%s\n",
		xlabel, untx(minX, logX), untx(maxX, logX), logSuffix(logX),
		ylabel, untx(minY, logY), untx(maxY, logY), logSuffix(logY))
	for si, s := range series {
		fmt.Fprintf(w, "   %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func logSuffix(log bool) string {
	if log {
		return " (log)"
	}
	return ""
}

// Histogram renders counts as a horizontal bar chart with bucket
// labels.
func Histogram(w io.Writer, labels []string, counts []int) {
	maxC := 0
	maxL := 0
	for i, c := range counts {
		if c > maxC {
			maxC = c
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxC == 0 {
		maxC = 1
	}
	for i, c := range counts {
		bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(maxC))))
		fmt.Fprintf(w, "  %-*s %6d %s\n", maxL, labels[i], c, bar)
	}
}

// Table renders rows with aligned columns; the first row is treated as
// the header.
func Table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var sb strings.Builder
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		if ri == 0 {
			fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
		}
	}
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// CSV writes rows as comma-separated values, quoting cells that need
// it. It is intentionally minimal (no embedded newlines expected).
func CSV(w io.Writer, rows [][]string) error {
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			cells[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// FormatFloat renders a float compactly for tables.
func FormatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "-"
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return strconv(v)
	}
}

// strconv trims trailing zeros from a fixed rendering.
func strconv(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// SortedKeys returns map keys in sorted order (a small convenience for
// deterministic report output).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
