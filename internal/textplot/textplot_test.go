package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestHeat(t *testing.T) {
	var sb strings.Builder
	density := [][]int{
		{0, 1, 2},
		{3, 0, 0},
	}
	Heat(&sb, density, "iters", "cost")
	out := sb.String()
	if !strings.Contains(out, "peak density 3") {
		t.Errorf("missing peak annotation:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Two rows + separator + label line.
	if len(lines) != 4 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestHeatEmpty(t *testing.T) {
	var sb strings.Builder
	Heat(&sb, nil, "x", "y")
	if !strings.Contains(sb.String(), "empty") {
		t.Error("empty chart not flagged")
	}
}

func TestLines(t *testing.T) {
	var sb strings.Builder
	Lines(&sb, []Series{
		{Name: "one", X: []float64{1, 10, 100}, Y: []float64{0.9, 0.5, 0.1}},
		{Name: "two", X: []float64{1, 10, 100}, Y: []float64{0.8, 0.4, 0.2}},
	}, 40, 10, true, false, "beta", "fail rate")
	out := sb.String()
	if !strings.Contains(out, "a = one") || !strings.Contains(out, "b = two") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "(log)") {
		t.Error("log axis annotation missing")
	}
}

func TestLinesSkipsNonFinite(t *testing.T) {
	var sb strings.Builder
	Lines(&sb, []Series{
		{Name: "bad", X: []float64{1, 2}, Y: []float64{math.Inf(1), math.NaN()}},
	}, 20, 5, false, false, "x", "y")
	if !strings.Contains(sb.String(), "no finite points") {
		t.Error("all-non-finite series not flagged")
	}
}

func TestHistogram(t *testing.T) {
	var sb strings.Builder
	Histogram(&sb, []string{"geometric", "lognormal"}, []int{2, 8})
	out := sb.String()
	if !strings.Contains(out, "geometric") || !strings.Contains(out, "########") {
		t.Errorf("histogram malformed:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	Table(&sb, [][]string{
		{"name", "value"},
		{"alpha", "1"},
		{"bb", "22"},
	})
	out := sb.String()
	if !strings.Contains(out, "name") || !strings.Contains(out, "alpha") {
		t.Errorf("table missing cells:\n%s", out)
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Error("missing header rule")
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, [][]string{
		{"a", "b"},
		{"plain", `quo"ted,value`},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"quo\"\"ted,value\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1.5, "1.5"},
		{1.50001, "1.5"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{math.NaN(), "-"},
		{1234567, "1.23e+06"},
		{0.0001, "0.0001"},
	}
	for _, tc := range cases {
		if got := FormatFloat(tc.v); got != tc.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys = %v", got)
		}
	}
}

func TestSpark(t *testing.T) {
	cases := []struct {
		name   string
		values []float64
		width  int
		want   string
	}{
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7}, 0, "▁▂▃▄▅▆▇█"},
		{"descending", []float64{7, 0}, 0, "█▁"},
		{"flat", []float64{3, 3, 3}, 0, "▁▁▁"},
		{"single", []float64{42}, 0, "▁"},
		{"empty", nil, 0, ""},
		{"all-nan", []float64{math.NaN(), math.Inf(1)}, 0, ""},
		{"nan-gap", []float64{0, math.NaN(), 7}, 0, "▁ █"},
	}
	for _, tc := range cases {
		if got := Spark(tc.values, tc.width); got != tc.want {
			t.Errorf("%s: Spark(%v, %d) = %q, want %q", tc.name, tc.values, tc.width, got, tc.want)
		}
	}
}

func TestSparkDownsamples(t *testing.T) {
	values := make([]float64, 1000)
	for i := range values {
		values[i] = float64(i)
	}
	got := Spark(values, 10)
	if n := len([]rune(got)); n != 10 {
		t.Fatalf("Spark width = %d glyphs, want 10 (%q)", n, got)
	}
	// Bucket means of an ascending ramp ascend, so the glyphs must be
	// non-decreasing with the extremes at both ends.
	runes := []rune(got)
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("downsampled ramp not monotone: %q", got)
		}
	}
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Fatalf("ramp extremes wrong: %q", got)
	}
	// Short series pass through untouched.
	if got := Spark([]float64{0, 7}, 10); got != "▁█" {
		t.Fatalf("short series altered: %q", got)
	}
}
