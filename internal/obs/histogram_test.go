package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries is the bucket-boundary table test:
// upper bounds are le-inclusive, values beyond the last bound land in
// +Inf, and cumulative counts accumulate correctly.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{1, 10, 100}
	cases := []struct {
		value  float64
		bucket int // index into counts (len(bounds)+1, last = +Inf)
	}{
		{math.Inf(-1), 0},
		{-5, 0},
		{0, 0},
		{0.999, 0},
		{1, 0}, // boundary: le-inclusive
		{1.0000001, 1},
		{9.99, 1},
		{10, 1}, // boundary
		{10.01, 2},
		{100, 2}, // boundary
		{100.01, 3},
		{1e9, 3},
		{math.Inf(1), 3},
	}
	for _, tc := range cases {
		h := newHistogram("", bounds)
		h.Observe(tc.value)
		for i := range h.counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%g): bucket[%d] = %d, want %d", tc.value, i, got, want)
			}
		}
	}

	h := newHistogram("", bounds)
	for _, tc := range cases {
		h.Observe(tc.value)
	}
	h.Observe(math.NaN()) // dropped
	upper, cum := h.Snapshot()
	if len(upper) != 4 || !math.IsInf(upper[3], 1) {
		t.Fatalf("snapshot upper = %v", upper)
	}
	wantCum := []uint64{5, 8, 10, 13}
	for i, w := range wantCum {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 13 {
		t.Errorf("count = %d, want 13", h.Count())
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", []float64{0.5, 2}, "route", "/x")
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(99)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`test_lat_seconds_bucket{route="/x",le="0.5"} 1`,
		`test_lat_seconds_bucket{route="/x",le="2"} 2`,
		`test_lat_seconds_bucket{route="/x",le="+Inf"} 3`,
		`test_lat_seconds_sum{route="/x"} 100.5`,
		`test_lat_seconds_count{route="/x"} 3`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-4, 2, 4)
	want := []float64{1e-4, 2e-4, 4e-4, 8e-4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets with factor <= 1 did not panic")
		}
	}()
	ExpBuckets(1, 1, 3)
}

func TestBucketValidation(t *testing.T) {
	// Trailing +Inf is stripped, not rejected.
	if got := normalizeBuckets("x", []float64{1, 2, math.Inf(1)}); len(got) != 2 {
		t.Fatalf("trailing +Inf not stripped: %v", got)
	}
	for _, bad := range [][]float64{
		{},
		{2, 1},
		{1, 1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("buckets %v did not panic", bad)
				}
			}()
			normalizeBuckets("x", bad)
		}()
	}
}
