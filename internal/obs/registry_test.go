package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "kind", "a")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters never decrease
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value = %g, want 3", got)
	}
	if again := r.Counter("test_ops_total", "kind", "a"); again != c {
		t.Fatal("get-or-create returned a different handle for the same series")
	}
	if other := r.Counter("test_ops_total", "kind", "b"); other == c {
		t.Fatal("distinct label sets must be distinct series")
	}

	g := r.Gauge("test_depth")
	if !math.IsNaN(g.Value()) {
		t.Fatalf("fresh gauge = %g, want NaN", g.Value())
	}
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge value = %g, want 2.5", got)
	}
	g.SetMin(7) // higher: ignored
	if got := g.Value(); got != 2.5 {
		t.Fatalf("SetMin raised the gauge to %g", got)
	}
	g.SetMin(1)
	if got := g.Value(); got != 1 {
		t.Fatalf("SetMin value = %g, want 1", got)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var reg *Registry
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	g.SetMin(1)
	h.Observe(1)
	tr.Emit("x", nil)
	if tr.Events() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer returned events")
	}
	if reg.Counter("x") != nil || reg.Gauge("x") != nil || reg.Histogram("x", nil) != nil {
		t.Fatal("nil registry returned live handles")
	}
	if err := reg.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var sh *SearchHooks
	if sh.WithID(3) != nil || sh.ProposedFor(0) != nil || sh.AcceptedFor(0) != nil {
		t.Fatal("nil SearchHooks not inert")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_mixed")
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter family as a gauge did not panic")
		}
	}()
	r.Gauge("test_mixed")
}

func TestLabelRendering(t *testing.T) {
	r := NewRegistry()
	// Keys sort canonically: the same set in any order is one series.
	a := r.Counter("test_l_total", "b", "2", "a", "1")
	b := r.Counter("test_l_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order created distinct series")
	}
	r.Counter("test_esc_total", "msg", "a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `test_esc_total{msg="a\"b\\c\nd"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", sb.String())
	}
}

// expositionLine matches a valid sample line of the text format.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)

// CheckExposition validates Prometheus text output: every line is a
// comment or a well-formed sample, and no series repeats. Shared with
// the server tests via this exported-in-test helper pattern.
func checkExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	series := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("empty exposition line")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if series[key] {
			t.Fatalf("duplicate series %q", key)
		}
		series[key] = true
	}
	return series
}

func TestWritePromDeterministicAndValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "x", "1").Add(2)
	r.Counter("test_b_total", "x", "2").Add(3)
	r.Counter("test_a_total").Inc()
	r.Gauge("test_g").Set(1.25)
	r.GaugeFunc("test_fn", func() float64 { return 9 })
	r.Histogram("test_h_seconds", []float64{0.1, 1}).Observe(0.5)
	r.SetHelp("test_a_total", "first\nsecond")
	RegisterRuntimeMetrics(r)

	var sb1, sb2 strings.Builder
	if err := r.WriteProm(&sb1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb1.String() != sb2.String() {
		t.Fatal("exposition is not deterministic")
	}
	body := sb1.String()
	series := checkExposition(t, body)
	for _, want := range []string{
		`test_a_total`,
		`test_b_total{x="1"}`,
		`test_b_total{x="2"}`,
		`test_g`,
		`test_fn`,
		`test_h_seconds_bucket{le="0.1"}`,
		`test_h_seconds_bucket{le="+Inf"}`,
		`test_h_seconds_sum`,
		`test_h_seconds_count`,
		`go_goroutines`,
	} {
		if !series[want] {
			t.Errorf("exposition is missing series %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "# TYPE test_h_seconds histogram") {
		t.Error("missing histogram TYPE line")
	}
	if !strings.Contains(body, "# HELP test_a_total first second") {
		t.Error("HELP newline not flattened")
	}
	// Families must appear sorted.
	ia := strings.Index(body, "# TYPE test_a_total")
	ib := strings.Index(body, "# TYPE test_b_total")
	if ia < 0 || ib < 0 || ia > ib {
		t.Error("families are not sorted by name")
	}
}

// TestRegistryConcurrency exercises the sharded registry under the
// race detector: concurrent get-or-create of hot and cold series,
// concurrent updates on shared handles, and concurrent collection.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines + 2)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			mine := r.Counter("test_cc_total", "g", string(rune('a'+g)))
			shared := r.Counter("test_shared_total")
			gauge := r.Gauge("test_cc_gauge")
			hist := r.Histogram("test_cc_seconds", []float64{0.001, 0.01, 0.1, 1})
			for i := 0; i < perG; i++ {
				mine.Inc()
				shared.Inc()
				gauge.Set(float64(i))
				gauge.SetMin(float64(-i))
				hist.Observe(float64(i%7) / 50)
			}
		}(g)
	}
	for c := 0; c < 2; c++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if err := r.WriteProm(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test_shared_total").Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %g, want %d (lost updates)", got, goroutines*perG)
	}
	if got := r.Histogram("test_cc_seconds", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := r.Counter("test_cc_total", "g", string(rune('a'+g))).Value(); got != perG {
			t.Fatalf("per-goroutine counter %d = %g, want %d", g, got, perG)
		}
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "a b", "a-b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd label pairs did not panic")
			}
		}()
		r.Counter("test_ok_total", "onlykey")
	}()
}
