package obs

// PlateauDetector is a windowed cost-delta detector for search cost
// trajectories: when the observed cost has not changed for at least
// Window iterations, the search is declared to be on a plateau; the
// next cost change exits it. It deliberately works on *sampled*
// observations (the search loop feeds it at its amortized flush
// points, every few thousand iterations), so entry/exit iteration
// numbers are accurate to one flush interval — plenty for plateau
// dwell times, which the paper shows dominate synthesis time
// (Section 4.1).
//
// The detector is plain single-goroutine state owned by one search;
// it allocates nothing and is safe to embed in hot-loop structs.
type PlateauDetector struct {
	// Window is the minimum number of iterations without a cost
	// change before a plateau is declared. Zero selects
	// DefaultPlateauWindow.
	Window int64

	init       bool
	lastCost   float64
	lastChange int64 // iteration of the last observed cost change
	in         bool
	enteredAt  int64
	count      int64
}

// DefaultPlateauWindow is the default plateau window in iterations.
const DefaultPlateauWindow = 1 << 16

// Observe feeds one sampled (iteration, cost) point. It reports
// whether this observation entered a plateau, whether it exited one,
// and — on exit — the plateau's dwell time in iterations.
func (d *PlateauDetector) Observe(iter int64, cost float64) (entered, exited bool, dwell int64) {
	w := d.Window
	if w <= 0 {
		w = DefaultPlateauWindow
	}
	if !d.init {
		d.init = true
		d.lastCost = cost
		d.lastChange = iter
		return false, false, 0
	}
	if cost != d.lastCost {
		if d.in {
			exited = true
			dwell = iter - d.enteredAt
			d.in = false
		}
		d.lastCost = cost
		d.lastChange = iter
		return false, exited, dwell
	}
	if !d.in && iter-d.lastChange >= w {
		d.in = true
		// The plateau began at the last cost change, not at the
		// detection point.
		d.enteredAt = d.lastChange
		d.count++
		return true, false, 0
	}
	return false, false, 0
}

// InPlateau reports whether the detector currently sees a plateau.
func (d *PlateauDetector) InPlateau() bool { return d.in }

// Count returns the number of plateaus entered so far.
func (d *PlateauDetector) Count() int64 { return d.count }

// Cost returns the cost level of the current or last plateau state
// (the last observed cost).
func (d *PlateauDetector) Cost() float64 { return d.lastCost }
