package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// DefaultSubscriberBuf is the channel buffer ServeEventStream gives
// its subscription: enough to ride out a slow client's TCP stall for
// a burst of events without blocking the emitter.
const DefaultSubscriberBuf = 256

// ServeEventStream streams t's events to w as Server-Sent Events
// (text/event-stream): each event is written as an `id:` line (the
// tracer Seq), an `event:` line (the event name), and a `data:` line
// (the Event as JSON). The stream starts with a replay of the ring
// buffer — resumable: a `Last-Event-ID` request header (a Seq) skips
// everything at or before it, so a reconnecting client sees no
// duplicates — then follows the live feed. It ends when an event
// named terminal is sent (after sending it), when the client
// disconnects, or when the subscription is closed; the subscription
// is always released on return. A malformed Last-Event-ID is a 400.
//
// Events the ring has already overwritten at replay time are gone
// (Seq gaps tell the client); events the live buffer cannot absorb
// are dropped, never blocking the emitter (the tracer counts them).
func ServeEventStream(w http.ResponseWriter, r *http.Request, t *Tracer, terminal string) {
	var after uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "events: malformed Last-Event-ID: want a sequence number", http.StatusBadRequest)
			return
		}
		after = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "events: streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// Subscribe before snapshotting the ring: an event emitted between
	// the two shows up in both, and the Seq watermark dedupes it; the
	// reverse order would lose it entirely.
	sub := t.Subscribe(DefaultSubscriberBuf)
	defer t.Unsubscribe(sub)

	last := after
	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Name, data); err != nil {
			return false
		}
		fl.Flush()
		last = ev.Seq
		return terminal == "" || ev.Name != terminal
	}
	for _, ev := range t.Events() {
		if ev.Seq <= after {
			continue
		}
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if ev.Seq <= last {
				continue
			}
			if !send(ev) {
				return
			}
		}
	}
}
