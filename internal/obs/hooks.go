package obs

// This file defines the hook bundles that instrumented components
// accept: pre-resolved metric handles grouped per subsystem, so the
// hot paths never touch the registry maps. The bundles are plain
// data — package obs knows nothing about searches or restart
// strategies; the packages that own those concepts construct the
// bundles (search.NewObsHooks, restart.NewObsHooks) with the
// stochsyn_* metric names and move/strategy labels filled in.

// SearchHooks instruments one family of search runs (all searches
// spawned by one factory share the bundle; each search gets a clone
// with its own ID via WithID). All fields are optional: nil handles
// drop updates, a nil Tracer drops events, and a nil *SearchHooks
// disables instrumentation entirely.
//
// The search loop flushes into these handles in batches (every
// search.CancelCheckEvery iterations and at every Step boundary), so
// readers see counters that may lag the loop by one flush interval
// but are always mutually consistent at Step boundaries.
type SearchHooks struct {
	// Iterations counts executed search-loop iterations.
	Iterations *Counter
	// Proposed and Accepted count move proposals and acceptances,
	// indexed by the move's ordinal (mutate.Move). Slices shorter
	// than the move count simply drop the excess ordinals.
	Proposed []*Counter
	Accepted []*Counter
	// CurCost is a live gauge of the most recently flushed search
	// cost (last writer wins across concurrent searches).
	CurCost *Gauge
	// BestCost tracks the minimum cost ever flushed (SetMin).
	BestCost *Gauge
	// Plateaus counts plateau entries across all searches.
	Plateaus *Counter
	// PlateauWindow overrides the detector window (0 = default).
	PlateauWindow int64
	// EvalNodesReevaluated and EvalNodesTotal count, respectively,
	// node value columns the incremental evaluation engine actually
	// recomputed and the columns a full re-evaluation would have
	// computed; 1 - reevaluated/total is the engine's column reuse
	// rate. EvalCasesEvaluated and EvalCasesTotal do the same for
	// suite cases, exposing the early-abort saving. All four stay at
	// zero under Options.LegacyEval.
	EvalNodesReevaluated *Counter
	EvalNodesTotal       *Counter
	EvalCasesEvaluated   *Counter
	EvalCasesTotal       *Counter
	// PlanCompiles and PlanCacheHits count, respectively, full tape
	// compiles the plan engine performed and the full compiles it
	// avoided by re-binding a cached recipe (restarts and checkpoint
	// restores re-seed from previously seen shapes constantly).
	// PlanPatches counts dirty tape entries re-lowered incrementally
	// across proposals, and PlanFusedNodes counts nodes lowered to a
	// fused form (constant-folded whole or an immediate-operand kernel
	// variant). All four stay at zero unless the compiled plan engine
	// is in use (the default; see search.Options.InterpEval).
	PlanCompiles   *Counter
	PlanCacheHits  *Counter
	PlanPatches    *Counter
	PlanFusedNodes *Counter
	// PruneChecked and PruneRejected count abstract-interpretation
	// prune probes and the proposals they rejected before evaluation;
	// PruneUnsound counts rejections the concrete re-check disproved
	// (always zero unless the abstract domains are unsound). All three
	// stay at zero without Options.Prune.
	PruneChecked  *Counter
	PruneRejected *Counter
	PruneUnsound  *Counter
	// Tracer receives plateau_enter/plateau_exit events and — when
	// SampleCosts is set — a search_cost trajectory point per flush.
	Tracer *Tracer
	// SampleCosts enables sampled cost-trajectory events.
	SampleCosts bool
	// ID identifies the search within trace events; factories stamp
	// it per search via WithID.
	ID uint64
}

// WithID returns a copy of h with the per-search ID set (nil-safe:
// returns nil for a nil receiver, keeping factories branch-free).
func (h *SearchHooks) WithID(id uint64) *SearchHooks {
	if h == nil {
		return nil
	}
	c := *h
	c.ID = id
	return &c
}

// ProposedFor returns the proposal counter for a move ordinal, or nil.
func (h *SearchHooks) ProposedFor(move int) *Counter {
	if h == nil || move < 0 || move >= len(h.Proposed) {
		return nil
	}
	return h.Proposed[move]
}

// AcceptedFor returns the acceptance counter for a move ordinal, or nil.
func (h *SearchHooks) AcceptedFor(move int) *Counter {
	if h == nil || move < 0 || move >= len(h.Accepted) {
		return nil
	}
	return h.Accepted[move]
}

// RestartHooks instruments one restart-strategy execution. As with
// SearchHooks, every field is optional and a nil *RestartHooks
// disables instrumentation.
type RestartHooks struct {
	// Restarts counts searches started by the strategy (the first
	// search counts: it is restart zero). The handle carries the
	// strategy label, e.g. stochsyn_restarts_total{strategy="luby"}.
	Restarts *Counter
	// CutoffIters observes the iteration grant handed to a search
	// each time the strategy (re)schedules one — cutoff lengths for
	// the sequential strategies, per-visit grants for the tree.
	CutoffIters *Histogram
	// Swaps counts adaptive tree promotions.
	Swaps *Counter
	// Passes counts doubling passes of the tree strategies.
	Passes *Counter
	// SpeculatedIters and UsefulIters split the concurrent tree
	// executor's spent budget (from ExecStats): iterations the
	// sequential oracle would not have run vs. those it would.
	SpeculatedIters *Counter
	UsefulIters     *Counter
	// Tracer receives restart_fire, tree_pass, and tree_promote
	// events.
	Tracer *Tracer
}
