package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// SpanContext identifies a node in a trace tree: TraceID names the
// whole tree (one per job, stable across processes — it rides the
// traceparent header when the fleet coordinator forwards to a
// worker), SpanID names this node. The zero value means "no span".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether sc carries both identifiers.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != "" && sc.SpanID != ""
}

// Span identities only need process-wide uniqueness, not
// cryptographic strength: a counter mixed through splitmix64, seeded
// from the clock at startup. Deliberately independent of the search
// RNG — span generation never touches a seed a search draws from, so
// tracing stays strictly passive.
var (
	spanCounter atomic.Uint64
	spanSeed    = uint64(time.Now().UnixNano())
)

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTraceID returns a fresh 32-hex-digit trace identifier.
func NewTraceID() string {
	a := mix64(spanSeed + spanCounter.Add(1))
	b := mix64(a ^ spanSeed)
	return fmt.Sprintf("%016x%016x", a, b)
}

// NewSpanID returns a fresh 16-hex-digit span identifier.
func NewSpanID() string {
	return fmt.Sprintf("%016x", mix64(spanSeed+spanCounter.Add(1)))
}

// FormatTraceParent renders sc as a W3C-traceparent-style header
// value: "00-<trace-id>-<span-id>-01". Empty when sc is not valid.
func FormatTraceParent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceParent parses a traceparent-style header value. It is
// tolerant of unknown versions and flags but strict about shape:
// four dash-separated fields with hex identifiers of the standard
// widths (32 for the trace, 16 for the span). Reports false on
// anything else — callers then mint a fresh trace.
func ParseTraceParent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 {
		return SpanContext{}, false
	}
	if len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	for _, p := range parts[:3] {
		if !isHex(p) {
			return SpanContext{}, false
		}
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if allZero(sc.TraceID) || allZero(sc.SpanID) {
		return SpanContext{}, false
	}
	return sc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// Span is an in-progress operation: created by StartSpan, finished by
// End, which emits one event named after the span carrying its
// duration. The span's context is available immediately (Context), so
// child operations can parent under it before it ends — trace trees
// are assembled from parent_id links, not from nesting in time.
type Span struct {
	t      *Tracer
	name   string
	sc     SpanContext
	parent string
	start  time.Time
}

// StartSpan begins a span named name under the given trace and
// parent. An empty traceID mints a fresh trace (a root span). Works
// on a nil tracer too: identifiers are still generated so context can
// propagate, only the End event is dropped.
func (t *Tracer) StartSpan(name, traceID, parentID string) *Span {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &Span{
		t:      t,
		name:   name,
		sc:     SpanContext{TraceID: traceID, SpanID: NewSpanID()},
		parent: parentID,
		start:  time.Now(),
	}
}

// Context returns the span's identity for propagation to children.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// End emits the span's event with a duration_seconds attribute merged
// into attrs (which may be nil and is retained). Nil-safe; a span may
// be ended once — further calls emit duplicate events.
func (s *Span) End(attrs map[string]any) {
	if s == nil || s.t == nil {
		return
	}
	out := make(map[string]any, len(attrs)+1)
	for k, v := range attrs {
		out[k] = v
	}
	out["duration_seconds"] = time.Since(s.start).Seconds()
	s.t.EmitSpan(s.name, s.sc, s.parent, out)
}
