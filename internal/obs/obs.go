// Package obs is the stdlib-only observability subsystem: a
// lock-sharded metrics registry exposed in Prometheus text format, a
// low-overhead structured event tracer backed by a ring buffer, a
// windowed plateau detector for search cost trajectories, and
// process runtime gauges.
//
// Design constraints (DESIGN.md §8):
//
//   - No dependencies beyond the standard library.
//   - Hot paths never take a lock: metric handles (Counter, Gauge,
//     Histogram) are resolved once through the registry and then
//     updated with plain atomics; the sharded registry locks guard
//     only get-or-create and collection.
//   - Everything is nil-safe. A nil *Counter, *Gauge, *Histogram,
//     *Tracer, *SearchHooks, or *RestartHooks accepts updates as
//     no-ops, so instrumented code needs no conditionals around each
//     update and uninstrumented runs pay (almost) nothing.
//   - Metric names follow the stochsyn_* scheme (plus the go_*
//     runtime gauges) with Prometheus conventions: _total for
//     counters, base units (seconds, bytes, iterations).
//
// The search loop additionally amortizes its updates: package search
// batches counter deltas locally and flushes them to the registry
// every search.CancelCheckEvery iterations, keeping instrumented runs
// bit-identical and within the ~2% overhead budget.
package obs

// Obs bundles a registry and a tracer, the two sinks an instrumented
// component needs. A nil *Obs disables observability entirely.
type Obs struct {
	Reg    *Registry
	Tracer *Tracer
}

// DefaultTraceCap is the default tracer ring capacity.
const DefaultTraceCap = 4096

// New returns an Obs with a fresh registry (runtime gauges
// registered) and a DefaultTraceCap-event tracer.
func New() *Obs {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	return &Obs{Reg: reg, Tracer: NewTracer(DefaultTraceCap)}
}

// Registry returns o's registry, or nil when o is nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Trace returns o's tracer, or nil when o is nil.
func (o *Obs) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}
