package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestTracerRingWraparound fills a small ring past capacity and
// checks that the oldest events fall off while order and sequence
// numbers stay intact.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Emit("e", map[string]any{"i": i})
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for i, ev := range events {
		wantSeq := uint64(7 + i) // events 7..10 survive
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (events: %+v)", i, ev.Seq, wantSeq, events)
		}
		if got := ev.Attrs["i"].(int); got != 7+i {
			t.Fatalf("event %d attr i = %v, want %d", i, got, 7+i)
		}
	}
	// Non-destructive: a second drain sees the same window.
	if again := tr.Events(); len(again) != 4 || again[0].Seq != 7 {
		t.Fatal("Events is not a stable snapshot")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit("a", nil)
	tr.Emit("b", nil)
	events := tr.Events()
	if len(events) != 2 || events[0].Name != "a" || events[1].Name != "b" {
		t.Fatalf("partial fill wrong: %+v", events)
	}
}

func TestTracerSinkJSONL(t *testing.T) {
	var sink strings.Builder
	tr := NewTracer(2)
	tr.SetSink(&sink)
	tr.Emit("restart_fire", map[string]any{"strategy": "luby", "cutoff": 1000})
	tr.Emit("job_finished", map[string]any{"id": "j000001"})
	lines := strings.Split(strings.TrimRight(sink.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink holds %d lines, want 2:\n%s", len(lines), sink.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("sink line is not JSON: %v", err)
	}
	if ev.Name != "restart_fire" || ev.Seq != 1 || ev.TS.IsZero() {
		t.Fatalf("decoded event wrong: %+v", ev)
	}
	if ev.Attrs["cutoff"].(float64) != 1000 {
		t.Fatalf("attrs wrong: %+v", ev.Attrs)
	}
	if tr.SinkErrors() != 0 {
		t.Fatalf("sink errors = %d", tr.SinkErrors())
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Emit("e", nil)
				_ = tr.Events()
			}
		}()
	}
	wg.Wait()
	events := tr.Events()
	if len(events) != 64 {
		t.Fatalf("ring holds %d, want 64", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 6; i++ {
		tr.Emit(fmt.Sprintf("e%d", i), nil)
	}
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp := mustGet(t, srv.URL+"?n=3")
	sc := bufio.NewScanner(strings.NewReader(resp))
	n := 0
	var last Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d is not JSON: %v", n, err)
		}
		n++
	}
	if n != 3 || last.Name != "e5" {
		t.Fatalf("got %d events, last %q; want 3 ending at e5", n, last.Name)
	}
}

func mustGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
