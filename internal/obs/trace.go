package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event is one structured trace record. Events serialize as JSONL:
// one JSON object per line, with a monotone per-tracer sequence
// number so consumers can detect ring-buffer loss (a gap in seq means
// the buffer wrapped between drains).
type Event struct {
	Seq   uint64         `json:"seq"`
	TS    time.Time      `json:"ts"`
	Name  string         `json:"event"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer records events into a fixed-capacity ring buffer, optionally
// teeing each event to a sink (e.g. a -trace file) as JSONL. All
// methods are safe for concurrent use and nil-safe: a nil *Tracer
// drops everything, so instrumentation sites need no guards.
//
// Emission takes a mutex; events are rare relative to search
// iterations (restart fires, plateau transitions, job lifecycle,
// sampled cost points), so this never shows up in profiles — the hot
// loop batches through SearchHooks instead of emitting per iteration.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int  // ring write position
	wrapped bool // buf has wrapped at least once
	seq     uint64
	dropped uint64 // events overwritten before ever being drained is not tracked; this counts sink write failures
	sink    io.Writer
	enc     *json.Encoder
}

// NewTracer returns a tracer with the given ring capacity (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// SetSink tees every subsequent event to w as JSONL (nil disables).
// Writes are best-effort: failures are counted, not propagated.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	if w != nil {
		t.enc = json.NewEncoder(w)
	} else {
		t.enc = nil
	}
}

// Emit records an event with the given name and attributes. The attrs
// map is retained; callers must not mutate it afterwards.
func (t *Tracer) Emit(name string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev := Event{Seq: t.seq, TS: time.Now(), Name: name, Attrs: attrs}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.wrapped = true
	}
	t.next = (t.next + 1) % cap(t.buf)
	if t.enc != nil {
		if err := t.enc.Encode(ev); err != nil {
			t.dropped++
		}
	}
}

// Events returns a snapshot of the buffered events, oldest first. The
// ring is not cleared: /tracez drains are non-destructive, so
// repeated scrapes overlap (dedupe on Seq).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// SinkErrors reports how many events failed to reach the sink.
func (t *Tracer) SinkErrors() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL writes the buffered events (oldest first) to w, one JSON
// object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the ring buffer as JSONL at GET (the /tracez
// endpoint). ?n=K limits the response to the K most recent events.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := t.Events()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
}
