package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured trace record. Events serialize as JSONL:
// one JSON object per line, with a monotone per-tracer sequence
// number so consumers can detect ring-buffer loss (a gap in seq means
// the buffer wrapped between drains).
//
// The optional trace/span fields turn a flat event log into a tree: a
// job's lifecycle shares one TraceID, each operation within it gets a
// SpanID, and ParentID links it under its parent operation (the
// coordinator's submit span parents the forward/failover/redispatch
// spans, which parent the worker-side search events — the TraceID
// rides the traceparent header across processes).
type Event struct {
	Seq      uint64         `json:"seq"`
	TS       time.Time      `json:"ts"`
	Name     string         `json:"event"`
	TraceID  string         `json:"trace_id,omitempty"`
	SpanID   string         `json:"span_id,omitempty"`
	ParentID string         `json:"parent_id,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// dropCounters tallies the three ways an event can be lost. A root
// tracer and all tracers forked from it share one instance, so the
// stochsyn_trace_dropped_total series reports process-wide loss no
// matter which tracer in the tree dropped.
type dropCounters struct {
	ring       atomic.Uint64 // ring-buffer overwrites before any drain
	sink       atomic.Uint64 // sink write failures or pending-buffer overflow
	subscriber atomic.Uint64 // events a slow subscriber's channel could not take
}

// maxSinkPending bounds the per-tracer buffer of events waiting for
// the sink writer. A sink stuck longer than this many events loses
// the overflow (counted as sink drops) instead of growing memory.
const maxSinkPending = 1024

// Tracer records events into a fixed-capacity ring buffer, fans them
// out to bounded-buffer subscribers (Subscribe), optionally tees them
// to a sink (e.g. a -trace file) as JSONL, and forwards them to a
// parent tracer when created by Fork. All methods are safe for
// concurrent use and nil-safe: a nil *Tracer drops everything, so
// instrumentation sites need no guards.
//
// Emission takes a mutex; events are rare relative to search
// iterations (restart fires, plateau transitions, job lifecycle,
// sampled cost points), so this never shows up in profiles — the hot
// loop batches through SearchHooks instead of emitting per iteration.
// Nothing inside the critical section blocks: subscriber sends are
// non-blocking (slow consumers lose events, counted per subscriber),
// and sink writes happen outside the lock via a bounded pending
// buffer drained by whichever emitter wins sinkMu.
type Tracer struct {
	mu       sync.Mutex
	buf      []Event // grows by append until capacity, then a ring
	capacity int
	next     int  // ring write position
	wrapped  bool // buf has wrapped at least once
	seq      uint64
	subs     map[*Subscription]struct{}
	pending  []Event // events waiting for the sink writer
	sink     io.Writer
	enc      *json.Encoder

	// Fork lineage: events emitted on this tracer are stamped with
	// span (when they carry no span of their own) and base attrs, then
	// forwarded to parent so global scrapes still see everything.
	parent     *Tracer
	span       SpanContext
	parentSpan string
	base       map[string]any

	// drops is shared across the fork tree (never nil).
	drops *dropCounters

	// sinkMu serializes actual sink writes; emitters TryLock it so a
	// slow sink stalls at most one (already-unlocked) emitter.
	sinkMu sync.Mutex
}

// NewTracer returns a tracer with the given ring capacity (minimum 1).
// The ring is allocated lazily, element by element, so short-lived
// tracers (per-job forks) cost only what they emit.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, drops: &dropCounters{}}
}

// Fork returns a child tracer with its own ring, sequence space, and
// subscriber set. Events emitted on the child are stamped with span
// (unless they already carry a span), parented under parentSpan when
// they have no parent of their own, merged with the base attrs, and
// forwarded to t — so a per-job fork feeds a job-scoped SSE stream
// while the global /tracez ring still sees every event. Drop counters
// are shared with t. Fork of a nil tracer returns nil.
func (t *Tracer) Fork(capacity int, span SpanContext, parentSpan string, base map[string]any) *Tracer {
	if t == nil {
		return nil
	}
	child := NewTracer(capacity)
	child.parent = t
	child.span = span
	child.parentSpan = parentSpan
	child.base = base
	child.drops = t.drops
	return child
}

// SetSink tees every subsequent event to w as JSONL (nil disables).
// Writes are best-effort: failures are counted, not propagated, and
// happen outside the emit critical section so a slow sink never
// stalls concurrent emitters.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
	if w != nil {
		t.enc = json.NewEncoder(w)
	} else {
		t.enc = nil
	}
}

// Emit records an event with the given name and attributes. The attrs
// map is retained; callers must not mutate it afterwards.
func (t *Tracer) Emit(name string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, TraceID: t.span.TraceID, SpanID: t.span.SpanID, ParentID: t.parentSpan, Attrs: attrs}, true)
}

// EmitSpan records an event carrying an explicit span identity —
// used by Span.End and anywhere an operation needs its own node in
// the trace tree rather than the tracer's ambient span.
func (t *Tracer) EmitSpan(name string, sc SpanContext, parentID string, attrs map[string]any) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, TraceID: sc.TraceID, SpanID: sc.SpanID, ParentID: parentID, Attrs: attrs}, true)
}

// Ingest records an event produced by another tracer (a fork
// forwarding to its parent, or the fleet coordinator relaying a
// worker's SSE stream). The event keeps its timestamp, name, span
// identity, and attrs, but is assigned a fresh Seq from t's sequence
// space — Seq is per-ring, so foreign sequence numbers would corrupt
// resume-by-Last-Event-ID semantics.
func (t *Tracer) Ingest(ev Event) {
	if t == nil {
		return
	}
	t.emit(ev, false)
}

// emit is the shared emission path. stamp marks a locally produced
// event: it gets a fresh timestamp and the tracer's base attrs.
func (t *Tracer) emit(ev Event, stamp bool) {
	if stamp {
		ev.TS = time.Now()
		if len(t.base) > 0 {
			if ev.Attrs == nil {
				ev.Attrs = t.base
			} else {
				merged := make(map[string]any, len(ev.Attrs)+len(t.base))
				for k, v := range t.base {
					merged[k] = v
				}
				for k, v := range ev.Attrs {
					merged[k] = v
				}
				ev.Attrs = merged
			}
		}
	}
	t.mu.Lock()
	t.seq++
	ev.Seq = t.seq
	if len(t.buf) < t.capacity {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.wrapped = true
		t.drops.ring.Add(1)
	}
	t.next = (t.next + 1) % t.capacity
	for sub := range t.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			t.drops.subscriber.Add(1)
		}
	}
	hasSink := t.enc != nil
	if hasSink {
		if len(t.pending) >= maxSinkPending {
			t.drops.sink.Add(1)
		} else {
			t.pending = append(t.pending, ev)
		}
	}
	t.mu.Unlock()

	if hasSink {
		t.flushSink()
	}
	if t.parent != nil {
		t.parent.Ingest(ev)
	}
}

// flushSink drains the pending buffer to the sink. Only one goroutine
// writes at a time (sinkMu); emitters that find it held return
// immediately — the holder re-checks pending after each batch, so
// their events are picked up without anyone blocking on the writer.
func (t *Tracer) flushSink() {
	for {
		if !t.sinkMu.TryLock() {
			return // the current holder will drain our events
		}
		t.mu.Lock()
		batch := t.pending
		t.pending = nil
		enc := t.enc
		t.mu.Unlock()
		if len(batch) == 0 || enc == nil {
			t.sinkMu.Unlock()
			return
		}
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				t.drops.sink.Add(1)
			}
		}
		t.sinkMu.Unlock()
		// Events appended while we held sinkMu bounced off TryLock;
		// re-check so they are not stranded until the next emit.
		t.mu.Lock()
		more := len(t.pending) > 0
		t.mu.Unlock()
		if !more {
			return
		}
	}
}

// Subscription is one live consumer of a tracer's event stream,
// created by Subscribe. Events arrive on Events(); when the consumer
// falls behind its channel buffer, events are dropped (never blocking
// the emitter) and counted on Dropped.
type Subscription struct {
	ch      chan Event
	dropped atomic.Uint64
}

// Events is the subscription's receive channel. It is closed by
// Unsubscribe; consumers should treat channel close as end-of-stream.
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports how many events this subscriber lost to a full
// channel buffer.
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Subscribe registers a live consumer with the given channel buffer
// (minimum 1). The subscriber sees every event emitted after the call
// that its buffer can absorb; a full buffer drops (counted), never
// blocks Emit. Pair with Unsubscribe — an abandoned subscription
// keeps dropping but costs one failed channel send per event.
func (t *Tracer) Subscribe(buf int) *Subscription {
	if t == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{ch: make(chan Event, buf)}
	t.mu.Lock()
	if t.subs == nil {
		t.subs = make(map[*Subscription]struct{})
	}
	t.subs[sub] = struct{}{}
	t.mu.Unlock()
	return sub
}

// Unsubscribe removes sub and closes its channel. Idempotent; safe
// while emitters are running (the close happens under the emit lock,
// so no send can race it).
func (t *Tracer) Unsubscribe(sub *Subscription) {
	if t == nil || sub == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.subs[sub]; ok {
		delete(t.subs, sub)
		close(sub.ch)
	}
	t.mu.Unlock()
}

// Subscribers reports the number of live subscriptions.
func (t *Tracer) Subscribers() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.subs)
}

// Events returns a snapshot of the buffered events, oldest first. The
// ring is not cleared: /tracez drains are non-destructive, so
// repeated scrapes overlap (dedupe on Seq).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// SinkErrors reports how many events failed to reach the sink (write
// errors plus pending-buffer overflow), totaled across the fork tree.
func (t *Tracer) SinkErrors() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.sink.Load()
}

// RingOverwrites reports how many events were overwritten in a ring
// before any consumer could have drained them, totaled across the
// fork tree.
func (t *Tracer) RingOverwrites() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.ring.Load()
}

// SubscriberDrops reports how many events were lost to full
// subscriber buffers, totaled across the fork tree.
func (t *Tracer) SubscriberDrops() uint64 {
	if t == nil {
		return 0
	}
	return t.drops.subscriber.Load()
}

// WriteJSONL writes the buffered events (oldest first) to w, one JSON
// object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the ring buffer as JSONL at GET (the /tracez
// endpoint). ?n=K limits the response to the K most recent events
// (400 on a malformed or negative K); ?event=NAME keeps only events
// with that name (the limit applies after the filter).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := t.Events()
		if name := r.URL.Query().Get("event"); name != "" {
			filtered := events[:0]
			for _, ev := range events {
				if ev.Name == name {
					filtered = append(filtered, ev)
				}
			}
			events = filtered
		}
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "tracez: malformed n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	})
}
