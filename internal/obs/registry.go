package obs

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a lock-sharded metrics registry. Metric handles are
// get-or-create: asking twice for the same name and label set returns
// the same handle, so callers typically resolve handles once and keep
// them. Handle updates are lock-free atomics; the per-shard locks
// guard only family creation, series creation, and collection.
//
// A metric family (one name) has a single type — counter, gauge, or
// histogram — and one time series per distinct label set. Requesting
// an existing family with a different type panics: that is a
// programming error, and silently aliasing two types would corrupt
// the exposition.
type Registry struct {
	shards [numShards]shard
}

const numShards = 16

type shard struct {
	mu   sync.RWMutex
	fams map[string]*family
}

type metricType uint8

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	case histogramType:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name with its type, help text, and series.
type family struct {
	name    string
	typ     metricType
	buckets []float64 // histogram families only; fixed at creation

	mu     sync.RWMutex
	help   string
	series map[string]any // label key → *Counter | *Gauge | *Histogram | gaugeFn | counterFn
}

// gaugeFn is a gauge series whose value is computed at collection
// time (used for cheap "current state" metrics like queue depth).
type gaugeFn struct {
	labels string
	fn     func() float64
}

// counterFn is the counter analog of gaugeFn: a monotone total whose
// source of truth lives elsewhere (e.g. the tracer's drop counters)
// and is read at collection time.
type counterFn struct {
	labels string
	fn     func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].fams = make(map[string]*family)
	}
	return r
}

// Counter returns the counter series for name and the given label
// pairs ("k1", "v1", "k2", "v2", ...), creating family and series as
// needed. Counters are monotonically non-decreasing floats.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, counterType, nil)
	key := renderLabels(labelPairs)
	if m, ok := f.get(key); ok {
		return m.(*Counter)
	}
	return f.getOrCreate(key, &Counter{labels: key}).(*Counter)
}

// Gauge returns the gauge series for name and labels, creating it as
// needed. A fresh gauge starts at NaN ("no observation yet"), which
// SetMin treats as replaceable.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, gaugeType, nil)
	key := renderLabels(labelPairs)
	if m, ok := f.get(key); ok {
		return m.(*Gauge)
	}
	g := &Gauge{labels: key}
	g.bits.Store(math.Float64bits(math.NaN()))
	return f.getOrCreate(key, g).(*Gauge)
}

// GaugeFunc registers a gauge series whose value is fn(), evaluated
// at every collection. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	f := r.family(name, gaugeType, nil)
	key := renderLabels(labelPairs)
	f.mu.Lock()
	f.series[key] = &gaugeFn{labels: key, fn: fn}
	f.mu.Unlock()
}

// CounterFunc registers a counter series whose value is fn(),
// evaluated at every collection. fn must be monotone non-decreasing
// (counter semantics are the caller's contract). Re-registering the
// same series replaces fn.
func (r *Registry) CounterFunc(name string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	f := r.family(name, counterType, nil)
	key := renderLabels(labelPairs)
	f.mu.Lock()
	f.series[key] = &counterFn{labels: key, fn: fn}
	f.mu.Unlock()
}

// Histogram returns the histogram series for name and labels. buckets
// are the ascending upper bounds (a final +Inf bucket is implicit);
// the family's buckets are fixed by its first registration and the
// argument is ignored afterwards. A nil buckets slice selects
// DefTimeBuckets, the log-scale seconds buckets.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	f := r.family(name, histogramType, buckets)
	key := renderLabels(labelPairs)
	if m, ok := f.get(key); ok {
		return m.(*Histogram)
	}
	return f.getOrCreate(key, newHistogram(key, f.buckets)).(*Histogram)
}

// SetHelp attaches a HELP line to the family (created lazily as a
// typeless placeholder is not supported: the family must exist).
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	sh := &r.shards[shardOf(name)]
	sh.mu.RLock()
	f := sh.fams[name]
	sh.mu.RUnlock()
	if f == nil {
		return
	}
	f.mu.Lock()
	f.help = help
	f.mu.Unlock()
}

// family returns the family for name, creating it with the given type
// when absent and panicking on a type conflict.
func (r *Registry) family(name string, typ metricType, buckets []float64) *family {
	mustValidName(name)
	sh := &r.shards[shardOf(name)]
	sh.mu.RLock()
	f := sh.fams[name]
	sh.mu.RUnlock()
	if f == nil {
		sh.mu.Lock()
		f = sh.fams[name]
		if f == nil {
			f = &family{name: name, typ: typ, series: make(map[string]any)}
			if typ == histogramType {
				f.buckets = normalizeBuckets(name, buckets)
			}
			sh.fams[name] = f
		}
		sh.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(key string) (any, bool) {
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	return m, ok
}

func (f *family) getOrCreate(key string, fresh any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	f.series[key] = fresh
	return fresh
}

func shardOf(name string) uint32 {
	h := fnv.New32a()
	io.WriteString(h, name)
	return h.Sum32() % numShards
}

// mustValidName enforces the Prometheus metric/label name grammar.
func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels canonicalizes label pairs into the exposition form
// `{k1="v1",k2="v2"}` with keys sorted, or "" for no labels. It
// panics on an odd pair count or an invalid label name.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pair count %d", len(pairs)))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		if !validName(pairs[i]) || strings.Contains(pairs[i], ":") {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}

// Counter is a monotonically non-decreasing metric. The zero value
// of its value is 0; updates are atomic CAS float adds, cheap enough
// for batched use (hot loops should still batch, see package search).
type Counter struct {
	labels string
	bits   atomic.Uint64 // float64 bits
}

// Add increases the counter by v (negative or NaN values are
// ignored; counters never decrease). Nil-safe.
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	addFloat(&c.bits, v)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down. A fresh gauge reads NaN
// until the first Set/Add/SetMin ("no observation yet").
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v to the gauge; a NaN gauge is treated as 0. Nil-safe.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if math.IsNaN(cur) {
			cur = 0
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// SetMin lowers the gauge to v if v is smaller than the current value
// (or if the gauge is still NaN). Used for best-cost tracking.
func (g *Gauge) SetMin(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if !math.IsNaN(cur) && cur <= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (NaN for a nil or untouched gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return math.NaN()
	}
	return math.Float64frombits(g.bits.Load())
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// WriteProm writes the registry contents in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// TYPE line each, series sorted by label key — so the output is
// deterministic and free of duplicate series.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	var fams []*family
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, f := range sh.fams {
			fams = append(fams, f)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var sb strings.Builder
	for _, f := range fams {
		f.write(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func (f *family) write(sb *strings.Builder) {
	f.mu.RLock()
	help := f.help
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()

	if help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.typ)
	for i, m := range series {
		switch m := m.(type) {
		case *Counter:
			writeSample(sb, f.name, keys[i], m.Value())
		case *Gauge:
			writeSample(sb, f.name, keys[i], m.Value())
		case *gaugeFn:
			writeSample(sb, f.name, keys[i], m.fn())
		case *counterFn:
			writeSample(sb, f.name, keys[i], m.fn())
		case *Histogram:
			m.write(sb, f.name, keys[i])
		}
	}
}

func writeSample(sb *strings.Builder, name, labels string, v float64) {
	sb.WriteString(name)
	sb.WriteString(labels)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition at GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}
