package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauges: goroutine count, heap, and GC pause totals, in the
// conventional go_* namespace. Values are computed at scrape time
// through a shared sampler that caches runtime.ReadMemStats for a
// second, so a scrape costs one ReadMemStats however many go_* gauges
// it reads, and scrape storms cannot hammer the stop-the-world stats
// path.

// runtimeSampler caches one MemStats snapshot.
type runtimeSampler struct {
	mu   sync.Mutex
	ms   runtime.MemStats
	last time.Time
}

// memStatsMaxAge bounds the staleness of scrape-time MemStats.
const memStatsMaxAge = time.Second

func (s *runtimeSampler) snapshot() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) >= memStatsMaxAge {
		runtime.ReadMemStats(&s.ms)
		s.last = now
	}
	return s.ms
}

// RegisterRuntimeMetrics registers the go_* runtime gauges on r:
//
//	go_goroutines              current goroutine count
//	go_heap_alloc_bytes        live heap bytes
//	go_heap_objects            live heap objects
//	go_sys_bytes               total bytes obtained from the OS
//	go_gc_cycles_total         completed GC cycles
//	go_gc_pause_seconds_total  cumulative stop-the-world pause time
//	go_gomaxprocs              GOMAXPROCS
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	s := &runtimeSampler{}
	r.GaugeFunc("go_goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs", func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes", func() float64 { return float64(s.snapshot().HeapAlloc) })
	r.GaugeFunc("go_heap_objects", func() float64 { return float64(s.snapshot().HeapObjects) })
	r.GaugeFunc("go_sys_bytes", func() float64 { return float64(s.snapshot().Sys) })
	r.GaugeFunc("go_gc_cycles_total", func() float64 { return float64(s.snapshot().NumGC) })
	r.GaugeFunc("go_gc_pause_seconds_total", func() float64 {
		return float64(s.snapshot().PauseTotalNs) / 1e9
	})
	r.SetHelp("go_goroutines", "Number of goroutines that currently exist.")
	r.SetHelp("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
}
