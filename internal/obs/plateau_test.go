package obs

import "testing"

func TestPlateauDetector(t *testing.T) {
	d := PlateauDetector{Window: 100}

	// Initial observation establishes the baseline; no plateau yet.
	if e, x, _ := d.Observe(0, 50); e || x {
		t.Fatal("initial observation flagged a transition")
	}
	// Cost still changing: no plateau.
	if e, _, _ := d.Observe(40, 48); e {
		t.Fatal("entered a plateau while the cost was moving")
	}
	// Unchanged but inside the window: not yet.
	if e, _, _ := d.Observe(80, 48); e {
		t.Fatal("entered a plateau before the window elapsed")
	}
	// Window elapsed with no change: plateau entry.
	e, x, _ := d.Observe(140, 48)
	if !e || x {
		t.Fatalf("want entry at iter 140, got entered=%v exited=%v", e, x)
	}
	if !d.InPlateau() || d.Count() != 1 {
		t.Fatalf("InPlateau=%v Count=%d", d.InPlateau(), d.Count())
	}
	// Still flat: no repeated entry.
	if e, _, _ := d.Observe(500, 48); e {
		t.Fatal("re-entered an ongoing plateau")
	}
	// Cost change: exit, with dwell measured from the last change
	// (iter 40) to the exit observation.
	e, x, dwell := d.Observe(700, 30)
	if e || !x {
		t.Fatalf("want exit, got entered=%v exited=%v", e, x)
	}
	if dwell != 700-40 {
		t.Fatalf("dwell = %d, want %d", dwell, 700-40)
	}
	if d.InPlateau() {
		t.Fatal("still in plateau after exit")
	}

	// Second plateau: entry counts accumulate. The last change was at
	// the exit (iter 700), so by iter 900 the window has elapsed.
	if e, _, _ := d.Observe(900, 30); !e {
		t.Fatal("second plateau not detected")
	}
	if d.Count() != 2 {
		t.Fatalf("Count = %d, want 2", d.Count())
	}
	if d.Cost() != 30 {
		t.Fatalf("Cost = %g, want 30", d.Cost())
	}
}

func TestPlateauDetectorDefaultWindow(t *testing.T) {
	var d PlateauDetector // zero value: default window
	d.Observe(0, 10)
	if e, _, _ := d.Observe(DefaultPlateauWindow-1, 10); e {
		t.Fatal("entered before the default window")
	}
	if e, _, _ := d.Observe(DefaultPlateauWindow, 10); !e {
		t.Fatal("default window did not trigger")
	}
}
