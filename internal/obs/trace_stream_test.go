package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerSubscribeFanout(t *testing.T) {
	tr := NewTracer(16)
	sub := tr.Subscribe(8)
	defer tr.Unsubscribe(sub)
	for i := 0; i < 3; i++ {
		tr.Emit("e", map[string]any{"i": i})
	}
	for i := 0; i < 3; i++ {
		select {
		case ev := <-sub.Events():
			if ev.Seq != uint64(i+1) || ev.Attrs["i"].(int) != i {
				t.Fatalf("event %d wrong: %+v", i, ev)
			}
		case <-time.After(time.Second):
			t.Fatal("subscriber saw no event")
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", sub.Dropped())
	}
}

func TestTracerSubscribeSlowConsumerDrops(t *testing.T) {
	tr := NewTracer(64)
	sub := tr.Subscribe(2) // nobody reads: only 2 events fit
	defer tr.Unsubscribe(sub)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			tr.Emit("e", nil) // must never block
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Emit blocked on a full subscriber")
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscriber dropped %d, want 8", got)
	}
	if got := tr.SubscriberDrops(); got != 8 {
		t.Fatalf("tracer subscriber drops %d, want 8", got)
	}
}

func TestTracerUnsubscribeClosesAndIsIdempotent(t *testing.T) {
	tr := NewTracer(8)
	sub := tr.Subscribe(1)
	tr.Unsubscribe(sub)
	tr.Unsubscribe(sub) // second call must not panic (double close)
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel not closed after Unsubscribe")
	}
	tr.Emit("e", nil) // emitting after unsubscribe must not panic
	if tr.Subscribers() != 0 {
		t.Fatalf("subscribers = %d, want 0", tr.Subscribers())
	}
}

func TestTracerRingOverwriteCounting(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit("e", nil)
	}
	if got := tr.RingOverwrites(); got != 6 {
		t.Fatalf("ring overwrites = %d, want 6", got)
	}
}

// errWriter fails every write, exercising the sink-drop accounting.
type errWriter struct{}

func (errWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestTracerSinkFailureCounted(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSink(errWriter{})
	tr.Emit("e", nil)
	tr.Emit("e", nil)
	if got := tr.SinkErrors(); got != 2 {
		t.Fatalf("sink errors = %d, want 2", got)
	}
}

// blockingWriter parks every writer until released. Used to prove a
// stalled sink does not stall Emit.
type blockingWriter struct {
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.entered) })
	<-w.release
	return len(p), nil
}

func TestTracerSlowSinkDoesNotBlockEmit(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{}), entered: make(chan struct{})}
	tr := NewTracer(64)
	tr.SetSink(w)

	// First emitter wins sinkMu and parks inside the sink write.
	go tr.Emit("stuck", nil)
	select {
	case <-w.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("sink writer never entered")
	}
	// While the sink is stuck, further emits must complete promptly.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			tr.Emit("free", nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Emit blocked behind a stalled sink")
	}
	close(w.release)
	// The stuck holder drains the backlog after release; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for tr.Len() != 21 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tr.Len() != 21 {
		t.Fatalf("ring holds %d events, want 21", tr.Len())
	}
}

func TestTracerForkForwardsToParent(t *testing.T) {
	parent := NewTracer(32)
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	child := parent.Fork(8, sc, "feedbeeffeedbeef", map[string]any{"job": "j000001"})

	child.Emit("search_start", map[string]any{"budget": 100})
	childEvents := child.Events()
	if len(childEvents) != 1 {
		t.Fatalf("child holds %d events, want 1", len(childEvents))
	}
	ev := childEvents[0]
	if ev.TraceID != sc.TraceID || ev.SpanID != sc.SpanID || ev.ParentID != "feedbeeffeedbeef" {
		t.Fatalf("span stamping wrong: %+v", ev)
	}
	if ev.Attrs["job"] != "j000001" || ev.Attrs["budget"] != 100 {
		t.Fatalf("base attr merge wrong: %+v", ev.Attrs)
	}

	parentEvents := parent.Events()
	if len(parentEvents) != 1 {
		t.Fatalf("parent holds %d events, want 1", len(parentEvents))
	}
	pe := parentEvents[0]
	if pe.Name != "search_start" || pe.TraceID != sc.TraceID || pe.Attrs["job"] != "j000001" {
		t.Fatalf("forwarded event wrong: %+v", pe)
	}
	// Sequence spaces are independent: both rings assigned seq 1.
	if ev.Seq != 1 || pe.Seq != 1 {
		t.Fatalf("seqs: child %d parent %d, want 1 and 1", ev.Seq, pe.Seq)
	}
	// Drop counters are shared across the fork tree.
	tiny := parent.Fork(1, SpanContext{}, "", nil)
	tiny.Emit("a", nil)
	tiny.Emit("b", nil) // overwrites a
	if parent.RingOverwrites() != 1 || child.RingOverwrites() != 1 {
		t.Fatalf("shared ring-overwrite counter not shared: parent %d child %d",
			parent.RingOverwrites(), child.RingOverwrites())
	}
}

func TestTracerIngestPreservesIdentity(t *testing.T) {
	tr := NewTracer(8)
	ts := time.Now().Add(-time.Minute)
	tr.Ingest(Event{Seq: 999, TS: ts, Name: "remote", TraceID: "t", SpanID: "s", Attrs: map[string]any{"k": "v"}})
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.Seq != 1 {
		t.Fatalf("Ingest kept foreign seq %d, want re-stamped 1", ev.Seq)
	}
	if !ev.TS.Equal(ts) || ev.Name != "remote" || ev.TraceID != "t" || ev.SpanID != "s" || ev.Attrs["k"] != "v" {
		t.Fatalf("Ingest mutated event: %+v", ev)
	}
}

func TestSpanEndEmitsDuration(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.StartSpan("fleet_forward", "", "")
	if !sp.Context().Valid() {
		t.Fatalf("span context invalid: %+v", sp.Context())
	}
	child := tr.StartSpan("fleet_failover", sp.Context().TraceID, sp.Context().SpanID)
	child.End(nil)
	sp.End(map[string]any{"worker": "w1"})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].ParentID != sp.Context().SpanID || evs[0].TraceID != sp.Context().TraceID {
		t.Fatalf("child span not parented: %+v", evs[0])
	}
	if _, ok := evs[1].Attrs["duration_seconds"].(float64); !ok {
		t.Fatalf("no duration on span end: %+v", evs[1].Attrs)
	}
	if evs[1].Attrs["worker"] != "w1" {
		t.Fatalf("span end attrs lost: %+v", evs[1].Attrs)
	}
	// Nil-safety: spans on a nil tracer still mint context.
	var nilT *Tracer
	nsp := nilT.StartSpan("x", "", "")
	if !nsp.Context().Valid() {
		t.Fatal("nil-tracer span has no context")
	}
	nsp.End(nil) // must not panic
}

func TestTraceParentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	hdr := FormatTraceParent(sc)
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("header shape wrong: %q", hdr)
	}
	got, ok := ParseTraceParent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	for _, bad := range []string{
		"", "00-xyz-abc-01", "00-" + sc.TraceID + "-01",
		"00-" + strings.Repeat("0", 32) + "-" + sc.SpanID + "-01",
		"00-" + sc.TraceID + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + sc.TraceID[:31] + "-" + sc.SpanID + "-01",
		"zz-" + sc.TraceID + "-" + sc.SpanID + "-01",
	} {
		if _, ok := ParseTraceParent(bad); ok && !strings.HasPrefix(bad, "zz") {
			t.Fatalf("parsed malformed header %q", bad)
		}
	}
	// Unknown version/flags are tolerated (ids are what matter).
	if _, ok := ParseTraceParent("01-" + sc.TraceID + "-" + sc.SpanID + "-00"); !ok {
		t.Fatal("rejected unknown version")
	}
}

func TestTracerHandlerEventFilterAndBadN(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 3; i++ {
		tr.Emit("restart_fire", map[string]any{"i": i})
		tr.Emit("search_cost", map[string]any{"i": i})
	}
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp := mustGet(t, srv.URL+"?event=restart_fire")
	sc := bufio.NewScanner(strings.NewReader(resp))
	n := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		if ev.Name != "restart_fire" {
			t.Fatalf("filter leaked %q", ev.Name)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("filtered to %d events, want 3", n)
	}
	// Filter composes with ?n=.
	resp = mustGet(t, srv.URL+"?event=search_cost&n=1")
	if got := strings.Count(resp, "\n"); got != 1 {
		t.Fatalf("filter+n returned %d lines, want 1:\n%s", got, resp)
	}
	for _, q := range []string{"?n=abc", "?n=-1", "?n=1.5"} {
		r, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", q, r.StatusCode)
		}
	}
}

func TestServeEventStreamReplayAndLive(t *testing.T) {
	tr := NewTracer(32)
	tr.Emit("a", nil)
	tr.Emit("b", nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeEventStream(w, r, tr, "fin")
	}))
	defer srv.Close()

	go func() {
		// Live events land after the client connects; a short settle
		// keeps the replay/live boundary honest but is not load-bearing.
		time.Sleep(50 * time.Millisecond)
		tr.Emit("c", nil)
		tr.Emit("fin", nil)
	}()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	names, ids := readSSE(t, resp)
	want := []string{"a", "b", "c", "fin"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("stream = %v, want %v", names, want)
	}
	if fmt.Sprint(ids) != fmt.Sprint([]uint64{1, 2, 3, 4}) {
		t.Fatalf("ids = %v", ids)
	}
}

func TestServeEventStreamResumeNoDuplicates(t *testing.T) {
	tr := NewTracer(32)
	for _, n := range []string{"a", "b", "c", "fin"} {
		tr.Emit(n, nil)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeEventStream(w, r, tr, "fin")
	}))
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	names, ids := readSSE(t, resp)
	if fmt.Sprint(names) != fmt.Sprint([]string{"c", "fin"}) || fmt.Sprint(ids) != fmt.Sprint([]uint64{3, 4}) {
		t.Fatalf("resume replayed %v / %v, want [c fin] / [3 4]", names, ids)
	}

	req, _ = http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Last-Event-ID", "bogus")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed Last-Event-ID = %d, want 400", resp.StatusCode)
	}
}

func TestServeEventStreamDisconnectReleasesSubscription(t *testing.T) {
	tr := NewTracer(32)
	tr.Emit("a", nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ServeEventStream(w, r, tr, "never_emitted")
	}))
	defer srv.Close()

	ctxReq, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	resp, err := http.DefaultClient.Do(ctxReq)
	if err != nil {
		t.Fatal(err)
	}
	// Read the replayed event, then hang up mid-stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for tr.Subscribers() != 0 && time.Now().Before(deadline) {
		tr.Emit("tick", nil) // wake the handler so it notices the dead client
		time.Sleep(5 * time.Millisecond)
	}
	if got := tr.Subscribers(); got != 0 {
		t.Fatalf("subscription leaked after disconnect: %d live", got)
	}
}

// readSSE consumes an SSE body to EOF and returns the event names and
// ids in order.
func readSSE(t *testing.T, resp *http.Response) (names []string, ids []uint64) {
	t.Helper()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			var id uint64
			fmt.Sscanf(line, "id: %d", &id)
			ids = append(ids, id)
		case strings.HasPrefix(line, "event: "):
			names = append(names, strings.TrimPrefix(line, "event: "))
		case strings.HasPrefix(line, "data: "):
			var ev Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("data line is not an Event: %v", err)
			}
		}
	}
	return names, ids
}
