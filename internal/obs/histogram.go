package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Histogram is a fixed-bucket atomic histogram. Observations are two
// atomic adds plus a CAS float add for the sum — no locks — so
// concurrent observers scale. Bucket bounds are fixed at creation
// (log-scale by convention: see ExpBuckets); exposition follows the
// Prometheus cumulative-bucket form with an implicit +Inf bucket.
//
// Concurrent scrapes may observe a sum/count that is slightly ahead
// of or behind the bucket counts; that is the standard tradeoff of
// lock-free histograms and harmless for monitoring.
type Histogram struct {
	labels string
	upper  []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(upper)+1: last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(labels string, upper []float64) *Histogram {
	return &Histogram{
		labels: labels,
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// normalizeBuckets validates and copies bucket bounds: they must be
// finite, strictly ascending, and non-empty. A trailing +Inf is
// stripped (it is implicit).
func normalizeBuckets(name string, buckets []float64) []float64 {
	if n := len(buckets); n > 0 && math.IsInf(buckets[n-1], 1) {
		buckets = buckets[:n-1]
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one finite bucket", name))
	}
	out := make([]float64, len(buckets))
	prev := math.Inf(-1)
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) || b <= prev {
			panic(fmt.Sprintf("obs: histogram %q buckets must be finite and strictly ascending, got %v", name, buckets))
		}
		out[i] = b
		prev = b
	}
	return out
}

// Observe records v. Nil-safe; NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Upper bounds are inclusive (le): the first bucket with v <= upper.
	i := sort.SearchFloat64s(h.upper, v)
	// SearchFloat64s finds the first index with upper[i] >= v, which
	// is exactly the le-inclusive bucket; equality lands in-bucket.
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot returns the bucket upper bounds (ending with +Inf) and the
// cumulative counts per bucket.
func (h *Histogram) Snapshot() (upper []float64, cumulative []uint64) {
	if h == nil {
		return nil, nil
	}
	upper = append(append([]float64{}, h.upper...), math.Inf(1))
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return upper, cumulative
}

// write emits the series in exposition form: one cumulative _bucket
// line per bound plus +Inf, then _sum and _count.
func (h *Histogram) write(sb *strings.Builder, name, labels string) {
	upper, cum := h.Snapshot()
	for i, u := range upper {
		le := formatValue(u)
		sb.WriteString(name)
		sb.WriteString("_bucket")
		sb.WriteString(mergeLabels(labels, `le="`+le+`"`))
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatUint(cum[i], 10))
		sb.WriteByte('\n')
	}
	sb.WriteString(name)
	sb.WriteString("_sum")
	sb.WriteString(labels)
	sb.WriteByte(' ')
	sb.WriteString(formatValue(h.Sum()))
	sb.WriteByte('\n')
	sb.WriteString(name)
	sb.WriteString("_count")
	sb.WriteString(labels)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(h.Count(), 10))
	sb.WriteByte('\n')
}

// mergeLabels appends extra (already rendered k="v") into a rendered
// label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// ExpBuckets returns n log-scale bucket upper bounds starting at
// start and growing by factor: start, start*factor, ... — the fixed
// log-scale bucket scheme used throughout the stochsyn_* metrics.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d): need start > 0, factor > 1, n >= 1", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefTimeBuckets is the default latency bucket set: 100µs to ~105s
// in ×2 steps (21 buckets).
var DefTimeBuckets = ExpBuckets(1e-4, 2, 21)

// IterBuckets is the default bucket set for iteration counts: 1k to
// ~1B in ×4 steps, matching the scale of search cutoffs and budgets.
var IterBuckets = ExpBuckets(1000, 4, 11)
