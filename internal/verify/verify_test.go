package verify

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"stochsyn/internal/asm"
	"stochsyn/internal/prog"
	"stochsyn/internal/superopt"
)

func TestProgramsEquivalent(t *testing.T) {
	// Two forms of bitwise select.
	p := prog.MustParse("orq(andq(x, y), andq(notq(x), z))", 3)
	q := prog.MustParse("xorq(andq(x, xorq(y, z)), z)", 3)
	if cx := Programs(p, q, 2000, 1); cx != nil {
		t.Errorf("equivalent programs flagged: %s", cx)
	}
}

func TestProgramsInequivalent(t *testing.T) {
	p := prog.MustParse("addq(x, y)", 2)
	q := prog.MustParse("orq(x, y)", 2)
	cx := Programs(p, q, 2000, 1)
	if cx == nil {
		t.Fatal("add and or claimed equivalent")
	}
	// The counterexample must actually be one.
	if p.Output(cx.Inputs) != cx.Got || q.Output(cx.Inputs) != cx.Want {
		t.Error("counterexample inconsistent")
	}
}

func TestProgramsSubtleDifference(t *testing.T) {
	// x*2 and x<<1 are equal; x*2 and x+x are equal; but x<<1 and
	// sar-based doubling differ on the sign bit... use a genuinely
	// subtle pair: (x+y)/2 truncating vs avg without overflow. They
	// differ only when x+y overflows.
	p := prog.MustParse("shrq(addq(x, y), 1)", 2)
	q := prog.MustParse("addq(andq(x, y), shrq(xorq(x, y), 1))", 2)
	cx := Programs(p, q, 4000, 3)
	if cx == nil {
		t.Fatal("overflow difference not found")
	}
}

func TestArityMismatch(t *testing.T) {
	p := prog.MustParse("x", 1)
	q := prog.MustParse("addq(x, y)", 2)
	if Programs(p, q, 10, 1) == nil {
		t.Error("arity mismatch not flagged")
	}
}

func TestFragmentAgainstTranslation(t *testing.T) {
	src := `
f:
	movl %edi, %eax
	imull %esi, %eax
	notl %eax
	ret
`
	funcs, err := asm.ParseText(src)
	if err != nil {
		t.Fatal(err)
	}
	frag, err := asm.SliceBlock(funcs[0], funcs[0].Blocks[0], asm.RAX)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := superopt.Translate(frag)
	if err != nil {
		t.Fatal(err)
	}
	cx, err := Fragment(ref, frag, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cx != nil {
		t.Errorf("translation disagrees with fragment: %s", cx)
	}
	// A wrong program must be caught.
	wrong := prog.MustParse("mulq(x, y)", 2)
	cx, err = Fragment(wrong, frag, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cx == nil {
		t.Error("wrong program not caught against fragment")
	}
}

func TestEquivalentHelper(t *testing.T) {
	p := prog.MustParse("andq(x, subq(x, 1))", 1)
	if !Equivalent(p, func(in []uint64) uint64 { return in[0] & (in[0] - 1) }, 1) {
		t.Error("hd01 forms flagged inequivalent")
	}
	if Equivalent(p, func(in []uint64) uint64 { return in[0] }, 1) {
		t.Error("identity accepted as hd01")
	}
}

func TestPropertyCounterexamplesAreReal(t *testing.T) {
	// For random program pairs, any reported counterexample must
	// actually distinguish them.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		p := randomProgram(rng)
		q := randomProgram(rng)
		cx := Programs(p, q, 200, seed)
		if cx == nil {
			return true
		}
		if len(cx.Inputs) == 0 {
			return true // arity-mismatch sentinel (not produced here)
		}
		return p.Output(cx.Inputs) != q.Output(cx.Inputs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomProgram(rng *rand.Rand) *prog.Program {
	p := prog.NewZero(2)
	n := 1 + rng.IntN(6)
	for i := 0; i < n; i++ {
		op := prog.FullSet.RandomOp(rng)
		nd := prog.Node{Op: op}
		for a := 0; a < op.Arity(); a++ {
			nd.Args[a] = int32(rng.IntN(len(p.Nodes)))
		}
		p.Nodes = append(p.Nodes, nd)
	}
	p.Root = int32(len(p.Nodes) - 1)
	p.Invalidate()
	p.GC()
	return p
}
