// Package verify provides randomized equivalence checking between
// dataflow programs (and between programs and scraped machine-code
// fragments). Synthesis from input/output examples only guarantees
// agreement on the test suite; this package hunts for counterexamples
// beyond it, combining the corner-case inputs the benchmark generator
// uses, skewed-Hamming-weight patterns, uniform random vectors, and a
// neighborhood search around any near-miss.
//
// A report of Equivalent == true is probabilistic, not a proof — the
// paper's setting treats any program matching the specification as a
// solution, so this is a validation aid, not a soundness gate.
package verify

import (
	"fmt"
	"math/rand/v2"

	"stochsyn/internal/asm"
	"stochsyn/internal/bits"
	"stochsyn/internal/prog"
)

// Counterexample is an input where two semantics disagree.
type Counterexample struct {
	Inputs    []uint64
	Got, Want uint64
}

// String renders the counterexample.
func (c *Counterexample) String() string {
	return fmt.Sprintf("inputs %v: got %#x, want %#x", c.Inputs, c.Got, c.Want)
}

// Oracle is any computable reference semantics.
type Oracle func(inputs []uint64) uint64

// Programs checks two programs with the same arity against each other.
func Programs(p, q *prog.Program, trials int, seed uint64) *Counterexample {
	if p.NumInputs != q.NumInputs {
		return &Counterexample{} // arity mismatch: trivially inequivalent
	}
	return Against(p, func(in []uint64) uint64 { return q.Output(in) }, trials, seed)
}

// Fragment checks a program against a scraped fragment's evaluator.
func Fragment(p *prog.Program, fr *asm.Fragment, trials int, seed uint64) (*Counterexample, error) {
	if p.NumInputs != len(fr.Inputs) {
		return nil, fmt.Errorf("verify: program has %d inputs, fragment %d", p.NumInputs, len(fr.Inputs))
	}
	var execErr error
	cx := Against(p, func(in []uint64) uint64 {
		out, err := fr.Execute(in)
		if err != nil {
			execErr = err
		}
		return out
	}, trials, seed)
	if execErr != nil {
		return nil, execErr
	}
	return cx, nil
}

// Against checks a program against an oracle over `trials` sampled
// inputs plus the deterministic corner grid, returning the first
// counterexample found or nil.
func Against(p *prog.Program, oracle Oracle, trials int, seed uint64) *Counterexample {
	n := p.NumInputs
	check := func(in []uint64) *Counterexample {
		got := p.Output(in)
		want := oracle(in)
		if got != want {
			return &Counterexample{Inputs: append([]uint64(nil), in...), Got: got, Want: want}
		}
		return nil
	}

	// Deterministic corner grid: every input drawn from the corner
	// list, exhaustively for narrow arities and diagonally otherwise.
	if n > 0 && n <= 2 {
		in := make([]uint64, n)
		for _, a := range bits.CornerCases {
			in[0] = a
			if n == 1 {
				if cx := check(in); cx != nil {
					return cx
				}
				continue
			}
			for _, b := range bits.CornerCases {
				in[1] = b
				if cx := check(in); cx != nil {
					return cx
				}
			}
		}
	} else if n > 0 {
		in := make([]uint64, n)
		for _, a := range bits.CornerCases {
			for i := range in {
				in[i] = a
			}
			if cx := check(in); cx != nil {
				return cx
			}
		}
	}

	// Randomized phase.
	rng := rand.New(rand.NewPCG(seed, 0xb5470917228dca4d))
	in := make([]uint64, n)
	for t := 0; t < trials; t++ {
		for i := range in {
			switch t % 4 {
			case 0:
				in[i] = rng.Uint64()
			case 1:
				in[i] = bits.RandomLowWeight(rng)
			case 2:
				in[i] = bits.RandomHighWeight(rng)
			default:
				in[i] = bits.CornerCases[rng.IntN(len(bits.CornerCases))] + uint64(rng.IntN(5)) - 2
			}
		}
		if cx := check(in); cx != nil {
			return cx
		}
	}
	return nil
}

// Equivalent reports whether no counterexample was found between p and
// the oracle over the standard budget (4096 random trials plus the
// corner grid).
func Equivalent(p *prog.Program, oracle Oracle, seed uint64) bool {
	return Against(p, oracle, 4096, seed) == nil
}
