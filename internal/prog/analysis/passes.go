package analysis

import (
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
)

// FoldPass reports instruction nodes whose arguments are all constant:
// the node computes a fixed value the search could have materialized
// as a single constant node.
type FoldPass struct{}

// Name implements Pass.
func (FoldPass) Name() string { return "fold" }

// Run implements Pass.
func (FoldPass) Run(p *prog.Program, r *Report) {
	for i := range p.Nodes {
		if v, ok := foldNode(p, int32(i)); ok {
			r.Add("fold", int32(i), "%s of constant arguments folds to %s",
				p.Nodes[i].Op, prog.FormatConst(v))
		}
	}
}

// LintPass reports algebraic identities and annihilators: nodes the
// rewrite engine would replace with one of their operands or with a
// constant (x & x, x | 0, x * 1, x ^ x, shift by a masked-to-zero
// count, and so on), including the fact-conditioned rules backed by
// the known-bits/interval analysis (redundant masks, range-decided
// comparisons, 32-bit masked shifts whose operand provably fits 32
// bits) and redundant shift-count masks. It also flags, report-only,
// the 32-bit shift-by-masked-zero case whose operand the analysis
// CANNOT prove 32-bit: that one is zextlq, not the identity, so it is
// not rewritable to an operand.
type LintPass struct{}

// Name implements Pass.
func (LintPass) Name() string { return "lint" }

// Run implements Pass.
func (LintPass) Run(p *prog.Program, r *Report) {
	facts := absint.Analyze(p, nil, nil)
	for i := range p.Nodes {
		nd := &p.Nodes[i]
		// Folding dominates: an all-constant node is reported by
		// FoldPass, not double-reported here.
		if _, ok := foldNode(p, int32(i)); ok {
			continue
		}
		if rw := simplifyNode(p, int32(i), facts); rw.kind != rwNone {
			switch rw.kind {
			case rwConst:
				r.Add("lint", int32(i), "%s is the constant %s: %s",
					nd.Op, prog.FormatConst(rw.val), rw.reason)
			case rwNode:
				r.Add("lint", int32(i), "%s is redundant: %s", nd.Op, rw.reason)
			case rwArg:
				r.Add("lint", int32(i), "%s count mask is redundant: %s", nd.Op, rw.reason)
			}
			continue
		}
		// Report-only: 32-bit shifts by a masked-to-zero count whose
		// operand is not provably 32-bit. These still truncate (shll(x,
		// 32) = zextlq(x), not x), so they are suspicious but not
		// rewritable to an operand; the provable case is rewritten by
		// the shift32-masked-zero rule above and never reaches here.
		switch nd.Op {
		case prog.OpShl32, prog.OpShr32, prog.OpSar32:
			if bv, ok := constVal(p, nd.Args[1]); ok && bv&31 == 0 {
				r.AddSev("lint", SevInfo, int32(i), "%s count masks to 0: equivalent to zextlq, not the identity", nd.Op)
			}
		}
	}
}

// LivenessPass reports dead inputs (declared but unreachable from the
// root: the synthesized program ignores part of its specification's
// input vector) and, defensively, dead body nodes — the latter should
// be impossible in a validated program but is cheap to double-check
// when the pass runs over programs of unknown provenance.
type LivenessPass struct{}

// Name implements Pass.
func (LivenessPass) Name() string { return "liveness" }

// Run implements Pass.
func (LivenessPass) Run(p *prog.Program, r *Report) {
	mask := p.Reachable()
	for i := 0; i < p.NumInputs; i++ {
		if mask&(uint64(1)<<uint(i)) == 0 {
			r.Add("liveness", int32(i), "input %s is dead: the program ignores it", prog.InputName(i))
		}
	}
	for i := p.NumInputs; i < len(p.Nodes); i++ {
		if mask&(uint64(1)<<uint(i)) == 0 {
			r.Add("liveness", int32(i), "dead body node (%s)", p.Nodes[i].Op)
		}
	}
}
