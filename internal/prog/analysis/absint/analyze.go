package absint

import (
	"fmt"

	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// Analyze runs one forward abstract-interpretation pass over p and
// returns the abstract value of every node, indexed by node id.
//
// in optionally supplies per-input facts (indexed by input index, as
// produced by InputFacts); nil or short slices default missing inputs
// to Top, which makes every derived fact universally sound — true for
// ALL inputs, the only mode under which rewrite rules may act on
// facts. Suite-derived input facts are sound only for the suite's
// example inputs and are reserved for pruning and reporting.
//
// A program is a DAG evaluated in topological order, so one pass IS
// the dataflow fixpoint; the iterative refinement lives in the
// e-graph analysis (internal/eqsat), where congruence keeps merging
// classes.
//
// dst, when non-nil, is reused as the result slice to keep the
// pruning hot path allocation-free.
func Analyze(p *prog.Program, in []Value, dst []Value) []Value {
	n := len(p.Nodes)
	if cap(dst) < n {
		c := prog.MaxNodes
		if n > c {
			c = n
		}
		dst = make([]Value, n, c)
	}
	dst = dst[:n]
	for _, i := range p.TopoOrder() {
		nd := &p.Nodes[i]
		switch nd.Op {
		case prog.OpInput:
			if idx := int(nd.Val); idx < len(in) {
				dst[i] = in[idx].Reduce()
			} else {
				dst[i] = Top()
			}
		case prog.OpConst:
			dst[i] = Exact(nd.Val)
		default:
			a := dst[nd.Args[0]]
			b := Top()
			if nd.Op.Arity() == 2 {
				b = dst[nd.Args[1]]
			}
			dst[i] = Transfer(nd.Op, a, b)
		}
	}
	return dst
}

// InputFacts derives per-input abstract facts from a problem's
// example set: the join of the exact singletons of every case's value
// for that input. The resulting facts hold for every example case (and
// only for those), which is exactly the premise the pruner needs.
func InputFacts(s *testcase.Suite) []Value {
	in := make([]Value, s.NumInputs)
	for i := range in {
		first := true
		for _, c := range s.Cases {
			v := Exact(c.Inputs[i])
			if first {
				in[i] = v
				first = false
			} else {
				in[i] = in[i].Join(v)
			}
		}
		if first {
			in[i] = Top()
		}
		in[i] = in[i].Reduce()
	}
	return in
}

// Describe renders the non-trivial abstract facts of p's reachable
// nodes, one line per node, in node order — the representation synth
// -lint and the job API expose. Inputs and constants are skipped
// (their facts restate the node), as are nodes about which nothing is
// known.
func Describe(p *prog.Program, facts []Value) []string {
	reach := p.Reachable() | (uint64(1)<<uint(p.NumInputs) - 1)
	var out []string
	for i := range p.Nodes {
		if reach&(uint64(1)<<uint(i)) == 0 || i >= len(facts) {
			continue
		}
		op := p.Nodes[i].Op
		if !op.IsInstruction() {
			continue
		}
		s := facts[i].String()
		if s == "top" {
			continue
		}
		out = append(out, fmt.Sprintf("node %d: %s: %s", i, op, s))
	}
	return out
}
