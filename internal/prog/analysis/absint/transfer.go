package absint

import (
	"math/bits"

	"stochsyn/internal/prog"
)

// BitsTransfer is a known-bits transfer function: given abstractions
// of the (up to) two operands it returns a sound abstraction of the
// result. Unary opcodes receive TopBits as b.
type BitsTransfer func(a, b Bits) Bits

// SpanTransfer is the interval-domain counterpart. Unary opcodes
// receive TopSpan as b.
type SpanTransfer func(a, b Span) Span

// topB / topS are the explicit no-information transfer functions.
// Opcodes mapped to them have been reviewed and genuinely carry no
// cheap per-domain fact (the driver still folds them exactly when
// both operands are singletons); cmd/repolint check 5 enforces that
// every opcode appears in both tables, so a new opcode cannot land as
// an accidental ⊤.
func topB(a, b Bits) Bits { return TopBits() }
func topS(a, b Span) Span { return TopSpan() }

// bitsTable maps every opcode to its known-bits transfer function.
// Soundness is always argued against the exact evalOp semantics in
// internal/prog/eval.go: shift counts are masked (&63, &31), division
// by zero yields zero, and every 32-bit result is zero-extended.
//
// The three pseudo-ops are registered as explicit ⊤: the analysis
// driver intercepts them (inputs get caller-provided facts, constants
// get exact singletons) before the table is ever consulted.
var bitsTable = [prog.NumOps]BitsTransfer{
	prog.OpInvalid: topB,
	prog.OpInput:   topB,
	prog.OpConst:   topB,

	prog.OpAdd:    bitsAdd,
	prog.OpSub:    bitsSub,
	prog.OpMul:    bitsMul,
	prog.OpDivU:   topB,
	prog.OpRemU:   topB,
	prog.OpDivS:   topB,
	prog.OpRemS:   topB,
	prog.OpAnd:    bitsAnd,
	prog.OpOr:     bitsOr,
	prog.OpXor:    bitsXor,
	prog.OpShl:    bitsShl,
	prog.OpShr:    bitsShr,
	prog.OpSar:    bitsSar,
	prog.OpRol:    bitsRol,
	prog.OpRor:    bitsRor,
	prog.OpEq:     bitsEq,
	prog.OpUlt:    bitsUlt,
	prog.OpSlt:    bitsSlt,
	prog.OpNot:    bitsNot,
	prog.OpNeg:    bitsNeg,
	prog.OpBswap:  bitsBswap,
	prog.OpPopcnt: bitsPopcnt,
	prog.OpClz:    bitsCount,
	prog.OpCtz:    bitsCount,
	prog.OpSext8:  bitsSext(8),
	prog.OpSext16: bitsSext(16),
	prog.OpSext32: bitsSext(32),
	prog.OpZext8:  bitsZext(8),
	prog.OpZext16: bitsZext(16),
	prog.OpZext32: bitsZext(32),

	prog.OpAdd32: bits32(bitsAdd),
	prog.OpSub32: bits32(bitsSub),
	prog.OpMul32: bits32(bitsMul),
	prog.OpAnd32: bits32(bitsAnd),
	prog.OpOr32:  bits32(bitsOr),
	prog.OpXor32: bits32(bitsXor),
	prog.OpShl32: bitsShl32,
	prog.OpShr32: bitsShr32,
	prog.OpSar32: bitsSar32,
	prog.OpNot32: bitsNot32,
	prog.OpNeg32: bits32(bitsNeg),

	prog.OpMAnd: bitsAnd,
	prog.OpMOr:  bitsOr,
	prog.OpMXor: bitsXor,
	prog.OpMNot: bitsNot,
	prog.OpMShl: bitsMShl,
	prog.OpMShr: bitsMShr,
}

// spanTable maps every opcode to its interval transfer function.
var spanTable = [prog.NumOps]SpanTransfer{
	prog.OpInvalid: topS,
	prog.OpInput:   topS,
	prog.OpConst:   topS,

	prog.OpAdd:    spanAdd,
	prog.OpSub:    spanSub,
	prog.OpMul:    spanMul,
	prog.OpDivU:   spanDivU,
	prog.OpRemU:   spanRemU,
	prog.OpDivS:   topS,
	prog.OpRemS:   topS,
	prog.OpAnd:    spanAnd,
	prog.OpOr:     spanOr,
	prog.OpXor:    spanXor,
	prog.OpShl:    spanShl,
	prog.OpShr:    spanShr,
	prog.OpSar:    spanSar,
	prog.OpRol:    topS,
	prog.OpRor:    topS,
	prog.OpEq:     spanEq,
	prog.OpUlt:    spanUlt,
	prog.OpSlt:    spanSlt,
	prog.OpNot:    spanNot,
	prog.OpNeg:    spanNeg,
	prog.OpBswap:  topS,
	prog.OpPopcnt: spanPopcnt,
	prog.OpClz:    spanClz,
	prog.OpCtz:    spanCtz,
	prog.OpSext8:  spanSext(8),
	prog.OpSext16: spanSext(16),
	prog.OpSext32: spanSext(32),
	prog.OpZext8:  spanZext(8),
	prog.OpZext16: spanZext(16),
	prog.OpZext32: spanZext(32),

	prog.OpAdd32: span32(spanAdd),
	prog.OpSub32: span32(spanSub),
	prog.OpMul32: span32(spanMul),
	prog.OpAnd32: span32(spanAnd),
	prog.OpOr32:  span32(spanOr),
	prog.OpXor32: span32(spanXor),
	prog.OpShl32: spanShl32,
	prog.OpShr32: spanShr32,
	prog.OpSar32: spanSar32,
	prog.OpNot32: spanNot32,
	prog.OpNeg32: spanNeg32,

	prog.OpMAnd: spanAnd,
	prog.OpMOr:  spanOr,
	prog.OpMXor: spanXor,
	prog.OpMNot: spanNot,
	prog.OpMShl: spanMShl,
	prog.OpMShr: spanMShr,
}

// Transfer applies op's transfer functions in both domains and
// reduces the product. When the operands pin single concrete values
// it folds through prog.EvalOp instead, which is maximally precise
// and sound by construction (it IS the concrete semantics). Unary
// opcodes ignore b; pass Top.
func Transfer(op prog.Op, a, b Value) Value {
	if av, ok := a.Exact(); ok {
		if op.Arity() == 1 {
			return Exact(prog.EvalOp(op, av, 0))
		}
		if bv, ok := b.Exact(); ok {
			return Exact(prog.EvalOp(op, av, bv))
		}
	}
	v := Value{B: bitsTable[op](a.B, b.B), S: spanTable[op](a.S, b.S)}
	return v.Reduce()
}

// lowMaskLen returns a mask of the n lowest bits, handling n == 64.
func lowMaskLen(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// highMaskN returns a mask of the n highest bits, handling n == 0.
func highMaskN(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return ^(^uint64(0) >> n)
}

// --- known-bits transfers, 64-bit ---

// lowCarry implements the shared trick for add/sub/mul: the low t
// bits of the result depend only on the low t bits of the operands
// (carries, borrows, and partial products propagate strictly upward),
// so with the low t bits of both operands known the low t bits of
// f(aOnes, bOnes) are exact.
func lowCarry(a, b Bits, f func(x, y uint64) uint64) Bits {
	t := bits.TrailingZeros64(^(a.Known() & b.Known()))
	if t == 0 {
		return TopBits()
	}
	r := f(a.One, b.One)
	m := lowMaskLen(t)
	return Bits{Zero: ^r & m, One: r & m}
}

func bitsAdd(a, b Bits) Bits { return lowCarry(a, b, func(x, y uint64) uint64 { return x + y }) }
func bitsSub(a, b Bits) Bits { return lowCarry(a, b, func(x, y uint64) uint64 { return x - y }) }
func bitsMul(a, b Bits) Bits { return lowCarry(a, b, func(x, y uint64) uint64 { return x * y }) }

func bitsAnd(a, b Bits) Bits {
	return Bits{Zero: a.Zero | b.Zero, One: a.One & b.One}
}
func bitsOr(a, b Bits) Bits {
	return Bits{Zero: a.Zero & b.Zero, One: a.One | b.One}
}
func bitsXor(a, b Bits) Bits {
	k := a.Known() & b.Known()
	v := a.One ^ b.One
	return Bits{Zero: k &^ v, One: k & v}
}
func bitsNot(a, b Bits) Bits { return Bits{Zero: a.One, One: a.Zero} }
func bitsNeg(a, b Bits) Bits { return bitsSub(ExactBits(0), a) }

// shiftCount extracts the exact masked shift count from b when the
// low bits that the hardware actually consumes (b & widthMask) are
// all known; higher bits of b are irrelevant.
func shiftCount(b Bits, widthMask uint64) (uint64, bool) {
	if b.Known()&widthMask == widthMask {
		return b.One & widthMask, true
	}
	return 0, false
}

func bitsShl(a, b Bits) Bits {
	if c, ok := shiftCount(b, 63); ok {
		return Bits{Zero: a.Zero<<c | lowMaskLen(int(c)), One: a.One << c}
	}
	// Any left shift preserves the provably-zero low bits.
	return Bits{Zero: lowMaskLen(bits.TrailingZeros64(^a.Zero))}
}

func bitsShr(a, b Bits) Bits {
	if c, ok := shiftCount(b, 63); ok {
		return Bits{Zero: a.Zero>>c | highMaskN(c), One: a.One >> c}
	}
	// The result of any right shift fits in as many bits as the
	// possibly-one mask of the operand.
	return Bits{Zero: ^lowMaskLen(bits.Len64(^a.Zero))}
}

func bitsSar(a, b Bits) Bits {
	if c, ok := shiftCount(b, 63); ok {
		r := Bits{Zero: a.Zero >> c, One: a.One >> c}
		switch {
		case a.Zero&signBit != 0:
			r.Zero |= highMaskN(c)
		case a.One&signBit != 0:
			r.One |= highMaskN(c)
		default:
			// Sign unknown: the c duplicated top bits are unknown.
			r.Zero &^= highMaskN(c)
			r.One &^= highMaskN(c)
		}
		return r
	}
	switch {
	case a.Zero&signBit != 0:
		// Non-negative operand: behaves exactly like a logical shift.
		return Bits{Zero: ^lowMaskLen(bits.Len64(^a.Zero))}
	case a.One&signBit != 0:
		// Negative operand: the provably-one leading bits survive any
		// arithmetic right shift.
		return Bits{One: highMaskN(uint64(bits.LeadingZeros64(^a.One)))}
	}
	return TopBits()
}

func bitsRol(a, b Bits) Bits {
	if c, ok := shiftCount(b, 63); ok {
		return Bits{Zero: bits.RotateLeft64(a.Zero, int(c)), One: bits.RotateLeft64(a.One, int(c))}
	}
	return TopBits()
}
func bitsRor(a, b Bits) Bits {
	if c, ok := shiftCount(b, 63); ok {
		return Bits{Zero: bits.RotateLeft64(a.Zero, -int(c)), One: bits.RotateLeft64(a.One, -int(c))}
	}
	return TopBits()
}

func boolBits() Bits { return Bits{Zero: ^uint64(1)} }

func bitsEq(a, b Bits) Bits {
	// A position where one side is provably 0 and the other provably 1
	// decides the comparison.
	if a.Zero&b.One != 0 || a.One&b.Zero != 0 {
		return ExactBits(0)
	}
	if _, aok := a.Exact(); aok {
		if _, bok := b.Exact(); bok {
			return ExactBits(1) // fully known with no differing bit
		}
	}
	return boolBits()
}

func bitsUlt(a, b Bits) Bits {
	if av, ok := a.Exact(); ok {
		if bv, ok := b.Exact(); ok {
			if av < bv {
				return ExactBits(1)
			}
			return ExactBits(0)
		}
	}
	return boolBits()
}

func bitsSlt(a, b Bits) Bits {
	if av, ok := a.Exact(); ok {
		if bv, ok := b.Exact(); ok {
			if int64(av) < int64(bv) {
				return ExactBits(1)
			}
			return ExactBits(0)
		}
	}
	return boolBits()
}

func bitsBswap(a, b Bits) Bits {
	return Bits{Zero: bits.ReverseBytes64(a.Zero), One: bits.ReverseBytes64(a.One)}
}

func bitsPopcnt(a, b Bits) Bits {
	lo := bits.OnesCount64(a.One)
	hi := 64 - bits.OnesCount64(a.Zero)
	if lo == hi {
		return ExactBits(uint64(lo))
	}
	return bitsCount(a, b)
}

// bitsCount covers results that are bit counts in [0, 64]: only the
// low 7 bits can ever be set.
func bitsCount(a, b Bits) Bits { return Bits{Zero: ^uint64(0x7f)} }

func bitsSext(width uint) BitsTransfer {
	m := uint64(1)<<width - 1
	sign := uint64(1) << (width - 1)
	return func(a, b Bits) Bits {
		r := Bits{Zero: a.Zero & m, One: a.One & m}
		if a.Zero&sign != 0 {
			r.Zero |= ^m
		} else if a.One&sign != 0 {
			r.One |= ^m
		}
		return r
	}
}

func bitsZext(width uint) BitsTransfer {
	m := uint64(1)<<width - 1
	return func(a, b Bits) Bits {
		return Bits{Zero: a.Zero&m | ^m, One: a.One & m}
	}
}

// --- known-bits transfers, 32-bit forms ---

// trunc32b is the abstraction of uint32(x): low-lane knowledge kept,
// high bits provably zero.
func trunc32b(a Bits) Bits {
	return Bits{Zero: a.Zero&mask32 | high32, One: a.One & mask32}
}

// bits32 lifts a 64-bit transfer to the 32-bit form: compute on the
// truncated operands, keep only the low lane of the result (the lane
// agrees with arithmetic mod 2^32 for every lifted op), and pin the
// zero-extended high half.
func bits32(f BitsTransfer) BitsTransfer {
	return func(a, b Bits) Bits {
		r := f(trunc32b(a), trunc32b(b))
		return Bits{Zero: r.Zero&mask32 | high32, One: r.One & mask32}
	}
}

func bitsShl32(a, b Bits) Bits {
	if c, ok := shiftCount(b, 31); ok {
		az, ao := a.Zero&mask32, a.One&mask32
		return Bits{Zero: (az<<c|lowMaskLen(int(c)))&mask32 | high32, One: ao << c & mask32}
	}
	tz := bits.TrailingZeros64(^a.Zero)
	if tz > 32 {
		tz = 32
	}
	return Bits{Zero: lowMaskLen(tz) | high32}
}

func bitsShr32(a, b Bits) Bits {
	if c, ok := shiftCount(b, 31); ok {
		a32 := trunc32b(a)
		return Bits{Zero: a32.Zero>>c | highMaskN(c), One: a32.One >> c}
	}
	return Bits{Zero: ^lowMaskLen(bits.Len64(^a.Zero & mask32))}
}

func bitsSar32(a, b Bits) Bits {
	if c, ok := shiftCount(b, 31); ok {
		az, ao := a.Zero&mask32, a.One&mask32
		r := Bits{Zero: az>>c | high32, One: ao >> c}
		laneHigh := (mask32 >> c) ^ mask32 // the c sign-duplicated lane bits
		if az&(1<<31) != 0 {
			r.Zero |= laneHigh
		} else if ao&(1<<31) != 0 {
			r.One |= laneHigh
		} else {
			r.Zero &^= laneHigh
			r.One &^= laneHigh
			r.Zero |= high32
		}
		return r
	}
	return Bits{Zero: high32}
}

func bitsNot32(a, b Bits) Bits {
	return Bits{Zero: a.One&mask32 | high32, One: a.Zero & mask32}
}

func bitsMShl(a, b Bits) Bits {
	return Bits{Zero: a.Zero<<1 | 1, One: a.One << 1}
}
func bitsMShr(a, b Bits) Bits {
	return Bits{Zero: a.Zero>>1 | signBit, One: a.One >> 1}
}

// --- interval transfers, 64-bit ---

// uspan builds a Span from unsigned bounds only; Reduce derives the
// signed range when the unsigned one does not straddle the sign bit.
func uspan(lo, hi uint64) Span {
	s := TopSpan()
	s.Lo, s.Hi = lo, hi
	return s
}

// sspan builds a Span from signed bounds only.
func sspan(lo, hi int64) Span {
	s := TopSpan()
	s.SLo, s.SHi = lo, hi
	return s
}

func addOvfS(x, y int64) (int64, bool) {
	s := x + y
	if (x >= 0) == (y >= 0) && (s >= 0) != (x >= 0) {
		return 0, false
	}
	return s, true
}

func subOvfS(x, y int64) (int64, bool) {
	s := x - y
	if (x >= 0) != (y >= 0) && (s >= 0) != (x >= 0) {
		return 0, false
	}
	return s, true
}

func spanAdd(a, b Span) Span {
	r := TopSpan()
	if a.Hi <= ^uint64(0)-b.Hi {
		r.Lo, r.Hi = a.Lo+b.Lo, a.Hi+b.Hi
	}
	if lo, ok := addOvfS(a.SLo, b.SLo); ok {
		if hi, ok := addOvfS(a.SHi, b.SHi); ok {
			r.SLo, r.SHi = lo, hi
		}
	}
	return r
}

func spanSub(a, b Span) Span {
	r := TopSpan()
	if a.Lo >= b.Hi {
		r.Lo, r.Hi = a.Lo-b.Hi, a.Hi-b.Lo
	}
	if lo, ok := subOvfS(a.SLo, b.SHi); ok {
		if hi, ok := subOvfS(a.SHi, b.SLo); ok {
			r.SLo, r.SHi = lo, hi
		}
	}
	return r
}

func spanMul(a, b Span) Span {
	if hi, _ := bits.Mul64(a.Hi, b.Hi); hi == 0 {
		return uspan(a.Lo*b.Lo, a.Hi*b.Hi)
	}
	return TopSpan()
}

func spanDivU(a, b Span) Span {
	if b.Hi == 0 {
		return ExactSpan(0) // division by zero is defined as zero
	}
	if b.Lo > 0 {
		return uspan(a.Lo/b.Hi, a.Hi/b.Lo)
	}
	// The divisor may be zero (result 0) or not (result <= a).
	return uspan(0, a.Hi)
}

func spanRemU(a, b Span) Span {
	if b.Hi == 0 {
		return ExactSpan(0)
	}
	// a % b <= a, and < b when b > 0; b == 0 yields 0, also in range.
	return uspan(0, minU(a.Hi, b.Hi-1))
}

func spanAnd(a, b Span) Span { return uspan(0, minU(a.Hi, b.Hi)) }

func spanOr(a, b Span) Span {
	l := bits.Len64(a.Hi)
	if lb := bits.Len64(b.Hi); lb > l {
		l = lb
	}
	return uspan(maxU(a.Lo, b.Lo), lowMaskLen(l))
}

func spanXor(a, b Span) Span {
	l := bits.Len64(a.Hi)
	if lb := bits.Len64(b.Hi); lb > l {
		l = lb
	}
	return uspan(0, lowMaskLen(l))
}

func spanShl(a, b Span) Span {
	if b.Lo == b.Hi {
		c := b.Lo & 63
		if bits.Len64(a.Hi)+int(c) <= 64 {
			return uspan(a.Lo<<c, a.Hi<<c)
		}
	}
	return TopSpan()
}

func spanShr(a, b Span) Span {
	if b.Hi <= 63 {
		// Every possible count equals b itself (the &63 mask is a
		// no-op), and x>>c is monotone in x and antitone in c.
		return uspan(a.Lo>>b.Hi, a.Hi>>b.Lo)
	}
	return uspan(0, a.Hi) // a logical right shift never grows the value
}

func spanSar(a, b Span) Span {
	if b.Lo == b.Hi {
		c := b.Lo & 63
		return sspan(a.SLo>>c, a.SHi>>c)
	}
	if b.Hi <= 63 {
		lo := minS(a.SLo>>b.Lo, a.SLo>>b.Hi)
		hi := maxS(a.SHi>>b.Lo, a.SHi>>b.Hi)
		return sspan(lo, hi)
	}
	// Unknown count in [0, 63]: the result moves from x toward 0/-1.
	return sspan(minS(a.SLo, 0), maxS(a.SHi, -1))
}

func spanEq(a, b Span) Span {
	if a.Lo == a.Hi && b.Lo == b.Hi && a.Lo == b.Lo {
		return ExactSpan(1)
	}
	if a.Hi < b.Lo || b.Hi < a.Lo || a.SHi < b.SLo || b.SHi < a.SLo {
		return ExactSpan(0)
	}
	return boolSpan()
}

func spanUlt(a, b Span) Span {
	if a.Hi < b.Lo {
		return ExactSpan(1)
	}
	if a.Lo >= b.Hi {
		return ExactSpan(0)
	}
	return boolSpan()
}

func spanSlt(a, b Span) Span {
	if a.SHi < b.SLo {
		return ExactSpan(1)
	}
	if a.SLo >= b.SHi {
		return ExactSpan(0)
	}
	return boolSpan()
}

func spanNot(a, b Span) Span {
	// ^x is a monotone-decreasing bijection in both orders.
	return Span{Lo: ^a.Hi, Hi: ^a.Lo, SLo: ^a.SHi, SHi: ^a.SLo}
}

func spanNeg(a, b Span) Span {
	r := TopSpan()
	switch {
	case a.Hi == 0:
		r.Lo, r.Hi = 0, 0
	case a.Lo > 0:
		r.Lo, r.Hi = -a.Hi, -a.Lo // 0 excluded: no wraparound inside the range
	}
	if a.SLo != minInt64 {
		r.SLo, r.SHi = -a.SHi, -a.SLo
	}
	return r
}

const minInt64 = -1 << 63

func spanPopcnt(a, b Span) Span {
	lo := uint64(0)
	if a.Lo > 0 {
		lo = 1
	}
	hi := uint64(bits.Len64(a.Hi)) // popcnt(x) <= bit length of x <= bit length of Hi
	s := uspan(lo, hi)
	s.SLo, s.SHi = int64(lo), int64(hi)
	return s
}

func spanClz(a, b Span) Span {
	// clz is antitone: x in [Lo, Hi] pins clz(x) in [clz(Hi), clz(Lo)].
	lo := uint64(bits.LeadingZeros64(a.Hi))
	hi := uint64(bits.LeadingZeros64(a.Lo))
	s := uspan(lo, hi)
	s.SLo, s.SHi = int64(lo), int64(hi)
	return s
}

func spanCtz(a, b Span) Span {
	hi := uint64(64)
	if a.Lo > 0 {
		hi = uint64(bits.Len64(a.Hi)) - 1 // 2^ctz(x) <= x <= Hi
	}
	s := uspan(0, hi)
	s.SLo, s.SHi = 0, int64(hi)
	return s
}

func spanSext(width uint) SpanTransfer {
	half := uint64(1) << (width - 1)
	return func(a, b Span) Span {
		if a.Hi < half {
			// The value fits the narrow width with a clear sign bit, so
			// the extension is the identity.
			return Span{Lo: a.Lo, Hi: a.Hi, SLo: int64(a.Lo), SHi: int64(a.Hi)}
		}
		return sspan(-int64(half), int64(half)-1)
	}
}

func spanZext(width uint) SpanTransfer {
	m := uint64(1)<<width - 1
	return func(a, b Span) Span {
		if a.Hi <= m {
			return Span{Lo: a.Lo, Hi: a.Hi, SLo: int64(a.Lo), SHi: int64(a.Hi)}
		}
		return Span{Lo: 0, Hi: m, SLo: 0, SHi: int64(m)}
	}
}

// --- interval transfers, 32-bit forms ---

func span32Top() Span {
	return Span{Lo: 0, Hi: mask32, SLo: 0, SHi: int64(mask32)}
}

// span32 lifts a 64-bit interval transfer to the 32-bit form. It is
// sound only when no concrete operand or result truncates: both
// operand ranges and the computed result range must fit in 32 bits,
// otherwise it falls back to the full zero-extended lane.
func span32(f SpanTransfer) SpanTransfer {
	return func(a, b Span) Span {
		if a.Hi <= mask32 && b.Hi <= mask32 {
			if r := f(a, b); !r.Empty() && r.Hi <= mask32 {
				return Span{Lo: r.Lo, Hi: r.Hi, SLo: int64(r.Lo), SHi: int64(r.Hi)}
			}
		}
		return span32Top()
	}
}

func spanShl32(a, b Span) Span {
	if b.Lo == b.Hi && a.Hi <= mask32 {
		c := b.Lo & 31
		if bits.Len64(a.Hi)+int(c) <= 32 {
			return Span{Lo: a.Lo << c, Hi: a.Hi << c, SLo: int64(a.Lo << c), SHi: int64(a.Hi << c)}
		}
	}
	return span32Top()
}

func spanShr32(a, b Span) Span {
	if a.Hi > mask32 {
		return span32Top()
	}
	lo, hi := uint64(0), a.Hi
	if b.Hi <= 31 {
		lo, hi = a.Lo>>b.Hi, a.Hi>>b.Lo
	}
	return Span{Lo: lo, Hi: hi, SLo: int64(lo), SHi: int64(hi)}
}

func spanSar32(a, b Span) Span {
	if a.Hi < 1<<31 {
		// Non-negative int32 operand: identical to the logical shift.
		return spanShr32(a, b)
	}
	return span32Top()
}

func spanNot32(a, b Span) Span {
	if a.Hi <= mask32 {
		lo, hi := mask32-a.Hi, mask32-a.Lo
		return Span{Lo: lo, Hi: hi, SLo: int64(lo), SHi: int64(hi)}
	}
	return span32Top()
}

func spanNeg32(a, b Span) Span {
	if a.Hi == 0 {
		return ExactSpan(0)
	}
	if a.Lo > 0 && a.Hi <= mask32 {
		lo, hi := (mask32+1)-a.Hi, (mask32+1)-a.Lo
		return Span{Lo: lo, Hi: hi, SLo: int64(lo), SHi: int64(hi)}
	}
	return span32Top()
}

func spanMShl(a, b Span) Span {
	if bits.Len64(a.Hi) <= 63 {
		return uspan(a.Lo<<1, a.Hi<<1)
	}
	return TopSpan()
}

func spanMShr(a, b Span) Span { return uspan(a.Lo>>1, a.Hi>>1) }
