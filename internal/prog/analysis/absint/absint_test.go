package absint

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/prog"
)

// TestTablesTotal pins the runtime side of repolint check 5: every
// opcode (pseudo-ops included) has a non-nil transfer function in
// both domains, so no node can ever dereference a nil table entry.
func TestTablesTotal(t *testing.T) {
	for op := 0; op < prog.NumOps; op++ {
		if bitsTable[op] == nil {
			t.Errorf("bitsTable[%s] is nil", prog.Op(op))
		}
		if spanTable[op] == nil {
			t.Errorf("spanTable[%s] is nil", prog.Op(op))
		}
	}
}

func TestDomainBasics(t *testing.T) {
	v := Exact(42)
	if c, ok := v.Exact(); !ok || c != 42 {
		t.Fatalf("Exact(42).Exact() = %v, %v", c, ok)
	}
	if !v.Contains(42) || v.Contains(43) {
		t.Fatalf("Exact(42) containment wrong")
	}
	j := v.Join(Exact(40))
	if !j.Contains(40) || !j.Contains(42) {
		t.Fatalf("join lost a member")
	}
	if j.Contains(50) {
		t.Fatalf("join of 40 and 42 should exclude 50 (range [40,42])")
	}
	m := Exact(1).Meet(Exact(2))
	if !m.Empty() {
		t.Fatalf("meet of distinct singletons must be empty, got %v", m)
	}
	if Top().Empty() || !Top().Contains(0) || !Top().Contains(^uint64(0)) {
		t.Fatalf("Top must contain everything")
	}
}

// TestReduceExchangesDomains checks the two reduction directions:
// known bits tighten ranges and tight ranges pin leading bits.
func TestReduceExchangesDomains(t *testing.T) {
	// Bits → range: low byte known to be 0x80, rest unknown.
	v := Value{B: Bits{Zero: 0x7f, One: 0x80}, S: TopSpan()}.Reduce()
	if v.S.Lo != 0x80 {
		t.Errorf("reduce: unsigned lo = %#x, want 0x80", v.S.Lo)
	}
	// Range → bits: [0x100, 0x1ff] pins every bit above bit 8.
	v = Value{B: TopBits(), S: Span{Lo: 0x100, Hi: 0x1ff, SLo: 0x100, SHi: 0x1ff}}.Reduce()
	if v.B.One&0x100 == 0 {
		t.Errorf("reduce: bit 8 should be known one, bits=%+v", v.B)
	}
	if v.B.Zero&^uint64(0x1ff) != ^uint64(0x1ff) {
		t.Errorf("reduce: bits above 8 should be known zero, bits=%+v", v.B)
	}
}

// TestTransferPrecision spot-checks the facts downstream layers rely
// on (rule side-conditions, comparison deciding, shift-mask lints).
func TestTransferPrecision(t *testing.T) {
	top := Top()

	// andq with a constant mask bounds both domains.
	v := Transfer(prog.OpAnd, top, Exact(0xff))
	if v.B.Zero&^uint64(0xff) != ^uint64(0xff) {
		t.Errorf("and 0xff: high bits not known zero: %v", v)
	}
	if v.S.Hi > 0xff {
		t.Errorf("and 0xff: unsigned hi %#x > 0xff", v.S.Hi)
	}

	// popcnt lands in [0, 64], which decides ultq(popcnt(x), 65).
	pc := Transfer(prog.OpPopcnt, top, top)
	if pc.S.Hi != 64 || pc.S.Lo != 0 {
		t.Errorf("popcnt range = %v, want [0, 64]", pc.S)
	}
	cmp := Transfer(prog.OpUlt, pc, Exact(65))
	if c, ok := cmp.Exact(); !ok || c != 1 {
		t.Errorf("ult(popcnt, 65) = %v, want const 1", cmp)
	}

	// Shift counts are consumed mod width: shll by 32 is shll by 0,
	// i.e. a zero-extension.
	v = Transfer(prog.OpShl32, top, Exact(32))
	if v.B.Zero&high32 != high32 {
		t.Errorf("shl32 by 32: high half not provably zero: %v", v)
	}

	// zextlq output proves the high half zero...
	z := Transfer(prog.OpZext32, top, top)
	if z.B.Zero&high32 != high32 {
		t.Errorf("zext32: high half not provably zero: %v", z)
	}
	// ...which known-bits carries through an andq.
	v = Transfer(prog.OpAnd, z, top)
	if v.B.Zero&high32 != high32 {
		t.Errorf("and(zext32, top): high half not provably zero: %v", v)
	}

	// Signed comparison decided by sign facts: sarq(x, 63) is in
	// {-1, 0}, so sltq(sar, 1) is always 1.
	sar := Transfer(prog.OpSar, top, Exact(63))
	if sar.S.SLo != -1 || sar.S.SHi != 0 {
		t.Errorf("sar 63 signed range = %v, want [-1, 0]", sar.S)
	}
	cmp = Transfer(prog.OpSlt, sar, Exact(1))
	if c, ok := cmp.Exact(); !ok || c != 1 {
		t.Errorf("slt(sar63, 1) = %v, want const 1", cmp)
	}

	// Exact folding goes through prog.EvalOp, corner cases included.
	if v, ok := Transfer(prog.OpDivU, Exact(7), Exact(0)).Exact(); !ok || v != 0 {
		t.Errorf("divu by zero: want const 0")
	}
}

// arbValue builds a random abstraction guaranteed to contain c: a
// random subset of c's bits becomes known, and the range is the hull
// of c and a second random point, occasionally widened to Top.
func arbValue(rng *rand.Rand, c uint64) Value {
	if rng.IntN(4) == 0 {
		return Top()
	}
	mask := rng.Uint64() & rng.Uint64() // sparse known mask
	b := Bits{Zero: ^c & mask, One: c & mask}
	s := ExactSpan(c).Join(ExactSpan(rng.Uint64()))
	if rng.IntN(2) == 0 {
		s = TopSpan()
	}
	return Value{B: b, S: s}.Reduce()
}

// TestTransferSoundnessRandom differentially checks every opcode's
// transfer functions against prog.EvalOp under randomly partial
// operand knowledge — the per-op complement of the program-level
// FuzzAbstractDomains.
func TestTransferSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xab51de7, 0x5eed))
	interesting := []uint64{0, 1, 2, 31, 32, 63, 64, 0x7f, 0xff, ^uint64(0), signBit, signBit - 1, mask32, mask32 + 1}
	draw := func() uint64 {
		if rng.IntN(2) == 0 {
			return interesting[rng.IntN(len(interesting))]
		}
		return rng.Uint64()
	}
	for op := prog.Op(0); int(op) < prog.NumOps; op++ {
		if !op.IsInstruction() {
			continue
		}
		for trial := 0; trial < 2000; trial++ {
			a, b := draw(), draw()
			va, vb := arbValue(rng, a), arbValue(rng, b)
			if op.Arity() == 1 {
				vb = Top()
			}
			got := prog.EvalOp(op, a, b)
			r := Transfer(op, va, vb)
			if !r.B.Contains(got) {
				t.Fatalf("%s: bits unsound: a=%#x b=%#x va=%v vb=%v got=%#x abstract=%+v",
					op, a, b, va, vb, got, r.B)
			}
			if !r.S.Contains(got) {
				t.Fatalf("%s: span unsound: a=%#x b=%#x va=%v vb=%v got=%#x abstract=%+v",
					op, a, b, va, vb, got, r.S)
			}
		}
	}
}
