package absint_test

import (
	"math/rand/v2"
	"testing"

	"stochsyn/internal/mutate"
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis"
	"stochsyn/internal/prog/analysis/absint"
	"stochsyn/internal/testcase"
)

// FuzzAbstractDomains is the soundness gate for the abstract
// interpreter: for random mutator-driven programs and random inputs,
// the concrete Eval value must be contained in the abstract value at
// every node, in both domains, with Top input facts and with
// suite-derived input facts alike — and the invariant must survive
// Canonicalize. Wired into `make ci` via the fuzz gate's -run mode
// over this seed corpus.
func FuzzAbstractDomains(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(4))
	f.Add(uint64(2), uint8(2), uint8(8))
	f.Add(uint64(3), uint8(3), uint8(12))
	f.Add(uint64(0xdeadbeef), uint8(4), uint8(16))
	f.Add(uint64(0x5eed), uint8(8), uint8(24))
	f.Add(uint64(42), uint8(2), uint8(32))
	f.Fuzz(func(t *testing.T, seed uint64, rawInputs, rawSteps uint8) {
		numInputs := int(rawInputs)%prog.MaxInputs + 1
		steps := int(rawSteps) % 33
		p := mutate.RandomProgram(seed, numInputs, steps)
		if err := p.Validate(); err != nil {
			t.Fatalf("mutator produced invalid program: %v", err)
		}

		check := func(q *prog.Program, label string) {
			// Universal facts: sound for every input vector.
			facts := absint.Analyze(q, nil, nil)
			rng := rand.New(rand.NewPCG(seed^0xfac75, 0xab51de7))
			in := make([]uint64, numInputs)
			vals := make([]uint64, len(q.Nodes))
			var cases []testcase.Case
			for trial := 0; trial < 16; trial++ {
				for i := range in {
					in[i] = rng.Uint64()
				}
				q.Eval(in, vals)
				for i, v := range vals {
					if !facts[i].B.Contains(v) {
						t.Fatalf("%s: bits unsound at node %d (%s): concrete %#x not in %v\n  inputs: %v\n  program: %s",
							label, i, q.Nodes[i].Op, v, facts[i], in, q)
					}
					if !facts[i].S.Contains(v) {
						t.Fatalf("%s: span unsound at node %d (%s): concrete %#x not in %v\n  inputs: %v\n  program: %s",
							label, i, q.Nodes[i].Op, v, facts[i], in, q)
					}
				}
				cases = append(cases, testcase.Case{
					Inputs: append([]uint64(nil), in...),
					Output: vals[q.Root],
				})
			}

			// Suite-derived facts: sound for the suite's own cases, and
			// the pruner must never reject a program on a suite the
			// program itself produced.
			suite := &testcase.Suite{NumInputs: numInputs, Cases: cases}
			inFacts := absint.InputFacts(suite)
			sfacts := absint.Analyze(q, inFacts, nil)
			for _, c := range cases {
				q.Eval(c.Inputs, vals)
				for i, v := range vals {
					if !sfacts[i].Contains(v) {
						t.Fatalf("%s: suite facts unsound at node %d (%s): concrete %#x not in %v\n  inputs: %v\n  program: %s",
							label, i, q.Nodes[i].Op, v, sfacts[i], c.Inputs, q)
					}
				}
			}
			if absint.NewPruner(suite).Rejects(q) {
				t.Fatalf("%s: pruner rejected a program on its own suite\n  program: %s", label, q)
			}
		}

		check(p, "raw")
		check(analysis.Canonicalize(p), "canonical")
	})
}
