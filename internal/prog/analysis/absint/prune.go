package absint

import (
	"stochsyn/internal/prog"
	"stochsyn/internal/testcase"
)

// Pruner decides, from abstract facts alone, that a candidate program
// provably cannot solve a problem — before any concrete evaluation is
// paid for.
//
// The argument: the per-input facts are joins over every example
// case's input (InputFacts), so for each case i the concrete inputs
// satisfy the input facts, and by transfer-function soundness the
// concrete root value of case i is contained in the abstract root
// value V. If some case's target output t_i is NOT contained in V,
// that case's output cannot equal t_i, so the program misses case i
// and is provably not a solution. Rejection is therefore sound by
// construction; bench -exp prune re-verifies it empirically by
// re-running every rejected proposal through the concrete evaluator.
//
// A Pruner is cheap (one abstract pass over at most prog.MaxNodes
// nodes plus one containment check per distinct target) but owns its
// scratch space, so it is single-goroutine state like the search Run
// that embeds it; distinct Pruners over the same suite are
// independent.
type Pruner struct {
	in      []Value
	targets []uint64 // distinct target outputs, one containment probe each
	scratch []Value
}

// NewPruner builds a pruner for the problem's example suite.
func NewPruner(s *testcase.Suite) *Pruner {
	pr := &Pruner{in: InputFacts(s)}
	seen := make(map[uint64]bool, len(s.Cases))
	for _, c := range s.Cases {
		if !seen[c.Output] {
			seen[c.Output] = true
			pr.targets = append(pr.targets, c.Output)
		}
	}
	return pr
}

// Rejects reports whether p provably cannot match the example set:
// some target output lies outside the abstract root value. A false
// return says nothing (the proposal may still miss); a true return is
// a proof of a miss.
func (pr *Pruner) Rejects(p *prog.Program) bool {
	pr.scratch = Analyze(p, pr.in, pr.scratch)
	root := pr.scratch[p.Root]
	for _, t := range pr.targets {
		if !root.Contains(t) {
			return true
		}
	}
	return false
}

// Root returns the abstract root value of the last Rejects call's
// analysis — diagnostic output for the bench report.
func (pr *Pruner) Root(p *prog.Program) Value {
	pr.scratch = Analyze(p, pr.in, pr.scratch)
	return pr.scratch[p.Root]
}
