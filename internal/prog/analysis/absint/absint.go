// Package absint is a forward abstract-interpretation framework over
// prog nodes. It tracks two abstract domains per value:
//
//   - known-bits (Bits): each of the 64 bit positions is provably 0,
//     provably 1, or unknown;
//   - intervals (Span): an unsigned range [Lo, Hi] and a signed range
//     [SLo, SHi], tracked together so comparisons in either order are
//     decidable when the ranges permit.
//
// Every opcode has a transfer function in both domains (transfer.go),
// each sound against the exact evalOp x86 semantics in
// internal/prog/eval.go — including the flag-free shift-count masking
// (b&63, b&31 for the 32-bit forms), divide-by-zero-yields-zero, and
// the zero-extension of every 32-bit result. Soundness is the single
// invariant everything else rests on:
//
//	for every concrete input assignment, the concrete value of a node
//	is contained in its abstract Value.
//
// FuzzAbstractDomains checks it differentially against prog.EvalOp on
// random mutator-driven programs.
//
// The product of the two domains is Value; Reduce exchanges
// information between them (known leading bits tighten ranges, tight
// ranges pin leading bits), so each domain benefits from facts the
// other derived. Join (set union) merges facts across control paths
// or example cases; Meet (set intersection) combines facts about the
// same value, e.g. across the members of an e-class, and can expose a
// contradiction (Empty), which downstream consumers treat as an
// unsoundness canary.
package absint

import (
	"fmt"
	"math"
	"math/bits"
)

const (
	signBit = uint64(1) << 63
	mask32  = uint64(0xffffffff)
	high32  = ^mask32
)

// Bits is the known-bits domain: a bit set in Zero is provably 0 in
// the concrete value, a bit set in One is provably 1, and bits in
// neither mask are unknown. A bit set in both masks is a
// contradiction, making the abstract set empty.
type Bits struct {
	Zero uint64 // bits provably 0
	One  uint64 // bits provably 1
}

// TopBits is the no-information element: every bit unknown.
func TopBits() Bits { return Bits{} }

// ExactBits is the singleton abstraction of v: every bit known.
func ExactBits(v uint64) Bits { return Bits{Zero: ^v, One: v} }

// Known returns the mask of bit positions with a known value.
func (b Bits) Known() uint64 { return b.Zero | b.One }

// Exact returns the single concrete value b describes, if all 64 bits
// are known.
func (b Bits) Exact() (uint64, bool) {
	if b.Zero|b.One == ^uint64(0) && b.Zero&b.One == 0 {
		return b.One, true
	}
	return 0, false
}

// Empty reports whether b is contradictory (some bit provably both 0
// and 1), describing no concrete value.
func (b Bits) Empty() bool { return b.Zero&b.One != 0 }

// Contains reports whether the concrete value v is described by b.
func (b Bits) Contains(v uint64) bool {
	return v&b.Zero == 0 && ^v&b.One == 0
}

// Join returns the union: a bit stays known only when both sides
// agree on it.
func (b Bits) Join(o Bits) Bits {
	return Bits{Zero: b.Zero & o.Zero, One: b.One & o.One}
}

// Meet returns the intersection: everything either side knows. The
// result is Empty when the two sides contradict.
func (b Bits) Meet(o Bits) Bits {
	return Bits{Zero: b.Zero | o.Zero, One: b.One | o.One}
}

// uminFromBits / umaxFromBits are the extreme unsigned values
// consistent with the known bits (unknown bits all-0 resp. all-1).
func (b Bits) umin() uint64 { return b.One }
func (b Bits) umax() uint64 { return ^b.Zero }

// smin / smax are the extreme signed values consistent with the known
// bits: the sign bit, when unknown, is set for the minimum and clear
// for the maximum; all lower unknown bits go to 0 resp. 1.
func (b Bits) smin() int64 {
	unknown := ^b.Known()
	return int64(b.One | unknown&signBit)
}
func (b Bits) smax() int64 {
	unknown := ^b.Known()
	return int64(b.One | unknown&^signBit)
}

// Span is the interval domain: the concrete value lies in [Lo, Hi]
// unsigned and in [SLo, SHi] signed. An inverted range (Lo > Hi or
// SLo > SHi) is empty.
type Span struct {
	Lo, Hi   uint64
	SLo, SHi int64
}

// TopSpan is the no-information element: full unsigned and signed
// ranges.
func TopSpan() Span {
	return Span{Lo: 0, Hi: ^uint64(0), SLo: math.MinInt64, SHi: math.MaxInt64}
}

// ExactSpan is the singleton abstraction of v.
func ExactSpan(v uint64) Span {
	return Span{Lo: v, Hi: v, SLo: int64(v), SHi: int64(v)}
}

// boolSpan describes a comparison result: {0, 1}.
func boolSpan() Span { return Span{Lo: 0, Hi: 1, SLo: 0, SHi: 1} }

// Empty reports whether s describes no concrete value.
func (s Span) Empty() bool { return s.Lo > s.Hi || s.SLo > s.SHi }

// Exact returns the single concrete value s describes, if any.
func (s Span) Exact() (uint64, bool) {
	if s.Lo == s.Hi && !s.Empty() {
		return s.Lo, true
	}
	return 0, false
}

// Contains reports whether the concrete value v is described by s.
func (s Span) Contains(v uint64) bool {
	return s.Lo <= v && v <= s.Hi && s.SLo <= int64(v) && int64(v) <= s.SHi
}

// Join returns the union (interval hull).
func (s Span) Join(o Span) Span {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	return Span{
		Lo: minU(s.Lo, o.Lo), Hi: maxU(s.Hi, o.Hi),
		SLo: minS(s.SLo, o.SLo), SHi: maxS(s.SHi, o.SHi),
	}
}

// Meet returns the intersection; the result may be Empty.
func (s Span) Meet(o Span) Span {
	return Span{
		Lo: maxU(s.Lo, o.Lo), Hi: minU(s.Hi, o.Hi),
		SLo: maxS(s.SLo, o.SLo), SHi: minS(s.SHi, o.SHi),
	}
}

// Value is the product domain: known bits and intervals about the
// same concrete value.
type Value struct {
	B Bits
	S Span
}

// Top is the no-information Value. Note that Value's zero value is
// NOT Top (a zero Span describes exactly {0}); always construct
// through Top, Exact, or a transfer function.
func Top() Value { return Value{B: TopBits(), S: TopSpan()} }

// Exact is the singleton abstraction of v.
func Exact(v uint64) Value { return Value{B: ExactBits(v), S: ExactSpan(v)} }

// Bool is the abstraction of a comparison result: {0, 1}.
func Bool() Value {
	return Value{B: Bits{Zero: ^uint64(1)}, S: boolSpan()}
}

// Empty reports whether v describes no concrete value at all — a
// contradiction. Sound transfer functions never produce it from
// non-empty inputs; a Meet of facts about genuinely different values
// can.
func (v Value) Empty() bool { return v.B.Empty() || v.S.Empty() }

// Contains reports whether the concrete value c is described by v.
// This is the soundness predicate: concrete evaluation must satisfy
// Contains at every node.
func (v Value) Contains(c uint64) bool {
	return v.B.Contains(c) && v.S.Contains(c)
}

// Exact returns the single concrete value v describes, if v pins one.
func (v Value) Exact() (uint64, bool) {
	if c, ok := v.B.Exact(); ok && v.S.Contains(c) {
		return c, true
	}
	if c, ok := v.S.Exact(); ok && v.B.Contains(c) {
		return c, true
	}
	return 0, false
}

// Join returns the union of the two abstract sets.
func (v Value) Join(o Value) Value {
	return Value{B: v.B.Join(o.B), S: v.S.Join(o.S)}
}

// Meet returns the intersection, reduced; it may be Empty.
func (v Value) Meet(o Value) Value {
	return Value{B: v.B.Meet(o.B), S: v.S.Meet(o.S)}.Reduce()
}

// Reduce exchanges information between the two domains until neither
// can tighten the other: known bits bound the ranges, and the shared
// leading bits of a tight unsigned range become known bits. Reduction
// only ever shrinks the abstract set, so it preserves soundness.
func (v Value) Reduce() Value {
	for i := 0; i < 4; i++ {
		if v.Empty() {
			return v
		}
		prev := v
		// Bits → unsigned range.
		v.S.Lo = maxU(v.S.Lo, v.B.umin())
		v.S.Hi = minU(v.S.Hi, v.B.umax())
		// Bits → signed range.
		v.S.SLo = maxS(v.S.SLo, v.B.smin())
		v.S.SHi = minS(v.S.SHi, v.B.smax())
		// Unsigned range ↔ signed range, when the range does not
		// straddle the sign boundary (then the two orders agree).
		if v.S.Lo > v.S.Hi { // emptied above; bail before the casts below
			return v
		}
		if v.S.Hi < signBit || v.S.Lo >= signBit {
			v.S.SLo = maxS(v.S.SLo, int64(v.S.Lo))
			v.S.SHi = minS(v.S.SHi, int64(v.S.Hi))
		}
		if v.S.SLo <= v.S.SHi && (v.S.SLo >= 0 || v.S.SHi < 0) {
			v.S.Lo = maxU(v.S.Lo, uint64(v.S.SLo))
			v.S.Hi = minU(v.S.Hi, uint64(v.S.SHi))
		}
		// Unsigned range → bits: the common leading bits of Lo and Hi
		// are shared by every value in between.
		if !v.S.Empty() {
			prefix := commonPrefixMask(v.S.Lo, v.S.Hi)
			v.B.Zero |= prefix &^ v.S.Lo
			v.B.One |= prefix & v.S.Lo
		}
		if v == prev {
			return v
		}
	}
	return v
}

// commonPrefixMask returns the mask of leading bit positions on which
// lo and hi agree; every value in [lo, hi] shares those bits.
func commonPrefixMask(lo, hi uint64) uint64 {
	x := lo ^ hi
	if x == 0 {
		return ^uint64(0)
	}
	k := bits.LeadingZeros64(x)
	return ^uint64(0) << (64 - k) // k < 64 here, so the shift is defined
}

// String renders the value compactly: "top" for no information,
// "const 0x…" for singletons, otherwise the non-trivial components.
func (v Value) String() string {
	if v.Empty() {
		return "empty"
	}
	if c, ok := v.Exact(); ok {
		return fmt.Sprintf("const %#x", c)
	}
	s := ""
	if k := v.B.Known(); k != 0 {
		s += fmt.Sprintf("zero=%#x one=%#x", v.B.Zero, v.B.One)
	}
	full := TopSpan()
	if v.S.Lo != full.Lo || v.S.Hi != full.Hi {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("u=[%#x,%#x]", v.S.Lo, v.S.Hi)
	}
	if v.S.SLo != full.SLo || v.S.SHi != full.SHi {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("s=[%d,%d]", v.S.SLo, v.S.SHi)
	}
	if s == "" {
		return "top"
	}
	return s
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
func minS(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
func maxS(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
