package analysis

import "stochsyn/internal/prog"

// The rewrite engine is the single source of truth for algebraic
// simplification: the lint pass reports what it would rewrite, and the
// canonicalizer applies the rewrites. Keeping one rule table means the
// fuzz and Eval-equivalence tests that exercise the canonicalizer also
// vouch for the lints.
//
// Every rule must be sound under the exact evalOp semantics:
//
//   - shifts mask their count (b & 63, 32-bit b & 31), so a shift by a
//     multiple of the width is the identity, never an annihilator;
//   - division and remainder by zero produce zero (and MinInt64 / -1
//     produces zero), so x/x and x%x are NOT blindly 1 and 0 — only
//     x%x is (zero in the zero case too);
//   - 32-bit operations zero-extend their 32-bit result, so most
//     32-bit identities (orl(x, 0) = x, shll(x, 0) = x) are UNSOUND
//     as 64-bit rewrites: the left side clears the high 32 bits, the
//     right side keeps them. Only const-producing 32-bit rules and
//     rules whose replacement is itself already zero-extended are
//     admitted.

// rwKind classifies a rewrite.
type rwKind uint8

const (
	rwNone  rwKind = iota
	rwConst        // replace the node with the constant val
	rwNode         // replace the node with the existing node at index node
)

// rewrite describes one semantics-preserving replacement of a single
// node. For rwNode the target is always a descendant of the rewritten
// node (an argument or an argument's argument), so redirecting
// references to it cannot create a cycle.
type rewrite struct {
	kind   rwKind
	val    uint64 // rwConst: the folded value
	node   int32  // rwNode: the replacement node index
	reason string
}

// constVal returns the value of node i if it is a constant node.
func constVal(p *prog.Program, i int32) (uint64, bool) {
	nd := &p.Nodes[i]
	if nd.Op == prog.OpConst {
		return nd.Val, true
	}
	return 0, false
}

// foldNode folds node i to a constant when every argument is constant.
func foldNode(p *prog.Program, i int32) (uint64, bool) {
	nd := &p.Nodes[i]
	if !nd.Op.IsInstruction() {
		return 0, false
	}
	var av, bv uint64
	var ok bool
	if av, ok = constVal(p, nd.Args[0]); !ok {
		return 0, false
	}
	if nd.Op.Arity() == 2 {
		if bv, ok = constVal(p, nd.Args[1]); !ok {
			return 0, false
		}
	}
	return prog.EvalOp(nd.Op, av, bv), true
}

// simplifyNode returns the algebraic rewrite for node i, or a rwNone
// rewrite when no rule applies. Constant folding is handled separately
// by foldNode; simplifyNode only covers rules with at least one
// non-constant operand.
func simplifyNode(p *prog.Program, i int32) rewrite {
	nd := &p.Nodes[i]
	if !nd.Op.IsInstruction() {
		return rewrite{}
	}
	if nd.Op.Arity() == 2 {
		if rw := simplifyBinary(p, i); rw.kind != rwNone {
			return rw
		}
		return rewrite{}
	}
	return simplifyUnary(p, i)
}

// simplifyBinary covers the binary rules: equal-argument identities
// and annihilators, then constant-operand identities and annihilators.
func simplifyBinary(p *prog.Program, i int32) rewrite {
	nd := &p.Nodes[i]
	a, b := nd.Args[0], nd.Args[1]

	// Equal arguments. These hold for every value of the shared
	// argument, including the division edge cases (x % x is zero both
	// when x == 0, by the trap rule, and otherwise).
	if a == b {
		switch nd.Op {
		case prog.OpAnd, prog.OpMAnd:
			return rewrite{kind: rwNode, node: a, reason: "x & x = x"}
		case prog.OpOr, prog.OpMOr:
			return rewrite{kind: rwNode, node: a, reason: "x | x = x"}
		case prog.OpXor, prog.OpMXor:
			return rewrite{kind: rwConst, val: 0, reason: "x ^ x = 0"}
		case prog.OpXor32:
			return rewrite{kind: rwConst, val: 0, reason: "xorl(x, x) = 0"}
		case prog.OpSub:
			return rewrite{kind: rwConst, val: 0, reason: "x - x = 0"}
		case prog.OpSub32:
			return rewrite{kind: rwConst, val: 0, reason: "subl(x, x) = 0"}
		case prog.OpEq:
			return rewrite{kind: rwConst, val: 1, reason: "x == x is 1"}
		case prog.OpUlt, prog.OpSlt:
			return rewrite{kind: rwConst, val: 0, reason: "x < x is 0"}
		case prog.OpRemU, prog.OpRemS:
			return rewrite{kind: rwConst, val: 0, reason: "x % x = 0 (incl. x = 0)"}
		}
	}

	av, aConst := constVal(p, a)
	bv, bConst := constVal(p, b)

	// Commutative ops: normalize so the constant (if exactly one) is
	// bv and the non-constant operand is a.
	if aConst && !bConst {
		switch nd.Op {
		case prog.OpAdd, prog.OpMul, prog.OpAnd, prog.OpOr, prog.OpXor,
			prog.OpMul32, prog.OpAnd32, prog.OpOr32,
			prog.OpMAnd, prog.OpMOr, prog.OpMXor:
			a, b = b, a
			av, aConst, bv, bConst = bv, bConst, av, aConst
		}
	}

	if bConst && !aConst {
		switch nd.Op {
		case prog.OpAnd, prog.OpMAnd:
			if bv == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "x & 0 = 0"}
			}
			if bv == ^uint64(0) {
				return rewrite{kind: rwNode, node: a, reason: "x & ~0 = x"}
			}
		case prog.OpOr, prog.OpMOr:
			if bv == 0 {
				return rewrite{kind: rwNode, node: a, reason: "x | 0 = x"}
			}
			if bv == ^uint64(0) {
				return rewrite{kind: rwConst, val: ^uint64(0), reason: "x | ~0 = ~0"}
			}
		case prog.OpXor, prog.OpMXor:
			if bv == 0 {
				return rewrite{kind: rwNode, node: a, reason: "x ^ 0 = x"}
			}
		case prog.OpAdd:
			if bv == 0 {
				return rewrite{kind: rwNode, node: a, reason: "x + 0 = x"}
			}
		case prog.OpSub:
			if bv == 0 {
				return rewrite{kind: rwNode, node: a, reason: "x - 0 = x"}
			}
		case prog.OpMul:
			if bv == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "x * 0 = 0"}
			}
			if bv == 1 {
				return rewrite{kind: rwNode, node: a, reason: "x * 1 = x"}
			}
		case prog.OpDivU, prog.OpDivS:
			if bv == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "x / 0 = 0 (trap rule)"}
			}
			if bv == 1 {
				return rewrite{kind: rwNode, node: a, reason: "x / 1 = x"}
			}
		case prog.OpRemU:
			if bv == 0 || bv == 1 {
				return rewrite{kind: rwConst, val: 0, reason: "x % c = 0 for c in {0, 1}"}
			}
		case prog.OpRemS:
			if bv == 0 || bv == 1 || bv == ^uint64(0) {
				return rewrite{kind: rwConst, val: 0, reason: "x rem c = 0 for c in {0, 1, -1}"}
			}
		case prog.OpShl, prog.OpShr, prog.OpSar, prog.OpRol, prog.OpRor:
			if bv&63 == 0 {
				// x86 count masking: shifting by any multiple of 64
				// (including 64 itself) is the identity, never zero.
				return rewrite{kind: rwNode, node: a, reason: "shift count masks to 0 (b & 63 == 0): identity"}
			}
		case prog.OpAnd32:
			if uint32(bv) == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "andl(x, 0) = 0"}
			}
		case prog.OpMul32:
			if uint32(bv) == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "mull(x, 0) = 0"}
			}
		case prog.OpOr32:
			if uint32(bv) == 0xffffffff {
				return rewrite{kind: rwConst, val: 0xffffffff, reason: "orl(x, ~0) = 0xffffffff"}
			}
		case prog.OpUlt:
			if bv == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "x <u 0 is 0"}
			}
		case prog.OpSlt:
			if int64(bv) == -1<<63 {
				return rewrite{kind: rwConst, val: 0, reason: "x <s MinInt64 is 0"}
			}
		}
	}

	if aConst && !bConst {
		switch nd.Op {
		case prog.OpShl, prog.OpShr, prog.OpRol, prog.OpRor:
			if av == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "0 shifted/rotated is 0"}
			}
		case prog.OpSar:
			if av == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "sar of 0 is 0"}
			}
			if av == ^uint64(0) {
				return rewrite{kind: rwConst, val: ^uint64(0), reason: "sar of ~0 is ~0"}
			}
		case prog.OpUlt:
			if av == ^uint64(0) {
				return rewrite{kind: rwConst, val: 0, reason: "~0 <u x is 0"}
			}
		case prog.OpSlt:
			if int64(av) == 1<<63-1 {
				return rewrite{kind: rwConst, val: 0, reason: "MaxInt64 <s x is 0"}
			}
		case prog.OpDivU, prog.OpDivS, prog.OpRemU, prog.OpRemS:
			if av == 0 {
				return rewrite{kind: rwConst, val: 0, reason: "0 div/rem x is 0 (incl. x = 0)"}
			}
		}
	}

	return rewrite{}
}

// simplifyUnary covers the unary rules: involutions, idempotent
// extensions, and zero-extension of already-zero-extended values.
func simplifyUnary(p *prog.Program, i int32) rewrite {
	nd := &p.Nodes[i]
	arg := nd.Args[0]
	inner := &p.Nodes[arg]

	// Involutions: op(op(x)) = x.
	if inner.Op == nd.Op {
		switch nd.Op {
		case prog.OpNot, prog.OpNeg, prog.OpBswap, prog.OpMNot:
			return rewrite{kind: rwNode, node: inner.Args[0], reason: nd.Op.String() + " is an involution"}
		case prog.OpSext8, prog.OpSext16, prog.OpSext32,
			prog.OpZext8, prog.OpZext16, prog.OpZext32:
			// Idempotent: the second application is the identity.
			return rewrite{kind: rwNode, node: arg, reason: nd.Op.String() + " is idempotent"}
		}
	}

	// zextlq of a value that is already zero-extended to 32 bits is
	// the identity: every 32-bit operation zero-extends its result.
	if nd.Op == prog.OpZext32 {
		switch inner.Op {
		case prog.OpAdd32, prog.OpSub32, prog.OpMul32, prog.OpAnd32,
			prog.OpOr32, prog.OpXor32, prog.OpShl32, prog.OpShr32,
			prog.OpSar32, prog.OpNot32, prog.OpNeg32,
			prog.OpZext8, prog.OpZext16:
			return rewrite{kind: rwNode, node: arg, reason: "zextlq of a zero-extended value"}
		}
	}

	return rewrite{}
}
