package analysis

import (
	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
)

// The rewrite engine is the single source of truth for algebraic
// simplification: the lint pass reports what it would rewrite, and the
// canonicalizer applies the rewrites. Keeping one rule table means the
// fuzz and Eval-equivalence tests that exercise the canonicalizer also
// vouch for the lints.
//
// Every rule must be sound under the exact evalOp semantics:
//
//   - shifts mask their count (b & 63, 32-bit b & 31), so a shift by a
//     multiple of the width is the identity, never an annihilator;
//   - division and remainder by zero produce zero (and MinInt64 / -1
//     produces zero), so x/x and x%x are NOT blindly 1 and 0 — only
//     x%x is (zero in the zero case too);
//   - 32-bit operations zero-extend their 32-bit result, so most
//     32-bit identities (orl(x, 0) = x, shll(x, 0) = x) are UNSOUND
//     as 64-bit rewrites: the left side clears the high 32 bits, the
//     right side keeps them. Only const-producing 32-bit rules and
//     rules whose replacement is itself already zero-extended are
//     admitted.

// rwKind classifies a rewrite.
type rwKind uint8

const (
	rwNone  rwKind = iota
	rwConst        // replace the node with the constant val
	rwNode         // replace the node with the existing node at index node
	rwArg          // retarget one argument slot of the node to node
)

// rewrite describes one semantics-preserving replacement of a single
// node. For rwNode the target is always a descendant of the rewritten
// node (an argument or an argument's argument), so redirecting
// references to it cannot create a cycle; for rwArg only the node's
// own argument slot arg is redirected (to a descendant of the old
// argument), which likewise cannot create a cycle.
type rewrite struct {
	kind   rwKind
	val    uint64 // rwConst: the folded value
	node   int32  // rwNode/rwArg: the replacement node index
	arg    int    // rwArg: the argument slot to retarget
	reason string
}

// constVal returns the value of node i if it is a constant node.
func constVal(p *prog.Program, i int32) (uint64, bool) {
	nd := &p.Nodes[i]
	if nd.Op == prog.OpConst {
		return nd.Val, true
	}
	return 0, false
}

// foldNode folds node i to a constant when every argument is constant.
func foldNode(p *prog.Program, i int32) (uint64, bool) {
	nd := &p.Nodes[i]
	if !nd.Op.IsInstruction() {
		return 0, false
	}
	var av, bv uint64
	var ok bool
	if av, ok = constVal(p, nd.Args[0]); !ok {
		return 0, false
	}
	if nd.Op.Arity() == 2 {
		if bv, ok = constVal(p, nd.Args[1]); !ok {
			return 0, false
		}
	}
	return prog.EvalOp(nd.Op, av, bv), true
}

// simplifyNode returns the algebraic rewrite for node i, or a rwNone
// rewrite when no rule applies. Constant folding is handled separately
// by foldNode; simplifyNode only covers rules with at least one
// non-constant operand. The rules themselves live in the exported
// table in rules.go; this function is the program-node adapter.
//
// facts optionally carries the per-node abstract values of p (from
// absint.Analyze with unconstrained inputs); nil disables the
// fact-conditioned rules. Both callers (the canonicalizer and the
// lint pass) compute facts fresh per scan, so indices are never stale.
func simplifyNode(p *prog.Program, i int32, facts []absint.Value) rewrite {
	nd := &p.Nodes[i]
	if !nd.Op.IsInstruction() {
		return rewrite{}
	}
	s := progSubject{p: p, i: i, facts: facts}
	for _, r := range RulesFor(nd.Op) {
		switch act := r.Match(s); act.Kind {
		case ActConst:
			return rewrite{kind: rwConst, val: act.Val, reason: r.Reason}
		case ActRef:
			return rewrite{kind: rwNode, node: act.Ref, reason: r.Reason}
		}
	}
	return maskedCountRewrite(p, i)
}

// maskedCountRewrite detects a redundant shift-count mask: node i is a
// count-masking shift and its count operand is andq(y, c) (or the
// model dialect's and) whose constant covers the width mask. The
// hardware consumes only the count's low 6 bits (5 for the 32-bit
// shifts), and those bits pass through the and unchanged when
// c & widthMask == widthMask, so the count can read y directly — an
// argument retarget, which the whole-node rule table cannot express.
// The known-bits justification: after the and, the count is provably
// < width already, so masking it again proves nothing new.
func maskedCountRewrite(p *prog.Program, i int32) rewrite {
	nd := &p.Nodes[i]
	var widthMask uint64
	switch nd.Op {
	case prog.OpShl, prog.OpShr, prog.OpSar, prog.OpRol, prog.OpRor:
		widthMask = 63
	case prog.OpShl32, prog.OpShr32, prog.OpSar32:
		widthMask = 31
	default:
		return rewrite{}
	}
	cnt := &p.Nodes[nd.Args[1]]
	if cnt.Op != prog.OpAnd && cnt.Op != prog.OpMAnd {
		return rewrite{}
	}
	for k := 0; k < 2; k++ {
		if c, ok := constVal(p, cnt.Args[k]); ok && c&widthMask == widthMask {
			y := cnt.Args[1-k]
			if _, yConst := constVal(p, y); yConst {
				return rewrite{} // all-constant count: folding's job
			}
			return rewrite{kind: rwArg, node: y, arg: 1,
				reason: "shift consumes only the count's low bits, which the mask provably preserves"}
		}
	}
	return rewrite{}
}

// progSubject adapts one program node to the rule table's Subject
// interface: Refs are node indices, constants are OpConst nodes, and
// facts (when supplied) are the node-indexed abstract values.
type progSubject struct {
	p     *prog.Program
	i     int32
	facts []absint.Value
}

func (s progSubject) Op() prog.Op                { return s.p.Nodes[s.i].Op }
func (s progSubject) Arg(k int) Ref              { return s.p.Nodes[s.i].Args[k] }
func (s progSubject) Const(r Ref) (uint64, bool) { return constVal(s.p, r) }

func (s progSubject) ArgOf(r Ref, op prog.Op) (Ref, bool) {
	nd := &s.p.Nodes[r]
	if nd.Op != op {
		return 0, false
	}
	return nd.Args[0], true
}

func (s progSubject) Fact(r Ref) (absint.Value, bool) {
	if int(r) >= len(s.facts) {
		return absint.Value{}, false
	}
	return s.facts[r], true
}
