package analysis

import (
	"hash/fnv"
	"sort"
	"strings"

	"stochsyn/internal/prog"
	"stochsyn/internal/prog/analysis/absint"
)

// Canonicalize returns a semantics-preserving canonical form of p: the
// input program is not modified. The canonical form is computed by
// running the rewrite engine to a fixpoint (constant folding plus the
// algebraic simplifications of simplify.go), merging structurally
// duplicate subcomputations, ordering the arguments of commutative
// operations, garbage-collecting, and renumbering nodes into a
// deterministic order. Two programs computing the same function by the
// same modulo-rewrites structure map to the same canonical form, so
// Hash(Canonicalize(p)) is a semantic (up to the rule set) cache key.
//
// Every step preserves Eval on all inputs; this is enforced by the
// Eval-equivalence tests and FuzzCanonicalize.
func Canonicalize(p *prog.Program) *prog.Program {
	q := p.Clone()
	for changed := true; changed; {
		changed = false
		for applyOneRewrite(q) {
			changed = true
		}
		if dedupe(q) {
			changed = true
		}
	}
	orderCommutativeArgs(q)
	return renumber(q)
}

// CanonHash returns the 64-bit hash of p's canonical form.
func CanonHash(p *prog.Program) uint64 {
	return Hash(Canonicalize(p))
}

// Hash returns a structural 64-bit FNV-1a hash of p (node list, root,
// input count). Structurally equal programs hash equal; apply it to a
// canonical form to get a semantic key.
func Hash(p *prog.Program) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for k := 0; k < 8; k++ {
			buf[k] = byte(v >> (8 * k))
		}
		h.Write(buf[:])
	}
	w64(uint64(p.NumInputs))
	w64(uint64(uint32(p.Root)))
	for i := range p.Nodes {
		nd := &p.Nodes[i]
		w64(uint64(nd.Op))
		for a := 0; a < nd.Op.Arity(); a++ {
			w64(uint64(uint32(nd.Args[a])))
		}
		if nd.Op == prog.OpConst || nd.Op == prog.OpInput {
			w64(nd.Val)
		}
	}
	return h.Sum64()
}

// applyOneRewrite finds the first node (in topological order) with an
// applicable fold or simplification, applies it in place, and restores
// the invariants. It returns whether a rewrite was applied. Applying
// one rewrite at a time keeps index management trivial: GC renumbers
// nodes, so the caller restarts the scan after every application —
// which also keeps the abstract facts fresh: they are recomputed at
// every scan start and the scan stops at the first rewrite.
func applyOneRewrite(q *prog.Program) bool {
	facts := absint.Analyze(q, nil, nil)
	for _, i := range q.TopoOrder() {
		if v, ok := foldNode(q, i); ok {
			replaceWithConst(q, i, v)
			return true
		}
		if rw := simplifyNode(q, i, facts); rw.kind != rwNone {
			switch rw.kind {
			case rwConst:
				replaceWithConst(q, i, rw.val)
			case rwNode:
				replaceWithNode(q, i, rw.node)
			case rwArg:
				q.Nodes[i].Args[rw.arg] = rw.node
				q.Invalidate()
				q.GC()
			}
			return true
		}
	}
	return false
}

// replaceWithConst overwrites node i with a constant node. Unused
// operand slots are zeroed (the hardened Validate insists on it) and
// now-unreferenced arguments are collected.
func replaceWithConst(q *prog.Program, i int32, v uint64) {
	q.Nodes[i] = prog.Node{Op: prog.OpConst, Val: v}
	q.Invalidate()
	q.GC()
}

// replaceWithNode redirects every reference to node i (argument edges
// and the root) to the node at target, then collects i. The rewrite
// engine only proposes targets that are descendants of i, so no
// redirect can introduce a cycle: any referrer of i already reached
// target through i.
func replaceWithNode(q *prog.Program, i, target int32) {
	for k := range q.Nodes {
		nd := &q.Nodes[k]
		for a := 0; a < nd.Op.Arity(); a++ {
			if nd.Args[a] == i {
				nd.Args[a] = target
			}
		}
	}
	if q.Root == i {
		q.Root = target
	}
	q.Invalidate()
	q.GC()
}

// nodeKeys returns an index-independent canonical expansion string for
// every node: the fully expanded expression with commutative arguments
// sorted (the per-node generalization of Program.Canon). Two nodes
// have equal keys exactly when they compute the same expression.
func nodeKeys(q *prog.Program) []string {
	keys := make([]string, len(q.Nodes))
	for _, i := range q.TopoOrder() {
		nd := &q.Nodes[i]
		switch nd.Op {
		case prog.OpInput:
			keys[i] = prog.InputName(int(nd.Val))
		case prog.OpConst:
			keys[i] = prog.FormatConst(nd.Val)
		default:
			args := make([]string, nd.Op.Arity())
			for a := range args {
				args[a] = keys[nd.Args[a]]
			}
			if prog.Commutative(nd.Op) {
				sort.Strings(args)
			}
			keys[i] = nd.Op.String() + "(" + strings.Join(args, ", ") + ")"
		}
	}
	return keys
}

// dedupe merges nodes with identical canonical keys, keeping the
// topologically earliest representative of each key, and reports
// whether anything was merged. Because keys are index-independent, one
// pass merges every duplicate.
func dedupe(q *prog.Program) bool {
	keys := nodeKeys(q)
	rep := make(map[string]int32, len(keys))
	for _, i := range q.TopoOrder() {
		if _, ok := rep[keys[i]]; !ok {
			rep[keys[i]] = i
		}
	}
	changed := false
	for k := range q.Nodes {
		nd := &q.Nodes[k]
		for a := 0; a < nd.Op.Arity(); a++ {
			if r := rep[keys[nd.Args[a]]]; r != nd.Args[a] {
				nd.Args[a] = r
				changed = true
			}
		}
	}
	if r := rep[keys[q.Root]]; r != q.Root {
		q.Root = r
		changed = true
	}
	if changed {
		q.Invalidate()
		q.GC()
	}
	return changed
}

// orderCommutativeArgs physically swaps the arguments of commutative
// operations into canonical (key-sorted) order. Keys are invariant
// under the swap, so this cannot enable further rewrites or merges.
func orderCommutativeArgs(q *prog.Program) {
	keys := nodeKeys(q)
	changed := false
	for k := range q.Nodes {
		nd := &q.Nodes[k]
		if prog.Commutative(nd.Op) && keys[nd.Args[0]] > keys[nd.Args[1]] {
			nd.Args[0], nd.Args[1] = nd.Args[1], nd.Args[0]
			changed = true
		}
	}
	if changed {
		q.Invalidate()
	}
}

// renumber rebuilds q with nodes in a deterministic order: the
// permanent inputs first, then body nodes in DFS post-order from the
// root (arguments before users, first argument's subtree first).
// Instruction Val fields are zeroed so stray scratch data can never
// reach the structural hash.
func renumber(q *prog.Program) *prog.Program {
	out := &prog.Program{NumInputs: q.NumInputs}
	for i := 0; i < q.NumInputs; i++ {
		out.Nodes = append(out.Nodes, prog.Node{Op: prog.OpInput, Val: uint64(i)})
	}
	remap := make([]int32, len(q.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	var emit func(int32) int32
	emit = func(i int32) int32 {
		if remap[i] >= 0 {
			return remap[i]
		}
		nd := q.Nodes[i]
		if nd.Op == prog.OpInput {
			remap[i] = int32(nd.Val)
			return remap[i]
		}
		var args [prog.MaxArity]int32
		for a := 0; a < nd.Op.Arity(); a++ {
			args[a] = emit(nd.Args[a])
		}
		nn := prog.Node{Op: nd.Op, Args: args}
		if nd.Op == prog.OpConst {
			nn.Val = nd.Val
		}
		remap[i] = int32(len(out.Nodes))
		out.Nodes = append(out.Nodes, nn)
		return remap[i]
	}
	out.Root = emit(q.Root)
	return out
}
