package analysis

import (
	"strings"
	"testing"

	"stochsyn/internal/prog"
)

// The rule table must have pairwise-distinct names (cmd/repolint also
// checks this statically) and every rule must declare at least one
// opcode and a reason.
func TestRuleTableWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules {
		if r.Name == "" {
			t.Fatal("rule with empty name")
		}
		if seen[r.Name] {
			t.Fatalf("rule %q defined twice", r.Name)
		}
		seen[r.Name] = true
		if len(r.Ops) == 0 {
			t.Errorf("rule %q declares no opcodes", r.Name)
		}
		if r.Reason == "" {
			t.Errorf("rule %q has no semantics justification", r.Name)
		}
		if r.Match == nil {
			t.Errorf("rule %q has no matcher", r.Name)
		}
	}
}

// Every rule must be reachable through the per-op dispatch index, and
// dispatch must preserve table order per opcode.
func TestRulesForDispatch(t *testing.T) {
	for i := range Rules {
		r := &Rules[i]
		for _, op := range r.Ops {
			found := false
			for _, got := range RulesFor(op) {
				if got == r {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("rule %q not dispatched for %s", r.Name, op)
			}
		}
	}
	if RulesFor(prog.OpInput) != nil || RulesFor(prog.OpConst) != nil {
		t.Error("non-instruction opcodes must have no rules")
	}
}

// Every rule, applied destructively through the canonicalizer path,
// must preserve Eval semantics. This drives each rule's Ops through a
// program that triggers it and checks the canonical form agrees with
// the original on a battery of inputs (the canon fuzz covers random
// programs; this pins one witness per rule family).
func TestRuleWitnessesEvalEqual(t *testing.T) {
	exprs := []string{
		"andq(x, x)", "orq(x, x)", "xorq(x, x)", "xorl(x, x)",
		"subq(x, x)", "subl(x, x)", "eqq(x, x)", "ultq(x, x)", "sltq(x, x)",
		"remq(x, x)", "iremq(x, x)",
		"andq(x, 0)", "andq(0xffffffffffffffff, x)", "orq(0, x)",
		"orq(x, 0xffffffffffffffff)", "xorq(0, x)", "addq(0, x)",
		"subq(x, 0)", "mulq(x, 0)", "mulq(1, x)", "divq(x, 0)",
		"idivq(x, 1)", "remq(x, 1)", "iremq(x, 0xffffffffffffffff)",
		"shlq(x, 64)", "sarq(x, 0)", "rolq(x, 128)",
		"andl(x, 0)", "mull(0x100000000, x)", "orl(x, 0xffffffff)",
		"ultq(x, 0)", "sltq(x, 0x8000000000000000)",
		"shlq(0, x)", "sarq(0, x)", "sarq(0xffffffffffffffff, x)",
		"ultq(0xffffffffffffffff, x)", "sltq(0x7fffffffffffffff, x)",
		"divq(0, x)", "iremq(0, x)",
		"notq(notq(x))", "negq(negq(x))", "bswapq(bswapq(x))",
		"sextbq(sextbq(x))", "zextlq(zextlq(x))", "zextlq(addl(x, x))",
		"zextlq(zextbq(x))",
		// Fact-conditioned rules (known-bits / interval side conditions).
		"andq(zextlq(x), 0xffffffff)",  // and-redundant-mask
		"ultq(zextbq(x), 0x100)",       // ult-decided
		"sltq(zextlq(x), 0x100000000)", // slt-decided
		"eqq(orq(x, 1), 0)",            // eq-decided (low bit forced one)
		"shll(zextlq(x), 32)",          // shift32-masked-zero
		"shlq(x, andq(x, 63))",         // redundant shift-count mask
		"shrl(x, andl(x, 31))",         // 32-bit shift-count mask
	}
	cases := []uint64{0, 1, 2, 63, 64, ^uint64(0), 0x8000000000000000,
		0x7fffffffffffffff, 0xffffffff, 0x100000000, 12345}
	for _, e := range exprs {
		p, err := prog.Parse(e, 1)
		if err != nil {
			t.Fatalf("parse %q: %v", e, err)
		}
		c := Canonicalize(p)
		if err := c.Validate(); err != nil {
			t.Fatalf("canon of %q invalid: %v", e, err)
		}
		for _, v := range cases {
			in := []uint64{v}
			if got, want := c.Output(in), p.Output(in); got != want {
				t.Fatalf("%q: canon %q disagrees on x=%#x: got %#x want %#x",
					e, c, v, got, want)
			}
		}
	}
}

// Severity rendering: the zero value (SevWarn) keeps the historical
// untagged format; SevInfo inserts the tag after the pass name.
func TestFindingSeverity(t *testing.T) {
	warn := Finding{Pass: "lint", Node: 3, Msg: "x & x = x"}
	if got, want := warn.String(), "lint: node 3: x & x = x"; got != want {
		t.Errorf("warn rendering: got %q want %q", got, want)
	}
	if !warn.Actionable() {
		t.Error("SevWarn finding must be actionable")
	}
	info := Finding{Pass: "lint", Node: 2, Severity: SevInfo, Msg: "report only"}
	if got, want := info.String(), "lint[info]: node 2: report only"; got != want {
		t.Errorf("info rendering: got %q want %q", got, want)
	}
	if info.Actionable() {
		t.Error("SevInfo finding must not be actionable")
	}
}

// The 32-bit masked-shift lint is report-only: it must come out of the
// default pipeline tagged SevInfo, while rewritable findings stay
// SevWarn.
func TestMaskedShiftLintIsInfo(t *testing.T) {
	p, err := prog.Parse("shll(x, 32)", 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(p)
	found := false
	for _, f := range rep.Findings {
		if strings.Contains(f.Msg, "count masks to 0") {
			found = true
			if f.Severity != SevInfo {
				t.Errorf("masked-shift finding severity = %q, want info", f.Severity)
			}
			if !strings.Contains(f.String(), "lint[info]:") {
				t.Errorf("masked-shift finding renders %q, want lint[info] tag", f.String())
			}
		}
	}
	if !found {
		t.Fatal("masked-shift lint not reported")
	}

	q, err := prog.Parse("andq(x, x)", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(q).Findings {
		if strings.Contains(f.Msg, "x & x") && f.Severity != SevWarn {
			t.Errorf("rewritable finding severity = %q, want warn", f.Severity)
		}
	}
}
